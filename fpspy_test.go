package fpspy_test

import (
	"math"
	"testing"

	fpspy "repro"
	"repro/internal/isa"
)

// buildEventProgram returns a program that performs, in order:
// nInexact inexact divisions (1/3), one divide-by-zero, and one
// invalid (0/0) — a controllable event generator.
func buildEventProgram(nInexact int) *fpspy.Program {
	b := fpspy.NewProgram("events")
	b.Movi(isa.R1, int64(math.Float64bits(1)))
	b.Movqx(isa.X0, isa.R1)
	b.Movi(isa.R1, int64(math.Float64bits(3)))
	b.Movqx(isa.X1, isa.R1)
	b.Movi(isa.R2, 0)
	b.Movi(isa.R3, int64(nInexact))
	loop := b.Label("loop")
	b.Bind(loop)
	b.FP2(isa.OpDIVSD, isa.X2, isa.X0, isa.X1) // inexact
	b.Addi(isa.R2, isa.R2, 1)
	b.Blt(isa.R2, isa.R3, loop)
	b.Movqx(isa.X3, isa.R0)                    // +0
	b.FP2(isa.OpDIVSD, isa.X4, isa.X0, isa.X3) // 1/0: divide by zero
	b.FP2(isa.OpDIVSD, isa.X5, isa.X3, isa.X3) // 0/0: invalid
	b.Hlt()
	return b.Build()
}

func TestAggregateModeCapturesStickySet(t *testing.T) {
	res, err := fpspy.Run(buildEventProgram(10), fpspy.Options{
		Config: fpspy.Config{Mode: fpspy.ModeAggregate},
	})
	if err != nil {
		t.Fatal(err)
	}
	aggs := res.Aggregates()
	if len(aggs) != 1 {
		t.Fatalf("aggregates = %d, want 1", len(aggs))
	}
	want := fpspy.FlagInexact | fpspy.FlagDivideByZero | fpspy.FlagInvalid
	if aggs[0].Flags != want {
		t.Errorf("flags = %v, want %v", aggs[0].Flags, want)
	}
	if aggs[0].Aborted {
		t.Error("trace marked aborted")
	}
	// Aggregate mode records no individual events.
	if res.Store.Recorded != 0 {
		t.Errorf("recorded = %d in aggregate mode", res.Store.Recorded)
	}
}

func TestIndividualModeRecordsEveryEvent(t *testing.T) {
	const n = 25
	res, err := fpspy.Run(buildEventProgram(n), fpspy.Options{
		Config: fpspy.Config{Mode: fpspy.ModeIndividual},
	})
	if err != nil {
		t.Fatal(err)
	}
	recs := res.MustRecords()
	// n inexact + 1 dbz + 1 invalid.
	if len(recs) != n+2 {
		t.Fatalf("records = %d, want %d", len(recs), n+2)
	}
	var inexact, dbz, invalid int
	for i := range recs {
		switch {
		case recs[i].Event == fpspy.FlagDivideByZero:
			dbz++
		case recs[i].Event == fpspy.FlagInvalid:
			invalid++
		case recs[i].Event == fpspy.FlagInexact:
			inexact++
		}
		if recs[i].Rip == 0 {
			t.Fatal("record missing rip")
		}
	}
	if inexact != n || dbz != 1 || invalid != 1 {
		t.Errorf("inexact=%d dbz=%d invalid=%d", inexact, dbz, invalid)
	}
	// Sequence numbers are dense per thread.
	for i := range recs {
		if recs[i].Seq != uint64(i) {
			t.Fatalf("seq[%d] = %d", i, recs[i].Seq)
		}
	}
	// Mnemonic decoding works.
	if m := fpspy.Mnemonic(&recs[0]); m != "divsd" {
		t.Errorf("mnemonic = %q", m)
	}
}

func TestIndividualFilteringExcludesInexact(t *testing.T) {
	res, err := fpspy.Run(buildEventProgram(50), fpspy.Options{
		Config: fpspy.Config{
			Mode:       fpspy.ModeIndividual,
			ExceptList: fpspy.AllEvents &^ fpspy.FlagInexact,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	recs := res.MustRecords()
	if len(recs) != 2 {
		t.Fatalf("records = %d, want 2 (dbz + invalid)", len(recs))
	}
	for i := range recs {
		if recs[i].Event == fpspy.FlagInexact {
			t.Error("inexact captured despite filter")
		}
	}
	// Filtering means no overhead for filtered events: faults == records.
	if res.Store.Faults != 2 {
		t.Errorf("faults = %d, want 2", res.Store.Faults)
	}
}

func TestSubsamplingRecordsEveryNth(t *testing.T) {
	const n = 100
	res, err := fpspy.Run(buildEventProgram(n), fpspy.Options{
		Config: fpspy.Config{Mode: fpspy.ModeIndividual, SampleEvery: 10},
	})
	if err != nil {
		t.Fatal(err)
	}
	recs := res.MustRecords()
	// 102 faults total -> every 10th recorded.
	if len(recs) != 10 {
		t.Errorf("records = %d, want 10", len(recs))
	}
	if res.Store.Faults != n+2 {
		t.Errorf("faults = %d, want %d", res.Store.Faults, n+2)
	}
}

func TestMaxCountDisablesCapture(t *testing.T) {
	res, err := fpspy.Run(buildEventProgram(100), fpspy.Options{
		Config: fpspy.Config{Mode: fpspy.ModeIndividual, MaxCount: 7},
	})
	if err != nil {
		t.Fatal(err)
	}
	recs := res.MustRecords()
	if len(recs) != 7 {
		t.Errorf("records = %d, want 7", len(recs))
	}
	// After the cap, exceptions stay masked: far fewer than 102 faults.
	if res.Store.Faults > 8 {
		t.Errorf("faults = %d after maxcount, want <= 8", res.Store.Faults)
	}
}

// buildFESetEnvProgram does some rounding, then calls fesetenv (like
// WRF), then more rounding.
func buildFESetEnvProgram() *fpspy.Program {
	b := fpspy.NewProgram("wrf-like")
	b.Movi(isa.R1, int64(math.Float64bits(1)))
	b.Movqx(isa.X0, isa.R1)
	b.Movi(isa.R1, int64(math.Float64bits(3)))
	b.Movqx(isa.X1, isa.R1)
	b.FP2(isa.OpDIVSD, isa.X2, isa.X0, isa.X1) // inexact before fesetenv
	b.FP2(isa.OpDIVSD, isa.X2, isa.X0, isa.X1)
	b.Movi(isa.R1, 0) // FE_DFL_ENV
	b.CallC("fesetenv")
	b.FP2(isa.OpDIVSD, isa.X3, isa.X0, isa.X1) // after: unobserved
	b.FP2(isa.OpDIVSD, isa.X3, isa.X0, isa.X1)
	b.Hlt()
	return b.Build()
}

func TestStepAsideOnFESetEnvAggregate(t *testing.T) {
	// Aggregate mode: the application's floating point control use makes
	// FPSpy step aside; the aggregate record reports nothing (the WRF
	// row of the paper's Figure 9).
	res, err := fpspy.Run(buildFESetEnvProgram(), fpspy.Options{
		Config: fpspy.Config{Mode: fpspy.ModeAggregate},
	})
	if err != nil {
		t.Fatal(err)
	}
	aggs := res.Aggregates()
	if len(aggs) != 1 {
		t.Fatalf("aggregates = %d", len(aggs))
	}
	if !aggs[0].Aborted || aggs[0].Flags != 0 {
		t.Errorf("agg = %+v, want aborted with no flags", aggs[0])
	}
	if res.Store.StepAsides != 1 {
		t.Errorf("stepasides = %d", res.Store.StepAsides)
	}
}

func TestStepAsideOnFESetEnvIndividualKeepsEarlierRecords(t *testing.T) {
	// Individual mode captures events as they arise, so the records
	// before fesetenv survive (the WRF row of Figure 14).
	res, err := fpspy.Run(buildFESetEnvProgram(), fpspy.Options{
		Config: fpspy.Config{Mode: fpspy.ModeIndividual},
	})
	if err != nil {
		t.Fatal(err)
	}
	recs := res.MustRecords()
	if len(recs) != 2 {
		t.Fatalf("records = %d, want the 2 pre-fesetenv events", len(recs))
	}
	if res.Store.StepAsides != 1 {
		t.Errorf("stepasides = %d", res.Store.StepAsides)
	}
	// The application's fesetenv must still have taken effect (FPSpy
	// untangles, the call goes through).
	if res.ExitCode != 0 {
		t.Errorf("exit code %d", res.ExitCode)
	}
}

// buildSignalUserProgram installs its own SIGFPE handler (incidentally),
// then generates events.
func buildSignalUserProgram() *fpspy.Program {
	b := fpspy.NewProgram("signal-user")
	handler := b.Label("handler")
	b.Movi(isa.R1, 8) // SIGFPE
	b.Lea(isa.R2, handler)
	b.CallC("signal")
	b.Movi(isa.R1, int64(math.Float64bits(1)))
	b.Movqx(isa.X0, isa.R1)
	b.Movi(isa.R1, int64(math.Float64bits(3)))
	b.Movqx(isa.X1, isa.R1)
	b.FP2(isa.OpDIVSD, isa.X2, isa.X0, isa.X1)
	b.FP2(isa.OpDIVSD, isa.X2, isa.X0, isa.X1)
	b.Hlt()
	b.Bind(handler)
	b.CallC("rt_sigreturn")
	return b.Build()
}

func TestStepAsideWhenAppHooksSIGFPE(t *testing.T) {
	res, err := fpspy.Run(buildSignalUserProgram(), fpspy.Options{
		Config: fpspy.Config{Mode: fpspy.ModeIndividual},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Store.StepAsides != 1 {
		t.Errorf("stepasides = %d, want 1", res.Store.StepAsides)
	}
	if len(res.MustRecords()) != 0 {
		t.Error("events recorded after handing SIGFPE to the app")
	}
}

func TestAggressiveModeKeepsSpying(t *testing.T) {
	res, err := fpspy.Run(buildSignalUserProgram(), fpspy.Options{
		Config: fpspy.Config{Mode: fpspy.ModeIndividual, Aggressive: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Store.StepAsides != 0 {
		t.Errorf("stepasides = %d, want 0 in aggressive mode", res.Store.StepAsides)
	}
	if got := len(res.MustRecords()); got != 2 {
		t.Errorf("records = %d, want 2", got)
	}
}

// buildThreadedProgram runs a worker thread that produces 1 divide by
// zero while the main thread produces inexact events.
func buildThreadedProgram() *fpspy.Program {
	b := fpspy.NewProgram("threaded")
	worker := b.Label("worker")
	b.Lea(isa.R1, worker)
	b.Movi(isa.R2, 0)
	b.CallC("pthread_create")
	b.Movi(isa.R1, int64(math.Float64bits(1)))
	b.Movqx(isa.X0, isa.R1)
	b.Movi(isa.R1, int64(math.Float64bits(3)))
	b.Movqx(isa.X1, isa.R1)
	b.FP2(isa.OpDIVSD, isa.X2, isa.X0, isa.X1)
	// Wait for the worker's flag.
	b.Movi(isa.R7, 1024)
	wait := b.Label("wait")
	b.Bind(wait)
	b.Ld(isa.R6, isa.R7, 0)
	b.Beq(isa.R6, isa.R0, wait)
	b.Hlt()
	b.Bind(worker)
	b.Movi(isa.R3, int64(math.Float64bits(2)))
	b.Movqx(isa.X0, isa.R3)
	b.Movqx(isa.X1, isa.R0)
	b.FP2(isa.OpDIVSD, isa.X2, isa.X0, isa.X1) // 2/0
	b.Movi(isa.R3, 1024)
	b.Movi(isa.R4, 1)
	b.St(isa.R3, 0, isa.R4)
	b.CallC("pthread_exit")
	return b.Build()
}

func TestPerThreadTraces(t *testing.T) {
	res, err := fpspy.Run(buildThreadedProgram(), fpspy.Options{
		Config: fpspy.Config{Mode: fpspy.ModeIndividual},
	})
	if err != nil {
		t.Fatal(err)
	}
	threads := res.Store.Threads()
	if len(threads) != 2 {
		t.Fatalf("threads with traces = %d, want 2", len(threads))
	}
	// One thread has the inexact, the other the divide by zero.
	var sawDBZ, sawInexact bool
	for _, key := range threads {
		recs, err := res.Store.Records(key)
		if err != nil {
			t.Fatal(err)
		}
		for i := range recs {
			if recs[i].Event == fpspy.FlagDivideByZero {
				sawDBZ = true
			}
			if recs[i].Event == fpspy.FlagInexact {
				sawInexact = true
			}
			if int(recs[i].TID) != key.TID {
				t.Errorf("record tid %d in trace %v", recs[i].TID, key)
			}
		}
	}
	if !sawDBZ || !sawInexact {
		t.Errorf("dbz=%v inexact=%v", sawDBZ, sawInexact)
	}
}

func TestAggregateThreadsGetIndependentRecords(t *testing.T) {
	res, err := fpspy.Run(buildThreadedProgram(), fpspy.Options{
		Config: fpspy.Config{Mode: fpspy.ModeAggregate},
	})
	if err != nil {
		t.Fatal(err)
	}
	aggs := res.Aggregates()
	if len(aggs) != 2 {
		t.Fatalf("aggregates = %d, want 2", len(aggs))
	}
	var all fpspy.Flags
	for _, a := range aggs {
		all |= a.Flags
	}
	if all&fpspy.FlagDivideByZero == 0 || all&fpspy.FlagInexact == 0 {
		t.Errorf("union = %v", all)
	}
}

func TestForkedProcessesBothTraced(t *testing.T) {
	b := fpspy.NewProgram("forker")
	b.Movi(isa.R1, int64(math.Float64bits(1)))
	b.Movqx(isa.X0, isa.R1)
	b.Movi(isa.R1, int64(math.Float64bits(3)))
	b.Movqx(isa.X1, isa.R1)
	b.CallC("fork")
	b.FP2(isa.OpDIVSD, isa.X2, isa.X0, isa.X1) // both sides do this
	b.Hlt()
	res, err := fpspy.Run(b.Build(), fpspy.Options{
		Config: fpspy.Config{Mode: fpspy.ModeIndividual},
	})
	if err != nil {
		t.Fatal(err)
	}
	threads := res.Store.Threads()
	if len(threads) != 2 {
		t.Fatalf("traced threads = %d, want 2 (parent+child)", len(threads))
	}
	if threads[0].PID == threads[1].PID {
		t.Error("traces not split by process")
	}
	for _, key := range threads {
		recs, _ := res.Store.Records(key)
		if len(recs) != 1 {
			t.Errorf("%v: records = %d, want 1", key, len(recs))
		}
	}
}

func TestPoissonSamplingCapturesSubset(t *testing.T) {
	const n = 300000
	full, err := fpspy.Run(buildEventProgram(n), fpspy.Options{
		Config: fpspy.Config{Mode: fpspy.ModeIndividual},
	})
	if err != nil {
		t.Fatal(err)
	}
	// ~5% coverage; periods short enough that the run spans dozens of
	// on/off cycles, so the observed fraction concentrates near the mean.
	sampled, err := fpspy.Run(buildEventProgram(n), fpspy.Options{
		Config: fpspy.Config{
			Mode:       fpspy.ModeIndividual,
			SampleOnUS: 1, SampleOffUS: 20,
			Poisson:      true,
			VirtualTimer: true,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	nf := len(full.MustRecords())
	ns := len(sampled.MustRecords())
	if nf != n+2 {
		t.Fatalf("full records = %d", nf)
	}
	frac := float64(ns) / float64(nf)
	if frac < 0.01 || frac > 0.15 {
		t.Errorf("sampled fraction = %.3f (%d of %d), want around 5%%", frac, ns, nf)
	}
	// Sampling reduces overhead: fewer faults taken.
	if sampled.Store.Faults >= full.Store.Faults {
		t.Errorf("sampled faults %d >= full faults %d", sampled.Store.Faults, full.Store.Faults)
	}
	// And wall time improves.
	if sampled.WallCycles >= full.WallCycles {
		t.Errorf("sampled wall %d >= full wall %d", sampled.WallCycles, full.WallCycles)
	}
}

func TestNoSpyBaselineHasNoOverheadOrRecords(t *testing.T) {
	res, err := fpspy.Run(buildEventProgram(100), fpspy.Options{NoSpy: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Store.Faults != 0 || res.Store.Recorded != 0 {
		t.Error("baseline observed events")
	}
	if len(res.Aggregates()) != 0 {
		t.Error("baseline produced aggregates")
	}
}

func TestAggregateOverheadIsVirtuallyZero(t *testing.T) {
	base, err := fpspy.Run(buildEventProgram(5000), fpspy.Options{NoSpy: true})
	if err != nil {
		t.Fatal(err)
	}
	agg, err := fpspy.Run(buildEventProgram(5000), fpspy.Options{
		Config: fpspy.Config{Mode: fpspy.ModeAggregate},
	})
	if err != nil {
		t.Fatal(err)
	}
	// Aggregate mode adds only startup/teardown work: well under 1%.
	ratio := float64(agg.WallCycles) / float64(base.WallCycles)
	if ratio > 1.01 {
		t.Errorf("aggregate overhead ratio = %.4f", ratio)
	}
}

func TestDisableMakesFPSpyInert(t *testing.T) {
	res, err := fpspy.Run(buildEventProgram(10), fpspy.Options{
		Config: fpspy.Config{Mode: fpspy.ModeIndividual, Disable: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Store.Faults != 0 || len(res.MustRecords()) != 0 {
		t.Error("disabled FPSpy still captured events")
	}
}
