package fpspy_test

import (
	"testing"

	fpspy "repro"
	"repro/internal/binscan/absint"
	"repro/internal/workload"
)

// TestWorkloadStaticSoundness runs every study workload in individual
// mode (with pruning active, as a real run would) and cross-checks each
// dynamically recorded trap against the abstract interpreter's verdicts:
// a raised condition at a site classified never-trap is a hard failure.
// This is the corpus-wide soundness gate for the static verifier.
func TestWorkloadStaticSoundness(t *testing.T) {
	for _, w := range workload.All() {
		w := w
		t.Run(w.Meta.Name, func(t *testing.T) {
			t.Parallel()
			prog := w.Build(workload.SizeSmall)
			res := absint.Analyze(prog)
			run, err := fpspy.Run(prog, fpspy.Options{
				Config: fpspy.Config{Mode: fpspy.ModeIndividual},
			})
			if err != nil {
				t.Fatalf("run: %v", err)
			}
			recs, err := run.Store.AllRecords()
			if err != nil {
				t.Fatalf("records: %v", err)
			}
			for _, v := range absint.CheckSoundness(res, recs) {
				t.Errorf("%s", v)
			}
		})
	}
}

// TestWorkloadPruneDifferential asserts pruning does not change what the
// spy records on real numerics: the individual-mode trace of a pruned
// run is identical, record for record, to the unpruned run.
func TestWorkloadPruneDifferential(t *testing.T) {
	if testing.Short() {
		t.Skip("differential sweep skipped in -short")
	}
	for _, w := range workload.All() {
		w := w
		t.Run(w.Meta.Name, func(t *testing.T) {
			t.Parallel()
			prog := w.Build(workload.SizeSmall)
			runWith := func(noPrune bool) []fpspy.Record {
				run, err := fpspy.Run(prog, fpspy.Options{
					Config: fpspy.Config{Mode: fpspy.ModeIndividual, NoPrune: noPrune},
				})
				if err != nil {
					t.Fatalf("run(noPrune=%v): %v", noPrune, err)
				}
				recs, err := run.Store.AllRecords()
				if err != nil {
					t.Fatalf("records(noPrune=%v): %v", noPrune, err)
				}
				return recs
			}
			pruned := runWith(false)
			plain := runWith(true)
			if len(pruned) != len(plain) {
				t.Fatalf("%d records pruned vs %d unpruned", len(pruned), len(plain))
			}
			for i := range pruned {
				if pruned[i] != plain[i] {
					t.Fatalf("record %d differs:\npruned:   %+v\nunpruned: %+v", i, pruned[i], plain[i])
				}
			}
		})
	}
}

// TestWorkloadSuperblockDifferential asserts the superblock region cache
// does not change what the spy records on real numerics: the
// individual-mode trace with the cache on is identical, record for
// record, to the FPE_NOSUPERBLOCK run — the corpus-wide half of the
// ablation gate (the chaos families cover the adversarial half).
func TestWorkloadSuperblockDifferential(t *testing.T) {
	if testing.Short() {
		t.Skip("differential sweep skipped in -short")
	}
	for _, w := range workload.All() {
		w := w
		t.Run(w.Meta.Name, func(t *testing.T) {
			t.Parallel()
			prog := w.Build(workload.SizeSmall)
			runWith := func(noSB bool) (*fpspy.Result, []fpspy.Record) {
				run, err := fpspy.Run(prog, fpspy.Options{
					Config: fpspy.Config{Mode: fpspy.ModeIndividual, NoSuperblock: noSB},
				})
				if err != nil {
					t.Fatalf("run(noSuperblock=%v): %v", noSB, err)
				}
				recs, err := run.Store.AllRecords()
				if err != nil {
					t.Fatalf("records(noSuperblock=%v): %v", noSB, err)
				}
				return run, recs
			}
			cachedRun, cached := runWith(false)
			plainRun, plain := runWith(true)
			if cachedRun.Steps != plainRun.Steps {
				t.Fatalf("retired %d cached vs %d uncached", cachedRun.Steps, plainRun.Steps)
			}
			if cachedRun.ExitCode != plainRun.ExitCode {
				t.Fatalf("exit %d cached vs %d uncached", cachedRun.ExitCode, plainRun.ExitCode)
			}
			if len(cached) != len(plain) {
				t.Fatalf("%d records cached vs %d uncached", len(cached), len(plain))
			}
			for i := range cached {
				if cached[i] != plain[i] {
					t.Fatalf("record %d differs:\ncached:   %+v\nuncached: %+v", i, cached[i], plain[i])
				}
			}
		})
	}
}
