package binscan

import (
	"testing"

	"repro/internal/isa"
	"repro/internal/trace"
)

// deadCodeProgram builds the pattern the studied applications exhibit: a
// reachable loop, a pthread_exit terminator, dead fe*/sigaction cleanup
// code after it, and an address-taken handler that only the kernel can
// reach.
//
//	entry:   movi; lea handler; callc sigaction
//	loop:    addsd; addi; bgt loop
//	         callc pthread_exit        <- noreturn
//	dead:    callc feenableexcept; mulsd; hlt
//	handler: divsd; hlt                <- address-taken root
func deadCodeProgram() *isa.Program {
	b := isa.NewBuilder("deadcode")
	loop := b.Label("loop")
	handler := b.Label("handler")
	b.Movi(1, 3)
	b.Lea(2, handler)
	b.CallC("sigaction")
	b.Bind(loop)
	b.FP2(isa.OpADDSD, 1, 1, 1)
	b.Addi(1, 1, -1)
	b.Bgt(1, 0, loop)
	b.CallC("pthread_exit")
	b.CallC("feenableexcept")
	b.FP2(isa.OpMULSD, 2, 2, 2)
	b.Hlt()
	b.Bind(handler)
	b.FP2(isa.OpDIVSD, 3, 3, 3)
	b.Hlt()
	return b.Build()
}

func TestBuildCFGDeadCode(t *testing.T) {
	p := deadCodeProgram()
	cfg := BuildCFG(p)
	st := cfg.Stats()
	if st.Insts != len(p.Insts) {
		t.Fatalf("Insts = %d, want %d", st.Insts, len(p.Insts))
	}
	// Blocks: [entry..sigaction], [loop..bgt], [pthread_exit],
	// [dead feenableexcept..hlt], [handler..hlt].
	if st.Blocks != 5 {
		t.Errorf("Blocks = %d, want 5", st.Blocks)
	}
	if st.Roots != 1 {
		t.Errorf("Roots = %d, want 1 (handler)", st.Roots)
	}
	if st.ReachableBlocks != 4 {
		t.Errorf("ReachableBlocks = %d, want 4 (all but dead)", st.ReachableBlocks)
	}
	// The dead block is instructions 7..9 (feenableexcept, mulsd, hlt).
	for idx, want := range map[int]bool{
		0: true, 3: true, 6: true, 7: false, 8: false, 9: false, 10: true,
	} {
		if got := cfg.InstReachable(idx); got != want {
			t.Errorf("InstReachable(%d) = %v, want %v", idx, got, want)
		}
	}
	if cfg.BlockOf(-1) != -1 || cfg.BlockOf(len(p.Insts)) != -1 {
		t.Error("BlockOf out-of-range should be -1")
	}
}

func TestBuildCFGCallReturns(t *testing.T) {
	// call/ret: the subroutine is reachable via the call edge, the
	// instruction after the call via the fall-through (call-returns)
	// edge; ret itself contributes no edge.
	b := isa.NewBuilder("callret")
	sub := b.Label("sub")
	b.Call(sub)
	b.FP2(isa.OpMULSD, 1, 1, 1) // after call: reachable via fall-through
	b.Hlt()
	b.Bind(sub)
	b.FP2(isa.OpADDSD, 2, 2, 2)
	b.Ret()
	cfg := BuildCFG(b.Build())
	st := cfg.Stats()
	if st.ReachableBlocks != st.Blocks {
		t.Errorf("ReachableBlocks = %d, want all %d", st.ReachableBlocks, st.Blocks)
	}
	// Edges: call->sub, call->fallthrough. hlt and ret terminate.
	if st.Edges != 2 {
		t.Errorf("Edges = %d, want 2", st.Edges)
	}
}

func TestScanProgramSitesAndLibc(t *testing.T) {
	p := deadCodeProgram()
	s := ScanProgram(p)

	if len(s.Sites) != 3 {
		t.Fatalf("Sites = %d, want 3 (addsd, mulsd, divsd)", len(s.Sites))
	}
	byOp := map[isa.Opcode]Site{}
	for _, site := range s.Sites {
		byOp[site.Op] = site
		if got := s.SiteAt(site.Addr); got == nil || got.Index != site.Index {
			t.Errorf("SiteAt(%#x) did not round-trip", site.Addr)
		}
	}
	if !byOp[isa.OpADDSD].Reachable || !byOp[isa.OpADDSD].Emulable {
		t.Error("addsd site should be reachable and emulable")
	}
	if byOp[isa.OpMULSD].Reachable {
		t.Error("mulsd site is in dead code, should be unreachable")
	}
	if !byOp[isa.OpDIVSD].Reachable {
		t.Error("divsd site is address-taken handler code, should be reachable")
	}

	if got := len(s.SiteAddrs(false)); got != 3 {
		t.Errorf("SiteAddrs(false) = %d, want 3", got)
	}
	if got := len(s.SiteAddrs(true)); got != 2 {
		t.Errorf("SiteAddrs(true) = %d, want 2", got)
	}

	present := s.PresentLibc()
	reach := s.ReachableLibc()
	for _, sym := range []string{"sigaction", "pthread_exit", "feenableexcept"} {
		if !present[sym] {
			t.Errorf("PresentLibc missing %s", sym)
		}
	}
	if !reach["sigaction"] || !reach["pthread_exit"] {
		t.Error("sigaction and pthread_exit call sites should be reachable")
	}
	if reach["feenableexcept"] {
		t.Error("feenableexcept is referenced only in dead code")
	}
}

func TestFormAndAddressInventories(t *testing.T) {
	s := ScanProgram(deadCodeProgram())
	all := s.FormInventory(false)
	if len(all) != 3 {
		t.Fatalf("FormInventory(false) = %d forms, want 3", len(all))
	}
	reach := s.FormInventory(true)
	if len(reach) != 2 {
		t.Fatalf("FormInventory(true) = %d forms, want 2 (mulsd dead)", len(reach))
	}
	for _, e := range reach {
		if e.Key == "mulsd" {
			t.Error("dead mulsd site leaked into the reachable inventory")
		}
	}
	addrs := s.AddressInventory(true)
	if len(addrs) != 2 {
		t.Fatalf("AddressInventory(true) = %d, want 2", len(addrs))
	}
	for _, e := range addrs {
		if e.Count != 1 {
			t.Errorf("address entry %s has weight %d, want 1", e.Key, e.Count)
		}
	}
}

func TestRaisesFP(t *testing.T) {
	cases := map[isa.Opcode]bool{
		isa.OpADDSD: true,
		isa.OpMOVSD: false, // moves never raise
		isa.OpMOVI:  false,
		isa.OpJMP:   false,
		isa.OpCALLC: false,
	}
	for op, want := range cases {
		if got := RaisesFP(op); got != want {
			t.Errorf("RaisesFP(%v) = %v, want %v", op, got, want)
		}
	}
}

func TestPatchFeasibility(t *testing.T) {
	s := ScanProgram(deadCodeProgram())
	rep := s.PatchFeasibility(1000, 150, 6000)
	if rep.TotalSites != 3 || rep.ReachableSites != 2 {
		t.Errorf("sites = %d/%d reachable, want 3/2", rep.TotalSites, rep.ReachableSites)
	}
	// All three forms are scalar binary64 arithmetic: emulable.
	if rep.EmulableSites != 3 || rep.EmulableReachable != 2 {
		t.Errorf("emulable = %d/%d reachable, want 3/2", rep.EmulableSites, rep.EmulableReachable)
	}
	if len(rep.UnsupportedForms) != 0 {
		t.Errorf("UnsupportedForms = %v, want none", rep.UnsupportedForms)
	}
	if rep.Feasibility.TotalEvents != 2 {
		t.Errorf("feasibility model saw %d sites, want the 2 reachable", rep.Feasibility.TotalEvents)
	}
}

func TestValidateSyntheticTrace(t *testing.T) {
	p := deadCodeProgram()
	s := ScanProgram(p)

	rec := func(idx int) trace.Record {
		r := trace.Record{Rip: p.AddrOf(idx), Opcode: uint16(p.Insts[idx].Op)}
		copy(r.InstrWord[:], func() []byte { w := p.Encode(idx); return w[:] }())
		return r
	}
	addsd, mulsd := 3, 8

	// Sound trace: repeated hits on the reachable addsd site.
	v := s.Validate([]trace.Record{rec(addsd), rec(addsd), rec(addsd)})
	if !v.Sound() || v.Recall != 1.0 {
		t.Fatalf("sound trace judged unsound: %v", v)
	}
	if v.Events != 3 || v.DynamicSites != 1 || v.MatchedSites != 1 || v.FormMismatches != 0 {
		t.Errorf("sound trace counts wrong: %v", v)
	}
	if v.Precision != 0.5 { // 1 of 2 reachable sites exercised
		t.Errorf("Precision = %v, want 0.5", v.Precision)
	}

	// A trap at an address that is not a site: soundness violation.
	bogus := trace.Record{Rip: p.AddrOf(0), Opcode: uint16(p.Insts[0].Op)}
	copy(bogus.InstrWord[:], func() []byte { w := p.Encode(0); return w[:] }())
	v = s.Validate([]trace.Record{rec(addsd), bogus})
	if v.Sound() || len(v.Missing) != 1 || v.Missing[0] != p.AddrOf(0) {
		t.Errorf("missing site not detected: %v", v)
	}
	if v.Recall >= 1.0 {
		t.Errorf("Recall = %v, want < 1 with a missing site", v.Recall)
	}

	// A trap at a statically unreachable site: reachability violation.
	v = s.Validate([]trace.Record{rec(mulsd)})
	if v.Sound() || len(v.UnreachableHit) != 1 {
		t.Errorf("unreachable hit not detected: %v", v)
	}

	// A corrupted instruction word: form mismatch, but still sound.
	bad := rec(addsd)
	bad.InstrWord[0] ^= 0xFF
	v = s.Validate([]trace.Record{bad})
	if !v.Sound() || v.FormMismatches != 1 {
		t.Errorf("form mismatch not counted: %v", v)
	}
}

func TestEmptyProgram(t *testing.T) {
	p := isa.NewBuilder("empty").Build()
	s := ScanProgram(p)
	if st := s.CFG.Stats(); st.Blocks != 0 || st.Insts != 0 {
		t.Errorf("empty program stats = %+v", st)
	}
	if len(s.Sites) != 0 || len(s.Libc) != 0 {
		t.Error("empty program should have no sites or libc refs")
	}
	v := s.Validate(nil)
	if !v.Sound() || v.Events != 0 {
		t.Errorf("empty validation = %v", v)
	}
}
