package binscan

import (
	"fmt"
	"sort"

	"repro/internal/isa"
	"repro/internal/trace"
)

// Validation is the result of replaying a dynamic trace against a static
// scan. The load-bearing number is Recall: the scan is *sound* exactly
// when every dynamically observed trap address is a statically
// discovered site (Recall == 1.0). Precision measures how much of the
// static prediction the dynamic run exercised — necessarily partial,
// since static analysis cannot know which paths execute.
type Validation struct {
	// Events is the number of trace records replayed.
	Events int
	// DynamicSites is the number of distinct trap addresses in the trace.
	DynamicSites int
	// MatchedSites counts dynamic sites found in the static inventory.
	MatchedSites int
	// Missing lists dynamic trap addresses absent from the inventory —
	// soundness violations (always empty for a correct scan).
	Missing []uint64
	// UnreachableHit lists dynamic trap addresses at sites the
	// reachability analysis marked unreachable — reachability soundness
	// violations (always empty, since reachability over-approximates).
	UnreachableHit []uint64
	// FormMismatches counts records whose trace instruction word decodes
	// to a different form than the static site holds (trace corruption or
	// decoder drift).
	FormMismatches int
	// Recall is MatchedSites / DynamicSites; 1.0 means the scan is sound.
	Recall float64
	// Precision is DynamicSites-that-matched / reachable static sites:
	// the fraction of the static prediction this trace confirmed.
	Precision float64
}

// Sound reports whether the soundness invariant held: every dynamic trap
// address is a statically discovered, statically reachable site.
func (v Validation) Sound() bool {
	return len(v.Missing) == 0 && len(v.UnreachableHit) == 0
}

// Validate replays individual-mode trace records against the scan. Each
// record's rip is looked up in the site inventory, and its captured
// instruction word is decoded and cross-checked against the static
// instruction form.
func (s *Scan) Validate(recs []trace.Record) Validation {
	v := Validation{Events: len(recs)}
	seen := make(map[uint64]bool)
	for i := range recs {
		rec := &recs[i]
		if !seen[rec.Rip] {
			seen[rec.Rip] = true
			v.DynamicSites++
			site := s.SiteAt(rec.Rip)
			switch {
			case site == nil:
				v.Missing = append(v.Missing, rec.Rip)
			case !site.Reachable:
				v.UnreachableHit = append(v.UnreachableHit, rec.Rip)
				v.MatchedSites++
			default:
				v.MatchedSites++
			}
		}
		var word [isa.InstBytes]byte
		copy(word[:], rec.InstrWord[:isa.InstBytes])
		if dec, ok := isa.DecodeWord(word); !ok || dec.Op != isa.Opcode(rec.Opcode) {
			v.FormMismatches++
		}
	}
	sort.Slice(v.Missing, func(i, j int) bool { return v.Missing[i] < v.Missing[j] })
	sort.Slice(v.UnreachableHit, func(i, j int) bool { return v.UnreachableHit[i] < v.UnreachableHit[j] })
	if v.DynamicSites > 0 {
		v.Recall = float64(v.MatchedSites-len(v.UnreachableHit)) / float64(v.DynamicSites)
	}
	if reach := s.reachableSiteCount(); reach > 0 {
		v.Precision = float64(v.MatchedSites-len(v.UnreachableHit)) / float64(reach)
	}
	return v
}

func (s *Scan) reachableSiteCount() int {
	n := 0
	for i := range s.Sites {
		if s.Sites[i].Reachable {
			n++
		}
	}
	return n
}

// String renders the validation one-per-line for CLI output.
func (v Validation) String() string {
	return fmt.Sprintf("events=%d dynamic-sites=%d matched=%d missing=%d unreachable-hit=%d form-mismatch=%d recall=%.3f precision=%.3f",
		v.Events, v.DynamicSites, v.MatchedSites, len(v.Missing),
		len(v.UnreachableHit), v.FormMismatches, v.Recall, v.Precision)
}
