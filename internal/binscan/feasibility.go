package binscan

import (
	"sort"

	"repro/internal/mitigate"
)

// PatchReport is the Section 6 patch-feasibility pass computed from the
// static site inventory: how many rounding sites exist, how many the
// mitigation prototype could emulate, and what the amortization model
// says about patching them versus trap-and-emulating.
type PatchReport struct {
	// TotalSites and ReachableSites count the floating point sites.
	TotalSites, ReachableSites int
	// EmulableSites counts sites whose form mitigate.ShadowExecutor
	// supports; EmulableReachable restricts to reachable ones.
	EmulableSites, EmulableReachable int
	// UnsupportedForms lists forms present in reachable code that the
	// prototype cannot emulate (they would fall back to mask-and-step).
	UnsupportedForms []string
	// Feasibility is the Section 6 amortization model evaluated over the
	// static site counts (each site weighted equally — the conservative
	// assumption available before any dynamic profile exists).
	Feasibility mitigate.FeasibilityReport
}

// PatchFeasibility evaluates binary-patching feasibility from static
// information alone: every reachable site is assumed to fire, each with
// equal weight. patchCycles is the one-time per-site patching cost,
// emulCycles the per-event software emulation cost, and trapCycles the
// per-event cost of the trap-and-emulate alternative (two kernel
// crossings). With a dynamic profile, mitigate.Feasibility can be called
// directly on measured rank tables instead.
func (s *Scan) PatchFeasibility(patchCycles, emulCycles, trapCycles float64) PatchReport {
	rep := PatchReport{TotalSites: len(s.Sites)}
	unsupported := make(map[string]bool)
	for i := range s.Sites {
		site := &s.Sites[i]
		if site.Emulable {
			rep.EmulableSites++
		}
		if !site.Reachable {
			continue
		}
		rep.ReachableSites++
		if site.Emulable {
			rep.EmulableReachable++
		} else {
			unsupported[site.Op.String()] = true
		}
	}
	rep.UnsupportedForms = make([]string, 0, len(unsupported))
	for f := range unsupported {
		rep.UnsupportedForms = append(rep.UnsupportedForms, f)
	}
	sort.Strings(rep.UnsupportedForms)
	rep.Feasibility = mitigate.Feasibility(
		s.AddressInventory(true), s.FormInventory(true),
		patchCycles, emulCycles, trapCycles)
	return rep
}
