// Package binscan statically analyzes guest isa.Program binaries: basic
// block and control-flow-graph recovery, reachability from the program
// entry, a complete inventory of floating point instruction sites, and
// interposed-libc-symbol references split into *present* and *reachable*.
//
// It is the static counterpart of the paper's two analyses:
//
//   - The Figure 8 source analysis greps 7.5M lines of source for
//     references to the functions FPSpy interposes on. A grep finds
//     references in dead branches and cannot tell them from live ones;
//     binscan reproduces the grep result (presence) and additionally
//     computes what grep cannot — whether any referencing site is
//     reachable from the entry point.
//
//   - The Section 6 feasibility argument observes that fewer than 100
//     static addresses cover more than 99% of dynamic rounding events
//     (Figure 19), so binary-patching the rounding *sites* is practical.
//     binscan enumerates every such site without running the program,
//     classifies each by instruction form (the static counterpart of the
//     Figure 17/19 rank tables), and marks which sites the mitigation
//     prototype can emulate.
//
// The analysis is sound by construction: every instruction that can
// dynamically raise a floating point event appears in the site
// inventory, so a dynamic trap address absent from the scan is a bug
// (Validate checks exactly this against recorded traces).
package binscan

import (
	"repro/internal/isa"
)

// noReturn lists libc symbols that never return to the call site: the
// instruction after such a call is not a fall-through successor. This is
// the same modeling real binary analysis applies to exit()-like
// functions, and it is what makes the "dead code after pthread_exit"
// pattern in the studied applications statically unreachable.
var noReturn = map[string]bool{
	"exit":         true,
	"pthread_exit": true,
	"rt_sigreturn": true,
}

// Block is one recovered basic block: a maximal straight-line run of
// instructions with a single entry at Start.
type Block struct {
	// Start and End delimit the instruction index range [Start, End).
	Start, End int
	// Succs lists successor block indices.
	Succs []int
	// AddressTaken marks blocks whose start address appears as an
	// instruction-pointer constant in the program text (function pointers
	// passed to pthread_create/clone/signal). They are reachability roots:
	// the kernel can transfer control to them without a static edge.
	AddressTaken bool
	// Reachable marks blocks reachable from the entry or from an
	// address-taken root.
	Reachable bool
}

// Len returns the number of instructions in the block.
func (b *Block) Len() int { return b.End - b.Start }

// CFG is the recovered control flow graph of a program.
type CFG struct {
	// Prog is the analyzed program.
	Prog *isa.Program
	// Blocks lists basic blocks in address order.
	Blocks []Block
	// Edges is the total number of control flow edges.
	Edges int

	blockOf []int // instruction index -> block index
}

// BuildCFG recovers basic blocks and control flow edges. Direct branch
// and call targets come from the instruction encoding; indirect control
// transfer (signal handlers, thread entry points) is modeled by treating
// every address-taken block as a root. Address-taken detection is
// conservative: any movi immediate that decodes to a valid in-text
// instruction address is treated as taken, which can only add roots —
// it never loses one — so reachability over-approximates execution.
func BuildCFG(p *isa.Program) *CFG {
	n := len(p.Insts)
	leader := make([]bool, n+1)
	taken := make([]bool, n)
	if n > 0 {
		leader[0] = true
	}
	markTarget := func(idx int64) {
		if idx >= 0 && idx < int64(n) {
			leader[idx] = true
		}
	}
	for i := 0; i < n; i++ {
		inst := &p.Insts[i]
		switch inst.Op.Info().Class {
		case isa.ClassBranch:
			if inst.Op != isa.OpRET {
				markTarget(inst.Imm)
			}
			leader[i+1] = true
		case isa.ClassSys:
			if inst.Op == isa.OpHLT || (inst.Op == isa.OpCALLC && noReturn[inst.Sym]) {
				leader[i+1] = true
			}
		case isa.ClassInt:
			if inst.Op == isa.OpMOVI {
				if t := p.IndexOf(uint64(inst.Imm)); t >= 0 {
					leader[t] = true
					taken[t] = true
				}
			}
		}
	}

	cfg := &CFG{Prog: p, blockOf: make([]int, n)}
	for i := 0; i < n; i++ {
		if leader[i] {
			cfg.Blocks = append(cfg.Blocks, Block{Start: i, AddressTaken: taken[i]})
		}
		cfg.blockOf[i] = len(cfg.Blocks) - 1
	}
	for bi := range cfg.Blocks {
		if bi+1 < len(cfg.Blocks) {
			cfg.Blocks[bi].End = cfg.Blocks[bi+1].Start
		} else {
			cfg.Blocks[bi].End = n
		}
	}

	addSucc := func(bi int, target int) {
		if target < 0 || target >= n {
			return // would fault at runtime; no edge
		}
		cfg.Blocks[bi].Succs = append(cfg.Blocks[bi].Succs, cfg.blockOf[target])
	}
	for bi := range cfg.Blocks {
		b := &cfg.Blocks[bi]
		last := &p.Insts[b.End-1]
		switch last.Op.Info().Class {
		case isa.ClassBranch:
			switch last.Op {
			case isa.OpJMP:
				addSucc(bi, int(last.Imm))
			case isa.OpRET:
				// Return edges are covered by the caller's fall-through
				// successor (the call-returns assumption).
			case isa.OpCALL:
				addSucc(bi, int(last.Imm))
				addSucc(bi, b.End)
			default: // conditional branches
				addSucc(bi, int(last.Imm))
				addSucc(bi, b.End)
			}
		case isa.ClassSys:
			if last.Op == isa.OpHLT || (last.Op == isa.OpCALLC && noReturn[last.Sym]) {
				break // terminator
			}
			addSucc(bi, b.End)
		default:
			addSucc(bi, b.End)
		}
		cfg.Edges += len(b.Succs)
	}

	cfg.markReachable()
	return cfg
}

// markReachable floods reachability from the entry block and every
// address-taken root.
func (c *CFG) markReachable() {
	var work []int
	push := func(bi int) {
		if !c.Blocks[bi].Reachable {
			c.Blocks[bi].Reachable = true
			work = append(work, bi)
		}
	}
	if len(c.Blocks) > 0 {
		push(0)
	}
	for bi := range c.Blocks {
		if c.Blocks[bi].AddressTaken {
			push(bi)
		}
	}
	for len(work) > 0 {
		bi := work[len(work)-1]
		work = work[:len(work)-1]
		for _, s := range c.Blocks[bi].Succs {
			push(s)
		}
	}
}

// BlockOf returns the index of the block containing instruction idx, or
// -1 when idx is out of range.
func (c *CFG) BlockOf(idx int) int {
	if idx < 0 || idx >= len(c.blockOf) {
		return -1
	}
	return c.blockOf[idx]
}

// InstReachable reports whether the instruction at idx lies in a
// reachable block.
func (c *CFG) InstReachable(idx int) bool {
	bi := c.BlockOf(idx)
	return bi >= 0 && c.Blocks[bi].Reachable
}

// Stats summarizes a CFG for reporting.
type Stats struct {
	// Insts is the program's instruction count.
	Insts int
	// Blocks and Edges count recovered blocks and control flow edges.
	Blocks, Edges int
	// ReachableBlocks and ReachableInsts count what the reachability
	// analysis can prove live.
	ReachableBlocks, ReachableInsts int
	// Roots counts address-taken blocks (indirect entry points).
	Roots int
}

// Stats computes summary statistics.
func (c *CFG) Stats() Stats {
	st := Stats{Insts: len(c.Prog.Insts), Blocks: len(c.Blocks), Edges: c.Edges}
	for i := range c.Blocks {
		b := &c.Blocks[i]
		if b.AddressTaken {
			st.Roots++
		}
		if b.Reachable {
			st.ReachableBlocks++
			st.ReachableInsts += b.Len()
		}
	}
	return st
}
