package binscan

import (
	"testing"

	"repro/internal/isa"
)

// TestLeaIntoBlockInteriorSplitsBlock covers the address-taken-root edge
// case where a Lea constant targets the middle of what would otherwise
// be one straight-line block. The target must become a block leader (and
// a root), splitting the block, and the first half must keep a
// fall-through edge into the second.
//
//	entry:    lea r2, interior; addsd       <- block 0
//	interior: mulsd; hlt                    <- block 1, address-taken
func TestLeaIntoBlockInteriorSplitsBlock(t *testing.T) {
	b := isa.NewBuilder("lea-interior")
	interior := b.Label("interior")
	b.Lea(2, interior)
	b.FP2(isa.OpADDSD, 1, 1, 1)
	b.Bind(interior)
	b.FP2(isa.OpMULSD, 2, 2, 2)
	b.Hlt()
	p := b.Build()

	cfg := BuildCFG(p)
	if len(cfg.Blocks) != 2 {
		t.Fatalf("Blocks = %d, want 2 (lea splits the straight line)", len(cfg.Blocks))
	}
	front, back := &cfg.Blocks[0], &cfg.Blocks[1]
	if front.Start != 0 || front.End != 2 {
		t.Errorf("front block = [%d,%d), want [0,2)", front.Start, front.End)
	}
	if back.Start != 2 || back.End != 4 {
		t.Errorf("back block = [%d,%d), want [2,4)", back.Start, back.End)
	}
	if front.AddressTaken {
		t.Error("front block should not be address-taken")
	}
	if !back.AddressTaken {
		t.Error("interior block must be address-taken (its address is a Lea constant)")
	}
	if len(front.Succs) != 1 || front.Succs[0] != 1 {
		t.Errorf("front.Succs = %v, want fall-through [1]", front.Succs)
	}
	st := cfg.Stats()
	if st.Roots != 1 {
		t.Errorf("Roots = %d, want 1", st.Roots)
	}
	if st.ReachableBlocks != 2 || st.ReachableInsts != 4 {
		t.Errorf("reachability = %d blocks / %d insts, want 2/4",
			st.ReachableBlocks, st.ReachableInsts)
	}
}

// TestAddressTakenFallthroughSuccessor covers a block that is
// simultaneously an indirect root (its address is taken) and an
// ordinary fall-through successor of a conditional branch. Both roles
// must survive CFG recovery: the static edge from the branch block and
// the AddressTaken mark, with reachability counting the block once.
//
//	entry:   lea r2, handler; beq r1, r0, done   <- block 0
//	handler: divsd                               <- block 1, taken + fall-through
//	done:    hlt                                 <- block 2
func TestAddressTakenFallthroughSuccessor(t *testing.T) {
	b := isa.NewBuilder("taken-fallthrough")
	handler := b.Label("handler")
	done := b.Label("done")
	b.Lea(2, handler)
	b.Beq(1, 0, done)
	b.Bind(handler)
	b.FP2(isa.OpDIVSD, 3, 3, 3)
	b.Bind(done)
	b.Hlt()
	p := b.Build()

	cfg := BuildCFG(p)
	if len(cfg.Blocks) != 3 {
		t.Fatalf("Blocks = %d, want 3", len(cfg.Blocks))
	}
	entry, hb, db := &cfg.Blocks[0], &cfg.Blocks[1], &cfg.Blocks[2]
	if !hb.AddressTaken {
		t.Error("handler block must be address-taken")
	}
	if hb.Start != 2 || hb.End != 3 {
		t.Errorf("handler block = [%d,%d), want [2,3)", hb.Start, hb.End)
	}
	// The branch block must have both successors: the branch target
	// (done) and the fall-through into the address-taken handler.
	succs := map[int]bool{}
	for _, s := range entry.Succs {
		succs[s] = true
	}
	if len(entry.Succs) != 2 || !succs[1] || !succs[2] {
		t.Errorf("entry.Succs = %v, want {1 (fall-through), 2 (branch target)}", entry.Succs)
	}
	if len(hb.Succs) != 1 || hb.Succs[0] != 2 {
		t.Errorf("handler.Succs = %v, want fall-through [2]", hb.Succs)
	}
	if !db.Reachable || !hb.Reachable || !entry.Reachable {
		t.Error("all three blocks must be reachable")
	}
	st := cfg.Stats()
	if st.Roots != 1 {
		t.Errorf("Roots = %d, want 1 (handler)", st.Roots)
	}
	if st.Edges != 3 {
		t.Errorf("Edges = %d, want 3", st.Edges)
	}
	if st.ReachableBlocks != 3 || st.ReachableInsts != len(p.Insts) {
		t.Errorf("reachability = %d blocks / %d insts, want 3/%d",
			st.ReachableBlocks, st.ReachableInsts, len(p.Insts))
	}
}
