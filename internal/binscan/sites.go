package binscan

import (
	"sort"

	"repro/internal/analysis"
	"repro/internal/isa"
	"repro/internal/mitigate"
)

// Site is one statically discovered floating point instruction site: an
// instruction that can raise IEEE 754 condition codes and therefore trap
// under FPSpy's unmasking.
type Site struct {
	// Index is the instruction index.
	Index int
	// Addr is the instruction address (what trace records report as rip).
	Addr uint64
	// Op is the instruction form.
	Op isa.Opcode
	// Reachable marks sites in blocks reachable from the entry or an
	// address-taken root.
	Reachable bool
	// Emulable marks forms the Section 6 mitigation prototype
	// (mitigate.ShadowExecutor) can re-execute at high precision.
	Emulable bool
}

// LibcRef summarizes the static references to one libc symbol.
type LibcRef struct {
	// Sym is the symbol name.
	Sym string
	// Sites is the number of callc sites referencing it.
	Sites int
	// ReachableSites counts the referencing sites in reachable blocks.
	ReachableSites int
}

// Present reports whether the symbol is referenced anywhere in the text
// — the grep answer of the paper's Figure 8.
func (r LibcRef) Present() bool { return r.Sites > 0 }

// Reachable reports whether any referencing site is reachable — the
// distinction the paper's grep pass cannot make.
func (r LibcRef) Reachable() bool { return r.ReachableSites > 0 }

// Scan is the full static analysis of one program.
type Scan struct {
	// Prog is the analyzed program.
	Prog *isa.Program
	// CFG is the recovered control flow graph.
	CFG *CFG
	// Sites lists every floating point site in address order.
	Sites []Site
	// Libc lists referenced libc symbols in lexical order.
	Libc []LibcRef

	siteAt map[uint64]int // address -> index into Sites
}

// RaisesFP reports whether an instruction form can raise floating point
// condition codes (and so can fault under FPSpy). Moves never raise,
// even on denormal operands; every other floating point class can.
func RaisesFP(op isa.Opcode) bool {
	switch op.Info().Class {
	case isa.ClassFPArith, isa.ClassFMA, isa.ClassFPConvert,
		isa.ClassFPCompare, isa.ClassFPRound, isa.ClassFPDot:
		return true
	}
	return false
}

// ScanProgram runs the full static analysis: CFG recovery, the floating
// point site inventory, and the libc reference census.
func ScanProgram(p *isa.Program) *Scan {
	s := &Scan{Prog: p, CFG: BuildCFG(p), siteAt: make(map[uint64]int)}
	libc := make(map[string]*LibcRef)
	for i := range p.Insts {
		inst := &p.Insts[i]
		reach := s.CFG.InstReachable(i)
		if RaisesFP(inst.Op) {
			s.siteAt[p.AddrOf(i)] = len(s.Sites)
			s.Sites = append(s.Sites, Site{
				Index:     i,
				Addr:      p.AddrOf(i),
				Op:        inst.Op,
				Reachable: reach,
				Emulable:  mitigate.ShadowSupported(inst.Op),
			})
		}
		if inst.Op == isa.OpCALLC {
			ref := libc[inst.Sym]
			if ref == nil {
				ref = &LibcRef{Sym: inst.Sym}
				libc[inst.Sym] = ref
			}
			ref.Sites++
			if reach {
				ref.ReachableSites++
			}
		}
	}
	for _, ref := range libc {
		s.Libc = append(s.Libc, *ref)
	}
	sort.Slice(s.Libc, func(i, j int) bool { return s.Libc[i].Sym < s.Libc[j].Sym })
	return s
}

// SiteAt returns the site at a code address, or nil when the address is
// not a floating point site.
func (s *Scan) SiteAt(addr uint64) *Site {
	if i, ok := s.siteAt[addr]; ok {
		return &s.Sites[i]
	}
	return nil
}

// SiteAddrs returns the addresses of all sites (reachableOnly restricts
// to the reachable subset), in the set form internal/analysis consumes.
func (s *Scan) SiteAddrs(reachableOnly bool) map[uint64]bool {
	out := make(map[uint64]bool, len(s.Sites))
	for i := range s.Sites {
		if reachableOnly && !s.Sites[i].Reachable {
			continue
		}
		out[s.Sites[i].Addr] = true
	}
	return out
}

// FormInventory counts sites per instruction form, most common first —
// the static counterpart of the Figure 17 dynamic rank table.
func (s *Scan) FormInventory(reachableOnly bool) []analysis.RankEntry {
	counts := make(map[string]uint64)
	for i := range s.Sites {
		if reachableOnly && !s.Sites[i].Reachable {
			continue
		}
		counts[s.Sites[i].Op.String()]++
	}
	out := make([]analysis.RankEntry, 0, len(counts))
	for k, c := range counts {
		out = append(out, analysis.RankEntry{Key: k, Count: c})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Count != out[j].Count {
			return out[i].Count > out[j].Count
		}
		return out[i].Key < out[j].Key
	})
	return out
}

// AddressInventory lists each site as a rank entry with unit weight —
// the static counterpart of the Figure 19 address rank table, and the
// site-count input the Section 6 feasibility model takes.
func (s *Scan) AddressInventory(reachableOnly bool) []analysis.RankEntry {
	var out []analysis.RankEntry
	for i := range s.Sites {
		site := &s.Sites[i]
		if reachableOnly && !site.Reachable {
			continue
		}
		out = append(out, analysis.RankEntry{Key: analysis.FormatAddr(site.Addr), Count: 1})
	}
	return out
}

// PresentLibc returns the set of libc symbols referenced anywhere in the
// text — exactly what the deprecated workload.StaticLibcUse reported.
func (s *Scan) PresentLibc() map[string]bool {
	out := make(map[string]bool, len(s.Libc))
	for _, r := range s.Libc {
		out[r.Sym] = true
	}
	return out
}

// ReachableLibc returns the subset of referenced symbols with at least
// one reachable call site.
func (s *Scan) ReachableLibc() map[string]bool {
	out := make(map[string]bool)
	for _, r := range s.Libc {
		if r.Reachable() {
			out[r.Sym] = true
		}
	}
	return out
}
