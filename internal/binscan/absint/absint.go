package absint

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"io"
	"sync"

	"repro/internal/binscan"
	"repro/internal/isa"
	"repro/internal/mxcsr"
	"repro/internal/softfloat"
	"repro/internal/trace"
)

// state is the abstract machine state at one program point: one Val per
// 64-bit vector lane, one IntVal per integer register, and whether the
// initial memory image (data segment plus zero fill) is still valid for
// loads. valid distinguishes bottom (unreached) from real states.
type state struct {
	valid bool
	mem   bool
	vec   [isa.NumVecRegs][isa.VecWords]Val
	ints  [isa.NumIntRegs]IntVal
}

func havocState() state {
	var st state
	st.valid = true
	for r := range st.vec {
		for l := range st.vec[r] {
			st.vec[r][l] = valTop64()
		}
	}
	for r := range st.ints {
		st.ints[r] = intTop()
	}
	return st
}

// entryState models machine.New plus kernel process setup: vector
// registers are zeroed, integer registers are unknown (the kernel seeds
// the stack pointer and argument registers), and the initial memory
// image is valid unless an address-taken root exists (a signal handler
// or second thread can rewrite memory between any two instructions;
// sigreturn restores registers, not memory).
func entryState(memValid bool) state {
	st := havocState()
	zero := valFromPatterns64([]uint64{0})
	for r := range st.vec {
		for l := range st.vec[r] {
			st.vec[r][l] = zero
		}
	}
	st.mem = memValid
	return st
}

func joinState(a, b state, wide bool) state {
	if !a.valid {
		if wide {
			return widenState(b)
		}
		return b
	}
	if !b.valid {
		if wide {
			return widenState(a)
		}
		return a
	}
	out := state{valid: true, mem: a.mem && b.mem}
	for r := range out.vec {
		for l := range out.vec[r] {
			out.vec[r][l] = joinVal(a.vec[r][l], b.vec[r][l], wide)
		}
	}
	for r := range out.ints {
		out.ints[r] = joinInt(a.ints[r], b.ints[r], wide)
	}
	return out
}

func widenState(a state) state {
	return joinState(a, a, true)
}

func stateEqual(a, b state) bool {
	if a.valid != b.valid || a.mem != b.mem {
		return false
	}
	for r := range a.vec {
		for l := range a.vec[r] {
			if !valEqual(a.vec[r][l], b.vec[r][l]) {
				return false
			}
		}
	}
	for r := range a.ints {
		if !intEqual(a.ints[r], b.ints[r]) {
			return false
		}
	}
	return true
}

// Verdict classifies one exception class at one site.
type Verdict uint8

const (
	// NeverTrap means the class is impossible on every execution.
	NeverTrap Verdict = iota
	// MayTrap means the class is possible on some execution.
	MayTrap
	// MustTrap means the class fires on every execution reaching the site.
	MustTrap
)

func (v Verdict) String() string {
	switch v {
	case NeverTrap:
		return "never"
	case MayTrap:
		return "may"
	default:
		return "must"
	}
}

// SiteVerdict is the static classification of one floating point site.
type SiteVerdict struct {
	// Index is the instruction index, Addr its address.
	Index int
	Addr  uint64
	// Op is the instruction form.
	Op isa.Opcode
	// Reachable marks sites the abstract interpretation can reach (it
	// refines binscan reachability by pruning branches over concrete
	// integer sets; an unreachable site trivially never traps).
	Reachable bool
	// May is the union of conditions possible at the site; Must the
	// intersection of conditions raised on every execution reaching it.
	May, Must softfloat.Flags
	// Prunable marks sites the spy may skip in individual mode: no
	// condition is ever raised, the form is plain arithmetic the quiet
	// interpreter handles, and the program never rewrites the MXCSR
	// control fields (so native round-to-nearest arithmetic is
	// bit-identical to the softfloat path).
	Prunable bool
}

// VerdictFor classifies one exception class (pass a single flag bit).
func (s *SiteVerdict) VerdictFor(class softfloat.Flags) Verdict {
	switch {
	case s.Must&class != 0:
		return MustTrap
	case s.May&class != 0:
		return MayTrap
	default:
		return NeverTrap
	}
}

// Result is the full analysis of one program.
type Result struct {
	// Prog is the analyzed program, CFG its recovered control flow graph.
	Prog *isa.Program
	CFG  *binscan.CFG
	// Sites lists verdicts for every floating point site in address
	// order (the same inventory binscan.ScanProgram discovers).
	Sites []SiteVerdict
	// EnvVaries reports that a reachable ldmxcsr forced the analysis to
	// consider every rounding-mode/FTZ/DAZ combination — which also
	// disables pruning, since exact results can differ across rounding
	// modes (x + -x is -0 under round-down) without raising any flag.
	EnvVaries bool

	siteAt map[uint64]int
}

// SiteAt returns the verdict at a code address, or nil when the address
// is not a floating point site.
func (r *Result) SiteAt(addr uint64) *SiteVerdict {
	if i, ok := r.siteAt[addr]; ok {
		return &r.Sites[i]
	}
	return nil
}

// PrunableCount counts sites the spy may skip.
func (r *Result) PrunableCount() int {
	n := 0
	for i := range r.Sites {
		if r.Sites[i].Prunable {
			n++
		}
	}
	return n
}

// QuietTable returns a per-instruction-index table marking prunable
// sites, in the form machine.Machine.QuietFP consumes.
func (r *Result) QuietTable() []bool {
	t := make([]bool, len(r.Prog.Insts))
	for i := range r.Sites {
		if r.Sites[i].Prunable {
			t[r.Sites[i].Index] = true
		}
	}
	return t
}

// Class pairs an exception class name (the FPE_EXCEPT_LIST spelling)
// with its condition flag, for consumers enumerating per-class verdicts.
type Class struct {
	Name string
	Flag softfloat.Flags
}

// Classes lists the six exception classes in x64 priority order.
var Classes = []Class{
	{"invalid", softfloat.FlagInvalid},
	{"denorm", softfloat.FlagDenormal},
	{"divide", softfloat.FlagDivideByZero},
	{"overflow", softfloat.FlagOverflow},
	{"underflow", softfloat.FlagUnderflow},
	{"inexact", softfloat.FlagInexact},
}

// Violation is one soundness failure: a dynamic trace record raised a
// condition the static analysis proved impossible at that address.
type Violation struct {
	// Addr is the trap address.
	Addr uint64
	// Raised is the observed condition set; Excess the subset the
	// analysis classified never-trap (zero when the site is missing from
	// the inventory entirely).
	Raised, Excess softfloat.Flags
	// Reason describes the failure.
	Reason string
}

func (v Violation) String() string {
	return fmt.Sprintf("rip=%#x raised=%v excess=%v: %s", v.Addr, v.Raised, v.Excess, v.Reason)
}

// CheckSoundness replays dynamic trace records against the static
// verdicts. It returns one violation per distinct (address, excess)
// pair; an empty slice means every observed condition was statically
// classified possible.
func CheckSoundness(r *Result, recs []trace.Record) []Violation {
	var out []Violation
	seen := make(map[uint64]softfloat.Flags)
	for i := range recs {
		rec := &recs[i]
		if rec.Raised == 0 {
			continue
		}
		if done, ok := seen[rec.Rip]; ok && done&rec.Raised == rec.Raised {
			continue
		}
		seen[rec.Rip] |= rec.Raised
		site := r.SiteAt(rec.Rip)
		switch {
		case site == nil:
			out = append(out, Violation{Addr: rec.Rip, Raised: rec.Raised,
				Reason: "trap at address missing from the site inventory"})
		case !site.Reachable:
			out = append(out, Violation{Addr: rec.Rip, Raised: rec.Raised,
				Reason: "trap at site classified unreachable"})
		case rec.Raised&^site.May != 0:
			out = append(out, Violation{Addr: rec.Rip, Raised: rec.Raised,
				Excess: rec.Raised &^ site.May,
				Reason: "condition classified never-trap was raised"})
		}
	}
	return out
}

// analyzer runs the fixpoint.
type analyzer struct {
	prog   *isa.Program
	cfg    *binscan.CFG
	envs   []softfloat.Env
	in     []state
	joins  []int
	work   []int
	queued []bool
}

// allEnvs enumerates every RC/FTZ/DAZ combination a guest ldmxcsr can
// install.
func allEnvs() []softfloat.Env {
	rms := []softfloat.RoundingMode{
		softfloat.RoundNearestEven, softfloat.RoundDown,
		softfloat.RoundUp, softfloat.RoundToZero,
	}
	var out []softfloat.Env
	for _, rm := range rms {
		for _, ftz := range []bool{false, true} {
			for _, daz := range []bool{false, true} {
				out = append(out, softfloat.Env{RM: rm, FTZ: ftz, DAZ: daz})
			}
		}
	}
	return out
}

// envSetFor picks the environment set: the power-on default unless a
// reachable ldmxcsr can install arbitrary control fields. (The spy and
// kernel only touch exception masks and sticky flags, which do not
// change arithmetic; guest ldmxcsr is the only channel to RC/FTZ/DAZ.)
func envSetFor(cfg *binscan.CFG) []softfloat.Env {
	for bi := range cfg.Blocks {
		b := &cfg.Blocks[bi]
		if !b.Reachable {
			continue
		}
		for i := b.Start; i < b.End; i++ {
			if cfg.Prog.Insts[i].Op == isa.OpLDMXCSR {
				return allEnvs()
			}
		}
	}
	return []softfloat.Env{mxcsr.Default.Env()}
}

// Analysis cache: programs are immutable once built, and both the spy
// construction path and the benchmarks analyze equivalent programs many
// times. The key is a content hash rather than the *Program pointer
// because workload builders return a fresh (but byte-identical) program
// per pass: the study schedules ~3 passes per workload, and pointer
// keying would re-run the whole analysis for each. Hashing is linear in
// program size and orders of magnitude cheaper than analyzing. The
// cache is bounded by wholesale reset.
var (
	cacheMu sync.Mutex
	cache   = make(map[progKey]*Result)
)

const cacheLimit = 64

// progKey identifies a program by content. Name and lengths ride along
// to make accidental hash collisions across different programs even
// less likely than the 64-bit hash alone.
type progKey struct {
	name  string
	insts int
	data  int
	hash  uint64
}

func keyOf(p *isa.Program) progKey {
	h := fnv.New64a()
	var buf [8 * 3]byte
	for i := range p.Insts {
		in := &p.Insts[i]
		binary.LittleEndian.PutUint64(buf[0:], uint64(in.Op)<<32|
			uint64(in.Rd)<<24|uint64(in.Rs1)<<16|uint64(in.Rs2)<<8|uint64(in.Rs3))
		binary.LittleEndian.PutUint64(buf[8:], uint64(in.Imm))
		binary.LittleEndian.PutUint64(buf[16:], uint64(len(in.Sym)))
		h.Write(buf[:])
		if in.Sym != "" {
			io.WriteString(h, in.Sym)
		}
	}
	binary.LittleEndian.PutUint64(buf[0:], p.Base)
	binary.LittleEndian.PutUint64(buf[8:], p.DataBase)
	h.Write(buf[:16])
	h.Write(p.Data)
	return progKey{name: p.Name, insts: len(p.Insts), data: len(p.Data), hash: h.Sum64()}
}

// Analyze runs the abstract interpretation, memoized by program content.
func Analyze(p *isa.Program) *Result {
	key := keyOf(p)
	cacheMu.Lock()
	if r, ok := cache[key]; ok {
		cacheMu.Unlock()
		return r
	}
	cacheMu.Unlock()
	r := analyzeProgram(p)
	cacheMu.Lock()
	if len(cache) >= cacheLimit {
		cache = make(map[progKey]*Result)
	}
	cache[key] = r
	cacheMu.Unlock()
	return r
}

func analyzeProgram(p *isa.Program) *Result {
	cfg := binscan.BuildCFG(p)
	an := &analyzer{
		prog:   p,
		cfg:    cfg,
		envs:   envSetFor(cfg),
		in:     make([]state, len(cfg.Blocks)),
		joins:  make([]int, len(cfg.Blocks)),
		queued: make([]bool, len(cfg.Blocks)),
	}

	anyRoot := false
	for bi := range cfg.Blocks {
		if cfg.Blocks[bi].AddressTaken {
			anyRoot = true
		}
	}
	if len(cfg.Blocks) > 0 {
		an.flowTo(0, entryState(!anyRoot))
	}
	for bi := range cfg.Blocks {
		if cfg.Blocks[bi].AddressTaken {
			an.flowTo(bi, havocState())
		}
	}

	for len(an.work) > 0 {
		bi := an.work[len(an.work)-1]
		an.work = an.work[:len(an.work)-1]
		an.queued[bi] = false
		an.transferBlock(bi, nil)
	}

	res := &Result{Prog: p, CFG: cfg, EnvVaries: len(an.envs) > 1, siteAt: make(map[uint64]int)}
	verdicts := make(map[int]*SiteVerdict)
	record := func(idx int, may, must softfloat.Flags) {
		v := verdicts[idx]
		if v == nil {
			verdicts[idx] = &SiteVerdict{Index: idx, Reachable: true, May: may, Must: must}
			return
		}
		v.May |= may
		v.Must &= must
	}
	for bi := range cfg.Blocks {
		if an.in[bi].valid {
			an.transferBlock(bi, record)
		}
	}
	for i := range p.Insts {
		if !binscan.RaisesFP(p.Insts[i].Op) {
			continue
		}
		sv := SiteVerdict{Index: i, Addr: p.AddrOf(i), Op: p.Insts[i].Op}
		if v := verdicts[i]; v != nil {
			sv.Reachable = true
			sv.May = v.May
			sv.Must = v.Must
		}
		// Masked forms are excluded: the quiet native path does not
		// implement merge masking, so pruning them buys nothing.
		sv.Prunable = sv.May == 0 && !res.EnvVaries &&
			sv.Op.Info().Class == isa.ClassFPArith && !sv.Op.Info().Masked
		res.siteAt[sv.Addr] = len(res.Sites)
		res.Sites = append(res.Sites, sv)
	}
	return res
}

// flowTo joins a state into a block's entry, widening after the join
// budget, and queues the block when its entry changed.
func (an *analyzer) flowTo(bi int, st state) {
	if !st.valid {
		return
	}
	an.joins[bi]++
	wide := an.joins[bi] > widenAfter
	merged := joinState(an.in[bi], st, wide)
	if stateEqual(merged, an.in[bi]) {
		return
	}
	an.in[bi] = merged
	if !an.queued[bi] {
		an.queued[bi] = true
		an.work = append(an.work, bi)
	}
}

// readInt reads an integer register abstraction (R0 is hardwired zero).
func readInt(st *state, r uint8) IntVal {
	if r == 0 {
		return intConst(0)
	}
	return st.ints[r]
}

func writeInt(st *state, r uint8, v IntVal) {
	if r != 0 {
		st.ints[r] = v
	}
}

// transferBlock interprets one block from its fixed entry state. During
// the fixpoint record is nil; the final evaluation pass passes a
// callback that collects per-site flag verdicts.
func (an *analyzer) transferBlock(bi int, record func(idx int, may, must softfloat.Flags)) {
	b := &an.cfg.Blocks[bi]
	st := an.in[bi]
	fixpoint := record == nil
	for i := b.Start; i < b.End; i++ {
		inst := &an.prog.Insts[i]
		info := inst.Op.Info()
		switch info.Class {
		case isa.ClassSys:
			switch inst.Op {
			case isa.OpHLT:
				return // no successor flow
			case isa.OpCALLC:
				if noReturnSym(inst.Sym) {
					return
				}
				// The callee may rewrite every register and all of memory.
				st = havocState()
			}

		case isa.ClassInt:
			an.execIntAbs(&st, inst)

		case isa.ClassBranch:
			switch inst.Op {
			case isa.OpRET:
				return // indirect; covered by the caller's fall-through edge
			case isa.OpJMP:
				if fixpoint {
					an.flowToInst(int(inst.Imm), st)
				}
				return
			case isa.OpCALL:
				// The push overwrites stack memory; the callee runs with the
				// call-site state, but whatever returns to the fall-through
				// (via ret) is unknown.
				st.mem = false
				if fixpoint {
					an.flowToInst(int(inst.Imm), st)
					an.flowToInst(i+1, havocState())
				}
				return
			default:
				canTake, canFall := condOutcomes(inst.Op, readInt(&st, inst.Rs1), readInt(&st, inst.Rs2))
				if fixpoint {
					if canTake {
						an.flowToInst(int(inst.Imm), st)
					}
					if canFall {
						an.flowToInst(i+1, st)
					}
				}
				return
			}

		case isa.ClassMem:
			an.execMemAbs(&st, inst)

		case isa.ClassFPMove:
			an.execMoveAbs(&st, inst)

		case isa.ClassMask:
			// Mask registers are not tracked; kmovrq makes its integer
			// destination unknown, kmovq has no tracked effect.
			if inst.Op == isa.OpKMOVRQ {
				writeInt(&st, inst.Rd, intTop())
			}

		default:
			may, must := an.execFPAbs(&st, inst, info)
			if record != nil {
				record(i, may, must)
			}
		}
	}
	if fixpoint {
		an.flowToInst(b.End, st)
	}
}

func (an *analyzer) flowToInst(idx int, st state) {
	if idx < 0 || idx >= len(an.prog.Insts) {
		return // falls off the text or faults; no successor
	}
	an.flowTo(an.cfg.BlockOf(idx), st)
}

// noReturnSym mirrors binscan's no-return modeling (binscan ends blocks
// at these call sites, so a mid-block callc here is always returning —
// the check is defensive).
func noReturnSym(sym string) bool {
	switch sym {
	case "exit", "pthread_exit", "rt_sigreturn":
		return true
	}
	return false
}

// execIntAbs interprets one integer ALU instruction over value sets.
func (an *analyzer) execIntAbs(st *state, inst *isa.Inst) {
	a := readInt(st, inst.Rs1)
	b := readInt(st, inst.Rs2)
	var v IntVal
	switch inst.Op {
	case isa.OpMOVI:
		v = intConst(uint64(inst.Imm))
	case isa.OpMOV:
		v = a
	case isa.OpADD:
		v = intBin(a, b, func(x, y uint64) uint64 { return x + y })
	case isa.OpADDI:
		v = intBin(a, intConst(uint64(inst.Imm)), func(x, y uint64) uint64 { return x + y })
	case isa.OpSUB:
		v = intBin(a, b, func(x, y uint64) uint64 { return x - y })
	case isa.OpMULQ:
		v = intBin(a, b, func(x, y uint64) uint64 { return uint64(int64(x) * int64(y)) })
	case isa.OpDIVQ, isa.OpREMQ:
		rem := inst.Op == isa.OpREMQ
		v = intBinPartial(a, b, func(x, y uint64) (uint64, bool) {
			if y == 0 {
				return 0, false // faults; that path has no successor state
			}
			if rem {
				return uint64(int64(x) % int64(y)), true
			}
			return uint64(int64(x) / int64(y)), true
		})
	case isa.OpAND:
		v = intBin(a, b, func(x, y uint64) uint64 { return x & y })
	case isa.OpOR:
		v = intBin(a, b, func(x, y uint64) uint64 { return x | y })
	case isa.OpXOR:
		v = intBin(a, b, func(x, y uint64) uint64 { return x ^ y })
	case isa.OpSHLI:
		v = intBin(a, intConst(uint64(inst.Imm)), func(x, y uint64) uint64 { return x << uint(y) })
	case isa.OpSHRI:
		v = intBin(a, intConst(uint64(inst.Imm)), func(x, y uint64) uint64 { return x >> uint(y) })
	default:
		v = intTop()
	}
	writeInt(st, inst.Rd, v)
}

func intBin(a, b IntVal, f func(x, y uint64) uint64) IntVal {
	return intBinPartial(a, b, func(x, y uint64) (uint64, bool) { return f(x, y), true })
}

func intBinPartial(a, b IntVal, f func(x, y uint64) (uint64, bool)) IntVal {
	if a.top || b.top {
		return intTop()
	}
	var out []uint64
	for _, x := range a.set {
		for _, y := range b.set {
			if z, ok := f(x, y); ok {
				out = append(out, z)
			}
		}
	}
	if len(out) == 0 {
		return intTop() // every combination faults; successors are dead anyway
	}
	return intFromSet(out)
}

// condOutcomes evaluates a conditional branch over concrete sets,
// pruning statically impossible edges.
func condOutcomes(op isa.Opcode, a, b IntVal) (canTake, canFall bool) {
	if a.top || b.top {
		return true, true
	}
	for _, x := range a.set {
		for _, y := range b.set {
			sa, sb := int64(x), int64(y)
			var taken bool
			switch op {
			case isa.OpBEQ:
				taken = sa == sb
			case isa.OpBNE:
				taken = sa != sb
			case isa.OpBLT:
				taken = sa < sb
			case isa.OpBGE:
				taken = sa >= sb
			case isa.OpBLE:
				taken = sa <= sb
			case isa.OpBGT:
				taken = sa > sb
			default:
				return true, true
			}
			if taken {
				canTake = true
			} else {
				canFall = true
			}
			if canTake && canFall {
				return true, true
			}
		}
	}
	return canTake, canFall
}

// initialByte reads the initial memory image: the data segment where
// loaded, zero elsewhere. Out-of-bounds loads fault dynamically (no
// successor state), so reading zero for them is vacuously sound.
func (an *analyzer) initialByte(addr uint64) byte {
	p := an.prog
	if addr >= p.DataBase && addr-p.DataBase < uint64(len(p.Data)) {
		return p.Data[addr-p.DataBase]
	}
	return 0
}

func (an *analyzer) initialLoad(addr uint64, n int) uint64 {
	var v uint64
	for i := 0; i < n; i++ {
		v |= uint64(an.initialByte(addr+uint64(i))) << (8 * uint(i))
	}
	return v
}

// loadAddrs resolves a load's effective addresses, or nil when unknown
// or when the initial image is no longer valid.
func (an *analyzer) loadAddrs(st *state, inst *isa.Inst) []uint64 {
	if !st.mem {
		return nil
	}
	base := readInt(st, inst.Rs1)
	if base.top {
		return nil
	}
	out := make([]uint64, 0, len(base.set))
	for _, b := range base.set {
		out = append(out, b+uint64(inst.Imm))
	}
	return out
}

// fldsUnknown is the 64-bit view of "movss load of an unknown 32-bit
// pattern": the upper 32 bits are zeroed, so as a binary64 the lane is
// +0 or a positive denormal.
func fldsUnknown() Val {
	return valAbs(bPZero|bPDen, 0, maxU32AsF64)
}

var maxU32AsF64 = f64FromBits(0xFFFFFFFF)

func f64FromBits(p uint64) float64 {
	v := valFromPatterns64([]uint64{p})
	return v.lo
}

// execMemAbs interprets loads and stores against the initial image.
func (an *analyzer) execMemAbs(st *state, inst *isa.Inst) {
	switch inst.Op {
	case isa.OpLD:
		if addrs := an.loadAddrs(st, inst); addrs != nil {
			vs := make([]uint64, len(addrs))
			for i, a := range addrs {
				vs[i] = an.initialLoad(a, 8)
			}
			writeInt(st, inst.Rd, intFromSet(vs))
		} else {
			writeInt(st, inst.Rd, intTop())
		}
	case isa.OpFLD:
		if addrs := an.loadAddrs(st, inst); addrs != nil {
			vs := make([]uint64, len(addrs))
			for i, a := range addrs {
				vs[i] = an.initialLoad(a, 8)
			}
			st.vec[inst.Rd][0] = valFromPatterns64(vs)
		} else {
			st.vec[inst.Rd][0] = valTop64()
		}
	case isa.OpFLDS:
		// movss load semantics: the full 64-bit lane is replaced by the
		// zero-extended 32-bit value.
		if addrs := an.loadAddrs(st, inst); addrs != nil {
			vs := make([]uint64, len(addrs))
			for i, a := range addrs {
				vs[i] = an.initialLoad(a, 4)
			}
			st.vec[inst.Rd][0] = valFromPatterns64(vs)
		} else {
			st.vec[inst.Rd][0] = fldsUnknown()
		}
	case isa.OpFLDV, isa.OpFLDVZ:
		words := 4
		if inst.Op == isa.OpFLDVZ {
			words = isa.VecWords
		}
		addrs := an.loadAddrs(st, inst)
		for l := 0; l < words; l++ {
			if addrs != nil {
				vs := make([]uint64, len(addrs))
				for i, a := range addrs {
					vs[i] = an.initialLoad(a+uint64(l)*8, 8)
				}
				st.vec[inst.Rd][l] = valFromPatterns64(vs)
			} else {
				st.vec[inst.Rd][l] = valTop64()
			}
		}
	case isa.OpST, isa.OpFST, isa.OpFSTS, isa.OpFSTV, isa.OpFSTVZ, isa.OpSTMXCSR:
		// Any store invalidates the initial image (written locations are
		// not tracked).
		st.mem = false
	case isa.OpLDMXCSR:
		// Control-field effects are modeled globally by the environment
		// set (envSetFor); no register state changes.
	}
}

// execMoveAbs interprets the never-raising move forms.
func (an *analyzer) execMoveAbs(st *state, inst *isa.Inst) {
	switch inst.Op {
	case isa.OpMOVSD:
		st.vec[inst.Rd][0] = st.vec[inst.Rs1][0]
	case isa.OpMOVSS:
		an.setLane32(st, inst.Rd, 0, an.lane32(st, inst.Rs1, 0))
	case isa.OpMOVAPD:
		st.vec[inst.Rd] = st.vec[inst.Rs1]
	case isa.OpMOVQX:
		iv := readInt(st, inst.Rs1)
		if iv.top {
			st.vec[inst.Rd][0] = valTop64()
		} else {
			st.vec[inst.Rd][0] = valFromPatterns64(iv.set)
		}
	case isa.OpMOVXQ:
		v := st.vec[inst.Rs1][0]
		if v.concrete() {
			writeInt(st, inst.Rd, intFromSet(v.set))
		} else {
			writeInt(st, inst.Rd, intTop())
		}
	}
}

// evalBin64 evaluates one 64-bit arithmetic lane: exhaustive softfloat
// enumeration when both operands are concrete, abstract rules otherwise.
func (an *analyzer) evalBin64(fp isa.FPOp, a, b Val) outcome {
	if a.concrete() && b.concrete() {
		var f func(x, y uint64, e softfloat.Env) (uint64, softfloat.Flags)
		switch fp {
		case isa.FPAdd:
			f = softfloat.Add64
		case isa.FPSub:
			f = softfloat.Sub64
		case isa.FPMul:
			f = softfloat.Mul64
		case isa.FPDiv:
			f = softfloat.Div64
		case isa.FPMin:
			f = softfloat.Min64
		case isa.FPMax:
			f = softfloat.Max64
		}
		if f != nil {
			return enum2(f, a.set, b.set, an.envs, false)
		}
	}
	switch fp {
	case isa.FPAdd:
		return absAdd(a, b, an.envs, lim64)
	case isa.FPSub:
		return absAdd(a, b.neg(), an.envs, lim64)
	case isa.FPMul:
		return absMul(a, b, an.envs, lim64)
	case isa.FPDiv:
		return absDiv(a, b, an.envs, lim64)
	case isa.FPMin, isa.FPMax:
		return absMinMax(a, b, an.envs)
	}
	return outcome{val: valTop64(), may: allMust}
}

// evalBin32 is the binary32 twin of evalBin64.
func (an *analyzer) evalBin32(fp isa.FPOp, a, b Val) outcome {
	if a.concrete() && b.concrete() {
		var f func(x, y uint32, e softfloat.Env) (uint32, softfloat.Flags)
		switch fp {
		case isa.FPAdd:
			f = softfloat.Add32
		case isa.FPSub:
			f = softfloat.Sub32
		case isa.FPMul:
			f = softfloat.Mul32
		case isa.FPDiv:
			f = softfloat.Div32
		case isa.FPMin:
			f = softfloat.Min32
		case isa.FPMax:
			f = softfloat.Max32
		}
		if f != nil {
			return enum2(wrap32(f), a.set, b.set, an.envs, true)
		}
	}
	switch fp {
	case isa.FPAdd:
		return absAdd(a, b, an.envs, lim32)
	case isa.FPSub:
		return absAdd(a, b.neg(), an.envs, lim32)
	case isa.FPMul:
		return absMul(a, b, an.envs, lim32)
	case isa.FPDiv:
		return absDiv(a, b, an.envs, lim32)
	case isa.FPMin, isa.FPMax:
		return absMinMax(a, b, an.envs)
	}
	return outcome{val: valTop32(), may: allMust}
}

func wrap32(f func(x, y uint32, e softfloat.Env) (uint32, softfloat.Flags)) func(x, y uint64, e softfloat.Env) (uint64, softfloat.Flags) {
	return func(x, y uint64, e softfloat.Env) (uint64, softfloat.Flags) {
		z, fl := f(uint32(x), uint32(y), e)
		return uint64(z), fl
	}
}

func wrap32u(f func(x uint32, e softfloat.Env) (uint32, softfloat.Flags)) func(x uint64, e softfloat.Env) (uint64, softfloat.Flags) {
	return func(x uint64, e softfloat.Env) (uint64, softfloat.Flags) {
		z, fl := f(uint32(x), e)
		return uint64(z), fl
	}
}

func (an *analyzer) evalSqrt64(a Val) outcome {
	if a.concrete() {
		return enum1(softfloat.Sqrt64, a.set, an.envs, false)
	}
	return absSqrt(a, an.envs, lim64)
}

func (an *analyzer) evalSqrt32(a Val) outcome {
	if a.concrete() {
		return enum1(wrap32u(softfloat.Sqrt32), a.set, an.envs, true)
	}
	return absSqrt(a, an.envs, lim32)
}

// mergeLane accumulates one lane's flags into the instruction verdict:
// the instruction's raised set is the union over lanes, so a must on
// any lane is a must for the instruction.
func mergeLane(may, must *softfloat.Flags, o outcome) {
	*may |= o.may
	*must |= o.must
}

// execFPAbs interprets one floating point instruction, returning the
// flag union (may) and guaranteed subset (must) across all executions
// reaching it with the current entry state.
func (an *analyzer) execFPAbs(st *state, inst *isa.Inst, info *isa.OpInfo) (may, must softfloat.Flags) {
	if info.Masked {
		return an.execMaskedAbs(st, inst, info)
	}
	switch info.Class {
	case isa.ClassFPArith:
		if info.Prec == isa.F64 {
			res := make([]Val, info.Lanes)
			for l := 0; l < info.Lanes; l++ {
				var o outcome
				if info.FP == isa.FPSqrt {
					o = an.evalSqrt64(an.lane64(st, inst.Rs1, l))
				} else {
					o = an.evalBin64(info.FP, an.lane64(st, inst.Rs1, l), an.lane64(st, inst.Rs2, l))
				}
				res[l] = o.val
				mergeLane(&may, &must, o)
			}
			for l := 0; l < info.Lanes; l++ {
				an.setLane64(st, inst.Rd, l, res[l])
			}
		} else {
			res := make([]Val, info.Lanes)
			for l := 0; l < info.Lanes; l++ {
				var o outcome
				if info.FP == isa.FPSqrt {
					o = an.evalSqrt32(an.lane32(st, inst.Rs1, l))
				} else {
					o = an.evalBin32(info.FP, an.lane32(st, inst.Rs1, l), an.lane32(st, inst.Rs2, l))
				}
				res[l] = o.val
				mergeLane(&may, &must, o)
			}
			for l := 0; l < info.Lanes; l++ {
				an.setLane32(st, inst.Rd, l, res[l])
			}
		}

	case isa.ClassFMA:
		negProd := info.FMA == isa.FNMAdd || info.FMA == isa.FNMSub
		negAdd := info.FMA == isa.FMSub || info.FMA == isa.FNMSub
		if info.Prec == isa.F64 {
			res := make([]Val, info.Lanes)
			for l := 0; l < info.Lanes; l++ {
				a := an.lane64(st, inst.Rs1, l)
				b := an.lane64(st, inst.Rs2, l)
				c := an.lane64(st, inst.Rs3, l)
				if negProd {
					a = a.neg()
				}
				if negAdd {
					c = c.neg()
				}
				var o outcome
				if a.concrete() && b.concrete() && c.concrete() {
					o = enum3(softfloat.FMA64, a.set, b.set, c.set, an.envs, false)
				} else {
					o = absFMA(a, b, c, an.envs, lim64)
				}
				res[l] = o.val
				mergeLane(&may, &must, o)
			}
			for l := 0; l < info.Lanes; l++ {
				an.setLane64(st, inst.Rd, l, res[l])
			}
		} else {
			res := make([]Val, info.Lanes)
			for l := 0; l < info.Lanes; l++ {
				a := an.lane32(st, inst.Rs1, l)
				b := an.lane32(st, inst.Rs2, l)
				c := an.lane32(st, inst.Rs3, l)
				if negProd {
					a = a.neg32()
				}
				if negAdd {
					c = c.neg32()
				}
				var o outcome
				if a.concrete() && b.concrete() && c.concrete() {
					o = enum3(func(x, y, z uint64, e softfloat.Env) (uint64, softfloat.Flags) {
						w, fl := softfloat.FMA32(uint32(x), uint32(y), uint32(z), e)
						return uint64(w), fl
					}, a.set, b.set, c.set, an.envs, true)
				} else {
					o = absFMA(a, b, c, an.envs, lim32)
				}
				res[l] = o.val
				mergeLane(&may, &must, o)
			}
			for l := 0; l < info.Lanes; l++ {
				an.setLane32(st, inst.Rd, l, res[l])
			}
		}

	case isa.ClassFPConvert:
		may, must = an.execConvertAbs(st, inst, info)

	case isa.ClassFPCompare:
		may, must = an.execCompareAbs(st, inst, info)

	case isa.ClassFPRound:
		may, must = an.execRoundAbs(st, inst, info)

	case isa.ClassFPDot:
		may, must = an.execDotAbs(st, inst, info)
	}
	return may, must
}

// execMaskedAbs interprets write-masked arithmetic. Mask register
// contents are not tracked, so any lane subset may be active: may is
// the union over all lanes evaluated as if active, must is empty (the
// all-zero mask computes nothing and raises nothing), and every
// destination lane goes to top (an active lane takes the computed
// value, an inactive one merges the old — top covers both).
func (an *analyzer) execMaskedAbs(st *state, inst *isa.Inst, info *isa.OpInfo) (may, must softfloat.Flags) {
	if info.Prec == isa.F64 {
		for l := 0; l < info.Lanes; l++ {
			var o outcome
			if info.FP == isa.FPSqrt {
				o = an.evalSqrt64(an.lane64(st, inst.Rs1, l))
			} else {
				o = an.evalBin64(info.FP, an.lane64(st, inst.Rs1, l), an.lane64(st, inst.Rs2, l))
			}
			may |= o.may
		}
		for l := 0; l < info.Lanes; l++ {
			an.setLane64(st, inst.Rd, l, valTop64())
		}
	} else {
		for l := 0; l < info.Lanes; l++ {
			var o outcome
			if info.FP == isa.FPSqrt {
				o = an.evalSqrt32(an.lane32(st, inst.Rs1, l))
			} else {
				o = an.evalBin32(info.FP, an.lane32(st, inst.Rs1, l), an.lane32(st, inst.Rs2, l))
			}
			may |= o.may
		}
		for l := 0; l < info.Lanes; l++ {
			an.setLane32(st, inst.Rd, l, valTop32())
		}
	}
	return may, 0
}

func (an *analyzer) execConvertAbs(st *state, inst *isa.Inst, info *isa.OpInfo) (may, must softfloat.Flags) {
	// Bounds below which a float-to-int conversion cannot go out of
	// range under any rounding mode: any value of magnitude below the
	// bound rounds to a representable integer. (2^31-1 is exact in
	// binary64; near 2^63 the binary64 ulp is 1024, so the largest safe
	// bound is 2^63-1024.)
	const bound31 = float64(1<<31 - 1)
	const bound63 = 0x1.fffffffffffffp+62 // 2^63 - 1024

	// enumToInt enumerates a float-to-int conversion for its flags; the
	// integer result itself is not tracked (the destination goes top).
	enumToInt := func(f func(x uint64, e softfloat.Env) softfloat.Flags, as []uint64) (softfloat.Flags, softfloat.Flags) {
		var m softfloat.Flags
		mu := allMust
		for _, a := range as {
			for _, e := range an.envs {
				fl := f(a, e)
				m |= fl
				mu &= fl
			}
		}
		return m, mu
	}

	switch info.Cvt {
	case isa.CvtSD2SS:
		a := an.lane64(st, inst.Rs1, 0)
		var o outcome
		if a.concrete() {
			o = enum1(func(x uint64, e softfloat.Env) (uint64, softfloat.Flags) {
				z, fl := softfloat.F64ToF32(x, e)
				return uint64(z), fl
			}, a.set, an.envs, true)
		} else {
			o = absCvtNarrow(a, an.envs)
		}
		an.setLane32(st, inst.Rd, 0, o.val)
		mergeLane(&may, &must, o)

	case isa.CvtSS2SD:
		a := an.lane32(st, inst.Rs1, 0)
		var o outcome
		if a.concrete() {
			o = enum1(func(x uint64, e softfloat.Env) (uint64, softfloat.Flags) {
				return softfloat.F32ToF64(uint32(x), e)
			}, a.set, an.envs, false)
		} else {
			o = absCvtWiden(a, an.envs)
		}
		an.setLane64(st, inst.Rd, 0, o.val)
		mergeLane(&may, &must, o)

	case isa.CvtSI2SD:
		// int32 -> f64 is always exact and flag-free.
		iv := readInt(st, inst.Rs1)
		if !iv.top {
			vs := make([]uint64, len(iv.set))
			for i, r := range iv.set {
				vs[i] = softfloat.I32ToF64(int32(r))
			}
			an.setLane64(st, inst.Rd, 0, valFromPatterns64(vs))
		} else {
			an.setLane64(st, inst.Rd, 0, valAbs(bPZero|bitsNorm, -float64(1<<31), float64(1<<31)))
		}

	case isa.CvtSI2SDQ:
		iv := readInt(st, inst.Rs1)
		if !iv.top {
			o := enum1(func(x uint64, e softfloat.Env) (uint64, softfloat.Flags) {
				return softfloat.I64ToF64(int64(x), e)
			}, iv.set, an.envs, false)
			an.setLane64(st, inst.Rd, 0, o.val)
			mergeLane(&may, &must, o)
		} else {
			an.setLane64(st, inst.Rd, 0, valAbs(bPZero|bitsNorm, -0x1p63, 0x1p63))
			may |= softfloat.FlagInexact // magnitudes beyond 2^53 round
		}

	case isa.CvtSI2SS, isa.CvtSI2SSQ:
		iv := readInt(st, inst.Rs1)
		if !iv.top {
			o := enum1(func(x uint64, e softfloat.Env) (uint64, softfloat.Flags) {
				var z uint32
				var fl softfloat.Flags
				if info.Cvt == isa.CvtSI2SS {
					z, fl = softfloat.I32ToF32(int32(x), e)
				} else {
					z, fl = softfloat.I64ToF32(int64(x), e)
				}
				return uint64(z), fl
			}, iv.set, an.envs, true)
			an.setLane32(st, inst.Rd, 0, o.val)
			mergeLane(&may, &must, o)
		} else {
			an.setLane32(st, inst.Rd, 0, valAbs(bPZero|bitsNorm, -0x1p63, 0x1p63))
			may |= softfloat.FlagInexact
		}

	case isa.CvtSD2SI, isa.CvtTSD2SI, isa.CvtTSD2SIQ:
		a := an.lane64(st, inst.Rs1, 0)
		if a.concrete() {
			m, mu := enumToInt(func(x uint64, e softfloat.Env) softfloat.Flags {
				var fl softfloat.Flags
				switch info.Cvt {
				case isa.CvtSD2SI:
					_, fl = softfloat.F64ToI32(x, e)
				case isa.CvtTSD2SI:
					_, fl = softfloat.F64ToI32Trunc(x, e)
				default:
					_, fl = softfloat.F64ToI64Trunc(x, e)
				}
				return fl
			}, a.set)
			may |= m
			must |= mu
		} else {
			bound := bound31
			if info.Cvt == isa.CvtTSD2SIQ {
				bound = bound63
			}
			may |= absCvtToInt(a, bound, an.envs)
		}
		writeInt(st, inst.Rd, intTop())

	case isa.CvtSS2SI, isa.CvtTSS2SI:
		a := an.lane32(st, inst.Rs1, 0)
		if a.concrete() {
			m, mu := enumToInt(func(x uint64, e softfloat.Env) softfloat.Flags {
				var fl softfloat.Flags
				if info.Cvt == isa.CvtSS2SI {
					_, fl = softfloat.F32ToI32(uint32(x), e)
				} else {
					_, fl = softfloat.F32ToI32Trunc(uint32(x), e)
				}
				return fl
			}, a.set)
			may |= m
			must |= mu
		} else {
			may |= absCvtToInt(a, bound31, an.envs)
		}
		writeInt(st, inst.Rd, intTop())

	case isa.CvtPS2DQ:
		for l := 0; l < info.Lanes; l++ {
			a := an.lane32(st, inst.Rs1, l)
			if a.concrete() {
				o := enum1(func(x uint64, e softfloat.Env) (uint64, softfloat.Flags) {
					z, fl := softfloat.F32ToI32(uint32(x), e)
					return uint64(uint32(z)), fl
				}, a.set, an.envs, true)
				an.setLane32(st, inst.Rd, l, o.val)
				mergeLane(&may, &must, o)
			} else {
				may |= absCvtToInt(a, bound31, an.envs)
				an.setLane32(st, inst.Rd, l, valTop32())
			}
		}
	}
	return may, must
}

// cmpMask64 and cmpMask32 are the possible cmpsd/cmpss results.
func cmpMask64() Val { return valFromPatterns64([]uint64{0, ^uint64(0)}) }
func cmpMask32() Val { return valFromPatterns32([]uint32{0, ^uint32(0)}) }

func (an *analyzer) execCompareAbs(st *state, inst *isa.Inst, info *isa.OpInfo) (may, must softfloat.Flags) {
	switch inst.Op {
	case isa.OpCMPSD:
		a := an.lane64(st, inst.Rs1, 0)
		b := an.lane64(st, inst.Rs2, 0)
		pred := softfloat.CmpPredicate(inst.Imm)
		if a.concrete() && b.concrete() {
			o := enum2(func(x, y uint64, e softfloat.Env) (uint64, softfloat.Flags) {
				return softfloat.Cmp64(x, y, pred, e)
			}, a.set, b.set, an.envs, false)
			an.setLane64(st, inst.Rd, 0, o.val)
			mergeLane(&may, &must, o)
		} else {
			may |= absCompare(a, b, predSignaling(pred), an.envs)
			an.setLane64(st, inst.Rd, 0, cmpMask64())
		}
	case isa.OpCMPSS:
		a := an.lane32(st, inst.Rs1, 0)
		b := an.lane32(st, inst.Rs2, 0)
		pred := softfloat.CmpPredicate(inst.Imm)
		if a.concrete() && b.concrete() {
			o := enum2(func(x, y uint64, e softfloat.Env) (uint64, softfloat.Flags) {
				z, fl := softfloat.Cmp32(uint32(x), uint32(y), pred, e)
				return uint64(z), fl
			}, a.set, b.set, an.envs, true)
			an.setLane32(st, inst.Rd, 0, o.val)
			mergeLane(&may, &must, o)
		} else {
			may |= absCompare(a, b, predSignaling(pred), an.envs)
			an.setLane32(st, inst.Rd, 0, cmpMask32())
		}
	default: // comi/ucomi: result is a small integer in an int register
		var a, b Val
		if info.Prec == isa.F64 {
			a = an.lane64(st, inst.Rs1, 0)
			b = an.lane64(st, inst.Rs2, 0)
		} else {
			a = an.lane32(st, inst.Rs1, 0)
			b = an.lane32(st, inst.Rs2, 0)
		}
		if a.concrete() && b.concrete() {
			mu := allMust
			for _, x := range a.set {
				for _, y := range b.set {
					for _, e := range an.envs {
						var fl softfloat.Flags
						if info.Prec == isa.F64 {
							if info.Signaling {
								_, fl = softfloat.Comi64(x, y, e)
							} else {
								_, fl = softfloat.Ucomi64(x, y, e)
							}
						} else {
							if info.Signaling {
								_, fl = softfloat.Comi32(uint32(x), uint32(y), e)
							} else {
								_, fl = softfloat.Ucomi32(uint32(x), uint32(y), e)
							}
						}
						may |= fl
						mu &= fl
					}
				}
			}
			must |= mu
		} else {
			may |= absCompare(a, b, info.Signaling, an.envs)
		}
		writeInt(st, inst.Rd, intTop())
	}
	return may, must
}

// predSignaling mirrors softfloat's predicate signaling table (LT, LE,
// NLT, NLE raise Invalid on quiet NaNs).
func predSignaling(p softfloat.CmpPredicate) bool {
	switch p {
	case softfloat.CmpLT, softfloat.CmpLE, softfloat.CmpNLT, softfloat.CmpNLE:
		return true
	}
	return false
}

func (an *analyzer) execRoundAbs(st *state, inst *isa.Inst, info *isa.OpInfo) (may, must softfloat.Flags) {
	imm := isa.RoundImm(inst.Imm)
	fixedRM := softfloat.RoundingMode(imm & 3)
	useMXCSR := imm&isa.RoundImmMXCSR != 0
	suppress := imm&isa.RoundImmNoInexact != 0
	rmOf := func(e softfloat.Env) softfloat.RoundingMode {
		if useMXCSR {
			return e.RM
		}
		return fixedRM
	}
	if info.Prec == isa.F64 {
		res := make([]Val, info.Lanes)
		for l := 0; l < info.Lanes; l++ {
			a := an.lane64(st, inst.Rs1, l)
			var o outcome
			if a.concrete() {
				o = enum1(func(x uint64, e softfloat.Env) (uint64, softfloat.Flags) {
					return softfloat.RoundToInt64(x, rmOf(e), suppress, e)
				}, a.set, an.envs, false)
			} else {
				o = absRound(a, suppress, an.envs)
			}
			res[l] = o.val
			mergeLane(&may, &must, o)
		}
		for l := 0; l < info.Lanes; l++ {
			an.setLane64(st, inst.Rd, l, res[l])
		}
		return may, must
	}
	res := make([]Val, info.Lanes)
	for l := 0; l < info.Lanes; l++ {
		a := an.lane32(st, inst.Rs1, l)
		var o outcome
		if a.concrete() {
			o = enum1(func(x uint64, e softfloat.Env) (uint64, softfloat.Flags) {
				z, fl := softfloat.RoundToInt32(uint32(x), rmOf(e), suppress, e)
				return uint64(z), fl
			}, a.set, an.envs, true)
		} else {
			o = absRound(a, suppress, an.envs)
		}
		res[l] = o.val
		mergeLane(&may, &must, o)
	}
	for l := 0; l < info.Lanes; l++ {
		an.setLane32(st, inst.Rd, l, res[l])
	}
	return may, must
}

// execDotAbs mirrors execDot's mul/add tree: within each 128-bit group,
// four products are summed pairwise and the sum broadcast.
func (an *analyzer) execDotAbs(st *state, inst *isa.Inst, info *isa.OpInfo) (may, must softfloat.Flags) {
	groups := info.Lanes / 4
	sums := make([]Val, groups)
	for g := 0; g < groups; g++ {
		var p [4]Val
		for i := 0; i < 4; i++ {
			l := g*4 + i
			o := an.evalBin32(isa.FPMul, an.lane32(st, inst.Rs1, l), an.lane32(st, inst.Rs2, l))
			p[i] = o.val
			mergeLane(&may, &must, o)
		}
		s01 := an.evalBin32(isa.FPAdd, p[0], p[1])
		mergeLane(&may, &must, s01)
		s23 := an.evalBin32(isa.FPAdd, p[2], p[3])
		mergeLane(&may, &must, s23)
		sum := an.evalBin32(isa.FPAdd, s01.val, s23.val)
		mergeLane(&may, &must, sum)
		sums[g] = sum.val
	}
	for g := 0; g < groups; g++ {
		for i := 0; i < 4; i++ {
			an.setLane32(st, inst.Rd, g*4+i, sums[g])
		}
	}
	return may, must
}
