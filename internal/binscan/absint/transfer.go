package absint

import (
	"math"

	"repro/internal/softfloat"
)

// outcome is the abstract result of one lane operation: the result
// value, the flags that MAY be raised on some execution, and the flags
// that MUST be raised on every execution. Must facts are only derived
// from exhaustive concrete enumeration; abstract rules report Must = 0.
type outcome struct {
	val       Val
	may, must softfloat.Flags
}

// allMust is the identity of flag intersection.
const allMust = softfloat.Flags(0x3F)

// envAnyNoDAZ reports whether some environment leaves denormal operands
// alone (so the Denormal flag can fire).
func envAnyNoDAZ(envs []softfloat.Env) bool {
	for _, e := range envs {
		if !e.DAZ {
			return true
		}
	}
	return false
}

// envAnyDAZ reports whether some environment substitutes denormal
// operands with zero (so a denormal can act as a zero).
func envAnyDAZ(envs []softfloat.Env) bool {
	for _, e := range envs {
		if e.DAZ {
			return true
		}
	}
	return false
}

// envAnyFTZ reports whether some environment flushes tiny results.
func envAnyFTZ(envs []softfloat.Env) bool {
	for _, e := range envs {
		if e.FTZ {
			return true
		}
	}
	return false
}

// canZeroEff reports whether the lane can act as a zero operand: it is
// a zero, or a denormal under a DAZ environment.
func canZeroEff(v Val, envs []softfloat.Env) bool {
	return v.canZero() || (v.canDen() && envAnyDAZ(envs))
}

// canNonzeroFiniteEff reports whether the lane can act as a finite
// nonzero operand after DAZ substitution.
func canNonzeroFiniteEff(v Val, envs []softfloat.Env) bool {
	if v.bits&bitsNorm != 0 {
		return true
	}
	return v.canDen() && envAnyNoDAZ(envs)
}

// deFlag adds the Denormal possibility for daz-applying operations.
func deFlag(envs []softfloat.Env, ops ...Val) softfloat.Flags {
	for _, v := range ops {
		if v.canDen() && envAnyNoDAZ(envs) {
			return softfloat.FlagDenormal
		}
	}
	return 0
}

// snanFlag adds the Invalid possibility from signaling-NaN operands.
func snanFlag(ops ...Val) softfloat.Flags {
	for _, v := range ops {
		if v.canSNaN() {
			return softfloat.FlagInvalid
		}
	}
	return 0
}

// enum1/enum2/enum3 run exhaustive concrete enumeration of a softfloat
// operation over small operand sets and the environment set. The result
// is exact: May is the union and Must the intersection of the flags the
// shared softfloat implementation actually raises.
func enum1(op func(a uint64, e softfloat.Env) (uint64, softfloat.Flags),
	as []uint64, envs []softfloat.Env, from32 bool) outcome {
	o := outcome{must: allMust}
	var outs []uint64
	for _, a := range as {
		for _, e := range envs {
			z, fl := op(a, e)
			o.may |= fl
			o.must &= fl
			outs = append(outs, z)
		}
	}
	if from32 {
		ps := make([]uint32, len(outs))
		for i, z := range outs {
			ps[i] = uint32(z)
		}
		o.val = valFromPatterns32(ps)
	} else {
		o.val = valFromPatterns64(outs)
	}
	return o
}

func enum2(op func(a, b uint64, e softfloat.Env) (uint64, softfloat.Flags),
	as, bs []uint64, envs []softfloat.Env, from32 bool) outcome {
	o := outcome{must: allMust}
	var outs []uint64
	for _, a := range as {
		for _, b := range bs {
			for _, e := range envs {
				z, fl := op(a, b, e)
				o.may |= fl
				o.must &= fl
				outs = append(outs, z)
			}
		}
	}
	if from32 {
		ps := make([]uint32, len(outs))
		for i, z := range outs {
			ps[i] = uint32(z)
		}
		o.val = valFromPatterns32(ps)
	} else {
		o.val = valFromPatterns64(outs)
	}
	return o
}

func enum3(op func(a, b, c uint64, e softfloat.Env) (uint64, softfloat.Flags),
	as, bs, cs []uint64, envs []softfloat.Env, from32 bool) outcome {
	o := outcome{must: allMust}
	var outs []uint64
	for _, a := range as {
		for _, b := range bs {
			for _, c := range cs {
				for _, e := range envs {
					z, fl := op(a, b, c, e)
					o.may |= fl
					o.must &= fl
					outs = append(outs, z)
				}
			}
		}
	}
	if from32 {
		ps := make([]uint32, len(outs))
		for i, z := range outs {
			ps[i] = uint32(z)
		}
		o.val = valFromPatterns32(ps)
	} else {
		o.val = valFromPatterns64(outs)
	}
	return o
}

// finishAbs assembles an abstract arithmetic result: interval clamped to
// the finite range, result-class bits derived from what the flags and
// operands allow, and a zero extension when FTZ can flush a tiny result.
func finishAbs(lo, hi float64, may softfloat.Flags, nanPossible, infPossible bool,
	envs []softfloat.Env, lim limits) Val {
	lo, hi = clampRange(lo, hi, lim)
	bits := bitsNone
	if nanPossible || may&softfloat.FlagInvalid != 0 {
		bits |= bQNaN
	}
	if infPossible || may&(softfloat.FlagOverflow|softfloat.FlagDivideByZero) != 0 {
		bits |= bitsInf
	}
	if lo <= hi {
		bits |= bitsNorm | bitsZero
		if intervalHasTiny(lo, hi, lim.tinyThresh) {
			bits |= bitsDen
		}
		if may&softfloat.FlagUnderflow != 0 && envAnyFTZ(envs) {
			// A flush produces a signed zero that may lie outside the
			// arithmetic interval; extend the interval to cover it.
			bits |= bitsZero
			if lo > 0 {
				lo = 0
			}
			if hi < 0 {
				hi = 0
			}
		}
	}
	return valAbs(bits, lo, hi)
}

// absAdd implements the abstract rule for addition (subtraction is
// addition of the negated operand, applied by the caller).
func absAdd(a, b Val, envs []softfloat.Env, lim limits) outcome {
	var may softfloat.Flags
	may |= snanFlag(a, b) | deFlag(envs, a, b)
	if (a.canPInf() && b.canNInf()) || (a.canNInf() && b.canPInf()) {
		may |= softfloat.FlagInvalid
	}
	lo, hi := emptyRange()
	if a.canFinite() && b.canFinite() {
		lo = outDown(a.lo + b.lo)
		hi = outUp(a.hi + b.hi)
		if math.Max(math.Abs(lo), math.Abs(hi)) >= lim.ovfThresh {
			may |= softfloat.FlagOverflow
		}
		if intervalHasTiny(lo, hi, lim.tinyThresh) {
			may |= softfloat.FlagUnderflow
		}
		if !a.onlyZero() && !b.onlyZero() {
			may |= softfloat.FlagInexact
		}
	}
	if may&softfloat.FlagUnderflow != 0 && envAnyFTZ(envs) {
		may |= softfloat.FlagInexact
	}
	nan := a.canNaN() || b.canNaN() || may&softfloat.FlagInvalid != 0
	inf := a.canInf() || b.canInf()
	return outcome{val: finishAbs(lo, hi, may, nan, inf, envs, lim), may: may}
}

// absMul implements the abstract rule for multiplication.
func absMul(a, b Val, envs []softfloat.Env, lim limits) outcome {
	var may softfloat.Flags
	may |= snanFlag(a, b) | deFlag(envs, a, b)
	if (a.canInf() && canZeroEff(b, envs)) || (canZeroEff(a, envs) && b.canInf()) {
		may |= softfloat.FlagInvalid
	}
	lo, hi := emptyRange()
	if a.canFinite() && b.canFinite() {
		lo, hi = mulHull(a, b)
		if a.maxMag()*b.maxMag() >= lim.ovfThresh {
			may |= softfloat.FlagOverflow
		}
		if prodTiny(a.minMag(), b.minMag(), lim.tinyThresh) {
			may |= softfloat.FlagUnderflow
		}
		if !a.onlyZero() && !b.onlyZero() {
			may |= softfloat.FlagInexact
		}
	}
	nan := a.canNaN() || b.canNaN() || may&softfloat.FlagInvalid != 0
	inf := a.canInf() || b.canInf()
	return outcome{val: finishAbs(lo, hi, may, nan, inf, envs, lim), may: may}
}

// prodTiny reports whether the product of two magnitudes can fall in
// the underflow region (a zero minimum means an operand can be zero or
// span zero, so a tiny product cannot be excluded unless it is exactly
// zero — and that exactness is only known on the concrete path).
func prodTiny(minA, minB, thresh float64) bool {
	p := minA * minB
	return p < thresh
}

// mulHull computes the outward product hull of the finite portions.
func mulHull(a, b Val) (float64, float64) {
	lo, hi := emptyRange()
	for _, x := range [2]float64{a.lo, a.hi} {
		for _, y := range [2]float64{b.lo, b.hi} {
			p := x * y
			if math.IsNaN(p) {
				p = 0
			}
			if outDown(p) < lo {
				lo = outDown(p)
			}
			if outUp(p) > hi {
				hi = outUp(p)
			}
		}
	}
	return lo, hi
}

// absDiv implements the abstract rule for division.
func absDiv(a, b Val, envs []softfloat.Env, lim limits) outcome {
	var may softfloat.Flags
	may |= snanFlag(a, b) | deFlag(envs, a, b)
	if canZeroEff(a, envs) && canZeroEff(b, envs) {
		may |= softfloat.FlagInvalid
	}
	if a.canInf() && b.canInf() {
		may |= softfloat.FlagInvalid
	}
	if canNonzeroFiniteEff(a, envs) && canZeroEff(b, envs) {
		may |= softfloat.FlagDivideByZero
	}
	lo, hi := emptyRange()
	if a.canFinite() && b.canFinite() {
		bMin := b.minMag()
		if bMin == 0 || canZeroEff(b, envs) {
			lo, hi = -lim.maxFinite, lim.maxFinite
			may |= softfloat.FlagOverflow | softfloat.FlagUnderflow | softfloat.FlagInexact
		} else {
			lo, hi = divHull(a, b)
			if a.maxMag()/bMin >= lim.ovfThresh {
				may |= softfloat.FlagOverflow
			}
			if bMax := b.maxMag(); bMax > 0 && a.minMag()/bMax < lim.tinyThresh {
				may |= softfloat.FlagUnderflow
			}
			if !a.onlyZero() {
				may |= softfloat.FlagInexact
			}
		}
	}
	nan := a.canNaN() || b.canNaN() || may&softfloat.FlagInvalid != 0
	inf := a.canInf() || may&(softfloat.FlagDivideByZero|softfloat.FlagOverflow) != 0
	return outcome{val: finishAbs(lo, hi, may, nan, inf, envs, lim), may: may}
}

// divHull computes the outward quotient hull when the divisor interval
// excludes zero.
func divHull(a, b Val) (float64, float64) {
	lo, hi := emptyRange()
	for _, x := range [2]float64{a.lo, a.hi} {
		for _, y := range [2]float64{b.lo, b.hi} {
			if y == 0 {
				continue
			}
			q := x / y
			if math.IsNaN(q) {
				q = 0
			}
			if outDown(q) < lo {
				lo = outDown(q)
			}
			if outUp(q) > hi {
				hi = outUp(q)
			}
		}
	}
	return lo, hi
}

// absSqrt implements the abstract rule for square root. Square roots of
// positive values can never overflow or underflow.
func absSqrt(a Val, envs []softfloat.Env, lim limits) outcome {
	var may softfloat.Flags
	may |= snanFlag(a) | deFlag(envs, a)
	if a.canNInf() || (a.lo <= a.hi && a.lo < 0) {
		may |= softfloat.FlagInvalid
	}
	lo, hi := emptyRange()
	if a.canFinite() {
		lo = 0
		if a.canZero() || a.canDen() {
			lo = -0.0 // sqrt(-0) = -0
		}
		top := a.hi
		if top < 0 {
			top = 0
		}
		hi = outUp(math.Sqrt(top))
		may |= softfloat.FlagInexact
	}
	nan := a.canNaN() || may&softfloat.FlagInvalid != 0
	return outcome{val: finishAbs(lo, hi, may, nan, a.canPInf(), envs, lim), may: may}
}

// absMinMax implements minsd/maxsd-style compare-select: the result is
// one of the operands (or a DAZ-substituted zero) and the only flags
// are Invalid (NaN operand) and Denormal.
func absMinMax(a, b Val, envs []softfloat.Env) outcome {
	var may softfloat.Flags
	if a.canNaN() || b.canNaN() {
		may |= softfloat.FlagInvalid
	}
	may |= deFlag(envs, a, b)
	v := joinVal(a, b, false)
	v.set = nil // selection order is not tracked abstractly
	if (a.canDen() || b.canDen()) && envAnyDAZ(envs) {
		v.bits |= bitsZero
	}
	if may&softfloat.FlagInvalid != 0 {
		v.bits |= bQNaN
	}
	return outcome{val: v, may: may}
}

// absCompare covers ucomi/comi/cmp-predicate forms: only Invalid and
// Denormal are possible.
func absCompare(a, b Val, anyNaNSignals bool, envs []softfloat.Env) softfloat.Flags {
	var may softfloat.Flags
	if anyNaNSignals {
		if a.canNaN() || b.canNaN() {
			may |= softfloat.FlagInvalid
		}
	} else {
		may |= snanFlag(a, b)
	}
	may |= deFlag(envs, a, b)
	return may
}

// absFMA implements the abstract fused multiply-add rule for a*b + c.
func absFMA(a, b, c Val, envs []softfloat.Env, lim limits) outcome {
	var may softfloat.Flags
	may |= snanFlag(a, b, c) | deFlag(envs, a, b, c)
	prodInf := a.canInf() || b.canInf()
	if (a.canInf() && canZeroEff(b, envs)) || (canZeroEff(a, envs) && b.canInf()) {
		may |= softfloat.FlagInvalid
	}
	if prodInf && c.canInf() {
		may |= softfloat.FlagInvalid
	}
	lo, hi := emptyRange()
	if a.canFinite() && b.canFinite() && c.canFinite() {
		pLo, pHi := mulHull(a, b)
		lo = outDown(pLo + c.lo)
		hi = outUp(pHi + c.hi)
		if math.Max(math.Abs(lo), math.Abs(hi)) >= lim.ovfThresh {
			may |= softfloat.FlagOverflow
		}
		if intervalHasTiny(lo, hi, lim.tinyThresh) {
			may |= softfloat.FlagUnderflow
		}
		if !((a.onlyZero() || b.onlyZero()) && c.onlyZero()) {
			may |= softfloat.FlagInexact
		}
	}
	nan := a.canNaN() || b.canNaN() || c.canNaN() || may&softfloat.FlagInvalid != 0
	inf := prodInf || c.canInf()
	return outcome{val: finishAbs(lo, hi, may, nan, inf, envs, lim), may: may}
}

// absCvtNarrow covers cvtsd2ss: rounding into the narrower format can
// overflow, underflow, and round.
func absCvtNarrow(a Val, envs []softfloat.Env) outcome {
	var may softfloat.Flags
	may |= snanFlag(a) | deFlag(envs, a)
	lo, hi := emptyRange()
	if a.canFinite() {
		lo, hi = outDown(a.lo), outUp(a.hi)
		if a.maxMag() >= lim32.ovfThresh {
			may |= softfloat.FlagOverflow
		}
		if intervalHasTiny(lo, hi, lim32.tinyThresh) {
			may |= softfloat.FlagUnderflow
		}
		if !a.onlyZero() {
			may |= softfloat.FlagInexact
		}
	}
	nan := a.canNaN() || may&softfloat.FlagInvalid != 0
	return outcome{val: finishAbs(lo, hi, may, nan, a.canInf(), envs, lim32), may: may}
}

// absCvtWiden covers cvtss2sd: exact, but SNaN and denormal operands
// still signal.
func absCvtWiden(a Val, envs []softfloat.Env) outcome {
	may := snanFlag(a) | deFlag(envs, a)
	bits := a.bits &^ bSNaN
	if a.canNaN() {
		bits |= bQNaN // SNaN widens to a quiet NaN
	}
	// Denormal f32 values widen to normal f64 values (or flush to zero
	// under DAZ); keep the class bits permissive rather than model the
	// shift exactly.
	if a.canDen() {
		bits |= bitsNorm | bitsZero
	}
	return outcome{val: valAbs(bits, a.lo, a.hi), may: may}
}

// absCvtToInt covers the float-to-integer conversions: Invalid on NaN
// or out-of-range, Inexact on fractional values, Denormal on denormal
// operands.
func absCvtToInt(a Val, bound float64, envs []softfloat.Env) softfloat.Flags {
	var may softfloat.Flags
	may |= deFlag(envs, a)
	if a.canNaN() || a.canInf() || a.maxMag() >= bound {
		may |= softfloat.FlagInvalid
	}
	if a.canFinite() && !a.onlyZero() {
		may |= softfloat.FlagInexact
	}
	return may
}

// absCvtFromInt covers the integer-to-float conversions: only Inexact
// is possible (and never for int32 -> f64).
func absCvtFromInt(exact bool) softfloat.Flags {
	if exact {
		return 0
	}
	return softfloat.FlagInexact
}

// absRound covers the round-to-integral forms.
func absRound(a Val, suppressInexact bool, envs []softfloat.Env) outcome {
	may := snanFlag(a) | deFlag(envs, a)
	if a.canFinite() && !a.onlyZero() && !suppressInexact {
		may |= softfloat.FlagInexact
	}
	lo, hi := emptyRange()
	if a.canFinite() {
		lo, hi = outDown(math.Floor(a.lo)), outUp(math.Ceil(a.hi))
	}
	bits := a.bits
	if a.canNaN() {
		bits |= bQNaN
	}
	if a.canFinite() {
		bits |= bitsZero | bitsNorm
	}
	return outcome{val: valAbs(bits, lo, hi), may: may}
}

// lanesOf reads Lanes 64-bit lane abstractions of a vector register.
func (an *analyzer) lane64(st *state, reg uint8, l int) Val {
	return st.vec[reg][l]
}

// lane32 derives the abstraction of a 32-bit lane from its containing
// 64-bit lane: exact for concrete values, top otherwise.
func (an *analyzer) lane32(st *state, reg uint8, l int) Val {
	v := st.vec[reg][l/2]
	if v.concrete() {
		ps := make([]uint32, len(v.set))
		for i, p := range v.set {
			ps[i] = uint32(p >> (32 * uint(l%2)))
		}
		return valFromPatterns32(ps)
	}
	return valTop32()
}

// setLane64 writes a 64-bit lane abstraction.
func (an *analyzer) setLane64(st *state, reg uint8, l int, v Val) {
	st.vec[reg][l] = v
}

// setLane32 writes a 32-bit lane abstraction into its containing 64-bit
// lane: the cross product of concrete halves when small, top otherwise.
func (an *analyzer) setLane32(st *state, reg uint8, l int, v Val) {
	old := st.vec[reg][l/2]
	if v.concrete() && old.concrete() && len(v.set)*len(old.set) <= maxSet {
		shift := 32 * uint(l%2)
		var ps []uint64
		for _, o := range old.set {
			for _, n := range v.set {
				ps = append(ps, o&^(uint64(0xFFFFFFFF)<<shift)|uint64(uint32(n))<<shift)
			}
		}
		st.vec[reg][l/2] = valFromPatterns64(ps)
		return
	}
	st.vec[reg][l/2] = valTop64()
}
