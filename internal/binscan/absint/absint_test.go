package absint

import (
	"math"
	"testing"

	"repro/internal/isa"
	"repro/internal/machine"
	"repro/internal/softfloat"
	"repro/internal/trace"
)

// runConcrete executes a program on the bare machine with all exceptions
// masked, collecting the exact condition set each instruction index
// raises. It is the ground truth the static verdicts must cover.
func runConcrete(t *testing.T, p *isa.Program, maxSteps int) map[int]softfloat.Flags {
	t.Helper()
	m := machine.New(p, 2<<20)
	raised := make(map[int]softfloat.Flags)
	for i := 0; i < maxSteps; i++ {
		m.CPU.MXCSR.ClearFlags()
		idx := p.IndexOf(m.CPU.RIP)
		ev := m.Step()
		if fl := m.CPU.MXCSR.Flags(); fl != 0 && idx >= 0 {
			raised[idx] |= fl
		}
		switch ev.(type) {
		case *machine.HaltEvent:
			return raised
		case *machine.FaultEvent:
			return raised
		case *machine.CallCEvent:
			// No libc in these tests; treat as a no-op return.
		}
	}
	t.Fatalf("program %s did not halt in %d steps", p.Name, maxSteps)
	return nil
}

// checkAgainstConcrete asserts the static May covers every concretely
// raised condition and that Must conditions were actually raised.
func checkAgainstConcrete(t *testing.T, res *Result, raised map[int]softfloat.Flags) {
	t.Helper()
	for idx, fl := range raised {
		site := res.SiteAt(res.Prog.AddrOf(idx))
		if site == nil {
			t.Errorf("inst %d raised %v but is not a site", idx, fl)
			continue
		}
		if !site.Reachable {
			t.Errorf("inst %d (%s) raised %v but classified unreachable", idx, site.Op, fl)
		}
		if excess := fl &^ site.May; excess != 0 {
			t.Errorf("inst %d (%s): raised %v, static may=%v (unsound: %v)", idx, site.Op, fl, site.May, excess)
		}
		if miss := site.Must &^ fl; miss != 0 {
			t.Errorf("inst %d (%s): must=%v but only %v raised", idx, site.Op, site.Must, fl)
		}
	}
}

func TestConcreteStraightLine(t *testing.T) {
	b := isa.NewBuilder("straight")
	consts := b.Float64s(1.0, 2.0, 3.0, 0.0)
	b.Movi(isa.R1, int64(consts))
	b.Fld(isa.X1, isa.R1, 0)                   // 1.0
	b.Fld(isa.X2, isa.R1, 8)                   // 2.0
	b.Fld(isa.X3, isa.R1, 24)                  // 0.0
	b.FP2(isa.OpADDSD, isa.X4, isa.X1, isa.X2) // 1+2 = 3, exact
	b.FP2(isa.OpDIVSD, isa.X5, isa.X1, isa.X3) // 1/0: divide-by-zero
	b.FP2(isa.OpDIVSD, isa.X6, isa.X1, isa.X2) // 1/2 = 0.5, exact
	b.FP1(isa.OpSQRTSD, isa.X7, isa.X2)        // sqrt(2): inexact
	b.Hlt()
	p := b.Build()

	res := Analyze(p)
	checkAgainstConcrete(t, res, runConcrete(t, p, 1000))

	addSite := res.SiteAt(p.AddrOf(4))
	if addSite == nil || addSite.May != 0 {
		t.Fatalf("addsd of exact constants: may=%v, want 0", addSite.May)
	}
	if !addSite.Prunable {
		t.Error("exact addsd should be prunable")
	}
	divZero := res.SiteAt(p.AddrOf(5))
	if divZero.VerdictFor(softfloat.FlagDivideByZero) != MustTrap {
		t.Errorf("1/0: ZE verdict = %v, want must", divZero.VerdictFor(softfloat.FlagDivideByZero))
	}
	divHalf := res.SiteAt(p.AddrOf(6))
	if divHalf.May != 0 || !divHalf.Prunable {
		t.Errorf("1/2 exact: may=%v prunable=%v", divHalf.May, divHalf.Prunable)
	}
	sqrt2 := res.SiteAt(p.AddrOf(7))
	if sqrt2.VerdictFor(softfloat.FlagInexact) != MustTrap {
		t.Errorf("sqrt(2): PE verdict = %v, want must", sqrt2.VerdictFor(softfloat.FlagInexact))
	}
	if sqrt2.Prunable {
		t.Error("sqrt site must not be prunable (inexact raises)")
	}
}

func TestCallcHavocsState(t *testing.T) {
	b := isa.NewBuilder("havoc")
	consts := b.Float64s(1.0)
	b.Movi(isa.R1, int64(consts))
	b.Fld(isa.X1, isa.R1, 0)
	b.CallC("rand") // havoc: X1 unknown afterward
	b.FP2(isa.OpADDSD, isa.X2, isa.X1, isa.X1)
	b.FP2(isa.OpDIVSD, isa.X3, isa.X1, isa.X1)
	b.Hlt()
	p := b.Build()

	res := Analyze(p)
	add := res.SiteAt(p.AddrOf(3))
	if add.VerdictFor(softfloat.FlagInvalid) != MayTrap {
		t.Errorf("add of unknown: IE = %v, want may", add.VerdictFor(softfloat.FlagInvalid))
	}
	if add.May&softfloat.FlagDivideByZero != 0 {
		t.Error("addition can never raise divide-by-zero")
	}
	if add.Prunable {
		t.Error("unknown-operand add must not be prunable")
	}
	div := res.SiteAt(p.AddrOf(4))
	if div.VerdictFor(softfloat.FlagDivideByZero) != MayTrap {
		t.Errorf("x/x of unknown: ZE = %v, want may", div.VerdictFor(softfloat.FlagDivideByZero))
	}
}

func TestLdmxcsrDisablesPruning(t *testing.T) {
	b := isa.NewBuilder("envvary")
	consts := b.Float64s(1.0, 2.0)
	ctl := b.Words(0x1F80)
	b.Movi(isa.R1, int64(consts))
	b.Movi(isa.R2, int64(ctl))
	b.Ldmxcsr(isa.R2, 0)
	b.Fld(isa.X1, isa.R1, 0)
	b.Fld(isa.X2, isa.R1, 8)
	b.FP2(isa.OpADDSD, isa.X3, isa.X1, isa.X2)
	b.Hlt()
	p := b.Build()

	res := Analyze(p)
	if !res.EnvVaries {
		t.Fatal("reachable ldmxcsr should set EnvVaries")
	}
	if res.PrunableCount() != 0 {
		t.Errorf("prunable count = %d with varying env, want 0", res.PrunableCount())
	}
	// The add of 1.0+2.0 is exact under every rounding mode, so even the
	// all-environments analysis proves it quiet.
	add := res.SiteAt(p.AddrOf(5))
	if add.May != 0 {
		t.Errorf("exact add across all envs: may=%v, want 0", add.May)
	}
	checkAgainstConcrete(t, res, runConcrete(t, p, 1000))
}

func TestBranchPruning(t *testing.T) {
	b := isa.NewBuilder("deadbranch")
	consts := b.Float64s(1.0, 0.0)
	dead := b.Label("dead")
	done := b.Label("done")
	b.Movi(isa.R1, 7)
	b.Movi(isa.R2, int64(consts))
	b.Fld(isa.X1, isa.R2, 0)
	b.Fld(isa.X2, isa.R2, 8)
	b.Beq(isa.R1, isa.R0, dead) // 7 == 0: never taken
	b.Jmp(done)
	b.Bind(dead)
	b.FP2(isa.OpDIVSD, isa.X3, isa.X1, isa.X2) // 1/0, statically dead
	b.Bind(done)
	b.Hlt()
	p := b.Build()

	res := Analyze(p)
	div := res.SiteAt(p.AddrOf(6))
	if div.Reachable {
		t.Error("dead-branch division should be pruned by concrete branch evaluation")
	}
	if div.May != 0 || !div.Prunable {
		t.Errorf("dead site: may=%v prunable=%v", div.May, div.Prunable)
	}
	checkAgainstConcrete(t, res, runConcrete(t, p, 1000))
}

func TestLoopWidensAndTerminates(t *testing.T) {
	b := isa.NewBuilder("loop")
	consts := b.Float64s(1.0, 1e308)
	loop := b.Label("loop")
	b.Movi(isa.R1, 100)
	b.Movi(isa.R2, int64(consts))
	b.Fld(isa.X1, isa.R2, 0) // 1.0
	b.Fld(isa.X2, isa.R2, 8) // 1e308
	b.Bind(loop)
	b.FP2(isa.OpADDSD, isa.X3, isa.X3, isa.X2) // accumulates toward overflow
	b.Addi(isa.R1, isa.R1, -1)
	b.Bne(isa.R1, isa.R0, loop)
	b.Hlt()
	p := b.Build()

	res := Analyze(p) // must terminate (widening)
	add := res.SiteAt(p.AddrOf(4))
	if add.May&softfloat.FlagOverflow == 0 {
		t.Errorf("accumulating 1e308: may=%v, want overflow possible", add.May)
	}
	checkAgainstConcrete(t, res, runConcrete(t, p, 10000))
}

func TestSingles(t *testing.T) {
	b := isa.NewBuilder("singles")
	consts := b.Float32s(1.5, 2.5, float32(math.Pi))
	b.Movi(isa.R1, int64(consts))
	b.Flds(isa.X1, isa.R1, 0)
	b.Flds(isa.X2, isa.R1, 4)
	b.Flds(isa.X3, isa.R1, 8)
	b.FP2(isa.OpADDSS, isa.X4, isa.X1, isa.X2) // 1.5+2.5 = 4, exact
	b.FP2(isa.OpMULSS, isa.X5, isa.X1, isa.X3) // 1.5*pi: inexact
	b.Cvt(isa.OpCVTSS2SD, isa.X6, isa.X3)      // exact widening
	b.Cvt(isa.OpCVTTSS2SI, isa.R3, isa.X3)     // 3.14 -> 3: inexact
	b.Hlt()
	p := b.Build()

	res := Analyze(p)
	checkAgainstConcrete(t, res, runConcrete(t, p, 1000))

	add := res.SiteAt(p.AddrOf(4))
	if add.May != 0 || !add.Prunable {
		t.Errorf("exact addss: may=%v prunable=%v", add.May, add.Prunable)
	}
	mul := res.SiteAt(p.AddrOf(5))
	if mul.VerdictFor(softfloat.FlagInexact) != MustTrap {
		t.Errorf("1.5*pi: PE = %v, want must", mul.VerdictFor(softfloat.FlagInexact))
	}
	widen := res.SiteAt(p.AddrOf(6))
	if widen.May != 0 {
		t.Errorf("cvtss2sd of normal: may=%v, want 0", widen.May)
	}
	if widen.Prunable {
		t.Error("converts are not prunable (quiet path handles arith only)")
	}
	toInt := res.SiteAt(p.AddrOf(7))
	if toInt.VerdictFor(softfloat.FlagInexact) != MustTrap {
		t.Errorf("cvttss2si pi: PE = %v, want must", toInt.VerdictFor(softfloat.FlagInexact))
	}
}

func TestDenormAndCompare(t *testing.T) {
	b := isa.NewBuilder("denorm")
	consts := b.Float64s(5e-324, 1.0)
	b.Movi(isa.R1, int64(consts))
	b.Fld(isa.X1, isa.R1, 0) // denormal
	b.Fld(isa.X2, isa.R1, 8)
	b.FP2(isa.OpMULSD, isa.X3, isa.X1, isa.X2) // denorm operand: DE
	b.Ucomi(isa.OpUCOMISD, isa.R3, isa.X1, isa.X2)
	b.Hlt()
	p := b.Build()

	res := Analyze(p)
	checkAgainstConcrete(t, res, runConcrete(t, p, 1000))

	mul := res.SiteAt(p.AddrOf(3))
	if mul.VerdictFor(softfloat.FlagDenormal) != MustTrap {
		t.Errorf("denorm*1: DE = %v, want must", mul.VerdictFor(softfloat.FlagDenormal))
	}
	cmp := res.SiteAt(p.AddrOf(4))
	if cmp.VerdictFor(softfloat.FlagDenormal) != MustTrap {
		t.Errorf("ucomi denorm: DE = %v, want must", cmp.VerdictFor(softfloat.FlagDenormal))
	}
	if cmp.May&softfloat.FlagInvalid != 0 {
		t.Error("ucomi of non-NaN constants cannot raise Invalid")
	}
}

func TestAddressTakenRootIsHavocked(t *testing.T) {
	b := isa.NewBuilder("roots")
	handler := b.Label("handler")
	consts := b.Float64s(1.0, 2.0)
	b.Movi(isa.R1, int64(consts))
	b.Fld(isa.X1, isa.R1, 0)
	b.Fld(isa.X2, isa.R1, 8)
	b.Lea(isa.R4, handler) // address-taken root
	b.FP2(isa.OpADDSD, isa.X3, isa.X1, isa.X2)
	b.Hlt()
	b.Bind(handler)
	b.FP2(isa.OpADDSD, isa.X5, isa.X6, isa.X7) // unknown operands
	b.Hlt()
	p := b.Build()

	res := Analyze(p)
	// A handler can run at any time and store to memory, so the initial
	// image is untrusted from entry on: the constant loads go to top and
	// the main-path add becomes may-trap.
	mainAdd := res.SiteAt(p.AddrOf(4))
	if mainAdd.VerdictFor(softfloat.FlagInvalid) != MayTrap {
		t.Errorf("main-path add with untrusted memory: IE = %v, want may", mainAdd.VerdictFor(softfloat.FlagInvalid))
	}
	if mainAdd.Prunable {
		t.Error("main-path add must not be prunable once memory is untrusted")
	}
	handlerAdd := res.SiteAt(p.AddrOf(6))
	if handlerAdd.VerdictFor(softfloat.FlagInvalid) != MayTrap {
		t.Errorf("handler add: IE = %v, want may (root state is havocked)", handlerAdd.VerdictFor(softfloat.FlagInvalid))
	}
	checkAgainstConcrete(t, res, runConcrete(t, p, 1000))
}

func TestMemoryInvalidationByStore(t *testing.T) {
	b := isa.NewBuilder("memstore")
	consts := b.Float64s(1.0, 2.0)
	b.Movi(isa.R1, int64(consts))
	b.Movi(isa.R2, 512)
	b.St(isa.R2, 0, isa.R1) // any store invalidates the initial image
	b.Fld(isa.X1, isa.R1, 0)
	b.FP2(isa.OpADDSD, isa.X2, isa.X1, isa.X1)
	b.Hlt()
	p := b.Build()

	res := Analyze(p)
	add := res.SiteAt(p.AddrOf(4))
	// After the store the load is unknown, so the add must be may-trap
	// for Invalid (NaN patterns can be loaded in principle).
	if add.VerdictFor(softfloat.FlagInvalid) != MayTrap {
		t.Errorf("post-store add: IE = %v, want may", add.VerdictFor(softfloat.FlagInvalid))
	}
	checkAgainstConcrete(t, res, runConcrete(t, p, 1000))
}

func TestQuietTableAndCheckSoundness(t *testing.T) {
	b := isa.NewBuilder("quiet")
	consts := b.Float64s(1.0, 2.0)
	b.Movi(isa.R1, int64(consts))
	b.Fld(isa.X1, isa.R1, 0)
	b.Fld(isa.X2, isa.R1, 8)
	b.FP2(isa.OpADDSD, isa.X3, isa.X1, isa.X2) // exact: prunable
	b.FP1(isa.OpSQRTSD, isa.X4, isa.X2)        // inexact: not prunable
	b.Hlt()
	p := b.Build()

	res := Analyze(p)
	qt := res.QuietTable()
	if !qt[3] {
		t.Error("quiet table should mark the exact addsd")
	}
	if qt[4] {
		t.Error("quiet table must not mark the sqrt")
	}
	if got := res.PrunableCount(); got != 1 {
		t.Errorf("prunable count = %d, want 1", got)
	}

	// A record raising Inexact at the sqrt site is consistent.
	ok := []trace.Record{{Rip: p.AddrOf(4), Raised: softfloat.FlagInexact}}
	if v := CheckSoundness(res, ok); len(v) != 0 {
		t.Errorf("consistent record flagged: %v", v)
	}
	// A record raising Invalid at the prunable add site is a violation.
	bad := []trace.Record{{Rip: p.AddrOf(3), Raised: softfloat.FlagInvalid}}
	v := CheckSoundness(res, bad)
	if len(v) != 1 || v[0].Excess != softfloat.FlagInvalid {
		t.Errorf("violation not detected: %v", v)
	}
	// A record at a non-site address is a violation too.
	stray := []trace.Record{{Rip: p.AddrOf(0), Raised: softfloat.FlagInexact}}
	if v := CheckSoundness(res, stray); len(v) != 1 {
		t.Errorf("stray-address record not flagged: %v", v)
	}
}

func TestAnalyzeIsCached(t *testing.T) {
	b := isa.NewBuilder("cached")
	b.FP2(isa.OpADDSD, isa.X1, isa.X1, isa.X2)
	b.Hlt()
	p := b.Build()
	r1 := Analyze(p)
	r2 := Analyze(p)
	if r1 != r2 {
		t.Error("Analyze should memoize per program")
	}
}

func TestFMAAndPacked(t *testing.T) {
	b := isa.NewBuilder("fma")
	consts := b.Float64s(1.5, 2.0, 3.0, 4.0)
	b.Movi(isa.R1, int64(consts))
	b.Fldv(isa.X1, isa.R1, 0)
	b.Fldv(isa.X2, isa.R1, 0)
	b.FMA(isa.OpVFMADDPD, isa.X3, isa.X1, isa.X2, isa.X1) // a*b+a, all lanes exact-able?
	b.FP2(isa.OpMULPD, isa.X4, isa.X1, isa.X2)
	b.Hlt()
	p := b.Build()

	res := Analyze(p)
	checkAgainstConcrete(t, res, runConcrete(t, p, 1000))
	mul := res.SiteAt(p.AddrOf(3))
	if mul == nil {
		t.Fatal("fma site missing")
	}
}
