// Package absint is a forward abstract interpretation over the CFG
// recovered by internal/binscan. It classifies every floating point site
// in the inventory as never-trap, may-trap, or must-trap per exception
// class (invalid, denorm, divide-by-zero, overflow, underflow, inexact),
// sharing one definition of every operation with the dynamic world: the
// concrete corner of the abstract domain calls internal/softfloat
// directly, so a static verdict can only disagree with execution if the
// abstraction itself is wrong — which the corpus soundness tests and
// FuzzAbsint check.
//
// The abstract value of one 64-bit vector lane is a triple:
//
//   - an optional small set of concrete bit patterns (exact as long as
//     it stays small — transfer enumerates softfloat over the operand
//     cross product and the environment set);
//   - possibility bits for the IEEE special classes a lane may hold
//     (±NaN signaling/quiet, ±Inf, ±zero, ±denormal, ±normal);
//   - an interval [lo, hi] bounding the lane whenever it holds a finite
//     value (specials are carried by the bits, not the interval).
//
// Joins union sets until they exceed a size budget, then fall back to
// bits+interval. Widening at loop heads (after a join-count threshold)
// drops sets and forces intervals to full range; the possibility-bit
// lattice is finite, so the fixpoint terminates.
//
// Soundness leans on three havoc rules: address-taken roots enter with
// an unconstrained state, callc returns havoc every register, and any
// program with an address-taken root loses the initial memory image
// (a signal handler or second thread may rewrite memory between any two
// instructions — sigreturn restores registers, but not memory).
package absint

import (
	"math"
	"sort"

	"repro/internal/softfloat"
)

// maxSet is the concrete-set size budget per abstract value. Transfer
// functions enumerate softfloat over the operand cross product, so the
// budget bounds per-site work at maxSet^2 (maxSet^3 for FMA) times the
// environment-set size.
const maxSet = 4

// widenAfter is the per-block join count after which incoming states
// are widened (sets dropped, intervals forced to full range).
const widenAfter = 8

// Possibility bits for the IEEE value classes a lane may hold.
const (
	bSNaN uint16 = 1 << iota
	bQNaN
	bPInf
	bNInf
	bPZero
	bNZero
	bPDen
	bNDen
	bPNorm
	bNNorm

	bitsNone uint16 = 0
	bitsAll  uint16 = 1<<10 - 1
	bitsNaN         = bSNaN | bQNaN
	bitsInf         = bPInf | bNInf
	bitsZero        = bPZero | bNZero
	bitsDen         = bPDen | bNDen
	bitsNorm        = bPNorm | bNNorm
)

// limits carries the format-dependent constants of the abstract rules.
// The overflow/tiny thresholds keep a factor-two margin from the true
// rounding boundaries, so interval slop can never flip a "possible"
// into an unsound "impossible".
type limits struct {
	maxFinite  float64
	ovfThresh  float64 // |exact result| >= this => overflow possible
	tinyThresh float64 // 0 < |result| < this => underflow possible
}

var (
	lim64 = limits{maxFinite: math.MaxFloat64, ovfThresh: 0x1p1023, tinyThresh: 0x1p-1021}
	lim32 = limits{maxFinite: math.MaxFloat32, ovfThresh: 0x1p127, tinyThresh: 0x1p-125}
)

// Val abstracts one floating point lane (64- or 32-bit; the width is
// carried by context, and 32-bit patterns live in the low half of the
// uint64). A nil set means the value is abstract and only bits+interval
// constrain it. The interval bounds the lane's value whenever the lane
// holds a finite value; NaN and Inf possibilities ride in the bits.
type Val struct {
	set    []uint64
	bits   uint16
	lo, hi float64
}

// classify64 returns the possibility bit of one binary64 pattern.
func classify64(p uint64) uint16 {
	neg := p>>63 != 0
	switch {
	case softfloat.IsSNaN64(p):
		return bSNaN
	case softfloat.IsNaN64(p):
		return bQNaN
	case softfloat.IsInf64(p):
		if neg {
			return bNInf
		}
		return bPInf
	case softfloat.IsZero64(p):
		if neg {
			return bNZero
		}
		return bPZero
	case softfloat.IsDenormal64(p):
		if neg {
			return bNDen
		}
		return bPDen
	default:
		if neg {
			return bNNorm
		}
		return bPNorm
	}
}

// classify32 returns the possibility bit of one binary32 pattern.
func classify32(p uint32) uint16 {
	neg := p>>31 != 0
	switch {
	case softfloat.IsSNaN32(p):
		return bSNaN
	case softfloat.IsNaN32(p):
		return bQNaN
	case softfloat.IsInf32(p):
		if neg {
			return bNInf
		}
		return bPInf
	case softfloat.IsZero32(p):
		if neg {
			return bNZero
		}
		return bPZero
	case softfloat.IsDenormal32(p):
		if neg {
			return bNDen
		}
		return bPDen
	default:
		if neg {
			return bNNorm
		}
		return bPNorm
	}
}

// emptyRange is the interval of a value that is never finite.
func emptyRange() (float64, float64) { return math.Inf(1), math.Inf(-1) }

// valFromPatterns64 builds the most precise Val for a pattern list.
// When the list exceeds the set budget the set is dropped, but bits and
// interval stay exact for the enumerated patterns.
func valFromPatterns64(ps []uint64) Val {
	v := Val{}
	v.lo, v.hi = emptyRange()
	seen := make(map[uint64]bool, len(ps))
	for _, p := range ps {
		if seen[p] {
			continue
		}
		seen[p] = true
		cls := classify64(p)
		v.bits |= cls
		if cls&(bitsNaN|bitsInf) == 0 {
			f := math.Float64frombits(p)
			if f < v.lo {
				v.lo = f
			}
			if f > v.hi {
				v.hi = f
			}
		}
		v.set = append(v.set, p)
	}
	if len(v.set) > maxSet {
		v.set = nil
	} else {
		sort.Slice(v.set, func(i, j int) bool { return v.set[i] < v.set[j] })
	}
	return v
}

// valFromPatterns32 is the binary32 twin of valFromPatterns64; patterns
// are stored zero-extended.
func valFromPatterns32(ps []uint32) Val {
	v := Val{}
	v.lo, v.hi = emptyRange()
	seen := make(map[uint32]bool, len(ps))
	for _, p := range ps {
		if seen[p] {
			continue
		}
		seen[p] = true
		cls := classify32(p)
		v.bits |= cls
		if cls&(bitsNaN|bitsInf) == 0 {
			f := float64(math.Float32frombits(p))
			if f < v.lo {
				v.lo = f
			}
			if f > v.hi {
				v.hi = f
			}
		}
		v.set = append(v.set, uint64(p))
	}
	if len(v.set) > maxSet {
		v.set = nil
	} else {
		sort.Slice(v.set, func(i, j int) bool { return v.set[i] < v.set[j] })
	}
	return v
}

// valTop64 is the unconstrained binary64 lane.
func valTop64() Val {
	return Val{bits: bitsAll, lo: -math.MaxFloat64, hi: math.MaxFloat64}
}

// valTop32 is the unconstrained binary32 lane.
func valTop32() Val {
	return Val{bits: bitsAll, lo: -math.MaxFloat32, hi: math.MaxFloat32}
}

// valAbs builds an abstract Val from bits and an interval.
func valAbs(bits uint16, lo, hi float64) Val {
	if bits&^(bitsNaN|bitsInf) == 0 {
		lo, hi = emptyRange()
	}
	return Val{bits: bits, lo: lo, hi: hi}
}

func (v Val) concrete() bool { return v.set != nil }

func (v Val) canSNaN() bool   { return v.bits&bSNaN != 0 }
func (v Val) canNaN() bool    { return v.bits&bitsNaN != 0 }
func (v Val) canPInf() bool   { return v.bits&bPInf != 0 }
func (v Val) canNInf() bool   { return v.bits&bNInf != 0 }
func (v Val) canInf() bool    { return v.bits&bitsInf != 0 }
func (v Val) canZero() bool   { return v.bits&bitsZero != 0 }
func (v Val) canDen() bool    { return v.bits&bitsDen != 0 }
func (v Val) canFinite() bool { return v.bits&(bitsZero|bitsDen|bitsNorm) != 0 }

// onlyZero reports that the lane is always a signed zero.
func (v Val) onlyZero() bool { return v.bits != 0 && v.bits&^bitsZero == 0 }

// maxMag is the largest finite magnitude the lane can hold (0 when no
// finite value is possible).
func (v Val) maxMag() float64 {
	if v.lo > v.hi {
		return 0
	}
	return math.Max(math.Abs(v.lo), math.Abs(v.hi))
}

// minMag is the smallest finite magnitude the lane can hold; it is 0
// when the interval spans or touches zero.
func (v Val) minMag() float64 {
	if v.lo > v.hi {
		return 0
	}
	if v.lo > 0 {
		return v.lo
	}
	if v.hi < 0 {
		return -v.hi
	}
	return 0
}

// neg mirrors a lane through sign flip (exact: subtraction is addition
// of the negation).
func (v Val) neg() Val {
	out := Val{lo: -v.hi, hi: -v.lo}
	if v.lo > v.hi {
		out.lo, out.hi = emptyRange()
	}
	swap := func(b uint16, p, n uint16) uint16 {
		var r uint16
		if b&p != 0 {
			r |= n
		}
		if b&n != 0 {
			r |= p
		}
		return r
	}
	out.bits = v.bits&bitsNaN |
		swap(v.bits, bPInf, bNInf) |
		swap(v.bits, bPZero, bNZero) |
		swap(v.bits, bPDen, bNDen) |
		swap(v.bits, bPNorm, bNNorm)
	if v.set != nil {
		out.set = make([]uint64, len(v.set))
		for i, p := range v.set {
			out.set[i] = p ^ 1<<63
		}
		sort.Slice(out.set, func(i, j int) bool { return out.set[i] < out.set[j] })
	}
	return out
}

// neg32 is the binary32 twin of neg.
func (v Val) neg32() Val {
	out := v.neg()
	if v.set != nil {
		for i, p := range v.set {
			out.set[i] = p // undo the 64-bit flip, apply the 32-bit one
			out.set[i] = uint64(uint32(p) ^ 1<<31)
		}
		sort.Slice(out.set, func(i, j int) bool { return out.set[i] < out.set[j] })
	}
	return out
}

// joinVal merges two lane abstractions; wide forces the widened form.
// Bits and intervals come from the operands (already width-correct), so
// the join works for 64- and 32-bit lanes alike.
func joinVal(a, b Val, wide bool) Val {
	out := Val{bits: a.bits | b.bits, lo: math.Min(a.lo, b.lo), hi: math.Max(a.hi, b.hi)}
	if a.lo > a.hi {
		out.lo, out.hi = b.lo, b.hi
	} else if b.lo > b.hi {
		out.lo, out.hi = a.lo, a.hi
	}
	if a.concrete() && b.concrete() && !wide {
		seen := make(map[uint64]bool, len(a.set)+len(b.set))
		merged := make([]uint64, 0, len(a.set)+len(b.set))
		for _, s := range [][]uint64{a.set, b.set} {
			for _, p := range s {
				if !seen[p] {
					seen[p] = true
					merged = append(merged, p)
				}
			}
		}
		if len(merged) <= maxSet {
			sort.Slice(merged, func(i, j int) bool { return merged[i] < merged[j] })
			out.set = merged
			return out
		}
	}
	if wide && out.bits&(bitsZero|bitsDen|bitsNorm) != 0 {
		out.lo, out.hi = -math.MaxFloat64, math.MaxFloat64
	}
	return out
}

// valEqual reports abstract-state equality for the fixpoint test.
func valEqual(a, b Val) bool {
	if (a.set == nil) != (b.set == nil) {
		return false
	}
	if a.set != nil {
		if len(a.set) != len(b.set) {
			return false
		}
		for i := range a.set {
			if a.set[i] != b.set[i] {
				return false
			}
		}
	}
	return a.bits == b.bits && sameBound(a.lo, b.lo) && sameBound(a.hi, b.hi)
}

func sameBound(a, b float64) bool {
	return a == b || (math.IsInf(a, 1) && math.IsInf(b, 1)) || (math.IsInf(a, -1) && math.IsInf(b, -1)) ||
		(math.IsNaN(a) && math.IsNaN(b))
}

// IntVal abstracts one integer register: a small set of concrete values
// or top.
type IntVal struct {
	set []uint64
	top bool
}

func intTop() IntVal           { return IntVal{top: true} }
func intConst(v uint64) IntVal { return IntVal{set: []uint64{v}} }

func intFromSet(vs []uint64) IntVal {
	seen := make(map[uint64]bool, len(vs))
	out := IntVal{}
	for _, v := range vs {
		if !seen[v] {
			seen[v] = true
			out.set = append(out.set, v)
		}
	}
	if len(out.set) > maxSet {
		return intTop()
	}
	sort.Slice(out.set, func(i, j int) bool { return out.set[i] < out.set[j] })
	return out
}

func joinInt(a, b IntVal, wide bool) IntVal {
	if a.top || b.top || wide {
		return intTop()
	}
	return intFromSet(append(append([]uint64{}, a.set...), b.set...))
}

func intEqual(a, b IntVal) bool {
	if a.top != b.top {
		return false
	}
	if len(a.set) != len(b.set) {
		return false
	}
	for i := range a.set {
		if a.set[i] != b.set[i] {
			return false
		}
	}
	return true
}

// outDown/outUp round an interval bound outward by one ulp, absorbing
// any error a correctly rounded operation could introduce relative to
// the real-valued bound computed in float64.
func outDown(x float64) float64 {
	if math.IsNaN(x) || math.IsInf(x, -1) {
		return math.Inf(-1)
	}
	return math.Nextafter(x, math.Inf(-1))
}

func outUp(x float64) float64 {
	if math.IsNaN(x) || math.IsInf(x, 1) {
		return math.Inf(1)
	}
	return math.Nextafter(x, math.Inf(1))
}

// clampRange clips an outward interval to the finite range of the
// format (specials are carried by bits, not the interval).
func clampRange(lo, hi float64, lim limits) (float64, float64) {
	if lo > hi || math.IsNaN(lo) || math.IsNaN(hi) {
		return -lim.maxFinite, lim.maxFinite
	}
	if lo < -lim.maxFinite {
		lo = -lim.maxFinite
	}
	if hi > lim.maxFinite {
		hi = lim.maxFinite
	}
	if lo > hi { // both bounds clipped past each other: no finite values
		return emptyRange()
	}
	return lo, hi
}

// intervalHasTiny reports whether [lo, hi] contains a value x with
// 0 < |x| < thresh — the underflow-candidate region.
func intervalHasTiny(lo, hi, thresh float64) bool {
	if lo > hi {
		return false
	}
	if lo == 0 && hi == 0 {
		return false
	}
	return lo < thresh && hi > -thresh
}
