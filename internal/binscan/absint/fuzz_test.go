package absint

import (
	"math"
	"reflect"
	"testing"

	"repro/internal/isa"
	"repro/internal/machine"
	"repro/internal/softfloat"
)

// fuzzConsts is the data table every fuzz program loads operands from:
// the values that tickle each exception class (zeros, infinities, NaN,
// the largest normal, the smallest denormal) plus exact and inexact
// mundane values.
var fuzzConsts = []float64{
	0.0, 1.0, -1.0, 0.5, 3.0, 0.1, -2.5,
	1e308, 5e-324, math.Inf(1), math.Inf(-1), math.NaN(),
	math.MaxFloat64, 0x1p-1022, // smallest normal
}

// fuzzMXCSRWords are the environment words a fuzz program may ldmxcsr:
// the default, round-toward-zero, round-down, FTZ, and DAZ.
var fuzzMXCSRWords = []uint64{0x1f80, 0x7f80, 0x3f80, 0x9f80, 0x1fc0}

// genProgram deterministically builds a terminating program from fuzz
// bytes: forward-only control flow over FP arithmetic on table
// operands, with optional callc havoc, mxcsr rewrites, stores/loads,
// and an address-taken trailer block.
func genProgram(data []byte) *isa.Program {
	b := isa.NewBuilder("fuzz")
	consts := b.Float64s(fuzzConsts...)
	envs := b.Words(fuzzMXCSRWords...)
	scratch := b.Zeros(128)

	b.Movi(isa.R1, int64(consts))
	b.Movi(isa.R2, int64(envs))
	b.Movi(isa.R3, int64(scratch))

	next := 0
	byteAt := func() int {
		if next >= len(data) {
			return 0
		}
		v := int(data[next])
		next++
		return v
	}
	xreg := func(v int) int { return 1 + v%7 } // X1..X7

	// Seed a few registers from the table.
	for i := 1; i <= 4; i++ {
		b.Fld(i, isa.R1, int64(byteAt()%len(fuzzConsts))*8)
	}

	fp2 := []isa.Opcode{isa.OpADDSD, isa.OpSUBSD, isa.OpMULSD, isa.OpDIVSD, isa.OpMINSD, isa.OpMAXSD}
	fp2z := []isa.Opcode{isa.OpVADDPDZ, isa.OpVSUBPDZ, isa.OpVMULPDZ, isa.OpVDIVPDZ,
		isa.OpVADDPSZ, isa.OpVMULPSZ}
	fp2k := []isa.Opcode{isa.OpVADDPDKZ, isa.OpVSUBPDKZ, isa.OpVMULPDKZ, isa.OpVDIVPDKZ,
		isa.OpVADDPSKZ, isa.OpVDIVPSKZ}
	var pending []*isa.Label
	steps := 8 + byteAt()%48
	for i := 0; i < steps; i++ {
		op := byteAt()
		a, c := byteAt(), byteAt()
		switch op % 14 {
		case 0, 1, 2, 3: // weighted toward arithmetic
			b.FP2(fp2[op%len(fp2)], xreg(a), xreg(c), xreg(op>>4))
		case 4:
			b.FP1(isa.OpSQRTSD, xreg(a), xreg(c))
		case 5: // reload an operand from the table
			b.Fld(xreg(a), isa.R1, int64(c%len(fuzzConsts))*8)
		case 6: // forward branch: both arms stay live or one goes dead
			l := b.Label("fwd")
			pending = append(pending, l)
			if a%2 == 0 {
				b.Beq(isa.R0, isa.R0, l) // always taken
			} else {
				b.Bne(isa.R0, isa.R0, l) // never taken
			}
		case 7: // havoc
			b.CallC("rand")
		case 8: // store/load through scratch memory
			b.Fst(isa.R3, int64(a%8)*8, xreg(c))
			b.Fld(xreg(op>>4), isa.R3, int64(a%8)*8)
		case 9: // environment rewrite
			b.Ldmxcsr(isa.R2, int64(a%len(fuzzMXCSRWords))*8)
		case 10: // 512-bit packed arithmetic
			b.FP2(fp2z[op%len(fp2z)], xreg(a), xreg(c), xreg(op>>4))
		case 11: // write-masked arithmetic plus a sqrt form
			if a%3 == 0 {
				b.FP1Masked(isa.OpVSQRTPDKZ, xreg(a), xreg(c), op>>4%isa.NumMaskRegs)
			} else {
				b.FP2Masked(fp2k[op%len(fp2k)], xreg(a), xreg(c), xreg(op>>4), a%isa.NumMaskRegs)
			}
		case 12: // mask-register traffic
			if a%2 == 0 {
				b.Movi(isa.R5, int64(c))
				b.Kmovq(c%isa.NumMaskRegs, isa.R5)
			} else {
				b.Kmovrq(isa.R6, c%isa.NumMaskRegs)
			}
		case 13: // full-width store/load through scratch memory
			b.Fstvz(isa.R3, int64(a%2)*64, xreg(c))
			b.Fldvz(xreg(op>>4), isa.R3, int64(a%2)*64)
		}
		// Bind a pending forward label at a byte-chosen point.
		if len(pending) > 0 && c%3 == 0 {
			b.Bind(pending[0])
			pending = pending[1:]
		}
	}
	for _, l := range pending {
		b.Bind(l)
	}
	// Optionally end with an address-taken trailer the entry falls into:
	// exercises the untrusted-memory entry state.
	if byteAt()%2 == 0 {
		trailer := b.Label("trailer")
		b.Lea(isa.R4, trailer)
		b.Bind(trailer)
		b.FP2(isa.OpADDSD, isa.X1, isa.X1, isa.X2)
	}
	b.Hlt()
	return b.Build()
}

// runFuzzConcrete is runConcrete without the halt requirement: fuzz
// programs always terminate by construction (forward-only branches),
// but the soundness claim holds over any executed prefix regardless.
func runFuzzConcrete(p *isa.Program, quiet []bool) (*machine.Machine, map[int]softfloat.Flags) {
	m := machine.New(p, 2<<20)
	m.QuietFP = quiet
	raised := make(map[int]softfloat.Flags)
	for i := 0; i < 100000; i++ {
		m.CPU.MXCSR.ClearFlags()
		idx := p.IndexOf(m.CPU.RIP)
		ev := m.Step()
		if fl := m.CPU.MXCSR.Flags(); fl != 0 && idx >= 0 {
			raised[idx] |= fl
		}
		switch ev.(type) {
		case *machine.HaltEvent, *machine.FaultEvent:
			return m, raised
		}
	}
	return m, raised
}

// FuzzAbsint generates random terminating programs and checks the
// abstract interpreter's central claims against concrete execution:
// a never-trap site never raises any condition, May covers everything
// raised, Must conditions are raised when the site executes in the
// default environment, and quiet-path (pruned) execution is
// bit-identical to the precise interpreter.
func FuzzAbsint(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{7, 3, 9, 200, 14, 6, 0, 3, 9, 4, 4, 4})
	f.Add([]byte{6, 0, 0, 3, 3, 3, 7, 7, 9, 9, 5, 1, 2, 8, 8, 250, 131, 17})
	// 512-bit, write-masked, mask-register, and full-width memory forms
	// (op%14 in {10,11,12,13}), mixed with environment rewrites.
	f.Add([]byte{1, 2, 3, 4, 30, 10, 5, 24, 3, 7, 25, 0, 66, 26, 4, 1, 27, 9, 2, 9, 3, 1})
	f.Add([]byte{9, 9, 9, 9, 40, 11, 97, 33, 12, 2, 120, 13, 1, 50, 38, 255, 4, 26, 5, 5})
	f.Fuzz(func(t *testing.T, data []byte) {
		p := genProgram(data)
		res := Analyze(p)

		m, raised := runFuzzConcrete(p, nil)
		for idx, fl := range raised {
			site := res.SiteAt(p.AddrOf(idx))
			if site == nil {
				t.Fatalf("inst %d raised %v but is not a static site", idx, fl)
			}
			if !site.Reachable {
				t.Fatalf("inst %d (%s) raised %v but classified unreachable", idx, site.Op, fl)
			}
			if site.May == 0 {
				t.Fatalf("never-trap site %d (%s) raised %v concretely", idx, site.Op, fl)
			}
			if excess := fl &^ site.May; excess != 0 {
				t.Fatalf("inst %d (%s): raised %v outside static may=%v", idx, site.Op, fl, site.May)
			}
		}
		if !res.EnvVaries {
			// Must is proven for the default environment only, so it is
			// checkable only when the program never rewrites MXCSR.
			for idx, fl := range raised {
				site := res.SiteAt(p.AddrOf(idx))
				if miss := site.Must &^ fl; miss != 0 {
					t.Fatalf("inst %d (%s): must=%v but only %v raised", idx, site.Op, site.Must, fl)
				}
			}
		}

		// Pruned execution must be bit-identical to the precise run.
		if res.PrunableCount() > 0 {
			mq, raisedQ := runFuzzConcrete(p, res.QuietTable())
			if m.CPU.X != mq.CPU.X || m.CPU.R != mq.CPU.R || m.CPU.RIP != mq.CPU.RIP ||
				m.CPU.MXCSR != mq.CPU.MXCSR {
				t.Fatalf("pruned run diverged: precise CPU %+v, quiet CPU %+v", m.CPU, mq.CPU)
			}
			if !reflect.DeepEqual(raised, raisedQ) {
				t.Fatalf("pruned run raised %v, precise %v", raisedQ, raised)
			}
		}
	})
}
