package binscan_test

import (
	"testing"

	fpspy "repro"
	"repro/internal/analysis"
	"repro/internal/binscan"
	"repro/internal/workload"
)

// TestStaticScanSoundAgainstDynamicTraces is the static-vs-dynamic
// validation of the issue: run workloads under FPSpy in individual mode
// and replay every captured trap against the static scan. The soundness
// invariant — every dynamic trap address is a statically discovered,
// statically reachable floating point site — must hold exactly
// (recall == 1.0), because the scan enumerates every instruction that
// can raise condition codes and reachability over-approximates
// execution.
func TestStaticScanSoundAgainstDynamicTraces(t *testing.T) {
	for _, name := range []string{"miniaero", "laghos", "enzo", "gromacs"} {
		name := name
		t.Run(name, func(t *testing.T) {
			w, err := workload.ByName(name)
			if err != nil {
				t.Fatal(err)
			}
			prog := w.Build(workload.SizeSmall)
			scan := binscan.ScanProgram(prog)

			res, err := fpspy.Run(prog, fpspy.Options{Config: fpspy.Config{
				Mode:       fpspy.ModeIndividual,
				ExceptList: fpspy.AllEvents,
			}})
			if err != nil {
				t.Fatal(err)
			}
			recs := res.MustRecords()
			if len(recs) == 0 {
				t.Fatal("no dynamic events captured; validation is vacuous")
			}

			v := scan.Validate(recs)
			if !v.Sound() {
				t.Fatalf("soundness violated: %v (missing=%#x unreachable=%#x)",
					v, v.Missing, v.UnreachableHit)
			}
			if v.Recall != 1.0 {
				t.Errorf("recall = %v, want 1.0", v.Recall)
			}
			if v.FormMismatches != 0 {
				t.Errorf("form mismatches = %d, want 0 (trace word decodes to the static form)",
					v.FormMismatches)
			}
			if v.Precision <= 0 || v.Precision > 1 {
				t.Errorf("precision = %v out of (0, 1]", v.Precision)
			}

			// The analysis-layer view must agree: every dynamic site is in
			// the reachable static set, and every event lands on a known
			// site.
			cov := analysis.StaticCoverageOf(recs, scan.SiteAddrs(true))
			if cov.UnknownSites != 0 {
				t.Errorf("coverage reports %d unknown sites, want 0", cov.UnknownSites)
			}
			if cov.EventCoverage != 1.0 {
				t.Errorf("event coverage = %v, want 1.0", cov.EventCoverage)
			}
		})
	}
}
