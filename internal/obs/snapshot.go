package obs

import (
	"encoding/json"
	"fmt"
	"io"
)

// signalName names the Linux x86-64 signal numbers the simulated kernel
// delivers. The table mirrors internal/kernel's Signal constants; obs
// cannot import kernel (kernel imports obs), so the few numbers are
// restated here.
func signalName(n int) string {
	switch n {
	case 4:
		return "SIGILL"
	case 5:
		return "SIGTRAP"
	case 8:
		return "SIGFPE"
	case 9:
		return "SIGKILL"
	case 11:
		return "SIGSEGV"
	case 14:
		return "SIGALRM"
	case 26:
		return "SIGVTALRM"
	}
	return fmt.Sprintf("sig%d", n)
}

// Snapshot is a point-in-time, name-keyed copy of every instrument —
// what -metrics prints, /metrics serves, and the reconciliation tests
// compare against the trace.
type Snapshot struct {
	// UptimeNS is the metrics handle's age at snapshot time.
	UptimeNS int64 `json:"uptimeNS"`
	// Counters, Gauges, and Histograms are the flattened instruments.
	// Counters at zero are omitted, so the maps list what happened.
	Counters   map[string]uint64            `json:"counters"`
	Gauges     map[string]int64             `json:"gauges"`
	Histograms map[string]HistogramSnapshot `json:"histograms"`
	// TraceEmitted and TraceDropped account for the tracer ring.
	TraceEmitted uint64 `json:"traceEmitted"`
	TraceDropped uint64 `json:"traceDropped"`
}

// Counter names used by Snapshot; tests reference these rather than
// restating strings.
const (
	NameSpyFaults           = "spy.faults"
	NameSpyRecords          = "spy.records"
	NameStudyPassRequests   = "study.pass.requests"
	NameStudyPassesExecuted = "study.pass.executed"
	NameStudyPassErrors     = "study.pass.errors"
	NameKernelFastSteps     = "kernel.fast.steps"
	NameKernelPreciseSteps  = "kernel.precise.steps"
	NameServerSubmissions   = "server.submissions"
	NameServerCacheHits     = "server.cache.hits"
	NameServerCacheMisses   = "server.cache.misses"
	NameServerRateLimited   = "server.rate-limited"
	NameServerShed          = "server.shed"
	NameServerQueueDepth    = "server.queue-depth"
	NameMachineQuietSteps   = "machine.quiet.steps"
	NameClusterForwards     = "cluster.forwards"
	NameClusterHedges       = "cluster.hedges"
	NameClusterEvictions    = "cluster.evictions"
	NameClusterStealsIn     = "cluster.steals.in"
	NameClusterPartition    = "cluster.partition-local"
	NamePruneAnalyses       = "prune.analyses"
	NamePruneSitesTotal     = "prune.sites-total"
	NamePruneSitesPruned    = "prune.sites-pruned"
	NameFlopMaskedSkipped   = "flop.masked-skipped"
	NameShadowChannels      = "shadow.channels"
	NameShadowOps           = "shadow.ops"
	NameShadowSites         = "shadow.sites"
)

// flopOpNames orders the FlopMetrics op groups for flattening; the
// indices match flopOpCounters.
var flopOpNames = [...]string{"add", "sub", "mul", "div", "sqrt", "min", "max",
	"fma", "convert", "compare", "round"}

// flopPrecNames names the FlopPrecisions indices (0 = binary64).
var flopPrecNames = [FlopPrecisions]string{"double", "single"}

// FlopCounterName returns the snapshot key of one FLOP counter, e.g.
// FlopCounterName("fma", 0) == "flop.fma.double". prec indexes
// FlopPrecisions (0 double, 1 single).
func FlopCounterName(op string, prec int) string {
	return "flop." + op + "." + flopPrecNames[prec]
}

// flopOpCounters returns the per-precision counter arrays in
// flopOpNames order (all nil for a nil receiver).
func (f *FlopMetrics) flopOpCounters() [len(flopOpNames)]*[FlopPrecisions]Counter {
	if f == nil {
		return [len(flopOpNames)]*[FlopPrecisions]Counter{}
	}
	return [...]*[FlopPrecisions]Counter{
		&f.Add, &f.Sub, &f.Mul, &f.Div, &f.Sqrt, &f.Min, &f.Max,
		&f.FMA, &f.Convert, &f.Compare, &f.Round,
	}
}

// KernelSignalCounterName returns the snapshot key of the delivery
// counter for a signal number (e.g. "kernel.signal.SIGFPE").
func KernelSignalCounterName(sig int) string {
	return "kernel.signal." + signalName(sig)
}

// Snapshot flattens every instrument into a name-keyed view. A nil
// handle yields an empty snapshot.
func (m *Metrics) Snapshot() Snapshot {
	s := Snapshot{
		Counters:   map[string]uint64{},
		Gauges:     map[string]int64{},
		Histograms: map[string]HistogramSnapshot{},
	}
	if m == nil {
		return s
	}
	s.UptimeNS = m.Uptime().Nanoseconds()
	s.TraceEmitted = m.Tracer.Emitted()
	s.TraceDropped = m.Tracer.Dropped()

	counter := func(name string, c *Counter) {
		if v := c.Load(); v > 0 {
			s.Counters[name] = v
		}
	}
	gauge := func(name string, g *Gauge) { s.Gauges[name] = g.Load() }
	hist := func(name string, h *Histogram) {
		if snap := h.snapshot(); snap.Count > 0 {
			s.Histograms[name] = snap
		}
	}

	k := &m.Kernel
	for i := range k.Signals {
		counter(KernelSignalCounterName(i), &k.Signals[i])
	}
	counter("kernel.mcontext.mxcsr-mutations", &k.MCtxMXCSR)
	counter("kernel.mcontext.tf-toggles", &k.MCtxTF)
	counter(NameKernelFastSteps, &k.FastSteps)
	counter(NameKernelPreciseSteps, &k.PreciseSteps)
	counter("kernel.timer.real-fires", &k.TimerFires[0])
	counter("kernel.timer.virtual-fires", &k.TimerFires[1])
	counter("kernel.sched.rounds", &k.SchedRounds)
	hist("kernel.fast.batch-length", &k.FastBatch)
	hist("kernel.sched.runnable-tasks", &k.SchedTasks)

	mm := &m.Machine
	counter("machine.mxcsr.guest-writes", &mm.GuestMXCSRWrites)
	counter("machine.mxcsr.guest-reads", &mm.GuestMXCSRReads)
	counter("machine.breakpoints.armed", &mm.BreakpointsArmed)
	counter(NameMachineQuietSteps, &mm.QuietSteps)

	fl := &m.Flop
	for i, ops := range fl.flopOpCounters() {
		if ops == nil {
			continue
		}
		for p := 0; p < FlopPrecisions; p++ {
			counter(FlopCounterName(flopOpNames[i], p), &ops[p])
		}
	}
	counter(NameFlopMaskedSkipped, &fl.MaskedSkipped)

	pr := &m.Prune
	counter(NamePruneAnalyses, &pr.Analyses)
	counter("prune.env-varying", &pr.EnvVarying)
	gauge(NamePruneSitesTotal, &pr.SitesTotal)
	gauge(NamePruneSitesPruned, &pr.SitesPruned)

	sp := &m.Spy
	counter(NameSpyFaults, &sp.Faults)
	counter(NameSpyRecords, &sp.Records)
	counter("spy.demotions", &sp.Demotions)
	counter("spy.detaches", &sp.Detaches)
	counter("spy.reasserts", &sp.Reasserts)
	counter("spy.signal-fights", &sp.SignalFights)
	counter("spy.threads-monitored", &sp.ThreadsMonitored)
	counter("spy.sampler-flips", &sp.TimerFlips)
	hist("spy.protocol-ns", &sp.ProtocolNS)

	sh := &m.Shadow
	counter(NameShadowChannels, &sh.Channels)
	counter(NameShadowOps, &sh.Ops)
	counter("shadow.invalidations", &sh.Invalidations)
	counter("shadow.nonfinite", &sh.NonFinite)
	counter("shadow.site-overflow", &sh.SiteOverflow)
	counter("shadow.mem-drops", &sh.MemDrops)
	gauge(NameShadowSites, &sh.Sites)
	gauge("shadow.mem-shadows", &sh.MemShadows)
	hist("shadow.ulp-divergence", &sh.Divergence)

	st := &m.Study
	counter(NameStudyPassRequests, &st.PassRequests)
	counter(NameStudyPassesExecuted, &st.PassesExecuted)
	counter(NameStudyPassErrors, &st.PassErrors)
	hist("study.pass.wall-cycles", &st.PassWallCycles)
	hist("study.pass.host-ns", &st.PassHostNS)
	gauge("study.workers-busy", &st.WorkersBusy)

	sv := &m.Server
	counter(NameServerSubmissions, &sv.Submissions)
	counter(NameServerCacheHits, &sv.CacheHits)
	counter(NameServerCacheMisses, &sv.CacheMisses)
	counter(NameServerRateLimited, &sv.RateLimited)
	counter(NameServerShed, &sv.Shed)
	counter("server.jobs.completed", &sv.JobsCompleted)
	counter("server.jobs.failed", &sv.JobsFailed)
	gauge(NameServerQueueDepth, &sv.QueueDepth)
	hist("server.http.submit-ns", &sv.SubmitNS)
	hist("server.http.status-ns", &sv.StatusNS)
	hist("server.http.result-ns", &sv.ResultNS)
	hist("server.http.figures-ns", &sv.FiguresNS)

	cl := &m.Cluster
	counter("cluster.forwards-local", &cl.ForwardsLocal)
	counter(NameClusterForwards, &cl.Forwards)
	counter("cluster.retries", &cl.Retries)
	counter(NameClusterHedges, &cl.Hedges)
	counter("cluster.hedge-wins", &cl.HedgeWins)
	counter("cluster.rpc-errors", &cl.RPCErrors)
	counter(NameClusterEvictions, &cl.Evictions)
	counter("cluster.readmissions", &cl.Readmissions)
	counter("cluster.probes", &cl.Probes)
	counter("cluster.probe-failures", &cl.ProbeFailures)
	counter(NameClusterStealsIn, &cl.StealsIn)
	counter("cluster.steals.out", &cl.StealsOut)
	counter("cluster.steal-requeues", &cl.StealRequeues)
	counter(NameClusterPartition, &cl.PartitionLocal)
	hist("cluster.forward-ns", &cl.ForwardNS)

	self := &m.Self
	counter("self.samples", &self.Samples)
	gauge("self.goroutines", &self.Goroutines)
	gauge("self.heap-alloc-bytes", &self.HeapAllocBytes)
	hist("self.workers-busy-samples", &self.WorkersBusySamples)

	return s
}

// WriteJSON serializes the snapshot.
func (s Snapshot) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}

// ParseSnapshot reads a WriteJSON document (for fpmon -snapshot).
func ParseSnapshot(data []byte) (Snapshot, error) {
	var s Snapshot
	if err := json.Unmarshal(data, &s); err != nil {
		return Snapshot{}, fmt.Errorf("obs: snapshot parse: %w", err)
	}
	if s.Counters == nil {
		s.Counters = map[string]uint64{}
	}
	if s.Gauges == nil {
		s.Gauges = map[string]int64{}
	}
	if s.Histograms == nil {
		s.Histograms = map[string]HistogramSnapshot{}
	}
	return s, nil
}
