package obs

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
)

// jsonEvent is the wire form of one tracer event. Phase travels as a
// one-letter string so exported traces are self-describing.
type jsonEvent struct {
	TS      int64  `json:"ts"`
	Dur     int64  `json:"dur,omitempty"`
	PID     int    `json:"pid"`
	TID     int    `json:"tid"`
	Phase   string `json:"ph"`
	Cat     string `json:"cat"`
	Name    string `json:"name"`
	ArgName string `json:"argName,omitempty"`
	Arg     uint64 `json:"arg,omitempty"`
}

// jsonTrace is the wire form of a full trace export.
type jsonTrace struct {
	Events  []jsonEvent `json:"events"`
	Emitted uint64      `json:"emitted"`
	Dropped uint64      `json:"dropped"`
}

// ExportJSON writes the tracer's surviving events, plus emitted/dropped
// accounting, in the package's own JSON schema (the format
// ParseTraceJSON accepts).
func (t *Tracer) ExportJSON(w io.Writer) error {
	evs := t.Events()
	out := jsonTrace{
		Events:  make([]jsonEvent, len(evs)),
		Emitted: t.Emitted(),
		Dropped: t.Dropped(),
	}
	for i, ev := range evs {
		out.Events[i] = jsonEvent{
			TS: ev.TS, Dur: ev.Dur, PID: ev.PID, TID: ev.TID,
			Phase: string(rune(ev.Phase)), Cat: ev.Cat, Name: ev.Name,
			ArgName: ev.ArgName, Arg: ev.Arg,
		}
	}
	enc := json.NewEncoder(w)
	return enc.Encode(out)
}

// ParseTraceJSON parses an ExportJSON document back into events.
// Malformed input — bad JSON, unknown fields, invalid phases, negative
// timestamps or durations — returns an error; it never panics. Any
// accepted document round-trips through ExportJSON bit-compatibly at
// the event level.
func ParseTraceJSON(data []byte) ([]Event, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var in jsonTrace
	if err := dec.Decode(&in); err != nil {
		return nil, fmt.Errorf("obs: trace parse: %w", err)
	}
	// Exactly one JSON document.
	if dec.More() {
		return nil, fmt.Errorf("obs: trace parse: trailing data after document")
	}
	evs := make([]Event, len(in.Events))
	for i, je := range in.Events {
		if len(je.Phase) != 1 || !validPhase(Phase(je.Phase[0])) {
			return nil, fmt.Errorf("obs: trace parse: event %d: invalid phase %q", i, je.Phase)
		}
		if je.TS < 0 || je.Dur < 0 {
			return nil, fmt.Errorf("obs: trace parse: event %d: negative time", i)
		}
		if je.Dur != 0 && Phase(je.Phase[0]) != PhaseComplete {
			return nil, fmt.Errorf("obs: trace parse: event %d: duration on non-complete phase %q", i, je.Phase)
		}
		evs[i] = Event{
			TS: je.TS, Dur: je.Dur, PID: je.PID, TID: je.TID,
			Phase: Phase(je.Phase[0]), Cat: je.Cat, Name: je.Name,
			ArgName: je.ArgName, Arg: je.Arg,
		}
	}
	return evs, nil
}

// chromeEvent is one entry of a Chrome trace_event file. Timestamps and
// durations are microseconds (float), as chrome://tracing and Perfetto
// expect.
type chromeEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat"`
	Ph   string         `json:"ph"`
	TS   float64        `json:"ts"`
	Dur  float64        `json:"dur,omitempty"`
	PID  int            `json:"pid"`
	TID  int            `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

// ExportChromeTrace writes the surviving events as a Chrome trace_event
// JSON document ({"traceEvents": [...]}), loadable in chrome://tracing
// or Perfetto.
func (t *Tracer) ExportChromeTrace(w io.Writer) error {
	evs := t.Events()
	out := struct {
		TraceEvents []chromeEvent `json:"traceEvents"`
	}{TraceEvents: make([]chromeEvent, len(evs))}
	for i, ev := range evs {
		ce := chromeEvent{
			Name: ev.Name, Cat: ev.Cat, Ph: string(rune(ev.Phase)),
			TS: float64(ev.TS) / 1e3, PID: ev.PID, TID: ev.TID,
		}
		if ev.Phase == PhaseComplete {
			ce.Dur = float64(ev.Dur) / 1e3
		}
		if ev.ArgName != "" {
			ce.Args = map[string]any{ev.ArgName: ev.Arg}
		}
		out.TraceEvents[i] = ce
	}
	enc := json.NewEncoder(w)
	return enc.Encode(out)
}
