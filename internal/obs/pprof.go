package obs

import (
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"runtime"
	"sync"
	"time"
)

// Server is a running observability HTTP endpoint: the standard pprof
// handlers plus /metrics (snapshot JSON) and /trace (Chrome trace).
type Server struct {
	// Addr is the bound listen address (useful when Serve was given
	// ":0").
	Addr string

	srv *http.Server
	ln  net.Listener
}

// Serve binds addr and serves pprof and metrics endpoints in the
// background until Close. The handler set:
//
//	/debug/pprof/...  net/http/pprof profiles
//	/metrics          Snapshot JSON
//	/trace            Chrome trace_event JSON
func Serve(addr string, m *Metrics) (*Server, error) {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		if err := m.Snapshot().WriteJSON(w); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
	mux.HandleFunc("/trace", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		if err := m.TracerOrNil().ExportChromeTrace(w); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})

	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("obs: pprof listen %s: %w", addr, err)
	}
	s := &Server{Addr: ln.Addr().String(), srv: &http.Server{Handler: mux}, ln: ln}
	go s.srv.Serve(ln) //nolint:errcheck // background server; Close shuts it down
	return s, nil
}

// Close stops the server and releases the listener.
func (s *Server) Close() error {
	if s == nil {
		return nil
	}
	return s.srv.Close()
}

// SelfSampler periodically observes the host process — goroutine count,
// live heap, study worker-pool occupancy — into m.Self, and emits one
// instant trace event per tick so profiles line up with the event
// timeline.
type SelfSampler struct {
	stop chan struct{}
	done sync.WaitGroup
}

// StartSelfSampler begins sampling m every interval (minimum 1ms). It
// returns nil when m is disabled.
func StartSelfSampler(m *Metrics, every time.Duration) *SelfSampler {
	if m == nil {
		return nil
	}
	if every < time.Millisecond {
		every = time.Millisecond
	}
	s := &SelfSampler{stop: make(chan struct{})}
	s.done.Add(1)
	go func() {
		defer s.done.Done()
		tick := time.NewTicker(every)
		defer tick.Stop()
		for {
			select {
			case <-s.stop:
				return
			case <-tick.C:
				sampleSelf(m)
			}
		}
	}()
	return s
}

// sampleSelf takes one observation.
func sampleSelf(m *Metrics) {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	busy := m.Study.WorkersBusy.Load()
	if busy < 0 {
		busy = 0
	}
	m.Self.Samples.Inc()
	m.Self.Goroutines.Set(int64(runtime.NumGoroutine()))
	m.Self.HeapAllocBytes.Set(int64(ms.HeapAlloc))
	m.Self.WorkersBusySamples.Observe(uint64(busy))
	m.Tracer.Instant("self", "sample", 0, 0, "workersBusy", uint64(busy))
}

// Stop halts the sampler and waits for its goroutine to exit. Safe on a
// nil sampler.
func (s *SelfSampler) Stop() {
	if s == nil {
		return
	}
	close(s.stop)
	s.done.Wait()
}
