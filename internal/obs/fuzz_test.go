package obs

import (
	"bytes"
	"testing"
)

// FuzzObsTraceExport fuzzes the trace JSON decoder. The invariants:
// ParseTraceJSON never panics, and any input it accepts re-exports and
// re-parses to the same events (decode/encode/decode fixpoint).
func FuzzObsTraceExport(f *testing.F) {
	tr := NewTracer(8)
	tr.Instant("fpspy", "fault", 1, 2, "signal", 8)
	tr.Complete("study", "pass", 0, 0, 10, 20, "cycles", 30)
	tr.Emit(Event{TS: 40, Phase: PhaseBegin, Cat: "proto", Name: "twotrap", PID: 1, TID: 2})
	tr.Emit(Event{TS: 50, Phase: PhaseEnd, Cat: "proto", Name: "twotrap", PID: 1, TID: 2})
	var seed bytes.Buffer
	if err := tr.ExportJSON(&seed); err != nil {
		f.Fatal(err)
	}
	f.Add(seed.Bytes())
	f.Add([]byte(`{"events":[],"emitted":0,"dropped":0}`))
	f.Add([]byte(`{"events":[{"ts":1,"pid":0,"tid":0,"ph":"i","cat":"c","name":"n"}],"emitted":1,"dropped":0}`))
	f.Add([]byte(`{`))
	f.Add([]byte(`[1,2,3]`))
	f.Add([]byte(``))

	f.Fuzz(func(t *testing.T, data []byte) {
		evs, err := ParseTraceJSON(data)
		if err != nil {
			return
		}
		// Accepted input must survive a re-export/re-parse cycle.
		re := NewTracer(len(evs) + 1)
		for _, ev := range evs {
			re.Emit(ev)
		}
		var buf bytes.Buffer
		if err := re.ExportJSON(&buf); err != nil {
			t.Fatalf("re-export of accepted input failed: %v", err)
		}
		back, err := ParseTraceJSON(buf.Bytes())
		if err != nil {
			t.Fatalf("re-parse of re-export failed: %v", err)
		}
		if len(back) != len(evs) {
			t.Fatalf("fixpoint length %d != %d", len(back), len(evs))
		}
		for i := range evs {
			if back[i] != evs[i] {
				t.Fatalf("fixpoint event %d: %+v != %+v", i, back[i], evs[i])
			}
		}
	})
}
