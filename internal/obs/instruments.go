package obs

import (
	"math/bits"
	"sync/atomic"
)

// Counter is a monotonically increasing uint64. The zero value is ready
// to use; all methods are safe for concurrent use and allocation-free.
type Counter struct{ v atomic.Uint64 }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Load returns the current value.
func (c *Counter) Load() uint64 { return c.v.Load() }

// Gauge is a settable signed value. The zero value is ready to use.
type Gauge struct{ v atomic.Int64 }

// Set stores x.
func (g *Gauge) Set(x int64) { g.v.Store(x) }

// Add adds d (negative to decrement).
func (g *Gauge) Add(d int64) { g.v.Add(d) }

// Load returns the current value.
func (g *Gauge) Load() int64 { return g.v.Load() }

// histBuckets is the number of power-of-two histogram buckets: bucket i
// holds values whose bit length is i (bucket 0 holds exactly the value
// 0), so bucket boundaries are [0], [1], [2,3], [4,7], ...
const histBuckets = 65

// Histogram accumulates a distribution of uint64 observations in
// power-of-two buckets, with exact count, sum, min, and max. The zero
// value is ready to use; Observe is lock-free and allocation-free.
type Histogram struct {
	count atomic.Uint64
	sum   atomic.Uint64
	// minPlus1 holds min+1 so the zero value means "nothing observed";
	// an observation of MaxUint64 is clamped one below to stay
	// representable.
	minPlus1 atomic.Uint64
	max      atomic.Uint64
	buckets  [histBuckets]atomic.Uint64
}

// Observe records one value.
func (h *Histogram) Observe(v uint64) {
	h.count.Add(1)
	h.sum.Add(v)
	h.buckets[bits.Len64(v)].Add(1)
	mv := v + 1
	if mv == 0 {
		mv-- // clamp MaxUint64
	}
	for {
		cur := h.minPlus1.Load()
		if cur != 0 && mv >= cur {
			break
		}
		if h.minPlus1.CompareAndSwap(cur, mv) {
			break
		}
	}
	for {
		cur := h.max.Load()
		if v <= cur {
			break
		}
		if h.max.CompareAndSwap(cur, v) {
			break
		}
	}
}

// Count returns how many values have been observed.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the sum of observed values.
func (h *Histogram) Sum() uint64 { return h.sum.Load() }

// BucketBound returns the inclusive upper bound of bucket i.
func BucketBound(i int) uint64 {
	if i <= 0 {
		return 0
	}
	if i >= 64 {
		return ^uint64(0)
	}
	return 1<<uint(i) - 1
}

// HistogramSnapshot is a point-in-time copy of a Histogram.
type HistogramSnapshot struct {
	// Count and Sum are the totals.
	Count, Sum uint64
	// Min and Max are the observed extremes (zero when Count is 0).
	Min, Max uint64
	// Buckets holds the non-empty buckets in ascending bound order.
	Buckets []BucketCount
}

// BucketCount is one non-empty histogram bucket.
type BucketCount struct {
	// UpperBound is the inclusive upper bound of the bucket.
	UpperBound uint64
	// N is the number of observations in it.
	N uint64
}

// Mean returns the arithmetic mean of the observations (0 when empty).
func (s HistogramSnapshot) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return float64(s.Sum) / float64(s.Count)
}

// snapshot copies the histogram. Concurrent Observe calls may land
// between the field reads; the result is still a coherent distribution
// for display purposes.
func (h *Histogram) snapshot() HistogramSnapshot {
	s := HistogramSnapshot{
		Count: h.count.Load(),
		Sum:   h.sum.Load(),
		Max:   h.max.Load(),
	}
	if mp := h.minPlus1.Load(); mp > 0 {
		s.Min = mp - 1
	}
	for i := 0; i < histBuckets; i++ {
		if n := h.buckets[i].Load(); n > 0 {
			s.Buckets = append(s.Buckets, BucketCount{UpperBound: BucketBound(i), N: n})
		}
	}
	return s
}
