package obs

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterGauge(t *testing.T) {
	var c Counter
	c.Inc()
	c.Add(41)
	if got := c.Load(); got != 42 {
		t.Fatalf("counter = %d, want 42", got)
	}
	var g Gauge
	g.Set(7)
	g.Add(-10)
	if got := g.Load(); got != -3 {
		t.Fatalf("gauge = %d, want -3", got)
	}
}

func TestHistogram(t *testing.T) {
	var h Histogram
	for _, v := range []uint64{0, 1, 2, 3, 100, ^uint64(0)} {
		h.Observe(v)
	}
	s := h.snapshot()
	if s.Count != 6 {
		t.Fatalf("count = %d, want 6", s.Count)
	}
	if s.Min != 0 {
		t.Fatalf("min = %d, want 0", s.Min)
	}
	if s.Max != ^uint64(0) {
		t.Fatalf("max = %d, want MaxUint64", s.Max)
	}
	wantSum := uint64(106)
	wantSum += ^uint64(0) // wraps: 106 - 1 = 105
	if s.Sum != wantSum {
		t.Fatalf("sum = %d, want %d", s.Sum, wantSum)
	}
	// Bucket layout: value 0 in bucket bound 0, value 1 in bound 1,
	// values 2..3 in bound 3, value 100 in bound 127, MaxUint64 on top.
	var total uint64
	for _, bc := range s.Buckets {
		total += bc.N
	}
	if total != 6 {
		t.Fatalf("bucket total = %d, want 6", total)
	}
	if got := s.Mean(); got != float64(wantSum)/6 {
		t.Fatalf("mean = %v", got)
	}
}

func TestHistogramMinTracksSmallest(t *testing.T) {
	var h Histogram
	h.Observe(50)
	h.Observe(3)
	h.Observe(10)
	if s := h.snapshot(); s.Min != 3 || s.Max != 50 {
		t.Fatalf("min/max = %d/%d, want 3/50", s.Min, s.Max)
	}
}

func TestBucketBound(t *testing.T) {
	cases := map[int]uint64{-1: 0, 0: 0, 1: 1, 2: 3, 3: 7, 10: 1023, 64: ^uint64(0), 99: ^uint64(0)}
	for i, want := range cases {
		if got := BucketBound(i); got != want {
			t.Errorf("BucketBound(%d) = %d, want %d", i, got, want)
		}
	}
}

func TestDisabledNilSafety(t *testing.T) {
	m := Disabled
	if m.Enabled() {
		t.Fatal("Disabled reports enabled")
	}
	if m.KernelMetricsOrNil() != nil || m.MachineMetricsOrNil() != nil ||
		m.SpyMetricsOrNil() != nil || m.StudyMetricsOrNil() != nil ||
		m.TracerOrNil() != nil {
		t.Fatal("disabled accessors must return nil")
	}
	if m.Uptime() != 0 {
		t.Fatal("disabled uptime must be 0")
	}
	var tr *Tracer
	tr.Emit(Event{})
	tr.Instant("c", "n", 0, 0, "", 0)
	tr.Complete("c", "n", 0, 0, 0, 0, "", 0)
	if tr.Emitted() != 0 || tr.Dropped() != 0 || tr.Capacity() != 0 || tr.Events() != nil || tr.Now() != 0 {
		t.Fatal("nil tracer must discard everything")
	}
	s := m.Snapshot()
	if len(s.Counters) != 0 || len(s.Gauges) != 0 || len(s.Histograms) != 0 {
		t.Fatal("disabled snapshot must be empty")
	}
	StartSelfSampler(nil, time.Millisecond).Stop()
}

// TestDisabledHotPathAllocs pins the zero-overhead-when-off contract at
// the instrument level: touching a disabled handle the way instrumented
// code does must not allocate.
func TestDisabledHotPathAllocs(t *testing.T) {
	m := Disabled
	var tr *Tracer
	allocs := testing.AllocsPerRun(1000, func() {
		if km := m.KernelMetricsOrNil(); km != nil {
			km.Signals[8].Inc()
		}
		tr.Instant("fpspy", "fault", 1, 1, "", 0)
	})
	if allocs != 0 {
		t.Fatalf("disabled hot path allocs/op = %v, want 0", allocs)
	}
}

// TestEnabledHotPathAllocs verifies the enabled instruments are also
// allocation-free per operation.
func TestEnabledHotPathAllocs(t *testing.T) {
	m := New(Options{TraceCapacity: 1024})
	allocs := testing.AllocsPerRun(1000, func() {
		m.Kernel.Signals[8].Inc()
		m.Spy.ProtocolNS.Observe(123)
		m.Tracer.Instant("fpspy", "fault", 1, 1, "", 0)
	})
	if allocs != 0 {
		t.Fatalf("enabled hot path allocs/op = %v, want 0", allocs)
	}
}

func TestTracerRingWrap(t *testing.T) {
	tr := NewTracer(4)
	for i := 0; i < 10; i++ {
		tr.Emit(Event{TS: int64(i), Phase: PhaseInstant, Cat: "t", Name: "e"})
	}
	if tr.Emitted() != 10 {
		t.Fatalf("emitted = %d, want 10", tr.Emitted())
	}
	if tr.Dropped() != 6 {
		t.Fatalf("dropped = %d, want 6", tr.Dropped())
	}
	evs := tr.Events()
	if len(evs) != 4 {
		t.Fatalf("len(events) = %d, want 4", len(evs))
	}
	for i, ev := range evs {
		if want := int64(6 + i); ev.TS != want {
			t.Fatalf("events[%d].TS = %d, want %d (oldest-first order)", i, ev.TS, want)
		}
	}
}

func TestTracerNoDropsUnderCapacity(t *testing.T) {
	tr := NewTracer(8)
	for i := 0; i < 5; i++ {
		tr.Instant("t", "e", 0, 0, "", uint64(i))
	}
	if tr.Dropped() != 0 {
		t.Fatalf("dropped = %d, want 0", tr.Dropped())
	}
	if got := len(tr.Events()); got != 5 {
		t.Fatalf("len(events) = %d, want 5", got)
	}
}

func TestExportJSONRoundTrip(t *testing.T) {
	tr := NewTracer(16)
	tr.Instant("fpspy", "fault", 3, 7, "signal", 8)
	tr.Complete("study", "pass", 0, 0, 100, 250, "cycles", 9000)
	tr.Emit(Event{TS: 400, Phase: PhaseBegin, Cat: "proto", Name: "twotrap", PID: 3, TID: 7})
	tr.Emit(Event{TS: 500, Phase: PhaseEnd, Cat: "proto", Name: "twotrap", PID: 3, TID: 7})

	var buf bytes.Buffer
	if err := tr.ExportJSON(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ParseTraceJSON(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	want := tr.Events()
	if len(got) != len(want) {
		t.Fatalf("round-trip length %d, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("event %d round-trip mismatch:\n got %+v\nwant %+v", i, got[i], want[i])
		}
	}
}

func TestParseTraceJSONRejects(t *testing.T) {
	bad := []string{
		``,
		`{`,
		`[]`,
		`{"events":[{"ts":1,"pid":0,"tid":0,"ph":"Q","cat":"c","name":"n"}],"emitted":1,"dropped":0}`,
		`{"events":[{"ts":-1,"pid":0,"tid":0,"ph":"i","cat":"c","name":"n"}],"emitted":1,"dropped":0}`,
		`{"events":[{"ts":1,"dur":5,"pid":0,"tid":0,"ph":"i","cat":"c","name":"n"}],"emitted":1,"dropped":0}`,
		`{"events":[],"emitted":0,"dropped":0,"bogus":1}`,
		`{"events":[],"emitted":0,"dropped":0}{"events":[]}`,
	}
	for _, in := range bad {
		if _, err := ParseTraceJSON([]byte(in)); err == nil {
			t.Errorf("ParseTraceJSON(%q) accepted malformed input", in)
		}
	}
}

func TestExportChromeTrace(t *testing.T) {
	tr := NewTracer(8)
	tr.Complete("study", "pass", 0, 0, 2_000, 3_500, "cycles", 77)
	var buf bytes.Buffer
	if err := tr.ExportChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string            `json:"name"`
			Ph   string            `json:"ph"`
			TS   float64           `json:"ts"`
			Dur  float64           `json:"dur"`
			Args map[string]uint64 `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	if len(doc.TraceEvents) != 1 {
		t.Fatalf("traceEvents = %d, want 1", len(doc.TraceEvents))
	}
	ev := doc.TraceEvents[0]
	if ev.Ph != "X" || ev.TS != 2.0 || ev.Dur != 3.5 {
		t.Fatalf("chrome event = %+v; want ph=X ts=2.0us dur=3.5us", ev)
	}
	if ev.Args["cycles"] != 77 {
		t.Fatalf("args = %v, want cycles=77", ev.Args)
	}
}

func TestSnapshotNamesAndJSON(t *testing.T) {
	m := New(Options{TraceCapacity: 32})
	m.Kernel.Signals[8].Add(5)
	m.Kernel.FastBatch.Observe(64)
	m.Spy.Faults.Add(5)
	m.Study.PassesExecuted.Inc()
	m.Study.WorkersBusy.Set(2)
	m.Tracer.Instant("t", "e", 0, 0, "", 0)

	s := m.Snapshot()
	if got := s.Counters[KernelSignalCounterName(8)]; got != 5 {
		t.Fatalf("kernel.signal.SIGFPE = %d, want 5", got)
	}
	if got := s.Counters[NameSpyFaults]; got != 5 {
		t.Fatalf("%s = %d, want 5", NameSpyFaults, got)
	}
	if got := s.Counters[NameStudyPassesExecuted]; got != 1 {
		t.Fatalf("%s = %d, want 1", NameStudyPassesExecuted, got)
	}
	if got := s.Gauges["study.workers-busy"]; got != 2 {
		t.Fatalf("study.workers-busy = %d, want 2", got)
	}
	if got := s.Histograms["kernel.fast.batch-length"].Count; got != 1 {
		t.Fatalf("fast batch hist count = %d, want 1", got)
	}
	if s.TraceEmitted != 1 || s.TraceDropped != 0 {
		t.Fatalf("trace stats = %d/%d, want 1/0", s.TraceEmitted, s.TraceDropped)
	}
	// Zero counters are omitted.
	if _, ok := s.Counters[KernelSignalCounterName(11)]; ok {
		t.Fatal("zero counter must be omitted from snapshot")
	}

	var buf bytes.Buffer
	if err := s.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ParseSnapshot(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if back.Counters[NameSpyFaults] != 5 || back.Gauges["study.workers-busy"] != 2 {
		t.Fatalf("snapshot JSON round-trip lost data: %+v", back)
	}
	if _, err := ParseSnapshot([]byte("not json")); err == nil {
		t.Fatal("ParseSnapshot accepted garbage")
	}
}

func TestSignalNames(t *testing.T) {
	cases := map[int]string{4: "SIGILL", 5: "SIGTRAP", 8: "SIGFPE", 9: "SIGKILL",
		11: "SIGSEGV", 14: "SIGALRM", 26: "SIGVTALRM", 3: "sig3"}
	for n, want := range cases {
		if got := signalName(n); got != want {
			t.Errorf("signalName(%d) = %q, want %q", n, got, want)
		}
	}
}

func TestRenderSummaryAndDashboard(t *testing.T) {
	m := New(Options{TraceCapacity: 8})
	m.Spy.Faults.Add(3)
	m.Study.WorkersBusy.Set(1)
	m.Kernel.FastBatch.Observe(10)
	m.Kernel.FastBatch.Observe(200)
	s := m.Snapshot()

	sum := RenderSummary(s)
	for _, want := range []string{NameSpyFaults, "study.workers-busy", "kernel.fast.batch-length", "trace:"} {
		if !strings.Contains(sum, want) {
			t.Errorf("summary missing %q:\n%s", want, sum)
		}
	}
	dash := RenderDashboard(s)
	if !strings.Contains(dash, "fpmon") || !strings.Contains(dash, NameSpyFaults) {
		t.Errorf("dashboard missing expected content:\n%s", dash)
	}
	// Empty snapshot renders without panicking.
	_ = RenderSummary(Snapshot{})
	_ = RenderDashboard(Snapshot{})
}

func TestServeEndpoints(t *testing.T) {
	m := New(Options{TraceCapacity: 8})
	m.Spy.Faults.Add(9)
	m.Tracer.Instant("t", "e", 0, 0, "", 0)
	srv, err := Serve("127.0.0.1:0", m)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	get := func(path string) []byte {
		resp, err := http.Get("http://" + srv.Addr + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return body
	}

	var snap Snapshot
	if err := json.Unmarshal(get("/metrics"), &snap); err != nil {
		t.Fatalf("metrics endpoint: %v", err)
	}
	if snap.Counters[NameSpyFaults] != 9 {
		t.Fatalf("metrics endpoint faults = %d, want 9", snap.Counters[NameSpyFaults])
	}
	var chrome map[string]json.RawMessage
	if err := json.Unmarshal(get("/trace"), &chrome); err != nil {
		t.Fatalf("trace endpoint: %v", err)
	}
	if _, ok := chrome["traceEvents"]; !ok {
		t.Fatal("trace endpoint missing traceEvents")
	}
	if body := get("/debug/pprof/cmdline"); len(body) == 0 {
		t.Fatal("pprof cmdline endpoint empty")
	}
}

func TestSelfSampler(t *testing.T) {
	m := New(Options{TraceCapacity: 64})
	m.Study.WorkersBusy.Set(3)
	s := StartSelfSampler(m, time.Millisecond)
	deadline := time.Now().Add(2 * time.Second)
	for m.Self.Samples.Load() < 2 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	s.Stop()
	if m.Self.Samples.Load() < 2 {
		t.Fatal("self sampler never ticked")
	}
	if m.Self.Goroutines.Load() <= 0 {
		t.Fatal("goroutine gauge not sampled")
	}
	if m.Self.WorkersBusySamples.Count() == 0 {
		t.Fatal("workers-busy histogram not sampled")
	}
	if hs := m.Self.WorkersBusySamples.snapshot(); hs.Max != 3 {
		t.Fatalf("workers-busy sample max = %d, want 3", hs.Max)
	}
}

// TestConcurrentInstruments exercises every instrument type from many
// goroutines; run under -race this is the package-level race check.
func TestConcurrentInstruments(t *testing.T) {
	m := New(Options{TraceCapacity: 128})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				m.Kernel.Signals[8].Inc()
				m.Spy.ProtocolNS.Observe(uint64(i))
				m.Study.WorkersBusy.Add(1)
				m.Study.WorkersBusy.Add(-1)
				m.Tracer.Instant("t", "e", g, i, "", 0)
				if i%100 == 0 {
					_ = m.Snapshot()
					_ = m.Tracer.Events()
				}
			}
		}(g)
	}
	wg.Wait()
	if got := m.Kernel.Signals[8].Load(); got != 8000 {
		t.Fatalf("signal counter = %d, want 8000", got)
	}
	if got := m.Spy.ProtocolNS.Count(); got != 8000 {
		t.Fatalf("histogram count = %d, want 8000", got)
	}
	if got := m.Tracer.Emitted(); got != 8000 {
		t.Fatalf("tracer emitted = %d, want 8000", got)
	}
}
