package obs

import (
	"fmt"
	"sort"
	"strings"
	"time"
)

// RenderSummary formats a snapshot as the final summary table fpmon and
// the -metrics flags print: sorted counters, gauges, and histogram
// statistics in fixed-width columns.
func RenderSummary(s Snapshot) string {
	var b strings.Builder
	fmt.Fprintf(&b, "observability summary (uptime %v)\n",
		time.Duration(s.UptimeNS).Round(time.Microsecond))

	if len(s.Counters) > 0 {
		b.WriteString("\ncounters\n")
		for _, name := range sortedKeys(s.Counters) {
			fmt.Fprintf(&b, "  %-36s %12d\n", name, s.Counters[name])
		}
	}
	if len(s.Gauges) > 0 {
		b.WriteString("\ngauges\n")
		for _, name := range sortedKeys(s.Gauges) {
			fmt.Fprintf(&b, "  %-36s %12d\n", name, s.Gauges[name])
		}
	}
	if tbl := flopTable(s); tbl != "" {
		b.WriteString(tbl)
	}
	if len(s.Histograms) > 0 {
		b.WriteString("\nhistograms\n")
		fmt.Fprintf(&b, "  %-36s %12s %12s %12s %14s\n",
			"name", "count", "min", "max", "mean")
		for _, name := range sortedKeys(s.Histograms) {
			h := s.Histograms[name]
			fmt.Fprintf(&b, "  %-36s %12d %12d %12d %14.1f\n",
				name, h.Count, h.Min, h.Max, h.Mean())
		}
	}
	fmt.Fprintf(&b, "\ntrace: %d emitted, %d dropped\n", s.TraceEmitted, s.TraceDropped)
	return b.String()
}

// RenderDashboard formats a snapshot as one refresh frame of fpmon's
// live dashboard: a compact view of the busiest instruments plus bucket
// sparklines for the histograms.
func RenderDashboard(s Snapshot) string {
	var b strings.Builder
	fmt.Fprintf(&b, "fpmon  uptime=%v  trace=%d/%d dropped\n",
		time.Duration(s.UptimeNS).Round(time.Millisecond),
		s.TraceEmitted, s.TraceDropped)
	for _, name := range sortedKeys(s.Counters) {
		fmt.Fprintf(&b, "  %-36s %12d\n", name, s.Counters[name])
	}
	for _, name := range sortedKeys(s.Gauges) {
		fmt.Fprintf(&b, "  %-36s %12d\n", name, s.Gauges[name])
	}
	for _, name := range sortedKeys(s.Histograms) {
		h := s.Histograms[name]
		fmt.Fprintf(&b, "  %-36s n=%d min=%d max=%d mean=%.1f %s\n",
			name, h.Count, h.Min, h.Max, h.Mean(), sparkline(h))
	}
	return b.String()
}

// flopTable renders the SDE-style FLOP accounting as a per-op
// double/single table with totals, or "" when nothing was counted.
func flopTable(s Snapshot) string {
	var b strings.Builder
	var total [FlopPrecisions]uint64
	rows := 0
	fmt.Fprintf(&b, "\nflops (SDE convention: lane ops, fma=2)\n")
	fmt.Fprintf(&b, "  %-12s %12s %12s\n", "op", "double", "single")
	for _, op := range flopOpNames {
		var v [FlopPrecisions]uint64
		any := false
		for p := 0; p < FlopPrecisions; p++ {
			v[p] = s.Counters[FlopCounterName(op, p)]
			total[p] += v[p]
			any = any || v[p] > 0
		}
		if any {
			fmt.Fprintf(&b, "  %-12s %12d %12d\n", op, v[0], v[1])
			rows++
		}
	}
	if rows == 0 {
		return ""
	}
	fmt.Fprintf(&b, "  %-12s %12d %12d\n", "total", total[0], total[1])
	if skipped := s.Counters[NameFlopMaskedSkipped]; skipped > 0 {
		fmt.Fprintf(&b, "  %-12s %12d lanes suppressed by write masks\n", "masked", skipped)
	}
	return b.String()
}

// sparkline renders the histogram buckets as a tiny bar chart.
func sparkline(h HistogramSnapshot) string {
	if len(h.Buckets) == 0 {
		return ""
	}
	levels := []rune("▁▂▃▄▅▆▇█")
	var peak uint64
	for _, bc := range h.Buckets {
		if bc.N > peak {
			peak = bc.N
		}
	}
	var sb strings.Builder
	for _, bc := range h.Buckets {
		idx := int(bc.N * uint64(len(levels)-1) / peak)
		sb.WriteRune(levels[idx])
	}
	return sb.String()
}

// sortedKeys returns the map's keys in ascending order.
func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
