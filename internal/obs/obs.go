// Package obs is the observability layer of the FPSpy reproduction:
// typed counters, gauges, and histograms with an atomic, allocation-free
// hot path; a ring-buffered event tracer with spans; and profiling hooks
// (pprof serving, periodic self-sampling).
//
// The design contract is zero overhead when off. Every instrumented
// subsystem holds a pointer that is nil by default — obs.Disabled — and
// guards each instrumentation point with a single nil check, so a run
// without observability executes exactly the instructions it executed
// before the layer existed: no allocation, no atomics, no branches into
// this package. The transparency tests (golden study output, fast-path
// equivalence, allocs/op ceilings) pin that contract down; the
// instruments themselves never touch simulation state, so enabling them
// cannot perturb the bit-identical guarantees of the execution engine.
//
// Instruments are grouped per subsystem (KernelMetrics, MachineMetrics,
// SpyMetrics, StudyMetrics, SelfMetrics) and pre-resolved into struct
// fields rather than looked up by name, so the enabled hot path is one
// atomic add with no map access. Snapshot flattens the groups into a
// name-keyed view for export, dashboards, and reconciliation tests.
package obs

import (
	"time"
)

// Metrics is the top-level observability handle: the full typed
// instrument registry plus the event tracer. A nil *Metrics (the
// package-level Disabled) is the no-op implementation — every accessor
// below is nil-safe and yields nil group pointers, which consumers
// interpret as "instrumentation compiled out".
type Metrics struct {
	// Kernel instruments signal delivery, fast-path batching, timers,
	// and scheduling inside internal/kernel.
	Kernel KernelMetrics
	// Machine instruments guest-visible machine events in
	// internal/machine (MXCSR stores/loads, breakpoint stubbing).
	Machine MachineMetrics
	// Spy instruments FPSpy itself: faults, records, the two-trap
	// protocol, degradations.
	Spy SpyMetrics
	// Prune instruments the static trap-site pruning pipeline
	// (internal/binscan/absint verdicts applied by the spy).
	Prune PruneMetrics
	// Flop holds SDE-style FLOP accounting from internal/machine:
	// per-op, per-precision retired lane operations.
	Flop FlopMetrics
	// Shadow instruments the shadow-precision value channel in
	// internal/shadow: attached channels, shadow-executed lane ops,
	// divergence, and the bounded tracking maps.
	Shadow ShadowMetrics
	// Study instruments the pass scheduler in internal/study.
	Study StudyMetrics
	// Server instruments the fpspyd daemon in internal/server.
	Server ServerMetrics
	// Cluster instruments the fpspyd peer fabric in internal/cluster:
	// routing, hedging, health probing, eviction, and work stealing.
	Cluster ClusterMetrics
	// Self holds the self-sampler's periodic observations of the
	// process (goroutines, heap, worker-pool occupancy).
	Self SelfMetrics
	// Tracer is the ring-buffered event tracer. Always non-nil on an
	// enabled Metrics.
	Tracer *Tracer

	start time.Time
}

// Options configures New.
type Options struct {
	// TraceCapacity is the tracer ring size in events; 0 selects
	// DefaultTraceCapacity.
	TraceCapacity int
}

// DefaultTraceCapacity is the tracer ring size when Options does not
// specify one.
const DefaultTraceCapacity = 1 << 16

// Disabled is the no-op observability instance: a nil handle whose
// accessors all return nil, so instrumented code takes its zero-cost
// branch everywhere.
var Disabled *Metrics

// New creates an enabled Metrics with all instruments at zero.
func New(o Options) *Metrics {
	cap := o.TraceCapacity
	if cap <= 0 {
		cap = DefaultTraceCapacity
	}
	return &Metrics{
		Tracer: NewTracer(cap),
		start:  time.Now(),
	}
}

// Enabled reports whether this handle records anything.
func (m *Metrics) Enabled() bool { return m != nil }

// KernelMetricsOrNil returns the kernel instrument group, or nil when
// observability is disabled.
func (m *Metrics) KernelMetricsOrNil() *KernelMetrics {
	if m == nil {
		return nil
	}
	return &m.Kernel
}

// MachineMetricsOrNil returns the machine instrument group, or nil when
// observability is disabled.
func (m *Metrics) MachineMetricsOrNil() *MachineMetrics {
	if m == nil {
		return nil
	}
	return &m.Machine
}

// SpyMetricsOrNil returns the FPSpy instrument group, or nil when
// observability is disabled.
func (m *Metrics) SpyMetricsOrNil() *SpyMetrics {
	if m == nil {
		return nil
	}
	return &m.Spy
}

// PruneMetricsOrNil returns the trap-site pruning instrument group, or
// nil when observability is disabled.
func (m *Metrics) PruneMetricsOrNil() *PruneMetrics {
	if m == nil {
		return nil
	}
	return &m.Prune
}

// FlopMetricsOrNil returns the FLOP accounting group, or nil when
// observability is disabled.
func (m *Metrics) FlopMetricsOrNil() *FlopMetrics {
	if m == nil {
		return nil
	}
	return &m.Flop
}

// ShadowMetricsOrNil returns the shadow-channel instrument group, or
// nil when observability is disabled.
func (m *Metrics) ShadowMetricsOrNil() *ShadowMetrics {
	if m == nil {
		return nil
	}
	return &m.Shadow
}

// StudyMetricsOrNil returns the study instrument group, or nil when
// observability is disabled.
func (m *Metrics) StudyMetricsOrNil() *StudyMetrics {
	if m == nil {
		return nil
	}
	return &m.Study
}

// ServerMetricsOrNil returns the daemon instrument group, or nil when
// observability is disabled.
func (m *Metrics) ServerMetricsOrNil() *ServerMetrics {
	if m == nil {
		return nil
	}
	return &m.Server
}

// ClusterMetricsOrNil returns the cluster instrument group, or nil when
// observability is disabled.
func (m *Metrics) ClusterMetricsOrNil() *ClusterMetrics {
	if m == nil {
		return nil
	}
	return &m.Cluster
}

// TracerOrNil returns the event tracer, or nil when observability is
// disabled.
func (m *Metrics) TracerOrNil() *Tracer {
	if m == nil {
		return nil
	}
	return m.Tracer
}

// Uptime is the time since New.
func (m *Metrics) Uptime() time.Duration {
	if m == nil {
		return 0
	}
	return time.Since(m.start)
}

// NumSignals bounds the per-signal delivery counter array; Linux x86-64
// signal numbers used by the simulated kernel are all below it.
const NumSignals = 32

// KernelMetrics instruments internal/kernel. The indices of TimerFires
// follow kernel.TimerKind: real = 0, virtual = 1.
type KernelMetrics struct {
	// Signals counts deliveries by signal number.
	Signals [NumSignals]Counter
	// MCtxMXCSR counts host-handler deliveries that mutated MXCSR
	// through the writable machine context.
	MCtxMXCSR Counter
	// MCtxTF counts host-handler deliveries that toggled the trap flag
	// through the machine context.
	MCtxTF Counter
	// FastBatch is the distribution of cleanly retired fast-path batch
	// lengths (instructions per RunStraight call).
	FastBatch Histogram
	// FastSteps counts instructions retired on the batched fast path.
	FastSteps Counter
	// PreciseSteps counts instructions retired on the precise
	// step-at-a-time path (including the eventful step ending a batch).
	PreciseSteps Counter
	// TimerFires counts interval-timer expiries by kernel.TimerKind.
	TimerFires [2]Counter
	// SchedRounds counts scheduler rounds (full run-queue sweeps).
	SchedRounds Counter
	// SchedTasks is the distribution of runnable tasks per round.
	SchedTasks Histogram
}

// MachineMetrics instruments internal/machine.
type MachineMetrics struct {
	// GuestMXCSRWrites counts ldmxcsr executions — the guest rewriting
	// floating point control state behind FPSpy's interposition.
	GuestMXCSRWrites Counter
	// GuestMXCSRReads counts stmxcsr executions.
	GuestMXCSRReads Counter
	// BreakpointsArmed counts instructions stubbed by the Section 3.8
	// breakpoint protocol.
	BreakpointsArmed Counter
	// QuietSteps counts FP instructions retired on the native quiet path
	// because the static verifier pruned their trap site.
	QuietSteps Counter
}

// PruneMetrics instruments the static trap-site pruning pipeline: how
// often the abstract interpreter ran, how many sites it proved quiet,
// and whether a varying FP environment forced pruning off.
type PruneMetrics struct {
	// Analyses counts abstract-interpretation runs requested by the spy
	// (cache hits included; the analysis itself memoizes per program).
	Analyses Counter
	// SitesTotal is the FP site count of the last analyzed program.
	SitesTotal Gauge
	// SitesPruned is the number of those sites proven quiet and pruned.
	SitesPruned Gauge
	// EnvVarying counts analyses that found a reachable ldmxcsr and so
	// disabled pruning for the whole program.
	EnvVarying Counter
}

// FlopPrecisions indexes the per-precision counter pairs of
// FlopMetrics: 0 is binary64 (double), 1 is binary32 (single), matching
// isa.Precision's F64/F32 values.
const FlopPrecisions = 2

// FlopMetrics is the SDE-style FLOP accounting group, fed by
// internal/machine at instruction retirement. Counts are lane
// operations (a packed op credits one per active lane), split double/
// single per FlopPrecisions; a fused multiply-add credits 2 per lane
// and dpps decomposes into its multiplies and adds. Masked-off lanes of
// write-masked forms credit MaskedSkipped instead — they neither
// compute nor raise, mirroring SDE's masking awareness. The counters
// are engine-invariant: interpreted, quiet-pruned, and superblock
// execution credit identically, and only retired instructions count (a
// faulted instruction performed no architectural work).
type FlopMetrics struct {
	// Add through Max count ClassFPArith lane operations by FPOp.
	Add  [FlopPrecisions]Counter
	Sub  [FlopPrecisions]Counter
	Mul  [FlopPrecisions]Counter
	Div  [FlopPrecisions]Counter
	Sqrt [FlopPrecisions]Counter
	Min  [FlopPrecisions]Counter
	Max  [FlopPrecisions]Counter
	// FMA counts fused multiply-add lane operations at 2 per lane.
	FMA [FlopPrecisions]Counter
	// Convert, Compare, and Round count their classes' lane operations;
	// conversions are attributed to the binary32 side of mixed forms.
	Convert [FlopPrecisions]Counter
	Compare [FlopPrecisions]Counter
	Round   [FlopPrecisions]Counter
	// MaskedSkipped counts lanes suppressed by a write mask.
	MaskedSkipped Counter
}

// Total returns the total FLOP count across ops and precisions
// (MaskedSkipped excluded — skipped lanes are not FLOPs).
func (f *FlopMetrics) Total() uint64 {
	if f == nil {
		return 0
	}
	var sum uint64
	for p := 0; p < FlopPrecisions; p++ {
		sum += f.Add[p].Load() + f.Sub[p].Load() + f.Mul[p].Load() +
			f.Div[p].Load() + f.Sqrt[p].Load() + f.Min[p].Load() + f.Max[p].Load() +
			f.FMA[p].Load() + f.Convert[p].Load() + f.Compare[p].Load() + f.Round[p].Load()
	}
	return sum
}

// TotalByPrec returns the FLOP total for one precision index.
func (f *FlopMetrics) TotalByPrec(p int) uint64 {
	if f == nil {
		return 0
	}
	return f.Add[p].Load() + f.Sub[p].Load() + f.Mul[p].Load() +
		f.Div[p].Load() + f.Sqrt[p].Load() + f.Min[p].Load() + f.Max[p].Load() +
		f.FMA[p].Load() + f.Convert[p].Load() + f.Compare[p].Load() + f.Round[p].Load()
}

// SpyMetrics instruments FPSpy's monitoring core.
type SpyMetrics struct {
	// Faults counts SIGFPEs the spy handled in individual mode.
	Faults Counter
	// Records counts trace records written.
	Records Counter
	// ProtocolNS is the host-time distribution of the SIGFPE -> SIGTRAP
	// two-trap protocol span, in nanoseconds.
	ProtocolNS Histogram
	// Demotions counts individual -> aggregate transitions.
	Demotions Counter
	// Detaches counts transitions into the detached state.
	Detaches Counter
	// Reasserts counts aggressive-mode MXCSR re-assertions.
	Reasserts Counter
	// SignalFights counts absorbed handler registrations.
	SignalFights Counter
	// ThreadsMonitored counts threads that entered monitoring.
	ThreadsMonitored Counter
	// TimerFlips counts temporal-sampler phase flips.
	TimerFlips Counter
}

// ShadowMetrics instruments the shadow-precision value channel
// (internal/shadow). Like every group, the zero value is ready and a
// nil pointer records nothing.
type ShadowMetrics struct {
	// Channels counts shadow channels attached (one per monitored
	// thread of a shadow-enabled run).
	Channels Counter
	// Ops counts shadow-executed lane operations (comparison points).
	Ops Counter
	// Invalidations counts destination shadows reset to native by
	// unsupported or non-finite operations.
	Invalidations Counter
	// NonFinite counts lane operations skipped under the NaN/Inf
	// policy.
	NonFinite Counter
	// SiteOverflow counts lane operations at sites beyond the site
	// table's capacity (executed and shadowed, but not attributed).
	SiteOverflow Counter
	// MemDrops counts stored shadows discarded because the memory
	// shadow map was at capacity.
	MemDrops Counter
	// Sites is the high-water count of attributed sites in one channel.
	Sites Gauge
	// MemShadows is the high-water size of a channel's memory shadow
	// map.
	MemShadows Gauge
	// Divergence is the distribution of integer ULP distances between
	// native results and their shadows, one observation per
	// shadow-executed lane.
	Divergence Histogram
}

// StudyMetrics instruments the pass scheduler.
type StudyMetrics struct {
	// PassRequests counts cache lookups (run calls).
	PassRequests Counter
	// PassesExecuted counts passes actually simulated (cache misses).
	PassesExecuted Counter
	// PassErrors counts executed passes that failed.
	PassErrors Counter
	// PassWallCycles is the distribution of simulated wall cycles per
	// executed pass.
	PassWallCycles Histogram
	// PassHostNS is the distribution of host nanoseconds per executed
	// pass.
	PassHostNS Histogram
	// WorkersBusy is the number of worker slots currently simulating.
	WorkersBusy Gauge
}

// ServerMetrics instruments the fpspyd daemon (internal/server): the
// submission path, the content-addressed result cache, backpressure
// decisions, and per-endpoint request latency.
type ServerMetrics struct {
	// Submissions counts POST /v1/jobs requests that passed admission
	// (rate limiting and drain checks).
	Submissions Counter
	// CacheHits counts submissions answered by the content-addressed
	// result cache — including attaches to an identical in-flight pass.
	CacheHits Counter
	// CacheMisses counts submissions that scheduled a new study pass.
	// Every miss corresponds to exactly one executed pass.
	CacheMisses Counter
	// RateLimited counts submissions rejected 429 by the per-client
	// token bucket.
	RateLimited Counter
	// Shed counts submissions rejected 503 — full shard queue or drain.
	Shed Counter
	// JobsCompleted and JobsFailed count finalized jobs by outcome.
	JobsCompleted Counter
	JobsFailed    Counter
	// QueueDepth is the number of jobs waiting in shard queues.
	QueueDepth Gauge
	// SubmitNS, StatusNS, ResultNS, and FiguresNS are per-endpoint
	// request latency distributions in host nanoseconds.
	SubmitNS  Histogram
	StatusNS  Histogram
	ResultNS  Histogram
	FiguresNS Histogram
}

// ClusterMetrics instruments the fpspyd peer fabric (internal/cluster):
// consistent-hash routing decisions, the robust RPC path (retries,
// hedges), ring membership churn, and work stealing. Like every group,
// the zero value is ready and a nil *Metrics records nothing.
type ClusterMetrics struct {
	// ForwardsLocal counts submissions whose content address this node
	// owns (or already holds settled) and served without a peer RPC.
	ForwardsLocal Counter
	// Forwards counts submissions routed to the owning peer.
	Forwards Counter
	// Retries counts peer RPC attempts beyond the first, across all
	// call kinds (run, steal, complete, health).
	Retries Counter
	// Hedges counts hedged requests fired at a backup replica because
	// the owner was slow; HedgeWins counts hedges that answered first.
	Hedges    Counter
	HedgeWins Counter
	// RPCErrors counts peer calls that failed after all retries.
	RPCErrors Counter
	// Evictions counts peers removed from the ring by the health layer;
	// Readmissions counts recovered peers added back.
	Evictions    Counter
	Readmissions Counter
	// Probes and ProbeFailures count health-probe attempts and failures.
	Probes        Counter
	ProbeFailures Counter
	// StealsIn counts jobs this node stole and executed for an
	// overloaded peer; StealsOut counts jobs handed to a stealing peer.
	StealsIn  Counter
	StealsOut Counter
	// StealRequeues counts stolen jobs re-admitted locally after the
	// stealer's lease expired without a returned outcome.
	StealRequeues Counter
	// PartitionLocal counts submissions served by a degraded local pass
	// because the owning peer (and every replica) was unreachable.
	PartitionLocal Counter
	// ForwardNS is the latency distribution of settled forwards, in
	// host nanoseconds (owner RPC including retries and hedges).
	ForwardNS Histogram
}

// SelfMetrics holds the self-sampler's periodic process observations.
type SelfMetrics struct {
	// Samples counts sampler ticks.
	Samples Counter
	// Goroutines is the last sampled goroutine count.
	Goroutines Gauge
	// HeapAllocBytes is the last sampled live-heap size.
	HeapAllocBytes Gauge
	// WorkersBusySamples is the sampled distribution of the study
	// worker-pool occupancy — the scheduler-utilization profile.
	WorkersBusySamples Histogram
}
