package obs

import (
	"sync"
	"time"
)

// Phase classifies a trace event, following the Chrome trace_event
// phase letters.
type Phase byte

const (
	// PhaseInstant marks a point event.
	PhaseInstant Phase = 'i'
	// PhaseBegin opens a span; a matching PhaseEnd closes it.
	PhaseBegin Phase = 'B'
	// PhaseEnd closes the most recent PhaseBegin with the same
	// (PID, TID).
	PhaseEnd Phase = 'E'
	// PhaseComplete is a self-contained span with a duration.
	PhaseComplete Phase = 'X'
)

// validPhase reports whether p is one of the defined phases.
func validPhase(p Phase) bool {
	switch p {
	case PhaseInstant, PhaseBegin, PhaseEnd, PhaseComplete:
		return true
	}
	return false
}

// Event is one tracer entry. Category and name are expected to be
// static strings on hot paths so emission never allocates.
type Event struct {
	// TS is the event time in nanoseconds since the tracer started.
	TS int64
	// Dur is the span duration in nanoseconds (PhaseComplete only).
	Dur int64
	// PID and TID locate the event in the simulated process tree; both
	// are 0 for host-side events (study passes, self-samples).
	PID, TID int
	// Phase classifies the event.
	Phase Phase
	// Cat groups related events (e.g. "fpspy", "study", "self").
	Cat string
	// Name identifies the event within its category.
	Name string
	// ArgName names the numeric argument; empty when Arg is unused.
	ArgName string
	// Arg is a single numeric payload.
	Arg uint64
}

// Tracer is a bounded ring buffer of Events. When the ring is full the
// oldest events are overwritten and counted as dropped; Emitted and
// Dropped let reconciliation tests account for every event ever sent.
// All methods are nil-safe: a nil *Tracer discards everything, so
// instrumented code can hold a tracer unconditionally.
type Tracer struct {
	mu    sync.Mutex
	ring  []Event
	next  uint64 // total events ever emitted
	start time.Time
}

// NewTracer creates a tracer with the given ring capacity (minimum 1).
func NewTracer(capacity int) *Tracer {
	if capacity < 1 {
		capacity = 1
	}
	return &Tracer{ring: make([]Event, capacity), start: time.Now()}
}

// Now returns the tracer clock: nanoseconds since NewTracer. A nil
// tracer reads 0.
func (t *Tracer) Now() int64 {
	if t == nil {
		return 0
	}
	return time.Since(t.start).Nanoseconds()
}

// Emit appends one event. Emission into a live tracer takes a mutex and
// writes into preallocated storage — no allocation.
func (t *Tracer) Emit(ev Event) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.ring[t.next%uint64(len(t.ring))] = ev
	t.next++
	t.mu.Unlock()
}

// Instant emits a point event stamped with the tracer clock.
func (t *Tracer) Instant(cat, name string, pid, tid int, argName string, arg uint64) {
	if t == nil {
		return
	}
	t.Emit(Event{TS: t.Now(), Phase: PhaseInstant, Cat: cat, Name: name,
		PID: pid, TID: tid, ArgName: argName, Arg: arg})
}

// Complete emits a self-contained span.
func (t *Tracer) Complete(cat, name string, pid, tid int, startNS, durNS int64, argName string, arg uint64) {
	if t == nil {
		return
	}
	t.Emit(Event{TS: startNS, Dur: durNS, Phase: PhaseComplete, Cat: cat,
		Name: name, PID: pid, TID: tid, ArgName: argName, Arg: arg})
}

// Emitted returns how many events were ever emitted.
func (t *Tracer) Emitted() uint64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.next
}

// Dropped returns how many events were overwritten by ring wrap.
func (t *Tracer) Dropped() uint64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.next <= uint64(len(t.ring)) {
		return 0
	}
	return t.next - uint64(len(t.ring))
}

// Capacity returns the ring size in events.
func (t *Tracer) Capacity() int {
	if t == nil {
		return 0
	}
	return len(t.ring)
}

// Events returns the surviving events in emission order (oldest first).
func (t *Tracer) Events() []Event {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	n := t.next
	cap64 := uint64(len(t.ring))
	if n <= cap64 {
		return append([]Event(nil), t.ring[:n]...)
	}
	out := make([]Event, 0, cap64)
	first := n % cap64
	out = append(out, t.ring[first:]...)
	out = append(out, t.ring[:first]...)
	return out
}
