package mitigate

import (
	"math"
	"testing"

	"repro/internal/analysis"
	"repro/internal/isa"
	"repro/internal/machine"
)

// buildSummation builds a program that sums 0.1 N times into x0 and
// stores the result — a classic error-accumulation kernel.
func buildSummation(n int64) *isa.Program {
	b := isa.NewBuilder("summation")
	b.Movi(isa.R6, int64(math.Float64bits(0.1)))
	b.Movqx(isa.X1, isa.R6)
	b.Movi(isa.R6, 0)
	b.Movqx(isa.X0, isa.R6)
	b.Movi(isa.R8, 0)
	b.Movi(isa.R9, n)
	top := b.Label("top")
	b.Bind(top)
	b.FP2(isa.OpADDSD, isa.X0, isa.X0, isa.X1)
	b.Addi(isa.R8, isa.R8, 1)
	b.Blt(isa.R8, isa.R9, top)
	b.Movi(isa.R10, 64)
	b.Fst(isa.R10, 0, isa.X0)
	b.Hlt()
	return b.Build()
}

func TestShadowExecutorMeasuresAccumulatedError(t *testing.T) {
	const n = 100000
	m := machine.New(buildSummation(n), 4096)
	sh := NewShadowExecutor(m, 256)
	ev := sh.Run(10_000_000)
	if _, ok := ev.(*machine.HaltEvent); !ok {
		t.Fatalf("run ended with %T", ev)
	}
	if sh.Emulated() < n {
		t.Errorf("emulated = %d, want >= %d", sh.Emulated(), n)
	}
	// Hardware result drifts from the shadow: 0.1 is not representable,
	// and n additions accumulate noticeable error.
	hw := math.Float64frombits(m.CPU.X[isa.X0][0])
	if math.Abs(hw-n*0.1) < 1e-12 {
		t.Log("hardware summation unexpectedly accurate") // not fatal
	}
	if sh.MaxUlps() == 0 || sh.Diverged() == 0 {
		t.Errorf("maxUlps = %d, diverged = %d, want accumulated divergence", sh.MaxUlps(), sh.Diverged())
	}
	// The true drift of a 100k-term sum is thousands of ulps, not
	// billions; an absurd distance would mean the metric is broken.
	if sh.MaxUlps() > 1<<32 {
		t.Errorf("maxUlps = %d, implausibly large", sh.MaxUlps())
	}
	// The attribution must charge the one rounding site.
	sites := sh.Sites()
	if len(sites) != 1 || sites[0].Op != "addsd" || sites[0].LocalUlps <= 0 {
		t.Errorf("sites = %+v, want one addsd site with local error", sites)
	}
}

func TestShadowPrecision53MatchesHardware(t *testing.T) {
	// At 53-bit shadow precision the software FPU rounds exactly like
	// the hardware, so no divergence can appear.
	m := machine.New(buildSummation(5000), 4096)
	sh := NewShadowExecutor(m, 53)
	if ev := sh.Run(10_000_000); ev == nil {
		t.Fatal("did not halt")
	}
	if sh.MaxUlps() != 0 {
		t.Errorf("53-bit shadow diverged: %d ulps", sh.MaxUlps())
	}
}

func TestFeasibilityModel(t *testing.T) {
	// Heavy skew: one hot site takes nearly all events. Patching wins
	// when per-event emulation is cheaper than the trap cost.
	byAddr := []analysis.RankEntry{{Key: "0x400010", Count: 1_000_000}, {Key: "0x400020", Count: 10}}
	byForm := []analysis.RankEntry{{Key: "mulsd", Count: 1_000_000}, {Key: "divsd", Count: 10}}
	rep := Feasibility(byAddr, byForm, 50_000, 150, 4_000)
	if !rep.PatchWins {
		t.Errorf("patching should win: %+v", rep)
	}
	if rep.Sites99 != 1 || rep.Forms99 != 1 {
		t.Errorf("coverage: %+v", rep)
	}
	// Without locality (every event on its own site) patching loses.
	var flat []analysis.RankEntry
	for i := 0; i < 1000; i++ {
		flat = append(flat, analysis.RankEntry{Key: analysisKey(i), Count: 1})
	}
	rep2 := Feasibility(flat, byForm, 50_000, 150, 4_000)
	if rep2.PatchWins {
		t.Errorf("patching should lose without locality: %+v", rep2)
	}
	// Empty input.
	rep3 := Feasibility(nil, nil, 1, 1, 1)
	if rep3.TotalEvents != 0 || rep3.PatchWins {
		t.Errorf("empty: %+v", rep3)
	}
}

func analysisKey(i int) string {
	return string(rune('a'+i%26)) + string(rune('0'+i%10)) + string(rune('A'+i/260))
}

// buildFMAChain exercises every shadowed instruction class: FMA variants,
// min/max, movsd, sqrt.
func buildFMAChain() *isa.Program {
	b := isa.NewBuilder("fmachain")
	b.Movi(isa.R6, int64(math.Float64bits(0.3)))
	b.Movqx(isa.X0, isa.R6)
	b.Movi(isa.R6, int64(math.Float64bits(0.7)))
	b.Movqx(isa.X1, isa.R6)
	b.Movi(isa.R6, int64(math.Float64bits(1.1)))
	b.Movqx(isa.X2, isa.R6)
	b.FMA(isa.OpVFMADDSD, isa.X3, isa.X0, isa.X1, isa.X2)  // 0.3*0.7+1.1
	b.FMA(isa.OpVFNMSUBSD, isa.X4, isa.X0, isa.X1, isa.X3) // -(ab)-c
	b.FP2(isa.OpMINSD, isa.X5, isa.X3, isa.X4)
	b.FP2(isa.OpMAXSD, isa.X6, isa.X3, isa.X4)
	b.Movsd(isa.X7, isa.X3)
	b.FP1(isa.OpSQRTSD, isa.X8, isa.X2)
	b.FP2(isa.OpDIVSD, isa.X9, isa.X3, isa.X1)
	b.Movi(isa.R10, 128)
	b.Fst(isa.R10, 0, isa.X9)
	b.Hlt()
	return b.Build()
}

func TestShadowCoversFMAAndSelects(t *testing.T) {
	m := machine.New(buildFMAChain(), 4096)
	sh := NewShadowExecutor(m, 256)
	ev := sh.Run(1000)
	if _, ok := ev.(*machine.HaltEvent); !ok {
		t.Fatalf("ended with %T", ev)
	}
	if sh.Emulated() < 4 {
		t.Errorf("emulated = %d", sh.Emulated())
	}
	// Hardware and shadow agree on the well-conditioned chain within
	// float64 rounding.
	want := (0.3*0.7 + 1.1) / 0.7 // approximately; FMA differences are sub-ulp here
	got := math.Float64frombits(m.CPU.X[isa.X9][0])
	if math.Abs(got-want) > 1e-12 {
		t.Errorf("chain result %v, want ~%v", got, want)
	}
	if sh.MaxUlps() > 1 {
		t.Errorf("divergence %d ulps on a 7-op chain", sh.MaxUlps())
	}
}

func TestShadowInvalidation(t *testing.T) {
	// A register overwritten by an unshadowed op (an integer-to-vector
	// move) must not keep a stale shadow. Packed adds no longer qualify:
	// the channel shadow-executes those too.
	b := isa.NewBuilder("inval")
	b.Movi(isa.R6, int64(math.Float64bits(0.1)))
	b.Movqx(isa.X0, isa.R6)
	b.Movi(isa.R6, int64(math.Float64bits(0.2)))
	b.Movqx(isa.X1, isa.R6)
	b.FP2(isa.OpADDSD, isa.X2, isa.X0, isa.X1) // shadow for x2
	b.Movi(isa.R7, int64(math.Float64bits(0.4)))
	b.Movqx(isa.X2, isa.R7)                    // unshadowed overwrite: invalidates
	b.FP2(isa.OpMULSD, isa.X3, isa.X2, isa.X1) // re-derives from hw
	b.Movi(isa.R10, 128)
	b.Fst(isa.R10, 0, isa.X3)
	b.Hlt()
	m := machine.New(b.Build(), 4096)
	sh := NewShadowExecutor(m, 256)
	if ev := sh.Run(1000); ev == nil {
		t.Fatal("no halt")
	}
	x, y := 0.4, 0.2 // force float64 rounding; the constant product is exact
	want := x * y
	got := math.Float64frombits(m.CPU.X[isa.X3][0])
	if got != want {
		t.Errorf("result %v, want %v", got, want)
	}
	if sh.Stats().Invalidations == 0 {
		t.Error("overwrite of a shadowed register was not counted as an invalidation")
	}
	if sh.MaxUlps() != 0 {
		// The re-derived shadow starts from the hardware value, so the
		// single multiply cannot diverge.
		t.Errorf("divergence %d ulps after invalidation", sh.MaxUlps())
	}
}

func TestShadowRunStopsOnFault(t *testing.T) {
	b := isa.NewBuilder("fault")
	b.Movi(isa.R1, 1<<40)
	b.Ld(isa.R2, isa.R1, 0)
	b.Hlt()
	m := machine.New(b.Build(), 256)
	sh := NewShadowExecutor(m, 64)
	ev := sh.Run(100)
	if _, ok := ev.(*machine.FaultEvent); !ok {
		t.Fatalf("ended with %T, want fault", ev)
	}
}
