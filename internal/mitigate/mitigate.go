// Package mitigate prototypes the rounding-mitigation system sketched in
// Section 6 of the FPSpy paper: a trap-and-emulate bridge from hardware
// floating point instructions to an arbitrary-precision software FPU, so
// existing, unmodified binaries execute with higher precision "as
// necessary, resulting in less or even no rounding". The paper names
// MPFR as the software FPU; this reproduction uses math/big.Float, which
// provides the same correctly-rounded arbitrary-precision arithmetic.
//
// Two pieces are provided:
//
//   - ShadowExecutor: runs a guest program while maintaining a shadow
//     high-precision value for every vector register lane and every
//     stored double, re-executing rounding instructions at a configurable
//     precision. The divergence between the hardware results and the
//     shadow results quantifies how much accuracy the mitigation
//     recovers.
//
//   - Feasibility: the locality-based amortization model that Section 6's
//     rank-popularity analysis motivates — whether patching the top-K
//     rounding sites (or trap-and-emulating all of them) pays off.
package mitigate

import (
	"math"
	"math/big"

	"repro/internal/analysis"
	"repro/internal/isa"
	"repro/internal/machine"
)

// ShadowExecutor runs a program on a machine while shadowing scalar
// binary64 arithmetic at high precision.
type ShadowExecutor struct {
	// M is the guest machine.
	M *machine.Machine
	// Prec is the shadow mantissa precision in bits (53 = plain double).
	Prec uint

	regs [isa.NumVecRegs]*big.Float
	mem  map[uint64]*big.Float

	// Emulated counts the instructions re-executed in software.
	Emulated uint64
	// MaxRelError is the largest relative divergence observed between a
	// hardware result and its shadow at a comparison point.
	MaxRelError float64
	// ErrSamples counts comparison points.
	ErrSamples uint64
}

// NewShadowExecutor wraps a machine with a shadow FPU of the given
// precision.
func NewShadowExecutor(m *machine.Machine, prec uint) *ShadowExecutor {
	return &ShadowExecutor{M: m, Prec: prec, mem: make(map[uint64]*big.Float)}
}

// ShadowSupported reports whether the shadow executor can re-execute an
// instruction form at high precision: the scalar binary64 arithmetic and
// fused multiply-add forms. Packed, single-precision, conversion, and
// compare forms fall back to the hardware result. Static analysis
// (internal/binscan) uses this predicate to mark which discovered sites
// the Section 6 mitigation could patch.
func ShadowSupported(op isa.Opcode) bool {
	info := op.Info()
	switch info.Class {
	case isa.ClassFPArith, isa.ClassFMA:
		return info.Prec == isa.F64 && info.Lanes == 1
	}
	return false
}

func (s *ShadowExecutor) newFloat() *big.Float {
	return new(big.Float).SetPrec(s.Prec)
}

// shadowReg returns the shadow of a register lane 0, deriving it from
// the hardware value when absent.
func (s *ShadowExecutor) shadowReg(r uint8) *big.Float {
	if s.regs[r] == nil {
		s.regs[r] = s.newFloat().SetFloat64(math.Float64frombits(s.M.CPU.X[r][0]))
	}
	return s.regs[r]
}

func (s *ShadowExecutor) setShadowReg(r uint8, v *big.Float) {
	s.regs[r] = v
}

// invalidateReg drops a shadow (hardware value takes over).
func (s *ShadowExecutor) invalidateReg(r uint8) {
	s.regs[r] = nil
}

// Run executes up to maxSteps instructions, shadowing scalar f64
// arithmetic, and returns the events the machine produced. Unhandled
// machine events (halt, fault) end the run.
func (s *ShadowExecutor) Run(maxSteps uint64) machine.Event {
	for i := uint64(0); i < maxSteps; i++ {
		idx := s.M.Prog.IndexOf(s.M.CPU.RIP)
		if idx < 0 {
			return s.M.Step() // let the machine fault
		}
		inst := &s.M.Prog.Insts[idx]
		// Operand shadows must be derived from the *pre-step* hardware
		// state; after Step the destination may alias a source.
		s.prefetch(inst)
		ev := s.M.Step()
		if ev != nil {
			switch ev.(type) {
			case *machine.CallCEvent, *machine.TrapEvent:
				// Transparent to shadowing.
				continue
			default:
				return ev
			}
		}
		s.shadow(inst)
	}
	return nil
}

// prefetch materializes the shadows of an instruction's source operands
// from the current (pre-execution) hardware state.
func (s *ShadowExecutor) prefetch(inst *isa.Inst) {
	info := inst.Op.Info()
	switch info.Class {
	case isa.ClassFPArith:
		if ShadowSupported(inst.Op) {
			s.shadowReg(inst.Rs1)
			s.shadowReg(inst.Rs2)
		}
	case isa.ClassFMA:
		if ShadowSupported(inst.Op) {
			s.shadowReg(inst.Rs1)
			s.shadowReg(inst.Rs2)
			s.shadowReg(inst.Rs3)
		}
	case isa.ClassFPMove:
		if inst.Op == isa.OpMOVSD && s.regs[inst.Rs1] == nil {
			s.shadowReg(inst.Rs1)
		}
	}
}

// shadow re-executes one retired instruction on the shadow state.
func (s *ShadowExecutor) shadow(inst *isa.Inst) {
	info := inst.Op.Info()
	switch info.Class {
	case isa.ClassFPArith:
		if !ShadowSupported(inst.Op) {
			s.invalidateReg(inst.Rd)
			return
		}
		a := s.shadowReg(inst.Rs1)
		b := s.shadowReg(inst.Rs2)
		z := s.newFloat()
		switch info.FP {
		case isa.FPAdd:
			z.Add(a, b)
		case isa.FPSub:
			z.Sub(a, b)
		case isa.FPMul:
			z.Mul(a, b)
		case isa.FPDiv:
			if b.Sign() == 0 {
				s.invalidateReg(inst.Rd)
				return
			}
			z.Quo(a, b)
		case isa.FPSqrt:
			if a.Sign() < 0 {
				s.invalidateReg(inst.Rd)
				return
			}
			z.Sqrt(a)
		case isa.FPMin:
			if a.Cmp(b) < 0 {
				z.Set(a)
			} else {
				z.Set(b)
			}
		case isa.FPMax:
			if a.Cmp(b) > 0 {
				z.Set(a)
			} else {
				z.Set(b)
			}
		}
		s.setShadowReg(inst.Rd, z)
		s.Emulated++
	case isa.ClassFMA:
		if !ShadowSupported(inst.Op) {
			s.invalidateReg(inst.Rd)
			return
		}
		a := s.shadowReg(inst.Rs1)
		b := s.shadowReg(inst.Rs2)
		c := s.shadowReg(inst.Rs3)
		z := s.newFloat().Mul(a, b)
		switch info.FMA {
		case isa.FMAdd:
			z.Add(z, c)
		case isa.FMSub:
			z.Sub(z, c)
		case isa.FNMAdd:
			z.Neg(z)
			z.Add(z, c)
		case isa.FNMSub:
			z.Neg(z)
			z.Sub(z, c)
		}
		s.setShadowReg(inst.Rd, z)
		s.Emulated++
	case isa.ClassFPMove:
		switch inst.Op {
		case isa.OpMOVSD:
			if s.regs[inst.Rs1] != nil {
				s.setShadowReg(inst.Rd, s.newFloat().Set(s.regs[inst.Rs1]))
			} else {
				s.invalidateReg(inst.Rd)
			}
		default:
			s.invalidateReg(inst.Rd)
		}
	case isa.ClassMem:
		switch inst.Op {
		case isa.OpFLD:
			ea := s.M.CPU.R[inst.Rs1] + uint64(inst.Imm)
			if sv, ok := s.mem[ea]; ok {
				s.setShadowReg(inst.Rd, s.newFloat().Set(sv))
			} else {
				s.invalidateReg(inst.Rd)
			}
		case isa.OpFST:
			ea := s.M.CPU.R[inst.Rs1] + uint64(inst.Imm)
			if sv := s.regs[inst.Rs2]; sv != nil {
				s.mem[ea] = s.newFloat().Set(sv)
				s.compare(inst.Rs2, sv)
			} else {
				delete(s.mem, ea)
			}
		case isa.OpFLDS, isa.OpFLDV:
			s.invalidateReg(inst.Rd)
		}
	case isa.ClassFPConvert:
		s.invalidateReg(inst.Rd)
	}
}

// compare records the divergence between a hardware register and its
// shadow at an observation point (a store).
func (s *ShadowExecutor) compare(r uint8, shadow *big.Float) {
	hw := math.Float64frombits(s.M.CPU.X[r][0])
	sv, _ := shadow.Float64()
	if math.IsNaN(hw) || math.IsNaN(sv) || math.IsInf(hw, 0) || math.IsInf(sv, 0) {
		return
	}
	denom := math.Abs(sv)
	if denom == 0 {
		return
	}
	rel := math.Abs(hw-sv) / denom
	s.ErrSamples++
	if rel > s.MaxRelError {
		s.MaxRelError = rel
	}
}

// FeasibilityReport is the amortization analysis of Section 6: whether
// the locality of rounding sites makes a mitigation system practical.
type FeasibilityReport struct {
	// Sites is the number of distinct rounding instruction addresses.
	Sites int
	// Forms is the number of distinct instruction forms.
	Forms int
	// Sites99 and Forms99 cover 99% of events.
	Sites99, Forms99 int
	// TotalEvents is the rounding event count.
	TotalEvents uint64
	// PatchCyclesPerEvent is the projected per-event cost with binary
	// patching of the top sites amortized over the events they receive.
	PatchCyclesPerEvent float64
	// TrapCyclesPerEvent is the per-event cost of trap-and-emulate.
	TrapCyclesPerEvent float64
	// PatchWins reports whether patching beats trapping.
	PatchWins bool
}

// Feasibility evaluates the mitigation cost model over rank-popularity
// distributions: patching costs patchCycles once per site plus
// emulCycles per event; trap-and-emulate costs trapCycles per event.
func Feasibility(byAddr, byForm []analysis.RankEntry, patchCycles, emulCycles, trapCycles float64) FeasibilityReport {
	total := analysis.TotalEvents(byAddr)
	rep := FeasibilityReport{
		Sites:       len(byAddr),
		Forms:       len(byForm),
		Sites99:     analysis.CoverageCount(byAddr, 0.99),
		Forms99:     analysis.CoverageCount(byForm, 0.99),
		TotalEvents: total,
	}
	if total == 0 {
		return rep
	}
	rep.PatchCyclesPerEvent = (patchCycles*float64(rep.Sites) + emulCycles*float64(total)) / float64(total)
	rep.TrapCyclesPerEvent = trapCycles
	rep.PatchWins = rep.PatchCyclesPerEvent < rep.TrapCyclesPerEvent
	return rep
}
