// Package mitigate prototypes the rounding-mitigation system sketched in
// Section 6 of the FPSpy paper: a trap-and-emulate bridge from hardware
// floating point instructions to an arbitrary-precision software FPU, so
// existing, unmodified binaries execute with higher precision "as
// necessary, resulting in less or even no rounding". The paper names
// MPFR as the software FPU; this reproduction uses math/big.Float, which
// provides the same correctly-rounded arbitrary-precision arithmetic.
//
// Two pieces are provided:
//
//   - ShadowExecutor: runs a guest program with the shadow-precision
//     channel (internal/shadow) attached, maintaining a high-precision
//     shadow value for every vector register lane and every stored
//     float. The divergence between the hardware results and the shadow
//     results — measured in integer ULPs of the native format, with an
//     explicit skip policy for NaN and infinite operands — quantifies
//     how much accuracy the mitigation recovers.
//
//   - Feasibility: the locality-based amortization model that Section 6's
//     rank-popularity analysis motivates — whether patching the top-K
//     rounding sites (or trap-and-emulating all of them) pays off.
package mitigate

import (
	"repro/internal/analysis"
	"repro/internal/isa"
	"repro/internal/machine"
	"repro/internal/shadow"
)

// ShadowExecutor runs a program on a machine while shadowing its
// floating point state at high precision. It is a driving loop around
// the shadow channel: the channel observes every retired instruction
// through the machine's ShadowSink hooks, and the executor only steps
// the machine and decides which events end the run.
type ShadowExecutor struct {
	// M is the guest machine.
	M *machine.Machine
	// Prec is the shadow mantissa precision in bits (53 = plain double).
	Prec uint

	ch *shadow.Channel
}

// NewShadowExecutor wraps a machine with a shadow FPU of the given
// precision.
func NewShadowExecutor(m *machine.Machine, prec uint) *ShadowExecutor {
	return &ShadowExecutor{M: m, Prec: prec, ch: shadow.Attach(m, prec, nil)}
}

// ShadowSupported reports whether the shadow channel re-executes an
// instruction form at high precision: binary64 arithmetic and fused
// multiply-add forms, scalar or packed (including masked AVX-512
// z-forms), plus scalar binary32 arithmetic. Compare, convert, and
// round forms fall back to the hardware result. Static analysis
// (internal/binscan) uses this predicate to mark which discovered sites
// the Section 6 mitigation could patch.
func ShadowSupported(op isa.Opcode) bool { return shadow.Supported(op) }

// Run executes up to maxSteps instructions under the shadow channel
// and returns the event that ended the run. CallC and single-step trap
// events are transparent to shadowing; anything else (halt, fault)
// ends the run. Returns nil when maxSteps is exhausted.
func (s *ShadowExecutor) Run(maxSteps uint64) machine.Event {
	for i := uint64(0); i < maxSteps; i++ {
		ev := s.M.Step()
		if ev != nil {
			switch ev.(type) {
			case *machine.CallCEvent, *machine.TrapEvent:
				// Transparent to shadowing.
				continue
			default:
				return ev
			}
		}
	}
	return nil
}

// Stats returns the channel's accounting: shadow-executed ops,
// diverged lanes, invalidations, and the error totals.
func (s *ShadowExecutor) Stats() shadow.Stats { return s.ch.Stats() }

// Emulated counts the lane operations re-executed in software.
func (s *ShadowExecutor) Emulated() uint64 { return s.ch.Stats().Ops }

// MaxUlps is the largest integer ULP distance observed between a
// hardware result and its shadow rounded to the native format. The
// distance is measured on the monotone ordinal lattice (±0 collapsed);
// lanes with NaN or infinite operands or results are skipped entirely
// (counted in Stats().NonFinite), never charged.
func (s *ShadowExecutor) MaxUlps() uint64 { return s.ch.Stats().MaxUlps }

// Diverged counts lane operations whose shadow rounded to different
// native-format bits than the hardware produced.
func (s *ShadowExecutor) Diverged() uint64 { return s.ch.Stats().Diverged }

// Sites returns the per-site attribution rows the run accumulated,
// ordered by address; rank them with analysis.BuildRootCause.
func (s *ShadowExecutor) Sites() []analysis.RootCauseSite { return s.ch.Sites() }

// FeasibilityReport is the amortization analysis of Section 6: whether
// the locality of rounding sites makes a mitigation system practical.
type FeasibilityReport struct {
	// Sites is the number of distinct rounding instruction addresses.
	Sites int
	// Forms is the number of distinct instruction forms.
	Forms int
	// Sites99 and Forms99 cover 99% of events.
	Sites99, Forms99 int
	// TotalEvents is the rounding event count.
	TotalEvents uint64
	// PatchCyclesPerEvent is the projected per-event cost with binary
	// patching of the top sites amortized over the events they receive.
	PatchCyclesPerEvent float64
	// TrapCyclesPerEvent is the per-event cost of trap-and-emulate.
	TrapCyclesPerEvent float64
	// PatchWins reports whether patching beats trapping.
	PatchWins bool
}

// Feasibility evaluates the mitigation cost model over rank-popularity
// distributions: patching costs patchCycles once per site plus
// emulCycles per event; trap-and-emulate costs trapCycles per event.
func Feasibility(byAddr, byForm []analysis.RankEntry, patchCycles, emulCycles, trapCycles float64) FeasibilityReport {
	total := analysis.TotalEvents(byAddr)
	rep := FeasibilityReport{
		Sites:       len(byAddr),
		Forms:       len(byForm),
		Sites99:     analysis.CoverageCount(byAddr, 0.99),
		Forms99:     analysis.CoverageCount(byForm, 0.99),
		TotalEvents: total,
	}
	if total == 0 {
		return rep
	}
	rep.PatchCyclesPerEvent = (patchCycles*float64(rep.Sites) + emulCycles*float64(total)) / float64(total)
	rep.TrapCyclesPerEvent = trapCycles
	rep.PatchWins = rep.PatchCyclesPerEvent < rep.TrapCyclesPerEvent
	return rep
}
