package isa

import "testing"

// FuzzEncodeDecodeRoundTrip drives Program.Encode / DecodeWord both
// ways: any decodable word must re-encode to the identical bytes, and
// any instruction built from in-range fields must survive an
// encode/decode round trip of its form and register operands (the
// fields the encoding carries). binscan's trace validator decodes
// captured instruction words, so this round trip is load-bearing.
func FuzzEncodeDecodeRoundTrip(f *testing.F) {
	f.Add(byte(0), byte(0), byte(0), byte(0))
	f.Add(byte(uint16(OpADDSD)), byte(uint16(OpADDSD)>>8), byte(0x12), byte(0x34))
	f.Add(byte(0xFF), byte(0xFF), byte(0xFF), byte(0xFF))
	// 512-bit, write-masked, and mask-register forms: the masked forms
	// carry the mask register in the Rs3 nibble, which must round-trip.
	f.Add(byte(uint16(OpVADDPDZ)), byte(uint16(OpVADDPDZ)>>8), byte(0x21), byte(0x30))
	f.Add(byte(uint16(OpVMULPDKZ)), byte(uint16(OpVMULPDKZ)>>8), byte(0x31), byte(0x25))
	f.Add(byte(uint16(OpVSQRTPSKZ)), byte(uint16(OpVSQRTPSKZ)>>8), byte(0x40), byte(0x07))
	f.Add(byte(uint16(OpVFMADDPDZ)), byte(uint16(OpVFMADDPDZ)>>8), byte(0x12), byte(0x34))
	f.Add(byte(uint16(OpKMOVQ)), byte(uint16(OpKMOVQ)>>8), byte(0x15), byte(0x00))
	f.Add(byte(uint16(OpKMOVRQ)), byte(uint16(OpKMOVRQ)>>8), byte(0x61), byte(0x00))
	f.Add(byte(uint16(OpFLDVZ)), byte(uint16(OpFLDVZ)>>8), byte(0x24), byte(0x00))
	f.Add(byte(uint16(OpFSTVZ)), byte(uint16(OpFSTVZ)>>8), byte(0x04), byte(0x20))

	f.Fuzz(func(t *testing.T, b0, b1, b2, b3 byte) {
		word := [InstBytes]byte{b0, b1, b2, b3}
		inst, ok := DecodeWord(word)
		if !ok {
			// Unregistered opcode: the word must really be out of range.
			if op := uint16(b0) | uint16(b1)<<8; int(op) < NumOpcodes() {
				t.Fatalf("DecodeWord rejected registered opcode %d", op)
			}
			return
		}
		if int(inst.Op) >= NumOpcodes() {
			t.Fatalf("decoded unregistered opcode %d", inst.Op)
		}
		if inst.Rd > 0xF || inst.Rs1 > 0xF || inst.Rs2 > 0xF || inst.Rs3 > 0xF {
			t.Fatalf("decoded out-of-range register in %+v", inst)
		}

		// Word -> Inst -> word must be the identity.
		p := &Program{Name: "fuzz", Insts: []Inst{inst}, Base: DefaultCodeBase}
		if got := p.Encode(0); got != word {
			t.Fatalf("re-encode mismatch: % x -> %+v -> % x", word, inst, got)
		}

		// Inst -> word -> Inst preserves the encoded fields.
		dec, ok := DecodeWord(p.Encode(0))
		if !ok {
			t.Fatalf("round-trip decode failed for %+v", inst)
		}
		if dec.Op != inst.Op || dec.Rd != inst.Rd || dec.Rs1 != inst.Rs1 ||
			dec.Rs2 != inst.Rs2 || dec.Rs3 != inst.Rs3 {
			t.Fatalf("round trip changed instruction:\n in  %+v\n out %+v", inst, dec)
		}
	})
}
