package isa

import (
	"strings"
	"testing"
)

func TestBuilderLabelsResolveForwardAndBackward(t *testing.T) {
	b := NewBuilder("labels")
	fwd := b.Label("fwd")
	b.Jmp(fwd) // forward reference
	b.Nop()
	b.Bind(fwd)
	back := b.Label("back")
	b.Bind(back)
	b.Addi(R1, R1, 1)
	b.Jmp(back) // backward reference
	p := b.Build()
	if p.Insts[0].Imm != 2 {
		t.Errorf("forward jump target = %d, want 2", p.Insts[0].Imm)
	}
	if p.Insts[3].Imm != 2 {
		t.Errorf("backward jump target = %d, want 2", p.Insts[3].Imm)
	}
}

func TestBuilderUnboundLabelPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("no panic for unbound label")
		}
	}()
	b := NewBuilder("bad")
	b.Jmp(b.Label("nowhere"))
	b.Build()
}

func TestBuilderDoubleBindPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("no panic for double bind")
		}
	}()
	b := NewBuilder("bad")
	l := b.Label("l")
	b.Bind(l)
	b.Bind(l)
}

func TestLeaResolvesToAddress(t *testing.T) {
	b := NewBuilder("lea")
	fn := b.Label("fn")
	b.Lea(R1, fn)
	b.Hlt()
	b.Bind(fn)
	b.Ret()
	p := b.Build()
	want := int64(p.AddrOf(2))
	if p.Insts[0].Imm != want {
		t.Errorf("lea imm = %#x, want %#x", p.Insts[0].Imm, want)
	}
}

func TestAddressMapping(t *testing.T) {
	b := NewBuilder("addrs")
	for i := 0; i < 5; i++ {
		b.Nop()
	}
	p := b.Build()
	for i := range p.Insts {
		addr := p.AddrOf(i)
		if got := p.IndexOf(addr); got != i {
			t.Errorf("IndexOf(AddrOf(%d)) = %d", i, got)
		}
		if p.At(addr) != &p.Insts[i] {
			t.Errorf("At(%#x) wrong", addr)
		}
	}
	if p.IndexOf(p.Base-4) != -1 || p.IndexOf(p.AddrOf(5)) != -1 {
		t.Error("out-of-range addresses resolved")
	}
	if p.IndexOf(p.Base+1) != -1 {
		t.Error("misaligned address resolved")
	}
}

func TestDataSegment(t *testing.T) {
	b := NewBuilder("data")
	a1 := b.Float64s(1.5, 2.5)
	a2 := b.Float32s(0.5)
	a3 := b.Words(42)
	a4 := b.Zeros(16)
	b.Hlt()
	p := b.Build()
	if a1 != DefaultDataBase {
		t.Errorf("first array at %#x", a1)
	}
	if a2 != a1+16 {
		t.Errorf("f32 array at %#x, want %#x", a2, a1+16)
	}
	// Words aligns? Float32s left us at offset 20; Words appends
	// directly (no implicit alignment).
	if a3 != a2+4 {
		t.Errorf("words at %#x", a3)
	}
	// Zeros pads to 8-byte alignment.
	if a4%8 != 0 {
		t.Errorf("zeros misaligned at %#x", a4)
	}
	if len(p.Data) < 16+4+8+16 {
		t.Errorf("data segment %d bytes", len(p.Data))
	}
	// Encoded value spot check: 1.5 little endian.
	if p.Data[6] != 0xF8 || p.Data[7] != 0x3F {
		t.Errorf("1.5 encoding wrong: % x", p.Data[:8])
	}
}

func TestDisassembly(t *testing.T) {
	cases := []struct {
		inst Inst
		want string
	}{
		{Inst{Op: OpMOVI, Rd: 1, Imm: 42}, "movi r1, 42"},
		{Inst{Op: OpADD, Rd: 1, Rs1: 2, Rs2: 3}, "add r1, r2, r3"},
		{Inst{Op: OpADDSD, Rd: 1, Rs1: 2, Rs2: 3}, "addsd x1, x2, x3"},
		{Inst{Op: OpVFMADDPS, Rd: 1, Rs1: 2, Rs2: 3, Rs3: 4}, "vfmaddps x1, x2, x3, x4"},
		{Inst{Op: OpLD, Rd: 1, Rs1: 2, Imm: 8}, "ld r1, [r2+8]"},
		{Inst{Op: OpST, Rs1: 2, Rs2: 3, Imm: -8}, "st [r2-8], r3"},
		{Inst{Op: OpCALLC, Sym: "fork"}, "callc fork"},
		{Inst{Op: OpHLT}, "hlt"},
		{Inst{Op: OpRET}, "ret"},
		{Inst{Op: OpUCOMISD, Rd: 1, Rs1: 2, Rs2: 3}, "ucomisd r1, x2, x3"},
		{Inst{Op: OpCVTSI2SD, Rd: 1, Rs1: 2}, "cvtsi2sd x1, r2"},
		{Inst{Op: OpCVTTSD2SI, Rd: 1, Rs1: 2}, "cvttsd2si r1, x2"},
		{Inst{Op: OpROUNDSD, Rd: 1, Rs1: 2, Imm: 3}, "roundsd x1, x2, 3"},
	}
	for _, c := range cases {
		if got := c.inst.String(); got != c.want {
			t.Errorf("disasm = %q, want %q", got, c.want)
		}
	}
}

func TestOpcodeByName(t *testing.T) {
	for _, name := range []string{"addsd", "vfmaddps", "vdpps", "cvtsi2sdq", "hlt"} {
		op, ok := OpcodeByName(name)
		if !ok {
			t.Errorf("OpcodeByName(%q) failed", name)
			continue
		}
		if op.String() != name {
			t.Errorf("round trip %q -> %q", name, op.String())
		}
	}
	if _, ok := OpcodeByName("bogus"); ok {
		t.Error("bogus opcode resolved")
	}
}

func TestOpcodeTableConsistency(t *testing.T) {
	seen := map[string]bool{}
	for i := 0; i < NumOpcodes(); i++ {
		op := Opcode(i)
		info := op.Info()
		if info.Name == "" {
			t.Errorf("opcode %d unnamed", i)
		}
		if seen[info.Name] {
			t.Errorf("duplicate mnemonic %q", info.Name)
		}
		seen[info.Name] = true
		switch info.Class {
		case ClassFPArith, ClassFMA, ClassFPRound, ClassFPDot:
			if info.Lanes == 0 {
				t.Errorf("%s: zero lanes", info.Name)
			}
		}
		// VEX naming convention: v-prefixed mnemonics are VEX except the
		// legacy scalar/packed set.
		if strings.HasPrefix(info.Name, "v") && !info.VEX {
			if info.Name != "vips" { // not an opcode; guard anyway
				t.Errorf("%s: v-prefix but not VEX", info.Name)
			}
		}
	}
}

func TestEncodeIsDeterministic(t *testing.T) {
	b := NewBuilder("enc")
	b.FP2(OpADDSD, 1, 2, 3)
	p := b.Build()
	e1 := p.Encode(0)
	e2 := p.Encode(0)
	if e1 != e2 {
		t.Error("encoding not deterministic")
	}
	if e1[0] == 0 && e1[1] == 0 && e1[2] == 0 && e1[3] == 0 {
		t.Error("encoding all zero")
	}
}

func TestRemainingBuilderOps(t *testing.T) {
	b := NewBuilder("misc")
	b.Or(R1, R2, R3)
	b.Raw(Inst{Op: OpNOP})
	l := b.Label("t")
	b.Ble(R1, R2, l)
	b.Bgt(R1, R2, l)
	b.Bind(l)
	b.Nop()
	p := b.Build()
	if p.Insts[0].Op != OpOR || p.Insts[1].Op != OpNOP {
		t.Error("or/raw broken")
	}
	if p.Insts[2].Imm != 4 || p.Insts[3].Imm != 4 {
		t.Errorf("ble/bgt targets %d %d", p.Insts[2].Imm, p.Insts[3].Imm)
	}
}
