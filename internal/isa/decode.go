package isa

// DecodeWord decodes a synthetic 4-byte instruction encoding, the
// inverse of Program.Encode. The encoding carries the opcode and the
// four register fields only — immediates, branch targets, and callc
// symbol names do not fit in the word — so decoding recovers exactly
// what trace analysis needs (the instruction form and operands), the
// same information the paper's scripts extract from captured x64
// instruction bytes. ok is false when the opcode field does not name a
// registered instruction.
func DecodeWord(w [InstBytes]byte) (Inst, bool) {
	op := Opcode(uint16(w[0]) | uint16(w[1])<<8)
	if int(op) >= NumOpcodes() {
		return Inst{}, false
	}
	return Inst{
		Op:  op,
		Rd:  w[2] >> 4,
		Rs1: w[2] & 0xF,
		Rs2: w[3] >> 4,
		Rs3: w[3] & 0xF,
	}, true
}
