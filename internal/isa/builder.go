package isa

import (
	"fmt"
	"math"
)

// Builder assembles a Program with label-based control flow. It is the
// "assembler" used by the workload kernels.
type Builder struct {
	name   string
	base   uint64
	insts  []Inst
	fixups []fixup
	bound  map[*Label]int
	data   []byte
}

type fixup struct {
	inst  int
	label *Label
	// addr resolves to the label's code address rather than its
	// instruction index (for function pointers).
	addr bool
}

// Label is a forward- or backward-referencable branch target.
type Label struct {
	name string
}

// NewBuilder creates a builder for a named program at the default code
// base.
func NewBuilder(name string) *Builder {
	return &Builder{name: name, base: DefaultCodeBase, bound: make(map[*Label]int)}
}

// Label creates a new unbound label.
func (b *Builder) Label(name string) *Label { return &Label{name: name} }

// Bind attaches a label to the next emitted instruction.
func (b *Builder) Bind(l *Label) {
	if _, ok := b.bound[l]; ok {
		panic(fmt.Sprintf("isa: label %q bound twice", l.name))
	}
	b.bound[l] = len(b.insts)
}

// emit appends an instruction and returns its index.
func (b *Builder) emit(i Inst) int {
	b.insts = append(b.insts, i)
	return len(b.insts) - 1
}

// Raw appends a fully-formed instruction.
func (b *Builder) Raw(i Inst) { b.emit(i) }

// Build resolves labels and returns the program. It panics on unbound
// labels, which are always programming errors in kernels.
func (b *Builder) Build() *Program {
	for _, f := range b.fixups {
		idx, ok := b.bound[f.label]
		if !ok {
			panic(fmt.Sprintf("isa: unbound label %q", f.label.name))
		}
		if f.addr {
			b.insts[f.inst].Imm = int64(b.base + uint64(idx)*InstBytes)
		} else {
			b.insts[f.inst].Imm = int64(idx)
		}
	}
	return &Program{
		Name: b.name, Insts: b.insts, Base: b.base,
		Data: b.data, DataBase: DefaultDataBase,
	}
}

// Float64s places binary64 values in the data segment and returns their
// load address.
func (b *Builder) Float64s(vals ...float64) uint64 {
	addr := DefaultDataBase + uint64(len(b.data))
	for _, v := range vals {
		bits := math.Float64bits(v)
		for i := 0; i < 8; i++ {
			b.data = append(b.data, byte(bits>>(8*i)))
		}
	}
	return addr
}

// Float32s places binary32 values in the data segment and returns their
// load address.
func (b *Builder) Float32s(vals ...float32) uint64 {
	addr := DefaultDataBase + uint64(len(b.data))
	for _, v := range vals {
		bits := math.Float32bits(v)
		for i := 0; i < 4; i++ {
			b.data = append(b.data, byte(bits>>(8*i)))
		}
	}
	return addr
}

// Words places 64-bit integers in the data segment and returns their
// load address.
func (b *Builder) Words(vals ...uint64) uint64 {
	addr := DefaultDataBase + uint64(len(b.data))
	for _, v := range vals {
		for i := 0; i < 8; i++ {
			b.data = append(b.data, byte(v>>(8*i)))
		}
	}
	return addr
}

// Zeros reserves n zeroed bytes in the data segment (8-byte aligned) and
// returns their load address.
func (b *Builder) Zeros(n int) uint64 {
	for len(b.data)%8 != 0 {
		b.data = append(b.data, 0)
	}
	addr := DefaultDataBase + uint64(len(b.data))
	b.data = append(b.data, make([]byte, n)...)
	return addr
}

// Len returns the number of instructions emitted so far.
func (b *Builder) Len() int { return len(b.insts) }

// --- system ---

// Nop emits a no-op.
func (b *Builder) Nop() { b.emit(Inst{Op: OpNOP}) }

// Hlt emits a halt, ending the thread.
func (b *Builder) Hlt() { b.emit(Inst{Op: OpHLT}) }

// CallC emits a call to a libc symbol routed through the dynamic linker.
// Arguments are in r1..r6 by convention; the result is returned in r1.
func (b *Builder) CallC(sym string) { b.emit(Inst{Op: OpCALLC, Sym: sym}) }

// --- integer ---

// Movi loads a 64-bit immediate.
func (b *Builder) Movi(rd int, imm int64) { b.emit(Inst{Op: OpMOVI, Rd: uint8(rd), Imm: imm}) }

// Mov copies an integer register.
func (b *Builder) Mov(rd, rs int) { b.emit(Inst{Op: OpMOV, Rd: uint8(rd), Rs1: uint8(rs)}) }

// Add emits rd = rs1 + rs2.
func (b *Builder) Add(rd, rs1, rs2 int) {
	b.emit(Inst{Op: OpADD, Rd: uint8(rd), Rs1: uint8(rs1), Rs2: uint8(rs2)})
}

// Addi emits rd = rs1 + imm.
func (b *Builder) Addi(rd, rs1 int, imm int64) {
	b.emit(Inst{Op: OpADDI, Rd: uint8(rd), Rs1: uint8(rs1), Imm: imm})
}

// Sub emits rd = rs1 - rs2.
func (b *Builder) Sub(rd, rs1, rs2 int) {
	b.emit(Inst{Op: OpSUB, Rd: uint8(rd), Rs1: uint8(rs1), Rs2: uint8(rs2)})
}

// Mulq emits rd = rs1 * rs2 (64-bit integer).
func (b *Builder) Mulq(rd, rs1, rs2 int) {
	b.emit(Inst{Op: OpMULQ, Rd: uint8(rd), Rs1: uint8(rs1), Rs2: uint8(rs2)})
}

// Divq emits rd = rs1 / rs2 (signed); division by zero halts the thread
// with a machine fault.
func (b *Builder) Divq(rd, rs1, rs2 int) {
	b.emit(Inst{Op: OpDIVQ, Rd: uint8(rd), Rs1: uint8(rs1), Rs2: uint8(rs2)})
}

// Remq emits rd = rs1 % rs2 (signed).
func (b *Builder) Remq(rd, rs1, rs2 int) {
	b.emit(Inst{Op: OpREMQ, Rd: uint8(rd), Rs1: uint8(rs1), Rs2: uint8(rs2)})
}

// And emits rd = rs1 & rs2.
func (b *Builder) And(rd, rs1, rs2 int) {
	b.emit(Inst{Op: OpAND, Rd: uint8(rd), Rs1: uint8(rs1), Rs2: uint8(rs2)})
}

// Or emits rd = rs1 | rs2.
func (b *Builder) Or(rd, rs1, rs2 int) {
	b.emit(Inst{Op: OpOR, Rd: uint8(rd), Rs1: uint8(rs1), Rs2: uint8(rs2)})
}

// Xor emits rd = rs1 ^ rs2.
func (b *Builder) Xor(rd, rs1, rs2 int) {
	b.emit(Inst{Op: OpXOR, Rd: uint8(rd), Rs1: uint8(rs1), Rs2: uint8(rs2)})
}

// Shli emits rd = rs1 << imm.
func (b *Builder) Shli(rd, rs1 int, imm int64) {
	b.emit(Inst{Op: OpSHLI, Rd: uint8(rd), Rs1: uint8(rs1), Imm: imm})
}

// Shri emits rd = rs1 >> imm (logical).
func (b *Builder) Shri(rd, rs1 int, imm int64) {
	b.emit(Inst{Op: OpSHRI, Rd: uint8(rd), Rs1: uint8(rs1), Imm: imm})
}

// --- control flow ---

func (b *Builder) branch(op Opcode, rs1, rs2 int, l *Label) {
	idx := b.emit(Inst{Op: op, Rs1: uint8(rs1), Rs2: uint8(rs2)})
	b.fixups = append(b.fixups, fixup{inst: idx, label: l})
}

// Lea loads the code address of a label into an integer register, for
// use as a function or handler pointer.
func (b *Builder) Lea(rd int, l *Label) {
	idx := b.emit(Inst{Op: OpMOVI, Rd: uint8(rd)})
	b.fixups = append(b.fixups, fixup{inst: idx, label: l, addr: true})
}

// Jmp emits an unconditional jump.
func (b *Builder) Jmp(l *Label) { b.branch(OpJMP, 0, 0, l) }

// Beq branches when rs1 == rs2.
func (b *Builder) Beq(rs1, rs2 int, l *Label) { b.branch(OpBEQ, rs1, rs2, l) }

// Bne branches when rs1 != rs2.
func (b *Builder) Bne(rs1, rs2 int, l *Label) { b.branch(OpBNE, rs1, rs2, l) }

// Blt branches when rs1 < rs2 (signed).
func (b *Builder) Blt(rs1, rs2 int, l *Label) { b.branch(OpBLT, rs1, rs2, l) }

// Bge branches when rs1 >= rs2 (signed).
func (b *Builder) Bge(rs1, rs2 int, l *Label) { b.branch(OpBGE, rs1, rs2, l) }

// Ble branches when rs1 <= rs2 (signed).
func (b *Builder) Ble(rs1, rs2 int, l *Label) { b.branch(OpBLE, rs1, rs2, l) }

// Bgt branches when rs1 > rs2 (signed).
func (b *Builder) Bgt(rs1, rs2 int, l *Label) { b.branch(OpBGT, rs1, rs2, l) }

// Call emits a subroutine call (return address on the machine call stack).
func (b *Builder) Call(l *Label) { b.branch(OpCALL, 0, 0, l) }

// Ret returns from a subroutine.
func (b *Builder) Ret() { b.emit(Inst{Op: OpRET}) }

// --- memory ---

// Ld loads a 64-bit integer: rd = mem64[rs1+disp].
func (b *Builder) Ld(rd, rs1 int, disp int64) {
	b.emit(Inst{Op: OpLD, Rd: uint8(rd), Rs1: uint8(rs1), Imm: disp})
}

// St stores a 64-bit integer: mem64[rs1+disp] = rs2.
func (b *Builder) St(rs1 int, disp int64, rs2 int) {
	b.emit(Inst{Op: OpST, Rs1: uint8(rs1), Rs2: uint8(rs2), Imm: disp})
}

// Fld loads a binary64 into lane 0 of xd.
func (b *Builder) Fld(xd, rs1 int, disp int64) {
	b.emit(Inst{Op: OpFLD, Rd: uint8(xd), Rs1: uint8(rs1), Imm: disp})
}

// Fst stores lane 0 of xs as binary64.
func (b *Builder) Fst(rs1 int, disp int64, xs int) {
	b.emit(Inst{Op: OpFST, Rs1: uint8(rs1), Rs2: uint8(xs), Imm: disp})
}

// Flds loads a binary32 into the low half of lane 0, zeroing the rest.
func (b *Builder) Flds(xd, rs1 int, disp int64) {
	b.emit(Inst{Op: OpFLDS, Rd: uint8(xd), Rs1: uint8(rs1), Imm: disp})
}

// Fsts stores the low binary32 of lane 0.
func (b *Builder) Fsts(rs1 int, disp int64, xs int) {
	b.emit(Inst{Op: OpFSTS, Rs1: uint8(rs1), Rs2: uint8(xs), Imm: disp})
}

// Fldv loads a full 256-bit vector register.
func (b *Builder) Fldv(xd, rs1 int, disp int64) {
	b.emit(Inst{Op: OpFLDV, Rd: uint8(xd), Rs1: uint8(rs1), Imm: disp})
}

// Fstv stores a full 256-bit vector register.
func (b *Builder) Fstv(rs1 int, disp int64, xs int) {
	b.emit(Inst{Op: OpFSTV, Rs1: uint8(rs1), Rs2: uint8(xs), Imm: disp})
}

// Fldvz loads a full 512-bit vector register.
func (b *Builder) Fldvz(xd, rs1 int, disp int64) {
	b.emit(Inst{Op: OpFLDVZ, Rd: uint8(xd), Rs1: uint8(rs1), Imm: disp})
}

// Fstvz stores a full 512-bit vector register.
func (b *Builder) Fstvz(rs1 int, disp int64, xs int) {
	b.emit(Inst{Op: OpFSTVZ, Rs1: uint8(rs1), Rs2: uint8(xs), Imm: disp})
}

// Ldmxcsr replaces the whole %mxcsr register from mem32[rs1+disp] — the
// application's direct write channel to FP control state, bypassing the
// interposable fe* libc surface entirely.
func (b *Builder) Ldmxcsr(rs1 int, disp int64) {
	b.emit(Inst{Op: OpLDMXCSR, Rs1: uint8(rs1), Imm: disp})
}

// Stmxcsr stores %mxcsr to mem32[rs1+disp].
func (b *Builder) Stmxcsr(rs1 int, disp int64) {
	b.emit(Inst{Op: OpSTMXCSR, Rs1: uint8(rs1), Imm: disp})
}

// --- floating point ---

// FP2 emits a two-source floating point arithmetic instruction in
// three-operand form: xd = op(xs1, xs2). SSE-style destructive forms are
// expressed by passing xd == xs1.
func (b *Builder) FP2(op Opcode, xd, xs1, xs2 int) {
	b.emit(Inst{Op: op, Rd: uint8(xd), Rs1: uint8(xs1), Rs2: uint8(xs2)})
}

// FP1 emits a one-source floating point instruction (sqrt forms):
// xd = op(xs1).
func (b *Builder) FP1(op Opcode, xd, xs1 int) {
	b.emit(Inst{Op: op, Rd: uint8(xd), Rs1: uint8(xs1), Rs2: uint8(xs1)})
}

// FP2Masked emits a write-masked two-source arithmetic instruction:
// xd = op(xs1, xs2) on lanes whose bit is set in mask register k;
// other lanes keep xd's old contents and raise nothing.
func (b *Builder) FP2Masked(op Opcode, xd, xs1, xs2, k int) {
	b.emit(Inst{Op: op, Rd: uint8(xd), Rs1: uint8(xs1), Rs2: uint8(xs2), Rs3: uint8(k)})
}

// FP1Masked emits a write-masked one-source instruction (masked sqrt).
func (b *Builder) FP1Masked(op Opcode, xd, xs1, k int) {
	b.emit(Inst{Op: op, Rd: uint8(xd), Rs1: uint8(xs1), Rs2: uint8(xs1), Rs3: uint8(k)})
}

// Kmovq moves an integer register into a mask register.
func (b *Builder) Kmovq(kd, rs int) {
	b.emit(Inst{Op: OpKMOVQ, Rd: uint8(kd), Rs1: uint8(rs)})
}

// Kmovrq moves a mask register into an integer register.
func (b *Builder) Kmovrq(rd, ks int) {
	b.emit(Inst{Op: OpKMOVRQ, Rd: uint8(rd), Rs1: uint8(ks)})
}

// FMA emits a fused multiply-add form: xd = ±(xa*xb) ± xc.
func (b *Builder) FMA(op Opcode, xd, xa, xb, xc int) {
	b.emit(Inst{Op: op, Rd: uint8(xd), Rs1: uint8(xa), Rs2: uint8(xb), Rs3: uint8(xc)})
}

// Cvt emits a conversion. The register roles depend on the form: int→fp
// forms read integer rs and write vector xd; fp→int forms read vector and
// write integer; fp→fp forms are vector to vector.
func (b *Builder) Cvt(op Opcode, rd, rs int) {
	b.emit(Inst{Op: op, Rd: uint8(rd), Rs1: uint8(rs)})
}

// Ucomi emits an ordered/unordered compare writing the outcome to integer
// register rd: -1 less, 0 equal, 1 greater, 2 unordered.
func (b *Builder) Ucomi(op Opcode, rd, xs1, xs2 int) {
	b.emit(Inst{Op: op, Rd: uint8(rd), Rs1: uint8(xs1), Rs2: uint8(xs2)})
}

// CmpPred emits a cmpsd/cmpss predicate compare producing a mask in xd.
func (b *Builder) CmpPred(op Opcode, xd, xs1, xs2 int, pred CmpImm) {
	b.emit(Inst{Op: op, Rd: uint8(xd), Rs1: uint8(xs1), Rs2: uint8(xs2), Imm: int64(pred)})
}

// Round emits a round-to-integral form with the given imm8 control.
func (b *Builder) Round(op Opcode, xd, xs int, imm RoundImm) {
	b.emit(Inst{Op: op, Rd: uint8(xd), Rs1: uint8(xs), Imm: int64(imm)})
}

// Dp emits a dot-product form.
func (b *Builder) Dp(op Opcode, xd, xs1, xs2 int) {
	b.emit(Inst{Op: op, Rd: uint8(xd), Rs1: uint8(xs1), Rs2: uint8(xs2), Imm: 0xFF})
}

// Movsd copies lane 0 (binary64) between vector registers.
func (b *Builder) Movsd(xd, xs int) {
	b.emit(Inst{Op: OpMOVSD, Rd: uint8(xd), Rs1: uint8(xs)})
}

// Movapd copies a whole vector register.
func (b *Builder) Movapd(xd, xs int) {
	b.emit(Inst{Op: OpMOVAPD, Rd: uint8(xd), Rs1: uint8(xs)})
}

// Movqx moves an integer register's bits into lane 0 of a vector register.
func (b *Builder) Movqx(xd, rs int) {
	b.emit(Inst{Op: OpMOVQX, Rd: uint8(xd), Rs1: uint8(rs)})
}

// Movxq moves lane 0 of a vector register into an integer register.
func (b *Builder) Movxq(rd, xs int) {
	b.emit(Inst{Op: OpMOVXQ, Rd: uint8(rd), Rs1: uint8(xs)})
}

// CmpImm is the predicate immediate of cmpsd/cmpss (the SSE encoding).
type CmpImm = CmpPredicateImm

// CmpPredicateImm mirrors softfloat.CmpPredicate values.
type CmpPredicateImm uint8

// RoundImm is the imm8 of the round forms: bits 0-1 rounding mode, bit 2
// selects MXCSR.RC instead, bit 3 suppresses Inexact.
type RoundImm uint8

const (
	// RoundImmNearest rounds to nearest even.
	RoundImmNearest RoundImm = 0
	// RoundImmDown rounds toward negative infinity.
	RoundImmDown RoundImm = 1
	// RoundImmUp rounds toward positive infinity.
	RoundImmUp RoundImm = 2
	// RoundImmTrunc rounds toward zero.
	RoundImmTrunc RoundImm = 3
	// RoundImmMXCSR uses the MXCSR rounding mode.
	RoundImmMXCSR RoundImm = 4
	// RoundImmNoInexact suppresses the Inexact flag.
	RoundImmNoInexact RoundImm = 8
)
