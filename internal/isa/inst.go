package isa

import "fmt"

// InstBytes is the synthetic encoded length of every instruction. The
// guest ISA is fixed-length; FPSpy's single-step technique makes the
// length irrelevant, as the paper notes for real x64.
const InstBytes = 4

// DefaultCodeBase is where program text is addressed unless overridden.
const DefaultCodeBase = 0x400000

// Integer register names. R0 is hardwired to zero; R15 is the stack
// pointer by convention (it is what trace records report as %rsp).
const (
	R0 = iota
	R1
	R2
	R3
	R4
	R5
	R6
	R7
	R8
	R9
	R10
	R11
	R12
	R13
	R14
	R15
	NumIntRegs = 16
	// SP is the conventional stack pointer register.
	SP = R15
)

// VecWords is the width of a vector register in 64-bit words. Registers
// are 512 bits wide (zmm-shaped); narrower forms use the low lanes and
// leave the rest untouched, as SSE/AVX do on real hardware.
const VecWords = 8

// Vector register names (X0..X15), each VecWords*64 bits wide.
const (
	X0 = iota
	X1
	X2
	X3
	X4
	X5
	X6
	X7
	X8
	X9
	X10
	X11
	X12
	X13
	X14
	X15
	NumVecRegs = 16
)

// Mask register names (K0..K7), 64 bits each; only the low Lanes bits of
// a mask participate in a masked instruction.
const (
	K0 = iota
	K1
	K2
	K3
	K4
	K5
	K6
	K7
	NumMaskRegs = 8
)

// Inst is one decoded instruction. Register fields are interpreted by
// class: integer ops use integer registers, floating point ops use vector
// registers, and conversions mix the two (documented per opcode).
type Inst struct {
	// Op is the instruction form.
	Op Opcode
	// Rd is the destination register.
	Rd uint8
	// Rs1, Rs2, Rs3 are source registers.
	Rs1, Rs2, Rs3 uint8
	// Imm carries an immediate, displacement, branch target (instruction
	// index), compare predicate, or rounding control, by class.
	Imm int64
	// Sym is the symbol name for callc instructions.
	Sym string
}

// String disassembles the instruction.
func (i Inst) String() string {
	info := i.Op.Info()
	switch info.Class {
	case ClassSys:
		if i.Op == OpCALLC {
			return fmt.Sprintf("callc %s", i.Sym)
		}
		return info.Name
	case ClassInt:
		switch i.Op {
		case OpMOVI:
			return fmt.Sprintf("movi r%d, %d", i.Rd, i.Imm)
		case OpMOV:
			return fmt.Sprintf("mov r%d, r%d", i.Rd, i.Rs1)
		case OpADDI, OpSHLI, OpSHRI:
			return fmt.Sprintf("%s r%d, r%d, %d", info.Name, i.Rd, i.Rs1, i.Imm)
		default:
			return fmt.Sprintf("%s r%d, r%d, r%d", info.Name, i.Rd, i.Rs1, i.Rs2)
		}
	case ClassBranch:
		switch i.Op {
		case OpJMP, OpCALL:
			return fmt.Sprintf("%s %d", info.Name, i.Imm)
		case OpRET:
			return "ret"
		default:
			return fmt.Sprintf("%s r%d, r%d, %d", info.Name, i.Rs1, i.Rs2, i.Imm)
		}
	case ClassMem:
		switch i.Op {
		case OpLD:
			return fmt.Sprintf("ld r%d, [r%d%+d]", i.Rd, i.Rs1, i.Imm)
		case OpST:
			return fmt.Sprintf("st [r%d%+d], r%d", i.Rs1, i.Imm, i.Rs2)
		case OpLDMXCSR, OpSTMXCSR:
			return fmt.Sprintf("%s [r%d%+d]", info.Name, i.Rs1, i.Imm)
		case OpFLD, OpFLDS, OpFLDV, OpFLDVZ:
			return fmt.Sprintf("%s x%d, [r%d%+d]", info.Name, i.Rd, i.Rs1, i.Imm)
		default:
			return fmt.Sprintf("%s [r%d%+d], x%d", info.Name, i.Rs1, i.Imm, i.Rs2)
		}
	case ClassMask:
		if i.Op == OpKMOVRQ {
			return fmt.Sprintf("%s r%d, k%d", info.Name, i.Rd, i.Rs1)
		}
		return fmt.Sprintf("%s k%d, r%d", info.Name, i.Rd, i.Rs1)
	case ClassFMA:
		return fmt.Sprintf("%s x%d, x%d, x%d, x%d", info.Name, i.Rd, i.Rs1, i.Rs2, i.Rs3)
	case ClassFPCompare:
		if i.Op == OpCMPSD || i.Op == OpCMPSS {
			return fmt.Sprintf("%s x%d, x%d, x%d, %d", info.Name, i.Rd, i.Rs1, i.Rs2, i.Imm)
		}
		return fmt.Sprintf("%s r%d, x%d, x%d", info.Name, i.Rd, i.Rs1, i.Rs2)
	case ClassFPConvert:
		switch info.Cvt {
		case CvtSI2SD, CvtSI2SDQ, CvtSI2SS, CvtSI2SSQ:
			return fmt.Sprintf("%s x%d, r%d", info.Name, i.Rd, i.Rs1)
		case CvtSD2SI, CvtTSD2SI, CvtSS2SI, CvtTSS2SI, CvtTSD2SIQ:
			return fmt.Sprintf("%s r%d, x%d", info.Name, i.Rd, i.Rs1)
		default:
			return fmt.Sprintf("%s x%d, x%d", info.Name, i.Rd, i.Rs1)
		}
	case ClassFPRound:
		return fmt.Sprintf("%s x%d, x%d, %d", info.Name, i.Rd, i.Rs1, i.Imm)
	default:
		if info.Masked {
			return fmt.Sprintf("%s x%d, x%d, x%d {k%d}", info.Name, i.Rd, i.Rs1, i.Rs2, i.Rs3)
		}
		return fmt.Sprintf("%s x%d, x%d, x%d", info.Name, i.Rd, i.Rs1, i.Rs2)
	}
}

// DefaultDataBase is where the initialized data segment is loaded.
const DefaultDataBase = 0x100000

// Program is an assembled guest program: a flat instruction sequence with
// a code base address, an initialized data segment, and a human-readable
// name.
type Program struct {
	// Name identifies the program in traces and diagnostics.
	Name string
	// Insts is the instruction sequence.
	Insts []Inst
	// Base is the address of instruction 0.
	Base uint64
	// Data is the initialized data image, loaded at DataBase.
	Data []byte
	// DataBase is the load address of Data.
	DataBase uint64
}

// AddrOf returns the address of the instruction at index.
func (p *Program) AddrOf(index int) uint64 {
	return p.Base + uint64(index)*InstBytes
}

// IndexOf returns the instruction index for an address, or -1 if the
// address is outside the program.
func (p *Program) IndexOf(addr uint64) int {
	if addr < p.Base {
		return -1
	}
	idx := (addr - p.Base) / InstBytes
	if idx >= uint64(len(p.Insts)) || (addr-p.Base)%InstBytes != 0 {
		return -1
	}
	return int(idx)
}

// At returns the instruction at an address, or nil when out of range.
func (p *Program) At(addr uint64) *Inst {
	idx := p.IndexOf(addr)
	if idx < 0 {
		return nil
	}
	return &p.Insts[idx]
}

// Encode produces the synthetic 4-byte encoding of the instruction at
// index, used to fill the "instruction data" field of trace records.
func (p *Program) Encode(index int) [InstBytes]byte {
	i := p.Insts[index]
	return [InstBytes]byte{
		byte(i.Op), byte(i.Op >> 8),
		i.Rd<<4 | i.Rs1&0xF,
		i.Rs2<<4 | i.Rs3&0xF,
	}
}
