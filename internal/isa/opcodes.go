// Package isa defines the instruction set of the simulated x64-subset
// guest machine: a register-based ISA with integer control flow and the
// SSE/AVX/FMA floating point instruction forms observed by the FPSpy
// paper (its Figure 18 lists the forms encountered across the study).
//
// Instructions are fixed-length (4 address units each) purely for
// addressing simplicity; the paper notes x64's variable-length decoding
// is exactly what its single-step trick avoids, and nothing in this
// reproduction depends on instruction length.
package isa

// Opcode identifies an instruction form.
type Opcode uint16

// OpClass groups opcodes by execution behavior.
type OpClass uint8

const (
	// ClassInt covers integer ALU operations.
	ClassInt OpClass = iota
	// ClassBranch covers control transfer.
	ClassBranch
	// ClassMem covers loads and stores.
	ClassMem
	// ClassFPArith covers one- and two-source floating point arithmetic.
	ClassFPArith
	// ClassFMA covers fused multiply-add forms.
	ClassFMA
	// ClassFPConvert covers conversions.
	ClassFPConvert
	// ClassFPCompare covers ordered/unordered compares and predicates.
	ClassFPCompare
	// ClassFPRound covers explicit round-to-integral forms.
	ClassFPRound
	// ClassFPDot covers dot-product forms (dpps).
	ClassFPDot
	// ClassFPMove covers register/lane moves that never raise flags.
	ClassFPMove
	// ClassMask covers mask-register moves (kmov forms); like FP moves
	// they never raise flags and never touch MXCSR.
	ClassMask
	// ClassSys covers halt, nop, syscalls, and libc calls.
	ClassSys
)

// FPOp is the arithmetic operation of a ClassFPArith opcode.
type FPOp uint8

const (
	// FPAdd through FPSqrt select the arithmetic performed by a
	// ClassFPArith instruction.
	FPAdd FPOp = iota
	FPSub
	FPMul
	FPDiv
	FPSqrt
	FPMin
	FPMax
)

// Precision selects the element type of a floating point instruction.
type Precision uint8

const (
	// F64 is binary64 (double precision).
	F64 Precision = iota
	// F32 is binary32 (single precision).
	F32
)

// FMAVariant distinguishes the fused multiply-add sign combinations.
type FMAVariant uint8

const (
	// FMAdd computes a*b + c.
	FMAdd FMAVariant = iota
	// FMSub computes a*b - c.
	FMSub
	// FNMAdd computes -(a*b) + c.
	FNMAdd
	// FNMSub computes -(a*b) - c.
	FNMSub
)

// ConvertKind identifies a conversion form.
type ConvertKind uint8

const (
	// CvtSD2SS narrows f64 to f32.
	CvtSD2SS ConvertKind = iota
	// CvtSS2SD widens f32 to f64.
	CvtSS2SD
	// CvtSI2SD converts int32 to f64.
	CvtSI2SD
	// CvtSI2SDQ converts int64 to f64.
	CvtSI2SDQ
	// CvtSI2SS converts int32 to f32.
	CvtSI2SS
	// CvtSI2SSQ converts int64 to f32.
	CvtSI2SSQ
	// CvtSD2SI converts f64 to int32 with MXCSR rounding.
	CvtSD2SI
	// CvtTSD2SI converts f64 to int32 with truncation.
	CvtTSD2SI
	// CvtSS2SI converts f32 to int32 with MXCSR rounding.
	CvtSS2SI
	// CvtTSS2SI converts f32 to int32 with truncation.
	CvtTSS2SI
	// CvtTSD2SIQ converts f64 to int64 with truncation.
	CvtTSD2SIQ
	// CvtPS2DQ converts packed f32 lanes to packed int32.
	CvtPS2DQ
)

// OpInfo describes an opcode's static properties.
type OpInfo struct {
	// Name is the x64-style mnemonic, e.g. "addsd" or "vfmaddps".
	Name string
	// Class selects the execution path.
	Class OpClass
	// FP is the arithmetic operation for ClassFPArith.
	FP FPOp
	// Prec is the element precision for floating point classes.
	Prec Precision
	// Lanes is the number of elements processed (1 for scalar, 2/4 for
	// 128-bit pd/ps, 4/8 for 256-bit AVX pd/ps).
	Lanes int
	// VEX marks AVX ("v"-prefixed) encodings.
	VEX bool
	// FMA is the variant for ClassFMA.
	FMA FMAVariant
	// Cvt is the conversion kind for ClassFPConvert.
	Cvt ConvertKind
	// Signaling marks comi (vs ucomi) compare forms.
	Signaling bool
	// Masked marks AVX512-style write-masked forms: the mask register is
	// carried in the instruction's Rs3 field, masked-off lanes neither
	// compute nor raise flags and keep the destination's old contents
	// (merge masking), matching SDE's masking-aware accounting.
	Masked bool
}

var opTable []OpInfo

func register(info OpInfo) Opcode {
	opTable = append(opTable, info)
	return Opcode(len(opTable) - 1)
}

// Info returns the static description of an opcode.
func (o Opcode) Info() *OpInfo { return &opTable[o] }

// String returns the mnemonic.
func (o Opcode) String() string { return opTable[o].Name }

// NumOpcodes returns the number of registered opcodes.
func NumOpcodes() int { return len(opTable) }

// OpcodeByName resolves a mnemonic to its opcode; ok is false for
// unknown names.
func OpcodeByName(name string) (Opcode, bool) {
	for i := range opTable {
		if opTable[i].Name == name {
			return Opcode(i), true
		}
	}
	return 0, false
}

func intOp(name string) Opcode {
	return register(OpInfo{Name: name, Class: ClassInt})
}

func branchOp(name string) Opcode {
	return register(OpInfo{Name: name, Class: ClassBranch})
}

func memOp(name string) Opcode {
	return register(OpInfo{Name: name, Class: ClassMem})
}

func sysOp(name string) Opcode {
	return register(OpInfo{Name: name, Class: ClassSys})
}

func fpArith(name string, op FPOp, prec Precision, lanes int, vex bool) Opcode {
	return register(OpInfo{Name: name, Class: ClassFPArith, FP: op, Prec: prec, Lanes: lanes, VEX: vex})
}

func fmaOp(name string, v FMAVariant, prec Precision, lanes int) Opcode {
	return register(OpInfo{Name: name, Class: ClassFMA, FMA: v, Prec: prec, Lanes: lanes, VEX: true})
}

func cvtOp(name string, kind ConvertKind, vex bool, lanes int) Opcode {
	return register(OpInfo{Name: name, Class: ClassFPConvert, Cvt: kind, VEX: vex, Lanes: lanes})
}

func cmpOp(name string, prec Precision, signaling, vex bool) Opcode {
	return register(OpInfo{Name: name, Class: ClassFPCompare, Prec: prec, Signaling: signaling, VEX: vex, Lanes: 1})
}

func roundOp(name string, prec Precision, lanes int, vex bool) Opcode {
	return register(OpInfo{Name: name, Class: ClassFPRound, Prec: prec, Lanes: lanes, VEX: vex})
}

func fpArithMasked(name string, op FPOp, prec Precision, lanes int) Opcode {
	return register(OpInfo{Name: name, Class: ClassFPArith, FP: op, Prec: prec, Lanes: lanes, VEX: true, Masked: true})
}

func maskOp(name string) Opcode {
	return register(OpInfo{Name: name, Class: ClassMask})
}

// Integer and control opcodes.
var (
	OpNOP   = sysOp("nop")
	OpHLT   = sysOp("hlt")
	OpCALLC = sysOp("callc") // call a libc symbol through the dynamic linker

	OpMOVI = intOp("movi") // rd = imm
	OpMOV  = intOp("mov")  // rd = rs1
	OpADD  = intOp("add")
	OpADDI = intOp("addi")
	OpSUB  = intOp("sub")
	OpMULQ = intOp("mulq")
	OpDIVQ = intOp("divq")
	OpREMQ = intOp("remq")
	OpAND  = intOp("and")
	OpOR   = intOp("or")
	OpXOR  = intOp("xor")
	OpSHLI = intOp("shli")
	OpSHRI = intOp("shri")

	OpJMP  = branchOp("jmp")
	OpBEQ  = branchOp("beq")
	OpBNE  = branchOp("bne")
	OpBLT  = branchOp("blt")
	OpBGE  = branchOp("bge")
	OpBLE  = branchOp("ble")
	OpBGT  = branchOp("bgt")
	OpCALL = branchOp("call")
	OpRET  = branchOp("ret")

	OpLD   = memOp("ld")  // rd = mem64[rs1+disp]
	OpST   = memOp("st")  // mem64[rs1+disp] = rs2
	OpFLD  = memOp("fld") // xd.lane0 = mem64[rs1+disp]
	OpFST  = memOp("fst")
	OpFLDS = memOp("flds") // xd.lane0.lo32 = mem32[rs1+disp]
	OpFSTS = memOp("fsts")
	OpFLDV = memOp("fldv") // xd = mem256[rs1+disp]
	OpFSTV = memOp("fstv")

	// OpLDMXCSR and OpSTMXCSR are the SSE control-register access forms:
	// ldmxcsr replaces the whole %mxcsr from mem32[rs1+disp], stmxcsr
	// stores it. They are the application's direct, libc-free channel to
	// the control state FPSpy depends on — the adversarial path the chaos
	// harness uses to stomp FPSpy's masks from guest code.
	OpLDMXCSR = memOp("ldmxcsr") // mxcsr = mem32[rs1+disp]
	OpSTMXCSR = memOp("stmxcsr") // mem32[rs1+disp] = mxcsr
)

// FP move forms (never raise exceptions, even on denormals).
var (
	OpMOVSD  = register(OpInfo{Name: "movsd", Class: ClassFPMove, Prec: F64, Lanes: 1})
	OpMOVSS  = register(OpInfo{Name: "movss", Class: ClassFPMove, Prec: F32, Lanes: 1})
	OpMOVAPD = register(OpInfo{Name: "movapd", Class: ClassFPMove, Prec: F64, Lanes: 4})
	OpMOVQX  = register(OpInfo{Name: "movq", Class: ClassFPMove, Prec: F64, Lanes: 1})  // xd.lane0 = integer rs1
	OpMOVXQ  = register(OpInfo{Name: "movxq", Class: ClassFPMove, Prec: F64, Lanes: 1}) // rd = xs.lane0
)

// SSE scalar arithmetic.
var (
	OpADDSD  = fpArith("addsd", FPAdd, F64, 1, false)
	OpSUBSD  = fpArith("subsd", FPSub, F64, 1, false)
	OpMULSD  = fpArith("mulsd", FPMul, F64, 1, false)
	OpDIVSD  = fpArith("divsd", FPDiv, F64, 1, false)
	OpSQRTSD = fpArith("sqrtsd", FPSqrt, F64, 1, false)
	OpMINSD  = fpArith("minsd", FPMin, F64, 1, false)
	OpMAXSD  = fpArith("maxsd", FPMax, F64, 1, false)
	OpADDSS  = fpArith("addss", FPAdd, F32, 1, false)
	OpSUBSS  = fpArith("subss", FPSub, F32, 1, false)
	OpMULSS  = fpArith("mulss", FPMul, F32, 1, false)
	OpDIVSS  = fpArith("divss", FPDiv, F32, 1, false)
	OpSQRTSS = fpArith("sqrtss", FPSqrt, F32, 1, false)
	OpMINSS  = fpArith("minss", FPMin, F32, 1, false)
	OpMAXSS  = fpArith("maxss", FPMax, F32, 1, false)
)

// SSE packed (128-bit) arithmetic.
var (
	OpADDPD  = fpArith("addpd", FPAdd, F64, 2, false)
	OpSUBPD  = fpArith("subpd", FPSub, F64, 2, false)
	OpMULPD  = fpArith("mulpd", FPMul, F64, 2, false)
	OpDIVPD  = fpArith("divpd", FPDiv, F64, 2, false)
	OpSQRTPD = fpArith("sqrtpd", FPSqrt, F64, 2, false)
	OpMINPD  = fpArith("minpd", FPMin, F64, 2, false)
	OpMAXPD  = fpArith("maxpd", FPMax, F64, 2, false)
	OpADDPS  = fpArith("addps", FPAdd, F32, 4, false)
	OpSUBPS  = fpArith("subps", FPSub, F32, 4, false)
	OpMULPS  = fpArith("mulps", FPMul, F32, 4, false)
	OpDIVPS  = fpArith("divps", FPDiv, F32, 4, false)
	OpSQRTPS = fpArith("sqrtps", FPSqrt, F32, 4, false)
	OpMINPS  = fpArith("minps", FPMin, F32, 4, false)
	OpMAXPS  = fpArith("maxps", FPMax, F32, 4, false)
)

// AVX (256-bit packed, plus VEX scalar) arithmetic — the forms GROMACS's
// kernels lean on in the paper.
var (
	OpVADDPD  = fpArith("vaddpd", FPAdd, F64, 4, true)
	OpVSUBPD  = fpArith("vsubpd", FPSub, F64, 4, true)
	OpVMULPD  = fpArith("vmulpd", FPMul, F64, 4, true)
	OpVDIVPD  = fpArith("vdivpd", FPDiv, F64, 4, true)
	OpVADDPS  = fpArith("vaddps", FPAdd, F32, 8, true)
	OpVSUBPS  = fpArith("vsubps", FPSub, F32, 8, true)
	OpVMULPS  = fpArith("vmulps", FPMul, F32, 8, true)
	OpVDIVPS  = fpArith("vdivps", FPDiv, F32, 8, true)
	OpVADDSS  = fpArith("vaddss", FPAdd, F32, 1, true)
	OpVSUBSS  = fpArith("vsubss", FPSub, F32, 1, true)
	OpVMULSS  = fpArith("vmulss", FPMul, F32, 1, true)
	OpVDIVSS  = fpArith("vdivss", FPDiv, F32, 1, true)
	OpVSQRTSS = fpArith("vsqrtss", FPSqrt, F32, 1, true)
	OpVSQRTSD = fpArith("vsqrtsd", FPSqrt, F64, 1, true)
	OpVADDSD  = fpArith("vaddsd", FPAdd, F64, 1, true)
	OpVSUBSD  = fpArith("vsubsd", FPSub, F64, 1, true)
	OpVMULSD  = fpArith("vmulsd", FPMul, F64, 1, true)
	OpVDIVSD  = fpArith("vdivsd", FPDiv, F64, 1, true)
)

// FMA forms.
var (
	OpVFMADDSD  = fmaOp("vfmaddsd", FMAdd, F64, 1)
	OpVFMADDSS  = fmaOp("vfmaddss", FMAdd, F32, 1)
	OpVFMADDPD  = fmaOp("vfmaddpd", FMAdd, F64, 4)
	OpVFMADDPS  = fmaOp("vfmaddps", FMAdd, F32, 8)
	OpVFMSUBSS  = fmaOp("vfmsubss", FMSub, F32, 1)
	OpVFMSUBPS  = fmaOp("vfmsubps", FMSub, F32, 8)
	OpVFNMADDSS = fmaOp("vfnmaddss", FNMAdd, F32, 1)
	OpVFNMADDPS = fmaOp("vfnmaddps", FNMAdd, F32, 8)
	OpVFNMSUBSD = fmaOp("vfnmsubsd", FNMSub, F64, 1)
)

// Conversions.
var (
	OpCVTSD2SS   = cvtOp("cvtsd2ss", CvtSD2SS, false, 1)
	OpCVTSS2SD   = cvtOp("cvtss2sd", CvtSS2SD, false, 1)
	OpCVTSI2SD   = cvtOp("cvtsi2sd", CvtSI2SD, false, 1)
	OpCVTSI2SDQ  = cvtOp("cvtsi2sdq", CvtSI2SDQ, false, 1)
	OpCVTSI2SS   = cvtOp("cvtsi2ss", CvtSI2SS, false, 1)
	OpCVTSD2SI   = cvtOp("cvtsd2si", CvtSD2SI, false, 1)
	OpCVTTSD2SI  = cvtOp("cvttsd2si", CvtTSD2SI, false, 1)
	OpCVTSS2SI   = cvtOp("cvtss2si", CvtSS2SI, false, 1)
	OpCVTTSS2SI  = cvtOp("cvttss2si", CvtTSS2SI, false, 1)
	OpCVTTSD2SIQ = cvtOp("cvttsd2siq", CvtTSD2SIQ, false, 1)
	OpVCVTSD2SS  = cvtOp("vcvtsd2ss", CvtSD2SS, true, 1)
	OpVCVTTSS2SI = cvtOp("vcvttss2si", CvtTSS2SI, true, 1)
	OpVCVTPS2DQ  = cvtOp("vcvtps2dq", CvtPS2DQ, true, 8)
)

// Compares.
var (
	OpUCOMISD  = cmpOp("ucomisd", F64, false, false)
	OpUCOMISS  = cmpOp("ucomiss", F32, false, false)
	OpCOMISD   = cmpOp("comisd", F64, true, false)
	OpCOMISS   = cmpOp("comiss", F32, true, false)
	OpVUCOMISS = cmpOp("vucomiss", F32, false, true)
	OpCMPSD    = register(OpInfo{Name: "cmpsd", Class: ClassFPCompare, Prec: F64, Lanes: 1})
	OpCMPSS    = register(OpInfo{Name: "cmpss", Class: ClassFPCompare, Prec: F32, Lanes: 1})
)

// Round-to-integral forms.
var (
	OpROUNDSD  = roundOp("roundsd", F64, 1, false)
	OpROUNDSS  = roundOp("roundss", F32, 1, false)
	OpROUNDPD  = roundOp("roundpd", F64, 2, false)
	OpROUNDPS  = roundOp("roundps", F32, 4, false)
	OpVROUNDPS = roundOp("vroundps", F32, 8, true)
)

// Dot product.
var (
	OpVDPPS = register(OpInfo{Name: "vdpps", Class: ClassFPDot, Prec: F32, Lanes: 8, VEX: true})
	OpDPPS  = register(OpInfo{Name: "dpps", Class: ClassFPDot, Prec: F32, Lanes: 4})
)

// AVX512-shaped 512-bit packed arithmetic ("z" suffix: zmm-width). The
// paper's study predates AVX512-heavy builds, but SDE's FLOP accounting
// (which these counters mirror) is defined in terms of these widths and
// their write masks, so the batch path models them: 8 f64 lanes or 16
// f32 lanes per instruction.
var (
	OpVADDPDZ  = fpArith("vaddpdz", FPAdd, F64, 8, true)
	OpVSUBPDZ  = fpArith("vsubpdz", FPSub, F64, 8, true)
	OpVMULPDZ  = fpArith("vmulpdz", FPMul, F64, 8, true)
	OpVDIVPDZ  = fpArith("vdivpdz", FPDiv, F64, 8, true)
	OpVSQRTPDZ = fpArith("vsqrtpdz", FPSqrt, F64, 8, true)
	OpVMINPDZ  = fpArith("vminpdz", FPMin, F64, 8, true)
	OpVMAXPDZ  = fpArith("vmaxpdz", FPMax, F64, 8, true)
	OpVADDPSZ  = fpArith("vaddpsz", FPAdd, F32, 16, true)
	OpVSUBPSZ  = fpArith("vsubpsz", FPSub, F32, 16, true)
	OpVMULPSZ  = fpArith("vmulpsz", FPMul, F32, 16, true)
	OpVDIVPSZ  = fpArith("vdivpsz", FPDiv, F32, 16, true)
	OpVSQRTPSZ = fpArith("vsqrtpsz", FPSqrt, F32, 16, true)
	OpVMINPSZ  = fpArith("vminpsz", FPMin, F32, 16, true)
	OpVMAXPSZ  = fpArith("vmaxpsz", FPMax, F32, 16, true)

	OpVFMADDPDZ = fmaOp("vfmaddpdz", FMAdd, F64, 8)
	OpVFMADDPSZ = fmaOp("vfmaddpsz", FMAdd, F32, 16)
)

// Write-masked 512-bit arithmetic ("k" suffix). The mask register rides
// in Rs3 (unused by two-source arithmetic), so the 4-byte encoding and
// its round-trip properties are unchanged. Masked-off lanes neither
// compute nor raise exceptions and keep the old destination lane.
var (
	OpVADDPDKZ  = fpArithMasked("vaddpdzk", FPAdd, F64, 8)
	OpVSUBPDKZ  = fpArithMasked("vsubpdzk", FPSub, F64, 8)
	OpVMULPDKZ  = fpArithMasked("vmulpdzk", FPMul, F64, 8)
	OpVDIVPDKZ  = fpArithMasked("vdivpdzk", FPDiv, F64, 8)
	OpVSQRTPDKZ = fpArithMasked("vsqrtpdzk", FPSqrt, F64, 8)
	OpVMINPDKZ  = fpArithMasked("vminpdzk", FPMin, F64, 8)
	OpVMAXPDKZ  = fpArithMasked("vmaxpdzk", FPMax, F64, 8)
	OpVADDPSKZ  = fpArithMasked("vaddpszk", FPAdd, F32, 16)
	OpVSUBPSKZ  = fpArithMasked("vsubpszk", FPSub, F32, 16)
	OpVMULPSKZ  = fpArithMasked("vmulpszk", FPMul, F32, 16)
	OpVDIVPSKZ  = fpArithMasked("vdivpszk", FPDiv, F32, 16)
	OpVSQRTPSKZ = fpArithMasked("vsqrtpszk", FPSqrt, F32, 16)
	OpVMINPSKZ  = fpArithMasked("vminpszk", FPMin, F32, 16)
	OpVMAXPSKZ  = fpArithMasked("vmaxpszk", FPMax, F32, 16)
)

// 512-bit vector load/store and mask-register moves.
var (
	OpFLDVZ = memOp("fldvz") // xd = mem512[rs1+disp]
	OpFSTVZ = memOp("fstvz") // mem512[rs1+disp] = xs2

	OpKMOVQ  = maskOp("kmovq")  // kd = rs1
	OpKMOVRQ = maskOp("kmovrq") // rd = ks1
)
