package trace

import (
	"bytes"
	"testing"
	"testing/quick"

	"repro/internal/softfloat"
)

func TestRecordRoundTrip(t *testing.T) {
	f := func(time, rip, rsp, seq uint64, mx, tid uint32, op uint16, ev, raised uint8) bool {
		in := Record{
			Time: time, Rip: rip, Rsp: rsp, Seq: seq,
			MXCSR: mx, TID: tid, Opcode: op,
			Event:  softfloat.Flags(ev) & 0x3F,
			Raised: softfloat.Flags(raised) & 0x3F,
		}
		copy(in.InstrWord[:], []byte{1, 2, 3, 4, 5, 6, 7, 8})
		var buf [RecordSize]byte
		in.Encode(buf[:])
		var out Record
		out.Decode(buf[:])
		return in == out
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Fatal(err)
	}
}

func TestWriterBuffersAndFlushes(t *testing.T) {
	var sink bytes.Buffer
	w := NewWriter(&sink)
	const n = 1000
	for i := 0; i < n; i++ {
		if err := w.Append(&Record{Seq: uint64(i), TID: 7}); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	recs, err := Decode(sink.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != n {
		t.Fatalf("decoded %d records, want %d", len(recs), n)
	}
	for i, r := range recs {
		if r.Seq != uint64(i) || r.TID != 7 {
			t.Fatalf("record %d = %+v", i, r)
		}
	}
	if w.Count != n {
		t.Errorf("count = %d", w.Count)
	}
}

func TestDecodeRejectsTruncated(t *testing.T) {
	if _, err := Decode(make([]byte, RecordSize+1)); err == nil {
		t.Error("no error for truncated image")
	}
}

func TestAggregateString(t *testing.T) {
	a := Aggregate{PID: 10, TID: 20, Flags: softfloat.FlagInexact | softfloat.FlagInvalid, Instructions: 5}
	s := a.String()
	if s == "" || a.Aborted {
		t.Fatal("bad aggregate")
	}
	b := Aggregate{Aborted: true}
	if b.String() == s {
		t.Error("aborted not distinguished")
	}
}

func TestRecordRender(t *testing.T) {
	r := Record{Time: 5, TID: 7, Seq: 2, Rip: 0x400010, Rsp: 0xFF00,
		Event: softfloat.FlagDivideByZero, Raised: softfloat.FlagDivideByZero | softfloat.FlagInexact}
	s := r.Render("divsd")
	for _, want := range []string{"divsd", "tid=7", "rip=0x400010", "event=ZE", "raised=ZE|PE"} {
		if !bytes.Contains([]byte(s), []byte(want)) {
			t.Errorf("render %q missing %q", s, want)
		}
	}
}
