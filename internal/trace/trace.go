// Package trace implements FPSpy's trace formats: fixed-size binary
// individual-mode records designed for bulk analysis (the paper mmap()s
// them into analysis programs), and one-line human-readable
// aggregate-mode records. Records are self-describing and order-free, as
// the paper requires for scalable logging — the only I/O operation needed
// is an append.
package trace

import (
	"encoding/binary"
	"fmt"
	"io"

	"repro/internal/softfloat"
)

// RecordSize is the encoded size of one individual-mode record.
const RecordSize = 64

// Record is one individual-mode trace record: the full context of a
// floating point event, as captured by FPSpy's SIGFPE handler.
type Record struct {
	// Time is the event timestamp in cycles.
	Time uint64
	// Rip is the faulting instruction address.
	Rip uint64
	// Rsp is the stack pointer at the fault.
	Rsp uint64
	// InstrWord is the instruction encoding at Rip.
	InstrWord [8]byte
	// MXCSR is the control/status register at the fault.
	MXCSR uint32
	// TID is the faulting thread.
	TID uint32
	// Seq is the per-thread sequence number.
	Seq uint64
	// Event is the delivered (priority-encoded) exception.
	Event softfloat.Flags
	// Raised is the full set of condition codes the instruction set.
	Raised softfloat.Flags
	// Opcode is the decoded instruction form identifier (the analysis
	// scripts decode instruction bytes; the simulator shortcuts that).
	Opcode uint16
}

// Encode serializes the record into buf, which must hold RecordSize
// bytes.
func (r *Record) Encode(buf []byte) {
	le := binary.LittleEndian
	le.PutUint64(buf[0:], r.Time)
	le.PutUint64(buf[8:], r.Rip)
	le.PutUint64(buf[16:], r.Rsp)
	copy(buf[24:32], r.InstrWord[:])
	le.PutUint32(buf[32:], r.MXCSR)
	le.PutUint32(buf[36:], r.TID)
	le.PutUint64(buf[40:], r.Seq)
	le.PutUint32(buf[48:], uint32(r.Event))
	le.PutUint32(buf[52:], uint32(r.Raised))
	le.PutUint16(buf[56:], r.Opcode)
	le.PutUint16(buf[58:], 0)
	le.PutUint32(buf[60:], 0)
}

// Decode deserializes a record from buf.
func (r *Record) Decode(buf []byte) {
	le := binary.LittleEndian
	r.Time = le.Uint64(buf[0:])
	r.Rip = le.Uint64(buf[8:])
	r.Rsp = le.Uint64(buf[16:])
	copy(r.InstrWord[:], buf[24:32])
	r.MXCSR = le.Uint32(buf[32:])
	r.TID = le.Uint32(buf[36:])
	r.Seq = le.Uint64(buf[40:])
	r.Event = softfloat.Flags(le.Uint32(buf[48:]))
	r.Raised = softfloat.Flags(le.Uint32(buf[52:]))
	r.Opcode = le.Uint16(buf[56:])
}

// Writer appends records to an underlying stream with buffering.
type Writer struct {
	w   io.Writer
	buf []byte
	n   int
	// Count is the number of records appended.
	Count uint64
}

// NewWriter creates a buffered record writer.
func NewWriter(w io.Writer) *Writer {
	return &Writer{w: w, buf: make([]byte, 256*RecordSize)}
}

// Append buffers one record, flushing as needed.
func (w *Writer) Append(r *Record) error {
	if w.n+RecordSize > len(w.buf) {
		if err := w.Flush(); err != nil {
			return err
		}
	}
	r.Encode(w.buf[w.n:])
	w.n += RecordSize
	w.Count++
	return nil
}

// Flush writes buffered records to the underlying stream.
func (w *Writer) Flush() error {
	if w.n == 0 {
		return nil
	}
	_, err := w.w.Write(w.buf[:w.n])
	w.n = 0
	return err
}

// Decode parses a full trace image into records.
func Decode(data []byte) ([]Record, error) {
	if len(data)%RecordSize != 0 {
		return nil, fmt.Errorf("trace: image size %d not a multiple of %d", len(data), RecordSize)
	}
	recs := make([]Record, len(data)/RecordSize)
	for i := range recs {
		recs[i].Decode(data[i*RecordSize:])
	}
	return recs, nil
}

// Render writes the human-readable form of a record, as produced by the
// paper's decoding scripts.
func (r *Record) Render(mnemonic string) string {
	return fmt.Sprintf("t=%d tid=%d seq=%d rip=%#x rsp=%#x %s event=%v raised=%v mxcsr=%#06x",
		r.Time, r.TID, r.Seq, r.Rip, r.Rsp, mnemonic, r.Event, r.Raised, r.MXCSR)
}

// Aggregate is an aggregate-mode trace record: one line per thread giving
// the sticky condition codes observed over the thread's lifetime.
type Aggregate struct {
	// PID and TID identify the thread.
	PID, TID int
	// Flags is the final sticky condition-code set.
	Flags softfloat.Flags
	// Instructions is the thread's retired instruction count.
	Instructions uint64
	// Aborted marks traces where FPSpy got out of the way mid-run.
	Aborted bool
	// Reason is the typed abort/demotion reason when the record comes
	// from a degraded run ("" for clean runs).
	Reason string
}

// String renders the aggregate record in its human-readable single-line
// form.
func (a Aggregate) String() string {
	status := "complete"
	if a.Aborted {
		status = "aborted"
	}
	s := fmt.Sprintf("pid=%d tid=%d conditions=%v instructions=%d status=%s",
		a.PID, a.TID, a.Flags, a.Instructions, status)
	if a.Reason != "" {
		s += " reason=" + a.Reason
	}
	return s
}
