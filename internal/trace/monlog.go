package trace

import (
	"fmt"
	"strconv"
	"strings"
)

// MonitorEventKind classifies monitor-log entries.
type MonitorEventKind string

const (
	// EventAbort records a transition into the detached state: FPSpy got
	// out of the way.
	EventAbort MonitorEventKind = "abort"
	// EventDemote records a degradation that keeps FPSpy attached in a
	// cheaper mode (individual -> aggregate, the trap-storm watchdog).
	EventDemote MonitorEventKind = "demote"
	// EventSignalFight records the application attempting to install a
	// handler for a signal FPSpy owns while aggressive mode absorbed it.
	EventSignalFight MonitorEventKind = "signal-fight"
	// EventReassert records FPSpy re-asserting its MXCSR mask state after
	// the guest stomped it (aggressive mode only).
	EventReassert MonitorEventKind = "reassert"
)

// MonitorEvent is one entry of FPSpy's monitor log: the robustness
// side-channel recording degradations, aborts with their typed reasons,
// and signal-interposition conflicts. The log is a line-oriented text
// format so it survives partial writes and is trivially greppable, in the
// same spirit as the aggregate-mode records.
type MonitorEvent struct {
	// Time is the kernel cycle clock at the event.
	Time uint64
	// PID and TID locate the event; TID is 0 for process-wide events.
	PID, TID int
	// Kind classifies the event.
	Kind MonitorEventKind
	// From and To are degradation states for abort/demote events.
	From, To string
	// Reason is the typed abort reason for abort/demote events.
	Reason string
	// Signal names the contested signal for signal-fight/reassert events.
	Signal string
	// Count is the cumulative attempt count for signal-fight events.
	Count uint64
}

// String renders the event as one log line.
func (e MonitorEvent) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "t=%d pid=%d tid=%d kind=%s", e.Time, e.PID, e.TID, e.Kind)
	if e.From != "" {
		fmt.Fprintf(&sb, " from=%s", e.From)
	}
	if e.To != "" {
		fmt.Fprintf(&sb, " to=%s", e.To)
	}
	if e.Reason != "" {
		fmt.Fprintf(&sb, " reason=%s", e.Reason)
	}
	if e.Signal != "" {
		fmt.Fprintf(&sb, " sig=%s", e.Signal)
	}
	if e.Count != 0 {
		fmt.Fprintf(&sb, " count=%d", e.Count)
	}
	return sb.String()
}

// RenderMonitorLog serializes events into the on-disk log form, one line
// per event.
func RenderMonitorLog(evs []MonitorEvent) string {
	var sb strings.Builder
	for _, e := range evs {
		sb.WriteString(e.String())
		sb.WriteByte('\n')
	}
	return sb.String()
}

// ParseMonitorLog parses a rendered monitor log. Blank lines are skipped;
// unknown fields are an error so format drift is caught loudly.
func ParseMonitorLog(data []byte) ([]MonitorEvent, error) {
	var evs []MonitorEvent
	for ln, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		var e MonitorEvent
		for _, tok := range strings.Fields(line) {
			key, val, ok := strings.Cut(tok, "=")
			if !ok {
				return nil, fmt.Errorf("trace: monitor log line %d: bad token %q", ln+1, tok)
			}
			var err error
			switch key {
			case "t":
				e.Time, err = strconv.ParseUint(val, 10, 64)
			case "pid":
				e.PID, err = strconv.Atoi(val)
			case "tid":
				e.TID, err = strconv.Atoi(val)
			case "kind":
				e.Kind = MonitorEventKind(val)
			case "from":
				e.From = val
			case "to":
				e.To = val
			case "reason":
				e.Reason = val
			case "sig":
				e.Signal = val
			case "count":
				e.Count, err = strconv.ParseUint(val, 10, 64)
			default:
				return nil, fmt.Errorf("trace: monitor log line %d: unknown field %q", ln+1, key)
			}
			if err != nil {
				return nil, fmt.Errorf("trace: monitor log line %d: field %q: %v", ln+1, key, err)
			}
		}
		if e.Kind == "" {
			return nil, fmt.Errorf("trace: monitor log line %d: missing kind", ln+1)
		}
		evs = append(evs, e)
	}
	return evs, nil
}
