package trace

import (
	"reflect"
	"testing"
)

func TestMonitorLogRoundTrip(t *testing.T) {
	evs := []MonitorEvent{
		{Time: 120, PID: 1000, TID: 1001, Kind: EventAbort,
			From: "individual", To: "detached", Reason: "fe-access"},
		{Time: 900, PID: 1000, TID: 1002, Kind: EventDemote,
			From: "individual", To: "aggregate", Reason: "trap-storm"},
		{Time: 77, PID: 1001, Kind: EventSignalFight, Signal: "SIGFPE", Count: 3},
		{Time: 42, PID: 1002, TID: 1005, Kind: EventReassert, Signal: "SIGFPE"},
	}
	back, err := ParseMonitorLog([]byte(RenderMonitorLog(evs)))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(evs, back) {
		t.Errorf("round trip mismatch:\n got %+v\nwant %+v", back, evs)
	}
}

func TestMonitorLogParseErrors(t *testing.T) {
	for _, bad := range []string{
		"t=1 pid=2 bogus",         // token without =
		"t=1 pid=2 color=red",     // unknown field
		"t=zap pid=2 kind=abort",  // bad integer
		"t=1 pid=2 tid=3 from=in", // missing kind
	} {
		if _, err := ParseMonitorLog([]byte(bad)); err == nil {
			t.Errorf("ParseMonitorLog(%q): expected error", bad)
		}
	}
	// Blank lines are fine.
	evs, err := ParseMonitorLog([]byte("\n\n"))
	if err != nil || len(evs) != 0 {
		t.Errorf("blank log: evs=%v err=%v", evs, err)
	}
}

func TestAggregateStringWithReason(t *testing.T) {
	a := Aggregate{PID: 1, TID: 2, Instructions: 10, Reason: "trap-storm"}
	if got := a.String(); got != "pid=1 tid=2 conditions=- instructions=10 status=complete reason=trap-storm" {
		t.Errorf("unexpected render: %q", got)
	}
}
