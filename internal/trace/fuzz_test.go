package trace

import (
	"bytes"
	"testing"
)

// FuzzDecode exercises the trace parser against arbitrary images: it
// must never panic, and any image it accepts must round-trip.
func FuzzDecode(f *testing.F) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	for i := 0; i < 3; i++ {
		_ = w.Append(&Record{Seq: uint64(i), Rip: 0x400000, TID: 9})
	}
	_ = w.Flush()
	f.Add(buf.Bytes())
	f.Add([]byte{})
	f.Add(make([]byte, RecordSize-1))
	f.Add(make([]byte, RecordSize+3))

	f.Fuzz(func(t *testing.T, data []byte) {
		recs, err := Decode(data)
		if err != nil {
			return
		}
		if len(recs) != len(data)/RecordSize {
			t.Fatalf("decoded %d records from %d bytes", len(recs), len(data))
		}
		// Re-encode: must reproduce the accepted image except for the
		// reserved padding bytes, which Encode zeroes.
		for i := range recs {
			var out [RecordSize]byte
			recs[i].Encode(out[:])
			in := data[i*RecordSize : (i+1)*RecordSize]
			// Compare everything below the pad region (bytes 58..64 are
			// reserved and not round-tripped).
			if !bytes.Equal(out[:58], in[:58]) {
				t.Fatalf("record %d did not round trip", i)
			}
		}
	})
}
