package trace

import (
	"bytes"
	"reflect"
	"testing"
)

// FuzzDecode exercises the trace parser against arbitrary images: it
// must never panic, and any image it accepts must round-trip.
func FuzzDecode(f *testing.F) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	for i := 0; i < 3; i++ {
		_ = w.Append(&Record{Seq: uint64(i), Rip: 0x400000, TID: 9})
	}
	_ = w.Flush()
	f.Add(buf.Bytes())
	f.Add([]byte{})
	f.Add(make([]byte, RecordSize-1))
	f.Add(make([]byte, RecordSize+3))

	f.Fuzz(func(t *testing.T, data []byte) {
		recs, err := Decode(data)
		if err != nil {
			return
		}
		if len(recs) != len(data)/RecordSize {
			t.Fatalf("decoded %d records from %d bytes", len(recs), len(data))
		}
		// Re-encode: must reproduce the accepted image except for the
		// reserved padding bytes, which Encode zeroes.
		for i := range recs {
			var out [RecordSize]byte
			recs[i].Encode(out[:])
			in := data[i*RecordSize : (i+1)*RecordSize]
			// Compare everything below the pad region (bytes 58..64 are
			// reserved and not round-tripped).
			if !bytes.Equal(out[:58], in[:58]) {
				t.Fatalf("record %d did not round trip", i)
			}
		}
	})
}

// FuzzMonLogRoundTrip exercises the monitor-log parser against arbitrary
// text: it must never panic, malformed input must error (not crash), and
// any log it accepts must reach a render/parse fixpoint — re-rendering
// the parsed events and parsing again yields the same events and the
// same text.
func FuzzMonLogRoundTrip(f *testing.F) {
	f.Add(RenderMonitorLog([]MonitorEvent{
		{Time: 12, PID: 3, Kind: EventAbort, From: "individual", To: "detached", Reason: "trap-storm"},
		{Time: 99, PID: 3, TID: 7, Kind: EventReassert, Signal: "SIGFPE", Reason: "mask-stomp"},
		{Time: 120, PID: 3, Kind: EventSignalFight, Signal: "SIGTRAP", Count: 4},
	}))
	f.Add("t=1 pid=2 tid=3 kind=demote from=individual to=aggregate reason=storm\n")
	f.Add("")
	f.Add("\n\n\n")
	f.Add("kind=abort")
	f.Add("t=notanumber kind=abort")
	f.Add("bare-token kind=abort")
	f.Add("t=1 pid=2 unknown=field kind=abort")
	f.Add("t=1 pid=2\n")
	f.Add("kind=a=b count=18446744073709551615")
	f.Add("t=-1 kind=x")

	f.Fuzz(func(t *testing.T, data string) {
		evs, err := ParseMonitorLog([]byte(data))
		if err != nil {
			return
		}
		rendered := RenderMonitorLog(evs)
		evs2, err := ParseMonitorLog([]byte(rendered))
		if err != nil {
			t.Fatalf("accepted log failed to re-parse after render: %v\nrendered:\n%s", err, rendered)
		}
		if !reflect.DeepEqual(evs, evs2) {
			t.Fatalf("render/parse fixpoint violated:\n first: %#v\nsecond: %#v", evs, evs2)
		}
		if again := RenderMonitorLog(evs2); again != rendered {
			t.Fatalf("render not stable:\n first: %q\nsecond: %q", rendered, again)
		}
	})
}
