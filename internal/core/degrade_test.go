package core

import (
	"math/rand"
	"testing"
)

// TestPeriodVirtualTimerScalesByInstructionCost pins the fix for the
// virtual-timer branch of period(): virtual time advances in retired
// instructions, so the microsecond budget must be converted through the
// cost model's cycles-per-instruction. Before the fix the branch
// computed the same cycle count as the real timer, making virtual
// periods instCost times too long under non-unit cost models.
func TestPeriodVirtualTimerScalesByInstructionCost(t *testing.T) {
	s := &Spy{cfg: Config{VirtualTimer: true}, instCost: 3}
	ts := &threadState{}
	if got, want := s.period(ts, 10), uint64(10*CyclesPerMicrosecond/3); got != want {
		t.Errorf("virtual period at 3 cycles/inst = %d, want %d", got, want)
	}
	s.cfg.VirtualTimer = false
	if got, want := s.period(ts, 10), uint64(10*CyclesPerMicrosecond); got != want {
		t.Errorf("real period = %d, want %d", got, want)
	}
	// Under the default unit cost model the two time bases coincide,
	// which is what kept the dead branch unnoticed.
	s.instCost = 1
	realPeriod := s.period(ts, 10)
	s.cfg.VirtualTimer = true
	if virt := s.period(ts, 10); virt != realPeriod {
		t.Errorf("unit cost model: virtual %d != real %d", virt, realPeriod)
	}
}

// TestPeriodPoissonVirtualNeverZero: exponential draws can shrink the
// instruction budget below one; the sampler must still re-arm.
func TestPeriodPoissonVirtualNeverZero(t *testing.T) {
	s := &Spy{cfg: Config{VirtualTimer: true, Poisson: true}, instCost: 2100}
	ts := &threadState{rng: rand.New(rand.NewSource(7))}
	for i := 0; i < 1000; i++ {
		if s.period(ts, 1) == 0 {
			t.Fatal("Poisson virtual period rounded to zero")
		}
	}
}
