// Package core implements FPSpy: the paper's tool for spying on the
// floating point behavior of existing, unmodified binaries. It is built
// as an LD_PRELOAD object for the simulated kernel and is configured
// entirely through environment variables, exactly as the paper's Figure 2
// describes:
//
//	LD_PRELOAD       add FPSpy to the run (handled by the linker)
//	FPE_MODE         "aggregate" or "individual"
//	FPE_AGGRESSIVE   "yes": do not step aside when the application uses
//	                 SIGTRAP/SIGFPE/the alarm signal only incidentally
//	FPE_DISABLE      "yes": load but do nothing
//	FPE_EXCEPT_LIST  comma-separated subset of events to capture
//	FPE_MAXCOUNT     per-thread cap on recorded events
//	FPE_SAMPLE       "N" record every Nth event, or "on:off" temporal
//	                 sampling period means in microseconds
//	FPE_POISSON      "yes": draw on/off periods from an exponential
//	                 distribution (PASTA sampling)
//	FPE_TIMER        "real" or "virtual" time for temporal sampling
//	FPE_STORM        "N:C" trap-storm watchdog: demote to aggregate mode
//	                 when a thread takes N faults within C cycles
//	FPE_NOPRUNE      "yes": disable static trap-site pruning (ablation)
//	FPE_NOSUPERBLOCK "yes": disable the superblock region cache and run
//	                 the fast path per-instruction (ablation)
//	FPE_SHADOW       shadow-precision channel: recompute every FP op at
//	                 N mantissa bits and attribute rounding error per
//	                 site (0/unset disables)
package core

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/softfloat"
)

// Mode selects FPSpy's operating mode.
type Mode uint8

const (
	// ModeAggregate uses only the sticky condition codes: one record per
	// thread, virtually no overhead.
	ModeAggregate Mode = iota
	// ModeIndividual unmasks exceptions and captures a record per
	// faulting instruction via the trap-and-single-step state machine.
	ModeIndividual
)

// String names the mode as the environment variable spells it.
func (m Mode) String() string {
	if m == ModeAggregate {
		return "aggregate"
	}
	return "individual"
}

// AllEvents is the full set of observable conditions.
const AllEvents = softfloat.Flags(0x3F)

// Config is FPSpy's parsed configuration.
type Config struct {
	// Mode is the operating mode.
	Mode Mode
	// Disable makes FPSpy inert.
	Disable bool
	// Aggressive keeps FPSpy attached when the application merely hooks
	// the signals FPSpy uses.
	Aggressive bool
	// ExceptList is the set of events to capture (individual mode).
	ExceptList softfloat.Flags
	// MaxCount, when nonzero, disables capture on a thread after this
	// many recorded events.
	MaxCount uint64
	// SampleEvery, when nonzero, records only every Nth faulting event.
	SampleEvery uint64
	// SampleOnUS/SampleOffUS, when nonzero, enable temporal sampling
	// with the given mean on/off periods in microseconds.
	SampleOnUS, SampleOffUS uint64
	// Poisson draws the on/off periods from an exponential distribution.
	Poisson bool
	// VirtualTimer selects instruction time over real time for the
	// temporal sampler.
	VirtualTimer bool
	// Breakpoints selects the Section 3.8 alternative single-event
	// mechanism: instead of TF single-stepping, the next instruction is
	// stubbed with an invalid opcode and restored on the SIGILL. (An
	// extension beyond the paper's implementation, which describes the
	// approach for architectures without a convenient trap flag.)
	Breakpoints bool
	// StormFaults/StormCycles, when nonzero, arm the trap-storm watchdog:
	// a thread taking StormFaults SIGFPEs within a StormCycles window
	// demotes the whole process to aggregate mode.
	StormFaults, StormCycles uint64
	// NoPrune disables static trap-site pruning in individual mode (the
	// ablation knob for the abstract-interpretation verdicts; compare
	// NoFastPath on the kernel side). Pruned and unpruned runs are
	// bit-identical — this exists for differential testing and for
	// measuring the pruning speedup.
	NoPrune bool
	// NoSuperblock disables the machine's superblock region cache while
	// keeping the batched fast path (the FPE_NOSUPERBLOCK ablation;
	// compare NoFastPath, which disables batching entirely). Cached and
	// uncached runs are bit-identical — this exists for differential
	// testing and for measuring the superblock speedup.
	NoSuperblock bool
	// ShadowPrec, when nonzero, attaches a shadow-precision channel
	// (internal/shadow) to every monitored thread's machine: each retired
	// FP instruction is recomputed in ShadowPrec-bit big.Float arithmetic
	// and its rounding error attributed to the instruction site. 0 (the
	// default) disables shadowing; the guest's architectural results are
	// bit-identical either way — the channel only observes.
	ShadowPrec uint64
}

// Shadow precision bounds (mantissa bits). The floor is binary32's 24 so
// a shadow can emulate any native format exactly; the ceiling keeps a
// pathological FPE_SHADOW from allocating multi-kilobyte mantissas per
// lane.
const (
	MinShadowPrec = 24
	MaxShadowPrec = 4096
)

// eventNames maps FPE_EXCEPT_LIST tokens to condition flags.
var eventNames = map[string]softfloat.Flags{
	"invalid":      softfloat.FlagInvalid,
	"denorm":       softfloat.FlagDenormal,
	"divide":       softfloat.FlagDivideByZero,
	"dividebyzero": softfloat.FlagDivideByZero,
	"overflow":     softfloat.FlagOverflow,
	"underflow":    softfloat.FlagUnderflow,
	"inexact":      softfloat.FlagInexact,
	"rounding":     softfloat.FlagInexact,
	"all":          AllEvents,
}

// ParseConfig builds a Config from an environment map. Only FPE_MODE is
// required; everything else has the paper's defaults.
func ParseConfig(env map[string]string) (Config, error) {
	cfg := Config{ExceptList: AllEvents}
	switch strings.ToLower(env["FPE_MODE"]) {
	case "", "aggregate":
		cfg.Mode = ModeAggregate
	case "individual":
		cfg.Mode = ModeIndividual
	default:
		return cfg, fmt.Errorf("fpspy: unknown FPE_MODE %q", env["FPE_MODE"])
	}
	cfg.Disable = isYes(env["FPE_DISABLE"])
	cfg.Aggressive = isYes(env["FPE_AGGRESSIVE"])
	cfg.Poisson = isYes(env["FPE_POISSON"])
	cfg.Breakpoints = isYes(env["FPE_BRKPT"])
	cfg.NoPrune = isYes(env["FPE_NOPRUNE"])
	cfg.NoSuperblock = isYes(env["FPE_NOSUPERBLOCK"])
	if v := env["FPE_SHADOW"]; v != "" {
		n, err := strconv.ParseUint(v, 10, 64)
		if err != nil || n < MinShadowPrec || n > MaxShadowPrec {
			return cfg, fmt.Errorf("fpspy: bad FPE_SHADOW %q (want precision in [%d,%d])",
				v, MinShadowPrec, MaxShadowPrec)
		}
		cfg.ShadowPrec = n
	}
	switch strings.ToLower(env["FPE_TIMER"]) {
	case "", "virtual":
		cfg.VirtualTimer = true
	case "real":
		cfg.VirtualTimer = false
	default:
		return cfg, fmt.Errorf("fpspy: unknown FPE_TIMER %q", env["FPE_TIMER"])
	}
	if list := env["FPE_EXCEPT_LIST"]; list != "" {
		var set softfloat.Flags
		for _, tok := range strings.Split(list, ",") {
			f, ok := eventNames[strings.ToLower(strings.TrimSpace(tok))]
			if !ok {
				return cfg, fmt.Errorf("fpspy: unknown event %q in FPE_EXCEPT_LIST", tok)
			}
			set |= f
		}
		cfg.ExceptList = set
	}
	if v := env["FPE_MAXCOUNT"]; v != "" {
		n, err := strconv.ParseUint(v, 10, 64)
		if err != nil {
			return cfg, fmt.Errorf("fpspy: bad FPE_MAXCOUNT %q", v)
		}
		cfg.MaxCount = n
	}
	if v := env["FPE_STORM"]; v != "" {
		faults, cycles, ok := strings.Cut(v, ":")
		n, err1 := strconv.ParseUint(faults, 10, 64)
		var c uint64
		var err2 error
		if ok {
			c, err2 = strconv.ParseUint(cycles, 10, 64)
		}
		if !ok || err1 != nil || err2 != nil || n == 0 || c == 0 {
			return cfg, fmt.Errorf("fpspy: bad FPE_STORM %q (want faults:cycles)", v)
		}
		cfg.StormFaults, cfg.StormCycles = n, c
	}
	if v := env["FPE_SAMPLE"]; v != "" {
		if on, off, ok := strings.Cut(v, ":"); ok {
			onUS, err1 := strconv.ParseUint(on, 10, 64)
			offUS, err2 := strconv.ParseUint(off, 10, 64)
			if err1 != nil || err2 != nil || onUS == 0 || offUS == 0 {
				return cfg, fmt.Errorf("fpspy: bad FPE_SAMPLE %q", v)
			}
			cfg.SampleOnUS, cfg.SampleOffUS = onUS, offUS
		} else {
			n, err := strconv.ParseUint(v, 10, 64)
			if err != nil || n == 0 {
				return cfg, fmt.Errorf("fpspy: bad FPE_SAMPLE %q", v)
			}
			cfg.SampleEvery = n
		}
	}
	return cfg, nil
}

func isYes(v string) bool {
	switch strings.ToLower(v) {
	case "yes", "y", "1", "true", "on":
		return true
	}
	return false
}

// EnvVars renders the config back to environment variables (the launch
// wrapper in cmd/fpspy and the public facade use this).
func (c Config) EnvVars() map[string]string {
	env := map[string]string{
		"LD_PRELOAD": PreloadName,
		"FPE_MODE":   c.Mode.String(),
	}
	if c.Disable {
		env["FPE_DISABLE"] = "yes"
	}
	if c.Aggressive {
		env["FPE_AGGRESSIVE"] = "yes"
	}
	if c.Poisson {
		env["FPE_POISSON"] = "yes"
	}
	if c.Breakpoints {
		env["FPE_BRKPT"] = "yes"
	}
	if c.NoPrune {
		env["FPE_NOPRUNE"] = "yes"
	}
	if c.NoSuperblock {
		env["FPE_NOSUPERBLOCK"] = "yes"
	}
	if c.ShadowPrec > 0 {
		env["FPE_SHADOW"] = strconv.FormatUint(c.ShadowPrec, 10)
	}
	if !c.VirtualTimer {
		env["FPE_TIMER"] = "real"
	}
	if c.ExceptList != AllEvents && c.ExceptList != 0 {
		var toks []string
		for name, f := range map[string]softfloat.Flags{
			"invalid": softfloat.FlagInvalid, "denorm": softfloat.FlagDenormal,
			"divide": softfloat.FlagDivideByZero, "overflow": softfloat.FlagOverflow,
			"underflow": softfloat.FlagUnderflow, "inexact": softfloat.FlagInexact,
		} {
			if c.ExceptList&f != 0 {
				toks = append(toks, name)
			}
		}
		env["FPE_EXCEPT_LIST"] = strings.Join(toks, ",")
	}
	if c.MaxCount > 0 {
		env["FPE_MAXCOUNT"] = strconv.FormatUint(c.MaxCount, 10)
	}
	if c.StormFaults > 0 && c.StormCycles > 0 {
		env["FPE_STORM"] = fmt.Sprintf("%d:%d", c.StormFaults, c.StormCycles)
	}
	switch {
	case c.SampleOnUS > 0:
		env["FPE_SAMPLE"] = fmt.Sprintf("%d:%d", c.SampleOnUS, c.SampleOffUS)
	case c.SampleEvery > 0:
		env["FPE_SAMPLE"] = strconv.FormatUint(c.SampleEvery, 10)
	}
	return env
}
