package core

import (
	"math/rand"

	"repro/internal/isa"
	"repro/internal/kernel"
	"repro/internal/mxcsr"
	"repro/internal/obs"
	"repro/internal/shadow"
	"repro/internal/softfloat"
	"repro/internal/trace"
)

// PreloadName is the object name FPSpy is registered under; putting it in
// LD_PRELOAD attaches FPSpy to a process.
const PreloadName = "fpspy.so"

// CyclesPerMicrosecond converts the paper's microsecond sampler settings
// to simulated cycles (the testbed's 2.1 GHz Opterons).
const CyclesPerMicrosecond = 2100

// tsPhase is the per-thread state machine phase (the paper's Figure 5).
type tsPhase uint8

const (
	awaitFPE tsPhase = iota
	awaitTrap
)

// threadState is FPSpy's monitoring context for one thread.
type threadState struct {
	task  *kernel.Task
	phase tsPhase
	// seq numbers the thread's trace records.
	seq uint64
	// faults counts SIGFPEs handled (for 1-in-N subsampling).
	faults uint64
	// recorded counts records written (for FPE_MAXCOUNT).
	recorded uint64
	// samplerOn is the temporal sampler's current phase.
	samplerOn bool
	// done is set when MaxCount is reached: capture is over and the
	// thread runs with everything masked (zero further overhead).
	done bool
	// stormCount/stormStart implement the FPE_STORM watchdog window.
	stormCount uint64
	stormStart uint64
	// protoStart is the tracer timestamp of the SIGFPE that armed the
	// two-trap protocol; the matching SIGTRAP closes the span.
	protoStart int64
	// shadow is the thread's shadow-precision channel (FPE_SHADOW); nil
	// when shadowing is off.
	shadow *shadow.Channel
	rng    *rand.Rand
}

// Spy is one process's FPSpy instance.
type Spy struct {
	proc    *kernel.Process
	cfg     Config
	store   *Store
	threads map[int]*threadState
	// state is the degradation level; it only ever moves rightwards
	// (Individual -> Aggregate -> Detached).
	state DegradeState
	// reason records why state regressed from its starting level.
	reason AbortReason
	// inert is set by FPE_DISABLE or a config parse failure: FPSpy loads
	// but touches nothing.
	inert bool
	// instCost is the cost model's cycles-per-instruction, used to
	// convert the virtual (instruction-time) sampler period.
	instCost uint64
	// fights counts absorbed handler registrations per contested signal
	// (aggressive mode).
	fights map[kernel.Signal]uint64
	// saved dispositions, restored when stepping aside.
	prevFPE, prevTrap, prevTimer *kernel.SigAction
	// ConfigErr records a configuration parse failure.
	ConfigErr error

	// om and otr are the (possibly nil) observability hooks: spy-level
	// counters and the event tracer. Both are nil-safe by construction
	// and never influence monitoring decisions.
	om  *obs.SpyMetrics
	opm *obs.PruneMetrics
	osh *obs.ShadowMetrics
	otr *obs.Tracer
}

// Factory returns the preload object factory for FPSpy, writing traces to
// store. Register the result with kernel.RegisterPreload(PreloadName, ...).
func Factory(store *Store) kernel.ObjectFactory {
	return FactoryObs(store, obs.Disabled)
}

// FactoryObs is Factory with an observability handle; pass obs.Disabled
// (or nil) for the uninstrumented behavior.
func FactoryObs(store *Store, m *obs.Metrics) kernel.ObjectFactory {
	return func(p *kernel.Process) *kernel.Object {
		s := &Spy{
			proc:    p,
			store:   store,
			threads: make(map[int]*threadState),
			fights:  make(map[kernel.Signal]uint64),
			om:      m.SpyMetricsOrNil(),
			opm:     m.PruneMetricsOrNil(),
			osh:     m.ShadowMetricsOrNil(),
			otr:     m.TracerOrNil(),
		}
		return s.object()
	}
}

// timerSignal is the signal the temporal sampler uses.
func (s *Spy) timerSignal() kernel.Signal {
	if s.cfg.VirtualTimer {
		return kernel.SIGVTALRM
	}
	return kernel.SIGALRM
}

func (s *Spy) timerKind() kernel.TimerKind {
	if s.cfg.VirtualTimer {
		return kernel.TimerVirtual
	}
	return kernel.TimerReal
}

func (s *Spy) temporalSampling() bool { return s.cfg.SampleOnUS > 0 }

// object assembles the preload Object: interposed symbols plus
// constructor/destructor hooks.
func (s *Spy) object() *kernel.Object {
	obj := &kernel.Object{Name: PreloadName, Syms: map[string]kernel.Symbol{}}
	obj.Constructor = s.construct
	obj.Destructor = s.destruct
	obj.ForkChild = s.forkChild

	// Process and thread management: follow forks and thread creations.
	obj.Syms["fork"] = s.passThrough("fork")
	obj.Syms["clone"] = s.wrapThreadCreate("clone")
	obj.Syms["pthread_create"] = s.wrapThreadCreate("pthread_create")
	obj.Syms["pthread_exit"] = s.passThrough("pthread_exit")

	// Signal hooking: detect the application using FPSpy's signals.
	obj.Syms["signal"] = s.wrapSignal("signal")
	obj.Syms["sigaction"] = s.wrapSignal("sigaction")

	// Floating point environment control: any use means FPSpy must get
	// out of the way (the feenableexcept-rightwards set of Figure 8).
	for _, sym := range []string{
		"feenableexcept", "fedisableexcept", "fegetexcept", "feclearexcept",
		"fegetexceptflag", "feraiseexcept", "fesetexceptflag", "fetestexcept",
		"fegetround", "fesetround", "fegetenv", "feholdexcept", "fesetenv",
		"feupdateenv",
	} {
		obj.Syms[sym] = s.wrapFE(sym)
	}
	return obj
}

// next resolves the real implementation below FPSpy in the chain.
func (s *Spy) next(sym string) kernel.Symbol {
	return s.proc.Linker.ResolveAfter(PreloadName, sym)
}

func (s *Spy) passThrough(sym string) kernel.Symbol {
	return func(k *kernel.Kernel, t *kernel.Task) {
		if real := s.next(sym); real != nil {
			real(k, t)
		}
	}
}

// construct is FPSpy's linker constructor: it runs before main() on the
// initial thread.
func (s *Spy) construct(k *kernel.Kernel, t *kernel.Task) {
	cfg, err := ParseConfig(s.proc.Env)
	if err != nil {
		s.ConfigErr = err
		s.inert = true
		return
	}
	s.cfg = cfg
	if cfg.Disable {
		s.inert = true
		return
	}
	s.instCost = k.Cost.Instruction
	if s.instCost == 0 {
		s.instCost = 1
	}
	if cfg.Mode == ModeIndividual {
		s.state = StateIndividual
		s.installHandlers(k)
	} else {
		s.state = StateAggregate
	}
	s.threadInit(k, t)
}

// installHandlers hooks SIGFPE, the single-event completion signal
// (SIGTRAP for the TF protocol, SIGILL for the breakpoint protocol) and
// the sampler timer signal, saving the previous dispositions for a
// graceful step-aside.
func (s *Spy) installHandlers(k *kernel.Kernel) {
	s.prevFPE = k.SetSigAction(s.proc, kernel.SIGFPE, &kernel.SigAction{Host: s.onSIGFPE})
	s.prevTrap = k.SetSigAction(s.proc, s.stepSignal(), &kernel.SigAction{Host: s.onSIGTRAP})
	if s.temporalSampling() {
		s.prevTimer = k.SetSigAction(s.proc, s.timerSignal(), &kernel.SigAction{Host: s.onTimer})
	}
}

// stepSignal is the signal that marks the faulting instruction's
// completed re-execution.
func (s *Spy) stepSignal() kernel.Signal {
	if s.cfg.Breakpoints {
		return kernel.SIGILL
	}
	return kernel.SIGTRAP
}

// threadInit starts monitoring a thread (the constructor for the initial
// thread; the pthread_create thunk for the rest).
func (s *Spy) threadInit(k *kernel.Kernel, t *kernel.Task) {
	if s.inert || s.state == StateDetached {
		return
	}
	ts := &threadState{task: t, samplerOn: true, rng: rand.New(rand.NewSource(int64(t.TID)*7919 + 13))}
	s.threads[t.TID] = ts
	t.OnExit = append(t.OnExit, s.threadTeardown)
	if s.om != nil {
		s.om.ThreadsMonitored.Inc()
		s.otr.Instant("fpspy", "thread-init", s.proc.PID, t.TID, "state", uint64(s.state))
	}

	if s.cfg.NoSuperblock {
		t.M.NoSuperblock = true
	}
	if s.cfg.ShadowPrec > 0 {
		ts.shadow = shadow.Attach(t.M, uint(s.cfg.ShadowPrec), s.osh)
	}
	cpu := &t.M.CPU
	cpu.MXCSR.ClearFlags()
	if s.state == StateIndividual {
		cpu.MXCSR.Unmask(s.cfg.ExceptList)
		if !s.cfg.NoPrune {
			s.installPruneTable(t)
		}
		if s.temporalSampling() {
			t.SetTimer(s.timerKind(), s.period(ts, s.cfg.SampleOnUS))
		}
	}
}

// period draws the next sampler period in timer units: cycles for the
// real timer, retired instructions for the virtual timer.
func (s *Spy) period(ts *threadState, meanUS uint64) uint64 {
	us := float64(meanUS)
	if s.cfg.Poisson {
		us = ts.rng.ExpFloat64() * float64(meanUS)
		if us < 1 {
			us = 1
		}
	}
	if s.cfg.VirtualTimer {
		// Virtual time is instruction time: convert the cycle budget to
		// retired instructions through the cost model.
		ic := s.instCost
		if ic == 0 {
			ic = 1
		}
		n := uint64(us * CyclesPerMicrosecond / float64(ic))
		if n == 0 {
			n = 1
		}
		return n
	}
	return uint64(us * CyclesPerMicrosecond)
}

// threadTeardown completes a thread's trace at exit: aggregate records
// for aggregate (or demoted) spies, individual trace flushing otherwise,
// plus a last MXCSR integrity check — a mask-everything stomp never
// faults again, so thread exit is the first chance to notice it.
func (s *Spy) threadTeardown(k *kernel.Kernel, t *kernel.Task) {
	if s.inert {
		return
	}
	if ts := s.threads[t.TID]; ts != nil && ts.shadow != nil {
		// Thread exit is the attribution flush point: the channel's
		// per-site rows fold into the store (the merge is commutative, so
		// thread exit order never changes a report).
		s.store.mergeShadowSites(ts.shadow.Sites())
	}
	if ts := s.threads[t.TID]; ts != nil && s.state == StateIndividual {
		if t.M.CPU.MXCSR.Masks() != s.expectedMasks(ts) {
			s.detach(k, t, AbortMXCSRStomp, t.TID)
		}
	}
	if s.cfg.Mode == ModeAggregate || s.state == StateAggregate {
		agg := trace.Aggregate{
			PID:          s.proc.PID,
			TID:          t.TID,
			Instructions: t.M.Retired,
			Aborted:      s.state == StateDetached,
			Reason:       string(s.reason),
		}
		if !agg.Aborted {
			agg.Flags = t.M.CPU.MXCSR.Flags()
		}
		s.store.addAggregate(agg)
		if s.cfg.Mode == ModeAggregate {
			return
		}
		// A demoted individual-mode spy falls through: records captured
		// before the demotion still need to reach the trace.
	}
	if ts := s.threads[t.TID]; ts != nil {
		key := ThreadKey{PID: s.proc.PID, TID: t.TID}
		if err := s.store.writer(key).Flush(); err != nil {
			s.store.recordFlushErr(key, err)
		}
	}
}

// destruct runs after the last task exits; all per-thread teardown has
// already happened via OnExit hooks.
func (s *Spy) destruct(k *kernel.Kernel, t *kernel.Task) {}

// forkChild re-initializes FPSpy in a forked child (FPSpy's fork
// interposition: the child inherits LD_PRELOAD and the FPE_* variables,
// and its own FPSpy instance takes over).
func (s *Spy) forkChild(k *kernel.Kernel, parent, child *kernel.Task) {
	s.construct(k, child)
}

// wrapThreadCreate interposes on pthread_create/clone: the application's
// start routine is wrapped in a thunk that initializes monitoring before
// the routine runs and tears it down after.
func (s *Spy) wrapThreadCreate(sym string) kernel.Symbol {
	return func(k *kernel.Kernel, t *kernel.Task) {
		real := s.next(sym)
		if real == nil {
			return
		}
		real(k, t)
		if s.inert || s.state == StateDetached {
			return
		}
		newTID := int(t.M.CPU.R[isa.R1])
		for _, nt := range s.proc.Tasks {
			if nt.TID == newTID {
				s.threadInit(k, nt)
				break
			}
		}
	}
}

// wrapSignal interposes on signal/sigaction. If the application touches
// the signals FPSpy itself relies on while in individual mode, FPSpy gets
// out of the way — unless aggressive mode keeps it attached, in which
// case the application's request is absorbed.
func (s *Spy) wrapSignal(sym string) kernel.Symbol {
	return func(k *kernel.Kernel, t *kernel.Task) {
		sig := kernel.Signal(t.M.CPU.R[isa.R1])
		mine := sig == kernel.SIGFPE || sig == s.stepSignal() ||
			(s.temporalSampling() && sig == s.timerSignal())
		if !s.inert && s.state == StateIndividual && mine {
			if s.cfg.Aggressive {
				// Aggressive mode: keep spying; report "previous handler
				// was default" to the application, and log the fight so
				// analysis can see how hard the app contested the signal.
				s.fights[sig]++
				if s.om != nil {
					s.om.SignalFights.Inc()
					s.otr.Instant("fpspy", "signal-fight", s.proc.PID, t.TID, "signal", uint64(sig))
				}
				s.store.addEvent(trace.MonitorEvent{
					Time: t.UserCycles + t.SysCycles,
					PID:  s.proc.PID, TID: t.TID,
					Kind:   trace.EventSignalFight,
					Signal: sig.String(),
					Count:  s.fights[sig],
				})
				t.M.CPU.R[isa.R1] = 0
				return
			}
			s.stepAside(k, t, AbortSignalConflict)
		}
		if real := s.next(sym); real != nil {
			real(k, t)
		}
	}
}

// wrapFE interposes on the fe* floating point environment family. Any
// dynamic use means the application manipulates the state FPSpy depends
// on, so FPSpy gets out of the way first and then lets the call through.
func (s *Spy) wrapFE(sym string) kernel.Symbol {
	return func(k *kernel.Kernel, t *kernel.Task) {
		if !s.inert && s.state != StateDetached {
			s.stepAside(k, t, AbortFEAccess)
		}
		if real := s.next(sym); real != nil {
			real(k, t)
		}
	}
}

// stepAside gracefully untangles FPSpy: restore the saved signal
// dispositions, return every monitored thread's floating point control
// state to the masked default, disarm sampler timers, and stop touching
// anything. The application keeps running.
func (s *Spy) stepAside(k *kernel.Kernel, t *kernel.Task, reason AbortReason) {
	s.detach(k, t, reason, -1)
}

// detach is the Detached transition. skipTID, when >= 0, names a thread
// whose MXCSR must be left exactly as the application set it: after an
// ldmxcsr stomp the register is entirely application state, and resetting
// it would change behavior the application asked for (e.g. dying on a
// divide it deliberately unmasked).
func (s *Spy) detach(k *kernel.Kernel, t *kernel.Task, reason AbortReason, skipTID int) {
	if s.inert || s.state == StateDetached {
		return
	}
	from := s.state
	s.state = StateDetached
	s.reason = reason
	s.store.StepAsides++
	if s.om != nil {
		s.om.Detaches.Inc()
		s.otr.Instant("fpspy", "detach", s.proc.PID, t.TID, "from", uint64(from))
	}
	s.store.addEvent(trace.MonitorEvent{
		Time: t.UserCycles + t.SysCycles,
		PID:  s.proc.PID, TID: t.TID,
		Kind: trace.EventAbort,
		From: from.String(), To: StateDetached.String(),
		Reason: string(reason),
	})
	if from != StateIndividual {
		// Aggregate spies (original or demoted) hold no signals, timers,
		// or mask state: nothing to unwind.
		return
	}
	s.restoreHandlers(k)
	for _, ts := range s.threads {
		if ts.task.TID == skipTID {
			continue
		}
		cpu := &ts.task.M.CPU
		cpu.MXCSR.Mask(AllEvents)
		cpu.TF = false
		// Restore any instruction still stubbed by the breakpoint
		// protocol: leaving one behind would kill the application later.
		ts.task.M.Breakpoints = nil
		ts.task.SetTimer(s.timerKind(), 0)
	}
	if skipTID >= 0 {
		// The stomping thread still must not keep FPSpy's trap machinery.
		if ts := s.threads[skipTID]; ts != nil {
			ts.task.M.CPU.TF = false
			ts.task.M.Breakpoints = nil
			ts.task.SetTimer(s.timerKind(), 0)
		}
	}
}

// restoreHandlers puts back the signal dispositions saved at install.
func (s *Spy) restoreHandlers(k *kernel.Kernel) {
	k.SetSigAction(s.proc, kernel.SIGFPE, s.prevFPE)
	k.SetSigAction(s.proc, s.stepSignal(), s.prevTrap)
	if s.temporalSampling() {
		k.SetSigAction(s.proc, s.timerSignal(), s.prevTimer)
	}
}

// demote is the Individual -> Aggregate transition (the trap-storm
// watchdog): release signals, timers, and mask manipulation, but keep
// reading the sticky condition codes so thread exit still yields an
// aggregate record. Sticky flags are deliberately NOT cleared — from the
// demotion onward they accumulate exactly as under an aggregate spy.
func (s *Spy) demote(k *kernel.Kernel, t *kernel.Task, reason AbortReason) {
	if s.inert || s.state != StateIndividual {
		return
	}
	s.state = StateAggregate
	s.reason = reason
	if s.om != nil {
		s.om.Demotions.Inc()
		s.otr.Instant("fpspy", "demote", s.proc.PID, t.TID, "", 0)
	}
	s.store.addEvent(trace.MonitorEvent{
		Time: t.UserCycles + t.SysCycles,
		PID:  s.proc.PID, TID: t.TID,
		Kind: trace.EventDemote,
		From: StateIndividual.String(), To: StateAggregate.String(),
		Reason: string(reason),
	})
	s.restoreHandlers(k)
	for _, ts := range s.threads {
		cpu := &ts.task.M.CPU
		cpu.MXCSR.Mask(AllEvents)
		cpu.TF = false
		ts.task.M.Breakpoints = nil
		ts.task.SetTimer(s.timerKind(), 0)
	}
}

// expectedMasks is the mask set FPSpy believes it left on a monitored
// thread given the protocol phase; any other value means the application
// rewrote MXCSR behind FPSpy's back.
func (s *Spy) expectedMasks(ts *threadState) softfloat.Flags {
	if ts.done || !ts.samplerOn || ts.phase == awaitTrap {
		return AllEvents
	}
	return AllEvents &^ s.cfg.ExceptList
}

// onSIGFPE is the heart of individual mode: log the event, then arrange
// for the faulting instruction to execute exactly once (mask + TF) — the
// paper's AWAIT_FPE -> AWAIT_TRAP transition.
func (s *Spy) onSIGFPE(k *kernel.Kernel, t *kernel.Task, info *kernel.SigInfo, mc *kernel.MContext) {
	ts := s.threads[t.TID]
	if ts == nil || s.state != StateIndividual {
		return
	}

	// MXCSR integrity recheck: if the mask bits differ from what the
	// protocol left there, the application rewrote MXCSR directly
	// (ldmxcsr), bypassing the fe* interposition layer.
	if mc.CPU.MXCSR.Masks() != s.expectedMasks(ts) {
		if s.cfg.Aggressive {
			// Keep spying: the protocol below re-establishes FPSpy's
			// masks; just log that we had to re-assert them.
			if s.om != nil {
				s.om.Reasserts.Inc()
			}
			s.store.addEvent(trace.MonitorEvent{
				Time: t.UserCycles + t.SysCycles,
				PID:  s.proc.PID, TID: t.TID,
				Kind:   trace.EventReassert,
				Reason: string(AbortMXCSRStomp),
			})
		} else {
			// Step aside, leaving the stomping thread's MXCSR exactly as
			// the application wrote it. The faulting instruction re-runs
			// under the restored (default) disposition, so an exception
			// the application deliberately unmasked behaves as if FPSpy
			// had never been loaded.
			s.detach(k, t, AbortMXCSRStomp, t.TID)
			return
		}
	}

	// Trap-storm watchdog: a fault rate above FPE_STORM's threshold
	// demotes to aggregate mode so monitoring overhead stays bounded.
	if s.cfg.StormFaults > 0 {
		now := t.UserCycles + t.SysCycles
		if now-ts.stormStart > s.cfg.StormCycles {
			ts.stormStart, ts.stormCount = now, 0
		}
		ts.stormCount++
		if ts.stormCount >= s.cfg.StormFaults {
			// Masking via mc takes effect on handler return, so the
			// in-flight fault re-executes masked and retires normally.
			s.demote(k, t, AbortTrapStorm)
			return
		}
	}

	ts.faults++
	s.store.Faults++
	if s.om != nil {
		s.om.Faults.Inc()
		ts.protoStart = s.otr.Now()
	}

	if !ts.done && (s.cfg.SampleEvery == 0 || ts.faults%s.cfg.SampleEvery == 0) {
		idx := t.M.Prog.IndexOf(info.Addr)
		rec := trace.Record{
			Time:   t.UserCycles + t.SysCycles,
			Rip:    info.Addr,
			Rsp:    mc.CPU.R[isa.SP],
			MXCSR:  uint32(mc.CPU.MXCSR),
			TID:    uint32(t.TID),
			Seq:    ts.seq,
			Event:  mxcsr.Priority(info.Unmasked),
			Raised: info.Raised,
		}
		if idx >= 0 {
			enc := t.M.Prog.Encode(idx)
			copy(rec.InstrWord[:], enc[:])
			rec.Opcode = uint16(t.M.Prog.Insts[idx].Op)
		}
		key := ThreadKey{PID: s.proc.PID, TID: t.TID}
		_ = s.store.writer(key).Append(&rec)
		ts.seq++
		ts.recorded++
		s.store.Recorded++
		if s.om != nil {
			s.om.Records.Inc()
		}
		if s.cfg.MaxCount > 0 && ts.recorded >= s.cfg.MaxCount {
			ts.done = true
		}
	}

	mc.CPU.MXCSR.ClearFlags()
	mc.CPU.MXCSR.Mask(AllEvents)
	if s.cfg.Breakpoints {
		// Section 3.8 alternative: stub the next instruction. The guest
		// ISA is fixed-length, so "next" is trivial — exactly the
		// simplification the paper notes for RISC targets.
		t.M.SetBreakpoint(info.Addr + isa.InstBytes)
	} else {
		mc.CPU.TF = true
	}
	ts.phase = awaitTrap
}

// onSIGTRAP completes the single-step: the faulting instruction has
// executed once; clear its condition codes and re-arm (or stay dormant
// when sampling is off or capture is done).
func (s *Spy) onSIGTRAP(k *kernel.Kernel, t *kernel.Task, info *kernel.SigInfo, mc *kernel.MContext) {
	ts := s.threads[t.TID]
	if ts == nil || s.state != StateIndividual {
		return
	}
	if ts.phase != awaitTrap {
		// A trap we did not arm: something else is single-stepping; the
		// conservative response is to get out of the way.
		s.stepAside(k, t, AbortForeignTrap)
		return
	}
	mc.CPU.MXCSR.ClearFlags()
	if s.cfg.Breakpoints {
		t.M.ClearBreakpoint(info.Addr)
	} else {
		mc.CPU.TF = false
	}
	if s.om != nil {
		// The SIGFPE that armed the protocol opens the span; this trap
		// closes it — one span per monitored FP event.
		dur := s.otr.Now() - ts.protoStart
		if dur < 0 {
			dur = 0
		}
		s.om.ProtocolNS.Observe(uint64(dur))
		s.otr.Complete("fpspy", "two-trap", s.proc.PID, t.TID, ts.protoStart, dur, "rip", info.Addr)
	}
	ts.phase = awaitFPE
	if !ts.done && ts.samplerOn {
		mc.CPU.MXCSR.Unmask(s.cfg.ExceptList)
	}
}

// onTimer flips the temporal sampler between its on and off phases,
// drawing the next period (exponential under Poisson sampling — the
// PASTA property makes the on-periods a valid random sample).
func (s *Spy) onTimer(k *kernel.Kernel, t *kernel.Task, info *kernel.SigInfo, mc *kernel.MContext) {
	ts := s.threads[t.TID]
	if ts == nil || s.state != StateIndividual {
		return
	}
	ts.samplerOn = !ts.samplerOn
	if s.om != nil {
		s.om.TimerFlips.Inc()
	}
	var mean uint64
	if ts.samplerOn {
		mean = s.cfg.SampleOnUS
	} else {
		mean = s.cfg.SampleOffUS
	}
	t.SetTimer(s.timerKind(), s.period(ts, mean))
	if ts.phase == awaitFPE && !ts.done {
		if ts.samplerOn {
			mc.CPU.MXCSR.ClearFlags()
			mc.CPU.MXCSR.Unmask(s.cfg.ExceptList)
		} else {
			mc.CPU.MXCSR.Mask(AllEvents)
		}
	}
}

// Disabled reports whether this instance has stepped aside.
func (s *Spy) Disabled() bool { return s.state == StateDetached }

// State reports the current degradation level.
func (s *Spy) State() DegradeState { return s.state }

// Reason reports why the state regressed ("" while at the starting
// level).
func (s *Spy) Reason() AbortReason { return s.reason }
