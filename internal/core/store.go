package core

import (
	"bytes"
	"fmt"
	"io"
	"sort"

	"repro/internal/analysis"
	"repro/internal/trace"
)

// ThreadKey identifies one traced thread.
type ThreadKey struct {
	// PID and TID identify the thread within the simulated kernel.
	PID, TID int
}

// String renders the key the way FPSpy names trace files.
func (k ThreadKey) String() string { return fmt.Sprintf("%d.%d.fpemon", k.PID, k.TID) }

// Store collects FPSpy's output: one binary individual-mode trace per
// thread and one aggregate record per thread. It stands in for the
// per-thread log files of the real tool.
type Store struct {
	buffers    map[ThreadKey]*bytes.Buffer
	writers    map[ThreadKey]*trace.Writer
	sink       func(ThreadKey) io.Writer
	aggregates []trace.Aggregate
	events     []trace.MonitorEvent
	flushErrs  []error
	// shadowSites accumulates per-site shadow attribution rows merged
	// across threads (FPE_SHADOW); nil until the first merge.
	shadowSites map[uint64]analysis.RootCauseSite
	// Faults counts every SIGFPE FPSpy handled (recorded or not).
	Faults uint64
	// Recorded counts records actually written.
	Recorded uint64
	// StepAsides counts processes where FPSpy got out of the way.
	StepAsides int
}

// NewStore creates an empty store.
func NewStore() *Store {
	return &Store{
		buffers: make(map[ThreadKey]*bytes.Buffer),
		writers: make(map[ThreadKey]*trace.Writer),
	}
}

// NewStoreWithSink creates a store whose per-thread trace bytes go to
// writers produced by sink instead of in-memory buffers. Used to model
// trace files on failing media; Records/RawTrace are unavailable for
// sink-backed threads.
func NewStoreWithSink(sink func(ThreadKey) io.Writer) *Store {
	s := NewStore()
	s.sink = sink
	return s
}

// writer returns (creating if needed) the trace writer for a thread.
func (s *Store) writer(key ThreadKey) *trace.Writer {
	if w, ok := s.writers[key]; ok {
		return w
	}
	var w *trace.Writer
	if s.sink != nil {
		w = trace.NewWriter(s.sink(key))
	} else {
		buf := &bytes.Buffer{}
		s.buffers[key] = buf
		w = trace.NewWriter(buf)
	}
	s.writers[key] = w
	return w
}

// recordFlushErr remembers a trace flush failure so the run result can
// surface it instead of dropping records silently.
func (s *Store) recordFlushErr(key ThreadKey, err error) {
	s.flushErrs = append(s.flushErrs, fmt.Errorf("fpspy: flushing trace %v: %w", key, err))
}

// FlushErrs returns trace flush failures recorded during teardown.
func (s *Store) FlushErrs() []error { return s.flushErrs }

// addEvent appends a monitor-log entry.
func (s *Store) addEvent(ev trace.MonitorEvent) { s.events = append(s.events, ev) }

// MonitorEvents returns the monitor log in event order.
func (s *Store) MonitorEvents() []trace.MonitorEvent {
	return append([]trace.MonitorEvent(nil), s.events...)
}

// MonitorLog renders the monitor log in its on-disk text form.
func (s *Store) MonitorLog() string { return trace.RenderMonitorLog(s.events) }

// SignalFights totals, per contested signal, how many registration
// attempts aggressive mode absorbed (one signal-fight event per attempt).
func (s *Store) SignalFights() map[string]uint64 {
	out := map[string]uint64{}
	for _, ev := range s.events {
		if ev.Kind == trace.EventSignalFight {
			out[ev.Signal]++
		}
	}
	return out
}

// mergeShadowSites folds one thread's shadow attribution rows into the
// store (sum/max merge per address, see analysis.MergeRootCauseSite).
func (s *Store) mergeShadowSites(sites []analysis.RootCauseSite) {
	if len(sites) == 0 {
		return
	}
	if s.shadowSites == nil {
		s.shadowSites = make(map[uint64]analysis.RootCauseSite, len(sites))
	}
	for _, site := range sites {
		s.shadowSites[site.Addr] = analysis.MergeRootCauseSite(s.shadowSites[site.Addr], site)
	}
}

// ShadowSites returns the merged shadow attribution rows ordered by
// address (empty when FPE_SHADOW was off or nothing shadow-executed).
func (s *Store) ShadowSites() []analysis.RootCauseSite {
	out := make([]analysis.RootCauseSite, 0, len(s.shadowSites))
	for addr, site := range s.shadowSites {
		site.Addr = addr
		out = append(out, site)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Addr < out[j].Addr })
	return out
}

// addAggregate appends a thread's aggregate record.
func (s *Store) addAggregate(a trace.Aggregate) {
	s.aggregates = append(s.aggregates, a)
}

// Aggregates returns all aggregate-mode records, ordered by pid then tid.
func (s *Store) Aggregates() []trace.Aggregate {
	out := append([]trace.Aggregate(nil), s.aggregates...)
	sort.Slice(out, func(i, j int) bool {
		if out[i].PID != out[j].PID {
			return out[i].PID < out[j].PID
		}
		return out[i].TID < out[j].TID
	})
	return out
}

// Threads lists the threads with individual-mode traces.
func (s *Store) Threads() []ThreadKey {
	keys := make([]ThreadKey, 0, len(s.buffers))
	for k := range s.buffers {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].PID != keys[j].PID {
			return keys[i].PID < keys[j].PID
		}
		return keys[i].TID < keys[j].TID
	})
	return keys
}

// Records decodes the trace of one thread.
func (s *Store) Records(key ThreadKey) ([]trace.Record, error) {
	w, ok := s.writers[key]
	if !ok {
		return nil, fmt.Errorf("fpspy: no trace for %v", key)
	}
	if err := w.Flush(); err != nil {
		return nil, err
	}
	return trace.Decode(s.buffers[key].Bytes())
}

// AllRecords decodes and concatenates every thread's trace.
func (s *Store) AllRecords() ([]trace.Record, error) {
	var out []trace.Record
	for _, key := range s.Threads() {
		recs, err := s.Records(key)
		if err != nil {
			return nil, err
		}
		out = append(out, recs...)
	}
	return out, nil
}

// RawTrace returns the encoded bytes of one thread's trace (what would
// be the on-disk file).
func (s *Store) RawTrace(key ThreadKey) ([]byte, error) {
	w, ok := s.writers[key]
	if !ok {
		return nil, fmt.Errorf("fpspy: no trace for %v", key)
	}
	if err := w.Flush(); err != nil {
		return nil, err
	}
	return s.buffers[key].Bytes(), nil
}
