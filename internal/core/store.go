package core

import (
	"bytes"
	"fmt"
	"sort"

	"repro/internal/trace"
)

// ThreadKey identifies one traced thread.
type ThreadKey struct {
	// PID and TID identify the thread within the simulated kernel.
	PID, TID int
}

// String renders the key the way FPSpy names trace files.
func (k ThreadKey) String() string { return fmt.Sprintf("%d.%d.fpemon", k.PID, k.TID) }

// Store collects FPSpy's output: one binary individual-mode trace per
// thread and one aggregate record per thread. It stands in for the
// per-thread log files of the real tool.
type Store struct {
	buffers    map[ThreadKey]*bytes.Buffer
	writers    map[ThreadKey]*trace.Writer
	aggregates []trace.Aggregate
	// Faults counts every SIGFPE FPSpy handled (recorded or not).
	Faults uint64
	// Recorded counts records actually written.
	Recorded uint64
	// StepAsides counts processes where FPSpy got out of the way.
	StepAsides int
}

// NewStore creates an empty store.
func NewStore() *Store {
	return &Store{
		buffers: make(map[ThreadKey]*bytes.Buffer),
		writers: make(map[ThreadKey]*trace.Writer),
	}
}

// writer returns (creating if needed) the trace writer for a thread.
func (s *Store) writer(key ThreadKey) *trace.Writer {
	if w, ok := s.writers[key]; ok {
		return w
	}
	buf := &bytes.Buffer{}
	w := trace.NewWriter(buf)
	s.buffers[key] = buf
	s.writers[key] = w
	return w
}

// addAggregate appends a thread's aggregate record.
func (s *Store) addAggregate(a trace.Aggregate) {
	s.aggregates = append(s.aggregates, a)
}

// Aggregates returns all aggregate-mode records, ordered by pid then tid.
func (s *Store) Aggregates() []trace.Aggregate {
	out := append([]trace.Aggregate(nil), s.aggregates...)
	sort.Slice(out, func(i, j int) bool {
		if out[i].PID != out[j].PID {
			return out[i].PID < out[j].PID
		}
		return out[i].TID < out[j].TID
	})
	return out
}

// Threads lists the threads with individual-mode traces.
func (s *Store) Threads() []ThreadKey {
	keys := make([]ThreadKey, 0, len(s.buffers))
	for k := range s.buffers {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].PID != keys[j].PID {
			return keys[i].PID < keys[j].PID
		}
		return keys[i].TID < keys[j].TID
	})
	return keys
}

// Records decodes the trace of one thread.
func (s *Store) Records(key ThreadKey) ([]trace.Record, error) {
	w, ok := s.writers[key]
	if !ok {
		return nil, fmt.Errorf("fpspy: no trace for %v", key)
	}
	if err := w.Flush(); err != nil {
		return nil, err
	}
	return trace.Decode(s.buffers[key].Bytes())
}

// AllRecords decodes and concatenates every thread's trace.
func (s *Store) AllRecords() ([]trace.Record, error) {
	var out []trace.Record
	for _, key := range s.Threads() {
		recs, err := s.Records(key)
		if err != nil {
			return nil, err
		}
		out = append(out, recs...)
	}
	return out, nil
}

// RawTrace returns the encoded bytes of one thread's trace (what would
// be the on-disk file).
func (s *Store) RawTrace(key ThreadKey) ([]byte, error) {
	w, ok := s.writers[key]
	if !ok {
		return nil, fmt.Errorf("fpspy: no trace for %v", key)
	}
	if err := w.Flush(); err != nil {
		return nil, err
	}
	return s.buffers[key].Bytes(), nil
}
