package core

import "testing"

// FuzzParseConfig throws arbitrary environment values at the parser: it
// must never panic, and any accepted configuration must survive an
// EnvVars round trip.
func FuzzParseConfig(f *testing.F) {
	f.Add("individual", "yes", "divide,inexact", "100", "5:100", "yes", "virtual")
	f.Add("aggregate", "", "", "", "10", "", "real")
	f.Add("", "", "all", "0", "", "no", "")
	f.Add("bogus", "maybe", "nonsense", "-1", ":", "ja", "sundial")

	f.Fuzz(func(t *testing.T, mode, aggr, list, maxc, sample, poisson, timer string) {
		env := map[string]string{
			"FPE_MODE": mode, "FPE_AGGRESSIVE": aggr, "FPE_EXCEPT_LIST": list,
			"FPE_MAXCOUNT": maxc, "FPE_SAMPLE": sample, "FPE_POISSON": poisson,
			"FPE_TIMER": timer,
		}
		cfg, err := ParseConfig(env)
		if err != nil {
			return
		}
		back, err := ParseConfig(cfg.EnvVars())
		if err != nil {
			t.Fatalf("accepted config failed round trip: %v (%+v)", err, cfg)
		}
		if back != cfg {
			t.Fatalf("round trip changed config:\n in  %+v\n out %+v", cfg, back)
		}
	})
}
