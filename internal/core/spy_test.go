package core

import (
	"math"
	"testing"

	"repro/internal/isa"
	"repro/internal/kernel"
)

// buildRounding builds a program producing n inexact events.
func buildRounding(n int64) *isa.Program {
	b := isa.NewBuilder("rounding")
	b.Movi(isa.R1, int64(math.Float64bits(1)))
	b.Movqx(isa.X0, isa.R1)
	b.Movi(isa.R1, int64(math.Float64bits(3)))
	b.Movqx(isa.X1, isa.R1)
	b.Movi(isa.R8, 0)
	b.Movi(isa.R9, n)
	top := b.Label("top")
	b.Bind(top)
	b.FP2(isa.OpDIVSD, isa.X2, isa.X0, isa.X1)
	b.Addi(isa.R8, isa.R8, 1)
	b.Blt(isa.R8, isa.R9, top)
	b.Hlt()
	return b.Build()
}

// spawnWithEnv runs a program under FPSpy with a raw environment —
// including invalid settings the typed facade cannot express.
func spawnWithEnv(t *testing.T, prog *isa.Program, env map[string]string) (*Store, *kernel.Process) {
	t.Helper()
	k := kernel.New()
	store := NewStore()
	k.RegisterPreload(PreloadName, Factory(store))
	if env == nil {
		env = map[string]string{}
	}
	env["LD_PRELOAD"] = PreloadName
	p, err := k.Spawn(prog, 1<<21, env)
	if err != nil {
		t.Fatal(err)
	}
	k.Run(10_000_000)
	if !p.Exited {
		t.Fatal("did not exit")
	}
	return store, p
}

func TestBadConfigLoadsInert(t *testing.T) {
	// An unparseable FPE_MODE must never break the application: FPSpy
	// loads, records the error, and touches nothing.
	store, p := spawnWithEnv(t, buildRounding(10), map[string]string{"FPE_MODE": "bogus"})
	if p.ExitCode != 0 {
		t.Errorf("exit %d", p.ExitCode)
	}
	if store.Faults != 0 || len(store.Aggregates()) != 0 {
		t.Error("inert FPSpy observed events")
	}
	// The spy instance recorded the configuration error.
	for _, obj := range p.Linker.Objects() {
		if obj.Name == PreloadName {
			return // instance exists; ConfigErr is internal state
		}
	}
	t.Error("fpspy.so not in the link chain")
}

func TestEnvDrivenIndividualMode(t *testing.T) {
	store, p := spawnWithEnv(t, buildRounding(10), map[string]string{"FPE_MODE": "individual"})
	if p.ExitCode != 0 {
		t.Errorf("exit %d", p.ExitCode)
	}
	if store.Recorded != 10 {
		t.Errorf("recorded = %d, want 10", store.Recorded)
	}
}

func TestEnvDrivenSubsample(t *testing.T) {
	store, _ := spawnWithEnv(t, buildRounding(100), map[string]string{
		"FPE_MODE":   "individual",
		"FPE_SAMPLE": "10",
	})
	if store.Recorded != 10 {
		t.Errorf("recorded = %d, want 10", store.Recorded)
	}
	if store.Faults != 100 {
		t.Errorf("faults = %d, want 100", store.Faults)
	}
}

func TestFPEDisableEnv(t *testing.T) {
	store, _ := spawnWithEnv(t, buildRounding(10), map[string]string{
		"FPE_MODE":    "individual",
		"FPE_DISABLE": "yes",
	})
	if store.Faults != 0 || store.Recorded != 0 {
		t.Error("FPE_DISABLE did not disable")
	}
}
