package core

// This file defines FPSpy's graceful-degradation state machine. The real
// tool collapses all of this into a single "disabled" flag; modelling it
// as explicit states lets the robustness harness (internal/chaos) assert
// exactly how far FPSpy backed off and why, and lets analysis tooling
// distinguish "stepped aside for the app" from "demoted itself to keep
// overhead bounded".

// DegradeState is FPSpy's per-process degradation level. Transitions only
// move rightwards: Individual -> Aggregate -> Detached. Aggregate-mode
// configurations start (and stay) at StateAggregate; the inert flag
// (FPE_DISABLE / config error) is a separate, earlier decision — an inert
// spy never entered the machine at all.
type DegradeState uint8

const (
	// StateIndividual: the full trap-and-single-step protocol is armed.
	StateIndividual DegradeState = iota
	// StateAggregate: FPSpy has released its signals, timers, and mask
	// manipulation but still reads the sticky condition codes at thread
	// exit — the trap-storm watchdog lands here.
	StateAggregate
	// StateDetached: FPSpy has fully stepped aside; nothing is observed
	// beyond what was captured before the abort.
	StateDetached
)

// String names the state as it appears in the monitor log.
func (s DegradeState) String() string {
	switch s {
	case StateIndividual:
		return "individual"
	case StateAggregate:
		return "aggregate"
	case StateDetached:
		return "detached"
	}
	return "?"
}

// AbortReason types the cause of a degradation, recorded with the
// transition in the monitor log and on aggregate records.
type AbortReason string

const (
	// AbortSignalConflict: the application installed a handler for a
	// signal FPSpy owns (SIGFPE/SIGTRAP/SIGILL/the sampler alarm).
	AbortSignalConflict AbortReason = "signal-conflict"
	// AbortFEAccess: the application called into the fe* floating point
	// environment family.
	AbortFEAccess AbortReason = "fe-access"
	// AbortMXCSRStomp: the application rewrote MXCSR directly (ldmxcsr),
	// bypassing the fe* interposition layer.
	AbortMXCSRStomp AbortReason = "mxcsr-stomp"
	// AbortForeignTrap: a single-step trap arrived that FPSpy did not arm
	// (a debugger or the application is also single-stepping).
	AbortForeignTrap AbortReason = "foreign-trap"
	// AbortTrapStorm: the fault rate exceeded the FPE_STORM watchdog
	// threshold; FPSpy demoted itself to aggregate mode to bound
	// overhead rather than detaching.
	AbortTrapStorm AbortReason = "trap-storm"
)
