package core

import (
	"testing"

	"repro/internal/softfloat"
)

func TestParseConfigDefaults(t *testing.T) {
	cfg, err := ParseConfig(map[string]string{})
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Mode != ModeAggregate {
		t.Errorf("default mode = %v", cfg.Mode)
	}
	if cfg.ExceptList != AllEvents {
		t.Errorf("default except list = %v", cfg.ExceptList)
	}
	if !cfg.VirtualTimer {
		t.Error("default timer should be virtual")
	}
	if cfg.Disable || cfg.Aggressive || cfg.Poisson {
		t.Error("default booleans set")
	}
}

func TestParseConfigFull(t *testing.T) {
	cfg, err := ParseConfig(map[string]string{
		"FPE_MODE":        "individual",
		"FPE_AGGRESSIVE":  "yes",
		"FPE_EXCEPT_LIST": "divide, invalid ,overflow",
		"FPE_MAXCOUNT":    "1000",
		"FPE_SAMPLE":      "5:100",
		"FPE_POISSON":     "yes",
		"FPE_TIMER":       "real",
	})
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Mode != ModeIndividual || !cfg.Aggressive || !cfg.Poisson {
		t.Errorf("cfg = %+v", cfg)
	}
	want := softfloat.FlagDivideByZero | softfloat.FlagInvalid | softfloat.FlagOverflow
	if cfg.ExceptList != want {
		t.Errorf("except list = %v, want %v", cfg.ExceptList, want)
	}
	if cfg.MaxCount != 1000 || cfg.SampleOnUS != 5 || cfg.SampleOffUS != 100 {
		t.Errorf("cfg = %+v", cfg)
	}
	if cfg.VirtualTimer {
		t.Error("timer should be real")
	}
}

func TestParseConfigSubsample(t *testing.T) {
	cfg, err := ParseConfig(map[string]string{"FPE_SAMPLE": "10"})
	if err != nil {
		t.Fatal(err)
	}
	if cfg.SampleEvery != 10 || cfg.SampleOnUS != 0 {
		t.Errorf("cfg = %+v", cfg)
	}
}

func TestParseConfigErrors(t *testing.T) {
	bad := []map[string]string{
		{"FPE_MODE": "sideways"},
		{"FPE_TIMER": "sundial"},
		{"FPE_EXCEPT_LIST": "divide,nonsense"},
		{"FPE_MAXCOUNT": "many"},
		{"FPE_SAMPLE": "0"},
		{"FPE_SAMPLE": "5:"},
		{"FPE_SAMPLE": "0:100"},
		{"FPE_SHADOW": "wide"},
		{"FPE_SHADOW": "0"},
		{"FPE_SHADOW": "23"},   // below binary32's mantissa
		{"FPE_SHADOW": "4097"}, // above the allocation guard
		{"FPE_SHADOW": "-113"},
	}
	for _, env := range bad {
		if _, err := ParseConfig(env); err == nil {
			t.Errorf("no error for %v", env)
		}
	}
}

func TestParseConfigEventAliases(t *testing.T) {
	cfg, err := ParseConfig(map[string]string{"FPE_EXCEPT_LIST": "rounding,dividebyzero"})
	if err != nil {
		t.Fatal(err)
	}
	want := softfloat.FlagInexact | softfloat.FlagDivideByZero
	if cfg.ExceptList != want {
		t.Errorf("aliases = %v, want %v", cfg.ExceptList, want)
	}
	cfg, err = ParseConfig(map[string]string{"FPE_EXCEPT_LIST": "all"})
	if err != nil || cfg.ExceptList != AllEvents {
		t.Errorf("all = %v (%v)", cfg.ExceptList, err)
	}
}

func TestEnvVarsRoundTrip(t *testing.T) {
	cfgs := []Config{
		{Mode: ModeAggregate, ExceptList: AllEvents, VirtualTimer: true},
		{Mode: ModeIndividual, ExceptList: AllEvents, VirtualTimer: true},
		{Mode: ModeIndividual, ExceptList: AllEvents &^ softfloat.FlagInexact, VirtualTimer: true},
		{Mode: ModeIndividual, ExceptList: AllEvents, Aggressive: true, MaxCount: 7, SampleEvery: 3, VirtualTimer: true},
		{Mode: ModeIndividual, ExceptList: AllEvents, SampleOnUS: 5, SampleOffUS: 100, Poisson: true, VirtualTimer: true},
		{Mode: ModeIndividual, ExceptList: AllEvents, VirtualTimer: false},
		{Mode: ModeAggregate, ExceptList: AllEvents, Disable: true, VirtualTimer: true},
		{Mode: ModeIndividual, ExceptList: AllEvents, ShadowPrec: 113, VirtualTimer: true},
		{Mode: ModeIndividual, ExceptList: AllEvents, ShadowPrec: MaxShadowPrec, VirtualTimer: true},
	}
	for _, in := range cfgs {
		env := in.EnvVars()
		if env["LD_PRELOAD"] != PreloadName {
			t.Errorf("LD_PRELOAD = %q", env["LD_PRELOAD"])
		}
		out, err := ParseConfig(env)
		if err != nil {
			t.Fatalf("%+v: %v", in, err)
		}
		if out != in {
			t.Errorf("round trip:\n in  %+v\n out %+v", in, out)
		}
	}
}
