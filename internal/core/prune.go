package core

import (
	"repro/internal/binscan/absint"
	"repro/internal/kernel"
)

// installPruneTable applies the static trap-site verdicts to a monitored
// thread: instruction indices the abstract interpreter proved can never
// raise any exception condition retire on the machine's native quiet
// path instead of the softfloat interpreter. The analysis is memoized
// per program, so every thread of a process shares one result.
//
// Pruning is sound for the spy because a proven-quiet site raises no
// condition even when masked: it can neither fault (individual mode) nor
// set a sticky flag (aggregate mode), so skipping its trap checks is
// unobservable. The machine additionally re-checks the live RC/FTZ/DAZ
// environment before each quiet retire, covering environment changes the
// static analysis cannot see (libc fesetround via callc, fault
// injection).
func (s *Spy) installPruneTable(t *kernel.Task) {
	res := absint.Analyze(t.M.Prog)
	if s.opm != nil {
		s.opm.Analyses.Inc()
		s.opm.SitesTotal.Set(int64(len(res.Sites)))
		s.opm.SitesPruned.Set(int64(res.PrunableCount()))
		if res.EnvVaries {
			s.opm.EnvVarying.Inc()
		}
	}
	if res.PrunableCount() == 0 {
		return
	}
	// SetQuietFP (not a direct field write) bumps the machine's code
	// version so cached superblock regions rebuild with the new verdicts.
	t.M.SetQuietFP(res.QuietTable())
}
