// Package adaptive implements the system the FPSpy paper's Section 6
// sketches and its conclusion says is under construction: "a
// trap-and-emulate approach to integrating higher precision" underneath
// existing, unmodified binaries. Like FPSpy, it is an LD_PRELOAD object
// that unmasks floating point exceptions; unlike FPSpy, when a rounding
// (Inexact) trap arrives it does not merely log and single-step — it
// *emulates* the faulting instruction against an arbitrary-precision
// software FPU (math/big.Float standing in for MPFR), writes the
// correctly-rounded result back through the signal context, and advances
// the instruction pointer past the instruction. The hardware never
// executes the rounding operation at all.
//
// Shadow state is tracked per register and validated by value: a shadow
// is used only while its binary64 rounding still equals the live
// register contents, so values that travel through memory or are
// overwritten by unobserved instructions safely fall back to their
// hardware precision. Instructions the emulator does not model fall back
// to FPSpy's mask-and-single-step protocol, so the application always
// makes progress.
package adaptive

import (
	"math"
	"math/big"

	"repro/internal/isa"
	"repro/internal/kernel"
	"repro/internal/softfloat"
)

// PreloadName is the object name for LD_PRELOAD.
const PreloadName = "fpmitigate.so"

// Stats aggregates what the mitigator did across a run.
type Stats struct {
	// Emulated counts instructions executed by the software FPU.
	Emulated uint64
	// Improved counts emulated instructions whose written-back result
	// differed from what the hardware would have produced — rounding
	// error the mitigation removed.
	Improved uint64
	// Fallbacks counts instructions handled by single-stepping instead.
	Fallbacks uint64
}

// shadowVal pairs a high-precision value with the binary64 pattern it
// rounds to; the shadow is valid only while the live register still
// holds that pattern.
type shadowVal struct {
	v    *big.Float
	bits uint64
}

type threadState struct {
	regs     [isa.NumVecRegs]*shadowVal
	stepping bool // single-step fallback in flight
}

// Mitigator is one process's adaptive-precision instance.
type Mitigator struct {
	proc    *kernel.Process
	prec    uint
	stats   *Stats
	threads map[int]*threadState
}

// Factory returns the preload factory; register it under PreloadName.
// prec is the software FPU's mantissa precision in bits.
func Factory(prec uint, stats *Stats) kernel.ObjectFactory {
	return func(p *kernel.Process) *kernel.Object {
		m := &Mitigator{proc: p, prec: prec, stats: stats, threads: make(map[int]*threadState)}
		obj := &kernel.Object{Name: PreloadName, Syms: map[string]kernel.Symbol{}}
		obj.Constructor = m.construct
		obj.Syms["pthread_create"] = m.wrapThreadCreate
		obj.Syms["clone"] = m.wrapThreadCreate
		return obj
	}
}

func (m *Mitigator) construct(k *kernel.Kernel, t *kernel.Task) {
	k.SetSigAction(m.proc, kernel.SIGFPE, &kernel.SigAction{Host: m.onSIGFPE})
	k.SetSigAction(m.proc, kernel.SIGTRAP, &kernel.SigAction{Host: m.onSIGTRAP})
	m.threadInit(t)
}

func (m *Mitigator) threadInit(t *kernel.Task) {
	m.threads[t.TID] = &threadState{}
	t.M.CPU.MXCSR.Unmask(softfloat.FlagInexact)
}

func (m *Mitigator) wrapThreadCreate(k *kernel.Kernel, t *kernel.Task) {
	real := m.proc.Linker.ResolveAfter(PreloadName, "pthread_create")
	if real == nil {
		return
	}
	real(k, t)
	newTID := int(t.M.CPU.R[isa.R1])
	for _, nt := range m.proc.Tasks {
		if nt.TID == newTID {
			m.threadInit(nt)
		}
	}
}

// shadowOf returns the validated shadow of a register's lane 0, deriving
// a fresh one from the hardware value when absent or stale.
func (m *Mitigator) shadowOf(ts *threadState, t *kernel.Task, r uint8) *big.Float {
	cur := t.M.CPU.X[r][0]
	if s := ts.regs[r]; s != nil && s.bits == cur {
		return s.v
	}
	v := new(big.Float).SetPrec(m.prec).SetFloat64(math.Float64frombits(cur))
	ts.regs[r] = &shadowVal{v: v, bits: cur}
	return v
}

// writeBack installs an emulated result: the shadow keeps full
// precision, the architectural register gets its binary64 rounding.
func (m *Mitigator) writeBack(ts *threadState, t *kernel.Task, r uint8, v *big.Float) uint64 {
	f, _ := v.Float64()
	bits := math.Float64bits(f)
	t.M.CPU.X[r][0] = bits
	ts.regs[r] = &shadowVal{v: v, bits: bits}
	return bits
}

// emulate attempts software execution of the faulting instruction.
// It returns false when the instruction is outside the emulator's
// repertoire.
func (m *Mitigator) emulate(ts *threadState, t *kernel.Task, inst *isa.Inst) bool {
	info := inst.Op.Info()
	cpu := &t.M.CPU
	z := new(big.Float).SetPrec(m.prec)
	switch info.Class {
	case isa.ClassFPArith:
		if info.Prec != isa.F64 || info.Lanes != 1 {
			return false
		}
		a := m.shadowOf(ts, t, inst.Rs1)
		b := m.shadowOf(ts, t, inst.Rs2)
		switch info.FP {
		case isa.FPAdd:
			z.Add(a, b)
		case isa.FPSub:
			z.Sub(a, b)
		case isa.FPMul:
			z.Mul(a, b)
		case isa.FPDiv:
			if b.Sign() == 0 {
				return false
			}
			z.Quo(a, b)
		case isa.FPSqrt:
			if a.Sign() < 0 {
				return false
			}
			z.Sqrt(a)
		default:
			return false
		}
	case isa.ClassFMA:
		if info.Prec != isa.F64 || info.Lanes != 1 {
			return false
		}
		a := m.shadowOf(ts, t, inst.Rs1)
		b := m.shadowOf(ts, t, inst.Rs2)
		c := m.shadowOf(ts, t, inst.Rs3)
		z.Mul(a, b)
		switch info.FMA {
		case isa.FMAdd:
			z.Add(z, c)
		case isa.FMSub:
			z.Sub(z, c)
		case isa.FNMAdd:
			z.Neg(z)
			z.Add(z, c)
		case isa.FNMSub:
			z.Neg(z)
			z.Sub(z, c)
		}
	case isa.ClassFPConvert:
		if info.Cvt != isa.CvtSI2SDQ {
			return false
		}
		z.SetInt64(int64(cpu.R[inst.Rs1]))
	default:
		return false
	}

	// What would the hardware have produced? (For the Improved stat.)
	hwWouldBe := m.hardwareResult(t, inst)
	got := m.writeBack(ts, t, inst.Rd, z)
	m.stats.Emulated++
	if got != hwWouldBe {
		m.stats.Improved++
	}
	// The instruction is fully emulated: skip it.
	cpu.RIP += isa.InstBytes
	return true
}

// hardwareResult computes the result the hardware FPU would have written
// for a supported scalar f64 instruction.
func (m *Mitigator) hardwareResult(t *kernel.Task, inst *isa.Inst) uint64 {
	info := inst.Op.Info()
	cpu := &t.M.CPU
	env := cpu.MXCSR.Env()
	a := cpu.X[inst.Rs1][0]
	b := cpu.X[inst.Rs2][0]
	switch info.Class {
	case isa.ClassFPArith:
		switch info.FP {
		case isa.FPAdd:
			z, _ := softfloat.Add64(a, b, env)
			return z
		case isa.FPSub:
			z, _ := softfloat.Sub64(a, b, env)
			return z
		case isa.FPMul:
			z, _ := softfloat.Mul64(a, b, env)
			return z
		case isa.FPDiv:
			z, _ := softfloat.Div64(a, b, env)
			return z
		case isa.FPSqrt:
			z, _ := softfloat.Sqrt64(a, env)
			return z
		}
	case isa.ClassFMA:
		c := cpu.X[inst.Rs3][0]
		if info.FMA == isa.FMAdd {
			z, _ := softfloat.FMA64(a, b, c, env)
			return z
		}
	case isa.ClassFPConvert:
		z, _ := softfloat.I64ToF64(int64(cpu.R[inst.Rs1]), env)
		return z
	}
	return 0
}

// onSIGFPE handles a rounding trap: emulate if possible, otherwise fall
// back to the FPSpy-style mask-and-single-step so the instruction runs
// once on the hardware.
func (m *Mitigator) onSIGFPE(k *kernel.Kernel, t *kernel.Task, info *kernel.SigInfo, mc *kernel.MContext) {
	ts := m.threads[t.TID]
	if ts == nil {
		ts = &threadState{}
		m.threads[t.TID] = ts
	}
	mc.CPU.MXCSR.ClearFlags()
	idx := t.M.Prog.IndexOf(info.Addr)
	if idx >= 0 && m.emulate(ts, t, &t.M.Prog.Insts[idx]) {
		return
	}
	// Fallback: let the hardware run it once.
	m.stats.Fallbacks++
	mc.CPU.MXCSR.Mask(softfloat.FlagInexact)
	mc.CPU.TF = true
	ts.stepping = true
}

func (m *Mitigator) onSIGTRAP(k *kernel.Kernel, t *kernel.Task, info *kernel.SigInfo, mc *kernel.MContext) {
	ts := m.threads[t.TID]
	if ts == nil || !ts.stepping {
		return
	}
	ts.stepping = false
	mc.CPU.MXCSR.ClearFlags()
	mc.CPU.MXCSR.Unmask(softfloat.FlagInexact)
	mc.CPU.TF = false
}

// PatchedMitigator is the *binary patching* flavor of Section 6's
// mitigation system — the alternative whose economics the
// rank-popularity feasibility analysis evaluates. Instead of unmasking
// floating point exceptions (two kernel crossings per event: the fault
// and the single-step trap), the rounding sites discovered by an FPSpy
// profile are patched with permanent breakpoints; each visit takes a
// single SIGILL crossing, the instruction is emulated at high precision,
// and control continues past it. The hardware FPU never executes the
// patched instructions at all, so no exception unmasking is needed.
type PatchedMitigator struct {
	proc    *kernel.Process
	prec    uint
	sites   []uint64
	stats   *Stats
	threads map[int]*threadState
}

// PatchedFactory returns a preload object that patches the given
// instruction addresses at load time. Register under PatchedPreloadName.
func PatchedFactory(prec uint, sites []uint64, stats *Stats) kernel.ObjectFactory {
	return func(p *kernel.Process) *kernel.Object {
		m := &PatchedMitigator{proc: p, prec: prec, sites: sites, stats: stats,
			threads: make(map[int]*threadState)}
		obj := &kernel.Object{Name: PatchedPreloadName, Syms: map[string]kernel.Symbol{}}
		obj.Constructor = m.construct
		obj.Syms["pthread_create"] = m.wrapThreadCreate
		obj.Syms["clone"] = m.wrapThreadCreate
		return obj
	}
}

// PatchedPreloadName is the LD_PRELOAD name of the patching mitigator.
const PatchedPreloadName = "fppatch.so"

func (m *PatchedMitigator) construct(k *kernel.Kernel, t *kernel.Task) {
	k.SetSigAction(m.proc, kernel.SIGILL, &kernel.SigAction{Host: m.onSIGILL})
	m.threadInit(t)
}

func (m *PatchedMitigator) threadInit(t *kernel.Task) {
	m.threads[t.TID] = &threadState{}
	// Patch the profiled sites in this hardware thread's view.
	for _, addr := range m.sites {
		t.M.SetBreakpoint(addr)
	}
}

func (m *PatchedMitigator) wrapThreadCreate(k *kernel.Kernel, t *kernel.Task) {
	real := m.proc.Linker.ResolveAfter(PatchedPreloadName, "pthread_create")
	if real == nil {
		return
	}
	real(k, t)
	newTID := int(t.M.CPU.R[isa.R1])
	for _, nt := range m.proc.Tasks {
		if nt.TID == newTID {
			m.threadInit(nt)
		}
	}
}

// onSIGILL emulates the patched instruction and steps past it — one
// kernel crossing per event.
func (m *PatchedMitigator) onSIGILL(k *kernel.Kernel, t *kernel.Task, info *kernel.SigInfo, mc *kernel.MContext) {
	ts := m.threads[t.TID]
	if ts == nil {
		ts = &threadState{}
		m.threads[t.TID] = ts
	}
	idx := t.M.Prog.IndexOf(info.Addr)
	if idx >= 0 {
		// emulate advances RIP itself on success; reuse the shared
		// emulator via a Mitigator shim bound to this thread state.
		shim := &Mitigator{proc: m.proc, prec: m.prec, stats: m.stats,
			threads: m.threads}
		if shim.emulate(ts, t, &t.M.Prog.Insts[idx]) {
			return
		}
	}
	// Unsupported instruction at a patched site: unpatch it and let the
	// hardware run it (self-healing, like a patch-point blacklist).
	m.stats.Fallbacks++
	t.M.ClearBreakpoint(info.Addr)
}

// ProfileRoundingSites runs prog briefly under full individual-mode
// capture and returns the distinct scalar-double rounding sites — the
// profile a production patcher would take from FPSpy traces.
func ProfileRoundingSites(prog *isa.Program, memBytes int, maxSteps uint64) ([]uint64, error) {
	k := kernel.New()
	seen := make(map[uint64]bool)
	var sites []uint64
	p, err := k.Spawn(prog, memBytes, nil)
	if err != nil {
		return nil, err
	}
	k.SetSigAction(p, kernel.SIGFPE, &kernel.SigAction{Host: func(k *kernel.Kernel, t *kernel.Task, info *kernel.SigInfo, mc *kernel.MContext) {
		if !seen[info.Addr] {
			seen[info.Addr] = true
			sites = append(sites, info.Addr)
		}
		mc.CPU.MXCSR.ClearFlags()
		mc.CPU.MXCSR.Mask(softfloat.Flags(0x3F))
		mc.CPU.TF = true
	}})
	k.SetSigAction(p, kernel.SIGTRAP, &kernel.SigAction{Host: func(k *kernel.Kernel, t *kernel.Task, info *kernel.SigInfo, mc *kernel.MContext) {
		mc.CPU.MXCSR.ClearFlags()
		mc.CPU.MXCSR.Unmask(softfloat.FlagInexact)
		mc.CPU.TF = false
	}})
	p.Tasks[0].M.CPU.MXCSR.Unmask(softfloat.FlagInexact)
	k.Run(maxSteps)
	return sites, nil
}
