package adaptive_test

import (
	"math"
	"testing"

	fpspy "repro"
	"repro/internal/adaptive"
	"repro/internal/isa"
	"repro/internal/kernel"
	"repro/internal/workload"
)

// buildNaiveSum sums `inc` n times into x0 and stores the result at 128.
func buildNaiveSum(n int64, inc float64) *fpspy.Program {
	b := fpspy.NewProgram("naive-sum")
	b.Movi(isa.R6, int64(math.Float64bits(inc)))
	b.Movqx(isa.X1, isa.R6)
	b.Movqx(isa.X0, isa.R0)
	b.Movi(isa.R8, 0)
	b.Movi(isa.R9, n)
	top := b.Label("top")
	b.Bind(top)
	b.FP2(isa.OpADDSD, isa.X0, isa.X0, isa.X1)
	b.Addi(isa.R8, isa.R8, 1)
	b.Blt(isa.R8, isa.R9, top)
	b.Movi(isa.R10, 128)
	b.Fst(isa.R10, 0, isa.X0)
	b.Hlt()
	return b.Build()
}

func sumAt128(res *fpspy.Result) float64 {
	b := res.Proc.Mem[128 : 128+8]
	var v uint64
	for i := 0; i < 8; i++ {
		v |= uint64(b[i]) << (8 * i)
	}
	return math.Float64frombits(v)
}

func TestMitigatedSummationIsMoreAccurate(t *testing.T) {
	const n = 50000
	exact := float64(n) * 0.1

	plain, err := fpspy.Run(buildNaiveSum(n, 0.1), fpspy.Options{NoSpy: true})
	if err != nil {
		t.Fatal(err)
	}
	mitigated, stats, err := fpspy.RunMitigated(buildNaiveSum(n, 0.1), 256, fpspy.Options{})
	if err != nil {
		t.Fatal(err)
	}
	plainErr := math.Abs(sumAt128(plain) - exact)
	mitErr := math.Abs(sumAt128(mitigated) - exact)
	// The first two additions (0+0.1 and 0.1+0.1) are exact and never
	// trap.
	if stats.Emulated < n-2 {
		t.Errorf("emulated = %d, want ~%d", stats.Emulated, n)
	}
	if stats.Improved == 0 {
		t.Error("no instruction's result improved")
	}
	if mitErr >= plainErr {
		t.Errorf("mitigated error %.3e not better than plain %.3e", mitErr, plainErr)
	}
	// The mitigated sum is correctly rounded from a 256-bit running sum:
	// within one ulp of exact.
	if mitErr > exact*1e-15 {
		t.Errorf("mitigated error %.3e too large", mitErr)
	}
	t.Logf("plain err %.3e, mitigated err %.3e, emulated %d improved %d fallbacks %d",
		plainErr, mitErr, stats.Emulated, stats.Improved, stats.Fallbacks)
}

func TestMitigationValueThroughMemoryStaysCorrect(t *testing.T) {
	// A value that round-trips through memory loses its shadow but must
	// keep its (rounded) value: compute 1/3, store, reload, multiply by
	// 3, store. The final value must equal the hardware-consistent
	// chain's within an ulp — and critically must not be garbage from a
	// stale shadow.
	b := fpspy.NewProgram("memtrip")
	b.Movi(isa.R6, int64(math.Float64bits(1)))
	b.Movqx(isa.X0, isa.R6)
	b.Movi(isa.R6, int64(math.Float64bits(3)))
	b.Movqx(isa.X1, isa.R6)
	b.FP2(isa.OpDIVSD, isa.X2, isa.X0, isa.X1) // 1/3 (emulated)
	b.Movi(isa.R10, 128)
	b.Fst(isa.R10, 0, isa.X2)
	// Clobber x2 with an unobserved move, then reload from memory.
	b.Movqx(isa.X2, isa.R0)
	b.Fld(isa.X2, isa.R10, 0)
	b.FP2(isa.OpMULSD, isa.X3, isa.X2, isa.X1) // (1/3)*3 (emulated)
	b.Movi(isa.R10, 136)
	b.Fst(isa.R10, 0, isa.X3)
	b.Hlt()
	res, stats, err := fpspy.RunMitigated(b.Build(), 256, fpspy.Options{})
	if err != nil {
		t.Fatal(err)
	}
	mem := res.Proc.Mem
	read := func(off int) float64 {
		var v uint64
		for i := 0; i < 8; i++ {
			v |= uint64(mem[off+i]) << (8 * i)
		}
		return math.Float64frombits(v)
	}
	third := read(128)
	product := read(136)
	if third != 1.0/3.0 {
		t.Errorf("stored third = %v", third)
	}
	// (1/3 rounded) * 3 at high precision rounds to exactly 1.0.
	if product != 1.0 && math.Abs(product-1.0) > 1e-15 {
		t.Errorf("product = %v", product)
	}
	if stats.Emulated < 2 {
		t.Errorf("emulated = %d", stats.Emulated)
	}
}

func TestMitigationFallbackKeepsProgress(t *testing.T) {
	// A packed (unsupported) rounding instruction must fall back to
	// single-stepping and still complete with the hardware result.
	b := fpspy.NewProgram("fallback")
	third := 1.0 / 3.0
	addr := b.Float64s(third, third, third, third)
	b.Movi(isa.R9, int64(addr))
	b.Fldv(isa.X0, isa.R9, 0)
	b.Fldv(isa.X1, isa.R9, 0)
	b.FP2(isa.OpMULPD, isa.X2, isa.X0, isa.X1) // packed: falls back
	b.FP2(isa.OpMULSD, isa.X3, isa.X0, isa.X1) // scalar: emulated
	b.Hlt()
	res, stats, err := fpspy.RunMitigated(b.Build(), 128, fpspy.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.ExitCode != 0 {
		t.Fatalf("exit %d", res.ExitCode)
	}
	if stats.Fallbacks == 0 {
		t.Error("packed op did not fall back")
	}
	if stats.Emulated == 0 {
		t.Error("scalar op not emulated")
	}
	cpu := &res.Proc.Tasks[0].M.CPU
	wantAdd := math.Float64bits(third * third)
	wantMul := math.Float64bits(third * third)
	if cpu.X[isa.X2][0] != wantAdd || cpu.X[isa.X3][0] != wantMul {
		t.Errorf("results: packed %#x scalar %#x want %#x %#x",
			cpu.X[isa.X2][0], cpu.X[isa.X3][0], wantAdd, wantMul)
	}
}

func TestMitigatedThreads(t *testing.T) {
	// Both threads' rounding is mitigated independently.
	b := fpspy.NewProgram("threads")
	worker := b.Label("worker")
	b.Lea(isa.R1, worker)
	b.Movi(isa.R2, 0)
	b.CallC("pthread_create")
	b.Movi(isa.R6, int64(math.Float64bits(0.1)))
	b.Movqx(isa.X1, isa.R6)
	b.Movqx(isa.X0, isa.R0)
	for i := 0; i < 10; i++ {
		b.FP2(isa.OpADDSD, isa.X0, isa.X0, isa.X1)
	}
	// Wait for worker flag.
	b.Movi(isa.R7, 1024)
	wait := b.Label("wait")
	b.Bind(wait)
	b.Ld(isa.R6, isa.R7, 0)
	b.Beq(isa.R6, isa.R0, wait)
	b.Hlt()
	b.Bind(worker)
	b.Movi(isa.R6, int64(math.Float64bits(0.2)))
	b.Movqx(isa.X1, isa.R6)
	b.Movqx(isa.X0, isa.R0)
	for i := 0; i < 10; i++ {
		b.FP2(isa.OpADDSD, isa.X0, isa.X0, isa.X1)
	}
	b.Movi(isa.R3, 1024)
	b.Movi(isa.R4, 1)
	b.St(isa.R3, 0, isa.R4)
	b.CallC("pthread_exit")
	_, stats, err := fpspy.RunMitigated(b.Build(), 256, fpspy.Options{})
	if err != nil {
		t.Fatal(err)
	}
	// A few early additions in each thread are exact and never trap.
	if stats.Emulated < 12 {
		t.Errorf("emulated = %d, want most of ~20 across both threads", stats.Emulated)
	}
}

func TestMitigationOnNASKernel(t *testing.T) {
	// The mitigator runs underneath a real study workload: the NAS CG
	// kernel completes, with the bulk of its scalar double rounding
	// emulated at 128-bit precision and no crashes from the mixed
	// scalar/convert instruction stream.
	w, err := workload.ByName("nas-cg")
	if err != nil {
		t.Fatal(err)
	}
	res, stats, err := fpspy.RunMitigated(w.Build(workload.SizeSmall), 128, fpspy.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.ExitCode != 0 {
		t.Fatalf("exit %d", res.ExitCode)
	}
	if stats.Emulated == 0 {
		t.Error("nothing emulated")
	}
	t.Logf("nas-cg mitigated: %d emulated, %d improved, %d fallbacks",
		stats.Emulated, stats.Improved, stats.Fallbacks)
}

func TestMitigationOnMiniaeroCalibrated(t *testing.T) {
	// Miniaero's calibrated build mixes sqrt, divide, min/max and
	// conversions; min/max raise no rounding traps, everything else is
	// either emulated or single-stepped, and the run completes.
	res, stats, err := fpspy.RunMitigated(workload.BuildMiniaeroCalibrated(workload.SizeSmall), 256, fpspy.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.ExitCode != 0 {
		t.Fatalf("exit %d", res.ExitCode)
	}
	if stats.Emulated == 0 {
		t.Error("nothing emulated")
	}
}

func TestPatchedMitigatorEmulatesAtSites(t *testing.T) {
	// Profile the summation kernel, patch its rounding site, and run
	// with the binary-patching mitigator: same accuracy as
	// trap-and-emulate, but with permanent stubs and no FP unmasking.
	const n = 20000
	prog := buildNaiveSum(n, 0.1)
	sites, err := adaptive.ProfileRoundingSites(prog, 1<<21, 1_000_000)
	if err != nil {
		t.Fatal(err)
	}
	if len(sites) != 1 {
		t.Fatalf("profiled sites = %d, want the single addsd", len(sites))
	}

	k := kernel.New()
	stats := &adaptive.Stats{}
	k.RegisterPreload(adaptive.PatchedPreloadName, adaptive.PatchedFactory(256, sites, stats))
	p, err := k.Spawn(buildNaiveSum(n, 0.1), 1<<21,
		map[string]string{"LD_PRELOAD": adaptive.PatchedPreloadName})
	if err != nil {
		t.Fatal(err)
	}
	k.Run(50_000_000)
	if !p.Exited || p.ExitCode != 0 {
		t.Fatalf("exited=%v code=%d", p.Exited, p.ExitCode)
	}
	if stats.Emulated < n-1 {
		t.Errorf("emulated = %d, want ~%d", stats.Emulated, n)
	}
	// The patched run's result is the correctly rounded 256-bit sum.
	var v uint64
	for i := 0; i < 8; i++ {
		v |= uint64(p.Mem[128+i]) << (8 * i)
	}
	got := math.Float64frombits(v)
	exact := float64(n) * 0.1
	if math.Abs(got-exact) > exact*1e-15 {
		t.Errorf("patched result %v, exact %v", got, exact)
	}
	// Unlike the trap flavor, the FPU stays masked: no SIGFPE handler
	// exists, and a rounding op at an *unpatched* site runs natively.
	if p.Handlers[kernel.SIGFPE] != nil {
		t.Error("patched mitigator should not hook SIGFPE")
	}
}

func TestPatchedMitigatorSelfHealsUnsupportedSites(t *testing.T) {
	// A packed instruction at a patched site cannot be emulated; the
	// mitigator must unpatch it and let the hardware proceed.
	b := fpspy.NewProgram("packed-site")
	third := 1.0 / 3.0
	addr := b.Float64s(third, third, third, third)
	b.Movi(isa.R9, int64(addr))
	b.Fldv(isa.X0, isa.R9, 0)
	b.Fldv(isa.X1, isa.R9, 0)
	b.FP2(isa.OpMULPD, isa.X2, isa.X0, isa.X1)
	b.Hlt()
	prog := b.Build()
	site := prog.AddrOf(3) // the mulpd

	k := kernel.New()
	stats := &adaptive.Stats{}
	k.RegisterPreload(adaptive.PatchedPreloadName, adaptive.PatchedFactory(128, []uint64{site}, stats))
	p, err := k.Spawn(prog, 1<<21, map[string]string{"LD_PRELOAD": adaptive.PatchedPreloadName})
	if err != nil {
		t.Fatal(err)
	}
	k.Run(1_000_000)
	if !p.Exited || p.ExitCode != 0 {
		t.Fatalf("exited=%v code=%d", p.Exited, p.ExitCode)
	}
	if stats.Fallbacks != 1 {
		t.Errorf("fallbacks = %d, want 1", stats.Fallbacks)
	}
	want := math.Float64bits(third * third)
	if p.Tasks[0].M.CPU.X[isa.X2][0] != want {
		t.Errorf("mulpd result %#x, want %#x", p.Tasks[0].M.CPU.X[isa.X2][0], want)
	}
}
