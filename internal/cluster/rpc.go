package cluster

// The peer-to-peer RPC path. Every call gets a per-call deadline;
// transient failures retry with capped exponential backoff and full
// jitter; calls that name more than one replica hedge — when the owner
// has not answered within hedgeAfter, the same request races to the
// next ring replica and the first answer wins. Hedging is safe because
// the run RPC is idempotent by construction: it is keyed on the content
// address, so a duplicate arrival is a cache hit on the receiver, never
// a second study pass.

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"strings"
	"sync"
	"time"

	fpspy "repro"
	"repro/internal/obs"
	"repro/internal/server"
)

// Wire types for /cluster/v1/*. Outcomes travel as server.Outcome,
// which is JSON-clean by construction.

// runRequest asks the owning peer to study one clone.
type runRequest struct {
	Name   string       `json:"name"`
	Client string       `json:"client"`
	Clone  []byte       `json:"clone"`
	Config fpspy.Config `json:"config"`
	// Key is the sender-computed content address; the receiver verifies
	// it so a corrupted clone or config cannot settle under the wrong
	// address.
	Key string `json:"key"`
}

// runResponse is a settled study: outcome or pass error.
type runResponse struct {
	Key      string          `json:"key"`
	CacheHit bool            `json:"cacheHit"`
	Outcome  *server.Outcome `json:"outcome,omitempty"`
	Error    string          `json:"error,omitempty"`
}

// healthResponse is one gossip exchange: the peer's own status and
// load, plus its liveness view of the membership.
type healthResponse struct {
	Status   string          `json:"status"`
	Self     string          `json:"self"`
	QueueLen int             `json:"queueLen"`
	Peers    map[string]bool `json:"peers"`
}

type stealRequest struct {
	Max int `json:"max"`
}

type stealResponse struct {
	Jobs []server.StolenJob `json:"jobs"`
}

// completeRequest returns a stolen job's outcome to its victim.
type completeRequest struct {
	Key     string          `json:"key"`
	Outcome *server.Outcome `json:"outcome,omitempty"`
	Error   string          `json:"error,omitempty"`
}

type joinRequest struct {
	Peer string `json:"peer"`
}

type joinResponse struct {
	Peers []string `json:"peers"`
}

// rpcError is a non-2xx peer response.
type rpcError struct {
	Status int
	Msg    string
}

func (e *rpcError) Error() string {
	return fmt.Sprintf("cluster rpc: %s (HTTP %d)", e.Msg, e.Status)
}

// ErrNoPeers means the ring has no live replica for the call.
var ErrNoPeers = errors.New("cluster: no live peers")

// rpcRetryable classifies an attempt error: transport failures, decode
// failures (a corrupted wire must never be trusted, only retried), and
// 5xx responses are transient; 4xx responses are permanent.
func rpcRetryable(err error) bool {
	var re *rpcError
	if errors.As(err, &re) {
		return re.Status >= 500
	}
	return err != nil
}

// rpcClient issues cluster RPCs under the robustness policy.
type rpcClient struct {
	hc         *http.Client
	timeout    time.Duration // per-call deadline
	hedgeAfter time.Duration // silence before the hedge fires
	retryMax   int
	baseWait   time.Duration
	maxWait    time.Duration
	cm         *obs.ClusterMetrics // nil when observability is off

	mu  sync.Mutex
	rng *rand.Rand
}

func newRPCClient(hc *http.Client, o Options, cm *obs.ClusterMetrics) *rpcClient {
	return &rpcClient{
		hc: hc, timeout: o.RPCTimeout, hedgeAfter: o.HedgeAfter,
		retryMax: o.RetryMax, baseWait: o.RetryBaseWait, maxWait: o.RetryMaxWait,
		// The jitter seed is fixed: streams still decorrelate across
		// nodes because draws interleave with each node's own call order.
		cm: cm, rng: rand.New(rand.NewSource(0x5eed)),
	}
}

// once performs one HTTP exchange against one peer and returns the raw
// response body on 2xx.
func (r *rpcClient) once(ctx context.Context, peer, method, path string, in any) ([]byte, error) {
	var body []byte
	if in != nil {
		var err error
		if body, err = json.Marshal(in); err != nil {
			return nil, fmt.Errorf("cluster rpc: encode: %w", err)
		}
	}
	req, err := http.NewRequestWithContext(ctx, method, peer+path, bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	if in != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := r.hc.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(io.LimitReader(resp.Body, 64<<20))
	if err != nil {
		return nil, err
	}
	if resp.StatusCode < 200 || resp.StatusCode >= 300 {
		return nil, &rpcError{Status: resp.StatusCode, Msg: strings.TrimSpace(string(data))}
	}
	return data, nil
}

// hedged races one logical call across up to two replicas: the primary
// immediately, the successor after hedgeAfter of silence (or at once if
// the primary fails fast). First success wins; losers are cancelled by
// the shared per-call deadline context.
func (r *rpcClient) hedged(ctx context.Context, peers []string, method, path string, in, out any) error {
	cctx, cancel := context.WithTimeout(ctx, r.timeout)
	defer cancel()
	type attempt struct {
		body  []byte
		err   error
		hedge bool
	}
	ch := make(chan attempt, len(peers))
	launch := func(peer string, hedge bool) {
		go func() {
			body, err := r.once(cctx, peer, method, path, in)
			ch <- attempt{body, err, hedge}
		}()
	}
	launch(peers[0], false)
	outstanding := 1
	var hedgeC <-chan time.Time
	if len(peers) > 1 && r.hedgeAfter > 0 {
		t := time.NewTimer(r.hedgeAfter)
		defer t.Stop()
		hedgeC = t.C
	}
	fireHedge := func() {
		hedgeC = nil
		if r.cm != nil {
			r.cm.Hedges.Inc()
		}
		launch(peers[1], true)
		outstanding++
	}
	var lastErr error
	for {
		select {
		case <-hedgeC:
			fireHedge()
		case a := <-ch:
			outstanding--
			if a.err == nil {
				if out != nil {
					if derr := json.Unmarshal(a.body, out); derr != nil {
						// A corrupted response is an error, not data.
						a.err = fmt.Errorf("cluster rpc: decode %s: %w", path, derr)
					}
				}
			}
			if a.err == nil {
				if a.hedge && r.cm != nil {
					r.cm.HedgeWins.Inc()
				}
				return nil
			}
			lastErr = a.err
			if r.cm != nil {
				r.cm.RPCErrors.Inc()
			}
			if outstanding == 0 {
				if hedgeC != nil {
					// The primary failed before the hedge timer: hedge
					// immediately instead of waiting out the silence.
					fireHedge()
					continue
				}
				return lastErr
			}
		case <-cctx.Done():
			return cctx.Err()
		}
	}
}

// invoke is the full robust call: per-attempt hedged exchange, capped
// jittered backoff between attempts, fresh replica set each attempt (so
// an eviction mid-call reroutes the retry), and context cancellation
// throughout.
func (r *rpcClient) invoke(ctx context.Context, replicas func() []string, method, path string, in, out any) error {
	var lastErr error
	for att := 1; att <= r.retryMax; att++ {
		peers := replicas()
		if len(peers) == 0 {
			return ErrNoPeers
		}
		err := r.hedged(ctx, peers, method, path, in, out)
		if err == nil {
			return nil
		}
		lastErr = err
		if ctx.Err() != nil {
			return ctx.Err()
		}
		if !rpcRetryable(err) || att == r.retryMax {
			return lastErr
		}
		if r.cm != nil {
			r.cm.Retries.Inc()
		}
		t := time.NewTimer(r.backoff(att))
		select {
		case <-t.C:
		case <-ctx.Done():
			t.Stop()
			return ctx.Err()
		}
	}
	return lastErr
}

// backoff is the capped exponential wait with full jitter for retry
// attempt att (1-based).
func (r *rpcClient) backoff(att int) time.Duration {
	d := r.baseWait << uint(att-1)
	if d <= 0 || d > r.maxWait {
		d = r.maxWait
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return d/2 + time.Duration(r.rng.Int63n(int64(d/2)+1))
}
