package cluster_test

// The cluster-routed leg of the reproducibility matrix: a probe clone
// forwarded to its consistent-hash owner, studied remotely, and served
// from every peer's cache must carry the identical accumulation-tree
// fingerprint a direct local run recovers. Routing, RPC hedging, and
// outcome installation sit between the guest and the client here — if
// any of them perturbed or truncated the trace, the fingerprint (or
// its presence) would change.

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/jobs"
	"repro/internal/server"
	"repro/internal/study"
	"repro/internal/workload"
)

func TestClusterRoutedProbeFingerprint(t *testing.T) {
	peers := newTestCluster(t, 3, nil)
	cfg := study.ProbeConfig(study.ProbeEngine{})

	probe, err := workload.BuildProbe(workload.DefaultProbeSpec(workload.ProbeStrided, workload.SizeSmall))
	if err != nil {
		t.Fatal(err)
	}
	want := probe.Expected.Fingerprint()
	job := jobs.Capture(probe.Prog.Name, probe.Prog, nil, 4<<20)
	blob := encodeJob(t, job)

	// Submit via a peer that does NOT own the content address, so the
	// job takes the forwarding path.
	owner := ownerIndex(t, peers, job, cfg)
	via := (owner + 1) % len(peers)
	cl := fastClient(peers[via].url, "probe-routed")
	resp, err := cl.SubmitBlob(job.Name, blob, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if st, err := cl.Watch(resp.ID, 5*time.Millisecond); err != nil {
		t.Fatal(err)
	} else if st.State != server.StateDone {
		t.Fatalf("job state %s (%s)", st.State, st.Error)
	}
	res, err := cl.Result(resp.ID)
	if err != nil {
		t.Fatal(err)
	}
	if res.Summary.AccumFingerprint != want {
		t.Fatalf("routed fingerprint %q, want %q", res.Summary.AccumFingerprint, want)
	}

	// Resubmit via every peer: each must be a cache hit (the outcome
	// was installed cluster-wide) carrying the same fingerprint.
	for i, p := range peers {
		cl := fastClient(p.url, fmt.Sprintf("probe-cached-%d", i))
		resp, err := cl.SubmitBlob(job.Name, blob, cfg)
		if err != nil {
			t.Fatalf("peer %d: %v", i, err)
		}
		st, err := cl.Watch(resp.ID, 5*time.Millisecond)
		if err != nil {
			t.Fatalf("peer %d: %v", i, err)
		}
		if st.State != server.StateDone {
			t.Fatalf("peer %d: state %s (%s)", i, st.State, st.Error)
		}
		res, err := cl.Result(resp.ID)
		if err != nil {
			t.Fatalf("peer %d: %v", i, err)
		}
		if res.Summary.AccumFingerprint != want {
			t.Fatalf("peer %d: fingerprint %q, want %q", i, res.Summary.AccumFingerprint, want)
		}
	}

	// One pass total, cluster-wide: the fingerprint everywhere came
	// from a single execution, not from agreeing re-runs.
	if n := totalPasses(peers); n != 1 {
		t.Fatalf("cluster executed %d passes, want 1", n)
	}
}
