package cluster

import (
	"fmt"
	"testing"
)

func keysFor(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("%064x", i*2654435761)
	}
	return out
}

// TestRingBalance pins the virtual-node sizing: three peers each own a
// third of the keyspace within a loose tolerance.
func TestRingBalance(t *testing.T) {
	r := NewRing(0, "http://a", "http://b", "http://c")
	counts := map[string]int{}
	keys := keysFor(3000)
	for _, k := range keys {
		counts[r.Owner(k)]++
	}
	for peer, c := range counts {
		frac := float64(c) / float64(len(keys))
		if frac < 0.15 || frac > 0.55 {
			t.Errorf("peer %s owns %.0f%% of keys; ring badly unbalanced", peer, frac*100)
		}
	}
	if len(counts) != 3 {
		t.Fatalf("only %d peers own keys, want 3", len(counts))
	}
}

// TestRingMinimalMovement pins consistency: evicting one of three peers
// moves only that peer's keys, and re-admission restores the exact
// original assignment.
func TestRingMinimalMovement(t *testing.T) {
	r := NewRing(0, "http://a", "http://b", "http://c")
	keys := keysFor(2000)
	before := make(map[string]string, len(keys))
	for _, k := range keys {
		before[k] = r.Owner(k)
	}
	if !r.Evict("http://b") {
		t.Fatal("evict of live peer reported no change")
	}
	for _, k := range keys {
		now := r.Owner(k)
		if now == "http://b" {
			t.Fatalf("evicted peer still owns %s", k)
		}
		if before[k] != "http://b" && now != before[k] {
			t.Fatalf("key %s moved from %s to %s though its owner survived", k, before[k], now)
		}
	}
	if !r.Add("http://b") {
		t.Fatal("re-admission reported no change")
	}
	for _, k := range keys {
		if r.Owner(k) != before[k] {
			t.Fatalf("key %s did not return to %s after re-admission", k, before[k])
		}
	}
}

// TestRingReplicasDistinct pins the hedging set: replicas are distinct
// live peers, owner first.
func TestRingReplicasDistinct(t *testing.T) {
	r := NewRing(0, "http://a", "http://b", "http://c")
	for _, k := range keysFor(200) {
		reps := r.Replicas(k, 2)
		if len(reps) != 2 {
			t.Fatalf("Replicas(%s, 2) = %v", k, reps)
		}
		if reps[0] == reps[1] {
			t.Fatalf("duplicate replica %s for %s", reps[0], k)
		}
		if reps[0] != r.Owner(k) {
			t.Fatalf("first replica %s is not the owner %s", reps[0], r.Owner(k))
		}
	}
	// More replicas than live peers: every peer once, no repeats.
	if reps := r.Replicas("deadbeef", 9); len(reps) != 3 {
		t.Fatalf("Replicas(_, 9) = %v, want all 3 peers", reps)
	}
	// Empty ring yields nothing.
	e := NewRing(0)
	if reps := e.Replicas("deadbeef", 2); reps != nil {
		t.Fatalf("empty ring Replicas = %v", reps)
	}
	if e.Owner("deadbeef") != "" {
		t.Fatal("empty ring must have no owner")
	}
}
