package cluster

// Node is one cluster member: a daemon plus the routing, health, and
// stealing fabric. It serves the same client API the daemon does —
// fpctl pointed at any peer sees the whole cluster — and the
// /cluster/v1/* peer RPCs on the same listener.
//
// Routing: a submission's content address picks its owner on the ring.
// Owned (or unroutable) clones run locally through the wrapped daemon.
// Foreign clones become proxy jobs ("cjob-" IDs): the node answers the
// submit immediately and forwards the clone to the owner in the
// background over the robust RPC path; the settled outcome is installed
// in the local cache on return (cache-everywhere), so the next local
// submission of the same clone is a pure cache hit. When every replica
// is unreachable — a full partition — the node degrades to local
// execution instead of failing the job: availability wins, and the
// cluster-wide singleflight guarantee narrows to per-partition until
// the ring heals.

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strings"
	"sync"
	"time"

	fpspy "repro"
	"repro/internal/jobs"
	"repro/internal/obs"
	"repro/internal/server"
)

// Options configures a Node.
type Options struct {
	// Self is this node's advertised URL (e.g. "http://10.0.0.1:8765").
	Self string
	// Peers seeds the membership (self is implied).
	Peers []string
	// Server is the wrapped daemon (required).
	Server *server.Server
	// Obs wires cluster metrics (nil-safe, like everywhere else).
	Obs *obs.Metrics
	// HTTPClient carries peer RPCs; tests inject fault transports here.
	HTTPClient *http.Client

	// RPCTimeout is the per-call deadline (default 30s).
	RPCTimeout time.Duration
	// HedgeAfter is the owner-silence threshold before the same request
	// races to the next ring replica (default 250ms; 0 disables).
	HedgeAfter time.Duration
	// RetryMax bounds RPC attempts (default 4).
	RetryMax int
	// RetryBaseWait/RetryMaxWait shape the backoff (defaults 25ms/1s).
	RetryBaseWait time.Duration
	RetryMaxWait  time.Duration

	// ProbeInterval is the health/gossip cadence (default 1s; <0
	// disables the background loop — tests drive ProbeOnce directly).
	ProbeInterval time.Duration
	// ProbeTimeout bounds one probe (default 500ms).
	ProbeTimeout time.Duration
	// EvictAfter is the consecutive-probe-failure threshold for
	// eviction (default 2).
	EvictAfter int

	// StealThreshold is the gossiped queue length above which an idle
	// node steals from a loaded peer (default 4).
	StealThreshold int
	// StealBatch bounds jobs taken per steal (default 2).
	StealBatch int
	// LeaseTimeout is how long a victim waits for a stolen job's
	// outcome before re-queueing it locally (default 30s).
	LeaseTimeout time.Duration

	// VNodes is the virtual-node count per ring member.
	VNodes int
}

func (o *Options) defaults() {
	if o.RPCTimeout <= 0 {
		o.RPCTimeout = 30 * time.Second
	}
	if o.HedgeAfter == 0 {
		o.HedgeAfter = 250 * time.Millisecond
	}
	if o.RetryMax <= 0 {
		o.RetryMax = 4
	}
	if o.RetryBaseWait <= 0 {
		o.RetryBaseWait = 25 * time.Millisecond
	}
	if o.RetryMaxWait <= 0 {
		o.RetryMaxWait = time.Second
	}
	if o.ProbeInterval == 0 {
		o.ProbeInterval = time.Second
	}
	if o.ProbeTimeout <= 0 {
		o.ProbeTimeout = 500 * time.Millisecond
	}
	if o.EvictAfter <= 0 {
		o.EvictAfter = 2
	}
	if o.StealThreshold <= 0 {
		o.StealThreshold = 4
	}
	if o.StealBatch <= 0 {
		o.StealBatch = 2
	}
	if o.LeaseTimeout <= 0 {
		o.LeaseTimeout = 30 * time.Second
	}
}

// proxyJob is a forwarded submission as seen by this node's clients.
type proxyJob struct {
	id, name, client, key string
	state                 server.State
	cacheHit              bool
	out                   *server.Outcome
	errMsg                string
	done                  chan struct{}
}

// Node is one cluster member.
type Node struct {
	opts Options
	srv  *server.Server
	ring *Ring
	rpc  *rpcClient
	om   *obs.Metrics
	mux  *http.ServeMux
	hc   *http.Client

	mu     sync.Mutex
	seq    int
	proxy  map[string]*proxyJob // cjob-* table
	load   map[string]int       // gossiped queue length per peer
	fails  map[string]int       // consecutive probe failures
	leases map[string]time.Time // stolen-from-us key -> expiry
	wg     sync.WaitGroup
	stopc  chan struct{}
	ctx    context.Context
	cancel context.CancelFunc
	closed bool
}

// NewNode builds and starts a node around a running daemon. Background
// probe/steal loops start unless ProbeInterval < 0.
func NewNode(o Options) (*Node, error) {
	if o.Server == nil {
		return nil, fmt.Errorf("cluster: Options.Server is required")
	}
	if o.Self == "" {
		return nil, fmt.Errorf("cluster: Options.Self is required")
	}
	o.defaults()
	members := append([]string{o.Self}, o.Peers...)
	hc := o.HTTPClient
	if hc == nil {
		hc = &http.Client{}
	}
	n := &Node{
		opts: o, srv: o.Server, om: o.Obs, hc: hc,
		ring:   NewRing(o.VNodes, members...),
		proxy:  make(map[string]*proxyJob),
		load:   make(map[string]int),
		fails:  make(map[string]int),
		leases: make(map[string]time.Time),
		stopc:  make(chan struct{}),
	}
	n.ctx, n.cancel = context.WithCancel(context.Background())
	n.rpc = newRPCClient(hc, o, n.cm())
	n.mux = http.NewServeMux()
	n.mux.HandleFunc("POST /v1/jobs", n.handleSubmit)
	n.mux.HandleFunc("POST /v1/shadowjobs", n.handleShadowSubmit)
	n.mux.HandleFunc("GET /v1/jobs/{id}", n.handleStatus)
	n.mux.HandleFunc("GET /v1/jobs/{id}/result", n.handleResult)
	n.mux.HandleFunc("POST /cluster/v1/run", n.handleRun)
	n.mux.HandleFunc("GET /cluster/v1/cache/{key}", n.handleCache)
	n.mux.HandleFunc("GET /cluster/v1/health", n.handleHealth)
	n.mux.HandleFunc("POST /cluster/v1/steal", n.handleSteal)
	n.mux.HandleFunc("POST /cluster/v1/complete", n.handleComplete)
	n.mux.HandleFunc("POST /cluster/v1/join", n.handleJoin)
	n.mux.Handle("/", n.srv) // healthz, metrics, figures pass through
	if o.ProbeInterval > 0 {
		n.wg.Add(1)
		go n.healthLoop()
	}
	return n, nil
}

// cm is the nil-safe cluster metrics handle.
func (n *Node) cm() *obs.ClusterMetrics { return n.om.ClusterMetricsOrNil() }

// Ring exposes the membership view (tests and fpmon).
func (n *Node) Ring() *Ring { return n.ring }

// Close stops the background loops (the wrapped daemon is the caller's
// to shut down).
func (n *Node) Close() {
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return
	}
	n.closed = true
	n.mu.Unlock()
	n.cancel()
	close(n.stopc)
	n.wg.Wait()
}

// ServeHTTP serves both the client API and the peer RPC surface.
func (n *Node) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	n.mux.ServeHTTP(w, r)
}

func clusterJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v) //nolint:errcheck // client gone
}

func clusterError(w http.ResponseWriter, status int, format string, args ...any) {
	clusterJSON(w, status, map[string]string{"error": fmt.Sprintf(format, args...)})
}

// replicasFor is the hedging set for key: owner plus next ring replica.
func (n *Node) replicasFor(key string) []string {
	return n.ring.Replicas(key, 2)
}

// handleSubmit routes one submission by content address.
func (n *Node) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var req server.SubmitRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		clusterError(w, http.StatusBadRequest, "bad submit body: %v", err)
		return
	}
	n.routeSubmission(w, r, req.Name, req.Clone, req.Config)
}

// handleShadowSubmit routes a shadow-attribution submission. The shadow
// precision is folded into the config before the content address is
// computed, so the same shadow job submitted through any two peers
// routes to the same owner and runs exactly one pass cluster-wide.
func (n *Node) handleShadowSubmit(w http.ResponseWriter, r *http.Request) {
	var req server.ShadowSubmitRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		clusterError(w, http.StatusBadRequest, "bad submit body: %v", err)
		return
	}
	cfg, err := server.NormalizeShadowConfig(req.Config, req.Prec)
	if err != nil {
		clusterError(w, http.StatusBadRequest, "%v", err)
		return
	}
	n.routeSubmission(w, r, req.Name, req.Clone, cfg)
}

// routeSubmission is the shared tail of the submit routes: admission on
// the node the client connected to, then content-addressed routing.
func (n *Node) routeSubmission(w http.ResponseWriter, r *http.Request, name string, clone []byte, cfg fpspy.Config) {
	j, err := jobs.Decode(clone)
	if err != nil {
		clusterError(w, http.StatusBadRequest, "bad clone: %v", err)
		return
	}
	if name == "" {
		name = j.Name
	}
	clientID := r.Header.Get(server.ClientHeader)
	if clientID == "" {
		clientID = "anonymous"
	}
	// The forwarding node applies admission: rate limiting happens where
	// the client connects, not on the owner.
	if ok, wait := n.srv.Allow(clientID); !ok {
		w.Header().Set("Retry-After", fmt.Sprintf("%d", int(wait.Seconds())+1))
		clusterError(w, http.StatusTooManyRequests, "client %q rate limited", clientID)
		return
	}
	key := server.CacheKey(j, cfg)

	owner := n.ring.Owner(key)
	if owner == "" || owner == n.opts.Self {
		n.submitLocal(w, clientID, name, clone, cfg, false)
		return
	}

	// Cache-everywhere fast path: a clone studied anywhere and routed
	// through here before is served locally with zero RPCs.
	if out, errMsg, ok := n.srv.CachedOutcome(key); ok {
		if c := n.cm(); c != nil {
			c.ForwardsLocal.Inc()
		}
		pj := n.newProxyJob(name, clientID, key)
		n.settleProxy(pj, true, out, errMsg)
		clusterJSON(w, http.StatusOK, server.SubmitResponse{ID: pj.id, State: pj.state, CacheHit: true})
		return
	}

	pj := n.newProxyJob(name, clientID, key)
	n.wg.Add(1)
	go n.forward(pj, runRequest{
		Name: name, Client: clientID, Clone: clone, Config: cfg, Key: key,
	})
	clusterJSON(w, http.StatusAccepted, server.SubmitResponse{ID: pj.id, State: server.StateQueued})
}

// submitLocal admits a clone on the wrapped daemon and answers in the
// daemon's own response shape (real "job-" ID: status and results are
// served by the pass-through routes).
func (n *Node) submitLocal(w http.ResponseWriter, clientID, name string, blob []byte, cfg fpspy.Config, degraded bool) {
	if c := n.cm(); c != nil {
		if degraded {
			c.PartitionLocal.Inc()
		} else {
			c.ForwardsLocal.Inc()
		}
	}
	res, err := n.srv.Submit(clientID, name, blob, cfg)
	switch {
	case err == nil:
	case errors.Is(err, server.ErrDraining), errors.Is(err, server.ErrQueueFull):
		w.Header().Set("Retry-After", "1")
		clusterError(w, http.StatusServiceUnavailable, "%v", err)
		return
	default:
		clusterError(w, http.StatusBadRequest, "%v", err)
		return
	}
	status := http.StatusAccepted
	if res.State == server.StateDone || res.State == server.StateFailed {
		status = http.StatusOK
	}
	clusterJSON(w, status, server.SubmitResponse{ID: res.ID, State: res.State, CacheHit: res.CacheHit})
}

func (n *Node) newProxyJob(name, clientID, key string) *proxyJob {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.seq++
	pj := &proxyJob{
		id: fmt.Sprintf("cjob-%06d", n.seq), name: name, client: clientID,
		key: key, state: server.StateQueued, done: make(chan struct{}),
	}
	n.proxy[pj.id] = pj
	return pj
}

func (n *Node) settleProxy(pj *proxyJob, cacheHit bool, out *server.Outcome, errMsg string) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if pj.state == server.StateDone || pj.state == server.StateFailed {
		return
	}
	pj.cacheHit = cacheHit
	pj.out, pj.errMsg = out, errMsg
	if errMsg != "" {
		pj.state = server.StateFailed
	} else {
		pj.state = server.StateDone
	}
	close(pj.done)
}

// forward ships one proxy job to its owner over the robust RPC path,
// installing the outcome locally on return. Exhausted retries mean the
// owner's side of the ring is unreachable: the node degrades to a local
// pass rather than failing the job.
func (n *Node) forward(pj *proxyJob, req runRequest) {
	defer n.wg.Done()
	c := n.cm()
	if c != nil {
		c.Forwards.Inc()
	}
	start := time.Now()
	var resp runResponse
	err := n.rpc.invoke(n.ctx, func() []string {
		reps := n.replicasFor(req.Key)
		// Never forward to self: if the ring hands the arc back (every
		// other peer evicted), the local fallback below handles it.
		out := reps[:0]
		for _, p := range reps {
			if p != n.opts.Self {
				out = append(out, p)
			}
		}
		return out
	}, http.MethodPost, "/cluster/v1/run", req, &resp)
	if c != nil {
		c.ForwardNS.Observe(uint64(time.Since(start).Nanoseconds()))
	}
	if err == nil && resp.Key != req.Key {
		err = fmt.Errorf("cluster: owner settled %q under wrong key %q", req.Key, resp.Key)
	}
	if err != nil {
		n.runDegraded(pj, req)
		return
	}
	// Cache-everywhere: the peer's settled outcome becomes a local cache
	// entry, so the next submission of this clone here is a pure hit.
	n.srv.InstallOutcome(req.Key, resp.Outcome, resp.Error)
	n.settleProxy(pj, resp.CacheHit, resp.Outcome, resp.Error)
}

// runDegraded executes a forwarded job locally under a full partition.
func (n *Node) runDegraded(pj *proxyJob, req runRequest) {
	if c := n.cm(); c != nil {
		c.PartitionLocal.Inc()
	}
	res, err := n.srv.Submit(req.Client, req.Name, req.Clone, req.Config)
	if err != nil {
		n.settleProxy(pj, false, nil, fmt.Sprintf("degraded local run: %v", err))
		return
	}
	out, err := n.srv.WaitOutcome(n.ctx, res.ID)
	if err != nil {
		n.settleProxy(pj, res.CacheHit, nil, err.Error())
		return
	}
	n.settleProxy(pj, res.CacheHit, out, "")
}

func (n *Node) lookupProxy(id string) (*proxyJob, bool) {
	n.mu.Lock()
	defer n.mu.Unlock()
	pj, ok := n.proxy[id]
	return pj, ok
}

func (n *Node) handleStatus(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if !strings.HasPrefix(id, "cjob-") {
		n.srv.ServeHTTP(w, r)
		return
	}
	pj, ok := n.lookupProxy(id)
	if !ok {
		clusterError(w, http.StatusNotFound, "unknown job %q", id)
		return
	}
	n.mu.Lock()
	st := server.StatusResponse{
		ID: pj.id, Name: pj.name, Client: pj.client, State: pj.state,
		CacheHit: pj.cacheHit, Key: pj.key, Error: pj.errMsg,
	}
	n.mu.Unlock()
	clusterJSON(w, http.StatusOK, st)
}

func (n *Node) handleResult(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if !strings.HasPrefix(id, "cjob-") {
		n.srv.ServeHTTP(w, r)
		return
	}
	pj, ok := n.lookupProxy(id)
	if !ok {
		clusterError(w, http.StatusNotFound, "unknown job %q", id)
		return
	}
	select {
	case <-pj.done:
	case <-r.Context().Done():
		return
	}
	n.mu.Lock()
	out, errMsg, cacheHit, name := pj.out, pj.errMsg, pj.cacheHit, pj.name
	n.mu.Unlock()
	if errMsg != "" {
		clusterError(w, http.StatusInternalServerError, "job %s failed: %s", id, errMsg)
		return
	}
	server.WriteResultStream(w, id, name, cacheHit, out)
}

// handleRun is the owner side of a forward: study the clone locally
// (the content-addressed cache makes duplicate arrivals free) and
// answer with the settled outcome.
func (n *Node) handleRun(w http.ResponseWriter, r *http.Request) {
	var req runRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		clusterError(w, http.StatusBadRequest, "bad run body: %v", err)
		return
	}
	// Verify the content address: a clone corrupted in flight must not
	// settle under the sender's key.
	j, err := jobs.Decode(req.Clone)
	if err != nil {
		clusterError(w, http.StatusBadRequest, "bad clone: %v", err)
		return
	}
	if key := server.CacheKey(j, req.Config); key != req.Key {
		clusterError(w, http.StatusBadRequest, "content address mismatch: got %s, want %s", key, req.Key)
		return
	}
	if out, errMsg, ok := n.srv.CachedOutcome(req.Key); ok {
		clusterJSON(w, http.StatusOK, runResponse{Key: req.Key, CacheHit: true, Outcome: out, Error: errMsg})
		return
	}
	res, err := n.srv.Submit(req.Client, req.Name, req.Clone, req.Config)
	if err != nil {
		w.Header().Set("Retry-After", "1")
		clusterError(w, http.StatusServiceUnavailable, "%v", err)
		return
	}
	out, err := n.srv.WaitOutcome(r.Context(), res.ID)
	if err != nil {
		// A settled pass error is data; an interrupted wait (drain,
		// caller gone) is a transient failure the sender retries.
		if cachedOut, errMsg, ok := n.srv.CachedOutcome(req.Key); ok {
			clusterJSON(w, http.StatusOK, runResponse{Key: req.Key, CacheHit: res.CacheHit, Outcome: cachedOut, Error: errMsg})
			return
		}
		w.Header().Set("Retry-After", "1")
		clusterError(w, http.StatusServiceUnavailable, "%v", err)
		return
	}
	clusterJSON(w, http.StatusOK, runResponse{Key: req.Key, CacheHit: res.CacheHit, Outcome: out})
}

func (n *Node) handleCache(w http.ResponseWriter, r *http.Request) {
	key := r.PathValue("key")
	out, errMsg, ok := n.srv.CachedOutcome(key)
	if !ok {
		clusterError(w, http.StatusNotFound, "no settled entry for %s", key)
		return
	}
	clusterJSON(w, http.StatusOK, runResponse{Key: key, CacheHit: true, Outcome: out, Error: errMsg})
}

func (n *Node) handleHealth(w http.ResponseWriter, _ *http.Request) {
	status := server.StatusOK
	code := http.StatusOK
	if n.srv.Draining() {
		status = server.StatusDraining
		code = http.StatusServiceUnavailable
	}
	view := make(map[string]bool)
	for _, p := range n.ring.Known() {
		view[p] = n.ring.Alive(p)
	}
	clusterJSON(w, code, healthResponse{
		Status: status, Self: n.opts.Self, QueueLen: n.srv.QueueLen(), Peers: view,
	})
}

func (n *Node) handleSteal(w http.ResponseWriter, r *http.Request) {
	var req stealRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		clusterError(w, http.StatusBadRequest, "bad steal body: %v", err)
		return
	}
	stolen := n.srv.StealPending(req.Max)
	now := time.Now()
	n.mu.Lock()
	for _, sj := range stolen {
		n.leases[sj.Key] = now.Add(n.opts.LeaseTimeout)
	}
	n.mu.Unlock()
	if c := n.cm(); c != nil {
		for range stolen {
			c.StealsOut.Inc()
		}
	}
	clusterJSON(w, http.StatusOK, stealResponse{Jobs: stolen})
}

func (n *Node) handleComplete(w http.ResponseWriter, r *http.Request) {
	var req completeRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		clusterError(w, http.StatusBadRequest, "bad complete body: %v", err)
		return
	}
	if req.Outcome == nil && req.Error == "" {
		clusterError(w, http.StatusBadRequest, "complete without outcome or error")
		return
	}
	n.srv.InstallOutcome(req.Key, req.Outcome, req.Error)
	n.mu.Lock()
	delete(n.leases, req.Key)
	n.mu.Unlock()
	clusterJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

func (n *Node) handleJoin(w http.ResponseWriter, r *http.Request) {
	var req joinRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil || req.Peer == "" {
		clusterError(w, http.StatusBadRequest, "bad join body")
		return
	}
	if n.ring.Add(req.Peer) {
		if c := n.cm(); c != nil {
			c.Readmissions.Inc()
		}
	}
	clusterJSON(w, http.StatusOK, joinResponse{Peers: n.ring.Known()})
}

// Join introduces this node to an existing member and adopts the
// membership it answers with.
func (n *Node) Join(peer string) error {
	var resp joinResponse
	err := n.rpc.invoke(n.ctx, func() []string { return []string{peer} },
		http.MethodPost, "/cluster/v1/join", joinRequest{Peer: n.opts.Self}, &resp)
	if err != nil {
		return fmt.Errorf("cluster: join via %s: %w", peer, err)
	}
	for _, p := range resp.Peers {
		n.ring.Add(p)
	}
	return nil
}
