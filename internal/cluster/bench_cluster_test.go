package cluster_test

// BenchmarkClusterSubmit measures the cached submission path — the
// steady state of a cluster studying a shared corpus, where every
// clone has settled somewhere and cache-everywhere makes each
// resubmission a local hit. The 1-peer and 3-peer variants drive the
// same total client load round-robin across the membership; the
// peer-RPC counters are reported per op to pin the capacity argument:
// a cached submit costs its receiving peer zero peer RPCs, so adding
// peers adds serving capacity without adding per-request coordination.
// On a single-core host the wall-clock ns/op cannot show that scaling
// (every peer shares the one CPU) — BENCH_pr8.json records the honest
// numbers with that note, plus the rpcs/op mechanism metric.

import (
	"fmt"
	"sync/atomic"
	"testing"
	"time"

	fpspy "repro"
	"repro/internal/cluster"
	"repro/internal/server"
)

func benchCluster(b *testing.B, nPeers int) {
	peers := newTestCluster(b, nPeers, func(_ int, so *server.Options, _ *cluster.Options) {
		so.BeforeRun = nil
	})
	cfg := fpspy.Config{Mode: fpspy.ModeAggregate}
	blob := encodeJob(b, cjob(b, "bench-cached", 2))

	// Warm every peer: the first submission anywhere studies the clone
	// once; each further peer's first submission forwards, installs the
	// outcome locally, and settles. After this loop every peer serves
	// the clone from its own cache.
	for i, p := range peers {
		cl := fastClient(p.url, fmt.Sprintf("warm-%d", i))
		resp, err := cl.SubmitBlob("bench-cached", blob, cfg)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := cl.Watch(resp.ID, 2*time.Millisecond); err != nil {
			b.Fatal(err)
		}
	}

	rpcsBefore := totalForwards(peers)
	var next atomic.Int64
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		p := peers[int(next.Add(1))%len(peers)]
		cl := fastClient(p.url, fmt.Sprintf("bench-%d", next.Load()))
		for pb.Next() {
			resp, err := cl.SubmitBlob("bench-cached", blob, cfg)
			if err != nil {
				b.Fatal(err)
			}
			if !resp.CacheHit {
				b.Fatalf("submission %s missed the cache after warmup", resp.ID)
			}
		}
	})
	b.StopTimer()
	b.ReportMetric(float64(totalForwards(peers)-rpcsBefore)/float64(b.N), "peer-rpcs/op")
}

// totalForwards sums the peer RPCs the cluster issued for submissions
// (forwards to owners; the cached path must not add any).
func totalForwards(peers []*peerT) uint64 {
	var n uint64
	for _, p := range peers {
		if c := p.cm(); c != nil {
			n += c.Forwards.Load()
		}
	}
	return n
}

func BenchmarkClusterSubmit(b *testing.B) {
	for _, n := range []int{1, 3} {
		b.Run(fmt.Sprintf("peers=%d/cached", n), func(b *testing.B) { benchCluster(b, n) })
	}
}
