// Package cluster joins N fpspyd daemons into one study service: a
// consistent-hash ring keyed on the submission content address routes
// every clone to one owning peer, so cluster-wide deduplication
// inherits the single-node cache and singleflight invariants — a clone
// studied anywhere is studied once, and cached everywhere a result
// passes through. A gossip-fed health layer evicts dead peers (and
// re-admits recovered ones) with automatic ring rebalance; the RPC path
// carries per-call deadlines, capped jittered backoff, and hedged
// requests to the next ring replica; overloaded peers shed queued jobs
// to idle ones through leased work stealing. Under a full partition a
// node degrades to local-only service instead of failing submissions.
package cluster

import (
	"crypto/sha256"
	"encoding/binary"
	"sort"
	"sync"
)

// defaultVNodes is the virtual-node count per peer: enough that a
// 3–10 peer ring balances within a few percent, cheap enough that
// rebuilds on membership change stay trivial.
const defaultVNodes = 64

// Ring is a consistent-hash ring over peer URLs. Only live members
// occupy slots; eviction and re-admission rebuild the slot array, which
// moves only the evicted peer's arc — every other key keeps its owner.
type Ring struct {
	mu     sync.RWMutex
	vnodes int
	alive  map[string]bool // every known peer -> liveness
	slots  []ringSlot      // live peers' virtual nodes, sorted by hash
}

type ringSlot struct {
	hash uint64
	peer string
}

// NewRing builds a ring with vnodes virtual nodes per peer (the
// default when vnodes <= 0). The initial members are all live.
func NewRing(vnodes int, members ...string) *Ring {
	if vnodes <= 0 {
		vnodes = defaultVNodes
	}
	r := &Ring{vnodes: vnodes, alive: make(map[string]bool)}
	for _, m := range members {
		r.alive[m] = true
	}
	r.rebuild()
	return r
}

// ringHash maps a string to a ring position: the first 8 bytes of its
// SHA-256. Content addresses are themselves SHA-256 hex, so key
// placement is uniform by construction.
func ringHash(s string) uint64 {
	sum := sha256.Sum256([]byte(s))
	return binary.BigEndian.Uint64(sum[:8])
}

// rebuild regenerates the slot array from the live members. Caller
// holds r.mu.
func (r *Ring) rebuild() {
	r.slots = r.slots[:0]
	buf := make([]byte, 0, 80)
	for peer, ok := range r.alive {
		if !ok {
			continue
		}
		for i := 0; i < r.vnodes; i++ {
			buf = append(buf[:0], peer...)
			buf = append(buf, '#', byte(i), byte(i>>8))
			sum := sha256.Sum256(buf)
			r.slots = append(r.slots, ringSlot{
				hash: binary.BigEndian.Uint64(sum[:8]), peer: peer,
			})
		}
	}
	sort.Slice(r.slots, func(i, j int) bool { return r.slots[i].hash < r.slots[j].hash })
}

// Add registers peer as a live member (idempotent). It reports whether
// membership changed.
func (r *Ring) Add(peer string) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.alive[peer] {
		return false
	}
	r.alive[peer] = true
	r.rebuild()
	return true
}

// Evict marks peer dead, removing its arc from the ring; the peer stays
// known so recovery can re-admit it. Reports whether liveness changed.
func (r *Ring) Evict(peer string) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	was, known := r.alive[peer]
	if !known || !was {
		return false
	}
	r.alive[peer] = false
	r.rebuild()
	return true
}

// Alive reports peer's liveness.
func (r *Ring) Alive(peer string) bool {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.alive[peer]
}

// Members returns the live peers in unspecified order.
func (r *Ring) Members() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]string, 0, len(r.alive))
	for p, ok := range r.alive {
		if ok {
			out = append(out, p)
		}
	}
	return out
}

// Known returns every peer ever seen, live or not.
func (r *Ring) Known() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]string, 0, len(r.alive))
	for p := range r.alive {
		out = append(out, p)
	}
	return out
}

// Owner returns the live peer owning key ("" on an empty ring).
func (r *Ring) Owner(key string) string {
	reps := r.Replicas(key, 1)
	if len(reps) == 0 {
		return ""
	}
	return reps[0]
}

// Replicas returns up to n distinct live peers clockwise from key's
// ring position: the owner first, then the hedging successors.
func (r *Ring) Replicas(key string, n int) []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	if len(r.slots) == 0 || n <= 0 {
		return nil
	}
	h := ringHash(key)
	i := sort.Search(len(r.slots), func(i int) bool { return r.slots[i].hash >= h })
	out := make([]string, 0, n)
	seen := make(map[string]bool, n)
	for j := 0; j < len(r.slots) && len(out) < n; j++ {
		s := r.slots[(i+j)%len(r.slots)]
		if !seen[s.peer] {
			seen[s.peer] = true
			out = append(out, s.peer)
		}
	}
	return out
}
