package cluster_test

// The cluster-routed leg of the shadow-precision acceptance criterion:
// the same shadow job submitted via two different fpspyd peers must run
// exactly one pass cluster-wide, and the ranked attribution table must
// be byte-identical wherever it is served from. The precision is folded
// into the content address before routing, so routing and execution
// agree on ownership and a plain job over the same clone stays a
// distinct cache entry.

import (
	"fmt"
	"testing"
	"time"

	fpspy "repro"
	"repro/internal/analysis"
	"repro/internal/server"
	"repro/internal/server/client"
)

func shadowResult(t testing.TB, c *client.Client, id string) ([]analysis.RootCauseSite, *server.Summary) {
	t.Helper()
	var sites []analysis.RootCauseSite
	sum, err := c.StreamResult(id, func(line server.ResultLine) error {
		if line.Type == "site" && line.Site != nil {
			sites = append(sites, *line.Site)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return sites, sum
}

func TestClusterRoutedShadowJob(t *testing.T) {
	peers := newTestCluster(t, 3, nil)
	job := cjob(t, "shadow-routed", 4)
	cfg := fpspy.Config{Mode: fpspy.ModeIndividual}

	// Routing happens under the normalized config (precision folded in);
	// submit via a peer that does NOT own that address so the job takes
	// the forwarding path.
	eff, err := server.NormalizeShadowConfig(cfg, 113)
	if err != nil {
		t.Fatal(err)
	}
	owner := ownerIndex(t, peers, job, eff)
	via := (owner + 1) % len(peers)
	cl := fastClient(peers[via].url, "shadow-routed-a")
	resp, err := cl.SubmitShadow(job, cfg, 113)
	if err != nil {
		t.Fatal(err)
	}
	if st, err := cl.Watch(resp.ID, 5*time.Millisecond); err != nil {
		t.Fatal(err)
	} else if st.State != server.StateDone {
		t.Fatalf("job state %s (%s)", st.State, st.Error)
	}
	sites, sum := shadowResult(t, cl, resp.ID)
	if sum.ShadowPrec != 113 || len(sites) == 0 {
		t.Fatalf("routed shadow result: prec %d, %d sites", sum.ShadowPrec, len(sites))
	}
	if sites[0].Op != "divsd" || sites[0].LocalUlps <= 0 {
		t.Fatalf("rank-1 site %+v, want the inexact divsd", sites[0])
	}

	// The same shadow job via every other peer: each a settled cache hit
	// with the identical ranked table.
	for i, p := range peers {
		cl := fastClient(p.url, fmt.Sprintf("shadow-routed-%d", i))
		resp2, err := cl.SubmitShadow(job, cfg, 113)
		if err != nil {
			t.Fatalf("peer %d: %v", i, err)
		}
		st, err := cl.Watch(resp2.ID, 5*time.Millisecond)
		if err != nil {
			t.Fatalf("peer %d: %v", i, err)
		}
		if st.State != server.StateDone {
			t.Fatalf("peer %d: state %s (%s)", i, st.State, st.Error)
		}
		sites2, sum2 := shadowResult(t, cl, resp2.ID)
		if len(sites2) != len(sites) {
			t.Fatalf("peer %d: %d sites, want %d", i, len(sites2), len(sites))
		}
		for j := range sites {
			if sites[j] != sites2[j] {
				t.Fatalf("peer %d: site %d differs:\nfirst: %+v\npeer:  %+v", i, j, sites[j], sites2[j])
			}
		}
		if sum2.ShadowLocalUlps != sum.ShadowLocalUlps || sum2.ShadowMaxUlps != sum.ShadowMaxUlps {
			t.Fatalf("peer %d: summary scalars differ: %+v vs %+v", i, sum2, sum)
		}
	}

	// The acceptance criterion: one pass total, cluster-wide.
	if n := totalPasses(peers); n != 1 {
		t.Fatalf("cluster executed %d shadow passes, want 1", n)
	}

	// A plain job over the same clone is a different content address: it
	// runs its own (single) pass instead of hitting the shadow entry.
	plain, err := fastClient(peers[0].url, "shadow-plain").Submit(job, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if plain.CacheHit {
		t.Fatal("plain job hit the shadow job's cluster cache entry")
	}
}
