package cluster

// The health layer. Each node periodically probes every known peer's
// /cluster/v1/health endpoint; answers carry the peer's load and its
// liveness view of the membership (gossip), so nodes discover members
// they were never explicitly told about. EvictAfter consecutive probe
// failures evict a peer — its ring arc redistributes to the survivors —
// and the probes keep going, so a recovered peer is re-admitted
// automatically and takes its arc back. The same cadence drives work
// stealing: an idle node that sees a gossiped queue above
// StealThreshold takes a lease on a batch of the victim's queued jobs,
// runs them through its own daemon, and posts the outcomes back; the
// victim's lease janitor re-queues anything a crashed stealer never
// returned.

import (
	"context"
	"encoding/json"
	"net/http"
	"time"

	"repro/internal/server"
)

// decodeJSON is strict JSON decoding for probe/steal bodies issued
// outside the retrying invoke path.
func decodeJSON(body []byte, out any) error {
	return json.Unmarshal(body, out)
}

// healthLoop drives probing, stealing, and lease expiry until Close.
func (n *Node) healthLoop() {
	defer n.wg.Done()
	t := time.NewTicker(n.opts.ProbeInterval)
	defer t.Stop()
	for {
		select {
		case <-n.stopc:
			return
		case <-t.C:
			n.ProbeOnce()
			n.StealOnce()
			n.ExpireLeases(time.Now())
		}
	}
}

// ProbeOnce probes every known peer exactly once, applying eviction,
// re-admission, gossip merge, and load recording. Tests call it
// directly for deterministic sequencing.
func (n *Node) ProbeOnce() {
	c := n.cm()
	for _, peer := range n.ring.Known() {
		if peer == n.opts.Self {
			continue
		}
		if c != nil {
			c.Probes.Inc()
		}
		resp, err := n.probe(peer)
		if err != nil {
			if c != nil {
				c.ProbeFailures.Inc()
			}
			n.mu.Lock()
			n.fails[peer]++
			failed := n.fails[peer]
			delete(n.load, peer)
			n.mu.Unlock()
			if failed >= n.opts.EvictAfter && n.ring.Evict(peer) {
				if c != nil {
					c.Evictions.Inc()
				}
			}
			continue
		}
		n.mu.Lock()
		n.fails[peer] = 0
		n.load[peer] = resp.QueueLen
		n.mu.Unlock()
		if n.ring.Add(peer) {
			// The peer answered after an eviction (or was only known
			// through gossip): it is live again and owns its arc.
			if c != nil {
				c.Readmissions.Inc()
			}
		}
		// Gossip merge: liveness opinions stay local (each node evicts
		// on its own probes), but membership spreads — any peer the
		// answer names gets probed from now on.
		for p := range resp.Peers {
			if p == n.opts.Self || n.ring.Alive(p) {
				continue
			}
			n.mu.Lock()
			_, known := n.fails[p]
			if !known {
				n.fails[p] = 0
			}
			n.mu.Unlock()
			if !known {
				n.ring.Add(p)
			}
		}
	}
}

// probe is one bounded health exchange.
func (n *Node) probe(peer string) (*healthResponse, error) {
	ctx, cancel := context.WithTimeout(n.ctx, n.opts.ProbeTimeout)
	defer cancel()
	body, err := n.rpc.once(ctx, peer, http.MethodGet, "/cluster/v1/health", nil)
	if err != nil {
		return nil, err
	}
	var resp healthResponse
	if err := decodeJSON(body, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// StealOnce takes one batch of queued jobs from the most-loaded live
// peer when this node is idle and the peer's gossiped queue exceeds
// StealThreshold. Stolen jobs run through the local daemon (sharing its
// worker pool and cache) and their outcomes post back to the victim,
// settling the waiters parked there.
func (n *Node) StealOnce() {
	if n.srv.QueueLen() > 0 || n.srv.Draining() {
		return // busy or dying nodes don't steal
	}
	victim, load := "", 0
	n.mu.Lock()
	for p, l := range n.load {
		if l > load {
			victim, load = p, l
		}
	}
	n.mu.Unlock()
	if victim == "" || load < n.opts.StealThreshold || !n.ring.Alive(victim) {
		return
	}
	ctx, cancel := context.WithTimeout(n.ctx, n.opts.RPCTimeout)
	defer cancel()
	body, err := n.rpc.once(ctx, victim, http.MethodPost, "/cluster/v1/steal",
		stealRequest{Max: n.opts.StealBatch})
	if err != nil {
		return
	}
	var resp stealResponse
	if err := decodeJSON(body, &resp); err != nil {
		return
	}
	c := n.cm()
	for _, sj := range resp.Jobs {
		if c != nil {
			c.StealsIn.Inc()
		}
		n.wg.Add(1)
		go n.runStolen(victim, sj)
	}
}

// runStolen executes one stolen job locally and returns its outcome to
// the victim. A failed return is not retried beyond the RPC policy: the
// victim's lease janitor re-queues the job, and first-writer-wins
// settling makes the duplicate pass harmless.
func (n *Node) runStolen(victim string, sj server.StolenJob) {
	defer n.wg.Done()
	var out *server.Outcome
	var errMsg string
	res, err := n.srv.Submit(sj.Client, sj.Name, sj.Blob, sj.Config)
	if err != nil {
		errMsg = err.Error()
	} else if out, err = n.srv.WaitOutcome(n.ctx, res.ID); err != nil {
		out, errMsg = nil, err.Error()
	}
	n.rpc.invoke(n.ctx, func() []string { return []string{victim} }, //nolint:errcheck // janitor covers a lost return
		http.MethodPost, "/cluster/v1/complete",
		completeRequest{Key: sj.Key, Outcome: out, Error: errMsg}, nil)
}

// ExpireLeases re-queues stolen jobs whose stealer went silent past its
// lease. Settled-in-the-meantime leases are simply dropped.
func (n *Node) ExpireLeases(now time.Time) {
	n.mu.Lock()
	var expired []string
	for key, dl := range n.leases {
		if now.After(dl) {
			expired = append(expired, key)
		}
	}
	n.mu.Unlock()
	c := n.cm()
	for _, key := range expired {
		requeued := n.srv.RequeuePending(key)
		n.mu.Lock()
		if requeued || !n.stillStolen(key) {
			delete(n.leases, key)
		}
		n.mu.Unlock()
		if requeued && c != nil {
			c.StealRequeues.Inc()
		}
	}
}

// stillStolen reports whether key still awaits a stealer's return (a
// full local queue can make RequeuePending fail transiently; the lease
// stays and the janitor retries next tick). Caller holds n.mu.
func (n *Node) stillStolen(key string) bool {
	_, _, settled := n.srv.CachedOutcome(key)
	return !settled
}

// LoadView is this node's gossiped view of peer queue lengths.
func (n *Node) LoadView() map[string]int {
	n.mu.Lock()
	defer n.mu.Unlock()
	out := make(map[string]int, len(n.load))
	for p, l := range n.load {
		out[p] = l
	}
	return out
}
