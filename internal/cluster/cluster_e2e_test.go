package cluster_test

// The cluster end-to-end suite: 3-node in-process clusters over real
// HTTP (httptest), driven through the typed client, with the chaos
// service-fault injector on the peer RPC path. It pins the PR's
// acceptance invariants:
//
//   - cluster-wide singleflight: N clients × N nodes × one identical
//     clone → exactly one study pass anywhere;
//   - cache-everywhere: a clone studied via any peer is a cache hit on
//     every peer it passed through;
//   - kill/restart: no job is lost when its owner dies mid-study, and
//     the dead peer is evicted then re-admitted on recovery;
//   - full partition: a node with no reachable peers degrades to
//     local-only service instead of failing submissions;
//   - work stealing: an idle peer drains an overloaded one's queue,
//     and expired leases re-queue on the victim.

import (
	"fmt"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	fpspy "repro"
	"repro/internal/chaos"
	"repro/internal/cluster"
	"repro/internal/isa"
	"repro/internal/jobs"
	"repro/internal/obs"
	"repro/internal/server"
	"repro/internal/server/client"
)

// cjob builds a tiny clone whose divides raise inexact conditions.
func cjob(t testing.TB, name string, divs int) *jobs.Job {
	t.Helper()
	b := fpspy.NewProgram(name)
	b.Movi(isa.R1, int64(math.Float64bits(1)))
	b.Movqx(isa.X0, isa.R1)
	b.Movi(isa.R1, int64(math.Float64bits(3)))
	b.Movqx(isa.X1, isa.R1)
	for i := 0; i < divs; i++ {
		b.FP2(isa.OpDIVSD, isa.X2, isa.X0, isa.X1)
	}
	b.Hlt()
	return jobs.Capture(name, b.Build(), nil, 4<<20)
}

func encodeJob(t testing.TB, j *jobs.Job) []byte {
	t.Helper()
	blob, err := j.Encode()
	if err != nil {
		t.Fatal(err)
	}
	return blob
}

// peerT is one live cluster member plus its bookkeeping.
type peerT struct {
	url    string
	ts     *httptest.Server
	hold   atomic.Pointer[cluster.Node]
	srv    *server.Server
	node   *cluster.Node
	om     *obs.Metrics
	passes atomic.Int32
}

func (p *peerT) cm() *obs.ClusterMetrics { return p.om.ClusterMetricsOrNil() }

// kill makes the peer unreachable: in-flight connections drop and
// later requests answer 503 — indistinguishable from a crashed daemon
// to the rest of the ring.
func (p *peerT) kill() {
	p.hold.Store(nil)
	p.ts.CloseClientConnections()
}

// restart brings the same node back on the same URL.
func (p *peerT) restart() { p.hold.Store(p.node) }

// newTestCluster boots n nodes on real listeners, fully meshed.
// Background probe/steal loops are off — tests drive ProbeOnce and
// StealOnce for deterministic sequencing.
func newTestCluster(t testing.TB, n int, mod func(i int, so *server.Options, co *cluster.Options)) []*peerT {
	t.Helper()
	peers := make([]*peerT, n)
	for i := range peers {
		p := &peerT{}
		p.ts = httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			if nd := p.hold.Load(); nd != nil {
				nd.ServeHTTP(w, r)
				return
			}
			w.Header().Set("Retry-After", "1")
			http.Error(w, "peer down", http.StatusServiceUnavailable)
		}))
		p.url = p.ts.URL
		peers[i] = p
	}
	urls := make([]string, n)
	for i, p := range peers {
		urls[i] = p.url
	}
	for i, p := range peers {
		p := p
		p.om = obs.New(obs.Options{})
		others := make([]string, 0, n-1)
		for j, u := range urls {
			if j != i {
				others = append(others, u)
			}
		}
		so := server.Options{
			Workers: 2, Shards: 2, QueueDepth: 32, Obs: p.om,
			BeforeRun: func(string) { p.passes.Add(1) },
		}
		co := cluster.Options{
			Self: p.url, Peers: others, Obs: p.om,
			ProbeInterval: -1, ProbeTimeout: 250 * time.Millisecond,
			RPCTimeout: 20 * time.Second, HedgeAfter: -1,
			RetryMax: 3, RetryBaseWait: 2 * time.Millisecond, RetryMaxWait: 50 * time.Millisecond,
		}
		if mod != nil {
			mod(i, &so, &co)
		}
		srv, err := server.New(so)
		if err != nil {
			t.Fatal(err)
		}
		co.Server = srv
		node, err := cluster.NewNode(co)
		if err != nil {
			t.Fatal(err)
		}
		p.srv, p.node = srv, node
		p.hold.Store(node)
	}
	t.Cleanup(func() {
		for _, p := range peers {
			p.ts.Close()
			p.node.Close()
			p.srv.Shutdown() //nolint:errcheck // teardown
		}
	})
	return peers
}

func totalPasses(peers []*peerT) int32 {
	var n int32
	for _, p := range peers {
		n += p.passes.Load()
	}
	return n
}

// fastClient is a retrying client pinned to one peer.
func fastClient(url, id string) *client.Client {
	c := client.New(url, id)
	c.RetryMax = 40
	c.RetryBaseWait = 2 * time.Millisecond
	c.RetryMaxWait = 50 * time.Millisecond
	return c
}

// ownerIndex finds which peer owns blob's content address, as seen
// from peers[0]'s ring.
func ownerIndex(t testing.TB, peers []*peerT, j *jobs.Job, cfg fpspy.Config) int {
	t.Helper()
	key := server.CacheKey(j, cfg)
	owner := peers[0].node.Ring().Owner(key)
	for i, p := range peers {
		if p.url == owner {
			return i
		}
	}
	t.Fatalf("owner %s of %s is not a cluster member", owner, key)
	return -1
}

// jobOwnedBy generates a clone whose content address lands on the
// wanted peer.
func jobOwnedBy(t testing.TB, peers []*peerT, want int, cfg fpspy.Config) *jobs.Job {
	t.Helper()
	for i := 0; i < 512; i++ {
		j := cjob(t, fmt.Sprintf("owned-%d-%d", want, i), 1+i%5)
		if ownerIndex(t, peers, j, cfg) == want {
			return j
		}
	}
	t.Fatal("no clone found owned by wanted peer")
	return nil
}

func TestClusterSingleflight(t *testing.T) {
	peers := newTestCluster(t, 3, nil)
	cfg := fpspy.Config{Mode: fpspy.ModeAggregate}
	blob := encodeJob(t, cjob(t, "singleflight", 3))

	const perNode = 3
	var wg sync.WaitGroup
	summaries := make(chan *server.Summary, len(peers)*perNode)
	errs := make(chan error, len(peers)*perNode)
	for pi, p := range peers {
		for ci := 0; ci < perNode; ci++ {
			wg.Add(1)
			go func(pi, ci int, url string) {
				defer wg.Done()
				cl := fastClient(url, fmt.Sprintf("client-%d-%d", pi, ci))
				resp, err := cl.SubmitBlob("singleflight", blob, cfg)
				if err != nil {
					errs <- fmt.Errorf("submit via peer %d: %w", pi, err)
					return
				}
				if st, err := cl.Watch(resp.ID, 5*time.Millisecond); err != nil {
					errs <- fmt.Errorf("watch %s via peer %d: %w", resp.ID, pi, err)
					return
				} else if st.State != server.StateDone {
					errs <- fmt.Errorf("job %s via peer %d: state %s (%s)", resp.ID, pi, st.State, st.Error)
					return
				}
				res, err := cl.Result(resp.ID)
				if err != nil {
					errs <- fmt.Errorf("result %s via peer %d: %w", resp.ID, pi, err)
					return
				}
				summaries <- &res.Summary
			}(pi, ci, p.url)
		}
	}
	wg.Wait()
	close(errs)
	close(summaries)
	for err := range errs {
		t.Fatal(err)
	}
	var first *server.Summary
	for s := range summaries {
		if first == nil {
			first = s
			continue
		}
		if s.Steps != first.Steps || s.EventSet != first.EventSet || s.Events != first.Events {
			t.Fatalf("inconsistent results: %+v vs %+v", s, first)
		}
	}
	if got := totalPasses(peers); got != 1 {
		t.Fatalf("cluster ran %d passes for one clone across %d clients, want exactly 1",
			got, len(peers)*3)
	}
}

func TestClusterCacheEverywhere(t *testing.T) {
	peers := newTestCluster(t, 3, nil)
	cfg := fpspy.Config{Mode: fpspy.ModeAggregate}
	// A clone owned by peer 1, always submitted via other peers.
	j := jobOwnedBy(t, peers, 1, cfg)
	blob := encodeJob(t, j)

	settle := func(url string) *server.StatusResponse {
		t.Helper()
		cl := fastClient(url, "cache-everywhere")
		resp, err := cl.SubmitBlob(j.Name, blob, cfg)
		if err != nil {
			t.Fatal(err)
		}
		st, err := cl.Watch(resp.ID, 5*time.Millisecond)
		if err != nil {
			t.Fatal(err)
		}
		if st.State != server.StateDone {
			t.Fatalf("job %s: state %s (%s)", resp.ID, st.State, st.Error)
		}
		return st
	}
	settle(peers[0].url)
	if got := totalPasses(peers); got != 1 {
		t.Fatalf("first submission ran %d passes, want 1", got)
	}
	if peers[1].passes.Load() != 1 {
		t.Fatal("the pass must run on the owning peer")
	}
	// Same clone via the third peer: the owner answers from cache.
	settle(peers[2].url)
	// And again via the first: its local install from the forward makes
	// this a zero-RPC local hit.
	st := settle(peers[0].url)
	if !st.CacheHit {
		t.Fatal("resubmission via the forwarding peer should be a cache hit")
	}
	if got := totalPasses(peers); got != 1 {
		t.Fatalf("cluster ran %d passes total, want 1 (cache everywhere)", got)
	}
	if c := peers[0].cm(); c.Forwards.Load() == 0 {
		t.Fatal("peer 0 never recorded a forward")
	}
	if c := peers[0].cm(); c.ForwardsLocal.Load() == 0 {
		t.Fatal("peer 0 never recorded a local cache serve")
	}
}

func TestClusterKillRestartNoLoss(t *testing.T) {
	gate := make(chan struct{})
	var gateOnce sync.Once
	started := make(chan struct{}, 8)
	peers := newTestCluster(t, 3, func(i int, so *server.Options, co *cluster.Options) {
		if i == 1 {
			prev := so.BeforeRun
			so.BeforeRun = func(id string) {
				prev(id)
				started <- struct{}{}
				<-gate
			}
		}
		co.RetryMax = 2
		co.RPCTimeout = 5 * time.Second
	})
	defer gateOnce.Do(func() { close(gate) })
	cfg := fpspy.Config{Mode: fpspy.ModeAggregate}
	j := jobOwnedBy(t, peers, 1, cfg)
	blob := encodeJob(t, j)

	cl := fastClient(peers[0].url, "kill-restart")
	resp, err := cl.SubmitBlob(j.Name, blob, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// The owner is now mid-study on this clone. Kill it.
	<-started
	peers[1].kill()

	// The job must still settle exactly once for the watcher: the
	// forwarding peer's retries fail over to a degraded local run.
	st, err := cl.Watch(resp.ID, 5*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if st.State != server.StateDone {
		t.Fatalf("job %s after owner kill: state %s (%s)", resp.ID, st.State, st.Error)
	}
	if peers[0].cm().PartitionLocal.Load() == 0 {
		t.Fatal("forwarding peer should have degraded to a local run")
	}

	// The dead peer is evicted after EvictAfter failed probes...
	peers[0].node.ProbeOnce()
	peers[0].node.ProbeOnce()
	if peers[0].node.Ring().Alive(peers[1].url) {
		t.Fatal("dead peer still live after two failed probes")
	}
	if peers[0].cm().Evictions.Load() == 0 {
		t.Fatal("eviction not recorded")
	}

	// ...and re-admitted on recovery, taking its arc back.
	gateOnce.Do(func() { close(gate) })
	peers[1].restart()
	peers[0].node.ProbeOnce()
	if !peers[0].node.Ring().Alive(peers[1].url) {
		t.Fatal("recovered peer not re-admitted")
	}
	if peers[0].cm().Readmissions.Load() == 0 {
		t.Fatal("re-admission not recorded")
	}
}

func TestClusterPartitionDegradesLocal(t *testing.T) {
	peers := newTestCluster(t, 3, func(i int, so *server.Options, co *cluster.Options) {
		co.RetryMax = 2
		co.RPCTimeout = 2 * time.Second
	})
	// Sever peer 0 from everyone: the other two go dark.
	peers[1].kill()
	peers[2].kill()

	cfg := fpspy.Config{Mode: fpspy.ModeAggregate}
	cl := fastClient(peers[0].url, "partitioned")
	// Several clones — some foreign-owned, some self-owned — all must
	// settle locally.
	for i := 0; i < 4; i++ {
		j := cjob(t, fmt.Sprintf("partition-%d", i), i+1)
		resp, err := cl.SubmitBlob(j.Name, encodeJob(t, j), cfg)
		if err != nil {
			t.Fatalf("submit %d under partition: %v", i, err)
		}
		st, err := cl.Watch(resp.ID, 5*time.Millisecond)
		if err != nil {
			t.Fatalf("watch %d under partition: %v", i, err)
		}
		if st.State != server.StateDone {
			t.Fatalf("job %d under partition: state %s (%s)", i, st.State, st.Error)
		}
	}
	if peers[0].passes.Load() == 0 {
		t.Fatal("partitioned peer ran no local passes")
	}
	// After eviction the ring is local-only and submissions stop
	// attempting forwards entirely.
	peers[0].node.ProbeOnce()
	peers[0].node.ProbeOnce()
	if len(peers[0].node.Ring().Members()) != 1 {
		t.Fatalf("ring members after full partition = %v, want self only",
			peers[0].node.Ring().Members())
	}
	j := cjob(t, "partition-after-evict", 2)
	resp, err := cl.SubmitBlob(j.Name, encodeJob(t, j), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if st, err := cl.Watch(resp.ID, 5*time.Millisecond); err != nil || st.State != server.StateDone {
		t.Fatalf("local-only submission: %v / %+v", err, st)
	}
}

func TestClusterWorkStealing(t *testing.T) {
	gate := make(chan struct{})
	started := make(chan struct{}, 1)
	peers := newTestCluster(t, 2, func(i int, so *server.Options, co *cluster.Options) {
		co.StealThreshold = 2
		co.StealBatch = 2
		if i == 0 {
			so.Workers = 1
			so.Shards = 1
			prev := so.BeforeRun
			so.BeforeRun = func(id string) {
				prev(id)
				if id == "job-000001" {
					started <- struct{}{}
					<-gate
				}
			}
		}
	})
	defer close(gate)
	cfg := fpspy.Config{Mode: fpspy.ModeAggregate}

	// Jam peer 0: one blocked pass, four queued behind it.
	if _, err := peers[0].srv.Submit("vic", "jam", encodeJob(t, cjob(t, "jam", 1)), cfg); err != nil {
		t.Fatal(err)
	}
	<-started
	var queuedIDs []string
	for i := 0; i < 4; i++ {
		res, err := peers[0].srv.Submit("vic", fmt.Sprintf("steal-%d", i),
			encodeJob(t, cjob(t, fmt.Sprintf("steal-%d", i), i+2)), cfg)
		if err != nil {
			t.Fatal(err)
		}
		queuedIDs = append(queuedIDs, res.ID)
	}

	// Peer 1 learns of the load and steals a batch.
	peers[1].node.ProbeOnce()
	if peers[1].node.LoadView()[peers[0].url] != 4 {
		t.Fatalf("gossip load view = %v, want 4 for the victim", peers[1].node.LoadView())
	}
	peers[1].node.StealOnce()

	// The stolen jobs settle on the victim without its worker moving.
	deadline := time.Now().Add(30 * time.Second)
	settled := 0
	for _, id := range queuedIDs {
		for time.Now().Before(deadline) {
			st, err := peers[0].srv.JobState(id)
			if err != nil {
				t.Fatal(err)
			}
			if st == server.StateDone {
				settled++
				break
			}
			time.Sleep(5 * time.Millisecond)
		}
		if settled >= 2 {
			break
		}
	}
	if settled < 2 {
		t.Fatalf("only %d stolen jobs settled, want the stolen batch of 2", settled)
	}
	if peers[1].passes.Load() == 0 {
		t.Fatal("stealer ran no passes")
	}
	if peers[1].cm().StealsIn.Load() == 0 || peers[0].cm().StealsOut.Load() == 0 {
		t.Fatal("steal metrics not recorded on both sides")
	}
}

func TestClusterStealLeaseExpiry(t *testing.T) {
	gate := make(chan struct{})
	started := make(chan struct{}, 1)
	peers := newTestCluster(t, 2, func(i int, so *server.Options, co *cluster.Options) {
		co.LeaseTimeout = 50 * time.Millisecond
		if i == 0 {
			so.Workers = 1
			so.Shards = 1
			prev := so.BeforeRun
			so.BeforeRun = func(id string) {
				prev(id)
				if id == "job-000001" {
					started <- struct{}{}
					<-gate
				}
			}
		}
	})
	cfg := fpspy.Config{Mode: fpspy.ModeAggregate}
	if _, err := peers[0].srv.Submit("vic", "jam2", encodeJob(t, cjob(t, "jam2", 1)), cfg); err != nil {
		t.Fatal(err)
	}
	<-started
	res, err := peers[0].srv.Submit("vic", "leased", encodeJob(t, cjob(t, "leased", 3)), cfg)
	if err != nil {
		t.Fatal(err)
	}

	// Steal directly over HTTP and never return the outcome: a stealer
	// that died mid-job.
	hreq, _ := http.NewRequest(http.MethodPost, peers[0].url+"/cluster/v1/steal",
		jsonBody(`{"max":1}`))
	hreq.Header.Set("Content-Type", "application/json")
	hresp, err := http.DefaultClient.Do(hreq)
	if err != nil {
		t.Fatal(err)
	}
	hresp.Body.Close() //nolint:errcheck // test
	if hresp.StatusCode != http.StatusOK {
		t.Fatalf("steal RPC = %d", hresp.StatusCode)
	}

	// The lease expires; the janitor re-queues the job; the victim runs
	// it itself once its worker frees up.
	time.Sleep(60 * time.Millisecond)
	peers[0].node.ExpireLeases(time.Now())
	if peers[0].cm().StealRequeues.Load() == 0 {
		t.Fatal("expired lease did not re-queue")
	}
	close(gate)
	deadline := time.Now().Add(30 * time.Second)
	for {
		st, err := peers[0].srv.JobState(res.ID)
		if err != nil {
			t.Fatal(err)
		}
		if st == server.StateDone {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("re-queued job stuck in %s", st)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestClusterFaultSweep runs the whole service-fault family against a
// 3-node cluster: under seeded RPC delay, drop, and corruption, every
// submission still settles, identical clones agree on their results,
// and nothing is lost — at worst the cluster trades extra passes
// (hedges, degraded local runs) for availability.
func TestClusterFaultSweep(t *testing.T) {
	cfg := fpspy.Config{Mode: fpspy.ModeAggregate}
	for _, sc := range chaos.ServiceFaultScenarios(11) {
		t.Run(sc.Name, func(t *testing.T) {
			peers := newTestCluster(t, 3, func(i int, so *server.Options, co *cluster.Options) {
				spec := sc.Spec
				spec.Seed += int64(i)
				co.HTTPClient = &http.Client{Transport: spec.Transport(nil)}
				co.RetryMax = 6
				co.HedgeAfter = 25 * time.Millisecond
				co.RPCTimeout = 10 * time.Second
			})
			const clones = 4
			type res struct {
				clone int
				sum   *server.Summary
				err   error
			}
			var wg sync.WaitGroup
			out := make(chan res, clones*2)
			for c := 0; c < clones; c++ {
				// Each clone submitted twice, via different peers.
				for dup := 0; dup < 2; dup++ {
					wg.Add(1)
					go func(c, dup int) {
						defer wg.Done()
						j := cjob(t, fmt.Sprintf("fault-%s-%d", sc.Name, c), c+2)
						cl := fastClient(peers[(c+dup)%len(peers)].url, fmt.Sprintf("cl-%d-%d", c, dup))
						resp, err := cl.SubmitBlob(j.Name, encodeJob(t, j), cfg)
						if err != nil {
							out <- res{c, nil, fmt.Errorf("submit clone %d dup %d: %w", c, dup, err)}
							return
						}
						st, err := cl.Watch(resp.ID, 5*time.Millisecond)
						if err != nil {
							out <- res{c, nil, fmt.Errorf("watch clone %d dup %d: %w", c, dup, err)}
							return
						}
						if st.State != server.StateDone {
							out <- res{c, nil, fmt.Errorf("clone %d dup %d: state %s (%s)", c, dup, st.State, st.Error)}
							return
						}
						r, err := cl.Result(resp.ID)
						if err != nil {
							out <- res{c, nil, fmt.Errorf("result clone %d dup %d: %w", c, dup, err)}
							return
						}
						out <- res{c, &r.Summary, nil}
					}(c, dup)
				}
			}
			wg.Wait()
			close(out)
			bySteps := map[int]uint64{}
			for r := range out {
				if r.err != nil {
					t.Fatal(r.err)
				}
				if prev, ok := bySteps[r.clone]; ok && prev != r.sum.Steps {
					t.Fatalf("clone %d: divergent results under faults (%d vs %d steps)",
						r.clone, prev, r.sum.Steps)
				}
				bySteps[r.clone] = r.sum.Steps
			}
		})
	}
}

// jsonBody builds a request body from a literal.
func jsonBody(s string) *strings.Reader { return strings.NewReader(s) }
