// Package mpi provides the distributed-memory substrate the study's MPI
// applications (LAMMPS, LAGHOS, WRF, ENZO, GROMACS) rely on: an
// mpirun-style launcher that starts N ranks of the same binary, and a
// small message-passing library (libmpi.so) linked into each rank.
//
// The paper's point about MPI is operational, and this reproduction
// preserves it exactly: FPSpy attaches to MPI jobs *because environment
// variables are inherited through the launcher* — mpirun simply starts
// each rank with LD_PRELOAD and the FPE_* settings intact, and FPSpy
// produces an independent trace for every rank (distinct pid) and thread.
//
// Message passing is polling-based (MPI_Iprobe style): receives and
// barriers return a readiness flag and the guest loops, which keeps the
// cooperative scheduler deterministic.
//
// Guest interface (callc):
//
//	MPI_Comm_rank                    -> r1 = rank
//	MPI_Comm_size                    -> r1 = size
//	MPI_Send      (r1=dest, r2=val)  -> r1 = 0
//	MPI_Recv_poll (r1=src)           -> r1 = ok, r2 = value
//	MPI_Barrier_poll                 -> r1 = ok
package mpi

import (
	"fmt"
	"strconv"

	"repro/internal/isa"
	"repro/internal/kernel"
)

// PreloadName is the shared object name of the MPI library.
const PreloadName = "libmpi.so"

// World is the communicator state shared by all ranks of one job.
type World struct {
	size int
	// boxes[src*size+dst] is the in-flight message queue.
	boxes map[int][]uint64
	// barrier state: barriersDone counts fully-released barriers;
	// completed[r] counts barriers rank r has passed; arrived marks
	// ranks waiting at the barrier currently forming.
	barriersDone int
	completed    map[int]int
	arrived      map[int]bool
	// Sends counts messages for diagnostics.
	Sends uint64
}

// NewWorld creates communicator state for size ranks.
func NewWorld(size int) *World {
	return &World{
		size:      size,
		boxes:     make(map[int][]uint64),
		completed: make(map[int]int),
		arrived:   make(map[int]bool),
	}
}

// rankOf reads a process's rank from its environment.
func rankOf(p *kernel.Process) int {
	r, _ := strconv.Atoi(p.Env["MPI_RANK"])
	return r
}

// factory builds the per-process library object bound to the world.
func factory(w *World) kernel.ObjectFactory {
	return func(p *kernel.Process) *kernel.Object {
		o := &kernel.Object{Name: PreloadName, Syms: map[string]kernel.Symbol{}}
		s := o.Syms
		s["MPI_Comm_rank"] = func(k *kernel.Kernel, t *kernel.Task) {
			t.M.CPU.R[isa.R1] = uint64(rankOf(t.Proc))
		}
		s["MPI_Comm_size"] = func(k *kernel.Kernel, t *kernel.Task) {
			t.M.CPU.R[isa.R1] = uint64(w.size)
		}
		s["MPI_Send"] = func(k *kernel.Kernel, t *kernel.Task) {
			dst := int(t.M.CPU.R[isa.R1])
			val := t.M.CPU.R[isa.R2]
			key := rankOf(t.Proc)*w.size + dst%w.size
			w.boxes[key] = append(w.boxes[key], val)
			w.Sends++
			t.M.CPU.R[isa.R1] = 0
		}
		s["MPI_Recv_poll"] = func(k *kernel.Kernel, t *kernel.Task) {
			src := int(t.M.CPU.R[isa.R1])
			key := (src%w.size)*w.size + rankOf(t.Proc)
			q := w.boxes[key]
			if len(q) == 0 {
				t.M.CPU.R[isa.R1] = 0
				return
			}
			t.M.CPU.R[isa.R1] = 1
			t.M.CPU.R[isa.R2] = q[0]
			w.boxes[key] = q[1:]
		}
		s["MPI_Barrier_poll"] = func(k *kernel.Kernel, t *kernel.Task) {
			me := rankOf(t.Proc)
			if w.completed[me] < w.barriersDone {
				// Released by an arrival that completed while this rank
				// was between polls.
				w.completed[me]++
				t.M.CPU.R[isa.R1] = 1
				return
			}
			w.arrived[me] = true
			if len(w.arrived) == w.size {
				w.barriersDone++
				w.arrived = make(map[int]bool)
				w.completed[me]++
				t.M.CPU.R[isa.R1] = 1
				return
			}
			t.M.CPU.R[isa.R1] = 0
		}
		return o
	}
}

// Launch starts an MPI job: ranks processes of prog, each with MPI_RANK
// and MPI_SIZE in its environment, LD_PRELOAD extended with libmpi.so
// after whatever the caller already put there (FPSpy, typically — the
// production launch path).
func Launch(k *kernel.Kernel, prog *isa.Program, ranks, memBytes int, env map[string]string) (*World, []*kernel.Process, error) {
	w := NewWorld(ranks)
	k.RegisterPreload(PreloadName, factory(w))
	procs := make([]*kernel.Process, 0, ranks)
	for r := 0; r < ranks; r++ {
		rankEnv := make(map[string]string, len(env)+3)
		for key, v := range env {
			rankEnv[key] = v
		}
		if ld := rankEnv["LD_PRELOAD"]; ld != "" {
			rankEnv["LD_PRELOAD"] = ld + ":" + PreloadName
		} else {
			rankEnv["LD_PRELOAD"] = PreloadName
		}
		rankEnv["MPI_RANK"] = strconv.Itoa(r)
		rankEnv["MPI_SIZE"] = strconv.Itoa(ranks)
		p, err := k.Spawn(prog, memBytes, rankEnv)
		if err != nil {
			return nil, nil, fmt.Errorf("mpi: rank %d: %w", r, err)
		}
		procs = append(procs, p)
	}
	return w, procs, nil
}
