package mpi_test

import (
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/isa"
	"repro/internal/kernel"
	"repro/internal/mpi"
	"repro/internal/softfloat"
)

// buildRingProgram: each rank computes rank/3.0 (Inexact), sends the
// bits to rank+1, receives from rank-1, accumulates, hits a barrier,
// and rank 0 additionally divides by zero after the barrier.
func buildRingProgram() *isa.Program {
	b := isa.NewBuilder("mpi-ring")
	b.CallC("MPI_Comm_rank")
	b.Mov(isa.R10, isa.R1) // rank
	b.CallC("MPI_Comm_size")
	b.Mov(isa.R11, isa.R1) // size

	// value = rank / 3.0 (rounds for rank not divisible by 3)
	b.Cvt(isa.OpCVTSI2SD, isa.X0, isa.R10)
	b.Movi(isa.R6, int64(math.Float64bits(3)))
	b.Movqx(isa.X1, isa.R6)
	b.FP2(isa.OpDIVSD, isa.X2, isa.X0, isa.X1)

	// send to (rank+1) % size
	b.Addi(isa.R1, isa.R10, 1)
	b.Remq(isa.R1, isa.R1, isa.R11)
	b.Movxq(isa.R2, isa.X2)
	b.CallC("MPI_Send")

	// receive from (rank-1+size) % size, polling
	b.Add(isa.R12, isa.R10, isa.R11)
	b.Addi(isa.R12, isa.R12, -1)
	b.Remq(isa.R12, isa.R12, isa.R11)
	recv := b.Label("recv")
	b.Bind(recv)
	b.Mov(isa.R1, isa.R12)
	b.CallC("MPI_Recv_poll")
	b.Beq(isa.R1, isa.R0, recv)
	b.Movqx(isa.X3, isa.R2)                    // neighbor's value
	b.FP2(isa.OpADDSD, isa.X4, isa.X2, isa.X3) // accumulate (rounds)

	// barrier
	bar := b.Label("bar")
	b.Bind(bar)
	b.CallC("MPI_Barrier_poll")
	b.Beq(isa.R1, isa.R0, bar)

	// rank 0 divides by zero after the barrier
	skip := b.Label("skip")
	b.Bne(isa.R10, isa.R0, skip)
	b.Movi(isa.R6, int64(math.Float64bits(5)))
	b.Movqx(isa.X5, isa.R6)
	b.Movqx(isa.X6, isa.R0)
	b.FP2(isa.OpDIVSD, isa.X7, isa.X5, isa.X6)
	b.Bind(skip)
	b.Hlt()
	return b.Build()
}

func runMPIJob(t *testing.T, ranks int, env map[string]string, store *core.Store) (*kernel.Kernel, *mpi.World, []*kernel.Process) {
	t.Helper()
	k := kernel.New()
	if store != nil {
		k.RegisterPreload(core.PreloadName, core.Factory(store))
	}
	w, procs, err := mpi.Launch(k, buildRingProgram(), ranks, 1<<21, env)
	if err != nil {
		t.Fatal(err)
	}
	k.Run(50_000_000)
	for i, p := range procs {
		if !p.Exited {
			t.Fatalf("rank %d did not exit", i)
		}
		if p.ExitCode != 0 {
			t.Fatalf("rank %d exit %d", i, p.ExitCode)
		}
	}
	return k, w, procs
}

func TestRingCommunicates(t *testing.T) {
	_, w, procs := runMPIJob(t, 4, nil, nil)
	if w.Sends != 4 {
		t.Errorf("sends = %d, want 4", w.Sends)
	}
	// Each rank accumulated rank/3 + prev/3.
	for i, p := range procs {
		got := math.Float64frombits(p.Tasks[0].M.CPU.X[isa.X4][0])
		prev := (i + 3) % 4
		want := float64(i)/3.0 + float64(prev)/3.0
		if math.Abs(got-want) > 1e-12 {
			t.Errorf("rank %d accumulated %v, want %v", i, got, want)
		}
	}
}

// TestFPSpyUnderMpirun reproduces the paper's operational claim: putting
// FPSpy in the launcher's environment attaches it to every rank, with an
// independent trace per rank.
func TestFPSpyUnderMpirun(t *testing.T) {
	store := core.NewStore()
	cfg := core.Config{Mode: core.ModeIndividual, ExceptList: core.AllEvents, VirtualTimer: true}
	env := cfg.EnvVars() // includes LD_PRELOAD=fpspy.so
	const ranks = 4
	_, _, procs := runMPIJob(t, ranks, env, store)

	threads := store.Threads()
	if len(threads) != ranks {
		t.Fatalf("traced threads = %d, want one per rank", len(threads))
	}
	pids := map[int]bool{}
	for _, key := range threads {
		pids[key.PID] = true
	}
	if len(pids) != ranks {
		t.Errorf("traces from %d distinct pids, want %d", len(pids), ranks)
	}
	// Only rank 0 divided by zero.
	var zeRanks int
	for _, key := range threads {
		recs, err := store.Records(key)
		if err != nil {
			t.Fatal(err)
		}
		for i := range recs {
			if recs[i].Event == softfloat.FlagDivideByZero {
				zeRanks++
				if key.PID != procs[0].PID {
					t.Errorf("ZE in wrong rank pid %d", key.PID)
				}
			}
		}
	}
	if zeRanks != 1 {
		t.Errorf("ZE events = %d, want 1 (rank 0 only)", zeRanks)
	}
}

func TestAggregateUnderMpirun(t *testing.T) {
	store := core.NewStore()
	cfg := core.Config{Mode: core.ModeAggregate, ExceptList: core.AllEvents, VirtualTimer: true}
	_, _, procs := runMPIJob(t, 3, cfg.EnvVars(), store)
	aggs := store.Aggregates()
	if len(aggs) != 3 {
		t.Fatalf("aggregates = %d, want 3", len(aggs))
	}
	var ze int
	for _, a := range aggs {
		if a.Flags&softfloat.FlagDivideByZero != 0 {
			ze++
		}
		// Rank 0's arithmetic (0/3, 0+x) is exact; every other rank
		// rounds.
		if a.PID != procs[0].PID && a.Flags&softfloat.FlagInexact == 0 {
			t.Errorf("rank pid %d missing PE", a.PID)
		}
	}
	if ze != 1 {
		t.Errorf("ZE ranks = %d, want 1", ze)
	}
}

func TestBarrierSequences(t *testing.T) {
	// Two consecutive barriers must both release (regression for the
	// generation bookkeeping).
	b := isa.NewBuilder("barriers")
	for i := 0; i < 2; i++ {
		bar := b.Label("bar")
		b.Bind(bar)
		b.CallC("MPI_Barrier_poll")
		b.Beq(isa.R1, isa.R0, bar)
	}
	b.Movi(isa.R9, 99)
	b.Hlt()
	k := kernel.New()
	_, procs, err := mpi.Launch(k, b.Build(), 3, 1<<20, nil)
	if err != nil {
		t.Fatal(err)
	}
	k.Run(10_000_000)
	for i, p := range procs {
		if !p.Exited {
			t.Fatalf("rank %d stuck", i)
		}
		if p.Tasks[0].M.CPU.R[isa.R9] != 99 {
			t.Errorf("rank %d did not pass both barriers", i)
		}
	}
}
