package chaos

import (
	"io"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/kernel"
	"repro/internal/obs"
)

// TestThreadStormSharedRegistryRace runs several thread-storm scenarios
// concurrently against one shared observability registry while readers
// continuously snapshot it and export the trace. Thread storms are the
// most hostile instrumentation workload in the repository — many guest
// threads faulting at once, all funneling into the same counters and
// tracer ring. Run under -race (the CI race job does), this pins the
// registry's thread-safety contract at its worst case.
func TestThreadStormSharedRegistryRace(t *testing.T) {
	om := obs.New(obs.Options{TraceCapacity: 1 << 14})

	done := make(chan struct{})
	var readers sync.WaitGroup
	for i := 0; i < 2; i++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			for {
				select {
				case <-done:
					return
				default:
					snap := om.Snapshot()
					_ = snap.Counters["spy.faults"]
					_ = om.Tracer.ExportJSON(io.Discard)
				}
			}
		}()
	}

	var wg sync.WaitGroup
	for seed := int64(1); seed <= 4; seed++ {
		sc := Generate(FamilyThreadStorm, seed)
		wg.Add(1)
		go func(sc Scenario) {
			defer wg.Done()
			k := kernel.New()
			k.Obs = om
			store := core.NewStore()
			k.RegisterPreload(core.PreloadName, core.FactoryObs(store, om))
			if _, err := k.Spawn(sc.Prog, memBytes, sc.Config.EnvVars()); err != nil {
				t.Errorf("chaos %s: spawn: %v", sc.Name, err)
				return
			}
			k.Run(maxSteps)
			for pid, p := range k.Procs {
				if !p.Exited {
					t.Errorf("chaos %s: pid %d did not exit", sc.Name, pid)
				}
			}
		}(sc)
	}
	wg.Wait()
	close(done)
	readers.Wait()

	snap := om.Snapshot()
	if snap.Counters["spy.threads-monitored"] == 0 {
		t.Error("no threads monitored; the storm never reached the spy")
	}
	if snap.Counters["spy.faults"] == 0 {
		t.Error("no faults recorded; the storm raised no FP events")
	}
}
