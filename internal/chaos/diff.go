package chaos

import (
	"fmt"
	"hash/fnv"
	"sort"

	"repro/internal/core"
	"repro/internal/isa"
	"repro/internal/kernel"
	"repro/internal/trace"
)

const (
	memBytes = 2 << 20
	maxSteps = 5_000_000
)

// TaskSnap is the guest-visible architectural state of one task at the
// end of a run. MXCSR and TF are deliberately excluded: the spy owns
// them while attached, and the paper's transparency claim is about
// results and control flow, not the exception-control plumbing itself.
type TaskSnap struct {
	TID     int
	RIP     uint64
	Retired uint64
	R       [isa.NumIntRegs]uint64
	X       [isa.NumVecRegs][isa.VecWords]uint64
	K       [isa.NumMaskRegs]uint64
}

// ProcSnap is one process's observable outcome.
type ProcSnap struct {
	PID      int
	ExitCode int
	MemSum   uint64
	Tasks    []TaskSnap
}

// Snapshot is the whole-kernel observable outcome, sorted by PID.
type Snapshot []ProcSnap

// RunResult is one execution of a scenario.
type RunResult struct {
	Store *core.Store
	Snap  Snapshot
}

// runOnce executes the scenario guest under one (spy, fastpath)
// configuration and snapshots everything the guest could observe.
func runOnce(sc Scenario, spy, noFast bool) (*RunResult, error) {
	k := kernel.New()
	k.NoFastPath = noFast
	if sc.Inject != nil {
		inj := kernel.NewInject(sc.Inject.Seed)
		inj.DelayMax = sc.Inject.DelayMax
		inj.ShuffleSched = sc.Inject.Shuffle
		inj.QuantumJitter = sc.Inject.QuantumJitter
		k.Inject = inj
	}
	store := core.NewStore()
	env := map[string]string{}
	if spy {
		k.RegisterPreload(core.PreloadName, core.Factory(store))
		env = sc.Config.EnvVars()
	}
	if _, err := k.Spawn(sc.Prog, memBytes, env); err != nil {
		return nil, fmt.Errorf("chaos %s: spawn: %w", sc.Name, err)
	}
	k.Run(maxSteps)
	for pid, p := range k.Procs {
		if !p.Exited {
			return nil, fmt.Errorf("chaos %s (spy=%v nofast=%v): pid %d did not exit within %d steps",
				sc.Name, spy, noFast, pid, maxSteps)
		}
	}
	return &RunResult{Store: store, Snap: snapshot(k)}, nil
}

func snapshot(k *kernel.Kernel) Snapshot {
	var snap Snapshot
	for _, p := range k.Procs {
		ps := ProcSnap{PID: p.PID, ExitCode: p.ExitCode, MemSum: memSum(p.Mem)}
		for _, t := range p.Tasks {
			ts := TaskSnap{TID: t.TID, RIP: t.M.CPU.RIP, Retired: t.M.Retired,
				R: t.M.CPU.R, X: t.M.CPU.X, K: t.M.CPU.K}
			ps.Tasks = append(ps.Tasks, ts)
		}
		sort.Slice(ps.Tasks, func(i, j int) bool { return ps.Tasks[i].TID < ps.Tasks[j].TID })
		snap = append(snap, ps)
	}
	sort.Slice(snap, func(i, j int) bool { return snap[i].PID < snap[j].PID })
	return snap
}

func memSum(mem []byte) uint64 {
	h := fnv.New64a()
	h.Write(mem)
	return h.Sum64()
}

// diffSnapshots returns a description of the first divergence between
// two snapshots, or "" when they are bit-identical.
func diffSnapshots(labelA, labelB string, a, b Snapshot) string {
	if len(a) != len(b) {
		return fmt.Sprintf("%s has %d processes, %s has %d", labelA, len(a), labelB, len(b))
	}
	for i := range a {
		pa, pb := a[i], b[i]
		if pa.PID != pb.PID {
			return fmt.Sprintf("process order: %s pid %d vs %s pid %d", labelA, pa.PID, labelB, pb.PID)
		}
		if pa.ExitCode != pb.ExitCode {
			return fmt.Sprintf("pid %d: exit %d (%s) vs %d (%s)", pa.PID, pa.ExitCode, labelA, pb.ExitCode, labelB)
		}
		if pa.MemSum != pb.MemSum {
			return fmt.Sprintf("pid %d: memory differs (%s %#x vs %s %#x)", pa.PID, labelA, pa.MemSum, labelB, pb.MemSum)
		}
		if len(pa.Tasks) != len(pb.Tasks) {
			return fmt.Sprintf("pid %d: %d tasks (%s) vs %d (%s)", pa.PID, len(pa.Tasks), labelA, len(pb.Tasks), labelB)
		}
		for j := range pa.Tasks {
			ta, tb := pa.Tasks[j], pb.Tasks[j]
			switch {
			case ta.TID != tb.TID:
				return fmt.Sprintf("pid %d: task order %d vs %d", pa.PID, ta.TID, tb.TID)
			case ta.RIP != tb.RIP:
				return fmt.Sprintf("pid %d tid %d: rip %#x (%s) vs %#x (%s)", pa.PID, ta.TID, ta.RIP, labelA, tb.RIP, labelB)
			case ta.Retired != tb.Retired:
				return fmt.Sprintf("pid %d tid %d: retired %d (%s) vs %d (%s)", pa.PID, ta.TID, ta.Retired, labelA, tb.Retired, labelB)
			case ta.R != tb.R:
				return fmt.Sprintf("pid %d tid %d: integer registers differ (%s vs %s)", pa.PID, ta.TID, labelA, labelB)
			case ta.X != tb.X:
				return fmt.Sprintf("pid %d tid %d: vector registers differ (%s vs %s)", pa.PID, ta.TID, labelA, labelB)
			case ta.K != tb.K:
				return fmt.Sprintf("pid %d tid %d: mask registers differ (%s vs %s)", pa.PID, ta.TID, labelA, labelB)
			}
		}
	}
	return ""
}

// Verify runs the scenario four ways — {spy-on, spy-off} x {fast path,
// precise} — and checks that every guest-visible outcome is
// bit-identical across all four. It returns the spy-on run's store for
// expectation checks.
func Verify(sc Scenario) (*core.Store, error) {
	type cfg struct {
		label       string
		spy, noFast bool
	}
	cfgs := []cfg{
		{"spy+fast", true, false},
		{"spy+precise", true, true},
		{"bare+fast", false, false},
		{"bare+precise", false, true},
	}
	results := make([]*RunResult, len(cfgs))
	for i, c := range cfgs {
		r, err := runOnce(sc, c.spy, c.noFast)
		if err != nil {
			return nil, err
		}
		results[i] = r
	}
	for i := 1; i < len(cfgs); i++ {
		if d := diffSnapshots(cfgs[0].label, cfgs[i].label, results[0].Snap, results[i].Snap); d != "" {
			return nil, fmt.Errorf("chaos %s (seed %d): transparency violated: %s", sc.Name, sc.Seed, d)
		}
	}
	// The two spy-on runs must also agree on what the monitor observed:
	// the fast path may not change degradation behavior.
	if a, b := eventSummary(results[0].Store), eventSummary(results[1].Store); a != b {
		return nil, fmt.Errorf("chaos %s (seed %d): monitor events differ across engines:\nfast:    %q\nprecise: %q",
			sc.Name, sc.Seed, a, b)
	}
	return results[0].Store, nil
}

// eventSummary flattens monitor events to their engine-independent
// parts (times are cycle counts and may shift with batching).
func eventSummary(store *core.Store) string {
	out := ""
	for _, e := range store.MonitorEvents() {
		out += fmt.Sprintf("%s/%s/%s/%s;", e.Kind, e.From, e.To, e.Reason)
	}
	return out
}

// CheckExpectation verifies the scenario's declared degradation against
// the spy-on monitor log, going through the on-disk text round trip so
// what the test asserts is exactly what fpanalyze -log would report.
func CheckExpectation(store *core.Store, sc Scenario) error {
	evs, err := trace.ParseMonitorLog([]byte(store.MonitorLog()))
	if err != nil {
		return fmt.Errorf("chaos %s: monitor log does not round-trip: %w", sc.Name, err)
	}
	if sc.ExpectKind == "" {
		for _, e := range evs {
			if e.Kind == trace.EventAbort || e.Kind == trace.EventDemote {
				return fmt.Errorf("chaos %s: unexpected degradation: %s", sc.Name, e)
			}
		}
		return nil
	}
	for _, e := range evs {
		if e.Kind != sc.ExpectKind {
			continue
		}
		switch sc.ExpectKind {
		case trace.EventSignalFight:
			if e.Signal == "" || e.Count == 0 {
				return fmt.Errorf("chaos %s: signal-fight event missing signal/count: %s", sc.Name, e)
			}
		default:
			if e.Reason == "" {
				return fmt.Errorf("chaos %s: %s event has empty reason: %s", sc.Name, e.Kind, e)
			}
			if e.Reason != string(sc.ExpectReason) {
				return fmt.Errorf("chaos %s: reason %q, want %q", sc.Name, e.Reason, sc.ExpectReason)
			}
		}
		return nil
	}
	return fmt.Errorf("chaos %s: no %s event in monitor log (%d events: %s)",
		sc.Name, sc.ExpectKind, len(evs), store.MonitorLog())
}
