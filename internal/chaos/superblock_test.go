package chaos

import (
	"testing"

	"repro/internal/core"
)

// TestSuperblockDifferential runs every chaos family with the superblock
// region cache on and off (the FPE_NOSUPERBLOCK ablation) and requires
// the guest-visible outcome — registers, mask registers, memory, exit
// codes, retirement counts — to be bit-identical, plus the recorded
// traces and monitor events. The cache is purely a dispatch shortcut:
// if it ever changes what the guest or the monitor observes, this test
// is the tripwire.
func TestSuperblockDifferential(t *testing.T) {
	for _, f := range Families() {
		f := f
		t.Run(string(f), func(t *testing.T) {
			t.Parallel()
			for seed := int64(1); seed <= 2; seed++ {
				sc := Generate(f, seed)
				sc.Config.Mode = core.ModeIndividual

				sc.Config.NoSuperblock = false
				cached, err := runOnce(sc, true, false)
				if err != nil {
					t.Fatalf("seed %d cached: %v", seed, err)
				}
				sc.Config.NoSuperblock = true
				plain, err := runOnce(sc, true, false)
				if err != nil {
					t.Fatalf("seed %d uncached: %v", seed, err)
				}
				if d := diffSnapshots("superblock", "nosuperblock", cached.Snap, plain.Snap); d != "" {
					t.Fatalf("seed %d: superblock cache changed guest state: %s", seed, d)
				}
				cr, err := cached.Store.AllRecords()
				if err != nil {
					t.Fatalf("seed %d: cached records: %v", seed, err)
				}
				ur, err := plain.Store.AllRecords()
				if err != nil {
					t.Fatalf("seed %d: uncached records: %v", seed, err)
				}
				if len(cr) != len(ur) {
					t.Fatalf("seed %d: %d records cached vs %d uncached", seed, len(cr), len(ur))
				}
				for i := range cr {
					if cr[i] != ur[i] {
						t.Fatalf("seed %d: record %d differs:\ncached:   %+v\nuncached: %+v", seed, i, cr[i], ur[i])
					}
				}
				if a, b := eventSummary(cached.Store), eventSummary(plain.Store); a != b {
					t.Fatalf("seed %d: monitor events differ:\ncached:   %q\nuncached: %q", seed, a, b)
				}
			}
		})
	}
}
