package chaos

import (
	"testing"

	"repro/internal/core"
)

// shadowDiff runs one scenario with and without the shadow-precision
// channel (FPE_SHADOW) and returns a description of the first observable
// divergence, or "" when the runs are bit-identical. The shadow channel
// is a pure observer: it recomputes retired FP instructions on the side
// but must never change guest registers, memory, control flow,
// retirement counts, recorded traces, or monitor events.
func shadowDiff(sc Scenario, prec uint64) (string, error) {
	sc.Config.ShadowPrec = 0
	bare, err := runOnce(sc, true, false)
	if err != nil {
		return "", err
	}
	sc.Config.ShadowPrec = prec
	shadowed, err := runOnce(sc, true, false)
	if err != nil {
		return "", err
	}
	if d := diffSnapshots("noshadow", "shadow", bare.Snap, shadowed.Snap); d != "" {
		return d, nil
	}
	br, err := bare.Store.AllRecords()
	if err != nil {
		return "", err
	}
	sr, err := shadowed.Store.AllRecords()
	if err != nil {
		return "", err
	}
	if len(br) != len(sr) {
		return "record count differs", nil
	}
	for i := range br {
		if br[i] != sr[i] {
			return "trace records differ", nil
		}
	}
	if a, b := eventSummary(bare.Store), eventSummary(shadowed.Store); a != b {
		return "monitor events differ", nil
	}
	return "", nil
}

// TestShadowDifferential runs every chaos family with FPE_SHADOW off and
// on and requires the guest-visible outcome — registers, mask registers,
// memory, exit codes, retirement counts — to be bit-identical, plus the
// recorded traces and monitor events. This is the acceptance criterion
// that shadow mode observes but never perturbs, held under the same
// adversarial guests (signal stealers, MXCSR stompers, fork bursts) that
// exercise every degradation path.
func TestShadowDifferential(t *testing.T) {
	for _, f := range Families() {
		f := f
		t.Run(string(f), func(t *testing.T) {
			t.Parallel()
			for seed := int64(1); seed <= 2; seed++ {
				sc := Generate(f, seed)
				sc.Config.Mode = core.ModeIndividual
				d, err := shadowDiff(sc, 113)
				if err != nil {
					t.Fatalf("seed %d: %v", seed, err)
				}
				if d != "" {
					t.Fatalf("seed %d: shadow channel changed observable state: %s", seed, d)
				}
			}
		})
	}
}

// FuzzShadowDifferential fuzzes the same transparency property over the
// (family, seed, precision) space.
func FuzzShadowDifferential(f *testing.F) {
	fams := Families()
	for i := range fams {
		f.Add(i, int64(1), uint64(113))
	}
	f.Add(0, int64(7), uint64(24))
	f.Add(3, int64(5), uint64(256))
	f.Fuzz(func(t *testing.T, fi int, seed int64, prec uint64) {
		if fi < 0 || fi >= len(fams) || seed <= 0 {
			t.Skip()
		}
		if prec < core.MinShadowPrec || prec > 512 {
			// Stay within the config's floor and keep mantissas small
			// enough that the fuzzer spends its budget on scenarios, not
			// on multi-kilobyte big.Float arithmetic.
			t.Skip()
		}
		sc := Generate(fams[fi], seed)
		sc.Config.Mode = core.ModeIndividual
		d, err := shadowDiff(sc, prec)
		if err != nil {
			t.Fatalf("%s seed %d: %v", fams[fi], seed, err)
		}
		if d != "" {
			t.Fatalf("%s seed %d prec %d: shadow channel changed observable state: %s",
				fams[fi], seed, prec, d)
		}
	})
}
