package chaos

import (
	"fmt"
	"testing"

	"repro/internal/trace"
)

// TestChaosSweep is the harness's main entry: every scenario family,
// across fixed seeds, must (a) preserve guest-visible state across
// spy-on/spy-off and fast/precise engines, and (b) record exactly the
// degradation it was built to induce, with a non-empty typed reason.
func TestChaosSweep(t *testing.T) {
	// Six seeds so every seeded sub-variant (aggressive stealer, both
	// stomper flavors, both handler-exit orders) appears in the sweep.
	seeds := []int64{1, 2, 3, 4, 5, 6}
	for _, fam := range Families() {
		for _, seed := range seeds {
			sc := Generate(fam, seed)
			t.Run(fmt.Sprintf("%s/seed%d", fam, seed), func(t *testing.T) {
				t.Parallel()
				store, err := Verify(sc)
				if err != nil {
					t.Fatal(err)
				}
				if err := CheckExpectation(store, sc); err != nil {
					t.Error(err)
				}
			})
		}
	}
}

// TestGenerateDeterministic pins the seeding contract: the same
// (family, seed) pair must produce a byte-identical guest program.
func TestGenerateDeterministic(t *testing.T) {
	for _, fam := range Families() {
		a, b := Generate(fam, 42), Generate(fam, 42)
		if a.Name != b.Name || len(a.Prog.Insts) != len(b.Prog.Insts) {
			t.Fatalf("%s: regeneration diverged (%s/%d vs %s/%d insts)",
				fam, a.Name, len(a.Prog.Insts), b.Name, len(b.Prog.Insts))
		}
		for i := range a.Prog.Insts {
			if a.Prog.Insts[i] != b.Prog.Insts[i] {
				t.Fatalf("%s: instruction %d differs", fam, i)
			}
		}
	}
}

// TestInducedAbortsAreTyped sweeps the degrading families and asserts
// every abort/demote in the monitor log carries a reason — the "no
// silent aborts" guarantee.
func TestInducedAbortsAreTyped(t *testing.T) {
	for _, fam := range Families() {
		sc := Generate(fam, 11)
		if sc.ExpectKind != trace.EventAbort && sc.ExpectKind != trace.EventDemote {
			continue
		}
		store, err := Verify(sc)
		if err != nil {
			t.Fatalf("%s: %v", fam, err)
		}
		for _, e := range store.MonitorEvents() {
			if (e.Kind == trace.EventAbort || e.Kind == trace.EventDemote) && e.Reason == "" {
				t.Errorf("%s: untyped degradation: %s", fam, e)
			}
		}
	}
}
