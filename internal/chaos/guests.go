package chaos

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/core"
	"repro/internal/isa"
	"repro/internal/kernel"
	"repro/internal/softfloat"
	"repro/internal/trace"
)

// Guest programs write progress markers into low guest memory so the
// differential check can confirm — bit-for-bit — that the application
// got exactly as far with the spy attached as without it.
const (
	markBase   = 0x200 // single-threaded scenario markers
	workerBase = 0x8000
	workerSpan = 0x40 // disjoint per-worker output regions
)

// loadF64 materializes a float64 constant into vector register x,
// clobbering the scratch integer register.
func loadF64(b *isa.Builder, x int, v float64, scratch int) {
	b.Movi(scratch, int64(math.Float64bits(v)))
	b.Movqx(x, scratch)
}

// divStorm emits n back-to-back divsd X2, X0, X1 instructions — each
// raises at least the inexact condition for operands like 1.0/3.0, so
// under an individual-mode spy every one is a SIGFPE/SIGTRAP round
// trip.
func divStorm(b *isa.Builder, n int) {
	for i := 0; i < n; i++ {
		b.FP2(isa.OpDIVSD, isa.X2, isa.X0, isa.X1)
	}
}

// storeMark writes value at markBase+8*slot.
func storeMark(b *isa.Builder, slot int, value int64) {
	b.Movi(isa.R5, int64(markBase+8*slot))
	b.Movi(isa.R6, value)
	b.St(isa.R5, 0, isa.R6)
}

func individualConfig() core.Config {
	return core.Config{Mode: core.ModeIndividual}
}

// genSignalStealer: the guest takes a few faults, then installs a
// handler for one of FPSpy's own signals mid-storm, then keeps
// faulting. A normal spy must step aside (signal-conflict); an
// aggressive spy absorbs the registration and logs the fight. Either
// way the handler never runs: with the spy gone (or spy-off) every
// exception is masked, and an aggressive spy hides the faults itself.
func genSignalStealer(sc *Scenario, rng *rand.Rand) {
	aggressive := rng.Intn(2) == 1
	sig := kernel.SIGFPE
	if rng.Intn(2) == 1 {
		sig = kernel.SIGTRAP
	}
	nFirst, nAfter := 1+rng.Intn(4), 1+rng.Intn(4)

	b := isa.NewBuilder(fmt.Sprintf("chaos-%s-%d", sc.Family, sc.Seed))
	handler := b.Label("handler")
	loadF64(b, isa.X0, 1, isa.R10)
	loadF64(b, isa.X1, 3, isa.R10)
	divStorm(b, nFirst)
	b.Movi(isa.R1, int64(sig))
	b.Lea(isa.R2, handler)
	b.CallC("signal")
	b.Mov(isa.R9, isa.R1) // previous-handler encoding: must match spy-off
	divStorm(b, nAfter)
	storeMark(b, 0, 1)
	b.Hlt()
	b.Bind(handler)
	b.CallC("rt_sigreturn")

	sc.Prog = b.Build()
	cfg := individualConfig()
	cfg.Aggressive = aggressive
	sc.Config = cfg
	if aggressive {
		sc.Name = "signal-stealer-aggressive"
		sc.ExpectKind = trace.EventSignalFight
	} else {
		sc.Name = "signal-stealer"
		sc.ExpectKind = trace.EventAbort
		sc.ExpectReason = core.AbortSignalConflict
	}
}

// genFEMeddler: the guest calls fesetround between exception bursts.
// The spy must abort (fe-access) before letting the call through, so
// the new rounding mode shapes later results identically spy-on and
// spy-off.
func genFEMeddler(sc *Scenario, rng *rand.Rand) {
	modes := []softfloat.RoundingMode{
		softfloat.RoundDown, softfloat.RoundUp, softfloat.RoundToZero,
	}
	mode := modes[rng.Intn(len(modes))]
	nFirst, nAfter := 1+rng.Intn(4), 1+rng.Intn(4)

	b := isa.NewBuilder(fmt.Sprintf("chaos-%s-%d", sc.Family, sc.Seed))
	loadF64(b, isa.X0, 1, isa.R10)
	loadF64(b, isa.X1, 3, isa.R10)
	divStorm(b, nFirst)
	b.Movi(isa.R1, int64(mode))
	b.CallC("fesetround")
	divStorm(b, nAfter) // rounds per the guest's mode on both sides
	b.Movi(isa.R5, markBase)
	b.Fst(isa.R5, 0, isa.X2) // the rounded quotient is part of the diff
	b.Hlt()

	sc.Prog = b.Build()
	sc.Name = "fe-meddler"
	sc.Config = individualConfig()
	sc.ExpectKind = trace.EventAbort
	sc.ExpectReason = core.AbortFEAccess
}

// genMXCSRStomper: the guest rewrites MXCSR with ldmxcsr — the direct
// channel no libc interposition can see. Two sub-variants:
//
//   - mask-all (0x1F80): the stomp silences every exception, so the spy
//     only notices at thread teardown (the late integrity check).
//   - unmask-ZE (0x1D80): the next divide-by-zero faults; the per-fault
//     integrity recheck catches the stomp, and the spy must step aside
//     WITHOUT repairing the stomping thread's MXCSR, so the guest dies
//     on its deliberately-unmasked exception exactly as it would bare.
func genMXCSRStomper(sc *Scenario, rng *rand.Rand) {
	unmaskZE := rng.Intn(2) == 1
	nFirst := 1 + rng.Intn(4)

	b := isa.NewBuilder(fmt.Sprintf("chaos-%s-%d", sc.Family, sc.Seed))
	stomp := uint64(0x1F80)
	if unmaskZE {
		stomp = uint64(0x1F80 &^ (uint32(softfloat.FlagDivideByZero) << 7))
	}
	val := b.Words(stomp)
	loadF64(b, isa.X0, 1, isa.R10)
	loadF64(b, isa.X1, 3, isa.R10)
	divStorm(b, nFirst)
	b.Movi(isa.R9, int64(val))
	b.Ldmxcsr(isa.R9, 0)
	if unmaskZE {
		b.Movqx(isa.X1, isa.R0) // +0.0 divisor
		b.FP2(isa.OpDIVSD, isa.X2, isa.X0, isa.X1)
		// Unreachable: the unmasked ZE kills the process (exit 136)
		// with and without the spy.
		storeMark(b, 0, 99)
	} else {
		divStorm(b, 1+rng.Intn(4))
		storeMark(b, 0, 1)
	}
	b.Hlt()

	sc.Prog = b.Build()
	sc.Name = "mxcsr-stomper-mask"
	if unmaskZE {
		sc.Name = "mxcsr-stomper-unmask-ze"
	}
	sc.Config = individualConfig()
	sc.ExpectKind = trace.EventAbort
	sc.ExpectReason = core.AbortMXCSRStomp
}

// genThreadStorm: worker threads fault concurrently while the main
// thread faults between pthread_create calls, under adversarial
// scheduling. Workers write to disjoint memory regions so the final
// image is interleaving-independent; the spy must degrade nothing.
func genThreadStorm(sc *Scenario, rng *rand.Rand) {
	workers := 2 + rng.Intn(2)
	perWorker := 2 + rng.Intn(3)

	b := isa.NewBuilder(fmt.Sprintf("chaos-%s-%d", sc.Family, sc.Seed))
	worker := b.Label("worker")
	loadF64(b, isa.X0, 1, isa.R10)
	loadF64(b, isa.X1, 3, isa.R10)
	for i := 0; i < workers; i++ {
		b.Lea(isa.R1, worker)
		b.Movi(isa.R2, int64(i))
		b.CallC("pthread_create")
		b.Mov(isa.R11+i, isa.R1) // remember tid for join
		divStorm(b, 1)           // fault during the creation storm
	}
	for i := 0; i < workers; i++ {
		b.Mov(isa.R1, isa.R11+i)
		b.CallC("pthread_join")
	}
	storeMark(b, 0, 1)
	b.Hlt()

	b.Bind(worker)
	// R1 = worker index. Output region: workerBase + index*workerSpan.
	b.Shli(isa.R3, isa.R1, 6)
	b.Movi(isa.R4, workerBase)
	b.Add(isa.R3, isa.R3, isa.R4)
	loadF64(b, isa.X0, 1, isa.R10)
	loadF64(b, isa.X1, 3, isa.R10)
	divStorm(b, perWorker)
	b.Fst(isa.R3, 0, isa.X2) // quotient
	b.Movi(isa.R6, 40)
	b.Add(isa.R6, isa.R6, isa.R1)
	b.St(isa.R3, 8, isa.R6) // 40+index: proves this worker finished
	b.CallC("pthread_exit")

	sc.Prog = b.Build()
	sc.Name = "thread-storm"
	sc.Config = individualConfig()
	sc.Inject = &InjectSpec{Seed: sc.Seed * 7 * int64(len(sc.Name)), Shuffle: true, QuantumJitter: true}
}

// genForkBurst: the guest forks in the middle of an exception storm.
// The child storms on and exits with its own code; the parent keeps
// faulting. Exit codes and both memory images must match spy-off.
func genForkBurst(sc *Scenario, rng *rand.Rand) {
	nBefore, nChild, nAfter := 1+rng.Intn(3), 1+rng.Intn(4), 1+rng.Intn(3)
	childCode := int64(10 + rng.Intn(40))
	parentCode := int64(50 + rng.Intn(40))

	b := isa.NewBuilder(fmt.Sprintf("chaos-%s-%d", sc.Family, sc.Seed))
	child := b.Label("child")
	loadF64(b, isa.X0, 1, isa.R10)
	loadF64(b, isa.X1, 3, isa.R10)
	divStorm(b, nBefore)
	b.CallC("fork")
	b.Beq(isa.R1, isa.R0, child)
	// Parent.
	divStorm(b, nAfter)
	storeMark(b, 0, 2)
	b.Movi(isa.R1, parentCode)
	b.CallC("exit")
	// Child: its memory is a private copy, so the marker written here
	// exists only in the child image.
	b.Bind(child)
	divStorm(b, nChild)
	storeMark(b, 1, 3)
	b.Movi(isa.R1, childCode)
	b.CallC("exit")

	sc.Prog = b.Build()
	sc.Name = "fork-burst"
	sc.Config = individualConfig()
}

// genHandlerExit: the guest takes SIGFPE for itself, unmasks divide-by-
// zero through feenableexcept, divides by zero, and exits from INSIDE
// the signal handler. Whichever of signal()/feenableexcept() runs first
// determines the abort reason; after the abort, the guest's handler and
// unmask must work exactly as they do spy-off.
func genHandlerExit(sc *Scenario, rng *rand.Rand) {
	signalFirst := rng.Intn(2) == 1
	exitCode := int64(1 + rng.Intn(100))

	b := isa.NewBuilder(fmt.Sprintf("chaos-%s-%d", sc.Family, sc.Seed))
	handler := b.Label("handler")
	loadF64(b, isa.X0, 1, isa.R10)
	loadF64(b, isa.X1, 3, isa.R10)
	divStorm(b, 1+rng.Intn(3))
	install := func() {
		b.Movi(isa.R1, int64(kernel.SIGFPE))
		b.Lea(isa.R2, handler)
		b.CallC("signal")
	}
	unmask := func() {
		b.Movi(isa.R1, int64(softfloat.FlagDivideByZero))
		b.CallC("feenableexcept")
	}
	if signalFirst {
		install()
		unmask()
	} else {
		unmask()
		install()
	}
	b.Movqx(isa.X1, isa.R0) // +0.0
	b.FP2(isa.OpDIVSD, isa.X2, isa.X0, isa.X1)
	b.Hlt() // unreachable: the handler exits
	b.Bind(handler)
	storeMark(b, 0, 9)
	b.Movi(isa.R1, exitCode)
	b.CallC("exit")

	sc.Prog = b.Build()
	sc.Config = individualConfig()
	sc.ExpectKind = trace.EventAbort
	if signalFirst {
		sc.Name = "handler-exit-signal-first"
		sc.ExpectReason = core.AbortSignalConflict
	} else {
		sc.Name = "handler-exit-fe-first"
		sc.ExpectReason = core.AbortFEAccess
	}
}

// genKernelChaos: a temporal-sampling (Poisson, virtual-timer) spy over
// a long fault loop, with the kernel delaying the sampler's signals and
// jittering the schedule. Nothing here is adversarial from the guest's
// side — the spy must ride out the perturbations without degrading.
func genKernelChaos(sc *Scenario, rng *rand.Rand) {
	iters := int64(20 + rng.Intn(30))

	b := isa.NewBuilder(fmt.Sprintf("chaos-%s-%d", sc.Family, sc.Seed))
	loadF64(b, isa.X0, 1, isa.R10)
	loadF64(b, isa.X1, 3, isa.R10)
	b.Movi(isa.R8, 0)
	b.Movi(isa.R9, iters)
	loop := b.Label("loop")
	b.Bind(loop)
	b.FP2(isa.OpDIVSD, isa.X2, isa.X0, isa.X1)
	b.Addi(isa.R8, isa.R8, 1)
	b.Blt(isa.R8, isa.R9, loop)
	storeMark(b, 0, 1)
	b.Hlt()

	sc.Prog = b.Build()
	sc.Name = "kernel-chaos"
	cfg := individualConfig()
	cfg.SampleOnUS = 2 + uint64(rng.Intn(5))
	cfg.SampleOffUS = 5 + uint64(rng.Intn(10))
	cfg.Poisson = true
	cfg.VirtualTimer = true
	sc.Config = cfg
	sc.Inject = &InjectSpec{
		Seed:          sc.Seed*31 + 5,
		DelayMax:      1 + uint64(rng.Intn(40)),
		Shuffle:       true,
		QuantumJitter: true,
	}
}

// genTrapStorm: the guest's fault rate trips the FPE_STORM watchdog,
// which must demote the spy to aggregate mode — handlers released,
// exceptions re-masked, sticky flags accumulating — without disturbing
// the guest.
func genTrapStorm(sc *Scenario, rng *rand.Rand) {
	threshold := uint64(3 + rng.Intn(3))
	iters := int64(threshold)*2 + 10

	b := isa.NewBuilder(fmt.Sprintf("chaos-%s-%d", sc.Family, sc.Seed))
	loadF64(b, isa.X0, 1, isa.R10)
	loadF64(b, isa.X1, 3, isa.R10)
	b.Movi(isa.R8, 0)
	b.Movi(isa.R9, iters)
	loop := b.Label("loop")
	b.Bind(loop)
	b.FP2(isa.OpDIVSD, isa.X2, isa.X0, isa.X1)
	b.Addi(isa.R8, isa.R8, 1)
	b.Blt(isa.R8, isa.R9, loop)
	storeMark(b, 0, 1)
	b.Hlt()

	sc.Prog = b.Build()
	sc.Name = "trap-storm"
	cfg := individualConfig()
	cfg.StormFaults = threshold
	cfg.StormCycles = 100_000_000 // window never resets within the run
	sc.Config = cfg
	sc.ExpectKind = trace.EventDemote
	sc.ExpectReason = core.AbortTrapStorm
}
