package chaos

import (
	"context"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"
)

// TestServiceFaultDeterminism pins the seeding contract: the same spec
// yields the same decision stream, and different seeds diverge.
func TestServiceFaultDeterminism(t *testing.T) {
	spec := ServiceFaultSpec{
		Seed: 42, DropP: 0.3, DelayP: 0.3,
		DelayMin: time.Millisecond, DelayMax: 5 * time.Millisecond, CorruptP: 0.3,
	}
	draw := func(sp ServiceFaultSpec) []decision {
		ft := sp.Transport(nil)
		out := make([]decision, 200)
		for i := range out {
			out[i] = ft.decide()
		}
		return out
	}
	a, b := draw(spec), draw(spec)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("decision %d diverged under identical specs: %+v vs %+v", i, a[i], b[i])
		}
	}
	other := spec
	other.Seed = 43
	c := draw(other)
	same := 0
	for i := range a {
		if a[i] == c[i] {
			same++
		}
	}
	if same == len(a) {
		t.Fatal("different seeds produced identical decision streams")
	}
}

// TestServiceFaultSweep drives every scenario of the service family
// through a live round trip and checks each fault manifests as the
// caller must see it: drops as ErrRPCDropped, corruption as decode
// failures (never silent), delays as injected latency — all tallied.
func TestServiceFaultSweep(t *testing.T) {
	type payload struct {
		Value string `json:"value"`
		Check int    `json:"check"`
	}
	want := payload{Value: "cluster-rpc-body-with-enough-bytes-to-flip", Check: 12345}
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		json.NewEncoder(w).Encode(want) //nolint:errcheck // test
	}))
	defer srv.Close()

	for _, sc := range ServiceFaultScenarios(7) {
		t.Run(sc.Name, func(t *testing.T) {
			ft := sc.Spec.Transport(nil)
			hc := &http.Client{Transport: ft}
			var drops, corrupts, oks int
			for i := 0; i < 120; i++ {
				resp, err := hc.Get(srv.URL)
				if err != nil {
					if !errors.Is(err, ErrRPCDropped) {
						t.Fatalf("request %d: unexpected error %v", i, err)
					}
					drops++
					continue
				}
				body, err := io.ReadAll(resp.Body)
				resp.Body.Close() //nolint:errcheck // test
				if err != nil {
					t.Fatalf("request %d: read: %v", i, err)
				}
				var got payload
				if err := json.Unmarshal(body, &got); err != nil || got != want {
					// A flipped bit must surface as a decode failure or a
					// wrong value — the test treats either as "detected".
					corrupts++
					continue
				}
				oks++
			}
			if sc.Spec.DropP > 0 && drops == 0 {
				t.Errorf("DropP=%v injected no drops", sc.Spec.DropP)
			}
			if sc.Spec.CorruptP > 0 && corrupts == 0 {
				t.Errorf("CorruptP=%v produced no detectable corruption", sc.Spec.CorruptP)
			}
			if sc.Spec.DelayP > 0 && ft.Stats.Delayed.Load() == 0 {
				t.Errorf("DelayP=%v injected no delays", sc.Spec.DelayP)
			}
			if oks == 0 {
				t.Error("no request survived the storm; fault rates too hot for a useful sweep")
			}
			if got := int(ft.Stats.Dropped.Load()); got != drops {
				t.Errorf("Stats.Dropped = %d, observed %d", got, drops)
			}
		})
	}
}

// TestServiceFaultDelayHonorsContext pins cancellation: a held RPC
// returns the context's error as soon as the caller gives up.
func TestServiceFaultDelayHonorsContext(t *testing.T) {
	ft := ServiceFaultSpec{
		Seed: 1, DelayP: 1, DelayMin: 30 * time.Second, DelayMax: 30 * time.Second,
	}.Transport(nil)
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, "http://127.0.0.1:1/never", nil)
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	_, err = ft.RoundTrip(req)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("want DeadlineExceeded, got %v", err)
	}
	if el := time.Since(start); el > 5*time.Second {
		t.Fatalf("cancellation took %v; delay was not interruptible", el)
	}
}
