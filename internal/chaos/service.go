package chaos

// Service-layer fault injection: the scenario family that attacks the
// fpspyd cluster fabric instead of the spy itself. A FaultTransport
// wraps an http.RoundTripper and — from a seeded, deterministic rng —
// delays peer RPCs, drops them with transport errors, and corrupts
// response bodies in flight. Node kills and restarts are orchestrated
// by the cluster end-to-end suite on top of these transports; the
// invariants under attack are the cluster's, not the guest's: no lost
// or duplicated jobs, cluster-wide singleflight, graceful degradation
// to local-only service.

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"sync"
	"sync/atomic"
	"time"
)

// ErrRPCDropped is the transport error a dropped RPC surfaces. It is
// indistinguishable from a dead peer to the caller — which is the
// point: retry and failover paths must treat both identically.
var ErrRPCDropped = errors.New("chaos: rpc dropped")

// ServiceFaultSpec is a serializable description of one service-layer
// fault mix. The same spec always yields the same decision stream for
// the same sequence of RoundTrip calls.
type ServiceFaultSpec struct {
	// Seed keys the decision rng.
	Seed int64
	// DropP is the probability an RPC fails with ErrRPCDropped before
	// reaching the peer.
	DropP float64
	// DelayP is the probability an RPC is held for a uniform duration
	// in [DelayMin, DelayMax] before being sent.
	DelayP   float64
	DelayMin time.Duration
	DelayMax time.Duration
	// CorruptP is the probability a response body has bits flipped —
	// the wire lied, and decoders must reject rather than trust it.
	CorruptP float64
}

// FaultStats counts the faults a transport actually injected.
type FaultStats struct {
	Dropped   atomic.Int64
	Delayed   atomic.Int64
	Corrupted atomic.Int64
}

// FaultTransport injects the spec's faults around a base RoundTripper.
type FaultTransport struct {
	Spec ServiceFaultSpec
	// Base is the wrapped transport (http.DefaultTransport when nil).
	Base http.RoundTripper
	// Stats tallies injected faults for test assertions.
	Stats FaultStats

	mu  sync.Mutex
	rng *rand.Rand
}

// Transport builds a FaultTransport around base.
func (sp ServiceFaultSpec) Transport(base http.RoundTripper) *FaultTransport {
	return &FaultTransport{
		Spec: sp,
		Base: base,
		rng:  rand.New(rand.NewSource(sp.Seed*1_000_003 + 0x5eace)),
	}
}

// decision is one RPC's sampled fate. Drawing all three verdicts in a
// fixed order keeps the stream deterministic per call index regardless
// of which faults are enabled.
type decision struct {
	drop    bool
	delay   time.Duration
	corrupt bool
}

func (ft *FaultTransport) decide() decision {
	ft.mu.Lock()
	defer ft.mu.Unlock()
	var d decision
	d.drop = ft.rng.Float64() < ft.Spec.DropP
	if ft.rng.Float64() < ft.Spec.DelayP {
		span := ft.Spec.DelayMax - ft.Spec.DelayMin
		d.delay = ft.Spec.DelayMin
		if span > 0 {
			d.delay += time.Duration(ft.rng.Int63n(int64(span) + 1))
		}
	}
	d.corrupt = ft.rng.Float64() < ft.Spec.CorruptP
	return d
}

// RoundTrip applies the sampled faults: drop preempts the call, delay
// holds it (honoring request-context cancellation), corrupt flips bits
// in the response body after a successful exchange.
func (ft *FaultTransport) RoundTrip(req *http.Request) (*http.Response, error) {
	d := ft.decide()
	if d.drop {
		ft.Stats.Dropped.Add(1)
		return nil, fmt.Errorf("%w (%s %s)", ErrRPCDropped, req.Method, req.URL.Path)
	}
	if d.delay > 0 {
		ft.Stats.Delayed.Add(1)
		t := time.NewTimer(d.delay)
		select {
		case <-t.C:
		case <-req.Context().Done():
			t.Stop()
			return nil, req.Context().Err()
		}
	}
	base := ft.Base
	if base == nil {
		base = http.DefaultTransport
	}
	resp, err := base.RoundTrip(req)
	if err != nil || !d.corrupt {
		return resp, err
	}
	body, rerr := io.ReadAll(resp.Body)
	resp.Body.Close() //nolint:errcheck // replaced below
	if rerr != nil {
		return nil, rerr
	}
	if len(body) > 0 {
		ft.Stats.Corrupted.Add(1)
		ft.mu.Lock()
		// Flip a few bits at seeded positions; length is preserved so
		// corruption is only detectable by actually decoding.
		for i := 0; i < 3; i++ {
			body[ft.rng.Intn(len(body))] ^= 1 << uint(ft.rng.Intn(8))
		}
		ft.mu.Unlock()
	}
	resp.Body = io.NopCloser(bytes.NewReader(body))
	resp.ContentLength = int64(len(body))
	return resp, nil
}

// ServiceFaultScenario names one fault mix of the service family.
type ServiceFaultScenario struct {
	Name string
	Spec ServiceFaultSpec
}

// ServiceFaultScenarios is the service-layer sweep: the fault mixes the
// cluster suite runs its invariants under, seeded for reproducibility.
func ServiceFaultScenarios(seed int64) []ServiceFaultScenario {
	return []ServiceFaultScenario{
		{Name: "delay-jitter", Spec: ServiceFaultSpec{
			Seed: seed, DelayP: 0.5, DelayMin: time.Millisecond, DelayMax: 20 * time.Millisecond,
		}},
		{Name: "drop-storm", Spec: ServiceFaultSpec{
			Seed: seed + 1, DropP: 0.3,
		}},
		{Name: "corrupt-wire", Spec: ServiceFaultSpec{
			Seed: seed + 2, CorruptP: 0.4,
		}},
		{Name: "mixed-storm", Spec: ServiceFaultSpec{
			Seed: seed + 3, DropP: 0.15, DelayP: 0.3,
			DelayMin: time.Millisecond, DelayMax: 10 * time.Millisecond, CorruptP: 0.15,
		}},
	}
}
