package chaos

import (
	"testing"

	"repro/internal/binscan/absint"
	"repro/internal/core"
)

// TestPruneDifferential runs every chaos family with static trap-site
// pruning on and off and requires the guest-visible outcome — registers,
// memory, exit codes, retirement counts — to be bit-identical, plus the
// recorded traces and monitor events. This is the NoPrune ablation
// contract: pruning is purely an execution-engine shortcut.
func TestPruneDifferential(t *testing.T) {
	for _, f := range Families() {
		f := f
		t.Run(string(f), func(t *testing.T) {
			t.Parallel()
			for seed := int64(1); seed <= 2; seed++ {
				sc := Generate(f, seed)
				sc.Config.Mode = core.ModeIndividual

				sc.Config.NoPrune = false
				pruned, err := runOnce(sc, true, false)
				if err != nil {
					t.Fatalf("seed %d pruned: %v", seed, err)
				}
				sc.Config.NoPrune = true
				plain, err := runOnce(sc, true, false)
				if err != nil {
					t.Fatalf("seed %d unpruned: %v", seed, err)
				}
				if d := diffSnapshots("pruned", "unpruned", pruned.Snap, plain.Snap); d != "" {
					t.Fatalf("seed %d: pruning changed guest state: %s", seed, d)
				}
				pr, err := pruned.Store.AllRecords()
				if err != nil {
					t.Fatalf("seed %d: pruned records: %v", seed, err)
				}
				ur, err := plain.Store.AllRecords()
				if err != nil {
					t.Fatalf("seed %d: unpruned records: %v", seed, err)
				}
				if len(pr) != len(ur) {
					t.Fatalf("seed %d: %d records pruned vs %d unpruned", seed, len(pr), len(ur))
				}
				for i := range pr {
					if pr[i] != ur[i] {
						t.Fatalf("seed %d: record %d differs:\npruned:   %+v\nunpruned: %+v", seed, i, pr[i], ur[i])
					}
				}
				if a, b := eventSummary(pruned.Store), eventSummary(plain.Store); a != b {
					t.Fatalf("seed %d: monitor events differ:\npruned:   %q\nunpruned: %q", seed, a, b)
				}
			}
		})
	}
}

// TestChaosStaticSoundness checks the abstract interpreter's verdicts
// against the chaos corpus: every condition a scenario dynamically
// raises must be may-possible at that site. A violation here means the
// static analysis under-approximated — the hard failure mode.
func TestChaosStaticSoundness(t *testing.T) {
	for _, f := range Families() {
		f := f
		t.Run(string(f), func(t *testing.T) {
			t.Parallel()
			for seed := int64(1); seed <= 3; seed++ {
				sc := Generate(f, seed)
				sc.Config.Mode = core.ModeIndividual
				sc.Config.SampleEvery = 0
				sc.Config.SampleOnUS, sc.Config.SampleOffUS = 0, 0
				sc.Config.MaxCount = 0
				sc.Config.ExceptList = core.AllEvents
				run, err := runOnce(sc, true, false)
				if err != nil {
					t.Fatalf("seed %d: %v", seed, err)
				}
				recs, err := run.Store.AllRecords()
				if err != nil {
					t.Fatalf("seed %d: records: %v", seed, err)
				}
				res := absint.Analyze(sc.Prog)
				for _, v := range absint.CheckSoundness(res, recs) {
					t.Errorf("seed %d: %s", seed, v)
				}
			}
		})
	}
}
