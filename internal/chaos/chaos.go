// Package chaos is a seeded, deterministic fault-injection harness for
// FPSpy. It generates adversarial guest programs — applications that
// install handlers for FPSpy's signals mid-storm, call into the fe*
// environment between exceptions, rewrite MXCSR directly with ldmxcsr,
// fork and spawn threads during exception bursts, or exit from inside a
// signal handler — and pairs them with kernel-level perturbations
// (delayed signal delivery, adversarial scheduling).
//
// The harness enforces FPSpy's core transparency invariant
// differentially: for every scenario, guest-visible architectural state
// (integer and vector registers, memory, exit codes, retired counts)
// must be bit-identical between a spy-on and a spy-off run, and between
// the fast-path and precise execution engines. On top of that, each
// scenario declares which degradation — if any — the spy must record,
// with its typed reason, in the monitor log.
package chaos

import (
	"math/rand"

	"repro/internal/core"
	"repro/internal/isa"
	"repro/internal/trace"
)

// Family names one class of adversarial scenario.
type Family string

const (
	// FamilySignalStealer installs a SIGFPE/SIGTRAP handler between
	// exception bursts (expects signal-conflict abort, or absorbed
	// signal-fight events under an aggressive spy).
	FamilySignalStealer Family = "signal-stealer"
	// FamilyFEMeddler calls fe* routines mid-storm (expects fe-access).
	FamilyFEMeddler Family = "fe-meddler"
	// FamilyMXCSRStomper rewrites MXCSR via ldmxcsr, bypassing the fe*
	// interposition entirely (expects mxcsr-stomp).
	FamilyMXCSRStomper Family = "mxcsr-stomper"
	// FamilyThreadStorm spawns worker threads that fault concurrently,
	// with adversarial scheduling (expects no degradation).
	FamilyThreadStorm Family = "thread-storm"
	// FamilyForkBurst forks mid-storm; both processes keep faulting
	// (expects no degradation).
	FamilyForkBurst Family = "fork-burst"
	// FamilyHandlerExit takes over SIGFPE, unmasks an exception, and
	// exits from inside its own handler (expects signal-conflict or
	// fe-access, depending on seeded call order).
	FamilyHandlerExit Family = "handler-exit"
	// FamilyKernelChaos runs a temporal-sampling spy under delayed
	// signal delivery and scheduler jitter (expects no degradation).
	FamilyKernelChaos Family = "kernel-chaos"
	// FamilyTrapStorm exceeds the FPE_STORM watchdog threshold
	// (expects a trap-storm demotion).
	FamilyTrapStorm Family = "trap-storm"
)

// Families lists every scenario family in sweep order.
func Families() []Family {
	return []Family{
		FamilySignalStealer, FamilyFEMeddler, FamilyMXCSRStomper,
		FamilyThreadStorm, FamilyForkBurst, FamilyHandlerExit,
		FamilyKernelChaos, FamilyTrapStorm,
	}
}

// InjectSpec is a serializable description of kernel-level injection
// (kernel.Inject carries live rng state, so scenarios carry this
// instead and the runner instantiates a fresh injector per run).
type InjectSpec struct {
	Seed          int64
	DelayMax      uint64
	Shuffle       bool
	QuantumJitter bool
}

// Scenario is one generated adversarial run: a guest program, the spy
// configuration to attack, optional kernel perturbations, and the
// degradation the spy is expected to record.
type Scenario struct {
	Name   string
	Family Family
	Seed   int64
	// Config is the FPSpy configuration for spy-on runs.
	Config core.Config
	// Inject, when non-nil, enables kernel perturbations.
	Inject *InjectSpec
	// Prog is the adversarial guest.
	Prog *isa.Program
	// ExpectKind is the monitor-log entry the spy-on run must produce:
	// EventAbort, EventDemote, EventSignalFight, or "" for none.
	ExpectKind trace.MonitorEventKind
	// ExpectReason is the typed reason required on the expected
	// abort/demote entry.
	ExpectReason core.AbortReason
}

// Generate builds the scenario for one (family, seed) pair. The same
// pair always yields the same scenario.
func Generate(f Family, seed int64) Scenario {
	rng := rand.New(rand.NewSource(seed*1_000_003 + familySalt(f)))
	sc := Scenario{Family: f, Seed: seed}
	switch f {
	case FamilySignalStealer:
		genSignalStealer(&sc, rng)
	case FamilyFEMeddler:
		genFEMeddler(&sc, rng)
	case FamilyMXCSRStomper:
		genMXCSRStomper(&sc, rng)
	case FamilyThreadStorm:
		genThreadStorm(&sc, rng)
	case FamilyForkBurst:
		genForkBurst(&sc, rng)
	case FamilyHandlerExit:
		genHandlerExit(&sc, rng)
	case FamilyKernelChaos:
		genKernelChaos(&sc, rng)
	case FamilyTrapStorm:
		genTrapStorm(&sc, rng)
	default:
		panic("chaos: unknown family " + string(f))
	}
	return sc
}

// familySalt decorrelates the rng streams of different families run
// with the same seed.
func familySalt(f Family) int64 {
	var h int64
	for _, c := range string(f) {
		h = h*131 + int64(c)
	}
	return h
}
