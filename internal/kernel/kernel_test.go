package kernel

import (
	"math"
	"testing"

	"repro/internal/isa"
	"repro/internal/softfloat"
)

func spawnAndRun(t *testing.T, prog *isa.Program, env map[string]string, maxSteps uint64) (*Kernel, *Process) {
	t.Helper()
	k := New()
	p, err := k.Spawn(prog, 1<<20, env)
	if err != nil {
		t.Fatal(err)
	}
	k.Run(maxSteps)
	if !p.Exited {
		t.Fatalf("process did not exit")
	}
	return k, p
}

func TestProcessRunsToExit(t *testing.T) {
	b := isa.NewBuilder("exit")
	b.Movi(isa.R1, 0)
	b.CallC("exit")
	b.Hlt()
	_, p := spawnAndRun(t, b.Build(), nil, 1000)
	if p.ExitCode != 0 {
		t.Errorf("exit code %d", p.ExitCode)
	}
}

func TestHaltExitsTask(t *testing.T) {
	b := isa.NewBuilder("halt")
	b.Movi(isa.R2, 9)
	b.Hlt()
	_, p := spawnAndRun(t, b.Build(), nil, 1000)
	if p.Tasks[0].State != TaskExited {
		t.Error("task not exited")
	}
}

func TestPthreadCreateRunsThread(t *testing.T) {
	// Main thread creates a worker that stores 42 at address 128 and
	// exits; main spins until it sees the store.
	b := isa.NewBuilder("threads")
	worker := b.Label("worker")
	b.Lea(isa.R1, worker)
	b.Movi(isa.R2, 7) // arg
	b.CallC("pthread_create")
	wait := b.Label("wait")
	b.Bind(wait)
	b.Movi(isa.R3, 128)
	b.Ld(isa.R4, isa.R3, 0)
	b.Movi(isa.R5, 42)
	b.Bne(isa.R4, isa.R5, wait)
	b.Hlt()
	b.Bind(worker)
	// R1 = arg (7); store 42 at 128.
	b.Movi(isa.R3, 128)
	b.Movi(isa.R4, 42)
	b.St(isa.R3, 0, isa.R4)
	b.CallC("pthread_exit")
	_, p := spawnAndRun(t, b.Build(), nil, 100000)
	if len(p.Tasks) != 2 {
		t.Fatalf("tasks = %d", len(p.Tasks))
	}
	if p.Tasks[1].M.CPU.R[isa.R1] != 7 {
		t.Errorf("worker arg = %d, want 7", p.Tasks[1].M.CPU.R[isa.R1])
	}
}

func TestForkDuplicatesMemory(t *testing.T) {
	// Parent writes 1 at addr 64 before fork; child writes 2 after; the
	// parent's copy must stay 1. Parent gets child pid, child gets 0.
	b := isa.NewBuilder("fork")
	b.Movi(isa.R3, 64)
	b.Movi(isa.R4, 1)
	b.St(isa.R3, 0, isa.R4)
	b.CallC("fork")
	child := b.Label("child")
	b.Beq(isa.R1, isa.R0, child)
	b.Hlt() // parent
	b.Bind(child)
	b.Movi(isa.R4, 2)
	b.St(isa.R3, 0, isa.R4)
	b.Hlt()
	k := New()
	p, err := k.Spawn(b.Build(), 1<<16, nil)
	if err != nil {
		t.Fatal(err)
	}
	k.Run(100000)
	if len(k.Procs) != 2 {
		t.Fatalf("procs = %d", len(k.Procs))
	}
	var childProc *Process
	for pid, pr := range k.Procs {
		if pid != p.PID {
			childProc = pr
		}
	}
	if childProc == nil || !childProc.Exited || !p.Exited {
		t.Fatal("both processes should exit")
	}
	pv := uint64(p.Mem[64])
	cv := uint64(childProc.Mem[64])
	if pv != 1 || cv != 2 {
		t.Errorf("parent mem 64 = %d (want 1), child = %d (want 2)", pv, cv)
	}
}

func TestGuestSignalHandlerAndSigreturn(t *testing.T) {
	// The guest installs a SIGFPE handler and raises the signal
	// synchronously with feraiseexcept (on an unmasked condition). The
	// handler records its run in memory — registers do not survive
	// sigreturn, which restores the full saved frame — and execution
	// resumes after the raising call.
	b := isa.NewBuilder("guestsig")
	handler := b.Label("handler")
	b.Movi(isa.R1, int64(SIGFPE))
	b.Lea(isa.R2, handler)
	b.CallC("signal")
	b.Movi(isa.R1, int64(softfloat.FlagDivideByZero))
	b.CallC("feenableexcept")
	b.Movi(isa.R1, int64(softfloat.FlagDivideByZero))
	b.CallC("feraiseexcept")
	b.Movi(isa.R9, 77) // proves resumption
	b.Hlt()
	b.Bind(handler)
	b.Movi(isa.R3, 512)
	b.Movi(isa.R4, 1)
	b.St(isa.R3, 0, isa.R4)
	b.CallC("rt_sigreturn")
	_, p := spawnAndRun(t, b.Build(), nil, 10000)
	cpu := &p.Tasks[0].M.CPU
	if cpu.R[isa.R9] != 77 {
		t.Error("execution did not resume after guest handler")
	}
	if p.Mem[512] != 1 {
		t.Error("guest handler did not run")
	}
}

func TestDefaultSIGFPEKillsProcess(t *testing.T) {
	b := isa.NewBuilder("die")
	b.Movi(isa.R1, int64(softfloat.FlagDivideByZero))
	b.CallC("feenableexcept")
	b.Movi(isa.R4, int64(math.Float64bits(1)))
	b.Movqx(isa.X0, isa.R4)
	b.Movqx(isa.X1, isa.R0)
	b.FP2(isa.OpDIVSD, isa.X0, isa.X0, isa.X1)
	b.Hlt()
	_, p := spawnAndRun(t, b.Build(), nil, 10000)
	if p.ExitCode != 128+int(SIGFPE) {
		t.Errorf("exit code = %d, want %d", p.ExitCode, 128+int(SIGFPE))
	}
}

func TestHostHandlerMutatesContext(t *testing.T) {
	// A host handler (the way FPSpy registers handlers) masks the
	// exception and records the faulting address.
	b := isa.NewBuilder("hostsig")
	b.Movi(isa.R4, int64(math.Float64bits(1)))
	b.Movqx(isa.X0, isa.R4)
	b.Movqx(isa.X1, isa.R0)
	div := b.Len()
	b.FP2(isa.OpDIVSD, isa.X0, isa.X0, isa.X1)
	b.Hlt()
	prog := b.Build()
	k := New()
	p, err := k.Spawn(prog, 1<<16, nil)
	if err != nil {
		t.Fatal(err)
	}
	var faultAddr uint64
	var raised softfloat.Flags
	k.SetSigAction(p, SIGFPE, &SigAction{Host: func(k *Kernel, task *Task, info *SigInfo, mc *MContext) {
		faultAddr = info.Addr
		raised = info.Raised
		mc.CPU.MXCSR.Mask(info.Raised)
	}})
	p.Tasks[0].M.CPU.MXCSR.Unmask(softfloat.FlagDivideByZero)
	k.Run(10000)
	if faultAddr != prog.AddrOf(div) {
		t.Errorf("fault addr %#x, want %#x", faultAddr, prog.AddrOf(div))
	}
	if raised&softfloat.FlagDivideByZero == 0 {
		t.Errorf("raised = %v", raised)
	}
	if !p.Exited {
		t.Error("process did not finish after handler masked the exception")
	}
}

func TestVirtualTimerDeliversSIGVTALRM(t *testing.T) {
	b := isa.NewBuilder("timer")
	handler := b.Label("handler")
	b.Movi(isa.R1, int64(SIGVTALRM))
	b.Lea(isa.R2, handler)
	b.CallC("signal")
	b.Movi(isa.R1, int64(TimerVirtual))
	b.Movi(isa.R2, 50) // 50 instructions
	b.CallC("setitimer")
	b.Movi(isa.R7, 512) // flag address
	loop := b.Label("loop")
	b.Bind(loop)
	b.Ld(isa.R6, isa.R7, 0)
	b.Beq(isa.R6, isa.R0, loop) // spin until handler stores the flag
	b.Hlt()
	b.Bind(handler)
	b.Movi(isa.R3, 512)
	b.Movi(isa.R4, 1)
	b.St(isa.R3, 0, isa.R4)
	b.CallC("rt_sigreturn")
	_, p := spawnAndRun(t, b.Build(), nil, 100000)
	if p.Mem[512] != 1 {
		t.Error("timer handler never ran")
	}
}

func TestFeEnvRoundTrip(t *testing.T) {
	// fegetenv/fesetenv via guest memory: set RD mode, save env, set RN,
	// restore, check RD is back (observable through fegetround).
	b := isa.NewBuilder("fenv")
	b.Movi(isa.R1, int64(softfloat.RoundDown))
	b.CallC("fesetround")
	b.Movi(isa.R1, 256) // env pointer
	b.CallC("fegetenv")
	b.Movi(isa.R1, int64(softfloat.RoundNearestEven))
	b.CallC("fesetround")
	b.CallC("fegetround")
	b.Mov(isa.R10, isa.R1) // should be RN
	b.Movi(isa.R1, 256)
	b.CallC("fesetenv")
	b.CallC("fegetround")
	b.Mov(isa.R11, isa.R1) // should be RD
	b.Hlt()
	_, p := spawnAndRun(t, b.Build(), nil, 10000)
	cpu := &p.Tasks[0].M.CPU
	if got := softfloat.RoundingMode(cpu.R[isa.R10]); got != softfloat.RoundNearestEven {
		t.Errorf("mid mode = %v", got)
	}
	if got := softfloat.RoundingMode(cpu.R[isa.R11]); got != softfloat.RoundDown {
		t.Errorf("restored mode = %v", got)
	}
}

func TestFeTestAndClearExcept(t *testing.T) {
	b := isa.NewBuilder("fetest")
	// 1/3 raises PE; fetestexcept sees it; feclearexcept clears it.
	b.Movi(isa.R4, int64(math.Float64bits(1)))
	b.Movqx(isa.X0, isa.R4)
	b.Movi(isa.R4, int64(math.Float64bits(3)))
	b.Movqx(isa.X1, isa.R4)
	b.FP2(isa.OpDIVSD, isa.X2, isa.X0, isa.X1)
	b.Movi(isa.R1, 0x3F)
	b.CallC("fetestexcept")
	b.Mov(isa.R10, isa.R1)
	b.Movi(isa.R1, 0x3F)
	b.CallC("feclearexcept")
	b.Movi(isa.R1, 0x3F)
	b.CallC("fetestexcept")
	b.Mov(isa.R11, isa.R1)
	b.Hlt()
	_, p := spawnAndRun(t, b.Build(), nil, 10000)
	cpu := &p.Tasks[0].M.CPU
	if softfloat.Flags(cpu.R[isa.R10])&softfloat.FlagInexact == 0 {
		t.Errorf("fetestexcept = %v, want PE", softfloat.Flags(cpu.R[isa.R10]))
	}
	if cpu.R[isa.R11] != 0 {
		t.Errorf("flags after feclearexcept = %v", softfloat.Flags(cpu.R[isa.R11]))
	}
}

func TestAccountingSeparatesUserAndSys(t *testing.T) {
	b := isa.NewBuilder("acct")
	for i := 0; i < 100; i++ {
		b.Nop()
	}
	b.CallC("getpid")
	b.Hlt()
	_, p := spawnAndRun(t, b.Build(), nil, 10000)
	task := p.Tasks[0]
	if task.UserCycles < 100 {
		t.Errorf("user cycles = %d", task.UserCycles)
	}
	if task.SysCycles == 0 {
		t.Error("sys cycles = 0, syscall not accounted")
	}
}

func TestPthreadJoinBlocksUntilExit(t *testing.T) {
	// Main creates a worker that counts to 5000, joins it, then reads
	// the worker's completion flag — which must be set by join time.
	b := isa.NewBuilder("join")
	worker := b.Label("worker")
	b.Lea(isa.R1, worker)
	b.Movi(isa.R2, 0)
	b.CallC("pthread_create")
	b.Mov(isa.R10, isa.R1) // worker tid
	b.Mov(isa.R1, isa.R10)
	b.CallC("pthread_join")
	b.Movi(isa.R3, 256)
	b.Ld(isa.R4, isa.R3, 0) // flag must be 1 after join
	b.Hlt()
	b.Bind(worker)
	b.Movi(isa.R5, 0)
	b.Movi(isa.R6, 5000)
	spin := b.Label("spin")
	b.Bind(spin)
	b.Addi(isa.R5, isa.R5, 1)
	b.Blt(isa.R5, isa.R6, spin)
	b.Movi(isa.R3, 256)
	b.Movi(isa.R4, 1)
	b.St(isa.R3, 0, isa.R4)
	b.CallC("pthread_exit")
	_, p := spawnAndRun(t, b.Build(), nil, 1000000)
	if p.Tasks[0].M.CPU.R[isa.R4] != 1 {
		t.Error("join returned before worker finished")
	}
}

func TestPthreadJoinAlreadyExited(t *testing.T) {
	b := isa.NewBuilder("joindone")
	worker := b.Label("worker")
	b.Lea(isa.R1, worker)
	b.Movi(isa.R2, 0)
	b.CallC("pthread_create")
	b.Mov(isa.R10, isa.R1)
	// Spin long enough for the worker to finish first.
	b.Movi(isa.R5, 0)
	b.Movi(isa.R6, 20000)
	spin := b.Label("spin")
	b.Bind(spin)
	b.Addi(isa.R5, isa.R5, 1)
	b.Blt(isa.R5, isa.R6, spin)
	b.Mov(isa.R1, isa.R10)
	b.CallC("pthread_join") // target already exited: no block
	b.Movi(isa.R9, 77)
	b.Hlt()
	b.Bind(worker)
	b.CallC("pthread_exit")
	_, p := spawnAndRun(t, b.Build(), nil, 1000000)
	if p.Tasks[0].M.CPU.R[isa.R9] != 77 {
		t.Error("join on exited thread blocked forever")
	}
}

func TestKillAndStrings(t *testing.T) {
	b := isa.NewBuilder("kill")
	spin := b.Label("spin")
	b.Bind(spin)
	b.Nop()
	b.Jmp(spin)
	k := New()
	p, err := k.Spawn(b.Build(), 1<<16, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Kill the spinner from a timer-driven host hook.
	k.SetSigAction(p, SIGVTALRM, &SigAction{Host: func(k *Kernel, task *Task, info *SigInfo, mc *MContext) {
		k.Kill(task)
	}})
	p.Tasks[0].SetTimer(TimerVirtual, 100)
	if !p.Tasks[0].TimerArmed(TimerVirtual) {
		t.Error("timer not armed")
	}
	k.Run(1_000_000)
	if p.Tasks[0].State != TaskKilled {
		t.Errorf("state = %v", p.Tasks[0].State)
	}
	if p.String() == "" || SIGFPE.String() != "SIGFPE" || SIGTRAP.String() != "SIGTRAP" {
		t.Error("string methods broken")
	}
	if !(&SigAction{}).Default() {
		t.Error("zero action should be default")
	}
	if ids := p.TaskIDs(); len(ids) != 1 {
		t.Errorf("task ids = %v", ids)
	}
	if !fatalIfIgnored(SIGFPE) || fatalIfIgnored(SIGALRM) {
		t.Error("fatalIfIgnored classification")
	}
}
