package kernel

// CostModel assigns cycle costs to machine and kernel operations. The
// defaults are tuned to the magnitudes the FPSpy paper reports: a
// floating point event handled in individual mode costs "thousands of
// cycles" across two kernel crossings and two signal deliveries, versus a
// handful of cycles for the instruction itself.
type CostModel struct {
	// Instruction is the user-time cost of one retired instruction.
	Instruction uint64
	// FPFault is the system-time cost of an unmasked FP exception
	// (kernel entry, exception decode, signal setup).
	FPFault uint64
	// Trap is the system-time cost of a single-step trap.
	Trap uint64
	// Syscall is the system-time cost of a libc call that enters the
	// kernel.
	Syscall uint64
	// SignalHandler is the user-time cost of running a signal handler
	// prologue/epilogue (the FPSpy handler body).
	SignalHandler uint64
	// TimerIRQ is the system-time cost of a timer expiry.
	TimerIRQ uint64
}

// DefaultCostModel returns costs approximating the paper's 2.1 GHz
// Opteron test machine.
func DefaultCostModel() CostModel {
	return CostModel{
		Instruction:   1,
		FPFault:       1800,
		Trap:          1600,
		Syscall:       150,
		SignalHandler: 450,
		TimerIRQ:      200,
	}
}
