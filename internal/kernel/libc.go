package kernel

import (
	"repro/internal/isa"
	"repro/internal/mxcsr"
	"repro/internal/softfloat"
)

// mxReg converts a stored environment word back to a register value.
func mxReg(v uint64) mxcsr.Reg { return mxcsr.Reg(uint32(v)) }

// libcObject builds the base C library for a process. The symbol set is
// the one FPSpy's source-code analysis greps for (the paper's Figure 8):
// process and thread management, signal hooking, and the fe* floating
// point environment family.
func libcObject(p *Process) *Object {
	o := &Object{Name: "libc.so", Syms: map[string]Symbol{}}
	s := o.Syms

	arg := func(t *Task, n int) uint64 { return t.M.CPU.R[n] }
	ret := func(t *Task, v uint64) { t.M.CPU.R[isa.R1] = v }

	// --- process and thread management ---

	s["getpid"] = func(k *Kernel, t *Task) { ret(t, uint64(t.Proc.PID)) }
	s["gettid"] = func(k *Kernel, t *Task) { ret(t, uint64(t.TID)) }

	s["exit"] = func(k *Kernel, t *Task) {
		k.ExitProcess(t.Proc, int(arg(t, 1)))
	}

	s["fork"] = func(k *Kernel, t *Task) {
		child := k.Fork(t)
		k.runForkHooks(t, child)
	}

	// clone(fn, arg): thread-flavored clone, as the studied applications
	// use it (CLONE_VM et al.).
	s["clone"] = func(k *Kernel, t *Task) {
		nt := k.SpawnThread(t.Proc, arg(t, 1), arg(t, 2))
		ret(t, uint64(nt.TID))
	}

	// pthread_create(fn, arg) -> tid
	s["pthread_create"] = func(k *Kernel, t *Task) {
		nt := k.SpawnThread(t.Proc, arg(t, 1), arg(t, 2))
		ret(t, uint64(nt.TID))
	}

	s["pthread_exit"] = func(k *Kernel, t *Task) {
		k.ExitTask(t, TaskExited)
	}

	// pthread_join(tid): block until the target thread exits.
	s["pthread_join"] = func(k *Kernel, t *Task) {
		k.JoinTask(t, int(arg(t, 1)))
		ret(t, 0)
	}

	// --- signal hooking ---

	// signal(sig, handler): handler 0 = SIG_DFL, 1 = SIG_IGN, else a
	// guest address. Returns the previous handler encoding.
	s["signal"] = func(k *Kernel, t *Task) {
		sig := Signal(arg(t, 1))
		h := arg(t, 2)
		act := decodeGuestAction(h)
		old := k.SetSigAction(t.Proc, sig, act)
		ret(t, encodeGuestAction(old))
	}

	// sigaction(sig, handler) with the same simplified encoding.
	s["sigaction"] = func(k *Kernel, t *Task) {
		sig := Signal(arg(t, 1))
		h := arg(t, 2)
		act := decodeGuestAction(h)
		old := k.SetSigAction(t.Proc, sig, act)
		ret(t, encodeGuestAction(old))
	}

	s["rt_sigreturn"] = func(k *Kernel, t *Task) {
		k.sigreturn(t)
	}

	// setitimer(kind, value): one-shot per-task timer.
	s["setitimer"] = func(k *Kernel, t *Task) {
		t.SetTimer(TimerKind(arg(t, 1)), arg(t, 2))
		ret(t, 0)
	}

	// --- floating point environment control (fe*) ---

	s["feenableexcept"] = func(k *Kernel, t *Task) {
		old := ^t.M.CPU.MXCSR.Masks() & softfloat.Flags(0x3F)
		t.M.CPU.MXCSR.Unmask(softfloat.Flags(arg(t, 1)))
		ret(t, uint64(old))
	}
	s["fedisableexcept"] = func(k *Kernel, t *Task) {
		old := ^t.M.CPU.MXCSR.Masks() & softfloat.Flags(0x3F)
		t.M.CPU.MXCSR.Mask(softfloat.Flags(arg(t, 1)))
		ret(t, uint64(old))
	}
	s["fegetexcept"] = func(k *Kernel, t *Task) {
		ret(t, uint64(^t.M.CPU.MXCSR.Masks()&softfloat.Flags(0x3F)))
	}
	s["feclearexcept"] = func(k *Kernel, t *Task) {
		cur := t.M.CPU.MXCSR.Flags()
		t.M.CPU.MXCSR.ClearFlags()
		t.M.CPU.MXCSR.SetFlags(cur &^ softfloat.Flags(arg(t, 1)))
		ret(t, 0)
	}
	s["fetestexcept"] = func(k *Kernel, t *Task) {
		ret(t, uint64(t.M.CPU.MXCSR.Flags()&softfloat.Flags(arg(t, 1))))
	}
	s["fegetexceptflag"] = func(k *Kernel, t *Task) {
		// fegetexceptflag(ptr, mask): store flags&mask at ptr.
		ptr := arg(t, 1)
		mask := softfloat.Flags(arg(t, 2))
		storeU64(t, ptr, uint64(t.M.CPU.MXCSR.Flags()&mask))
		ret(t, 0)
	}
	s["fesetexceptflag"] = func(k *Kernel, t *Task) {
		ptr := arg(t, 1)
		mask := softfloat.Flags(arg(t, 2))
		v, _ := loadU64(t, ptr)
		cur := t.M.CPU.MXCSR.Flags()
		t.M.CPU.MXCSR.ClearFlags()
		t.M.CPU.MXCSR.SetFlags((cur &^ mask) | (softfloat.Flags(v) & mask))
		ret(t, 0)
	}
	s["feraiseexcept"] = func(k *Kernel, t *Task) {
		raised := softfloat.Flags(arg(t, 1))
		t.M.CPU.MXCSR.SetFlags(raised)
		if un := t.M.CPU.MXCSR.Unmasked(raised); un != 0 {
			k.deliverSignal(t, SIGFPE, &SigInfo{
				Signo: SIGFPE, Addr: t.M.CPU.RIP, Raised: raised, Unmasked: un,
			})
		}
		ret(t, 0)
	}
	s["fegetround"] = func(k *Kernel, t *Task) {
		ret(t, uint64(t.M.CPU.MXCSR.RC()))
	}
	s["fesetround"] = func(k *Kernel, t *Task) {
		t.M.CPU.MXCSR.SetRC(softfloat.RoundingMode(arg(t, 1)))
		ret(t, 0)
	}
	s["fegetenv"] = func(k *Kernel, t *Task) {
		storeU64(t, arg(t, 1), uint64(t.M.CPU.MXCSR))
		ret(t, 0)
	}
	s["fesetenv"] = func(k *Kernel, t *Task) {
		ptr := arg(t, 1)
		if ptr == 0 {
			// FE_DFL_ENV
			t.M.CPU.MXCSR = mxcsr.Default
		} else if v, ok := loadU64(t, ptr); ok {
			t.M.CPU.MXCSR = mxReg(v)
		}
		ret(t, 0)
	}
	s["feholdexcept"] = func(k *Kernel, t *Task) {
		storeU64(t, arg(t, 1), uint64(t.M.CPU.MXCSR))
		t.M.CPU.MXCSR.ClearFlags()
		t.M.CPU.MXCSR.Mask(softfloat.Flags(0x3F))
		ret(t, 0)
	}
	s["feupdateenv"] = func(k *Kernel, t *Task) {
		raised := t.M.CPU.MXCSR.Flags()
		if v, ok := loadU64(t, arg(t, 1)); ok {
			t.M.CPU.MXCSR = mxReg(v)
		}
		t.M.CPU.MXCSR.SetFlags(raised)
		if un := t.M.CPU.MXCSR.Unmasked(raised); un != 0 {
			k.deliverSignal(t, SIGFPE, &SigInfo{
				Signo: SIGFPE, Addr: t.M.CPU.RIP, Raised: raised, Unmasked: un,
			})
		}
		ret(t, 0)
	}

	return o
}

func decodeGuestAction(h uint64) *SigAction {
	switch h {
	case 0:
		return nil // SIG_DFL
	case 1:
		return &SigAction{Ignore: true}
	default:
		return &SigAction{Guest: h}
	}
}

func encodeGuestAction(a *SigAction) uint64 {
	switch {
	case a == nil:
		return 0
	case a.Ignore:
		return 1
	default:
		return a.Guest
	}
}

func loadU64(t *Task, addr uint64) (uint64, bool) {
	m := t.M.Mem
	if addr+8 > uint64(len(m)) {
		return 0, false
	}
	b := m[addr:]
	return uint64(b[0]) | uint64(b[1])<<8 | uint64(b[2])<<16 | uint64(b[3])<<24 |
		uint64(b[4])<<32 | uint64(b[5])<<40 | uint64(b[6])<<48 | uint64(b[7])<<56, true
}

func storeU64(t *Task, addr, v uint64) bool {
	m := t.M.Mem
	if addr+8 > uint64(len(m)) {
		return false
	}
	b := m[addr:]
	for i := 0; i < 8; i++ {
		b[i] = byte(v >> (8 * i))
	}
	return true
}
