package kernel

import (
	"testing"

	"repro/internal/obs"
)

// TestFastPathMatchesPreciseUnderObs is the kernel-level transparency
// contract for the observability layer: enabling metrics must not
// perturb the simulation in any way. Both execution paths are run with
// and without a registry attached and every architectural observable —
// retirement counts, cycle accounting, timer firings, final CPU state —
// must be bit-identical. The instrumented runs must additionally produce
// counters that reconcile with the simulation's own accounting.
func TestFastPathMatchesPreciseUnderObs(t *testing.T) {
	const interval = 53
	for _, noFast := range []bool{false, true} {
		name := "fast"
		if noFast {
			name = "precise"
		}
		t.Run(name, func(t *testing.T) {
			bk, bp, bev := runFastpathWorkload(t, TimerVirtual, interval, noFast, nil)
			om := obs.New(obs.Options{})
			ok, op, oev := runFastpathWorkload(t, TimerVirtual, interval, noFast, om)

			if bev != oev {
				t.Errorf("FP events bare=%d instrumented=%d", bev, oev)
			}
			if got, want := op.Tasks[0].M.Retired, bp.Tasks[0].M.Retired; got != want {
				t.Errorf("retired bare=%d instrumented=%d", want, got)
			}
			bu, bs := bp.ProcessTimes()
			ou, os := op.ProcessTimes()
			if bu != ou || bs != os {
				t.Errorf("cycles bare=(%d,%d) instrumented=(%d,%d)", bu, bs, ou, os)
			}
			if bk.Cycles != ok.Cycles {
				t.Errorf("wall cycles bare=%d instrumented=%d", bk.Cycles, ok.Cycles)
			}
			if bp.Mem[512] != op.Mem[512] {
				t.Errorf("timer firings bare=%d instrumented=%d", bp.Mem[512], op.Mem[512])
			}
			if bp.Tasks[0].M.CPU != op.Tasks[0].M.CPU {
				t.Errorf("final CPU state diverged under obs")
			}

			// The instrumented run's counters must reconcile with the
			// simulation's own accounting, not merely be nonzero.
			km := &om.Kernel
			if got := km.Signals[SIGFPE].Load(); got != uint64(oev) {
				t.Errorf("SIGFPE counter %d, want %d", got, oev)
			}
			// Each FP event runs the two-trap protocol: SIGFPE mutates
			// MXCSR (mask) and TF (set), SIGTRAP mutates MXCSR (unmask)
			// and TF (clear).
			if got := km.Signals[SIGTRAP].Load(); got != uint64(oev) {
				t.Errorf("SIGTRAP counter %d, want %d", got, oev)
			}
			if got := km.MCtxMXCSR.Load(); got != uint64(2*oev) {
				t.Errorf("mcontext MXCSR mutations %d, want %d", got, 2*oev)
			}
			if got := km.MCtxTF.Load(); got != uint64(2*oev) {
				t.Errorf("mcontext TF mutations %d, want %d", got, 2*oev)
			}
			if got := km.TimerFires[TimerVirtual].Load(); got != uint64(op.Mem[512]) {
				t.Errorf("timer-fire counter %d, want %d firings", got, op.Mem[512])
			}
			// PreciseSteps counts step attempts: an unmasked FP fault
			// aborts its instruction (re-executed after the handler) and
			// the final HLT does not retire, so attempts exceed the
			// retirement count by exactly faults + 1.
			steps := km.FastSteps.Load() + km.PreciseSteps.Load()
			if want := op.Tasks[0].M.Retired + uint64(oev) + 1; steps != want {
				t.Errorf("fast+precise steps %d, want %d (retired %d + %d faults + hlt)",
					steps, want, op.Tasks[0].M.Retired, oev)
			}
			if noFast {
				if km.FastSteps.Load() != 0 {
					t.Errorf("fast steps %d on the precise path", km.FastSteps.Load())
				}
			} else {
				if km.FastSteps.Load() == 0 {
					t.Error("fast path retired no batched steps")
				}
				if km.FastBatch.Count() == 0 {
					t.Error("no fast-path batches observed")
				}
			}
			if km.SchedRounds.Load() == 0 {
				t.Error("no scheduler rounds observed")
			}
		})
	}
}
