package kernel

import (
	"fmt"
	"testing"

	"repro/internal/isa"
)

// timerGuest builds a guest that installs a SIGVTALRM handler, arms a
// 50-instruction virtual timer, and spins until the handler stores a
// flag at address 512.
func timerGuest() *isa.Program {
	b := isa.NewBuilder("inject-timer")
	handler := b.Label("handler")
	b.Movi(isa.R1, int64(SIGVTALRM))
	b.Lea(isa.R2, handler)
	b.CallC("signal")
	b.Movi(isa.R1, int64(TimerVirtual))
	b.Movi(isa.R2, 50)
	b.CallC("setitimer")
	b.Movi(isa.R7, 512)
	loop := b.Label("loop")
	b.Bind(loop)
	b.Ld(isa.R6, isa.R7, 0)
	b.Beq(isa.R6, isa.R0, loop)
	b.Hlt()
	b.Bind(handler)
	b.Movi(isa.R3, 512)
	b.Movi(isa.R4, 1)
	b.St(isa.R3, 0, isa.R4)
	b.CallC("rt_sigreturn")
	return b.Build()
}

func TestDelayedTimerSignalStillDelivered(t *testing.T) {
	k := New()
	k.Inject = NewInject(42)
	k.Inject.DelayMax = 25
	p, err := k.Spawn(timerGuest(), 1<<20, nil)
	if err != nil {
		t.Fatal(err)
	}
	k.Run(100000)
	if !p.Exited {
		t.Fatal("process did not exit")
	}
	if p.Mem[512] != 1 {
		t.Error("delayed timer handler never ran")
	}
}

// threadStormGuest builds a guest whose main thread spawns nworkers
// threads; worker i stores 40+i at address 512+8i and exits, and main
// spins until every slot is filled.
func threadStormGuest(nworkers int) *isa.Program {
	b := isa.NewBuilder("inject-threads")
	worker := b.Label("worker")
	for i := 0; i < nworkers; i++ {
		b.Lea(isa.R1, worker)
		b.Movi(isa.R2, int64(i)) // arg: worker index
		b.CallC("pthread_create")
	}
	for i := 0; i < nworkers; i++ {
		b.Movi(isa.R7, int64(512+8*i))
		loop := b.Label(fmt.Sprintf("wait%d", i))
		b.Bind(loop)
		b.Ld(isa.R6, isa.R7, 0)
		b.Beq(isa.R6, isa.R0, loop)
	}
	b.Hlt()
	b.Bind(worker)
	// R1 = worker index; store 40+index at 512+8*index.
	b.Shli(isa.R3, isa.R1, 3)
	b.Movi(isa.R4, 512)
	b.Add(isa.R3, isa.R3, isa.R4)
	b.Movi(isa.R5, 40)
	b.Add(isa.R5, isa.R5, isa.R1)
	b.St(isa.R3, 0, isa.R5)
	b.CallC("pthread_exit")
	return b.Build()
}

// runChaos runs the thread-storm guest under the given injection seed
// and returns a fingerprint of final state: per-task retired counts and
// the worker output slots.
func runChaos(t *testing.T, seed int64) string {
	t.Helper()
	k := New()
	k.Inject = NewInject(seed)
	k.Inject.DelayMax = 10
	k.Inject.ShuffleSched = true
	k.Inject.QuantumJitter = true
	p, err := k.Spawn(threadStormGuest(3), 1<<20, nil)
	if err != nil {
		t.Fatal(err)
	}
	k.Run(500000)
	if !p.Exited {
		t.Fatal("process did not exit under injection")
	}
	fp := ""
	for _, tk := range p.Tasks {
		fp += fmt.Sprintf("tid=%d retired=%d cycles=%d\n", tk.TID, tk.M.Retired, tk.UserCycles+tk.SysCycles)
	}
	for i := 0; i < 3; i++ {
		fp += fmt.Sprintf("slot%d=%d\n", i, p.Mem[512+8*i])
	}
	return fp
}

func TestInjectSameSeedReproduces(t *testing.T) {
	a := runChaos(t, 7)
	b := runChaos(t, 7)
	if a != b {
		t.Errorf("same seed diverged:\n--- run1 ---\n%s--- run2 ---\n%s", a, b)
	}
}

func TestShuffleSchedAllTasksProgress(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		fp := runChaos(t, seed)
		for i := 0; i < 3; i++ {
			want := fmt.Sprintf("slot%d=%d\n", i, 40+i)
			if !containsLine(fp, want) {
				t.Errorf("seed %d: worker %d never ran: fingerprint:\n%s", seed, i, fp)
			}
		}
	}
}

func containsLine(s, line string) bool {
	for len(s) > 0 {
		i := 0
		for i < len(s) && s[i] != '\n' {
			i++
		}
		if i < len(s) {
			i++
		}
		if s[:i] == line {
			return true
		}
		s = s[i:]
	}
	return false
}
