package kernel

import (
	"math"
	"testing"

	"repro/internal/isa"
	"repro/internal/softfloat"
)

// buildFaulty builds a program taking n unmasked FP faults handled by a
// host handler that masks, steps, and unmasks (the FPSpy protocol).
func buildFaulty(n int64) *isa.Program {
	b := isa.NewBuilder("faulty")
	b.Movi(isa.R1, int64(math.Float64bits(1)))
	b.Movqx(isa.X0, isa.R1)
	b.Movi(isa.R1, int64(math.Float64bits(3)))
	b.Movqx(isa.X1, isa.R1)
	b.Movi(isa.R8, 0)
	b.Movi(isa.R9, n)
	top := b.Label("top")
	b.Bind(top)
	b.FP2(isa.OpDIVSD, isa.X2, isa.X0, isa.X1)
	b.Addi(isa.R8, isa.R8, 1)
	b.Blt(isa.R8, isa.R9, top)
	b.Hlt()
	return b.Build()
}

// installSpyProtocol wires the FPSpy-style two-trap protocol with host
// handlers.
func installSpyProtocol(k *Kernel, p *Process) {
	k.SetSigAction(p, SIGFPE, &SigAction{Host: func(k *Kernel, t *Task, info *SigInfo, mc *MContext) {
		mc.CPU.MXCSR.ClearFlags()
		mc.CPU.MXCSR.Mask(softfloat.Flags(0x3F))
		mc.CPU.TF = true
	}})
	k.SetSigAction(p, SIGTRAP, &SigAction{Host: func(k *Kernel, t *Task, info *SigInfo, mc *MContext) {
		mc.CPU.MXCSR.ClearFlags()
		mc.CPU.MXCSR.Unmask(softfloat.FlagInexact)
		mc.CPU.TF = false
	}})
	p.Tasks[0].M.CPU.MXCSR.Unmask(softfloat.FlagInexact)
}

func TestCostModelChargesPerEvent(t *testing.T) {
	const n = 100
	k := New()
	p, err := k.Spawn(buildFaulty(n), 1<<20, nil)
	if err != nil {
		t.Fatal(err)
	}
	installSpyProtocol(k, p)
	k.Run(1_000_000)
	if !p.Exited {
		t.Fatal("did not exit")
	}
	task := p.Tasks[0]
	cost := k.Cost
	// Each event costs one FP fault + one trap (system) and two handler
	// invocations (user).
	wantSys := n * (cost.FPFault + cost.Trap)
	if task.SysCycles != wantSys {
		t.Errorf("sys cycles = %d, want %d", task.SysCycles, wantSys)
	}
	minUser := n * 2 * cost.SignalHandler
	if task.UserCycles < minUser {
		t.Errorf("user cycles = %d, want >= %d", task.UserCycles, minUser)
	}
}

func TestCostModelOverride(t *testing.T) {
	run := func(cm CostModel) uint64 {
		k := New()
		k.Cost = cm
		p, err := k.Spawn(buildFaulty(50), 1<<20, nil)
		if err != nil {
			t.Fatal(err)
		}
		installSpyProtocol(k, p)
		k.Run(1_000_000)
		u, s := p.ProcessTimes()
		return u + s
	}
	cheap := DefaultCostModel()
	cheap.FPFault, cheap.Trap, cheap.SignalHandler = 10, 10, 10
	expensive := DefaultCostModel()
	expensive.FPFault, expensive.Trap = 100_000, 100_000
	if run(cheap) >= run(expensive) {
		t.Error("cost model not honored")
	}
}

func TestWallClockAdvancesWithLongestTask(t *testing.T) {
	// Two concurrent tasks: wall time tracks the longest per-round
	// slice, not the sum (tasks run on separate virtual cores).
	b := isa.NewBuilder("par")
	worker := b.Label("worker")
	b.Lea(isa.R1, worker)
	b.Movi(isa.R2, 0)
	b.CallC("pthread_create")
	b.Mov(isa.R10, isa.R1)
	b.Movi(isa.R8, 0)
	b.Movi(isa.R9, 30000)
	spin := b.Label("spin")
	b.Bind(spin)
	b.Addi(isa.R8, isa.R8, 1)
	b.Blt(isa.R8, isa.R9, spin)
	b.Mov(isa.R1, isa.R10)
	b.CallC("pthread_join")
	b.Hlt()
	b.Bind(worker)
	b.Movi(isa.R8, 0)
	b.Movi(isa.R9, 30000)
	spin2 := b.Label("spin2")
	b.Bind(spin2)
	b.Addi(isa.R8, isa.R8, 1)
	b.Blt(isa.R8, isa.R9, spin2)
	b.CallC("pthread_exit")
	k := New()
	p, err := k.Spawn(b.Build(), 1<<20, nil)
	if err != nil {
		t.Fatal(err)
	}
	k.Run(10_000_000)
	if !p.Exited {
		t.Fatal("did not exit")
	}
	user, sys := p.ProcessTimes()
	total := user + sys
	// Two ~60k-instruction tasks overlap: wall must be well below the
	// serial total and at least the longer task's share.
	if k.Cycles >= total {
		t.Errorf("wall %d >= serial %d: no overlap modeled", k.Cycles, total)
	}
	if k.Cycles < total/3 {
		t.Errorf("wall %d implausibly small vs %d", k.Cycles, total)
	}
}

func TestWallSeconds(t *testing.T) {
	k := New()
	k.Cycles = 2_100_000_000
	if got := k.WallSeconds(2.1e9); math.Abs(got-1.0) > 1e-12 {
		t.Errorf("WallSeconds = %v", got)
	}
}
