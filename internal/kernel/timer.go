package kernel

// TimerKind selects which per-task interval timer to arm.
type TimerKind int

const (
	// TimerReal counts user+system cycles and delivers SIGALRM — the
	// analogue of ITIMER_REAL for a task pinned to its own core.
	TimerReal TimerKind = iota
	// TimerVirtual counts retired instructions and delivers SIGVTALRM
	// (ITIMER_VIRTUAL; FPSpy's "instruction time").
	TimerVirtual
)

type timer struct {
	armed     bool
	remaining uint64
}

// SetTimer arms a one-shot per-task timer. A value of 0 disarms. FPSpy's
// Poisson sampler arms these alternately for its on and off periods.
func (t *Task) SetTimer(kind TimerKind, value uint64) {
	t.timers[kind] = timer{armed: value > 0, remaining: value}
}

// TimerArmed reports whether the timer is pending.
func (t *Task) TimerArmed(kind TimerKind) bool { return t.timers[kind].armed }

// tickTimers advances both timers after one retired instruction that
// consumed the given number of cycles, delivering expiry signals.
// (Clean fast-path batches bypass this via Kernel.creditTimers, which
// fastBatch guarantees cannot cross an expiry.)
func (k *Kernel) tickTimers(t *Task, cycles uint64) {
	if tm := &t.timers[TimerVirtual]; tm.armed {
		if tm.remaining <= 1 {
			tm.armed = false
			t.SysCycles += k.Cost.TimerIRQ
			if k.Obs != nil {
				k.Obs.Kernel.TimerFires[TimerVirtual].Inc()
			}
			if !k.delaySignal(t, SIGVTALRM, SigInfo{Signo: SIGVTALRM}) {
				t.sigInfo = SigInfo{Signo: SIGVTALRM}
				k.deliverSignal(t, SIGVTALRM, &t.sigInfo)
			}
		} else {
			tm.remaining--
		}
	}
	if tm := &t.timers[TimerReal]; tm.armed {
		if tm.remaining <= cycles {
			tm.armed = false
			t.SysCycles += k.Cost.TimerIRQ
			if k.Obs != nil {
				k.Obs.Kernel.TimerFires[TimerReal].Inc()
			}
			if !k.delaySignal(t, SIGALRM, SigInfo{Signo: SIGALRM}) {
				t.sigInfo = SigInfo{Signo: SIGALRM}
				k.deliverSignal(t, SIGALRM, &t.sigInfo)
			}
		} else {
			tm.remaining -= cycles
		}
	}
}
