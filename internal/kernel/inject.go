package kernel

import "math/rand"

// This file implements chaos injection: seeded, deterministic
// kernel-level perturbations used by the internal/chaos harness to attack
// FPSpy's assumptions about signal delivery latency and scheduling. All
// randomness comes from one rand.Rand owned by the kernel loop (which is
// single-threaded), so a given seed always reproduces the same
// perturbation sequence.

// Inject configures kernel-level fault injection. A nil *Inject on the
// Kernel means no perturbation (the default, zero-overhead path).
type Inject struct {
	// DelayMax, when nonzero, defers delivery of asynchronous timer
	// signals (SIGALRM/SIGVTALRM) by 1..DelayMax retired instructions
	// past their expiry — the "signal arrives late" adversary. Fault
	// signals stay synchronous, as on real hardware.
	DelayMax uint64
	// ShuffleSched permutes the runnable-task order every scheduling
	// round — the adversarial interleaving generator.
	ShuffleSched bool
	// QuantumJitter varies each task's timeslice per round within
	// [quantum/4, quantum] instead of the fixed quantum.
	QuantumJitter bool

	rng *rand.Rand
}

// NewInject creates an injection config whose perturbations are drawn
// deterministically from seed. Enable individual attacks by setting the
// exported fields.
func NewInject(seed int64) *Inject {
	return &Inject{rng: rand.New(rand.NewSource(seed))}
}

// pendingSig is a delayed signal: delivered when delay instructions have
// retired on the task.
type pendingSig struct {
	sig   Signal
	info  SigInfo
	delay uint64
}

// delaySignal queues sig for delayed delivery, returning true when the
// injector decided to defer it.
func (k *Kernel) delaySignal(t *Task, sig Signal, info SigInfo) bool {
	inj := k.Inject
	if inj == nil || inj.DelayMax == 0 {
		return false
	}
	delay := 1 + uint64(inj.rng.Int63n(int64(inj.DelayMax)))
	t.pendingSigs = append(t.pendingSigs, pendingSig{sig: sig, info: info, delay: delay})
	return true
}

// drainPending ticks delayed signals by one retired instruction and
// delivers those that have come due. Runs on the precise path only:
// fastBatch refuses to batch while signals are pending, so every retired
// instruction passes through here.
func (k *Kernel) drainPending(t *Task) {
	for i := 0; i < len(t.pendingSigs); {
		ps := &t.pendingSigs[i]
		ps.delay--
		if ps.delay > 0 {
			i++
			continue
		}
		due := *ps
		t.pendingSigs = append(t.pendingSigs[:i], t.pendingSigs[i+1:]...)
		t.sigInfo = due.info
		k.deliverSignal(t, due.sig, &t.sigInfo)
		if t.State != TaskRunnable || t.Proc.Exited {
			return
		}
	}
}

// schedOrder returns the task order for one scheduling round, shuffled
// when the injector asks for adversarial interleavings. The run queue
// itself is never reordered — only the round's snapshot.
func (k *Kernel) schedOrder(queue []*Task) []*Task {
	inj := k.Inject
	if inj == nil || !inj.ShuffleSched {
		return queue
	}
	out := make([]*Task, len(queue))
	copy(out, queue)
	inj.rng.Shuffle(len(out), func(i, j int) { out[i], out[j] = out[j], out[i] })
	return out
}

// schedQuantum returns this round's timeslice for one task.
func (k *Kernel) schedQuantum() uint64 {
	inj := k.Inject
	if inj == nil || !inj.QuantumJitter {
		return quantum
	}
	return quantum/4 + uint64(inj.rng.Int63n(3*quantum/4+1))
}
