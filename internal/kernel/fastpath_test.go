package kernel

import (
	"math"
	"testing"

	"repro/internal/isa"
	"repro/internal/obs"
	"repro/internal/softfloat"
)

// fastpathWorkload builds a program exercising everything the batched
// runTask path interacts with: straight-line FP arithmetic raising
// unmasked exceptions (host handler runs the FPSpy mask/TF/unmask
// protocol), an interval timer with a guest handler, and libc calls.
func fastpathWorkload(timerKind TimerKind, interval int64) *isa.Program {
	b := isa.NewBuilder("fastpath")
	handler := b.Label("handler")
	b.Movi(isa.R1, int64(SIGVTALRM))
	if timerKind == TimerReal {
		b.Movi(isa.R1, int64(SIGALRM))
	}
	b.Lea(isa.R2, handler)
	b.CallC("signal")
	b.Movi(isa.R1, int64(timerKind))
	b.Movi(isa.R2, interval) // awkward interval, lands mid-batch
	b.CallC("setitimer")
	b.Movi(isa.R1, int64(softfloat.FlagInexact))
	b.CallC("feenableexcept")
	b.Movi(isa.R4, int64(math.Float64bits(1)))
	b.Movqx(isa.X0, isa.R4)
	b.Movi(isa.R4, int64(math.Float64bits(3)))
	b.Movqx(isa.X1, isa.R4)
	b.Movi(isa.R5, 0)
	b.Movi(isa.R6, 60)
	loop := b.Label("loop")
	b.Bind(loop)
	b.FP2(isa.OpDIVSD, isa.X2, isa.X0, isa.X1) // inexact
	b.Addi(isa.R5, isa.R5, 1)
	b.Blt(isa.R5, isa.R6, loop)
	b.Hlt()
	b.Bind(handler)
	b.Movi(isa.R3, 512)
	b.Ld(isa.R4, isa.R3, 0)
	b.Addi(isa.R4, isa.R4, 1)
	b.St(isa.R3, 0, isa.R4) // count timer firings
	b.Movi(isa.R1, int64(timerKind))
	b.Movi(isa.R2, interval) // re-arm
	b.CallC("setitimer")
	b.CallC("rt_sigreturn")
	return b.Build()
}

// runFastpathWorkload spawns the workload with the FPSpy-style host
// SIGFPE/SIGTRAP handlers installed and runs it to completion. om may be
// nil (observability off) or a registry to instrument the kernel with;
// either way the simulation must behave identically.
func runFastpathWorkload(t *testing.T, timerKind TimerKind, interval int64, noFast bool, om *obs.Metrics) (*Kernel, *Process, int) {
	t.Helper()
	k := New()
	k.Obs = om
	k.NoFastPath = noFast
	p, err := k.Spawn(fastpathWorkload(timerKind, interval), 1<<16, nil)
	if err != nil {
		t.Fatal(err)
	}
	fpEvents := 0
	k.SetSigAction(p, SIGFPE, &SigAction{Host: func(k *Kernel, task *Task, info *SigInfo, mc *MContext) {
		fpEvents++
		mc.CPU.MXCSR.Mask(info.Raised)
		mc.CPU.TF = true
	}})
	k.SetSigAction(p, SIGTRAP, &SigAction{Host: func(k *Kernel, task *Task, info *SigInfo, mc *MContext) {
		mc.CPU.MXCSR.ClearFlags()
		mc.CPU.MXCSR.Unmask(softfloat.FlagInexact)
		mc.CPU.TF = false
	}})
	k.Run(1 << 20)
	if !p.Exited {
		t.Fatal("process did not exit")
	}
	return k, p, fpEvents
}

// TestFastPathMatchesPrecise requires the batched fast path and the
// precise per-instruction path to be bit-identical on a workload mixing
// FP trap-and-emulate cycles, interval timers, and libc calls: same
// retirement count, same user/system/wall cycles, same timer firings,
// same FP event count.
func TestFastPathMatchesPrecise(t *testing.T) {
	for _, tc := range []struct {
		kind TimerKind
		// The virtual timer counts retired instructions; the real timer
		// counts cycles, so its interval must exceed the handler's own
		// cycle cost (two syscalls + handler entry) or re-arming livelocks.
		interval int64
	}{
		{TimerVirtual, 53},
		{TimerReal, 7919},
	} {
		kind := tc.kind
		fk, fp, fev := runFastpathWorkload(t, kind, tc.interval, false, nil)
		pk, pp, pev := runFastpathWorkload(t, kind, tc.interval, true, nil)

		if fev != pev {
			t.Errorf("timer %d: FP events fast=%d precise=%d", kind, fev, pev)
		}
		if fev == 0 {
			t.Errorf("timer %d: workload raised no FP events", kind)
		}
		if got, want := fp.Tasks[0].M.Retired, pp.Tasks[0].M.Retired; got != want {
			t.Errorf("timer %d: retired fast=%d precise=%d", kind, got, want)
		}
		fu, fs := fp.ProcessTimes()
		pu, ps := pp.ProcessTimes()
		if fu != pu || fs != ps {
			t.Errorf("timer %d: cycles fast=(%d,%d) precise=(%d,%d)", kind, fu, fs, pu, ps)
		}
		if fk.Cycles != pk.Cycles {
			t.Errorf("timer %d: wall cycles fast=%d precise=%d", kind, fk.Cycles, pk.Cycles)
		}
		if fp.Mem[512] != pp.Mem[512] {
			t.Errorf("timer %d: timer firings fast=%d precise=%d", kind, fp.Mem[512], pp.Mem[512])
		}
		if fp.Mem[512] == 0 {
			t.Errorf("timer %d: timer never fired", kind)
		}
		if fp.Tasks[0].M.CPU != pp.Tasks[0].M.CPU {
			t.Errorf("timer %d: final CPU state diverged", kind)
		}
	}
}
