package kernel

import (
	"repro/internal/machine"
	"repro/internal/obs"
	"repro/internal/softfloat"
)

// Signal numbers follow Linux x86-64.
type Signal int

const (
	// SIGILL is delivered when fetch hits a stubbed (invalid) opcode —
	// the Section 3.8 breakpoint mechanism.
	SIGILL Signal = 4
	// SIGTRAP is delivered for single-step (#DB) traps.
	SIGTRAP Signal = 5
	// SIGFPE is delivered for unmasked floating point exceptions.
	SIGFPE Signal = 8
	// SIGKILL terminates unconditionally.
	SIGKILL Signal = 9
	// SIGSEGV is delivered for machine faults.
	SIGSEGV Signal = 11
	// SIGALRM is delivered by the real-time interval timer.
	SIGALRM Signal = 14
	// SIGVTALRM is delivered by the virtual-time interval timer.
	SIGVTALRM Signal = 26
)

// String names the signal.
func (s Signal) String() string {
	switch s {
	case SIGILL:
		return "SIGILL"
	case SIGTRAP:
		return "SIGTRAP"
	case SIGFPE:
		return "SIGFPE"
	case SIGKILL:
		return "SIGKILL"
	case SIGSEGV:
		return "SIGSEGV"
	case SIGALRM:
		return "SIGALRM"
	case SIGVTALRM:
		return "SIGVTALRM"
	}
	return "SIG?"
}

// SigInfo carries the cause of a signal (a subset of siginfo_t plus the
// floating point condition detail the mcontext would expose).
type SigInfo struct {
	// Signo is the signal number.
	Signo Signal
	// Addr is the faulting instruction address for fault signals.
	Addr uint64
	// Raised is the full set of floating point conditions the faulting
	// operation produced (SIGFPE only).
	Raised softfloat.Flags
	// Unmasked is the subset that was unmasked (SIGFPE only).
	Unmasked softfloat.Flags
	// Reason is a diagnostic string for SIGSEGV.
	Reason string
}

// MContext is the machine context a host signal handler receives. Writes
// to CPU (registers, MXCSR, TF) take effect when the handler returns —
// the simulated equivalent of writing uc_mcontext before sigreturn.
type MContext struct {
	// CPU is the interrupted task's architectural state.
	CPU *machine.CPU
	// Task is the interrupted task.
	Task *Task
}

// HostHandler is a signal handler implemented in host Go code (how the
// FPSpy shim registers its SIGFPE/SIGTRAP handlers).
type HostHandler func(k *Kernel, t *Task, info *SigInfo, mc *MContext)

// SigAction is a signal disposition.
type SigAction struct {
	// Host, when non-nil, handles the signal in host code.
	Host HostHandler
	// Guest, when nonzero, is a guest-code handler address; the handler
	// must return via rt_sigreturn.
	Guest uint64
	// Ignore discards the signal (SIG_IGN).
	Ignore bool
}

// Default returns true for the default disposition (zero action).
func (a *SigAction) Default() bool {
	return a == nil || (a.Host == nil && a.Guest == 0 && !a.Ignore)
}

// SetSigAction installs a disposition for sig, returning the previous
// one. It is the syscall under both signal() and sigaction().
func (k *Kernel) SetSigAction(p *Process, sig Signal, act *SigAction) *SigAction {
	old := p.Handlers[sig]
	if act == nil {
		delete(p.Handlers, sig)
	} else {
		p.Handlers[sig] = act
	}
	return old
}

// deliverSignal routes a signal to the task, honoring the process
// disposition table. info may point into per-task scratch that is
// reused by the next delivery; handlers must consume it synchronously.
func (k *Kernel) deliverSignal(t *Task, sig Signal, info *SigInfo) {
	if k.Obs != nil && sig >= 0 && int(sig) < obs.NumSignals {
		k.Obs.Kernel.Signals[sig].Inc()
	}
	act := t.Proc.Handlers[sig]
	switch {
	case act != nil && act.Host != nil:
		t.UserCycles += k.Cost.SignalHandler
		if k.Obs != nil {
			// Observe what the handler does to the writable machine
			// context — the mechanism FPSpy uses to mask exceptions and
			// arm single-stepping from user level.
			beforeMXCSR, beforeTF := t.M.CPU.MXCSR, t.M.CPU.TF
			act.Host(k, t, info, t.mcontext())
			if t.M.CPU.MXCSR != beforeMXCSR {
				k.Obs.Kernel.MCtxMXCSR.Inc()
			}
			if t.M.CPU.TF != beforeTF {
				k.Obs.Kernel.MCtxTF.Inc()
			}
			return
		}
		act.Host(k, t, info, t.mcontext())
	case act != nil && act.Guest != 0:
		t.UserCycles += k.Cost.SignalHandler
		// Push the interrupted context and enter the guest handler.
		t.savedCtx = append(t.savedCtx, t.M.CPU)
		t.M.CPU.RIP = act.Guest
		t.M.CPU.TF = false
		t.M.CPU.R[1] = uint64(sig)
	case act != nil && act.Ignore && !fatalIfIgnored(sig):
		// Discard.
	default:
		// Default action: fault and alarm signals terminate the process.
		k.ExitProcess(t.Proc, 128+int(sig))
	}
}

// fatalIfIgnored reports whether ignoring the signal would livelock a
// faulting instruction (the kernel kills instead, like Linux does for
// hardware-originated faults with SIG_IGN).
func fatalIfIgnored(sig Signal) bool {
	return sig == SIGFPE || sig == SIGSEGV || sig == SIGTRAP || sig == SIGILL
}

// sigreturn pops the saved context after a guest handler finishes.
func (k *Kernel) sigreturn(t *Task) {
	n := len(t.savedCtx)
	if n == 0 {
		k.deliverSignal(t, SIGSEGV, &SigInfo{Signo: SIGSEGV, Reason: "sigreturn without frame"})
		return
	}
	t.M.CPU = t.savedCtx[n-1]
	t.savedCtx = t.savedCtx[:n-1]
}

// Kill marks the task for termination (used by validation tests).
func (k *Kernel) Kill(t *Task) { t.pendingKill = true }
