// Package kernel simulates the Linux facilities FPSpy depends on:
// processes and threads, signal dispositions and delivery with a writable
// machine context, interval timers (real and virtual), an environment, a
// dynamic linker with LD_PRELOAD-style interposition, and a cycle-level
// cost model separating user from system time.
//
// The kernel multiplexes guest tasks over virtual CPUs round-robin. Guest
// machine events (floating point faults, single-step traps, libc calls)
// are translated exactly the way Linux translates them: an unmasked SSE
// exception becomes SIGFPE delivered to the thread with the faulting
// context, a #DB trap becomes SIGTRAP, and the sigreturn path restores
// (possibly handler-modified) context — which is how FPSpy masks
// exceptions and arms single-stepping from user level.
package kernel

import (
	"fmt"
	"sort"

	"repro/internal/isa"
	"repro/internal/machine"
	"repro/internal/obs"
)

// TaskState is the lifecycle state of a task.
type TaskState uint8

const (
	// TaskRunnable tasks participate in scheduling.
	TaskRunnable TaskState = iota
	// TaskBlocked tasks wait on another task's exit (pthread_join).
	TaskBlocked
	// TaskExited tasks have terminated normally.
	TaskExited
	// TaskKilled tasks were terminated by a fatal signal.
	TaskKilled
)

// Task is one thread of execution: a guest CPU context plus accounting.
type Task struct {
	// TID is the thread id (unique across the kernel).
	TID int
	// Proc is the owning process.
	Proc *Process
	// M is the guest machine; memory is shared with the process.
	M *machine.Machine
	// State is the lifecycle state.
	State TaskState

	// UserCycles and SysCycles account execution time.
	UserCycles uint64
	SysCycles  uint64

	// OnExit hooks run when the task terminates (used by FPSpy's thread
	// teardown thunk).
	OnExit []func(*Kernel, *Task)

	// savedCtx stacks contexts for guest signal handlers.
	savedCtx []machine.CPU

	// timers are the per-task interval timers.
	timers [2]timer

	// pendingKill marks the task for termination by signal.
	pendingKill bool

	// pendingSigs are chaos-delayed signals awaiting delivery (see
	// Inject.DelayMax); empty except under injection.
	pendingSigs []pendingSig

	// sigInfo and mctx are per-task scratch reused across signal
	// deliveries, keeping the trap hot path (two deliveries per traced FP
	// event) free of heap allocation. Handlers run synchronously and must
	// not retain either pointer past their return.
	sigInfo SigInfo
	mctx    MContext
}

// mcontext returns the task's reusable machine-context view.
func (t *Task) mcontext() *MContext {
	if t.mctx.Task == nil {
		t.mctx = MContext{CPU: &t.M.CPU, Task: t}
	}
	return &t.mctx
}

// Process is a group of tasks sharing memory, signal dispositions, an
// environment, and a dynamic linker instance.
type Process struct {
	// PID is the process id.
	PID int
	// Tasks are the member threads (index 0 is the initial thread).
	Tasks []*Task
	// Mem is the shared memory image.
	Mem []byte
	// Env is the process environment (FPSpy's whole interface).
	Env map[string]string
	// Handlers maps signals to dispositions.
	Handlers map[Signal]*SigAction
	// Linker resolves libc symbols through the preload chain.
	Linker *Linker
	// Prog is the program image all tasks execute.
	Prog *isa.Program
	// Exited is true once the process has terminated.
	Exited bool
	// ExitCode is the status at exit.
	ExitCode int

	// stackTop is the bump allocator for thread stacks (grows down).
	stackTop uint64
}

// Kernel is the simulated OS instance.
type Kernel struct {
	// Procs are all processes ever created, by pid.
	Procs map[int]*Process
	// Cost is the cycle cost model.
	Cost CostModel
	// Cycles is the global wall clock in cycles (advances with the
	// longest-running virtual CPU).
	Cycles uint64
	// NoFastPath forces the precise per-instruction execution path,
	// disabling the batched straight-line fast path. Used by equivalence
	// tests and ablations; the two paths are bit-identical by
	// construction, so leaving this false is always safe.
	NoFastPath bool
	// NoSuperblock keeps the fast path but disables the superblock
	// region cache, falling back to the per-instruction Step loop (the
	// FPE_NOSUPERBLOCK ablation). Bit-identical to the default engine.
	NoSuperblock bool
	// Inject, when non-nil, enables seeded chaos perturbations (delayed
	// signal delivery, adversarial scheduling). Nil for normal runs.
	Inject *Inject
	// Obs, when non-nil, receives kernel observability: per-signal
	// delivery counts, fast-path batch statistics, mcontext mutations,
	// timer fires, scheduler rounds. Nil (obs.Disabled) means every
	// instrumentation point reduces to a single pointer test; the
	// instruments never feed back into simulation state, so enabling
	// them cannot change execution.
	Obs *obs.Metrics

	nextPID  int
	nextTID  int
	runq     []*Task
	preloads map[string]ObjectFactory
	// joinWaiters maps a tid to the tasks blocked joining it.
	joinWaiters map[int][]*Task
}

// New creates an empty kernel with the default cost model.
func New() *Kernel {
	return &Kernel{
		Procs:       make(map[int]*Process),
		Cost:        DefaultCostModel(),
		nextPID:     1000,
		nextTID:     1000,
		preloads:    make(map[string]ObjectFactory),
		joinWaiters: make(map[int][]*Task),
	}
}

// RegisterPreload makes a preloadable object available to LD_PRELOAD
// under the given name.
func (k *Kernel) RegisterPreload(name string, f ObjectFactory) {
	k.preloads[name] = f
}

// StackSize is the per-thread stack reservation.
const StackSize = 64 * 1024

// Spawn creates a process running prog with the given memory size and
// environment, links it against libc plus any preload objects named in
// env's LD_PRELOAD (resolved via the registry), and runs constructors.
func (k *Kernel) Spawn(prog *isa.Program, memSize int, env map[string]string) (*Process, error) {
	if env == nil {
		env = make(map[string]string)
	}
	p := &Process{
		PID:      k.nextPID,
		Env:      env,
		Handlers: make(map[Signal]*SigAction),
		Prog:     prog,
	}
	k.nextPID++
	m := machine.New(prog, memSize)
	p.Mem = m.Mem
	p.stackTop = uint64(memSize)
	t := k.addTask(p, m)
	t.M.CPU.R[isa.SP] = p.allocStack()

	ld, err := newLinker(k, p, env["LD_PRELOAD"])
	if err != nil {
		return nil, err
	}
	p.Linker = ld
	k.Procs[p.PID] = p

	// Run constructors (preload objects first, like ld.so).
	for _, obj := range ld.chain {
		if obj.Constructor != nil {
			obj.Constructor(k, t)
		}
	}
	return p, nil
}

func (p *Process) allocStack() uint64 {
	p.stackTop -= StackSize
	return p.stackTop + StackSize - 16
}

func (k *Kernel) addTask(p *Process, m *machine.Machine) *Task {
	if k.Obs != nil {
		m.Obs = &k.Obs.Machine
		m.Flops = &k.Obs.Flop
	}
	m.NoSuperblock = k.NoSuperblock
	t := &Task{TID: k.nextTID, Proc: p, M: m}
	k.nextTID++
	p.Tasks = append(p.Tasks, t)
	k.runq = append(k.runq, t)
	return t
}

// SpawnThread creates a new task in p starting at entry with arg in R1
// and a fresh stack. It mirrors clone(CLONE_VM|...).
func (k *Kernel) SpawnThread(p *Process, entry uint64, arg uint64) *Task {
	m := &machine.Machine{Prog: p.Prog, Mem: p.Mem}
	m.CPU.RIP = entry
	m.CPU.MXCSR = 0x1F80
	t := k.addTask(p, m)
	t.M.CPU.R[isa.R1] = arg
	t.M.CPU.R[isa.SP] = p.allocStack()
	return t
}

// Fork duplicates the calling task's process: memory is copied, the
// calling thread alone is replicated, and the child resumes at the same
// RIP with R1 = 0 while the parent sees the child pid.
func (k *Kernel) Fork(t *Task) *Process {
	parent := t.Proc
	child := &Process{
		PID:      k.nextPID,
		Env:      copyEnv(parent.Env),
		Handlers: make(map[Signal]*SigAction),
		Prog:     parent.Prog,
		Mem:      t.M.CloneMemory(),
		stackTop: parent.stackTop,
	}
	k.nextPID++
	// Dispositions are inherited across fork.
	for s, a := range parent.Handlers {
		dup := *a
		child.Handlers[s] = &dup
	}
	m := &machine.Machine{Prog: child.Prog, Mem: child.Mem}
	m.CPU = t.M.CPU // full register state, including MXCSR
	ct := k.addTask(child, m)
	ct.M.CPU.R[isa.R1] = 0
	t.M.CPU.R[isa.R1] = uint64(child.PID)
	// The child shares the parent's linker chain objects (same mapped
	// libraries), but state-bearing preload objects re-initialize via
	// their fork interposition, exactly as FPSpy does.
	child.Linker = parent.Linker.cloneFor(child)
	k.Procs[child.PID] = child
	return child
}

func copyEnv(env map[string]string) map[string]string {
	dup := make(map[string]string, len(env))
	for k, v := range env {
		dup[k] = v
	}
	return dup
}

// JoinTask blocks t until target exits. If the target has already
// terminated, t continues immediately.
func (k *Kernel) JoinTask(t *Task, targetTID int) {
	for _, tt := range t.Proc.Tasks {
		if tt.TID == targetTID {
			if tt.State == TaskExited || tt.State == TaskKilled {
				return
			}
			t.State = TaskBlocked
			k.joinWaiters[targetTID] = append(k.joinWaiters[targetTID], t)
			return
		}
	}
	// Unknown tid: no-op, as pthread_join with a bad id returns ESRCH.
}

// ExitTask terminates one task, running its exit hooks.
func (k *Kernel) ExitTask(t *Task, state TaskState) {
	if t.State != TaskRunnable && t.State != TaskBlocked {
		return
	}
	t.State = state
	for i := len(t.OnExit) - 1; i >= 0; i-- {
		t.OnExit[i](k, t)
	}
	// Wake joiners.
	for _, w := range k.joinWaiters[t.TID] {
		if w.State == TaskBlocked {
			w.State = TaskRunnable
		}
	}
	delete(k.joinWaiters, t.TID)
	live := 0
	for _, tt := range t.Proc.Tasks {
		if tt.State == TaskRunnable {
			live++
		}
	}
	if live == 0 && !t.Proc.Exited {
		k.exitProcess(t.Proc, 0)
	}
}

// ExitProcess terminates all tasks of a process.
func (k *Kernel) ExitProcess(p *Process, code int) {
	for _, t := range p.Tasks {
		if t.State == TaskRunnable {
			t.State = TaskExited
			for i := len(t.OnExit) - 1; i >= 0; i-- {
				t.OnExit[i](k, t)
			}
		}
	}
	k.exitProcess(p, code)
}

func (p *Process) String() string { return fmt.Sprintf("pid %d (%s)", p.PID, p.Prog.Name) }

func (k *Kernel) exitProcess(p *Process, code int) {
	if p.Exited {
		return
	}
	p.Exited = true
	p.ExitCode = code
	// Run destructors in reverse constructor order, on the initial task.
	if p.Linker != nil && len(p.Tasks) > 0 {
		t := p.Tasks[0]
		for i := len(p.Linker.chain) - 1; i >= 0; i-- {
			if d := p.Linker.chain[i].Destructor; d != nil {
				d(k, t)
			}
		}
	}
}

// quantum is the scheduler timeslice in instructions.
const quantum = 2000

// Run schedules all runnable tasks until everything exits or maxSteps
// total instructions have retired. It returns the number retired.
func (k *Kernel) Run(maxSteps uint64) uint64 {
	var total uint64
	for total < maxSteps {
		ran := false
		// Stable task order: snapshot the run queue (it can grow when
		// threads or processes are created mid-quantum). Chaos injection
		// may permute the snapshot and jitter the timeslice.
		queue := k.schedOrder(k.runq)
		var maxTaskCycles uint64
		var ranTasks uint64
		for _, t := range queue {
			if t.State != TaskRunnable || t.Proc.Exited {
				continue
			}
			ran = true
			ranTasks++
			before := t.UserCycles + t.SysCycles
			steps := k.runTask(t, k.schedQuantum())
			total += steps
			delta := t.UserCycles + t.SysCycles - before
			if delta > maxTaskCycles {
				maxTaskCycles = delta
			}
		}
		// Wall clock advances by the longest slice among the virtual
		// CPUs this round (tasks run in parallel on distinct cores).
		k.Cycles += maxTaskCycles
		if !ran {
			break
		}
		if k.Obs != nil {
			k.Obs.Kernel.SchedRounds.Inc()
			k.Obs.Kernel.SchedTasks.Observe(ranTasks)
		}
		k.gcRunq()
	}
	return total
}

func (k *Kernel) gcRunq() {
	live := k.runq[:0]
	for _, t := range k.runq {
		if (t.State == TaskRunnable || t.State == TaskBlocked) && !t.Proc.Exited {
			live = append(live, t)
		}
	}
	k.runq = live
}

// runTask executes up to n instructions on one task, handling events.
//
// Execution alternates between two bit-identical paths. The fast path
// retires straight runs of non-faulting, non-TF instructions in a single
// machine call (machine.RunStraight) and accounts their cycles and timer
// credit in bulk; fastBatch bounds each run so that no timer can expire
// inside it, and refuses to run at all when TF single-stepping is armed,
// a kill is pending, or the fast path is disabled. The precise path is
// the original step-at-a-time loop; every event — FP fault, trap,
// breakpoint, libc call, halt, machine fault — is accounted there, at
// the exact step it occurred.
func (k *Kernel) runTask(t *Task, n uint64) uint64 {
	var steps uint64
	for steps < n && t.State == TaskRunnable && !t.Proc.Exited {
		// Reserve one step of quantum for the event that ends the batch,
		// so a batch plus its eventful step never exceeds the budget.
		if batch := k.fastBatch(t, n-steps-1); batch > 0 {
			clean, ev := t.M.RunStraight(batch)
			if clean > 0 {
				steps += clean
				cycles := clean * k.Cost.Instruction
				t.UserCycles += cycles
				k.creditTimers(t, clean, cycles)
				if k.Obs != nil {
					k.Obs.Kernel.FastSteps.Add(clean)
					k.Obs.Kernel.FastBatch.Observe(clean)
				}
			}
			if ev == nil {
				continue
			}
			steps++
			k.completeStep(t, ev)
			continue
		}
		ev := t.M.Step()
		steps++
		k.completeStep(t, ev)
	}
	return steps
}

// completeStep applies the cycle accounting, event handling, timer
// ticking, and kill check for one executed machine step — the per-step
// tail shared by the precise path and the eventful step ending a batch.
func (k *Kernel) completeStep(t *Task, ev machine.Event) {
	before := t.UserCycles + t.SysCycles
	t.UserCycles += k.Cost.Instruction
	if k.Obs != nil {
		k.Obs.Kernel.PreciseSteps.Inc()
	}
	switch e := ev.(type) {
	case nil:
	case *machine.FPEvent:
		t.SysCycles += k.Cost.FPFault
		t.sigInfo = SigInfo{Signo: SIGFPE, Addr: e.Addr, Raised: e.Raised, Unmasked: e.Unmasked}
		k.deliverSignal(t, SIGFPE, &t.sigInfo)
	case *machine.TrapEvent:
		t.SysCycles += k.Cost.Trap
		t.sigInfo = SigInfo{Signo: SIGTRAP, Addr: e.Addr}
		k.deliverSignal(t, SIGTRAP, &t.sigInfo)
	case *machine.BreakpointEvent:
		t.SysCycles += k.Cost.Trap
		t.sigInfo = SigInfo{Signo: SIGILL, Addr: e.Addr}
		k.deliverSignal(t, SIGILL, &t.sigInfo)
	case *machine.CallCEvent:
		t.SysCycles += k.Cost.Syscall
		k.dispatchLibc(t, e.Sym)
	case *machine.HaltEvent:
		k.ExitTask(t, TaskExited)
	case *machine.FaultEvent:
		t.sigInfo = SigInfo{Signo: SIGSEGV, Addr: e.Addr, Reason: e.Reason}
		k.deliverSignal(t, SIGSEGV, &t.sigInfo)
	}
	if t.State == TaskRunnable && !t.Proc.Exited {
		k.tickTimers(t, t.UserCycles+t.SysCycles-before)
	}
	if len(t.pendingSigs) > 0 && t.State == TaskRunnable && !t.Proc.Exited {
		k.drainPending(t)
	}
	if t.pendingKill {
		t.pendingKill = false
		k.ExitTask(t, TaskKilled)
	}
}

// fastBatch returns how many instructions may retire on the fast path
// before something needs per-instruction precision: zero when the fast
// path is unavailable (TF armed, kill pending, disabled, no budget),
// otherwise the largest count guaranteed not to reach a timer expiry.
// Events other than timer expiry need no bound — they surface from
// RunStraight and terminate the batch on their own.
func (k *Kernel) fastBatch(t *Task, budget uint64) uint64 {
	if k.NoFastPath || budget == 0 || t.M.CPU.TF || t.pendingKill {
		return 0
	}
	// Delayed signals tick in instruction time on the precise path;
	// batching past a pending delivery point would skip it.
	if len(t.pendingSigs) > 0 {
		return 0
	}
	batch := budget
	if tm := &t.timers[TimerVirtual]; tm.armed {
		// The virtual timer fires on the tick where remaining <= 1, after
		// decrementing once per retired instruction.
		if tm.remaining <= 1 {
			return 0
		}
		if lim := tm.remaining - 1; lim < batch {
			batch = lim
		}
	}
	if tm := &t.timers[TimerReal]; tm.armed {
		// The real timer fires on the tick where remaining <= cycles; a
		// clean fast-path step always costs exactly Cost.Instruction.
		if c := k.Cost.Instruction; c > 0 {
			if tm.remaining <= c {
				return 0
			}
			if lim := (tm.remaining - 1) / c; lim < batch {
				batch = lim
			}
		}
	}
	return batch
}

// creditTimers advances both timers past a clean batch whose size
// fastBatch bounded, so neither can have expired inside it.
func (k *Kernel) creditTimers(t *Task, steps, cycles uint64) {
	if tm := &t.timers[TimerVirtual]; tm.armed {
		tm.remaining -= steps
	}
	if tm := &t.timers[TimerReal]; tm.armed {
		tm.remaining -= cycles
	}
}

// WallSeconds converts the global cycle clock to seconds at the given
// clock rate (Hz).
func (k *Kernel) WallSeconds(hz float64) float64 {
	return float64(k.Cycles) / hz
}

// ProcessTimes sums user and system cycles over a process's tasks.
func (p *Process) ProcessTimes() (user, sys uint64) {
	for _, t := range p.Tasks {
		user += t.UserCycles
		sys += t.SysCycles
	}
	return
}

// TaskIDs returns the process's task ids in creation order.
func (p *Process) TaskIDs() []int {
	ids := make([]int, len(p.Tasks))
	for i, t := range p.Tasks {
		ids[i] = t.TID
	}
	sort.Ints(ids)
	return ids
}
