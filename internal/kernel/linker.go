package kernel

import (
	"fmt"
	"strings"
)

// Symbol is the implementation of one libc function. Guest calling
// convention: arguments in r1..r6, result in r1.
type Symbol func(k *Kernel, t *Task)

// Object is a loaded shared object: a bag of symbols plus the
// constructor/destructor hooks the linker runs around main(), which is
// how FPSpy injects its initialization and teardown.
type Object struct {
	// Name is the object's identity (e.g. "libc.so", "fpspy.so").
	Name string
	// Syms maps symbol names to implementations.
	Syms map[string]Symbol
	// Constructor runs before main() on the initial task.
	Constructor func(*Kernel, *Task)
	// Destructor runs after the process's last task exits.
	Destructor func(*Kernel, *Task)
	// ForkChild runs in the child after fork when the object interposes
	// on fork (FPSpy re-initializes per-process state here).
	ForkChild func(k *Kernel, parent, child *Task)
}

// ObjectFactory instantiates a preload object for a process.
type ObjectFactory func(p *Process) *Object

// Linker is a process's dynamic linker state: the resolution chain with
// preload objects ahead of libc.
type Linker struct {
	chain     []*Object
	factories []namedFactory
	proc      *Process
}

type namedFactory struct {
	name string
	f    ObjectFactory
}

// newLinker builds the resolution chain for a process: every object named
// in the colon-separated ldPreload list (resolved via the kernel's
// registry), then libc.
func newLinker(k *Kernel, p *Process, ldPreload string) (*Linker, error) {
	l := &Linker{proc: p}
	if ldPreload != "" {
		for _, name := range strings.Split(ldPreload, ":") {
			f, ok := k.preloads[name]
			if !ok {
				return nil, fmt.Errorf("kernel: LD_PRELOAD object %q not registered", name)
			}
			l.chain = append(l.chain, f(p))
			l.factories = append(l.factories, namedFactory{name, f})
		}
	}
	l.chain = append(l.chain, libcObject(p))
	return l, nil
}

// cloneFor builds a child process's chain with fresh preload instances
// (per-process state) and a fresh libc bound to the child.
func (l *Linker) cloneFor(child *Process) *Linker {
	nl := &Linker{proc: child, factories: l.factories}
	for _, nf := range l.factories {
		nl.chain = append(nl.chain, nf.f(child))
	}
	nl.chain = append(nl.chain, libcObject(child))
	return nl
}

// Resolve finds the first definition of sym in the chain.
func (l *Linker) Resolve(sym string) (Symbol, *Object) {
	for _, obj := range l.chain {
		if s, ok := obj.Syms[sym]; ok {
			return s, obj
		}
	}
	return nil, nil
}

// ResolveAfter finds the next definition of sym after the named object —
// the dlsym(RTLD_NEXT, ...) FPSpy uses to call through to the real
// functions.
func (l *Linker) ResolveAfter(objName, sym string) Symbol {
	seen := false
	for _, obj := range l.chain {
		if obj.Name == objName {
			seen = true
			continue
		}
		if !seen {
			continue
		}
		if s, ok := obj.Syms[sym]; ok {
			return s
		}
	}
	return nil
}

// Objects lists the chain (preloads first).
func (l *Linker) Objects() []*Object { return l.chain }

// dispatchLibc routes a guest callc through the chain.
func (k *Kernel) dispatchLibc(t *Task, sym string) {
	s, _ := t.Proc.Linker.Resolve(sym)
	if s == nil {
		k.deliverSignal(t, SIGSEGV, &SigInfo{
			Signo: SIGSEGV, Reason: fmt.Sprintf("unresolved symbol %q", sym), Addr: t.M.CPU.RIP,
		})
		return
	}
	s(k, t)
}

// runForkHooks invokes ForkChild on the child's preload objects.
func (k *Kernel) runForkHooks(parent *Task, child *Process) {
	if len(child.Tasks) == 0 {
		return
	}
	ct := child.Tasks[0]
	for _, obj := range child.Linker.chain {
		if obj.ForkChild != nil {
			obj.ForkChild(k, parent, ct)
		}
	}
}
