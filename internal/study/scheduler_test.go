package study

import (
	"strings"
	"sync"
	"testing"

	fpspy "repro"
	"repro/internal/workload"
)

func TestWorkerPoolSizing(t *testing.T) {
	if NewWithWorkers(3).Workers() != 3 {
		t.Error("explicit worker count not honored")
	}
	if New().Workers() < 1 || NewWithWorkers(0).Workers() < 1 {
		t.Error("default worker count must be at least 1")
	}
}

func TestPassListCoversAllFigures(t *testing.T) {
	// Every pass the figures request must be in the prewarm list, or
	// All() silently falls back to on-demand (serial) execution for it.
	s := New()
	listed := make(map[passKey]bool)
	for _, k := range s.passList() {
		listed[k] = true
	}
	s.Prewarm()
	s.mu.Lock()
	cached := len(s.results)
	s.mu.Unlock()
	if _, err := s.All(); err != nil {
		t.Fatal(err)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.results) != cached {
		t.Errorf("figures ran %d passes the prewarm list missed", len(s.results)-cached)
	}
	for k := range s.results {
		if !listed[k] {
			t.Errorf("pass not in passList: %+v", k)
		}
	}
}

// TestSingleflightDedup pins that concurrent requests for the same pass
// execute it once and share the identical result pointer.
func TestSingleflightDedup(t *testing.T) {
	s := NewWithWorkers(4)
	const callers = 8
	results := make([]*fpspy.Result, callers)
	var wg sync.WaitGroup
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			r, err := s.run("miniaero", AggregateConfig(), false, workload.SizeSmall)
			if err != nil {
				t.Error(err)
				return
			}
			results[i] = r
		}(i)
	}
	wg.Wait()
	for i := 1; i < callers; i++ {
		if results[i] != results[0] {
			t.Fatalf("caller %d got a distinct result: pass ran more than once", i)
		}
	}
}

// TestParallelStudyMatchesSerial renders the full study once on a
// single worker and once on a pool, and requires byte-identical output.
// Every pass is a hermetic simulation with its own seeded sampler, so
// scheduling must not be observable. Run under -race in CI, this also
// shakes out data races in the scheduler and any shared workload state.
func TestParallelStudyMatchesSerial(t *testing.T) {
	if testing.Short() {
		t.Skip("full study in -short mode")
	}
	render := func(workers int) string {
		s := NewWithWorkers(workers)
		// The reduced size keeps two extra full studies affordable under
		// the race detector; determinism does not depend on size.
		s.Size = workload.SizeSmall
		tables, err := s.All()
		if err != nil {
			t.Fatal(err)
		}
		var sb strings.Builder
		for _, tbl := range tables {
			sb.WriteString(tbl.Render())
			sb.WriteString("\n")
		}
		return sb.String()
	}
	serial := render(1)
	parallel := render(8)
	if serial == parallel {
		return
	}
	sl, pl := strings.Split(serial, "\n"), strings.Split(parallel, "\n")
	for i := 0; i < len(sl) && i < len(pl); i++ {
		if sl[i] != pl[i] {
			t.Fatalf("parallel output diverged at line %d:\n serial   %q\n parallel %q", i+1, sl[i], pl[i])
		}
	}
	t.Fatalf("output length changed: %d vs %d lines", len(sl), len(pl))
}
