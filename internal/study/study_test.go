package study

import (
	"strings"
	"testing"
)

func TestTableRender(t *testing.T) {
	tbl := &Table{
		ID:     "Figure X",
		Title:  "Test",
		Header: []string{"A", "Blong"},
		Rows:   [][]string{{"aaaa", "b"}, {"c", "dddddd"}},
		Notes:  []string{"a note"},
	}
	out := tbl.Render()
	if !strings.Contains(out, "Figure X — Test") {
		t.Error("missing title")
	}
	if !strings.Contains(out, "note: a note") {
		t.Error("missing note")
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	// Title + header + 2 rows + note.
	if len(lines) != 5 {
		t.Errorf("lines = %d", len(lines))
	}
	// Columns aligned: all rows same prefix width.
	if len(lines[1]) < len("aaaa  b") {
		t.Error("misaligned")
	}
}

func TestMark(t *testing.T) {
	if mark(true) != "T" || mark(false) != "f" {
		t.Error("mark encoding")
	}
}

// TestFullStudyProducesAllArtifacts runs the entire Section 4
// methodology end-to-end — the integration test behind cmd/fpstudy and
// the benchmark harness.
func TestFullStudyProducesAllArtifacts(t *testing.T) {
	if testing.Short() {
		t.Skip("full study in -short mode")
	}
	s := New()
	tables, err := s.All()
	if err != nil {
		t.Fatal(err)
	}
	if len(tables) != 15 {
		t.Fatalf("artifacts = %d, want 15", len(tables))
	}
	wantIDs := []string{
		"Figure 6", "Figure 7", "Figure 8", "Figure 9", "Figure 10",
		"Figure 11", "Figure 12", "Figure 13", "Figure 14", "Figure 15",
		"Figure 16", "Figure 17", "Figure 18", "Figure 19", "Section 6",
	}
	for i, want := range wantIDs {
		if tables[i].ID != want {
			t.Errorf("artifact %d = %s, want %s", i, tables[i].ID, want)
		}
		if len(tables[i].Rows) == 0 {
			t.Errorf("%s has no rows", want)
		}
		if out := tables[i].Render(); len(out) < 40 {
			t.Errorf("%s renders to %d bytes", want, len(out))
		}
	}
	// The study is cached: regenerating a figure is cheap and identical.
	again, err := s.Figure9()
	if err != nil {
		t.Fatal(err)
	}
	if again.Render() != tables[3].Render() {
		t.Error("cached regeneration differs")
	}
}

func TestStudyConfigs(t *testing.T) {
	if AggregateConfig().Mode != 0 {
		t.Error("aggregate config mode")
	}
	f := FilteredConfig()
	if f.ExceptList&0x20 != 0 { // Inexact excluded
		t.Error("filtered config includes Inexact")
	}
	sc := SampledConfig()
	if !sc.Poisson || !sc.VirtualTimer || sc.SampleOnUS == 0 {
		t.Errorf("sampled config = %+v", sc)
	}
}
