package study

import (
	"fmt"
	"sort"
	"strings"

	fpspy "repro"
	"repro/internal/analysis"
	"repro/internal/binscan"
	"repro/internal/mitigate"
	"repro/internal/softfloat"
	"repro/internal/trace"
	"repro/internal/workload"
)

// ClockHz is the simulated clock rate (the paper's 2.1 GHz Opterons).
const ClockHz = 2.1e9

// Scaling: the paper's workloads run for minutes to hours; the simulated
// miniatures run for milliseconds of simulated time. The Poisson sampler
// settings are scaled by the same ~1000x (5000us:100000us becomes
// 5us:100us), preserving the ~5% coverage and the relationship between
// sampler period and program phase lengths.
const (
	sampleOnUS  = 5
	sampleOffUS = 100
)

// AggregateConfig is the aggregate-mode tracing pass.
func AggregateConfig() fpspy.Config {
	return fpspy.Config{Mode: fpspy.ModeAggregate}
}

// FilteredConfig is individual-mode tracing with filtering: every event
// except Inexact, full coverage.
func FilteredConfig() fpspy.Config {
	return fpspy.Config{
		Mode:       fpspy.ModeIndividual,
		ExceptList: fpspy.AllEvents &^ fpspy.FlagInexact,
	}
}

// SampledConfig is individual-mode tracing with ~5% Poisson sampling
// including Inexact, on the virtual timer.
func SampledConfig() fpspy.Config {
	return fpspy.Config{
		Mode:         fpspy.ModeIndividual,
		SampleOnUS:   sampleOnUS,
		SampleOffUS:  sampleOffUS,
		Poisson:      true,
		VirtualTimer: true,
	}
}

// eventNames orders the event columns as the paper's tables do.
var eventColumns = []struct {
	Name string
	Flag softfloat.Flags
}{
	{"DivideByZero", fpspy.FlagDivideByZero},
	{"Invalid", fpspy.FlagInvalid},
	{"Denorm", fpspy.FlagDenormal},
	{"Underflow", fpspy.FlagUnderflow},
	{"Overflow", fpspy.FlagOverflow},
	{"Inexact", fpspy.FlagInexact},
}

// appRows lists the application rows plus suite-union rows, in the
// paper's order.
func appRows() []string {
	return []string{"miniaero", "lammps", "laghos", "moose", "wrf", "enzo",
		"PARSEC 3.0", "NAS 3.0", "gromacs"}
}

// suiteUnion runs a whole suite under a config and ORs the event sets.
func (s *Study) suiteUnion(suite workload.Suite, cfg fpspy.Config, size workload.Size, events func(*fpspy.Result) (softfloat.Flags, error)) (softfloat.Flags, error) {
	var union softfloat.Flags
	for _, w := range workload.BySuite(suite) {
		res, err := s.run(w.Meta.Name, cfg, false, size)
		if err != nil {
			return 0, err
		}
		f, err := events(res)
		if err != nil {
			return 0, fmt.Errorf("%s: %w", w.Meta.Name, err)
		}
		union |= f
	}
	return union, nil
}

func aggregateEvents(res *fpspy.Result) (softfloat.Flags, error) {
	var f softfloat.Flags
	for _, a := range res.Aggregates() {
		f |= a.Flags
	}
	return f, nil
}

func recordEvents(res *fpspy.Result) (softfloat.Flags, error) {
	recs, err := res.Records()
	if err != nil {
		return 0, err
	}
	var f softfloat.Flags
	for _, rec := range recs {
		f |= rec.Event
	}
	return f, nil
}

// eventMatrix builds a Figure 9/11/14-style event matrix.
func (s *Study) eventMatrix(id, title string, cfg fpspy.Config, includeInexact bool, events func(*fpspy.Result) (softfloat.Flags, error)) (*Table, error) {
	cols := eventColumns
	if !includeInexact {
		cols = cols[:5]
	}
	t := &Table{ID: id, Title: title, Header: append([]string{"Code"}, func() []string {
		h := make([]string, len(cols))
		for i, c := range cols {
			h[i] = c.Name
		}
		return h
	}()...)}
	for _, row := range appRows() {
		var flags softfloat.Flags
		var err error
		switch row {
		case "PARSEC 3.0":
			flags, err = s.suiteUnion(workload.SuiteParsec, cfg, s.Size, events)
		case "NAS 3.0":
			flags, err = s.suiteUnion(workload.SuiteNAS, cfg, s.Size, events)
		default:
			var res *fpspy.Result
			res, err = s.run(row, cfg, false, s.Size)
			if err == nil {
				flags, err = events(res)
			}
		}
		if err != nil {
			return nil, err
		}
		cells := []string{row}
		for _, c := range cols {
			cells = append(cells, mark(flags&c.Flag != 0))
		}
		t.Rows = append(t.Rows, cells)
	}
	return t, nil
}

// Figure6 measures FPSpy's overhead on Miniaero across configurations.
func (s *Study) Figure6() (*Table, error) {
	type cfgRow struct {
		name  string
		cfg   fpspy.Config
		noSpy bool
	}
	sampler := func(on, off uint64) fpspy.Config {
		c := SampledConfig()
		c.SampleOnUS, c.SampleOffUS = on, off
		return c
	}
	rows := []cfgRow{
		{"Benchmark (No FPE)", fpspy.Config{}, true},
		{"Aggregate-mode tracing", AggregateConfig(), false},
		{"Individual-mode with filtering", FilteredConfig(), false},
		{"Individual-mode sampling 5:100", sampler(5, 100), false},
		{"Individual-mode sampling 10:100", sampler(10, 100), false},
		{"Individual-mode sampling 50:100", sampler(50, 100), false},
	}
	t := &Table{
		ID:     "Figure 6",
		Title:  "Overhead of FPSpy for Miniaero in various configurations",
		Header: []string{"Configuration", "Wall (ms)", "User (ms)", "System (ms)", "Slowdown"},
		Notes: []string{
			"times in simulated milliseconds at 2.1 GHz; the paper's sampler settings are scaled 1000x with the workloads",
		},
	}
	var baseWall float64
	for _, r := range rows {
		res, err := s.run("miniaero-calibrated", r.cfg, r.noSpy, s.Size)
		if err != nil {
			return nil, err
		}
		wall := float64(res.WallCycles) / ClockHz * 1e3
		user := float64(res.UserCycles) / ClockHz * 1e3
		sys := float64(res.SysCycles) / ClockHz * 1e3
		if r.noSpy {
			baseWall = wall
		}
		t.Rows = append(t.Rows, []string{
			r.name,
			fmt.Sprintf("%.3f", wall),
			fmt.Sprintf("%.3f", user),
			fmt.Sprintf("%.3f", sys),
			fmt.Sprintf("%.2fx", wall/baseWall),
		})
	}
	return t, nil
}

// Figure7 renders the application/benchmark inventory.
func (s *Study) Figure7() (*Table, error) {
	t := &Table{
		ID:     "Figure 7",
		Title:  "Applications and benchmarks in the study",
		Header: []string{"Name", "Dependencies", "Problem", "Paper exec time", "Languages", "LOC"},
	}
	add := func(m workload.Meta) {
		t.Rows = append(t.Rows, []string{
			m.Name, strings.Join(m.Deps, ","), m.Problem, m.ExecTime, m.Languages,
			fmt.Sprintf("%d", m.LOC),
		})
	}
	for _, w := range workload.Apps() {
		add(w.Meta)
	}
	t.Rows = append(t.Rows, []string{"PARSEC 3.0", "GSL,TBB", "Simlarge", "2m30.178s", "C/C++", "3500000"})
	t.Rows = append(t.Rows, []string{"NAS 3.0", "-", "Problem Size 1", "4m50.443s", "Fortran/C", "21000"})
	return t, nil
}

// figure8Symbols are the interposition-relevant mechanisms, in the
// paper's column order (libc call sites plus source macro references).
var figure8Symbols = []string{
	"fork", "clone", "pthread_create", "pthread_exit", "signal", "sigaction",
	"feenableexcept", "fedisableexcept", "fegetexcept", "feclearexcept",
	"fegetexceptflag", "feraiseexcept", "fesetexceptflag", "fetestexcept",
	"fegetround", "fesetround", "fegetenv", "feholdexcept", "fesetenv",
	"feupdateenv", "SIGTRAP", "SIGFPE",
}

// Figure8Cell renders one cell of the Figure 8 matrix from binscan's
// static view plus the source-macro references binscan cannot see: "T"
// when the mechanism is reachable in the binary (or is a source macro
// reference, where grep-level presence is all we have), "t" when it is
// present only in dead code — the distinction the paper's grep pass
// cannot make — and "f" when absent.
func Figure8Cell(present, reachable, sourceRef bool) string {
	switch {
	case reachable || sourceRef:
		return "T"
	case present:
		return "t"
	default:
		return "f"
	}
}

// Figure8 reproduces the static source analysis matrix, computed from
// the guest binaries by internal/binscan rather than from metadata.
func (s *Study) Figure8() (*Table, error) {
	t := &Table{
		ID:     "Figure 8",
		Title:  "Source code analysis: mechanisms referenced per code",
		Header: append([]string{"Code"}, figure8Symbols...),
		Notes: []string{
			"computed by binscan from guest binaries (callc sites + CFG reachability) plus source macro references",
			"T = reachable reference, t = present only in dead code (grep counts it; reachability analysis proves it dead), f = absent",
		},
	}
	rowFor := func(name string, present, reachable map[string]bool, refs []string) []string {
		refSet := map[string]bool{}
		for _, r := range refs {
			refSet[r] = true
		}
		cells := []string{name}
		for _, sym := range figure8Symbols {
			cells = append(cells, Figure8Cell(present[sym], reachable[sym], refSet[sym]))
		}
		return cells
	}
	for _, w := range workload.Apps() {
		scan := binscan.ScanProgram(w.Build(s.Size))
		t.Rows = append(t.Rows, rowFor(w.Meta.Name, scan.PresentLibc(), scan.ReachableLibc(), w.Meta.SourceRefs))
	}
	for _, suite := range []struct {
		name string
		s    workload.Suite
	}{{"PARSEC 3.0", workload.SuiteParsec}, {"NAS 3.0", workload.SuiteNAS}} {
		present := map[string]bool{}
		reachable := map[string]bool{}
		var refs []string
		for _, w := range workload.BySuite(suite.s) {
			scan := binscan.ScanProgram(w.Build(s.Size))
			for sym := range scan.PresentLibc() {
				present[sym] = true
			}
			for sym := range scan.ReachableLibc() {
				reachable[sym] = true
			}
			refs = append(refs, w.Meta.SourceRefs...)
		}
		t.Rows = append(t.Rows, rowFor(suite.name, present, reachable, refs))
	}
	return t, nil
}

// Figure9 is the aggregate-mode event matrix.
func (s *Study) Figure9() (*Table, error) {
	return s.eventMatrix("Figure 9", "Aggregate-mode tracing of applications",
		AggregateConfig(), true, aggregateEvents)
}

// Figure10 is the per-benchmark PARSEC matrix, at the problem size where
// fluidanimate's Overflow does not appear (the paper's Section 5.3 size
// note; the suite row of Figure 9 runs the larger size).
func (s *Study) Figure10() (*Table, error) {
	t := &Table{
		ID:    "Figure 10",
		Title: "Aggregate-mode tracing of PARSEC benchmarks",
		Header: append([]string{"Benchmark"}, func() []string {
			h := make([]string, len(eventColumns))
			for i, c := range eventColumns {
				h[i] = c.Name
			}
			return h
		}()...),
		Notes: []string{"run at the reduced problem size; fluidanimate overflows only at the larger one"},
	}
	for _, w := range workload.Parsec() {
		res, err := s.run(w.Meta.Name, AggregateConfig(), false, workload.SizeSmall)
		if err != nil {
			return nil, err
		}
		flags, err := aggregateEvents(res)
		if err != nil {
			return nil, err
		}
		cells := []string{w.Meta.Name}
		for _, c := range eventColumns {
			cells = append(cells, mark(flags&c.Flag != 0))
		}
		t.Rows = append(t.Rows, cells)
	}
	return t, nil
}

// Figure11 is the individual-mode-with-filtering matrix.
func (s *Study) Figure11() (*Table, error) {
	return s.eventMatrix("Figure 11", "Individual-mode tracing with filtering (Inexact excluded)",
		FilteredConfig(), false, recordEvents)
}

// rateTable renders a rate time series with a proportional bar column,
// the terminal rendition of the paper's scatter plots.
func rateTable(id, title string, pts []analysis.RatePoint) *Table {
	t := &Table{
		ID: id, Title: title,
		Header: []string{"Time (ms)", "Events/s", ""},
	}
	var peak float64
	for _, p := range pts {
		if p.EventsPerSec > peak {
			peak = p.EventsPerSec
		}
	}
	for _, p := range pts {
		bar := ""
		if peak > 0 {
			bar = strings.Repeat("#", int(p.EventsPerSec/peak*40+0.5))
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%.2f", p.TimeSec*1e3),
			fmt.Sprintf("%.0f", p.EventsPerSec),
			bar,
		})
	}
	return t
}

// Figure12 is the rate of Invalid events over time in ENZO.
func (s *Study) Figure12() (*Table, error) {
	res, err := s.run("enzo", FilteredConfig(), false, s.Size)
	if err != nil {
		return nil, err
	}
	all, err := res.Records()
	if err != nil {
		return nil, fmt.Errorf("enzo: %w", err)
	}
	recs := analysis.FilterEvent(all, fpspy.FlagInvalid)
	pts := analysis.RateSeries(recs, 50e-6, ClockHz) // 50us bins
	return rateTable("Figure 12", "Rate of Invalid events over time in ENZO (rising with refinement)", pts), nil
}

// Figure13 is the burst structure of DivideByZero events in LAGHOS.
func (s *Study) Figure13() (*Table, error) {
	res, err := s.run("laghos", FilteredConfig(), false, s.Size)
	if err != nil {
		return nil, err
	}
	all, err := res.Records()
	if err != nil {
		return nil, fmt.Errorf("laghos: %w", err)
	}
	recs := analysis.FilterEvent(all, fpspy.FlagDivideByZero)
	pts := analysis.RateSeries(recs, 10e-6, ClockHz) // 10us bins show the bursts
	return rateTable("Figure 13", "Bursts of DivideByZero events in LAGHOS", pts), nil
}

// Figure14 is the individual-mode-with-sampling matrix (~5% Poisson,
// Inexact included).
func (s *Study) Figure14() (*Table, error) {
	t, err := s.eventMatrix("Figure 14", "Individual-mode tracing with ~5% Poisson sampling (Inexact included)",
		SampledConfig(), true, recordEvents)
	if err != nil {
		return nil, err
	}
	t.Notes = append(t.Notes,
		"sampling misses rare one-shot events (Miniaero/GROMACS denormal-underflow windows, overflows), as in the paper",
		"WRF shows rounding here though aggregate mode shows nothing: events are captured as they arise, before WRF's fesetenv makes FPSpy step aside")
	return t, nil
}

// Figure15 reports Inexact counts and rates per application from the
// sampled traces.
func (s *Study) Figure15() (*Table, error) {
	t := &Table{
		ID:     "Figure 15",
		Title:  "Inexact event count and rate per application (sampled pass)",
		Header: []string{"Name", "Inexact events", "Inexact events/s"},
	}
	for _, w := range workload.Apps() {
		res, err := s.run(w.Meta.Name, SampledConfig(), false, s.Size)
		if err != nil {
			return nil, err
		}
		base, err := s.run(w.Meta.Name, fpspy.Config{}, true, s.Size)
		if err != nil {
			return nil, err
		}
		all, err := res.Records()
		if err != nil {
			return nil, fmt.Errorf("%s: %w", w.Meta.Name, err)
		}
		recs := analysis.FilterEvent(all, fpspy.FlagInexact)
		// Rate relative to the application's unencumbered duration, as
		// the paper's count/runtime pairs imply.
		wallSec := float64(base.WallCycles) / ClockHz
		rate := 0.0
		if wallSec > 0 {
			rate = float64(len(recs)) / wallSec
		}
		t.Rows = append(t.Rows, []string{
			w.Meta.Name,
			fmt.Sprintf("%d", len(recs)),
			fmt.Sprintf("%.0f", rate),
		})
	}
	return t, nil
}

// Figure16 reports cumulative Inexact counts over time per application.
func (s *Study) Figure16() (*Table, error) {
	t := &Table{
		ID:     "Figure 16",
		Title:  "Cumulative Inexact events over execution (sampled pass)",
		Header: []string{"Name", "25% time", "50% time", "75% time", "end"},
		Notes:  []string{"cumulative counts at quartiles of each run's duration"},
	}
	for _, w := range workload.Apps() {
		res, err := s.run(w.Meta.Name, SampledConfig(), false, s.Size)
		if err != nil {
			return nil, err
		}
		all, err := res.Records()
		if err != nil {
			return nil, fmt.Errorf("%s: %w", w.Meta.Name, err)
		}
		recs := analysis.FilterEvent(all, fpspy.FlagInexact)
		pts := analysis.Cumulative(recs, ClockHz)
		end := float64(res.WallCycles) / ClockHz
		at := func(frac float64) uint64 {
			var c uint64
			for _, p := range pts {
				if p.TimeSec <= end*frac {
					c = p.Count
				}
			}
			return c
		}
		t.Rows = append(t.Rows, []string{
			w.Meta.Name,
			fmt.Sprintf("%d", at(0.25)),
			fmt.Sprintf("%d", at(0.5)),
			fmt.Sprintf("%d", at(0.75)),
			fmt.Sprintf("%d", len(recs)),
		})
	}
	return t, nil
}

// codeRecords gathers, per code, the union of filtered-pass and
// sampled-pass records — the paper's 2 TB corpus, miniaturized. Suites
// contribute each benchmark separately.
func (s *Study) codeRecords() (map[string][]trace.Record, error) {
	out := make(map[string][]trace.Record)
	var names []string
	for _, w := range workload.Apps() {
		names = append(names, w.Meta.Name)
	}
	for _, w := range workload.Parsec() {
		names = append(names, w.Meta.Name)
	}
	for _, w := range workload.NAS() {
		names = append(names, w.Meta.Name)
	}
	for _, name := range names {
		var recs []trace.Record
		for _, cfg := range []fpspy.Config{FilteredConfig(), SampledConfig()} {
			res, err := s.run(name, cfg, false, s.Size)
			if err != nil {
				return nil, err
			}
			rs, err := res.Records()
			if err != nil {
				return nil, fmt.Errorf("%s: %w", name, err)
			}
			recs = append(recs, rs...)
		}
		out[name] = recs
	}
	return out, nil
}

// isApp reports whether a code name is one of the seven applications.
func isApp(name string) bool {
	for _, w := range workload.Apps() {
		if w.Meta.Name == name {
			return true
		}
	}
	return false
}

// Figure17 is the rank-popularity of instruction forms per code.
func (s *Study) Figure17() (*Table, error) {
	byCode, err := s.codeRecords()
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:     "Figure 17",
		Title:  "Rank-popularity of captured instruction forms",
		Header: []string{"Code", "Class", "Forms", "Top form", "Forms for 99%"},
	}
	names := sortedKeys(byCode)
	for _, name := range names {
		recs := byCode[name]
		if len(recs) == 0 {
			continue
		}
		ranks := analysis.RankByForm(recs)
		class := "benchmark"
		if isApp(name) {
			class = "application"
		}
		t.Rows = append(t.Rows, []string{
			name, class,
			fmt.Sprintf("%d", len(ranks)),
			ranks[0].Key,
			fmt.Sprintf("%d", analysis.CoverageCount(ranks, 0.99)),
		})
	}
	return t, nil
}

// Figure18 is the cross-code instruction-form histogram with the
// GROMACS-only tail.
func (s *Study) Figure18() (*Table, error) {
	byCode, err := s.codeRecords()
	if err != nil {
		return nil, err
	}
	usage := analysis.FormsAcrossCodes(byCode)
	t := &Table{
		ID:     "Figure 18",
		Title:  "Instruction forms by number of codes showing them",
		Header: []string{"Form", "Codes"},
	}
	forms := make([]string, 0, len(usage.CodesByForm))
	for f := range usage.CodesByForm {
		forms = append(forms, f)
	}
	sort.Slice(forms, func(i, j int) bool {
		ci, cj := len(usage.CodesByForm[forms[i]]), len(usage.CodesByForm[forms[j]])
		if ci != cj {
			return ci > cj
		}
		return forms[i] < forms[j]
	})
	for _, f := range forms {
		t.Rows = append(t.Rows, []string{f, fmt.Sprintf("%d", len(usage.CodesByForm[f]))})
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("GROMACS-only forms (%d): %s", len(usage.UniqueTo["gromacs"]),
			strings.Join(usage.UniqueTo["gromacs"], " ")))
	return t, nil
}

// Figure19 is the rank-popularity of faulting instruction addresses.
func (s *Study) Figure19() (*Table, error) {
	byCode, err := s.codeRecords()
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:     "Figure 19",
		Title:  "Rank-popularity of captured instruction addresses",
		Header: []string{"Code", "Sites", "Sites for 99%", "Top site share"},
	}
	for _, name := range sortedKeys(byCode) {
		recs := byCode[name]
		if len(recs) == 0 {
			continue
		}
		ranks := analysis.RankByAddress(recs)
		total := analysis.TotalEvents(ranks)
		t.Rows = append(t.Rows, []string{
			name,
			fmt.Sprintf("%d", len(ranks)),
			fmt.Sprintf("%d", analysis.CoverageCount(ranks, 0.99)),
			fmt.Sprintf("%.1f%%", 100*float64(ranks[0].Count)/float64(total)),
		})
	}
	return t, nil
}

// Section6 evaluates the rounding-mitigation feasibility over the
// applications' measured locality.
func (s *Study) Section6() (*Table, error) {
	t := &Table{
		ID:     "Section 6",
		Title:  "Trap-and-emulate rounding mitigation feasibility",
		Header: []string{"Name", "Sites", "Sites99", "Forms", "Forms99", "Patch cyc/event", "Trap cyc/event", "Patch wins"},
		Notes: []string{
			"cost model: 50k cycles to patch a site, 150 cycles per emulated event, 4k cycles per trap-and-emulate event",
		},
	}
	for _, w := range workload.Apps() {
		var recs []trace.Record
		for _, cfg := range []fpspy.Config{FilteredConfig(), SampledConfig()} {
			res, err := s.run(w.Meta.Name, cfg, false, s.Size)
			if err != nil {
				return nil, err
			}
			rs, err := res.Records()
			if err != nil {
				return nil, fmt.Errorf("%s: %w", w.Meta.Name, err)
			}
			recs = append(recs, rs...)
		}
		if len(recs) == 0 {
			continue
		}
		rep := mitigate.Feasibility(
			analysis.RankByAddress(recs), analysis.RankByForm(recs),
			50_000, 150, 4_000)
		t.Rows = append(t.Rows, []string{
			w.Meta.Name,
			fmt.Sprintf("%d", rep.Sites),
			fmt.Sprintf("%d", rep.Sites99),
			fmt.Sprintf("%d", rep.Forms),
			fmt.Sprintf("%d", rep.Forms99),
			fmt.Sprintf("%.0f", rep.PatchCyclesPerEvent),
			fmt.Sprintf("%.0f", rep.TrapCyclesPerEvent),
			fmt.Sprintf("%v", rep.PatchWins),
		})
	}
	return t, nil
}

func sortedKeys(m map[string][]trace.Record) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// All generates every figure and table in order. The passes behind them
// run first, deduplicated, on the study's worker pool; the figures then
// assemble serially from the warm cache.
func (s *Study) All() ([]*Table, error) {
	s.Prewarm()
	gens := []func() (*Table, error){
		s.Figure6, s.Figure7, s.Figure8, s.Figure9, s.Figure10, s.Figure11,
		s.Figure12, s.Figure13, s.Figure14, s.Figure15, s.Figure16,
		s.Figure17, s.Figure18, s.Figure19, s.Section6,
	}
	var out []*Table
	for _, g := range gens {
		t, err := g()
		if err != nil {
			return nil, err
		}
		out = append(out, t)
	}
	return out, nil
}
