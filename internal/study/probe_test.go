package study_test

import (
	"bytes"
	"encoding/json"
	"reflect"
	"strings"
	"testing"

	"repro/internal/analysis"
	"repro/internal/study"
	"repro/internal/trace"
	"repro/internal/workload"
)

// soakSeeds is the satellite's seed sweep: 0..7.
var soakSeeds = []int64{0, 1, 2, 3, 4, 5, 6, 7}

// TestProbeCrossScheduleSoak is the reproducibility conformance suite:
// every engine configuration × inject scenario × seed, for every probe
// kernel, asserting the recovered fingerprint matches the documented
// tree (or, for the negative control, provably does not) and that all
// cells of a kernel agree with each other. Under -race the parallel
// subtests also stress the engines' concurrency. Short mode trims the
// matrix to one kernel per engine configuration (rotating so all
// kernels stay covered) with the full storm-schedule seed sweep, which
// keeps the CI repro-smoke job under a minute.
func TestProbeCrossScheduleSoak(t *testing.T) {
	engines := study.ProbeEngines()
	kinds := workload.ProbeKinds()
	var cells []study.ProbeCell
	if testing.Short() {
		for i, eng := range engines {
			spec := workload.DefaultProbeSpec(kinds[i%len(kinds)], workload.SizeSmall)
			spec.Companion = true
			storm := study.ProbeSchedules()[3]
			for _, seed := range soakSeeds {
				cells = append(cells, study.ProbeCell{Spec: spec, Engine: eng, Sched: storm, Seed: seed})
			}
		}
		// Short mode must still exercise the negative control even when
		// the engine rotation misses it.
		broken := workload.DefaultProbeSpec(workload.ProbeBrokenReassoc, workload.SizeSmall)
		cells = append(cells, study.ProbeCell{Spec: broken, Engine: engines[0], Sched: study.ProbeSchedules()[0]})
	} else {
		for _, kind := range kinds {
			spec := workload.DefaultProbeSpec(kind, workload.SizeSmall)
			spec.Companion = true
			for _, eng := range engines {
				for _, sched := range study.ProbeSchedules()[1:] {
					for _, seed := range soakSeeds {
						cells = append(cells, study.ProbeCell{Spec: spec, Engine: eng, Sched: sched, Seed: seed})
					}
				}
				base := spec
				base.Companion = false
				cells = append(cells, study.ProbeCell{Spec: base, Engine: eng, Sched: study.ProbeSchedules()[0]})
			}
		}
	}

	results := make([]study.ProbeCellResult, len(cells))
	for i := range cells {
		i := i
		cell := cells[i]
		t.Run(cellName(cell), func(t *testing.T) {
			t.Parallel()
			res := study.RunProbeCell(cell)
			results[i] = res
			if res.Err != "" {
				t.Fatalf("cell error: %s", res.Err)
			}
			if !res.Pass {
				if res.Negative {
					t.Fatalf("negative control not detected: recovered %s == expected %s", res.Fingerprint, res.Expected)
				}
				t.Fatalf("fingerprint changed: recovered %s (%s), expected %s", res.Fingerprint, res.Canonical, res.Expected)
			}
		})
	}

	t.Cleanup(func() {
		report := study.AssembleProbeReport(results)
		if len(report.Inconsistent) > 0 {
			t.Errorf("kernels recovered multiple distinct trees across cells: %v", report.Inconsistent)
		}
	})
}

func cellName(c study.ProbeCell) string {
	var sb strings.Builder
	sb.WriteString(string(c.Spec.Kind))
	sb.WriteString("/")
	sb.WriteString(c.Engine.Name)
	sb.WriteString("/")
	sb.WriteString(c.Sched.Name)
	if c.Sched.Name != "baseline" {
		sb.WriteString("/seed=")
		sb.WriteByte(byte('0' + c.Seed))
	}
	return sb.String()
}

// TestProbeMatrixWorkerCountInvariant runs the same cell list through a
// serial study and a 4-worker study and requires byte-identical report
// JSON — the study-parallelism axis of the matrix.
func TestProbeMatrixWorkerCountInvariant(t *testing.T) {
	seeds := soakSeeds
	if testing.Short() {
		seeds = seeds[:2]
	}
	var cells []study.ProbeCell
	storm := study.ProbeSchedules()[3]
	for i, eng := range study.ProbeEngines() {
		kinds := workload.ProbeKinds()
		spec := workload.DefaultProbeSpec(kinds[(i+3)%len(kinds)], workload.SizeSmall)
		spec.Companion = true
		for _, seed := range seeds {
			cells = append(cells, study.ProbeCell{Spec: spec, Engine: eng, Sched: storm, Seed: seed})
		}
	}
	render := func(workers int) []byte {
		t.Helper()
		s := study.NewWithWorkers(workers)
		var buf bytes.Buffer
		if err := s.ProbeMatrix(cells).WriteJSON(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	serial, parallel := render(1), render(4)
	if !bytes.Equal(serial, parallel) {
		t.Fatalf("probe report differs between 1 and 4 workers:\nserial:   %s\nparallel: %s", serial, parallel)
	}
	var report study.ProbeReport
	if err := json.Unmarshal(serial, &report); err != nil {
		t.Fatal(err)
	}
	if report.Failures != 0 {
		t.Fatalf("matrix reported %d failures: %s", report.Failures, serial)
	}
}

// TestDefaultProbeCellsShape pins the matrix enumeration: every kind ×
// every engine × (1 baseline + 3 perturbed × seeds) cells.
func TestDefaultProbeCellsShape(t *testing.T) {
	seeds := []int64{0, 1}
	cells := study.DefaultProbeCells(workload.SizeSmall, seeds)
	kinds, engines := len(workload.ProbeKinds()), len(study.ProbeEngines())
	want := kinds * engines * (1 + 3*len(seeds))
	if len(cells) != want {
		t.Fatalf("matrix has %d cells, want %d", len(cells), want)
	}
	if engines != 8 {
		t.Fatalf("engine matrix has %d configurations, want 8", engines)
	}
	names := map[string]bool{}
	for _, e := range study.ProbeEngines() {
		names[e.Name] = true
	}
	for _, wantName := range []string{"fast+prune+sb", "fast+prune", "fast+sb", "fast", "precise+prune+sb", "precise+prune", "precise+sb", "precise"} {
		if !names[wantName] {
			t.Fatalf("engine matrix missing %q (have %v)", wantName, names)
		}
	}
}

// TestWriteProbeTraceRoundTrips checks the .fpemon export path: the
// bytes WriteProbeTrace emits decode as standard trace records, and the
// tree recovered from them carries the returned fingerprint.
func TestWriteProbeTraceRoundTrips(t *testing.T) {
	spec := workload.DefaultProbeSpec(workload.ProbeBlocked, workload.SizeSmall)
	var buf bytes.Buffer
	fp, err := study.WriteProbeTrace(spec, &buf)
	if err != nil {
		t.Fatal(err)
	}
	recs, err := trace.Decode(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	tree, err := analysis.RecoverProbeTree(recs)
	if err != nil {
		t.Fatal(err)
	}
	if tree.Fingerprint() != fp {
		t.Fatalf("re-decoded fingerprint %s, want %s", tree.Fingerprint(), fp)
	}
	probe, err := workload.BuildProbe(spec)
	if err != nil {
		t.Fatal(err)
	}
	if fp != probe.Expected.Fingerprint() {
		t.Fatalf("fingerprint %s, expected %s", fp, probe.Expected.Fingerprint())
	}
	if !reflect.DeepEqual(tree, probe.Expected) {
		t.Fatalf("recovered tree %s, expected %s", tree.Canonical(), probe.Expected.Canonical())
	}
}
