package study_test

// The workload-corpus leg of the shadow transparency criterion (the
// chaos-family leg lives in internal/chaos): every corpus app run with
// the shadow channel attached must produce bit-identical guest-visible
// outcomes — retirement counts, exit codes, memory, trace records,
// monitor logs — to the same run without it. Plus the ShadowMatrix
// surface itself: cells produce ranked site tables and the negative
// precision-53 control reports zero divergence.

import (
	"fmt"
	"hash/fnv"
	"testing"

	fpspy "repro"
	"repro/internal/study"
	"repro/internal/workload"
)

// runOutcome is everything a guest or monitor-log consumer could
// observe from one run.
type runOutcome struct {
	steps    uint64
	exit     int
	memSum   uint64
	records  int
	recSum   uint64
	monLog   string
	traceErr bool
}

func outcomeOf(t *testing.T, name string, prec uint64) runOutcome {
	t.Helper()
	w, err := workload.ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	res, err := fpspy.Run(w.Build(workload.SizeSmall), fpspy.Options{
		Config: fpspy.Config{Mode: fpspy.ModeIndividual, ShadowPrec: prec},
	})
	if err != nil {
		t.Fatalf("%s prec %d: %v", name, prec, err)
	}
	out := runOutcome{
		steps:    res.Steps,
		exit:     res.ExitCode,
		monLog:   res.Store.MonitorLog(),
		traceErr: res.TraceErr != nil,
	}
	h := fnv.New64a()
	h.Write(res.Proc.Mem)
	out.memSum = h.Sum64()
	recs, err := res.Store.AllRecords()
	if err != nil {
		t.Fatalf("%s prec %d: records: %v", name, prec, err)
	}
	out.records = len(recs)
	rh := fnv.New64a()
	for i := range recs {
		fmt.Fprintf(rh, "%+v;", recs[i])
	}
	out.recSum = rh.Sum64()
	return out
}

func TestShadowCorpusDifferential(t *testing.T) {
	for _, w := range workload.Apps() {
		w := w
		t.Run(w.Meta.Name, func(t *testing.T) {
			t.Parallel()
			off := outcomeOf(t, w.Meta.Name, 0)
			on := outcomeOf(t, w.Meta.Name, 113)
			if off != on {
				t.Fatalf("shadow channel changed observable state:\noff: %+v\non:  %+v", off, on)
			}
		})
	}
}

// TestShadowMatrixCells: the -shadow study surface produces a ranked
// table per corpus cell, and the prec-53 leg — bit-exact to the
// hardware by the conformance suite — reports zero divergence.
func TestShadowMatrixCells(t *testing.T) {
	s := study.New()
	r := s.ShadowMatrix([]study.ShadowCell{
		{Workload: "nas-cg", Prec: 113},
		{Workload: "nas-cg", Prec: 53},
	})
	if r.Failures != 0 {
		t.Fatalf("%d cell failures", r.Failures)
	}
	if len(r.Cells) != 2 {
		t.Fatalf("cells = %d", len(r.Cells))
	}
	c113, c53 := r.Cells[0], r.Cells[1]
	if c113.Sites == 0 || c113.Ops == 0 || c113.LocalUlps <= 0 {
		t.Fatalf("prec-113 cell empty: %+v", c113)
	}
	if c113.TopOp == "" || c113.TopLocalUlps <= 0 {
		t.Fatalf("prec-113 cell has no top site: %+v", c113)
	}
	if len(c113.TopSites) != c113.Sites {
		t.Fatalf("ranked table carries %d sites, summary says %d", len(c113.TopSites), c113.Sites)
	}
	for i := 1; i < len(c113.TopSites); i++ {
		if c113.TopSites[i].LocalUlps > c113.TopSites[i-1].LocalUlps {
			t.Fatalf("table not ranked at %d: %+v", i, c113.TopSites)
		}
	}
	if c53.MaxUlps != 0 {
		t.Fatalf("prec-53 shadow diverged %d ulps from hardware; conformance broken", c53.MaxUlps)
	}
	if c53.Ops == 0 {
		t.Fatal("prec-53 cell shadow-executed nothing")
	}
}
