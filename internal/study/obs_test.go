package study

import (
	"bytes"
	"errors"
	"io"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	fpspy "repro"
	"repro/internal/kernel"
	"repro/internal/obs"
	"repro/internal/workload"
)

// TestGoldenStudyOutputUnderObs is the study-level transparency
// contract: attaching a shared observability registry to every pass must
// leave the rendered study byte-identical to the golden file produced
// without instrumentation. Instruments observe the simulation; they
// never feed back into it.
func TestGoldenStudyOutputUnderObs(t *testing.T) {
	if testing.Short() {
		t.Skip("full study in -short mode")
	}
	s := New()
	om := obs.New(obs.Options{TraceCapacity: 1 << 20})
	s.Obs = om
	tables, err := s.All()
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	for _, tbl := range tables {
		sb.WriteString(tbl.Render())
		sb.WriteString("\n")
	}
	got := sb.String()

	want, err := os.ReadFile(filepath.Join("testdata", "study.golden"))
	if err != nil {
		t.Fatalf("golden file missing (run TestGoldenStudyOutput with -update): %v", err)
	}
	if got != string(want) {
		gl, wl := strings.Split(got, "\n"), strings.Split(string(want), "\n")
		for i := 0; i < len(gl) && i < len(wl); i++ {
			if gl[i] != wl[i] {
				t.Fatalf("instrumented study diverged from golden at line %d:\n got  %q\n want %q", i+1, gl[i], wl[i])
			}
		}
		t.Fatalf("instrumented study length changed: %d vs %d lines", len(gl), len(wl))
	}
	if om.Snapshot().Counters[obs.NameStudyPassesExecuted] == 0 {
		t.Fatal("registry observed no passes; transparency test proved nothing")
	}
}

// TestObsReconciliation is the end-to-end accounting contract: after a
// set of instrumented passes, the snapshot's trap and pass counters must
// reconcile exactly with the aggregate of the emitted trace records —
// with the trace going through its JSON wire format, as `fpstudy
// -metrics -traceout` ships it.
func TestObsReconciliation(t *testing.T) {
	s := NewWithWorkers(4)
	s.Size = workload.SizeSmall
	om := obs.New(obs.Options{TraceCapacity: 1 << 19})
	s.Obs = om

	apps := workload.Apps()
	if len(apps) < 3 {
		t.Fatalf("need at least 3 app workloads, have %d", len(apps))
	}
	var passes []passKey
	for _, w := range apps[:3] {
		passes = append(passes,
			passKey{name: w.Meta.Name, cfg: AggregateConfig(), size: s.Size},
			passKey{name: w.Meta.Name, cfg: FilteredConfig(), size: s.Size},
		)
	}
	passes = append(passes, passKey{name: apps[0].Meta.Name, noSpy: true, size: s.Size})

	var storeFaults uint64
	for _, k := range passes {
		res, err := s.run(k.name, k.cfg, k.noSpy, k.size)
		if err != nil {
			t.Fatalf("%s: %v", k.name, err)
		}
		storeFaults += res.Store.Faults
	}

	if d := om.Tracer.Dropped(); d != 0 {
		t.Fatalf("tracer dropped %d events; reconciliation needs the full stream", d)
	}
	var buf bytes.Buffer
	if err := om.Tracer.ExportJSON(&buf); err != nil {
		t.Fatal(err)
	}
	evs, err := obs.ParseTraceJSON(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	var passSpans, twoTrapSpans uint64
	for _, ev := range evs {
		switch {
		case ev.Cat == "study" && ev.Phase == obs.PhaseComplete:
			passSpans++
		case ev.Cat == "fpspy" && ev.Name == "two-trap":
			twoTrapSpans++
		}
	}

	snap := om.Snapshot()
	executed := snap.Counters[obs.NameStudyPassesExecuted]
	if want := uint64(len(passes)); executed != want {
		t.Errorf("passes executed %d, want %d", executed, want)
	}
	if req := snap.Counters[obs.NameStudyPassRequests]; req != executed {
		t.Errorf("pass requests %d != executed %d (no duplicates were issued)", req, executed)
	}
	if passSpans != executed {
		t.Errorf("study spans in trace %d, executed counter %d", passSpans, executed)
	}
	faults := snap.Counters[obs.NameSpyFaults]
	if faults == 0 {
		t.Fatal("no FP faults observed; reconciliation proved nothing")
	}
	if twoTrapSpans != faults {
		t.Errorf("two-trap spans in trace %d, spy.faults counter %d", twoTrapSpans, faults)
	}
	if faults != storeFaults {
		t.Errorf("spy.faults counter %d, sum of per-pass store faults %d", faults, storeFaults)
	}
	if sigfpe := snap.Counters[obs.KernelSignalCounterName(int(kernel.SIGFPE))]; sigfpe != faults {
		t.Errorf("kernel SIGFPE deliveries %d, spy.faults %d", sigfpe, faults)
	}
	if h, ok := snap.Histograms["study.pass.host-ns"]; ok && h.Count != executed {
		t.Errorf("pass host-time histogram count %d, executed %d", h.Count, executed)
	}
	if busy := snap.Gauges["study.workers-busy"]; busy != 0 {
		t.Errorf("workers-busy gauge %d after all passes finished", busy)
	}
}

// TestObsStudyRace hammers one shared registry from the parallel worker
// pool while snapshots and trace exports are taken concurrently. Run
// under -race (the CI race job does), this pins the registry's
// thread-safety contract.
func TestObsStudyRace(t *testing.T) {
	s := NewWithWorkers(8)
	s.Size = workload.SizeSmall
	om := obs.New(obs.Options{TraceCapacity: 1 << 16})
	s.Obs = om

	done := make(chan struct{})
	var readers sync.WaitGroup
	for i := 0; i < 2; i++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			for {
				select {
				case <-done:
					return
				default:
					snap := om.Snapshot()
					_ = snap.Counters[obs.NameSpyFaults]
					_ = om.Tracer.Events()
					_ = om.Tracer.ExportJSON(io.Discard)
				}
			}
		}()
	}

	var wg sync.WaitGroup
	for _, w := range workload.Apps() {
		for _, cfg := range []fpspy.Config{AggregateConfig(), FilteredConfig()} {
			wg.Add(1)
			go func(name string, cfg fpspy.Config) {
				defer wg.Done()
				if _, err := s.run(name, cfg, false, s.Size); err != nil {
					t.Errorf("%s: %v", name, err)
				}
			}(w.Meta.Name, cfg)
		}
	}
	wg.Wait()
	close(done)
	readers.Wait()
}

// TestPassErrorPropagatesFromCache is the regression test for figures
// silently assembling from a failed pass: an error cached in the pass
// map must resurface from every figure that needs that pass.
func TestPassErrorPropagatesFromCache(t *testing.T) {
	boom := errors.New("simulated pass failure")
	poison := func(s *Study, key passKey) {
		e := s.entry(key)
		e.once.Do(func() { e.err = boom })
	}

	s := New()
	poison(s, passKey{name: "miniaero-calibrated", cfg: AggregateConfig(), size: s.Size})
	if _, err := s.Figure6(); !errors.Is(err, boom) {
		t.Errorf("Figure6 with a poisoned pass: err = %v, want the cached pass error", err)
	}

	s = New()
	app := workload.Apps()[0].Meta.Name
	poison(s, passKey{name: app, cfg: AggregateConfig(), size: s.Size})
	if _, err := s.Figure9(); !errors.Is(err, boom) {
		t.Errorf("Figure9 with a poisoned %s pass: err = %v, want the cached pass error", app, err)
	}
	if _, err := s.All(); !errors.Is(err, boom) {
		t.Errorf("All with a poisoned pass: err = %v, want the cached pass error", err)
	}
}

// failingSink models a trace file on a full disk: every write errors.
type failingSink struct{}

func (failingSink) Write(p []byte) (int, error) { return 0, errors.New("sink: no space left") }

// TestTraceFlushFailureFailsPass is the regression test for the cache
// accepting passes whose individual-mode trace flushes failed: the
// result carries TraceErr, and vetPass must reject it so figures never
// assemble from a truncated record stream.
func TestTraceFlushFailureFailsPass(t *testing.T) {
	w := workload.Apps()[0]
	store := fpspy.NewStoreWithSink(func(fpspy.ThreadKey) io.Writer { return failingSink{} })
	res, err := fpspy.Run(w.Build(workload.SizeSmall), fpspy.Options{
		Config: FilteredConfig(),
		Store:  store,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.TraceErr == nil {
		t.Fatal("failing sink produced no TraceErr; the regression scenario did not reproduce")
	}
	if _, verr := vetPass(w.Meta.Name, res, nil); verr == nil {
		t.Fatal("vetPass accepted a pass with failed trace flushes")
	} else if !strings.Contains(verr.Error(), "trace flush") {
		t.Fatalf("vetPass error %q does not identify the trace flush failure", verr)
	}
}
