package study

import (
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var updateGolden = flag.Bool("update", false, "rewrite the golden study output")

// TestGoldenStudyOutput pins the entire rendered study — every figure
// and table — against a golden file. The simulator, the workloads, the
// sampler seeds, and the analyses are all deterministic, so any diff
// here is a real behavior change. Regenerate intentionally with:
//
//	go test ./internal/study -run Golden -update
func TestGoldenStudyOutput(t *testing.T) {
	if testing.Short() {
		t.Skip("full study in -short mode")
	}
	s := New()
	tables, err := s.All()
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	for _, tbl := range tables {
		sb.WriteString(tbl.Render())
		sb.WriteString("\n")
	}
	got := sb.String()

	golden := filepath.Join("testdata", "study.golden")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("golden updated: %d bytes", len(got))
		return
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("golden file missing (run with -update): %v", err)
	}
	if got == string(want) {
		return
	}
	// Report the first differing line for a usable failure message.
	gl := strings.Split(got, "\n")
	wl := strings.Split(string(want), "\n")
	for i := 0; i < len(gl) && i < len(wl); i++ {
		if gl[i] != wl[i] {
			t.Fatalf("study output diverged at line %d:\n got  %q\n want %q", i+1, gl[i], wl[i])
		}
	}
	t.Fatalf("study output length changed: %d vs %d lines", len(gl), len(wl))
}
