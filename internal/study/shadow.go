package study

// The shadow-precision root-cause study (the -shadow pass family of
// fpstudy): run workloads with the shadow channel attached, rank their
// FP sites by introduced rounding error, and pair each unmitigated
// accuracy measurement with an adaptive-precision mitigated leg at the
// same workload — the Section 6 feasibility argument restated over
// error mass instead of event counts. Shadowing is pure observation:
// with ShadowPrec zero these passes are bit-identical to the seed
// study's, which the chaos differential suite enforces.

import (
	"encoding/json"
	"fmt"
	"io"

	fpspy "repro"
	"repro/internal/analysis"
	"repro/internal/workload"
)

// DefaultShadowPrec is the precision the shadow study runs at when the
// cell names none: binary128's 113-bit mantissa (matching the fpspyd
// /v1/shadowjobs default).
const DefaultShadowPrec = 113

// ShadowConfig is the spy configuration a shadow cell runs under:
// aggregate mode (the cheapest spy; shadowing needs no trap protocol)
// with the channel attached at the given precision.
func ShadowConfig(prec uint64) fpspy.Config {
	return fpspy.Config{Mode: fpspy.ModeAggregate, ShadowPrec: prec}
}

// ShadowCell is one cell of the shadow study: a workload shadowed at
// Prec, optionally paired with an adaptive-precision mitigated leg.
type ShadowCell struct {
	// Workload names the registry entry to run.
	Workload string
	// Prec is the shadow precision in mantissa bits (0 = default).
	Prec uint64
	// MitPrec, when nonzero, also runs the workload under the Section 6
	// adaptive-precision mitigator at this software-FPU precision.
	MitPrec uint
	// Size is the problem size (the zero value is SizeSmall).
	Size workload.Size
}

// ShadowCellResult is one cell's outcome: the ranked-attribution
// summary of the unmitigated run, plus the mitigated leg's counters.
type ShadowCellResult struct {
	Workload string `json:"workload"`
	Prec     uint64 `json:"prec"`
	// Steps is the unmitigated run's retired instruction count.
	Steps uint64 `json:"steps"`
	// Sites/Sites99/Ops/LocalUlps/MaxUlps summarize the attribution
	// report (see analysis.RootCauseReport).
	Sites     int     `json:"sites"`
	Sites99   int     `json:"sites99"`
	Ops       uint64  `json:"ops"`
	LocalUlps float64 `json:"localUlps"`
	MaxUlps   uint64  `json:"maxUlps"`
	// Top* identify the highest-ranked site.
	TopAddr      uint64  `json:"topAddr,omitempty"`
	TopOp        string  `json:"topOp,omitempty"`
	TopLocalUlps float64 `json:"topLocalUlps,omitempty"`
	// TopSites is the ranked attribution, for report consumers that
	// need more than the headline (fpanalyze -rootcause caps its own
	// rendering; the matrix keeps every site).
	TopSites []analysis.RootCauseSite `json:"topSites,omitempty"`
	// Mit* report the mitigated leg (zero when MitPrec was 0): how many
	// instructions the software FPU emulated and how many of those
	// write-backs differed from the hardware result — rounding error
	// the mitigation removed.
	MitPrec     uint64 `json:"mitPrec,omitempty"`
	MitEmulated uint64 `json:"mitEmulated,omitempty"`
	MitImproved uint64 `json:"mitImproved,omitempty"`
	Err         string `json:"err,omitempty"`
}

// RunShadowCell executes one cell hermetically (its own kernel and
// machine per leg), like RunProbeCell: callers provide concurrency via
// Study.Exec, and the cell touches no shared state.
func RunShadowCell(cell ShadowCell) ShadowCellResult {
	prec := cell.Prec
	if prec == 0 {
		prec = DefaultShadowPrec
	}
	size := cell.Size
	res := ShadowCellResult{Workload: cell.Workload, Prec: prec}
	w, err := workload.ByName(cell.Workload)
	if err != nil {
		res.Err = err.Error()
		return res
	}
	run, err := fpspy.Run(w.Build(size), fpspy.Options{Config: ShadowConfig(prec)})
	if _, err = vetPass(cell.Workload, run, err); err != nil {
		res.Err = err.Error()
		return res
	}
	res.Steps = run.Steps
	if rep := run.RootCause(prec); rep != nil {
		res.Sites = len(rep.Sites)
		res.Sites99 = rep.Sites99
		res.Ops = rep.TotalOps
		res.LocalUlps = rep.TotalLocalUlps
		res.MaxUlps = rep.MaxUlps
		res.TopSites = rep.Sites
		if top, ok := rep.TopSite(); ok {
			res.TopAddr = top.Addr
			res.TopOp = top.Op
			res.TopLocalUlps = top.LocalUlps
		}
	}
	if cell.MitPrec > 0 {
		_, stats, err := fpspy.RunMitigated(w.Build(size), cell.MitPrec, fpspy.Options{})
		if err != nil {
			res.Err = fmt.Sprintf("mitigated leg: %v", err)
			return res
		}
		res.MitPrec = uint64(cell.MitPrec)
		res.MitEmulated = stats.Emulated
		res.MitImproved = stats.Improved
	}
	return res
}

// DefaultShadowCells builds the study over the given workload names
// (all corpus apps when empty) at one shadow precision, with the
// mitigated leg at mitPrec (0 skips it).
func DefaultShadowCells(names []string, prec uint64, mitPrec uint, size workload.Size) []ShadowCell {
	if len(names) == 0 {
		for _, w := range workload.Apps() {
			names = append(names, w.Meta.Name)
		}
	}
	cells := make([]ShadowCell, 0, len(names))
	for _, n := range names {
		cells = append(cells, ShadowCell{Workload: n, Prec: prec, MitPrec: mitPrec, Size: size})
	}
	return cells
}

// ShadowReport is the shadow study outcome.
type ShadowReport struct {
	Cells []ShadowCellResult `json:"cells"`
	// Failures counts cells that errored.
	Failures int `json:"failures"`
}

// ShadowMatrix runs the cells on the study's worker pool. Results land
// at their input index, so the report is deterministic at any worker
// count.
func (s *Study) ShadowMatrix(cells []ShadowCell) *ShadowReport {
	results := make([]ShadowCellResult, len(cells))
	done := make(chan int, len(cells))
	for i := range cells {
		go func(i int) {
			s.Exec(func() { results[i] = RunShadowCell(cells[i]) })
			done <- i
		}(i)
	}
	for range cells {
		<-done
	}
	r := &ShadowReport{Cells: results}
	for i := range results {
		if results[i].Err != "" {
			r.Failures++
		}
	}
	return r
}

// Table renders the study as one row per workload.
func (r *ShadowReport) Table() *Table {
	t := &Table{
		ID:    "shadow",
		Title: "Shadow-precision root-cause study",
		Header: []string{"workload", "prec", "sites", "99%-sites", "ops",
			"local-ulps", "max-ulps", "top site", "mitigated"},
	}
	for i := range r.Cells {
		c := &r.Cells[i]
		if c.Err != "" {
			t.Rows = append(t.Rows, []string{c.Workload, fmt.Sprintf("%d", c.Prec),
				"-", "-", "-", "-", "-", "-", "ERROR: " + c.Err})
			continue
		}
		top := "-"
		if c.TopOp != "" {
			top = fmt.Sprintf("%#x %s %.4g", c.TopAddr, c.TopOp, c.TopLocalUlps)
		}
		mit := "-"
		if c.MitPrec > 0 {
			mit = fmt.Sprintf("p%d: %d/%d improved", c.MitPrec, c.MitImproved, c.MitEmulated)
		}
		t.Rows = append(t.Rows, []string{
			c.Workload, fmt.Sprintf("%d", c.Prec),
			fmt.Sprintf("%d", c.Sites), fmt.Sprintf("%d", c.Sites99),
			fmt.Sprintf("%d", c.Ops), fmt.Sprintf("%.6g", c.LocalUlps),
			fmt.Sprintf("%d", c.MaxUlps), top, mit,
		})
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("%d cells, %d failures; error in fractional ULPs of the native output", len(r.Cells), r.Failures))
	return t
}

// WriteJSON emits the report.
func (r *ShadowReport) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}
