package study

import (
	"fmt"
	"runtime"
	"sync"
	"time"

	fpspy "repro"
	"repro/internal/isa"
	"repro/internal/obs"
	"repro/internal/workload"
)

// Study runs and caches the methodology passes. Passes are keyed by
// (workload, config, spy on/off, size) and deduplicated: a result is
// computed exactly once no matter how many figures ask for it, or how
// many ask concurrently. Each pass is a hermetic simulation (its own
// kernel, machine, and seeded sampler), so passes can run in parallel
// on a bounded worker pool without changing any result — the golden
// study output is byte-identical at every worker count.
type Study struct {
	// Size is the problem size for the applications and NAS (Figure 10
	// additionally runs PARSEC at SizeSmall, as the paper's Section 5.3
	// problem-size note describes).
	Size workload.Size

	// Obs, when non-nil, is shared by every pass: the scheduler records
	// pass counts, durations, and worker occupancy, and each pass's
	// kernel and spy feed the same registry. Nil (the default) leaves
	// all instrumentation compiled out; the figures are byte-identical
	// either way.
	Obs *obs.Metrics

	// sem bounds the number of passes simulating at once.
	sem chan struct{}

	mu      sync.Mutex
	results map[passKey]*passEntry
}

// passKey identifies one spy pass. fpspy.Config is comparable, so the
// key is a plain struct — no string formatting on the cache path.
type passKey struct {
	name  string
	cfg   fpspy.Config
	noSpy bool
	size  workload.Size
}

// passEntry is a singleflight cell: the first caller executes the pass;
// concurrent callers block on the Once and share the result.
type passEntry struct {
	once sync.Once
	res  *fpspy.Result
	err  error
}

// New creates a study at the default (large) size with one worker per
// available CPU.
func New() *Study {
	return NewWithWorkers(0)
}

// NewWithWorkers creates a study whose passes run on at most n
// concurrent workers; n < 1 selects GOMAXPROCS. NewWithWorkers(1) is
// the fully serial study.
func NewWithWorkers(n int) *Study {
	if n < 1 {
		n = runtime.GOMAXPROCS(0)
	}
	return &Study{
		Size:    workload.SizeLarge,
		sem:     make(chan struct{}, n),
		results: make(map[passKey]*passEntry),
	}
}

// Workers reports the worker pool size.
func (s *Study) Workers() int { return cap(s.sem) }

// Exec runs fn on the study's bounded worker pool, blocking until a
// worker slot is free and counting occupancy like a pass. External
// schedulers (the fpspyd daemon in internal/server) use it to share the
// study's concurrency budget instead of growing a second pool.
func (s *Study) Exec(fn func()) {
	s.sem <- struct{}{}
	defer func() { <-s.sem }()
	if s.Obs != nil {
		s.Obs.Study.WorkersBusy.Add(1)
		defer s.Obs.Study.WorkersBusy.Add(-1)
	}
	fn()
}

// entry returns the cache cell for key, creating it under the lock.
func (s *Study) entry(key passKey) *passEntry {
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.results[key]
	if !ok {
		e = &passEntry{}
		s.results[key] = e
	}
	return e
}

// run executes one workload under one configuration, cached and
// deduplicated. The name "miniaero-calibrated" selects the
// density-calibrated Miniaero build used by the overhead experiment.
func (s *Study) run(name string, cfg fpspy.Config, noSpy bool, size workload.Size) (*fpspy.Result, error) {
	if s.Obs != nil {
		s.Obs.Study.PassRequests.Inc()
	}
	e := s.entry(passKey{name: name, cfg: cfg, noSpy: noSpy, size: size})
	e.once.Do(func() {
		s.sem <- struct{}{}
		defer func() { <-s.sem }()
		if s.Obs == nil {
			e.res, e.err = runPass(name, cfg, noSpy, size, nil)
			return
		}
		st := &s.Obs.Study
		st.WorkersBusy.Add(1)
		spanStart := s.Obs.Tracer.Now()
		hostStart := time.Now()
		e.res, e.err = runPass(name, cfg, noSpy, size, s.Obs)
		hostNS := time.Since(hostStart).Nanoseconds()
		st.WorkersBusy.Add(-1)
		st.PassesExecuted.Inc()
		if e.err != nil {
			st.PassErrors.Inc()
		}
		if e.res != nil {
			st.PassWallCycles.Observe(e.res.WallCycles)
		}
		st.PassHostNS.Observe(uint64(hostNS))
		var spyFlag uint64
		if !noSpy {
			spyFlag = 1
		}
		s.Obs.Tracer.Complete("study", "pass:"+name, 0, 0, spanStart, hostNS, "spy", spyFlag)
	})
	return e.res, e.err
}

// runPass is the uncached pass body: build the workload, run it under
// the spy. It touches no Study state (the shared obs handle is
// internally synchronized), which is what makes concurrent passes safe.
func runPass(name string, cfg fpspy.Config, noSpy bool, size workload.Size, m *obs.Metrics) (*fpspy.Result, error) {
	var build func(workload.Size) *isa.Program
	if name == "miniaero-calibrated" {
		build = workload.BuildMiniaeroCalibrated
	} else {
		w, err := workload.ByName(name)
		if err != nil {
			return nil, err
		}
		build = w.Build
	}
	res, err := fpspy.Run(build(size), fpspy.Options{Config: cfg, NoSpy: noSpy, Obs: m})
	return vetPass(name, res, err)
}

// vetPass validates a completed pass before it enters the cache. A pass
// whose trace flushes failed must not be cached as a success: every
// figure assembled from it would silently use a truncated record
// stream.
func vetPass(name string, res *fpspy.Result, err error) (*fpspy.Result, error) {
	if err != nil {
		return nil, fmt.Errorf("%s: %w", name, err)
	}
	if res.TraceErr != nil {
		return nil, fmt.Errorf("%s: trace flush: %w", name, res.TraceErr)
	}
	return res, nil
}

// passList enumerates every pass the full study needs, in no particular
// order (results do not depend on execution order).
func (s *Study) passList() []passKey {
	var keys []passKey
	add := func(name string, cfg fpspy.Config, noSpy bool, size workload.Size) {
		keys = append(keys, passKey{name: name, cfg: cfg, noSpy: noSpy, size: size})
	}
	// Figure 6: the calibrated Miniaero build across configurations.
	add("miniaero-calibrated", fpspy.Config{}, true, s.Size)
	add("miniaero-calibrated", AggregateConfig(), false, s.Size)
	add("miniaero-calibrated", FilteredConfig(), false, s.Size)
	for _, on := range []uint64{5, 10, 50} {
		c := SampledConfig()
		c.SampleOnUS, c.SampleOffUS = on, 100
		add("miniaero-calibrated", c, false, s.Size)
	}
	// Event matrices (Figures 9/11/14) and the record corpus (Figures
	// 17-19, Section 6): every code under all three tracing passes.
	for _, w := range workload.Apps() {
		add(w.Meta.Name, AggregateConfig(), false, s.Size)
		add(w.Meta.Name, FilteredConfig(), false, s.Size)
		add(w.Meta.Name, SampledConfig(), false, s.Size)
		// Figure 15 rates divide by the unencumbered duration.
		add(w.Meta.Name, fpspy.Config{}, true, s.Size)
	}
	for _, w := range append(workload.Parsec(), workload.NAS()...) {
		add(w.Meta.Name, AggregateConfig(), false, s.Size)
		add(w.Meta.Name, FilteredConfig(), false, s.Size)
		add(w.Meta.Name, SampledConfig(), false, s.Size)
	}
	// Figure 10: PARSEC at the reduced problem size.
	for _, w := range workload.Parsec() {
		add(w.Meta.Name, AggregateConfig(), false, workload.SizeSmall)
	}
	return keys
}

// Prewarm runs every pass the full study needs on the worker pool and
// blocks until all have finished. Figures generated afterwards assemble
// from the warm cache without simulating anything. Pass errors are
// cached and resurface from the figure that needs the failed pass.
func (s *Study) Prewarm() {
	var wg sync.WaitGroup
	for _, key := range s.passList() {
		wg.Add(1)
		go func(k passKey) {
			defer wg.Done()
			s.run(k.name, k.cfg, k.noSpy, k.size) //nolint:errcheck // cached, rechecked at assembly
		}(key)
	}
	wg.Wait()
}
