// Package study drives the paper's Section 4 methodology end-to-end over
// the workload suite and renders every table and figure of the
// evaluation (Figures 6 through 19, plus the Section 6 feasibility
// analysis). It is shared by cmd/fpstudy and the benchmark harness in
// bench_test.go.
package study

import (
	"fmt"
	"strings"
)

// Table is a rendered result: a titled grid with optional notes.
type Table struct {
	// ID is the paper artifact this reproduces, e.g. "Figure 9".
	ID string
	// Title describes the content.
	Title string
	// Header names the columns.
	Header []string
	// Rows is the grid.
	Rows [][]string
	// Notes carries caveats (scaling, documented paper inconsistencies).
	Notes []string
}

// Render formats the table as aligned text.
func (t *Table) Render() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s — %s\n", t.ID, t.Title)
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			fmt.Fprintf(&sb, "%-*s", widths[i], c)
		}
		sb.WriteString("\n")
	}
	line(t.Header)
	for _, row := range t.Rows {
		line(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&sb, "note: %s\n", n)
	}
	return sb.String()
}

// mark renders the paper's T/f cells.
func mark(b bool) string {
	if b {
		return "T"
	}
	return "f"
}
