package study

// The reproducibility conformance suite (ROADMAP item 3): run every
// accumulation-order probe under the spy across engine configurations,
// scheduler seeds, and kernel.Inject perturbations, reconstruct each
// run's accumulation tree from its trace, and require the canonical
// fingerprint — not merely the final bits — to be identical in every
// cell. The broken-reassoc probe inverts the check: its recovered tree
// must *differ* from its documented claim (the negative control proving
// the suite can detect a reassociated reduction at all).

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"

	fpspy "repro"
	"repro/internal/analysis"
	"repro/internal/kernel"
	"repro/internal/trace"
	"repro/internal/workload"
)

// ProbeEngine is one execution-engine configuration of the transparency
// matrix: {fast, precise} × {prune on/off} × {superblock on/off}.
type ProbeEngine struct {
	// Name is the cell label, e.g. "fast+prune+sb".
	Name string
	// NoFastPath forces the precise single-step engine.
	NoFastPath bool
	// NoPrune disables absint trap-site pruning.
	NoPrune bool
	// NoSuperblock disables the superblock trace cache.
	NoSuperblock bool
}

// ProbeEngines enumerates all eight engine configurations.
func ProbeEngines() []ProbeEngine {
	var out []ProbeEngine
	for _, fast := range []bool{true, false} {
		for _, prune := range []bool{true, false} {
			for _, sb := range []bool{true, false} {
				name := "precise"
				if fast {
					name = "fast"
				}
				if prune {
					name += "+prune"
				}
				if sb {
					name += "+sb"
				}
				out = append(out, ProbeEngine{
					Name:         name,
					NoFastPath:   !fast,
					NoPrune:      !prune,
					NoSuperblock: !sb,
				})
			}
		}
	}
	return out
}

// ProbeSchedule is one scheduler-perturbation scenario. The zero value
// is the unperturbed scheduler.
type ProbeSchedule struct {
	// Name is the cell label.
	Name string
	// Shuffle enables seeded runqueue shuffling.
	Shuffle bool
	// Jitter enables seeded quantum jitter.
	Jitter bool
	// DelayMax enables seeded signal delivery delay (cycles).
	DelayMax uint64
}

// ProbeSchedules enumerates the inject scenarios of the matrix.
func ProbeSchedules() []ProbeSchedule {
	return []ProbeSchedule{
		{Name: "baseline"},
		{Name: "shuffle", Shuffle: true},
		{Name: "jitter", Jitter: true},
		{Name: "storm", Shuffle: true, Jitter: true, DelayMax: 1000},
	}
}

// inject builds the seeded injector for a scenario, nil for baseline.
func (ps ProbeSchedule) inject(seed int64) *kernel.Inject {
	if !ps.Shuffle && !ps.Jitter && ps.DelayMax == 0 {
		return nil
	}
	inj := kernel.NewInject(seed)
	inj.ShuffleSched = ps.Shuffle
	inj.QuantumJitter = ps.Jitter
	inj.DelayMax = ps.DelayMax
	return inj
}

// ProbeCell is one cell of the conformance matrix.
type ProbeCell struct {
	// Spec selects the probe kernel. Perturbed schedules set Companion
	// so the scheduler has a second task to shuffle against.
	Spec workload.ProbeSpec
	// Engine is the execution-engine configuration.
	Engine ProbeEngine
	// Sched is the scheduler-perturbation scenario.
	Sched ProbeSchedule
	// Seed seeds the injector (ignored for the baseline schedule).
	Seed int64
}

// ProbeCellResult is one cell's verdict.
type ProbeCellResult struct {
	Kernel   string `json:"kernel"`
	N        int    `json:"n"`
	Param    int    `json:"param,omitempty"`
	Engine   string `json:"engine"`
	Schedule string `json:"schedule"`
	Seed     int64  `json:"seed"`
	// Fingerprint and Canonical are the tree recovered from the trace.
	Fingerprint string `json:"fingerprint"`
	Canonical   string `json:"canonical"`
	// Expected is the documented tree's fingerprint.
	Expected string `json:"expected"`
	// Detected is true when recovered != expected — a reassociation.
	Detected bool `json:"detected"`
	// Negative marks the deliberately-broken control cell, whose pass
	// condition is Detected.
	Negative bool `json:"negative,omitempty"`
	// Pass is the cell verdict: match for honest kernels, detection for
	// the negative control.
	Pass bool   `json:"pass"`
	Err  string `json:"err,omitempty"`
}

// ProbeConfig is the spy configuration every probe cell runs under:
// unsampled individual mode capturing all events — the only mode whose
// trace is complete enough to reconstruct from. Engine toggles are
// layered on top.
func ProbeConfig(eng ProbeEngine) fpspy.Config {
	return fpspy.Config{
		Mode:         fpspy.ModeIndividual,
		ExceptList:   fpspy.AllEvents,
		NoPrune:      eng.NoPrune,
		NoSuperblock: eng.NoSuperblock,
	}
}

// RunProbeCell executes one cell hermetically: build the probe, run it
// under the cell's engine and schedule, recover the accumulation tree
// from the trace, and compare fingerprints.
func RunProbeCell(cell ProbeCell) ProbeCellResult {
	res := ProbeCellResult{
		Kernel:   string(cell.Spec.Kind),
		N:        cell.Spec.N,
		Param:    cell.Spec.Param,
		Engine:   cell.Engine.Name,
		Schedule: cell.Sched.Name,
		Seed:     cell.Seed,
		Negative: cell.Spec.Kind == workload.ProbeBrokenReassoc,
	}
	probe, err := workload.BuildProbe(cell.Spec)
	if err != nil {
		res.Err = err.Error()
		return res
	}
	res.Param = probe.Spec.Param
	res.Expected = probe.Expected.Fingerprint()
	run, err := fpspy.Run(probe.Prog, fpspy.Options{
		Config:     ProbeConfig(cell.Engine),
		NoFastPath: cell.Engine.NoFastPath,
		Inject:     cell.Sched.inject(cell.Seed),
	})
	if _, err = vetPass("probe", run, err); err != nil {
		res.Err = err.Error()
		return res
	}
	recs, err := run.Records()
	if err != nil {
		res.Err = err.Error()
		return res
	}
	tree, err := analysis.RecoverProbeTree(recs)
	if err != nil {
		res.Err = err.Error()
		return res
	}
	res.Fingerprint = tree.Fingerprint()
	res.Canonical = tree.Canonical()
	res.Detected = res.Fingerprint != res.Expected
	res.Pass = res.Detected == res.Negative
	return res
}

// DefaultProbeCells builds the full conformance matrix over every probe
// kind at the study size: all engine configurations × all schedules ×
// the given seeds (the baseline schedule is seed-independent and runs
// once). Perturbed schedules run with a companion thread.
func DefaultProbeCells(size workload.Size, seeds []int64) []ProbeCell {
	var cells []ProbeCell
	for _, kind := range workload.ProbeKinds() {
		spec := workload.DefaultProbeSpec(kind, size)
		for _, eng := range ProbeEngines() {
			for _, sched := range ProbeSchedules() {
				if sched.Name == "baseline" {
					cells = append(cells, ProbeCell{Spec: spec, Engine: eng, Sched: sched})
					continue
				}
				pspec := spec
				pspec.Companion = true
				for _, seed := range seeds {
					cells = append(cells, ProbeCell{Spec: pspec, Engine: eng, Sched: sched, Seed: seed})
				}
			}
		}
	}
	return cells
}

// ProbeReport is the suite outcome: every cell verdict plus the
// cross-cell consistency analysis.
type ProbeReport struct {
	Cells []ProbeCellResult `json:"cells"`
	// Failures counts cells whose verdict is fail or error.
	Failures int `json:"failures"`
	// Fingerprints maps each kernel to the set of distinct recovered
	// fingerprints across all its cells — reproducibility means every
	// honest kernel (and the negative control, whose wrongness must
	// itself be deterministic) maps to exactly one.
	Fingerprints map[string][]string `json:"fingerprints"`
	// Inconsistent lists kernels whose cells disagreed with each other.
	Inconsistent []string `json:"inconsistent,omitempty"`
}

// ProbeMatrix runs the cells on the study's worker pool and assembles
// the report. Cell results land at their input index, so the report is
// deterministic at any worker count.
func (s *Study) ProbeMatrix(cells []ProbeCell) *ProbeReport {
	results := make([]ProbeCellResult, len(cells))
	done := make(chan int, len(cells))
	for i := range cells {
		go func(i int) {
			s.Exec(func() { results[i] = RunProbeCell(cells[i]) })
			done <- i
		}(i)
	}
	for range cells {
		<-done
	}
	return AssembleProbeReport(results)
}

// AssembleProbeReport computes the cross-cell consistency verdicts.
func AssembleProbeReport(results []ProbeCellResult) *ProbeReport {
	r := &ProbeReport{Cells: results, Fingerprints: map[string][]string{}}
	seen := map[string]map[string]bool{}
	for i := range results {
		c := &results[i]
		if !c.Pass || c.Err != "" {
			r.Failures++
		}
		if c.Fingerprint == "" {
			continue
		}
		key := fmt.Sprintf("%s/n=%d", c.Kernel, c.N)
		if seen[key] == nil {
			seen[key] = map[string]bool{}
		}
		seen[key][c.Fingerprint] = true
	}
	for key, fps := range seen {
		var list []string
		for fp := range fps {
			list = append(list, fp)
		}
		sort.Strings(list)
		r.Fingerprints[key] = list
		if len(list) > 1 {
			r.Inconsistent = append(r.Inconsistent, key)
		}
	}
	sort.Strings(r.Inconsistent)
	r.Failures += len(r.Inconsistent)
	return r
}

// Table renders the matrix as a study table: one row per kernel ×
// engine with schedules collapsed, plus the consistency summary.
func (r *ProbeReport) Table() *Table {
	type rowKey struct{ kernel, engine string }
	agg := map[rowKey]*struct {
		cells, pass int
		fp          string
	}{}
	var order []rowKey
	for i := range r.Cells {
		c := &r.Cells[i]
		k := rowKey{kernel: fmt.Sprintf("%s/n=%d", c.Kernel, c.N), engine: c.Engine}
		a, ok := agg[k]
		if !ok {
			a = &struct {
				cells, pass int
				fp          string
			}{}
			agg[k] = a
			order = append(order, k)
		}
		a.cells++
		if c.Pass && c.Err == "" {
			a.pass++
		}
		if a.fp == "" {
			a.fp = c.Fingerprint
		}
	}
	t := &Table{
		ID:     "probe",
		Title:  "Accumulation-order reproducibility matrix",
		Header: []string{"kernel", "engine", "cells", "pass", "fingerprint"},
	}
	for _, k := range order {
		a := agg[k]
		t.Rows = append(t.Rows, []string{
			k.kernel, k.engine,
			fmt.Sprintf("%d", a.cells), fmt.Sprintf("%d/%d", a.pass, a.cells),
			a.fp,
		})
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("%d cells, %d failures", len(r.Cells), r.Failures))
	for _, k := range r.Inconsistent {
		t.Notes = append(t.Notes, fmt.Sprintf("INCONSISTENT: %s recovered %d distinct trees", k, len(r.Fingerprints[k])))
	}
	return t
}

// WriteJSON emits the report (the CI fingerprint-corpus artifact).
func (r *ProbeReport) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// WriteProbeTrace runs one probe under the default engine and writes
// its raw individual-mode trace bytes (every thread, concatenated) to
// w, returning the fingerprint recovered from that same trace. The
// output is a standard .fpemon byte stream that `fpanalyze -accumtree`
// reconstructs from.
func WriteProbeTrace(spec workload.ProbeSpec, w io.Writer) (string, error) {
	probe, err := workload.BuildProbe(spec)
	if err != nil {
		return "", err
	}
	run, err := fpspy.Run(probe.Prog, fpspy.Options{Config: ProbeConfig(ProbeEngine{})})
	if _, err = vetPass("probe", run, err); err != nil {
		return "", err
	}
	var all []byte
	for _, key := range run.Store.Threads() {
		raw, err := run.Store.RawTrace(key)
		if err != nil {
			return "", err
		}
		all = append(all, raw...)
	}
	recs, err := trace.Decode(all)
	if err != nil {
		return "", err
	}
	tree, err := analysis.RecoverProbeTree(recs)
	if err != nil {
		return "", err
	}
	if _, err := w.Write(all); err != nil {
		return "", err
	}
	return tree.Fingerprint(), nil
}
