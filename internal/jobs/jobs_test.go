package jobs_test

import (
	"testing"

	fpspy "repro"
	"repro/internal/jobs"
	"repro/internal/workload"
)

func TestCloneRoundTrip(t *testing.T) {
	w, err := workload.ByName("laghos")
	if err != nil {
		t.Fatal(err)
	}
	job := jobs.Capture("laghos-run-42", w.Build(workload.SizeSmall),
		map[string]string{"OMP_NUM_THREADS": "4"}, 4<<20)
	blob, err := job.Encode()
	if err != nil {
		t.Fatal(err)
	}
	back, err := jobs.Decode(blob)
	if err != nil {
		t.Fatal(err)
	}
	if back.Name != job.Name || back.MemBytes != job.MemBytes {
		t.Errorf("metadata lost: %+v", back)
	}
	if len(back.Program.Insts) != len(job.Program.Insts) {
		t.Fatalf("program truncated: %d vs %d", len(back.Program.Insts), len(job.Program.Insts))
	}
	if back.Env["OMP_NUM_THREADS"] != "4" {
		t.Error("environment lost")
	}
	// The decoded clone replays identically to the original program.
	orig, err := job.Replay(fpspy.Config{Mode: fpspy.ModeAggregate})
	if err != nil {
		t.Fatal(err)
	}
	replay, err := back.Replay(fpspy.Config{Mode: fpspy.ModeAggregate})
	if err != nil {
		t.Fatal(err)
	}
	if orig.EventSet() != replay.EventSet() {
		t.Errorf("replay events %v != original %v", replay.EventSet(), orig.EventSet())
	}
	if orig.Steps != replay.Steps {
		t.Errorf("replay steps %d != original %d", replay.Steps, orig.Steps)
	}
}

func TestProductionRunHasNoSpy(t *testing.T) {
	w, err := workload.ByName("nas-ep")
	if err != nil {
		t.Fatal(err)
	}
	job := jobs.Capture("ep", w.Build(workload.SizeSmall), nil, 4<<20)
	res, err := job.RunProduction()
	if err != nil {
		t.Fatal(err)
	}
	if res.Store.Faults != 0 || len(res.Aggregates()) != 0 {
		t.Error("production run was observed")
	}
	if res.ExitCode != 0 {
		t.Errorf("exit %d", res.ExitCode)
	}
}

func TestDecodeRejectsGarbage(t *testing.T) {
	if _, err := jobs.Decode([]byte("not a clone")); err == nil {
		t.Error("garbage decoded")
	}
}

func TestCloneReplayAggressive(t *testing.T) {
	// The offline analyst uses a configuration production would never
	// tolerate: full individual capture including Inexact.
	w, err := workload.ByName("ext/cholesky")
	if err != nil {
		t.Fatal(err)
	}
	job := jobs.Capture("cholesky", w.Build(workload.SizeSmall), nil, 4<<20)
	blob, _ := job.Encode()
	clone, _ := jobs.Decode(blob)
	res, err := clone.Replay(fpspy.Config{Mode: fpspy.ModeIndividual, Aggressive: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.EventSet()&fpspy.FlagDivideByZero == 0 {
		t.Error("offline replay missed the divide by zero")
	}
	if len(res.MustRecords()) == 0 {
		t.Error("no records from aggressive replay")
	}
}
