// Package jobs implements the paper's "cloning in production" use-case
// (Figure 1b): at job launch, the scheduler captures the job and its
// parameters as a *submission clone* — a serializable snapshot that can
// be stored and replayed later, offline, under far more aggressive FPSpy
// configurations than production would tolerate. The user's run itself
// proceeds untouched, with zero overhead.
package jobs

import (
	"bytes"
	"encoding/gob"
	"errors"
	"fmt"

	fpspy "repro"
	"repro/internal/isa"
	"repro/internal/obs"
)

// Typed validation errors for clones arriving from untrusted bytes
// (Decode). Both are wrapped, so callers match with errors.Is.
var (
	// ErrNoProgram reports a clone with no program image (or an empty
	// one): replaying it would crash the kernel spawn path.
	ErrNoProgram = errors.New("jobs: clone has no program image")
	// ErrMemBytes reports a clone whose memory request is negative or
	// absurd — beyond MaxMemBytes.
	ErrMemBytes = errors.New("jobs: clone memory request out of range")
)

// MaxMemBytes bounds the memory request Decode accepts (4 GiB). The
// simulated machine allocates guest memory eagerly, so an absurd
// MemBytes from a hostile encoding must be rejected before it reaches
// RunProduction or Replay.
const MaxMemBytes = 4 << 30

// Job is a submission clone: everything needed to re-run a submission
// bit-identically — the binary (program image) and the environment the
// scheduler would have launched it with.
type Job struct {
	// Name identifies the submission.
	Name string
	// Program is the application binary image.
	Program *isa.Program
	// Env is the launch environment.
	Env map[string]string
	// MemBytes is the requested memory.
	MemBytes int
}

// Capture builds a submission clone at the moment of launch.
func Capture(name string, prog *isa.Program, env map[string]string, memBytes int) *Job {
	dupEnv := make(map[string]string, len(env))
	for k, v := range env {
		dupEnv[k] = v
	}
	return &Job{Name: name, Program: prog, Env: dupEnv, MemBytes: memBytes}
}

// Encode serializes the clone for storage (the paper's offline-analysis
// hand-off).
func (j *Job) Encode() ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(j); err != nil {
		return nil, fmt.Errorf("jobs: encode %s: %w", j.Name, err)
	}
	return buf.Bytes(), nil
}

// Decode reconstructs a submission clone. The input is untrusted (it
// typically arrives over the fpspyd wire), so the decoded clone is
// validated before it is returned: garbage that happens to gob-decode
// does not flow onward into RunProduction or Replay.
func Decode(data []byte) (*Job, error) {
	var j Job
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&j); err != nil {
		return nil, fmt.Errorf("jobs: decode: %w", err)
	}
	if err := j.Validate(); err != nil {
		return nil, err
	}
	return &j, nil
}

// Validate checks the structural invariants a replayable clone must
// hold. Decode applies it to everything it accepts; Capture output is
// valid by construction when given a real program.
func (j *Job) Validate() error {
	if j.Program == nil || len(j.Program.Insts) == 0 {
		return fmt.Errorf("%w (clone %q)", ErrNoProgram, j.Name)
	}
	if j.MemBytes < 0 || j.MemBytes > MaxMemBytes {
		return fmt.Errorf("%w: %d (clone %q)", ErrMemBytes, j.MemBytes, j.Name)
	}
	return nil
}

// RunProduction executes the job exactly as submitted: no FPSpy, no
// overhead — "from the user's perspective, nothing would have changed".
func (j *Job) RunProduction() (*fpspy.Result, error) {
	return fpspy.Run(j.Program, fpspy.Options{
		NoSpy:    true,
		MemBytes: j.MemBytes,
		Env:      j.Env,
	})
}

// Replay executes the clone offline under an arbitrary FPSpy
// configuration — typically aggressive individual-mode tracing that
// production could never afford.
func (j *Job) Replay(cfg fpspy.Config) (*fpspy.Result, error) {
	return j.ReplayObs(cfg, nil)
}

// ReplayObs is Replay with an observability registry threaded through
// the run — the fpspyd daemon uses it so offline passes feed the same
// /metrics surface as the serving path. A nil registry is Replay.
func (j *Job) ReplayObs(cfg fpspy.Config, m *obs.Metrics) (*fpspy.Result, error) {
	return fpspy.Run(j.Program, fpspy.Options{
		Config:   cfg,
		MemBytes: j.MemBytes,
		Env:      j.Env,
		Obs:      m,
	})
}
