// Package jobs implements the paper's "cloning in production" use-case
// (Figure 1b): at job launch, the scheduler captures the job and its
// parameters as a *submission clone* — a serializable snapshot that can
// be stored and replayed later, offline, under far more aggressive FPSpy
// configurations than production would tolerate. The user's run itself
// proceeds untouched, with zero overhead.
package jobs

import (
	"bytes"
	"encoding/gob"
	"fmt"

	fpspy "repro"
	"repro/internal/isa"
)

// Job is a submission clone: everything needed to re-run a submission
// bit-identically — the binary (program image) and the environment the
// scheduler would have launched it with.
type Job struct {
	// Name identifies the submission.
	Name string
	// Program is the application binary image.
	Program *isa.Program
	// Env is the launch environment.
	Env map[string]string
	// MemBytes is the requested memory.
	MemBytes int
}

// Capture builds a submission clone at the moment of launch.
func Capture(name string, prog *isa.Program, env map[string]string, memBytes int) *Job {
	dupEnv := make(map[string]string, len(env))
	for k, v := range env {
		dupEnv[k] = v
	}
	return &Job{Name: name, Program: prog, Env: dupEnv, MemBytes: memBytes}
}

// Encode serializes the clone for storage (the paper's offline-analysis
// hand-off).
func (j *Job) Encode() ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(j); err != nil {
		return nil, fmt.Errorf("jobs: encode %s: %w", j.Name, err)
	}
	return buf.Bytes(), nil
}

// Decode reconstructs a submission clone.
func Decode(data []byte) (*Job, error) {
	var j Job
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&j); err != nil {
		return nil, fmt.Errorf("jobs: decode: %w", err)
	}
	return &j, nil
}

// RunProduction executes the job exactly as submitted: no FPSpy, no
// overhead — "from the user's perspective, nothing would have changed".
func (j *Job) RunProduction() (*fpspy.Result, error) {
	return fpspy.Run(j.Program, fpspy.Options{
		NoSpy:    true,
		MemBytes: j.MemBytes,
		Env:      j.Env,
	})
}

// Replay executes the clone offline under an arbitrary FPSpy
// configuration — typically aggressive individual-mode tracing that
// production could never afford.
func (j *Job) Replay(cfg fpspy.Config) (*fpspy.Result, error) {
	return fpspy.Run(j.Program, fpspy.Options{
		Config:   cfg,
		MemBytes: j.MemBytes,
		Env:      j.Env,
	})
}
