package jobs_test

import (
	"bytes"
	"encoding/gob"
	"errors"
	"reflect"
	"testing"

	"repro/internal/isa"
	"repro/internal/jobs"
	"repro/internal/workload"
)

// rawEncode gob-encodes a Job without Capture/Encode validation, to
// forge the hostile clones Decode must reject.
func rawEncode(t testing.TB, j *jobs.Job) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(j); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestDecodeRejectsNilProgram(t *testing.T) {
	blob := rawEncode(t, &jobs.Job{Name: "hostile", MemBytes: 1 << 20})
	if _, err := jobs.Decode(blob); !errors.Is(err, jobs.ErrNoProgram) {
		t.Fatalf("Decode(nil program) = %v, want ErrNoProgram", err)
	}
	empty := rawEncode(t, &jobs.Job{Name: "empty", Program: &isa.Program{Name: "empty"}})
	if _, err := jobs.Decode(empty); !errors.Is(err, jobs.ErrNoProgram) {
		t.Fatalf("Decode(empty program) = %v, want ErrNoProgram", err)
	}
}

func TestDecodeRejectsAbsurdMemBytes(t *testing.T) {
	w, err := workload.ByName("nas-ep")
	if err != nil {
		t.Fatal(err)
	}
	prog := w.Build(workload.SizeSmall)
	for _, mem := range []int{-1, jobs.MaxMemBytes + 1} {
		blob := rawEncode(t, &jobs.Job{Name: "hog", Program: prog, MemBytes: mem})
		if _, err := jobs.Decode(blob); !errors.Is(err, jobs.ErrMemBytes) {
			t.Fatalf("Decode(MemBytes=%d) = %v, want ErrMemBytes", mem, err)
		}
	}
	// The boundary itself is legal.
	blob := rawEncode(t, &jobs.Job{Name: "max", Program: prog, MemBytes: jobs.MaxMemBytes})
	if _, err := jobs.Decode(blob); err != nil {
		t.Fatalf("Decode(MemBytes=MaxMemBytes) = %v, want ok", err)
	}
}

// FuzzJobRoundTrip fuzzes the clone codec boundary: any bytes Decode
// accepts must describe a valid clone that re-encodes and re-decodes to
// the same value, and everything else must fail with an error rather
// than a panic or a poisoned clone.
func FuzzJobRoundTrip(f *testing.F) {
	w, err := workload.ByName("nas-ep")
	if err != nil {
		f.Fatal(err)
	}
	job := jobs.Capture("seed", w.Build(workload.SizeSmall),
		map[string]string{"OMP_NUM_THREADS": "2"}, 4<<20)
	blob, err := job.Encode()
	if err != nil {
		f.Fatal(err)
	}
	f.Add(blob)
	f.Add(blob[:len(blob)/2])
	f.Add(rawEncode(f, &jobs.Job{Name: "hostile", MemBytes: 1 << 62}))
	f.Add([]byte("not a clone"))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		j, err := jobs.Decode(data)
		if err != nil {
			return
		}
		if verr := j.Validate(); verr != nil {
			t.Fatalf("Decode accepted an invalid clone: %v", verr)
		}
		re, err := j.Encode()
		if err != nil {
			t.Fatalf("re-encode of decoded clone failed: %v", err)
		}
		back, err := jobs.Decode(re)
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		// Gob is not byte-stable (map order), so compare values.
		if back.Name != j.Name || back.MemBytes != j.MemBytes {
			t.Fatalf("round trip changed metadata: %+v vs %+v", back, j)
		}
		if !reflect.DeepEqual(back.Program, j.Program) {
			t.Fatal("round trip changed the program image")
		}
		if !reflect.DeepEqual(back.Env, j.Env) && (len(back.Env) != 0 || len(j.Env) != 0) {
			t.Fatalf("round trip changed env: %v vs %v", back.Env, j.Env)
		}
	})
}
