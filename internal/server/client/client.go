// Package client is the typed Go client for the fpspyd HTTP/JSON API.
// cmd/fpctl, the end-to-end suite, and the benchmarks drive the daemon
// through it.
package client

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"time"

	fpspy "repro"
	"repro/internal/jobs"
	"repro/internal/obs"
	"repro/internal/server"
	"repro/internal/trace"
)

// Client talks to one fpspyd daemon.
type Client struct {
	// BaseURL is the daemon root, e.g. "http://127.0.0.1:8765".
	BaseURL string
	// ID identifies this client for rate limiting and accounting; it is
	// sent as the X-FPSpy-Client header when non-empty.
	ID string
	// HTTPClient overrides the transport (default http.DefaultClient).
	HTTPClient *http.Client
}

// New builds a client for the daemon at baseURL.
func New(baseURL, id string) *Client {
	return &Client{BaseURL: strings.TrimRight(baseURL, "/"), ID: id}
}

// APIError is a non-2xx daemon response.
type APIError struct {
	// Status is the HTTP status code.
	Status int
	// Msg is the daemon's error string.
	Msg string
}

func (e *APIError) Error() string {
	return fmt.Sprintf("fpspyd: %s (HTTP %d)", e.Msg, e.Status)
}

// RateLimitError is a 429 rejection with the daemon's backoff hint.
type RateLimitError struct {
	// RetryAfter is the daemon's Retry-After value.
	RetryAfter time.Duration
	// Msg is the daemon's error string.
	Msg string
}

func (e *RateLimitError) Error() string {
	return fmt.Sprintf("fpspyd: %s (retry after %v)", e.Msg, e.RetryAfter)
}

func (c *Client) httpClient() *http.Client {
	if c.HTTPClient != nil {
		return c.HTTPClient
	}
	return http.DefaultClient
}

// do issues one request and decodes a JSON response into out (when
// non-nil), translating non-2xx statuses into typed errors.
func (c *Client) do(method, path string, body, out any) error {
	var rd *bytes.Reader
	if body != nil {
		data, err := json.Marshal(body)
		if err != nil {
			return fmt.Errorf("client: encode request: %w", err)
		}
		rd = bytes.NewReader(data)
	} else {
		rd = bytes.NewReader(nil)
	}
	req, err := http.NewRequest(method, c.BaseURL+path, rd)
	if err != nil {
		return err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	if c.ID != "" {
		req.Header.Set(server.ClientHeader, c.ID)
	}
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if err := checkStatus(resp); err != nil {
		return err
	}
	if out == nil {
		return nil
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

// checkStatus converts an error response into the matching typed error,
// consuming the body.
func checkStatus(resp *http.Response) error {
	if resp.StatusCode >= 200 && resp.StatusCode < 300 {
		return nil
	}
	var eb struct {
		Error string `json:"error"`
	}
	json.NewDecoder(resp.Body).Decode(&eb) //nolint:errcheck // best-effort detail
	if resp.StatusCode == http.StatusTooManyRequests {
		secs, _ := strconv.Atoi(resp.Header.Get("Retry-After"))
		if secs < 1 {
			secs = 1
		}
		return &RateLimitError{RetryAfter: time.Duration(secs) * time.Second, Msg: eb.Error}
	}
	return &APIError{Status: resp.StatusCode, Msg: eb.Error}
}

// Submit captures-and-ships a clone: it encodes job and posts it with
// the given FPSpy configuration.
func (c *Client) Submit(job *jobs.Job, cfg fpspy.Config) (*server.SubmitResponse, error) {
	blob, err := job.Encode()
	if err != nil {
		return nil, err
	}
	return c.SubmitBlob(job.Name, blob, cfg)
}

// SubmitBlob posts an already-encoded clone (e.g. read from a file
// written by fpctl capture).
func (c *Client) SubmitBlob(name string, blob []byte, cfg fpspy.Config) (*server.SubmitResponse, error) {
	var resp server.SubmitResponse
	err := c.do(http.MethodPost, "/v1/jobs",
		server.SubmitRequest{Name: name, Clone: blob, Config: cfg}, &resp)
	if err != nil {
		return nil, err
	}
	return &resp, nil
}

// Status fetches a job's lifecycle state.
func (c *Client) Status(id string) (*server.StatusResponse, error) {
	var st server.StatusResponse
	if err := c.do(http.MethodGet, "/v1/jobs/"+id, nil, &st); err != nil {
		return nil, err
	}
	return &st, nil
}

// Watch polls a job until it reaches a terminal state.
func (c *Client) Watch(id string, interval time.Duration) (*server.StatusResponse, error) {
	if interval <= 0 {
		interval = 100 * time.Millisecond
	}
	for {
		st, err := c.Status(id)
		if err != nil {
			return nil, err
		}
		if st.State == server.StateDone || st.State == server.StateFailed {
			return st, nil
		}
		time.Sleep(interval)
	}
}

// Result is a fully-read result stream.
type Result struct {
	// Lines are the raw monitor-log lines in stream order.
	Lines []string
	// Events is the parsed monitor log (trace.ParseMonitorLog over
	// Lines) — bit-identical to the in-process store's event list.
	Events []trace.MonitorEvent
	// Summary is the stream's closing record.
	Summary server.Summary
}

// StreamResult consumes a job's NDJSON result stream, invoking fn for
// every line as it arrives, and returns the final summary. The call
// blocks until the job settles server-side.
func (c *Client) StreamResult(id string, fn func(server.ResultLine) error) (*server.Summary, error) {
	req, err := http.NewRequest(http.MethodGet, c.BaseURL+"/v1/jobs/"+id+"/result", nil)
	if err != nil {
		return nil, err
	}
	if c.ID != "" {
		req.Header.Set(server.ClientHeader, c.ID)
	}
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if err := checkStatus(resp); err != nil {
		return nil, err
	}
	var summary *server.Summary
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64*1024), 16<<20)
	for sc.Scan() {
		if len(bytes.TrimSpace(sc.Bytes())) == 0 {
			continue
		}
		var line server.ResultLine
		if err := json.Unmarshal(sc.Bytes(), &line); err != nil {
			return nil, fmt.Errorf("client: bad result line: %w", err)
		}
		if fn != nil {
			if err := fn(line); err != nil {
				return nil, err
			}
		}
		if line.Type == "summary" && line.Summary != nil {
			summary = line.Summary
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if summary == nil {
		return nil, fmt.Errorf("client: result stream for %s ended without a summary", id)
	}
	return summary, nil
}

// Result reads a job's whole result: the monitor log (raw and parsed)
// plus the summary.
func (c *Client) Result(id string) (*Result, error) {
	var res Result
	sum, err := c.StreamResult(id, func(line server.ResultLine) error {
		if line.Type == "event" {
			res.Lines = append(res.Lines, line.Line)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	res.Summary = *sum
	res.Events, err = trace.ParseMonitorLog([]byte(strings.Join(res.Lines, "\n")))
	if err != nil {
		return nil, fmt.Errorf("client: monitor log re-parse: %w", err)
	}
	return &res, nil
}

// Figures lists the figure IDs the daemon can compute.
func (c *Client) Figures() ([]string, error) {
	var out struct {
		Figures []string `json:"figures"`
	}
	if err := c.do(http.MethodGet, "/v1/figures", nil, &out); err != nil {
		return nil, err
	}
	return out.Figures, nil
}

// Figure computes one aggregate study table on the daemon.
func (c *Client) Figure(id string) (*server.FigureResponse, error) {
	var fig server.FigureResponse
	if err := c.do(http.MethodGet, "/v1/figures?id="+id, nil, &fig); err != nil {
		return nil, err
	}
	return &fig, nil
}

// Metrics scrapes the daemon's /metrics snapshot.
func (c *Client) Metrics() (obs.Snapshot, error) {
	req, err := http.NewRequest(http.MethodGet, c.BaseURL+"/metrics", nil)
	if err != nil {
		return obs.Snapshot{}, err
	}
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return obs.Snapshot{}, err
	}
	defer resp.Body.Close()
	if err := checkStatus(resp); err != nil {
		return obs.Snapshot{}, err
	}
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		return obs.Snapshot{}, err
	}
	return obs.ParseSnapshot(buf.Bytes())
}
