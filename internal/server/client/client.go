// Package client is the typed Go client for the fpspyd HTTP/JSON API.
// cmd/fpctl, the end-to-end suite, and the benchmarks drive the daemon
// through it.
package client

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math/rand"
	"net/http"
	"strconv"
	"strings"
	"time"

	fpspy "repro"
	"repro/internal/analysis"
	"repro/internal/jobs"
	"repro/internal/obs"
	"repro/internal/server"
	"repro/internal/trace"
)

// Client talks to an fpspyd daemon — or, when BaseURL lists several
// peers comma-separated, to a cluster through whichever peer answers.
//
// Transient failures are absorbed, not surfaced: 429 and 503 responses
// (rate limiting, shed load, drain) are retried with capped exponential
// backoff honoring the daemon's Retry-After hint, and transport errors
// rotate to the next endpoint. Every blocking call has a Context
// variant; cancellation interrupts both requests and backoff sleeps.
type Client struct {
	// BaseURL is the daemon root, e.g. "http://127.0.0.1:8765".
	// A comma-separated list names fallback peers tried in order on
	// transport errors (the cluster-as-one-endpoint mode of fpctl).
	BaseURL string
	// ID identifies this client for rate limiting and accounting; it is
	// sent as the X-FPSpy-Client header when non-empty.
	ID string
	// HTTPClient overrides the transport (default http.DefaultClient).
	HTTPClient *http.Client
	// RetryMax bounds request attempts (default 8; negative disables
	// retries entirely, surfacing every 429/503 like the pre-cluster
	// client did).
	RetryMax int
	// RetryBaseWait seeds the exponential backoff (default 50ms).
	RetryBaseWait time.Duration
	// RetryMaxWait caps a single backoff sleep, including the daemon's
	// Retry-After hint (default 5s).
	RetryMaxWait time.Duration

	// endpoints caches the split BaseURL; cur is the sticky index of
	// the endpoint that last answered.
	endpoints []string
	cur       int
}

// New builds a client for the daemon (or comma-separated daemons) at
// baseURL.
func New(baseURL, id string) *Client {
	return &Client{BaseURL: strings.TrimRight(baseURL, "/"), ID: id}
}

// Endpoints returns the parsed endpoint list.
func (c *Client) Endpoints() []string {
	if c.endpoints == nil {
		for _, e := range strings.Split(c.BaseURL, ",") {
			if e = strings.TrimRight(strings.TrimSpace(e), "/"); e != "" {
				c.endpoints = append(c.endpoints, e)
			}
		}
	}
	return c.endpoints
}

// retryPolicy resolves the retry knobs with their defaults.
func (c *Client) retryPolicy() (max int, base, cap time.Duration) {
	max = c.RetryMax
	if max == 0 {
		max = 8
	}
	if max < 0 {
		max = 1 // one attempt, no retries
	}
	base = c.RetryBaseWait
	if base <= 0 {
		base = 50 * time.Millisecond
	}
	cap = c.RetryMaxWait
	if cap <= 0 {
		cap = 5 * time.Second
	}
	return max, base, cap
}

// backoffWait computes the sleep before retry attempt (1-based),
// honoring the server's Retry-After hint: the larger of hint and the
// jittered exponential term, capped at maxWait so a hostile or confused
// hint cannot park the client forever.
func backoffWait(attempt int, hint, base, maxWait time.Duration) time.Duration {
	d := base << uint(attempt-1)
	if d <= 0 || d > maxWait {
		d = maxWait
	}
	// Full jitter on the exponential term decorrelates clients that
	// were rejected together.
	d = d/2 + time.Duration(rand.Int63n(int64(d/2)+1))
	if hint > d {
		d = hint
	}
	if d > maxWait {
		d = maxWait
	}
	return d
}

// retryAfterHint extracts a response's Retry-After as a duration.
func retryAfterHint(err error) time.Duration {
	var rl *RateLimitError
	if errors.As(err, &rl) {
		return rl.RetryAfter
	}
	var ae *APIError
	if errors.As(err, &ae) {
		return ae.RetryAfter
	}
	return 0
}

// retryable reports whether an attempt error is transient: transport
// failures (connection refused mid-restart, dropped peer), 429 rate
// limiting, and 503 shed/drain responses all qualify; other API errors
// (bad submission, unknown job) are permanent.
func retryable(err error) bool {
	var ae *APIError
	if errors.As(err, &ae) {
		return ae.Status == http.StatusServiceUnavailable
	}
	var rl *RateLimitError
	if errors.As(err, &rl) {
		return true
	}
	// Anything that is not a typed daemon response is a transport-level
	// failure and worth retrying against the next endpoint.
	return err != nil
}

// APIError is a non-2xx daemon response.
type APIError struct {
	// Status is the HTTP status code.
	Status int
	// Msg is the daemon's error string.
	Msg string
	// RetryAfter is the daemon's Retry-After hint on 503 responses
	// (zero when absent).
	RetryAfter time.Duration
}

func (e *APIError) Error() string {
	return fmt.Sprintf("fpspyd: %s (HTTP %d)", e.Msg, e.Status)
}

// RateLimitError is a 429 rejection with the daemon's backoff hint.
type RateLimitError struct {
	// RetryAfter is the daemon's Retry-After value.
	RetryAfter time.Duration
	// Msg is the daemon's error string.
	Msg string
}

func (e *RateLimitError) Error() string {
	return fmt.Sprintf("fpspyd: %s (retry after %v)", e.Msg, e.RetryAfter)
}

func (c *Client) httpClient() *http.Client {
	if c.HTTPClient != nil {
		return c.HTTPClient
	}
	return http.DefaultClient
}

// do issues one request and decodes a JSON response into out (when
// non-nil), translating non-2xx statuses into typed errors.
func (c *Client) do(method, path string, body, out any) error {
	return c.doCtx(context.Background(), method, path, body, out)
}

func (c *Client) doCtx(ctx context.Context, method, path string, body, out any) error {
	var data []byte
	if body != nil {
		var err error
		if data, err = json.Marshal(body); err != nil {
			return fmt.Errorf("client: encode request: %w", err)
		}
	}
	resp, err := c.roundTrip(ctx, method, path, data, body != nil)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if out == nil {
		return nil
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

// roundTrip issues one logical request with the retry policy applied:
// transient failures back off exponentially (honoring Retry-After) and
// transport errors additionally rotate to the next endpoint. On success
// it returns a 2xx response whose body the caller owns. Requests are
// safe to retry by construction: GETs are idempotent and POST
// /v1/jobs is content-addressed, so a replayed submission attaches to
// the first one's cache entry instead of running a second pass.
func (c *Client) roundTrip(ctx context.Context, method, path string, body []byte, isJSON bool) (*http.Response, error) {
	maxAtt, base, maxWait := c.retryPolicy()
	eps := c.Endpoints()
	if len(eps) == 0 {
		return nil, errors.New("client: no endpoints configured")
	}
	for attempt := 1; ; attempt++ {
		ep := eps[c.cur%len(eps)]
		req, err := http.NewRequestWithContext(ctx, method, ep+path, bytes.NewReader(body))
		if err != nil {
			return nil, err
		}
		if isJSON {
			req.Header.Set("Content-Type", "application/json")
		}
		if c.ID != "" {
			req.Header.Set(server.ClientHeader, c.ID)
		}
		resp, err := c.httpClient().Do(req)
		if err == nil {
			if serr := checkStatus(resp); serr != nil {
				resp.Body.Close() //nolint:errcheck // error path
				err = serr
			} else {
				return resp, nil
			}
		} else {
			// A transport failure may mean this peer is gone; try the
			// next one on the retry.
			c.cur = (c.cur + 1) % len(eps)
		}
		if ctx.Err() != nil {
			return nil, ctx.Err()
		}
		if !retryable(err) || attempt >= maxAtt {
			return nil, err
		}
		t := time.NewTimer(backoffWait(attempt, retryAfterHint(err), base, maxWait))
		select {
		case <-t.C:
		case <-ctx.Done():
			t.Stop()
			return nil, ctx.Err()
		}
	}
}

// checkStatus converts an error response into the matching typed error,
// consuming the body.
func checkStatus(resp *http.Response) error {
	if resp.StatusCode >= 200 && resp.StatusCode < 300 {
		return nil
	}
	var eb struct {
		Error string `json:"error"`
	}
	json.NewDecoder(resp.Body).Decode(&eb) //nolint:errcheck // best-effort detail
	if resp.StatusCode == http.StatusTooManyRequests {
		secs, _ := strconv.Atoi(resp.Header.Get("Retry-After"))
		if secs < 1 {
			secs = 1
		}
		return &RateLimitError{RetryAfter: time.Duration(secs) * time.Second, Msg: eb.Error}
	}
	ae := &APIError{Status: resp.StatusCode, Msg: eb.Error}
	if resp.StatusCode == http.StatusServiceUnavailable {
		if secs, _ := strconv.Atoi(resp.Header.Get("Retry-After")); secs > 0 {
			ae.RetryAfter = time.Duration(secs) * time.Second
		}
	}
	return ae
}

// Submit captures-and-ships a clone: it encodes job and posts it with
// the given FPSpy configuration.
func (c *Client) Submit(job *jobs.Job, cfg fpspy.Config) (*server.SubmitResponse, error) {
	return c.SubmitContext(context.Background(), job, cfg)
}

// SubmitContext is Submit with deadline/cancellation plumbing: the
// context bounds the whole exchange, including backoff sleeps.
func (c *Client) SubmitContext(ctx context.Context, job *jobs.Job, cfg fpspy.Config) (*server.SubmitResponse, error) {
	blob, err := job.Encode()
	if err != nil {
		return nil, err
	}
	return c.SubmitBlobContext(ctx, job.Name, blob, cfg)
}

// SubmitBlob posts an already-encoded clone (e.g. read from a file
// written by fpctl capture).
func (c *Client) SubmitBlob(name string, blob []byte, cfg fpspy.Config) (*server.SubmitResponse, error) {
	return c.SubmitBlobContext(context.Background(), name, blob, cfg)
}

// SubmitBlobContext is SubmitBlob under a context.
func (c *Client) SubmitBlobContext(ctx context.Context, name string, blob []byte, cfg fpspy.Config) (*server.SubmitResponse, error) {
	var resp server.SubmitResponse
	err := c.doCtx(ctx, http.MethodPost, "/v1/jobs",
		server.SubmitRequest{Name: name, Clone: blob, Config: cfg}, &resp)
	if err != nil {
		return nil, err
	}
	return &resp, nil
}

// SubmitShadow posts a clone to /v1/shadowjobs: the pass runs with the
// shadow-precision channel attached and the result stream carries the
// ranked root-cause attribution. prec 0 defers to cfg.ShadowPrec, then
// the server default.
func (c *Client) SubmitShadow(job *jobs.Job, cfg fpspy.Config, prec uint64) (*server.SubmitResponse, error) {
	return c.SubmitShadowContext(context.Background(), job, cfg, prec)
}

// SubmitShadowContext is SubmitShadow under a context.
func (c *Client) SubmitShadowContext(ctx context.Context, job *jobs.Job, cfg fpspy.Config, prec uint64) (*server.SubmitResponse, error) {
	blob, err := job.Encode()
	if err != nil {
		return nil, err
	}
	return c.SubmitShadowBlobContext(ctx, job.Name, blob, cfg, prec)
}

// SubmitShadowBlobContext posts an already-encoded clone as a shadow job.
func (c *Client) SubmitShadowBlobContext(ctx context.Context, name string, blob []byte, cfg fpspy.Config, prec uint64) (*server.SubmitResponse, error) {
	var resp server.SubmitResponse
	err := c.doCtx(ctx, http.MethodPost, "/v1/shadowjobs",
		server.ShadowSubmitRequest{Name: name, Clone: blob, Config: cfg, Prec: prec}, &resp)
	if err != nil {
		return nil, err
	}
	return &resp, nil
}

// Status fetches a job's lifecycle state.
func (c *Client) Status(id string) (*server.StatusResponse, error) {
	return c.StatusContext(context.Background(), id)
}

// StatusContext is Status under a context.
func (c *Client) StatusContext(ctx context.Context, id string) (*server.StatusResponse, error) {
	var st server.StatusResponse
	if err := c.doCtx(ctx, http.MethodGet, "/v1/jobs/"+id, nil, &st); err != nil {
		return nil, err
	}
	return &st, nil
}

// Watch polls a job until it reaches a terminal state.
func (c *Client) Watch(id string, interval time.Duration) (*server.StatusResponse, error) {
	return c.WatchContext(context.Background(), id, interval)
}

// WatchContext polls a job until it reaches a terminal state, the
// context is done, or a poll fails permanently. Transient poll failures
// (a daemon restarting underneath the watch, rate limiting) are
// absorbed by the request retry policy rather than surfaced.
func (c *Client) WatchContext(ctx context.Context, id string, interval time.Duration) (*server.StatusResponse, error) {
	if interval <= 0 {
		interval = 100 * time.Millisecond
	}
	for {
		st, err := c.StatusContext(ctx, id)
		if err != nil {
			return nil, err
		}
		if st.State == server.StateDone || st.State == server.StateFailed {
			return st, nil
		}
		t := time.NewTimer(interval)
		select {
		case <-t.C:
		case <-ctx.Done():
			t.Stop()
			return nil, ctx.Err()
		}
	}
}

// Result is a fully-read result stream.
type Result struct {
	// Lines are the raw monitor-log lines in stream order.
	Lines []string
	// Events is the parsed monitor log (trace.ParseMonitorLog over
	// Lines) — bit-identical to the in-process store's event list.
	Events []trace.MonitorEvent
	// Sites is the ranked root-cause attribution (shadow jobs only),
	// in stream (rank) order.
	Sites []analysis.RootCauseSite
	// Summary is the stream's closing record.
	Summary server.Summary
}

// StreamResult consumes a job's NDJSON result stream, invoking fn for
// every line as it arrives, and returns the final summary. The call
// blocks until the job settles server-side.
func (c *Client) StreamResult(id string, fn func(server.ResultLine) error) (*server.Summary, error) {
	return c.StreamResultContext(context.Background(), id, fn)
}

// StreamResultContext is StreamResult under a context. Retries cover
// establishing the stream; once bytes flow, a broken stream surfaces as
// an error (the caller re-issues, and the settled job replays from
// cache).
func (c *Client) StreamResultContext(ctx context.Context, id string, fn func(server.ResultLine) error) (*server.Summary, error) {
	resp, err := c.roundTrip(ctx, http.MethodGet, "/v1/jobs/"+id+"/result", nil, false)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	var summary *server.Summary
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64*1024), 16<<20)
	for sc.Scan() {
		if len(bytes.TrimSpace(sc.Bytes())) == 0 {
			continue
		}
		var line server.ResultLine
		if err := json.Unmarshal(sc.Bytes(), &line); err != nil {
			return nil, fmt.Errorf("client: bad result line: %w", err)
		}
		if fn != nil {
			if err := fn(line); err != nil {
				return nil, err
			}
		}
		if line.Type == "summary" && line.Summary != nil {
			summary = line.Summary
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if summary == nil {
		return nil, fmt.Errorf("client: result stream for %s ended without a summary", id)
	}
	return summary, nil
}

// Result reads a job's whole result: the monitor log (raw and parsed)
// plus the summary.
func (c *Client) Result(id string) (*Result, error) {
	var res Result
	sum, err := c.StreamResult(id, func(line server.ResultLine) error {
		switch {
		case line.Type == "event":
			res.Lines = append(res.Lines, line.Line)
		case line.Type == "site" && line.Site != nil:
			res.Sites = append(res.Sites, *line.Site)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	res.Summary = *sum
	res.Events, err = trace.ParseMonitorLog([]byte(strings.Join(res.Lines, "\n")))
	if err != nil {
		return nil, fmt.Errorf("client: monitor log re-parse: %w", err)
	}
	return &res, nil
}

// Figures lists the figure IDs the daemon can compute.
func (c *Client) Figures() ([]string, error) {
	var out struct {
		Figures []string `json:"figures"`
	}
	if err := c.do(http.MethodGet, "/v1/figures", nil, &out); err != nil {
		return nil, err
	}
	return out.Figures, nil
}

// Figure computes one aggregate study table on the daemon.
func (c *Client) Figure(id string) (*server.FigureResponse, error) {
	var fig server.FigureResponse
	if err := c.do(http.MethodGet, "/v1/figures?id="+id, nil, &fig); err != nil {
		return nil, err
	}
	return &fig, nil
}

// Metrics scrapes the daemon's /metrics snapshot.
func (c *Client) Metrics() (obs.Snapshot, error) {
	resp, err := c.roundTrip(context.Background(), http.MethodGet, "/metrics", nil, false)
	if err != nil {
		return obs.Snapshot{}, err
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		return obs.Snapshot{}, err
	}
	return obs.ParseSnapshot(buf.Bytes())
}
