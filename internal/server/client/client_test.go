package client

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	fpspy "repro"
	"repro/internal/server"
)

// fastRetry returns a client pointed at url with sub-millisecond
// backoff so tests exercise the retry loop without real sleeps.
func fastRetry(url string) *Client {
	return &Client{
		BaseURL:       url,
		ID:            "test",
		RetryBaseWait: 200 * time.Microsecond,
		RetryMaxWait:  2 * time.Millisecond,
	}
}

func TestRetryAbsorbs429(t *testing.T) {
	var calls atomic.Int32
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) <= 2 {
			w.Header().Set("Retry-After", "1")
			w.WriteHeader(http.StatusTooManyRequests)
			w.Write([]byte(`{"error":"rate limited"}`)) //nolint:errcheck // test
			return
		}
		w.Write([]byte(`{"id":"job-000001","state":"queued"}`)) //nolint:errcheck // test
	}))
	defer srv.Close()
	c := fastRetry(srv.URL)
	resp, err := c.SubmitBlob("x", []byte("clone"), fpspy.Config{})
	if err != nil {
		t.Fatalf("SubmitBlob after 429s: %v", err)
	}
	if resp.ID != "job-000001" {
		t.Fatalf("resp.ID = %q", resp.ID)
	}
	if n := calls.Load(); n != 3 {
		t.Fatalf("expected 3 attempts, saw %d", n)
	}
}

func TestRetryAbsorbs503Draining(t *testing.T) {
	var calls atomic.Int32
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) == 1 {
			w.Header().Set("Retry-After", "1")
			w.WriteHeader(http.StatusServiceUnavailable)
			w.Write([]byte(`{"error":"draining"}`)) //nolint:errcheck // test
			return
		}
		w.Write([]byte(`{"id":"job-000002","state":"done","cacheHit":true}`)) //nolint:errcheck // test
	}))
	defer srv.Close()
	c := fastRetry(srv.URL)
	st, err := c.Status("job-000002")
	if err != nil {
		t.Fatalf("Status through 503: %v", err)
	}
	if st.State != server.StateDone {
		t.Fatalf("state = %q", st.State)
	}
	if n := calls.Load(); n != 2 {
		t.Fatalf("expected 2 attempts, saw %d", n)
	}
}

func TestPermanentErrorNotRetried(t *testing.T) {
	var calls atomic.Int32
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		w.WriteHeader(http.StatusBadRequest)
		w.Write([]byte(`{"error":"bad clone"}`)) //nolint:errcheck // test
	}))
	defer srv.Close()
	c := fastRetry(srv.URL)
	_, err := c.SubmitBlob("x", []byte("clone"), fpspy.Config{})
	var ae *APIError
	if !errors.As(err, &ae) || ae.Status != http.StatusBadRequest {
		t.Fatalf("want APIError 400, got %v", err)
	}
	if n := calls.Load(); n != 1 {
		t.Fatalf("400 must not be retried; saw %d attempts", n)
	}
}

func TestRetryDisabled(t *testing.T) {
	var calls atomic.Int32
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		w.Header().Set("Retry-After", "1")
		w.WriteHeader(http.StatusTooManyRequests)
	}))
	defer srv.Close()
	c := fastRetry(srv.URL)
	c.RetryMax = -1
	_, err := c.Status("job-000001")
	var rl *RateLimitError
	if !errors.As(err, &rl) {
		t.Fatalf("want RateLimitError surfaced, got %v", err)
	}
	if n := calls.Load(); n != 1 {
		t.Fatalf("RetryMax<0 must not retry; saw %d attempts", n)
	}
}

func TestContextCancelsBackoff(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Retry-After", "1")
		w.WriteHeader(http.StatusTooManyRequests)
	}))
	defer srv.Close()
	// Large max wait so the backoff would honor the 1s hint; the
	// context must cut it short.
	c := &Client{BaseURL: srv.URL, RetryMaxWait: 10 * time.Second}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := c.StatusContext(ctx, "job-000001")
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("want DeadlineExceeded, got %v", err)
	}
	if el := time.Since(start); el > 2*time.Second {
		t.Fatalf("cancellation took %v; backoff sleep was not interrupted", el)
	}
}

func TestEndpointFailover(t *testing.T) {
	live := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte(`{"id":"job-000003","state":"queued"}`)) //nolint:errcheck // test
	}))
	defer live.Close()
	dead := httptest.NewServer(http.NotFoundHandler())
	deadURL := dead.URL
	dead.Close() // now connection-refused
	c := fastRetry(deadURL + ", " + live.URL)
	if got := c.Endpoints(); len(got) != 2 {
		t.Fatalf("Endpoints() = %v", got)
	}
	resp, err := c.SubmitBlob("x", []byte("clone"), fpspy.Config{})
	if err != nil {
		t.Fatalf("SubmitBlob with dead first peer: %v", err)
	}
	if resp.ID != "job-000003" {
		t.Fatalf("resp.ID = %q", resp.ID)
	}
	// The client sticks to the endpoint that answered.
	if ep := c.Endpoints()[c.cur%len(c.Endpoints())]; ep != strings.TrimRight(live.URL, "/") {
		t.Fatalf("sticky endpoint = %q, want %q", ep, live.URL)
	}
}

func TestBackoffWaitHonorsHintAndCap(t *testing.T) {
	base, maxWait := 10*time.Millisecond, 100*time.Millisecond
	for i := 0; i < 50; i++ {
		// The server hint floors the wait when it fits under the cap.
		if w := backoffWait(1, 50*time.Millisecond, base, maxWait); w < 50*time.Millisecond || w > maxWait {
			t.Fatalf("hinted wait %v outside [50ms, %v]", w, maxWait)
		}
		// A hostile hint is clamped to the cap.
		if w := backoffWait(1, time.Hour, base, maxWait); w != maxWait {
			t.Fatalf("hour-long hint produced %v, want cap %v", w, maxWait)
		}
		// Deep attempts saturate at the cap even with shift overflow.
		if w := backoffWait(80, 0, base, maxWait); w <= 0 || w > maxWait {
			t.Fatalf("attempt-80 wait %v outside (0, %v]", w, maxWait)
		}
	}
}
