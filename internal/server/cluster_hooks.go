package server

// The cluster surface: the small set of exported hooks internal/cluster
// builds its peer fabric on. Everything here reuses the daemon's
// existing job table, content-addressed cache, and singleflight
// discipline — a peer-computed outcome enters through the same settle
// path a local pass does, so cluster-wide dedup inherits the
// single-node invariants instead of re-implementing them.

import (
	"context"
	"errors"
	"fmt"
	"time"

	fpspy "repro"
)

// SubmitResult is the exported view of an admitted submission.
type SubmitResult struct {
	// ID is the daemon-assigned job ID.
	ID string
	// State is the job's state at admission (done/failed on a settled
	// cache hit, queued otherwise).
	State State
	// CacheHit reports whether the submission attached to an existing
	// cache entry instead of scheduling a new pass.
	CacheHit bool
	// Key is the submission's content address.
	Key string
}

// Submit admits one submission programmatically — the same path the
// HTTP handler takes, minus rate limiting (callers gate with Allow).
func (s *Server) Submit(client, name string, blob []byte, cfg fpspy.Config) (SubmitResult, error) {
	rec, err := s.submit(client, name, blob, cfg)
	if err != nil {
		return SubmitResult{}, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return SubmitResult{ID: rec.id, State: rec.state, CacheHit: rec.cacheHit, Key: rec.key}, nil
}

// Allow consults the per-client rate limiter: callers that bypass the
// HTTP submission handler (the cluster router) apply the same admission
// policy. The returned duration is the suggested wait on denial.
func (s *Server) Allow(client string) (bool, time.Duration) {
	return s.lim.allow(client)
}

// WaitOutcome blocks until the job's pass settles and returns its
// outcome (or the pass error). It unblocks early on context
// cancellation and on a drain that strands the job unstarted.
func (s *Server) WaitOutcome(ctx context.Context, id string) (*Outcome, error) {
	s.mu.Lock()
	rec, ok := s.jobs[id]
	s.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("server: unknown job %q", id)
	}
	select {
	case <-rec.entry.done:
	case <-ctx.Done():
		return nil, ctx.Err()
	case <-s.stopc:
		s.mu.Lock()
		settled := rec.entry.settled
		s.mu.Unlock()
		if !settled {
			return nil, fmt.Errorf("server: job %s interrupted by drain", id)
		}
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if rec.entry.err != nil {
		return nil, rec.entry.err
	}
	return rec.entry.out, nil
}

// JobState reports a job's lifecycle state.
func (s *Server) JobState(id string) (State, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	rec, ok := s.jobs[id]
	if !ok {
		return "", fmt.Errorf("server: unknown job %q", id)
	}
	return rec.state, nil
}

// CachedOutcome reports whether key has a settled cache entry, and its
// outcome or error message when it does. Peers use it for the
// cache-everywhere lookup: a clone studied anywhere is servable here.
func (s *Server) CachedOutcome(key string) (out *Outcome, errMsg string, ok bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	e, exists := s.cache[key]
	if !exists || !e.settled {
		return nil, "", false
	}
	if e.err != nil {
		return nil, e.err.Error(), true
	}
	return e.out, "", true
}

// InstallOutcome publishes an externally computed outcome (a peer's
// pass, or a stolen job's result) under key. The first settle wins: an
// already-settled entry is left untouched and false is returned. An
// unsettled entry — including one whose primary still waits in a shard
// queue — settles immediately, finalizing its waiters; the dispatcher
// skips settled primaries, so the local pass never double-runs. With no
// entry present, a settled one is created so future submissions hit.
func (s *Server) InstallOutcome(key string, out *Outcome, errMsg string) bool {
	var err error
	if errMsg != "" {
		err = errors.New(errMsg)
	}
	s.mu.Lock()
	e, exists := s.cache[key]
	if exists && e.settled {
		s.mu.Unlock()
		return false
	}
	if !exists {
		e = &cacheEntry{key: key, done: make(chan struct{})}
		s.cache[key] = e
	}
	s.mu.Unlock()
	s.settle(e, out, err)
	return true
}

// StolenJob is one queued-but-unstarted primary handed to a peer by
// StealPending. The stealer replays the clone and returns the outcome
// via InstallOutcome on the victim.
type StolenJob struct {
	// ID, Name, and Client identify the job on the victim.
	ID, Name, Client string
	// Key is the content address the outcome must settle under.
	Key string
	// Blob is the encoded clone exactly as submitted.
	Blob []byte
	// Config is the FPSpy configuration to replay under.
	Config fpspy.Config
}

// StealPending removes up to max queued-but-unstarted primaries from
// the shard queues for execution elsewhere. The cache entries stay
// registered (waiters keep waiting); each stolen entry settles when the
// stealer's outcome arrives via InstallOutcome, or re-enters the queue
// via RequeuePending when the caller's lease on it expires.
func (s *Server) StealPending(max int) []StolenJob {
	if max <= 0 {
		return nil
	}
	var out []StolenJob
	s.mu.Lock()
	defer s.mu.Unlock()
	sv := s.obs.ServerMetricsOrNil()
	for _, q := range s.shards {
	drain:
		for len(out) < max {
			select {
			case rec := <-q:
				if sv != nil {
					sv.QueueDepth.Add(-1)
				}
				if rec.entry.settled {
					continue // already finalized; nothing to hand out
				}
				rec.entry.stolen = true
				out = append(out, StolenJob{
					ID: rec.id, Name: rec.name, Client: rec.client,
					Key: rec.key, Blob: rec.blob, Config: rec.cfg,
				})
			default:
				break drain
			}
		}
		if len(out) >= max {
			break
		}
	}
	return out
}

// RequeuePending re-admits a stolen job whose stealer never returned:
// the primary goes back to its shard queue for local execution. It
// reports whether a re-enqueue happened (false when the entry settled
// in the meantime, is not stolen, or the queue is full — in the last
// case the job stays stolen and the caller retries later).
func (s *Server) RequeuePending(key string) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.cache[key]
	if !ok || e.settled || !e.stolen || e.primary == nil {
		return false
	}
	select {
	case s.shardOf(key) <- e.primary:
		e.stolen = false
		if sv := s.obs.ServerMetricsOrNil(); sv != nil {
			sv.QueueDepth.Add(1)
		}
		return true
	default:
		return false
	}
}

// QueueLen is the number of jobs currently waiting in shard queues —
// the load signal gossiped to peers for work stealing.
func (s *Server) QueueLen() int {
	n := 0
	for _, q := range s.shards {
		n += len(q)
	}
	return n
}
