package server_test

// End-to-end shadow-job flow through the daemon: a clone posted to
// /v1/shadowjobs must run with the shadow-precision channel attached,
// stream its ranked attribution sites before the summary, carry the
// report scalars in the summary, and land in the content-addressed
// cache under a key distinct from the plain job over the same clone.

import (
	"testing"

	fpspy "repro"
	"repro/internal/analysis"
	"repro/internal/server"
	"repro/internal/server/client"
)

// collectShadowResult streams one result and splits it into the parts a
// shadow client consumes.
func collectShadowResult(t *testing.T, c *client.Client, id string) ([]analysis.RootCauseSite, *server.Summary) {
	t.Helper()
	var sites []analysis.RootCauseSite
	sum, err := c.StreamResult(id, func(line server.ResultLine) error {
		if line.Type == "site" && line.Site != nil {
			sites = append(sites, *line.Site)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return sites, sum
}

func TestE2EShadowJobStreamsRankedSites(t *testing.T) {
	_, ts := newDaemon(t, server.Options{Workers: 2})
	c := client.New(ts.URL, "shadow-client")

	// Four inexact divides at one address: exactly one attributable site.
	job := e2eJob(t, "shadow-guest", 4, nil)
	cfg := fpspy.Config{Mode: fpspy.ModeIndividual}
	resp, err := c.SubmitShadow(job, cfg, 113)
	if err != nil {
		t.Fatal(err)
	}
	if resp.CacheHit {
		t.Fatal("first shadow submission claimed a cache hit")
	}
	sites, sum := collectShadowResult(t, c, resp.ID)

	if sum.ShadowPrec != 113 {
		t.Fatalf("summary prec %d, want 113", sum.ShadowPrec)
	}
	if len(sites) == 0 {
		t.Fatal("no site lines in the result stream")
	}
	if sum.ShadowSites != len(sites) {
		t.Fatalf("summary says %d sites, stream carried %d", sum.ShadowSites, len(sites))
	}
	if sum.ShadowOps == 0 {
		t.Fatal("summary shadowOps = 0 after a shadow pass")
	}
	if sites[0].Op != "divsd" || sites[0].LocalUlps <= 0 {
		t.Fatalf("rank-1 site %+v, want the inexact divsd with positive local error", sites[0])
	}
	for i := 1; i < len(sites); i++ {
		if sites[i].LocalUlps > sites[i-1].LocalUlps {
			t.Fatalf("site stream not in rank order: %v after %v", sites[i].LocalUlps, sites[i-1].LocalUlps)
		}
	}

	// The identical shadow resubmission is absorbed by the cache and
	// replays the same ranked table.
	resp2, err := c.SubmitShadow(job, cfg, 113)
	if err != nil {
		t.Fatal(err)
	}
	if !resp2.CacheHit {
		t.Fatal("identical shadow resubmission missed the cache")
	}
	sites2, sum2 := collectShadowResult(t, c, resp2.ID)
	if len(sites2) != len(sites) {
		t.Fatalf("cached replay carried %d sites, want %d", len(sites2), len(sites))
	}
	for i := range sites {
		if sites[i] != sites2[i] {
			t.Fatalf("cached site %d differs:\nfirst:  %+v\ncached: %+v", i, sites[i], sites2[i])
		}
	}
	if sum2.ShadowLocalUlps != sum.ShadowLocalUlps || sum2.ShadowMaxUlps != sum.ShadowMaxUlps {
		t.Fatalf("cached summary scalars differ: %+v vs %+v", sum2, sum)
	}

	// A plain submission of the same clone is a different cache entry —
	// no site lines, no shadow scalars — and a different precision is a
	// third entry.
	plain, err := c.Submit(job, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if plain.CacheHit {
		t.Fatal("plain job hit the shadow job's cache entry")
	}
	psites, psum := collectShadowResult(t, c, plain.ID)
	if len(psites) != 0 || psum.ShadowPrec != 0 || psum.ShadowSites != 0 {
		t.Fatalf("plain job leaked shadow output: %d sites, summary %+v", len(psites), psum)
	}
	other, err := c.SubmitShadow(job, cfg, 256)
	if err != nil {
		t.Fatal(err)
	}
	if other.CacheHit {
		t.Fatal("prec-256 shadow job hit the prec-113 cache entry")
	}

	// Default resolution: prec 0 normalizes to DefaultShadowPrec, so an
	// explicit-113 resubmission of a default submission is a cache hit.
	def, err := c.SubmitShadow(job, cfg, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !def.CacheHit {
		t.Fatal("default-precision shadow job missed the explicit-113 cache entry")
	}
}

// TestE2EShadowJobRejectsBadPrecision: out-of-range precisions are a
// client error, not a queued failure.
func TestE2EShadowJobRejectsBadPrecision(t *testing.T) {
	_, ts := newDaemon(t, server.Options{Workers: 1})
	c := client.New(ts.URL, "shadow-bad")
	job := e2eJob(t, "shadow-bad", 1, nil)
	for _, prec := range []uint64{1, 23, fpspy.MaxShadowPrec + 1} {
		if _, err := c.SubmitShadow(job, fpspy.Config{Mode: fpspy.ModeIndividual}, prec); err == nil {
			t.Errorf("prec %d accepted, want rejection", prec)
		}
	}
}
