package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"net"
	"net/http"
	"sort"
	"time"

	fpspy "repro"
	"repro/internal/analysis"
	"repro/internal/obs"
	"repro/internal/study"
)

// Wire types of the fpspyd HTTP/JSON API. The client package and fpctl
// share them.

// SubmitRequest is the POST /v1/jobs body. Clone is the jobs.Encode
// gob, which encoding/json carries as base64.
type SubmitRequest struct {
	// Name optionally overrides the clone's submission name.
	Name string `json:"name,omitempty"`
	// Clone is the gob-encoded submission clone (base64 on the wire).
	Clone []byte `json:"clone"`
	// Config is the FPSpy configuration to replay under.
	Config fpspy.Config `json:"config"`
}

// DefaultShadowPrec is the shadow precision a /v1/shadowjobs submission
// runs at when it names none: binary128's 113-bit mantissa, enough to
// separate local from propagated error for any binary64 guest while
// staying cheap to evaluate.
const DefaultShadowPrec = 113

// ShadowSubmitRequest is the POST /v1/shadowjobs body: a job submission
// that runs with the shadow-precision channel attached and streams the
// ranked root-cause attribution alongside the usual result.
type ShadowSubmitRequest struct {
	// Name optionally overrides the clone's submission name.
	Name string `json:"name,omitempty"`
	// Clone is the gob-encoded submission clone (base64 on the wire).
	Clone []byte `json:"clone"`
	// Config is the FPSpy configuration to replay under.
	Config fpspy.Config `json:"config"`
	// Prec is the shadow precision in mantissa bits; 0 means
	// Config.ShadowPrec, or DefaultShadowPrec if that is also 0.
	Prec uint64 `json:"prec,omitempty"`
}

// SubmitResponse answers POST /v1/jobs.
type SubmitResponse struct {
	ID       string `json:"id"`
	State    State  `json:"state"`
	CacheHit bool   `json:"cacheHit"`
}

// StatusResponse answers GET /v1/jobs/{id}.
type StatusResponse struct {
	ID       string `json:"id"`
	Name     string `json:"name"`
	Client   string `json:"client"`
	State    State  `json:"state"`
	CacheHit bool   `json:"cacheHit"`
	Key      string `json:"key"`
	Error    string `json:"error,omitempty"`
}

// ResultLine is one NDJSON line of a streamed result: every monitor-log
// event in order, then (for shadow jobs) the ranked attribution sites,
// then exactly one summary line.
type ResultLine struct {
	// Type is "event", "site", or "summary".
	Type string `json:"type"`
	// Line is the monitor-log line in trace.ParseMonitorLog format
	// (event lines only).
	Line string `json:"line,omitempty"`
	// Site is one attributed instruction site, in rank order (site
	// lines only; shadow jobs).
	Site *analysis.RootCauseSite `json:"site,omitempty"`
	// Summary closes the stream (summary line only).
	Summary *Summary `json:"summary,omitempty"`
}

// Summary is the scalar tail of a result stream.
type Summary struct {
	ID         string `json:"id"`
	Name       string `json:"name"`
	CacheHit   bool   `json:"cacheHit"`
	Steps      uint64 `json:"steps"`
	WallCycles uint64 `json:"wallCycles"`
	ExitCode   int    `json:"exitCode"`
	EventSet   uint64 `json:"eventSet"`
	Records    int    `json:"records"`
	Aggregates int    `json:"aggregates"`
	Events     int    `json:"events"`
	// AccumFingerprint is the accumulation-tree fingerprint for probe
	// jobs (see Outcome.AccumFingerprint); empty for other workloads.
	AccumFingerprint string `json:"accumFingerprint,omitempty"`
	// Shadow* summarize the attribution report for shadow jobs
	// (all zero for ordinary jobs): the precision the pass ran at, the
	// attributed site count, the 99%-error-coverage prefix length, the
	// shadow-executed op count, the total introduced error in fractional
	// ULPs, and the largest integer-ULP divergence observed.
	ShadowPrec      uint64  `json:"shadowPrec,omitempty"`
	ShadowSites     int     `json:"shadowSites,omitempty"`
	ShadowSites99   int     `json:"shadowSites99,omitempty"`
	ShadowOps       uint64  `json:"shadowOps,omitempty"`
	ShadowLocalUlps float64 `json:"shadowLocalUlps,omitempty"`
	ShadowMaxUlps   uint64  `json:"shadowMaxUlps,omitempty"`
}

// FigureResponse answers GET /v1/figures?id=N.
type FigureResponse struct {
	ID     string     `json:"id"`
	Title  string     `json:"title"`
	Header []string   `json:"header"`
	Rows   [][]string `json:"rows"`
	Notes  []string   `json:"notes,omitempty"`
}

// errorBody is the JSON error envelope every non-2xx response carries.
type errorBody struct {
	Error string `json:"error"`
}

// maxSubmitBytes bounds a submission body (program image + env). Large
// enough for any workload clone in the suite, small enough that a
// hostile client cannot balloon the daemon.
const maxSubmitBytes = 64 << 20

func (s *Server) buildMux() {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	mux.HandleFunc("POST /v1/shadowjobs", s.handleShadowSubmit)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleStatus)
	mux.HandleFunc("GET /v1/jobs/{id}/result", s.handleResult)
	mux.HandleFunc("GET /v1/figures", s.handleFigures)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("GET /healthz", s.handleHealth)
	s.mux = mux
}

// ServeHTTP makes the daemon mountable anywhere an http.Handler goes.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

// ClientHeader identifies the submitting client for rate limiting and
// accounting. Absent the header, the client is keyed by remote host.
const ClientHeader = "X-FPSpy-Client"

func clientID(r *http.Request) string {
	if c := r.Header.Get(ClientHeader); c != "" {
		return c
	}
	host, _, err := net.SplitHostPort(r.RemoteAddr)
	if err != nil {
		return r.RemoteAddr
	}
	return host
}

// writeJSON emits one JSON body with the given status.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v) //nolint:errcheck // client gone; nothing to do
}

func writeError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, errorBody{Error: fmt.Sprintf(format, args...)})
}

// retryAfterSeconds renders a wait as a whole-second Retry-After value,
// at least 1 so clients never busy-spin.
func retryAfterSeconds(wait time.Duration) string {
	secs := int(math.Ceil(wait.Seconds()))
	if secs < 1 {
		secs = 1
	}
	return fmt.Sprintf("%d", secs)
}

// observeNS records a request latency when observability is on.
func (s *Server) observeNS(h *obs.Histogram, start time.Time) {
	if s.obs != nil {
		h.Observe(uint64(time.Since(start).Nanoseconds()))
	}
}

// admitClient applies per-client rate limiting; on rejection the 429
// (with Retry-After) has been written and ok is false.
func (s *Server) admitClient(w http.ResponseWriter, r *http.Request) (client string, ok bool) {
	client = clientID(r)
	if ok, wait := s.lim.allow(client); !ok {
		if sv := s.obs.ServerMetricsOrNil(); sv != nil {
			sv.RateLimited.Inc()
		}
		w.Header().Set("Retry-After", retryAfterSeconds(wait))
		writeError(w, http.StatusTooManyRequests, "client %s rate limited", client)
		return client, false
	}
	return client, true
}

// acceptSubmission runs the shared submit tail — enqueue (or cache-hit)
// and respond — for the plain and shadow submit handlers.
func (s *Server) acceptSubmission(w http.ResponseWriter, client, name string, clone []byte, cfg fpspy.Config) {
	rec, err := s.submit(client, name, clone, cfg)
	switch {
	case errors.Is(err, ErrDraining), errors.Is(err, ErrQueueFull):
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusServiceUnavailable, "%v", err)
		return
	case err != nil:
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}

	s.mu.Lock()
	resp := SubmitResponse{ID: rec.id, State: rec.state, CacheHit: rec.cacheHit}
	s.mu.Unlock()
	status := http.StatusAccepted
	if resp.State == StateDone || resp.State == StateFailed {
		status = http.StatusOK
	}
	writeJSON(w, status, resp)
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	defer func() {
		if sv := s.obs.ServerMetricsOrNil(); sv != nil {
			s.observeNS(&sv.SubmitNS, start)
		}
	}()

	client, ok := s.admitClient(w, r)
	if !ok {
		return
	}

	var req SubmitRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxSubmitBytes))
	if err := dec.Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "bad submission body: %v", err)
		return
	}
	s.acceptSubmission(w, client, req.Name, req.Clone, req.Config)
}

// handleShadowSubmit accepts POST /v1/shadowjobs: the same submission
// flow as /v1/jobs, with the shadow-precision channel forced on. The
// precision is folded into the config before the cache key is computed,
// so a shadow job and the plain job over the same clone are distinct
// cache entries (and distinct precisions are too), while resubmitting
// the same shadow job — to any peer in a cluster — hits the cache.
func (s *Server) handleShadowSubmit(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	defer func() {
		if sv := s.obs.ServerMetricsOrNil(); sv != nil {
			s.observeNS(&sv.SubmitNS, start)
		}
	}()

	client, ok := s.admitClient(w, r)
	if !ok {
		return
	}

	var req ShadowSubmitRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxSubmitBytes))
	if err := dec.Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "bad submission body: %v", err)
		return
	}
	cfg, err := NormalizeShadowConfig(req.Config, req.Prec)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	s.acceptSubmission(w, client, req.Name, req.Clone, cfg)
}

// NormalizeShadowConfig resolves a shadow submission's effective config:
// an explicit request precision wins, then Config.ShadowPrec, then
// DefaultShadowPrec. Normalizing before the cache key is computed is
// what makes "default precision" and "explicit 113" the same cache
// entry. The cluster router shares this so routing and execution agree.
func NormalizeShadowConfig(cfg fpspy.Config, prec uint64) (fpspy.Config, error) {
	if prec != 0 {
		cfg.ShadowPrec = prec
	}
	if cfg.ShadowPrec == 0 {
		cfg.ShadowPrec = DefaultShadowPrec
	}
	if cfg.ShadowPrec < fpspy.MinShadowPrec || cfg.ShadowPrec > fpspy.MaxShadowPrec {
		return cfg, fmt.Errorf("shadow precision %d out of range [%d,%d]",
			cfg.ShadowPrec, fpspy.MinShadowPrec, fpspy.MaxShadowPrec)
	}
	return cfg, nil
}

// lookup fetches a job record and a snapshot of its mutable state.
func (s *Server) lookup(id string) (*jobRec, StatusResponse, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	rec, ok := s.jobs[id]
	if !ok {
		return nil, StatusResponse{}, false
	}
	return rec, StatusResponse{
		ID: rec.id, Name: rec.name, Client: rec.client, State: rec.state,
		CacheHit: rec.cacheHit, Key: rec.key, Error: rec.errs,
	}, true
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	defer func() {
		if sv := s.obs.ServerMetricsOrNil(); sv != nil {
			s.observeNS(&sv.StatusNS, start)
		}
	}()
	_, st, ok := s.lookup(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "unknown job %q", r.PathValue("id"))
		return
	}
	writeJSON(w, http.StatusOK, st)
}

func (s *Server) handleResult(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	defer func() {
		if sv := s.obs.ServerMetricsOrNil(); sv != nil {
			s.observeNS(&sv.ResultNS, start)
		}
	}()
	rec, _, ok := s.lookup(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "unknown job %q", r.PathValue("id"))
		return
	}

	// Block until the pass settles. A drain can strand a queued job
	// (its clone is persisted for the next daemon incarnation), so the
	// wait also unblocks on stop.
	select {
	case <-rec.entry.done:
	case <-r.Context().Done():
		return
	case <-s.stopc:
		s.mu.Lock()
		settled := rec.entry.settled
		s.mu.Unlock()
		if !settled {
			w.Header().Set("Retry-After", "1")
			writeError(w, http.StatusServiceUnavailable, "job %s interrupted by drain; resubmit or retry after restart", rec.id)
			return
		}
	}

	s.mu.Lock()
	e := rec.entry
	out, eErr := e.out, e.err
	cacheHit := rec.cacheHit
	s.mu.Unlock()
	if eErr != nil {
		writeError(w, http.StatusInternalServerError, "job %s failed: %v", rec.id, eErr)
		return
	}

	WriteResultStream(w, rec.id, rec.name, cacheHit, out)
}

// WriteResultStream renders one settled outcome as the NDJSON result
// stream: every monitor-log event line in order, then exactly one
// summary line. The daemon's result handler and the cluster router's
// proxy-job handler share it so forwarded results are byte-identical to
// locally served ones.
func WriteResultStream(w http.ResponseWriter, id, name string, cacheHit bool, out *Outcome) {
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	enc := json.NewEncoder(w)
	flusher, _ := w.(http.Flusher)
	for _, ev := range out.Events {
		if err := enc.Encode(ResultLine{Type: "event", Line: ev.String()}); err != nil {
			return
		}
		if flusher != nil {
			flusher.Flush()
		}
	}
	sum := &Summary{
		ID: id, Name: name, CacheHit: cacheHit,
		Steps: out.Steps, WallCycles: out.WallCycles, ExitCode: out.ExitCode,
		EventSet: out.EventSet, Records: out.Records, Aggregates: out.Aggregates,
		Events: len(out.Events), AccumFingerprint: out.AccumFingerprint,
	}
	if rc := out.RootCause; rc != nil {
		for i := range rc.Sites {
			if err := enc.Encode(ResultLine{Type: "site", Site: &rc.Sites[i]}); err != nil {
				return
			}
			if flusher != nil {
				flusher.Flush()
			}
		}
		sum.ShadowPrec = rc.Prec
		sum.ShadowSites = len(rc.Sites)
		sum.ShadowSites99 = rc.Sites99
		sum.ShadowOps = rc.TotalOps
		sum.ShadowLocalUlps = rc.TotalLocalUlps
		sum.ShadowMaxUlps = rc.MaxUlps
	}
	enc.Encode(ResultLine{Type: "summary", Summary: sum}) //nolint:errcheck // client gone
}

// figureGens maps figure IDs to their generators on the shared study.
func (s *Server) figureGens() map[string]func() (*study.Table, error) {
	st := s.study
	return map[string]func() (*study.Table, error){
		"6": st.Figure6, "7": st.Figure7, "8": st.Figure8, "9": st.Figure9,
		"10": st.Figure10, "11": st.Figure11, "12": st.Figure12,
		"13": st.Figure13, "14": st.Figure14, "15": st.Figure15,
		"16": st.Figure16, "17": st.Figure17, "18": st.Figure18,
		"19": st.Figure19, "s6": st.Section6,
	}
}

func (s *Server) handleFigures(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	defer func() {
		if sv := s.obs.ServerMetricsOrNil(); sv != nil {
			s.observeNS(&sv.FiguresNS, start)
		}
	}()
	gens := s.figureGens()
	id := r.URL.Query().Get("id")
	if id == "" {
		ids := make([]string, 0, len(gens))
		for k := range gens {
			ids = append(ids, k)
		}
		sort.Slice(ids, func(i, j int) bool {
			if len(ids[i]) != len(ids[j]) {
				return len(ids[i]) < len(ids[j])
			}
			return ids[i] < ids[j]
		})
		writeJSON(w, http.StatusOK, map[string][]string{"figures": ids})
		return
	}
	gen, ok := gens[id]
	if !ok {
		writeError(w, http.StatusNotFound, "unknown figure %q", id)
		return
	}
	t, err := gen()
	if err != nil {
		writeError(w, http.StatusInternalServerError, "figure %s: %v", id, err)
		return
	}
	writeJSON(w, http.StatusOK, FigureResponse{
		ID: t.ID, Title: t.Title, Header: t.Header, Rows: t.Rows, Notes: t.Notes,
	})
}

func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	if err := s.obs.Snapshot().WriteJSON(w); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

// HealthStatus values served by /healthz. A draining daemon reports
// StatusDraining with 503 so ring health probes and load balancers stop
// routing new work to it without treating it as dead: its in-flight
// passes are completing and its queue is persisting.
const (
	StatusOK       = "ok"
	StatusDraining = "draining"
)

func (s *Server) handleHealth(w http.ResponseWriter, _ *http.Request) {
	if s.Draining() {
		writeJSON(w, http.StatusServiceUnavailable, map[string]string{"status": StatusDraining})
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": StatusOK})
}
