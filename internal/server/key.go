package server

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"io"
	"sort"

	fpspy "repro"
	"repro/internal/isa"
	"repro/internal/jobs"
)

// CacheKey is the content address of a submission: a SHA-256 over a
// canonical rendering of the program image, the launch environment, the
// memory request, and the FPSpy configuration. Submission and program
// names are deliberately excluded — two clients submitting the same
// binary under different job names must collide, which is what makes
// the result cache work across tenants. The gob wire encoding is NOT
// hashed (gob serializes maps in nondeterministic order); the rendering
// here is field-by-field and stable.
func CacheKey(j *jobs.Job, cfg fpspy.Config) string {
	h := sha256.New()
	hashProgram(h, j.Program)

	names := make([]string, 0, len(j.Env))
	for k := range j.Env {
		names = append(names, k)
	}
	sort.Strings(names)
	hashU64(h, uint64(len(names)))
	for _, k := range names {
		hashStr(h, k)
		hashStr(h, j.Env[k])
	}

	hashU64(h, uint64(j.MemBytes))
	hashConfig(h, cfg)
	return hex.EncodeToString(h.Sum(nil))
}

func hashU64(w io.Writer, v uint64) {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], v)
	w.Write(b[:]) //nolint:errcheck // hash.Hash never errors
}

func hashStr(w io.Writer, s string) {
	hashU64(w, uint64(len(s)))
	io.WriteString(w, s) //nolint:errcheck // hash.Hash never errors
}

func hashBool(w io.Writer, b bool) {
	var v uint64
	if b {
		v = 1
	}
	hashU64(w, v)
}

// hashProgram renders the executable content: text, load addresses, and
// the initialized data image. Each field is length-delimited so distinct
// programs cannot collide by token concatenation.
func hashProgram(w io.Writer, p *isa.Program) {
	hashU64(w, p.Base)
	hashU64(w, p.DataBase)
	hashU64(w, uint64(len(p.Insts)))
	for i := range p.Insts {
		in := &p.Insts[i]
		hashU64(w, uint64(in.Op))
		hashU64(w, uint64(in.Rd))
		hashU64(w, uint64(in.Rs1))
		hashU64(w, uint64(in.Rs2))
		hashU64(w, uint64(in.Rs3))
		hashU64(w, uint64(in.Imm))
		hashStr(w, in.Sym)
	}
	hashU64(w, uint64(len(p.Data)))
	w.Write(p.Data) //nolint:errcheck // hash.Hash never errors
}

// hashConfig renders every Config field in declaration order. A new
// Config field that affects execution must be added here; the key test
// pins the current field set so the omission is caught.
func hashConfig(w io.Writer, c fpspy.Config) {
	hashU64(w, uint64(c.Mode))
	hashBool(w, c.Disable)
	hashBool(w, c.Aggressive)
	hashU64(w, uint64(c.ExceptList))
	hashU64(w, c.MaxCount)
	hashU64(w, c.SampleEvery)
	hashU64(w, c.SampleOnUS)
	hashU64(w, c.SampleOffUS)
	hashBool(w, c.Poisson)
	hashBool(w, c.VirtualTimer)
	hashBool(w, c.Breakpoints)
	hashU64(w, c.StormFaults)
	hashU64(w, c.StormCycles)
	// NoPrune/NoSuperblock are deliberately absent: they are proven
	// bit-identical ablations, so keying on them would only split the
	// cache. ShadowPrec is keyed — it changes the outcome (attribution
	// report), and distinct precisions are distinct results.
	hashU64(w, c.ShadowPrec)
}
