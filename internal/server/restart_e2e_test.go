package server_test

// Robustness end-to-end: the daemon restart contract as clients see it.
// A drain with queued jobs happens while clients are mid-Watch over
// real HTTP; the daemon then restarts on the same address, and every
// job must settle exactly once under its original ID — the watchers
// ride through the outage on the client's retry policy alone. Alongside
// it: the crash-safe persistence regression (a torn state write is
// never loaded) and the /healthz draining-vs-healthy distinction.

import (
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	fpspy "repro"
	"repro/internal/server"
	"repro/internal/server/client"
)

func TestE2EHealthzDrainingVsHealthy(t *testing.T) {
	srv, ts := newDaemon(t, server.Options{Workers: 1})
	getHealth := func() (int, string) {
		t.Helper()
		resp, err := http.Get(ts.URL + "/healthz")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var body struct {
			Status string `json:"status"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
			t.Fatal(err)
		}
		return resp.StatusCode, body.Status
	}
	if code, status := getHealth(); code != http.StatusOK || status != server.StatusOK {
		t.Fatalf("healthy daemon: got %d %q, want 200 %q", code, status, server.StatusOK)
	}
	if _, err := srv.Shutdown(); err != nil {
		t.Fatal(err)
	}
	if code, status := getHealth(); code != http.StatusServiceUnavailable || status != server.StatusDraining {
		t.Fatalf("draining daemon: got %d %q, want 503 %q", code, status, server.StatusDraining)
	}
}

// TestTornStateWriteNeverLoaded pins the crash-safe persistence
// contract: a crash mid-save leaves only a temp file, and a restart
// must load the last committed state (or nothing), never the torn
// bytes.
func TestTornStateWriteNeverLoaded(t *testing.T) {
	dir := t.TempDir()
	state := filepath.Join(dir, "queue.gob")
	torn := []byte("not a gob stream: crashed halfway through")

	// A torn write with no committed state behind it: the daemon starts
	// empty instead of decoding garbage.
	if err := os.WriteFile(state+".tmp", torn, 0o644); err != nil {
		t.Fatal(err)
	}
	srv, err := server.New(server.Options{Workers: 1, StateFile: state})
	if err != nil {
		t.Fatalf("restart over torn temp file: %v", err)
	}
	if _, err := os.Stat(state + ".tmp"); !os.IsNotExist(err) {
		t.Fatalf("torn temp file should be swept on load, stat err = %v", err)
	}
	if _, err := srv.Shutdown(); err != nil {
		t.Fatal(err)
	}

	// Commit real state: one job blocked in flight, one queued, then
	// drain. The queued job is the committed content.
	gate := make(chan struct{})
	running := make(chan struct{}, 1)
	srv1, err := server.New(server.Options{
		Workers: 1, Shards: 1, QueueDepth: 8, StateFile: state,
		BeforeRun: func(string) { running <- struct{}{}; <-gate },
	})
	if err != nil {
		t.Fatal(err)
	}
	cfg := fpspy.Config{Mode: fpspy.ModeAggregate}
	blobA, _ := e2eJob(t, "torn-a", 1, nil).Encode()
	blobB, _ := e2eJob(t, "torn-b", 2, nil).Encode()
	if _, err := srv1.Submit("tester", "torn-a", blobA, cfg); err != nil {
		t.Fatal(err)
	}
	<-running
	sub, err := srv1.Submit("tester", "torn-b", blobB, cfg)
	if err != nil {
		t.Fatal(err)
	}
	go func() { time.Sleep(10 * time.Millisecond); close(gate) }()
	if n, err := srv1.Shutdown(); err != nil || n != 1 {
		t.Fatalf("Shutdown = (%d, %v), want 1 persisted job", n, err)
	}

	// Crash during the NEXT save: garbage lands in the temp file while
	// the committed file still holds the real queue.
	if err := os.WriteFile(state+".tmp", torn, 0o644); err != nil {
		t.Fatal(err)
	}
	srv2, err := server.New(server.Options{Workers: 1, Shards: 1, QueueDepth: 8, StateFile: state})
	if err != nil {
		t.Fatalf("restart with committed state + torn temp: %v", err)
	}
	defer srv2.Shutdown() //nolint:errcheck // test teardown
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if _, err := srv2.WaitOutcome(ctx, sub.ID); err != nil {
		t.Fatalf("committed job %s did not settle after restart: %v", sub.ID, err)
	}
	if _, err := os.Stat(state + ".tmp"); !os.IsNotExist(err) {
		t.Fatalf("torn temp file survived the restart, stat err = %v", err)
	}
}

// TestE2ERestartReadmissionConcurrentClients drains a daemon with
// queued jobs while clients are mid-Watch over HTTP, restarts it on the
// same address, and asserts every job settles exactly once under its
// original ID. The watchers never see the outage: the client retry
// policy absorbs both the drain's 503s and the dead-port window.
func TestE2ERestartReadmissionConcurrentClients(t *testing.T) {
	const queued = 4
	state := filepath.Join(t.TempDir(), "queue.gob")
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()

	gate := make(chan struct{})
	running := make(chan struct{}, 1)
	srv1, err := server.New(server.Options{
		Workers: 1, Shards: 1, QueueDepth: 16, StateFile: state,
		BeforeRun: func(string) { running <- struct{}{}; <-gate },
	})
	if err != nil {
		t.Fatal(err)
	}
	hs1 := &http.Server{Handler: srv1}
	go hs1.Serve(ln) //nolint:errcheck // closed in-test

	newClient := func(id string) *client.Client {
		c := client.New("http://"+addr, id)
		c.RetryMax = 200
		c.RetryBaseWait = time.Millisecond
		c.RetryMaxWait = 25 * time.Millisecond
		return c
	}

	// Block the single worker, then queue jobs behind it.
	cfg := fpspy.Config{Mode: fpspy.ModeAggregate}
	blocker, _ := e2eJob(t, "restart-blocker", 1, nil).Encode()
	if _, err := newClient("c0").SubmitBlob("restart-blocker", blocker, cfg); err != nil {
		t.Fatal(err)
	}
	<-running
	ids := make([]string, queued)
	for i := range ids {
		blob, _ := e2eJob(t, fmt.Sprintf("restart-%d", i), i+2, nil).Encode()
		resp, err := newClient(fmt.Sprintf("c%d", i+1)).SubmitBlob(fmt.Sprintf("restart-%d", i), blob, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if resp.CacheHit {
			t.Fatalf("job %d unexpectedly hit cache", i)
		}
		ids[i] = resp.ID
	}

	// One watcher per queued job; each confirms a successful poll before
	// the drain starts so it is genuinely mid-Watch.
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	var ready, done sync.WaitGroup
	results := make([]*server.StatusResponse, queued)
	errs := make([]error, queued)
	for i, id := range ids {
		ready.Add(1)
		done.Add(1)
		go func(i int, id string) {
			defer done.Done()
			c := newClient(fmt.Sprintf("w%d", i))
			if _, err := c.StatusContext(ctx, id); err != nil {
				ready.Done()
				errs[i] = fmt.Errorf("pre-drain poll: %w", err)
				return
			}
			ready.Done()
			results[i], errs[i] = c.WatchContext(ctx, id, 5*time.Millisecond)
		}(i, id)
	}
	ready.Wait()

	// Drain with the watchers live, then kill the listener mid-Watch.
	go func() { time.Sleep(20 * time.Millisecond); close(gate) }()
	if n, err := srv1.Shutdown(); err != nil || n != queued {
		t.Fatalf("Shutdown = (%d, %v), want %d persisted jobs", n, err, queued)
	}
	hs1.Close() //nolint:errcheck // drop watcher connections hard

	// Restart on the same address. BeforeRun now counts passes: exactly
	// one per re-admitted job, none duplicated by the retrying watchers.
	var passes atomic.Int32
	srv2, err := server.New(server.Options{
		Workers: 2, Shards: 1, QueueDepth: 16, StateFile: state,
		BeforeRun: func(string) { passes.Add(1) },
	})
	if err != nil {
		t.Fatal(err)
	}
	ln2, err := net.Listen("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	hs2 := &http.Server{Handler: srv2}
	go hs2.Serve(ln2) //nolint:errcheck // closed in cleanup
	t.Cleanup(func() {
		hs2.Close()     //nolint:errcheck // test teardown
		srv2.Shutdown() //nolint:errcheck // test teardown
	})

	done.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("watcher %d: %v", i, err)
		}
		if results[i].ID != ids[i] {
			t.Fatalf("watcher %d: settled under %s, want original %s", i, results[i].ID, ids[i])
		}
		if results[i].State != server.StateDone {
			t.Fatalf("watcher %d: state %s, want done (%s)", i, results[i].State, results[i].Error)
		}
	}
	if n := passes.Load(); n != queued {
		t.Fatalf("restarted daemon ran %d passes, want exactly %d", n, queued)
	}
}
