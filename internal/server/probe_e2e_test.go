package server_test

// End-to-end accumulation-fingerprint propagation through the daemon:
// a probe clone submitted over HTTP must come back with the same
// canonical tree fingerprint a direct in-process run recovers, and the
// fingerprint must survive the content-addressed cache. This is the
// fpspyd-local leg of the reproducibility matrix (the cluster-routed
// leg lives in internal/cluster).

import (
	"testing"

	fpspy "repro"
	"repro/internal/jobs"
	"repro/internal/server"
	"repro/internal/server/client"
	"repro/internal/study"
	"repro/internal/workload"
)

func probeJob(t testing.TB, kind workload.ProbeKind) (*jobs.Job, *workload.Probe) {
	t.Helper()
	probe, err := workload.BuildProbe(workload.DefaultProbeSpec(kind, workload.SizeSmall))
	if err != nil {
		t.Fatal(err)
	}
	return jobs.Capture(probe.Prog.Name, probe.Prog, nil, 4<<20), probe
}

func TestE2EProbeFingerprintInSummary(t *testing.T) {
	_, ts := newDaemon(t, server.Options{Workers: 2})
	cfg := study.ProbeConfig(study.ProbeEngine{})

	job, probe := probeJob(t, workload.ProbeBlocked)
	c := client.New(ts.URL, "probe-client")
	resp, err := c.Submit(job, cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := c.Result(resp.ID)
	if err != nil {
		t.Fatal(err)
	}
	want := probe.Expected.Fingerprint()
	if res.Summary.AccumFingerprint != want {
		t.Fatalf("summary fingerprint %q, want %q", res.Summary.AccumFingerprint, want)
	}

	// The cached resubmission carries the identical fingerprint.
	resp2, err := c.Submit(job, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !resp2.CacheHit {
		t.Fatal("identical resubmission missed the cache")
	}
	res2, err := c.Result(resp2.ID)
	if err != nil {
		t.Fatal(err)
	}
	if res2.Summary.AccumFingerprint != want {
		t.Fatalf("cached fingerprint %q, want %q", res2.Summary.AccumFingerprint, want)
	}

	// The negative control's fingerprint must differ from its claim —
	// the detection signal survives the service boundary too.
	bjob, bprobe := probeJob(t, workload.ProbeBrokenReassoc)
	bresp, err := c.Submit(bjob, cfg)
	if err != nil {
		t.Fatal(err)
	}
	bres, err := c.Result(bresp.ID)
	if err != nil {
		t.Fatal(err)
	}
	if bres.Summary.AccumFingerprint == "" {
		t.Fatal("broken probe: no fingerprint recovered")
	}
	if bres.Summary.AccumFingerprint != bprobe.Emitted.Fingerprint() {
		t.Fatalf("broken probe fingerprint %q, want emitted %q", bres.Summary.AccumFingerprint, bprobe.Emitted.Fingerprint())
	}
	if bres.Summary.AccumFingerprint == bprobe.Expected.Fingerprint() {
		t.Fatal("broken probe fingerprint matches its documented claim — reassociation undetected")
	}
}

// TestE2EProbeFingerprintGating: non-probe jobs and modes whose traces
// cannot support reconstruction must not grow a fingerprint.
func TestE2EProbeFingerprintGating(t *testing.T) {
	_, ts := newDaemon(t, server.Options{Workers: 2})
	c := client.New(ts.URL, "gating-client")

	// A non-probe guest in individual mode.
	resp, err := c.Submit(e2eJob(t, "not-a-probe", 3, nil), fpspy.Config{Mode: fpspy.ModeIndividual})
	if err != nil {
		t.Fatal(err)
	}
	res, err := c.Result(resp.ID)
	if err != nil {
		t.Fatal(err)
	}
	if res.Summary.AccumFingerprint != "" {
		t.Fatalf("non-probe job grew fingerprint %q", res.Summary.AccumFingerprint)
	}

	// A probe in aggregate mode: no record stream, no fingerprint.
	job, _ := probeJob(t, workload.ProbeSerial)
	resp2, err := c.Submit(job, fpspy.Config{Mode: fpspy.ModeAggregate})
	if err != nil {
		t.Fatal(err)
	}
	res2, err := c.Result(resp2.ID)
	if err != nil {
		t.Fatal(err)
	}
	if res2.Summary.AccumFingerprint != "" {
		t.Fatalf("aggregate-mode probe grew fingerprint %q", res2.Summary.AccumFingerprint)
	}
}
