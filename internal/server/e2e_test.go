package server_test

// The in-process end-to-end suite: a real HTTP server (httptest) in
// front of a real daemon, driven through the typed client — the same
// path cmd/fpctl takes. It pins the PR's acceptance criteria:
//
//   - two identical submissions from different clients run exactly one
//     study pass (content-addressed cache + singleflight);
//   - a rate-limited client observes 429 with Retry-After while other
//     clients are unaffected;
//   - the NDJSON result stream round-trips through trace.monlog parsing
//     bit-identically with a direct in-process replay.
//
// The soak at the bottom hammers the daemon from concurrent clients
// under -race.

import (
	"errors"
	"fmt"
	"math"
	"net/http"
	"net/http/httptest"
	"reflect"
	"sync"
	"testing"
	"time"

	fpspy "repro"
	"repro/internal/isa"
	"repro/internal/jobs"
	"repro/internal/obs"
	"repro/internal/server"
	"repro/internal/server/client"
)

// e2eJob builds a tiny guest whose every divide raises at least the
// inexact condition, captured as a submission clone.
func e2eJob(t testing.TB, name string, divs int, env map[string]string) *jobs.Job {
	t.Helper()
	b := fpspy.NewProgram(name)
	b.Movi(isa.R1, int64(math.Float64bits(1)))
	b.Movqx(isa.X0, isa.R1)
	b.Movi(isa.R1, int64(math.Float64bits(3)))
	b.Movqx(isa.X1, isa.R1)
	for i := 0; i < divs; i++ {
		b.FP2(isa.OpDIVSD, isa.X2, isa.X0, isa.X1)
	}
	b.Hlt()
	return jobs.Capture(name, b.Build(), env, 4<<20)
}

// newDaemon stands up a daemon behind httptest and tears both down at
// test end.
func newDaemon(t testing.TB, opts server.Options) (*server.Server, *httptest.Server) {
	t.Helper()
	srv, err := server.New(opts)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	t.Cleanup(func() {
		ts.Close()
		srv.Shutdown() //nolint:errcheck // double-shutdown in some tests is fine
	})
	return srv, ts
}

func TestE2ESingleflightAcrossClients(t *testing.T) {
	om := obs.New(obs.Options{})
	_, ts := newDaemon(t, server.Options{Workers: 2, Obs: om})

	job := e2eJob(t, "shared", 4, map[string]string{"TENANT": "42"})
	cfg := fpspy.Config{Mode: fpspy.ModeIndividual}

	// Two different clients submit the identical clone concurrently.
	type outcome struct {
		resp *server.SubmitResponse
		res  *client.Result
		err  error
	}
	outs := make([]outcome, 2)
	var wg sync.WaitGroup
	for i := range outs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			c := client.New(ts.URL, fmt.Sprintf("client-%d", i))
			resp, err := c.Submit(job, cfg)
			if err != nil {
				outs[i] = outcome{err: err}
				return
			}
			res, err := c.Result(resp.ID) // blocks until settled
			outs[i] = outcome{resp: resp, res: res, err: err}
		}(i)
	}
	wg.Wait()
	for i, o := range outs {
		if o.err != nil {
			t.Fatalf("client %d: %v", i, o.err)
		}
	}
	if outs[0].resp.ID == outs[1].resp.ID {
		t.Fatal("distinct submissions must get distinct job IDs")
	}

	// Exactly one pass executed: one cache miss, one hit, one thread
	// monitored by the spy across the whole daemon.
	if miss := om.Server.CacheMisses.Load(); miss != 1 {
		t.Errorf("cache misses = %d, want 1", miss)
	}
	if hits := om.Server.CacheHits.Load(); hits != 1 {
		t.Errorf("cache hits = %d, want 1", hits)
	}
	if mon := om.Spy.ThreadsMonitored.Load(); mon != 1 {
		t.Errorf("threads monitored = %d, want 1 (one pass total)", mon)
	}
	// Both clients see the identical result.
	if outs[0].res.Summary.Steps != outs[1].res.Summary.Steps ||
		outs[0].res.Summary.EventSet != outs[1].res.Summary.EventSet ||
		outs[0].res.Summary.Records != outs[1].res.Summary.Records {
		t.Errorf("summaries diverge: %+v vs %+v", outs[0].res.Summary, outs[1].res.Summary)
	}
	if outs[0].res.Summary.Records == 0 {
		t.Error("individual pass captured no records")
	}
	if !outs[0].resp.CacheHit && !outs[1].resp.CacheHit {
		t.Error("one of the two identical submissions must be a cache hit")
	}
}

func TestE2ERateLimit429(t *testing.T) {
	_, ts := newDaemon(t, server.Options{
		Workers: 1, RatePerSec: 0.001, Burst: 1, // one token, glacial refill
	})
	job := e2eJob(t, "limited", 1, nil)
	cfg := fpspy.Config{Mode: fpspy.ModeAggregate}

	alice := client.New(ts.URL, "alice")
	if _, err := alice.Submit(job, cfg); err != nil {
		t.Fatal(err)
	}
	_, err := alice.Submit(job, cfg)
	var rl *client.RateLimitError
	if !errors.As(err, &rl) {
		t.Fatalf("second submit err = %v, want RateLimitError", err)
	}
	if rl.RetryAfter < time.Second {
		t.Errorf("Retry-After = %v, want >= 1s", rl.RetryAfter)
	}
	// The raw header is present on the wire.
	resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	// (default client identity is the remote host, not "alice" — this
	// one is admitted and fails on the empty body instead)
	if resp.StatusCode == http.StatusTooManyRequests {
		t.Fatal("different client identity must not share alice's bucket")
	}
	// Bob is unaffected by alice's exhausted bucket.
	bob := client.New(ts.URL, "bob")
	if _, err := bob.Submit(job, cfg); err != nil {
		t.Fatalf("bob rate limited by alice's bucket: %v", err)
	}
}

// TestE2EResultStreamRoundTrip proves the result stream is the monitor
// log, bit-identically: a storm-watchdog config generates demote
// events, and the NDJSON stream re-parsed through trace.ParseMonitorLog
// equals the event list of a direct in-process replay.
func TestE2EResultStreamRoundTrip(t *testing.T) {
	_, ts := newDaemon(t, server.Options{Workers: 1})
	job := e2eJob(t, "stormy", 12, nil)
	// Individual mode with a hair-trigger storm watchdog: the divide
	// storm demotes the process to aggregate mode, emitting monitor-log
	// events.
	cfg := fpspy.Config{
		Mode:        fpspy.ModeIndividual,
		StormFaults: 3,
		StormCycles: 100_000_000,
	}

	direct, err := job.Replay(cfg)
	if err != nil {
		t.Fatal(err)
	}
	want := direct.Store.MonitorEvents()
	if len(want) == 0 {
		t.Fatal("storm config produced no monitor events; the round-trip check needs a non-empty log")
	}

	c := client.New(ts.URL, "analyst")
	resp, err := c.Submit(job, cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := c.Result(resp.ID)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res.Events, want) {
		t.Errorf("streamed monitor log != direct replay:\nstream: %+v\ndirect: %+v", res.Events, want)
	}
	if res.Summary.Steps != direct.Steps {
		t.Errorf("summary steps %d != direct %d", res.Summary.Steps, direct.Steps)
	}
	if res.Summary.WallCycles != direct.WallCycles {
		t.Errorf("summary wall cycles %d != direct %d", res.Summary.WallCycles, direct.WallCycles)
	}
	if res.Summary.EventSet != uint64(direct.EventSet()) {
		t.Errorf("summary event set %#x != direct %#x", res.Summary.EventSet, uint64(direct.EventSet()))
	}
	if res.Summary.Events != len(want) {
		t.Errorf("summary event count %d != %d", res.Summary.Events, len(want))
	}
}

func TestE2EFiguresAndErrors(t *testing.T) {
	om := obs.New(obs.Options{})
	_, ts := newDaemon(t, server.Options{Workers: 1, Obs: om})
	c := client.New(ts.URL, "tester")

	ids, err := c.Figures()
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != 15 {
		t.Fatalf("figure list %v, want 15 entries", ids)
	}
	// Figure 8 assembles from static binary analysis — no passes — so
	// it is the cheap end-to-end probe of the figures endpoint.
	fig, err := c.Figure("8")
	if err != nil {
		t.Fatal(err)
	}
	if fig.ID == "" || len(fig.Rows) == 0 || len(fig.Header) == 0 {
		t.Fatalf("figure 8 came back empty: %+v", fig)
	}

	// Unknown routes and bad inputs are typed errors, not hangs.
	var apiErr *client.APIError
	if _, err := c.Status("job-999999"); !errors.As(err, &apiErr) || apiErr.Status != http.StatusNotFound {
		t.Fatalf("unknown job status err = %v, want 404", err)
	}
	if _, err := c.Figure("99"); !errors.As(err, &apiErr) || apiErr.Status != http.StatusNotFound {
		t.Fatalf("unknown figure err = %v, want 404", err)
	}
	if _, err := c.SubmitBlob("bad", []byte("not a clone"), fpspy.Config{}); !errors.As(err, &apiErr) || apiErr.Status != http.StatusBadRequest {
		t.Fatalf("garbage clone err = %v, want 400", err)
	}

	// The metrics scrape reflects the traffic this test generated.
	snap, err := c.Metrics()
	if err != nil {
		t.Fatal(err)
	}
	if snap.Histograms["server.http.figures-ns"].Count < 2 {
		t.Errorf("figures latency histogram count = %d, want >= 2", snap.Histograms["server.http.figures-ns"].Count)
	}
}

// TestE2EConcurrentClientsSoak hammers one daemon from many concurrent
// clients over a small set of distinct programs. Under -race this is
// the serving-path soak; the invariants are exact because the cache
// admits exactly one pass per content address.
func TestE2EConcurrentClientsSoak(t *testing.T) {
	const (
		nClients  = 6
		perClient = 12
		nPrograms = 4
	)
	om := obs.New(obs.Options{})
	_, ts := newDaemon(t, server.Options{
		Workers: 4, Shards: 4, QueueDepth: nClients*perClient + 1, Obs: om,
	})
	cfg := fpspy.Config{Mode: fpspy.ModeIndividual}
	progs := make([]*jobs.Job, nPrograms)
	for i := range progs {
		progs[i] = e2eJob(t, fmt.Sprintf("soak-%d", i), i+1, nil)
	}

	summaries := make([][]server.Summary, nClients)
	var wg sync.WaitGroup
	errc := make(chan error, nClients)
	for ci := 0; ci < nClients; ci++ {
		wg.Add(1)
		go func(ci int) {
			defer wg.Done()
			c := client.New(ts.URL, fmt.Sprintf("soak-client-%d", ci))
			for k := 0; k < perClient; k++ {
				job := progs[(ci+k)%nPrograms]
				resp, err := c.Submit(job, cfg)
				if err != nil {
					errc <- fmt.Errorf("client %d submit %d: %w", ci, k, err)
					return
				}
				res, err := c.Result(resp.ID)
				if err != nil {
					errc <- fmt.Errorf("client %d result %s: %w", ci, resp.ID, err)
					return
				}
				summaries[ci] = append(summaries[ci], res.Summary)
			}
		}(ci)
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Fatal(err)
	}

	total := uint64(nClients * perClient)
	if got := om.Server.Submissions.Load(); got != total {
		t.Errorf("submissions = %d, want %d", got, total)
	}
	if miss := om.Server.CacheMisses.Load(); miss != nPrograms {
		t.Errorf("cache misses = %d, want %d (one pass per distinct program)", miss, nPrograms)
	}
	if hits := om.Server.CacheHits.Load(); hits != total-nPrograms {
		t.Errorf("cache hits = %d, want %d", hits, total-nPrograms)
	}
	if mon := om.Spy.ThreadsMonitored.Load(); mon != nPrograms {
		t.Errorf("threads monitored = %d, want %d (exactly one pass per program)", mon, nPrograms)
	}
	if om.Server.Shed.Load() != 0 || om.Server.RateLimited.Load() != 0 {
		t.Errorf("unexpected rejections: shed=%d rateLimited=%d",
			om.Server.Shed.Load(), om.Server.RateLimited.Load())
	}
	// Every client saw the identical summary for the same program.
	byName := map[string]server.Summary{}
	for ci := range summaries {
		for _, sum := range summaries[ci] {
			prev, ok := byName[sum.Name]
			if !ok {
				byName[sum.Name] = sum
				continue
			}
			if prev.Steps != sum.Steps || prev.EventSet != sum.EventSet || prev.Records != sum.Records {
				t.Fatalf("divergent summaries for %s: %+v vs %+v", sum.Name, prev, sum)
			}
		}
	}
	if len(byName) != nPrograms {
		t.Errorf("distinct result names = %d, want %d", len(byName), nPrograms)
	}
}
