package server

import (
	"math"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	fpspy "repro"
	"repro/internal/isa"
	"repro/internal/jobs"
	"repro/internal/obs"
)

// testJob builds a tiny faulting guest (1/3 rounds on every divide) and
// captures it as a submission clone. env perturbs the content address.
func testJob(t testing.TB, name string, divs int, env map[string]string) *jobs.Job {
	t.Helper()
	b := fpspy.NewProgram(name)
	b.Movi(isa.R1, int64(math.Float64bits(1)))
	b.Movqx(isa.X0, isa.R1)
	b.Movi(isa.R1, int64(math.Float64bits(3)))
	b.Movqx(isa.X1, isa.R1)
	for i := 0; i < divs; i++ {
		b.FP2(isa.OpDIVSD, isa.X2, isa.X0, isa.X1)
	}
	b.Hlt()
	return jobs.Capture(name, b.Build(), env, 4<<20)
}

func encode(t testing.TB, j *jobs.Job) []byte {
	t.Helper()
	blob, err := j.Encode()
	if err != nil {
		t.Fatal(err)
	}
	return blob
}

func TestCacheKeyDeterministicAndSensitive(t *testing.T) {
	env := map[string]string{"A": "1", "B": "2", "C": "3", "D": "4"}
	cfg := fpspy.Config{Mode: fpspy.ModeIndividual}
	j1 := testJob(t, "k", 3, env)
	// Rebuilt from scratch (fresh maps, fresh slices): the key must not
	// depend on anything but content.
	j2 := testJob(t, "k", 3, map[string]string{"D": "4", "C": "3", "B": "2", "A": "1"})
	if CacheKey(j1, cfg) != CacheKey(j2, cfg) {
		t.Fatal("identical content hashed differently")
	}
	// The clone survives a wire round trip with the same address.
	back, err := jobs.Decode(encode(t, j1))
	if err != nil {
		t.Fatal(err)
	}
	if CacheKey(back, cfg) != CacheKey(j1, cfg) {
		t.Fatal("wire round trip changed the content address")
	}
	// Name is identity-irrelevant; everything else is identity.
	named := testJob(t, "other-name", 3, env)
	if CacheKey(named, cfg) != CacheKey(j1, cfg) {
		t.Fatal("submission name must not affect the content address")
	}
	distinct := map[string]string{
		"program": CacheKey(testJob(t, "k", 4, env), cfg),
		"env":     CacheKey(testJob(t, "k", 3, map[string]string{"A": "1"}), cfg),
		"config":  CacheKey(j1, fpspy.Config{Mode: fpspy.ModeAggregate}),
		"sample": CacheKey(j1, fpspy.Config{
			Mode: fpspy.ModeIndividual, SampleOnUS: 5, SampleOffUS: 100,
		}),
		"shadow": CacheKey(j1, fpspy.Config{
			Mode: fpspy.ModeIndividual, ShadowPrec: 113,
		}),
		"shadow-prec": CacheKey(j1, fpspy.Config{
			Mode: fpspy.ModeIndividual, ShadowPrec: 256,
		}),
	}
	base := CacheKey(j1, cfg)
	seen := map[string]string{base: "base"}
	for dim, key := range distinct {
		if prev, dup := seen[key]; dup {
			t.Errorf("%s collided with %s", dim, prev)
		}
		seen[key] = dim
	}
	mem := jobs.Capture("k", j1.Program, env, 8<<20)
	if CacheKey(mem, cfg) == base {
		t.Error("memory request must affect the content address")
	}
}

func TestLimiterRefillAndIsolation(t *testing.T) {
	clock := time.Unix(0, 0)
	l := newLimiter(2, 2, func() time.Time { return clock })
	for i := 0; i < 2; i++ {
		if ok, _ := l.allow("alice"); !ok {
			t.Fatalf("burst token %d denied", i)
		}
	}
	ok, wait := l.allow("alice")
	if ok {
		t.Fatal("empty bucket admitted")
	}
	if wait <= 0 || wait > time.Second {
		t.Fatalf("wait = %v, want (0, 1s] at 2 tokens/s", wait)
	}
	// Another client is unaffected.
	if ok, _ := l.allow("bob"); !ok {
		t.Fatal("per-client buckets must be independent")
	}
	// Refill restores admission.
	clock = clock.Add(time.Second)
	if ok, _ := l.allow("alice"); !ok {
		t.Fatal("refilled bucket denied")
	}
	// A nil limiter (rate 0) admits everything.
	var nl *limiter
	if ok, _ := nl.allow("anyone"); !ok {
		t.Fatal("nil limiter must admit")
	}
}

// TestGracefulShutdownPersistRestart is the drain contract end to end:
// during a drain /v1/jobs answers 503, the in-flight pass completes,
// queued-but-unstarted jobs survive the stop/start cycle through the
// persisted queue, and the restarted daemon runs them to completion
// under their original IDs.
func TestGracefulShutdownPersistRestart(t *testing.T) {
	state := filepath.Join(t.TempDir(), "queue.gob")
	om := obs.New(obs.Options{})
	s, err := New(Options{
		Workers: 1, Shards: 1, QueueDepth: 8, StateFile: state, Obs: om,
	})
	if err != nil {
		t.Fatal(err)
	}
	gate := make(chan struct{})
	started := make(chan string, 1)
	s.mu.Lock()
	s.testBeforeRun = func(rec *jobRec) {
		started <- rec.id
		<-gate
	}
	s.mu.Unlock()

	cfg := fpspy.Config{Mode: fpspy.ModeAggregate}
	submit := func(name string, divs int) *jobRec {
		rec, err := s.submit("tester", name, encode(t, testJob(t, name, divs, nil)), cfg)
		if err != nil {
			t.Fatal(err)
		}
		return rec
	}
	recA := submit("job-a", 1)
	<-started // the single dispatcher is now holding job A in flight
	recB := submit("job-b", 2)
	recC := submit("job-c", 3)
	// A duplicate of a queued job rides as a waiter and must persist too.
	recB2, err := s.submit("tester2", "job-b-dup", encode(t, testJob(t, "job-b", 2, nil)), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !recB2.cacheHit {
		t.Fatal("duplicate of queued job should attach to its entry")
	}

	type shutdownResult struct {
		n   int
		err error
	}
	done := make(chan shutdownResult, 1)
	go func() {
		n, err := s.Shutdown()
		done <- shutdownResult{n, err}
	}()
	waitFor(t, "drain to begin", func() bool { return s.Draining() })

	// The drain rejects new submissions with 503 + Retry-After.
	req := httptest.NewRequest(http.MethodPost, "/v1/jobs",
		strings.NewReader(`{"clone":"AAAA","config":{}}`))
	rw := httptest.NewRecorder()
	s.ServeHTTP(rw, req)
	if rw.Code != http.StatusServiceUnavailable {
		t.Fatalf("submit during drain = %d, want 503", rw.Code)
	}
	if rw.Header().Get("Retry-After") == "" {
		t.Fatal("503 during drain must carry Retry-After")
	}

	close(gate) // let the in-flight pass finish
	res := <-done
	if res.err != nil {
		t.Fatal(res.err)
	}
	if res.n != 3 {
		t.Fatalf("persisted %d jobs, want 3 (B, C, and B's waiter)", res.n)
	}
	s.mu.Lock()
	if recA.state != StateDone {
		t.Errorf("in-flight job state = %s, want done (must complete during drain)", recA.state)
	}
	s.mu.Unlock()
	if _, err := os.Stat(state); err != nil {
		t.Fatalf("state file missing after shutdown: %v", err)
	}

	// Restart: the persisted queue is re-admitted and executed.
	s2, err := New(Options{Workers: 1, Shards: 1, QueueDepth: 8, StateFile: state})
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range []string{recB.id, recC.id, recB2.id} {
		waitFor(t, "restarted job "+id, func() bool {
			_, st, ok := s2.lookup(id)
			return ok && st.State == StateDone
		})
	}
	// B and its duplicate share one pass on the restarted daemon too.
	_, stB, _ := s2.lookup(recB.id)
	_, stB2, _ := s2.lookup(recB2.id)
	if stB.Key != stB2.Key {
		t.Error("persisted duplicate lost its content address")
	}
	if !stB2.CacheHit {
		t.Error("persisted duplicate should resume as a cache attach")
	}
	// The consumed state file is gone: a later restart starts empty.
	if _, err := os.Stat(state); !os.IsNotExist(err) {
		t.Fatalf("state file should be consumed on load, stat err = %v", err)
	}
	if _, err := s2.Shutdown(); err != nil {
		t.Fatal(err)
	}
}

// TestShedOnFullQueue pins the backpressure path: a full shard answers
// 503 and does not leak a cache entry for the rejected submission.
func TestShedOnFullQueue(t *testing.T) {
	om := obs.New(obs.Options{})
	s, err := New(Options{Workers: 1, Shards: 1, QueueDepth: 1, Obs: om})
	if err != nil {
		t.Fatal(err)
	}
	gate := make(chan struct{})
	started := make(chan string, 1)
	s.mu.Lock()
	s.testBeforeRun = func(rec *jobRec) {
		started <- rec.id
		<-gate
	}
	s.mu.Unlock()
	cfg := fpspy.Config{Mode: fpspy.ModeAggregate}
	if _, err := s.submit("c", "a", encode(t, testJob(t, "a", 1, nil)), cfg); err != nil {
		t.Fatal(err)
	}
	<-started
	if _, err := s.submit("c", "b", encode(t, testJob(t, "b", 2, nil)), cfg); err != nil {
		t.Fatal(err) // fills the depth-1 queue
	}
	shedJob := testJob(t, "c", 3, nil)
	if _, err := s.submit("c", "c", encode(t, shedJob), cfg); err != ErrQueueFull {
		t.Fatalf("overflow submit err = %v, want ErrQueueFull", err)
	}
	if got := om.Server.Shed.Load(); got != 1 {
		t.Fatalf("shed counter = %d, want 1", got)
	}
	// The shed submission left no cache entry: resubmitting later is a
	// miss, not an attach to a never-to-run entry.
	s.mu.Lock()
	_, leaked := s.cache[CacheKey(shedJob, cfg)]
	s.mu.Unlock()
	if leaked {
		t.Fatal("shed submission leaked a cache entry")
	}
	close(gate)
	if _, err := s.Shutdown(); err != nil {
		t.Fatal(err)
	}
}

// waitFor polls cond with a deadline.
func waitFor(t testing.TB, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("timeout waiting for %s", what)
}
