// Package server implements fpspyd: the study-as-a-service daemon for
// the paper's Figure 1b "cloning in production" deployment. A scheduler
// captures each submission as a serializable clone (internal/jobs);
// fpspyd accepts those clones over an HTTP/JSON API, replays them
// offline under arbitrary FPSpy configurations on the study scheduler's
// bounded worker pool, and streams the resulting monitor log back.
//
// Scaling comes from three mechanisms:
//
//   - a sharded, bounded job queue: submissions hash to a shard by
//     content address, each shard dispatches in FIFO order, and a full
//     shard sheds load with 503 + Retry-After instead of queueing
//     without bound;
//   - a content-addressed result cache with singleflight semantics
//     (the same discipline as the study scheduler's passKey cache):
//     identical submissions — same program image, environment, memory
//     request, and configuration — run exactly one pass no matter how
//     many clients submit them or how concurrently they arrive;
//   - per-client token-bucket rate limiting with 429 + Retry-After.
//
// Shutdown drains: in-flight passes run to completion, new submissions
// are rejected 503, and queued-but-unstarted jobs are persisted via
// jobs.Encode so a restarted daemon resumes them.
package server

import (
	"errors"
	"fmt"
	"hash/fnv"
	"net/http"
	"strings"
	"sync"
	"time"

	fpspy "repro"
	"repro/internal/analysis"
	"repro/internal/jobs"
	"repro/internal/obs"
	"repro/internal/study"
	"repro/internal/trace"
)

// State names a job's position in its lifecycle.
type State string

const (
	// StateQueued: admitted, waiting for a worker (or for an identical
	// in-flight pass it attached to).
	StateQueued State = "queued"
	// StateRunning: its pass is executing on the worker pool.
	StateRunning State = "running"
	// StateDone: finished; the result is streamable.
	StateDone State = "done"
	// StateFailed: its pass returned an error.
	StateFailed State = "failed"
)

// Options configures a Server.
type Options struct {
	// Workers sizes the study worker pool (0 = one per CPU). Ignored
	// when Study is supplied.
	Workers int
	// Shards is the number of queue shards (default 4).
	Shards int
	// QueueDepth bounds each shard's queue (default 64). A submission
	// arriving at a full shard is shed with 503.
	QueueDepth int
	// RatePerSec enables per-client token-bucket rate limiting at this
	// many submissions per second (0 = unlimited).
	RatePerSec float64
	// Burst is the token bucket capacity (default 8).
	Burst int
	// StateFile, when set, persists queued-but-unstarted jobs across a
	// Shutdown/New cycle.
	StateFile string
	// Obs, when non-nil, receives daemon metrics (queue depth, cache
	// hit/miss, shed counters, per-endpoint latency) and is served on
	// /metrics. The same registry is threaded through every pass.
	Obs *obs.Metrics
	// Study, when non-nil, is the shared pass scheduler; the daemon
	// otherwise creates its own with Workers workers.
	Study *study.Study
	// BeforeRun, when set, is called after a job enters StateRunning and
	// before its pass executes. Tests (here and in internal/cluster)
	// gate on it to hold a pass in flight; production leaves it nil.
	BeforeRun func(jobID string)

	// now overrides the clock (tests).
	now func() time.Time
}

// Server is a running fpspyd instance. It is an http.Handler; callers
// mount it on a listener (cmd/fpspyd) or an httptest server.
type Server struct {
	opts  Options
	study *study.Study
	obs   *obs.Metrics
	lim   *limiter
	mux   *http.ServeMux
	now   func() time.Time

	shards      []chan *jobRec
	stopc       chan struct{}
	dispatchers sync.WaitGroup

	mu       sync.Mutex
	jobs     map[string]*jobRec
	cache    map[string]*cacheEntry
	seq      int
	draining bool

	// testBeforeRun, when set, is called by a dispatcher after a job
	// enters StateRunning and before its pass executes (tests gate here
	// to hold a pass in flight).
	testBeforeRun func(*jobRec)
}

// jobRec is the daemon's view of one submission. Mutable fields are
// guarded by Server.mu.
type jobRec struct {
	id        string
	name      string
	client    string
	key       string
	blob      []byte // encoded clone, for persistence
	cfg       fpspy.Config
	job       *jobs.Job
	cacheHit  bool
	submitted time.Time

	state State
	errs  string
	entry *cacheEntry
}

// cacheEntry is one singleflight cell of the content-addressed result
// cache. The primary submission executes the pass; identical
// submissions attach as waiters and are finalized together. done is
// closed exactly once, after out/err are valid.
type cacheEntry struct {
	key     string
	done    chan struct{}
	started bool // a dispatcher picked the primary up (guarded by mu)
	settled bool // out/err valid (guarded by mu)
	stolen  bool // primary handed to a peer via StealPending (guarded by mu)
	out     *Outcome
	err     error
	primary *jobRec
	waiters []*jobRec
}

// Outcome is the cached result of one executed pass: everything the
// result stream serves, with no reference to the (large) kernel state.
type Outcome struct {
	// Events is the monitor log in event order.
	Events []trace.MonitorEvent
	// Steps, WallCycles, and ExitCode summarize the run.
	Steps      uint64
	WallCycles uint64
	ExitCode   int
	// EventSet is the OR of all observed condition codes (MXCSR layout).
	EventSet uint64
	// Records and Aggregates count the captured trace records.
	Records    int
	Aggregates int
	// AccumFingerprint is the canonical accumulation-tree fingerprint
	// recovered from the trace, for probe jobs (names prefixed "probe")
	// run in unsampled individual mode; empty otherwise. Computed at
	// pass time because the outcome — not the record stream — is what
	// cluster routing ships between peers.
	AccumFingerprint string
	// RootCause is the ranked shadow attribution report for shadow jobs
	// (Config.ShadowPrec > 0); nil otherwise. Like AccumFingerprint it
	// is computed at pass time so the cache and cluster routing carry it.
	RootCause *analysis.RootCauseReport
}

// New builds and starts a Server: dispatchers are running and the
// handler is ready to mount. When Options.StateFile names a queue
// persisted by a previous Shutdown, its jobs are re-admitted before the
// first request is served.
func New(o Options) (*Server, error) {
	if o.Shards <= 0 {
		o.Shards = 4
	}
	if o.QueueDepth <= 0 {
		o.QueueDepth = 64
	}
	now := o.now
	if now == nil {
		now = time.Now
	}
	st := o.Study
	if st == nil {
		st = study.NewWithWorkers(o.Workers)
	}
	if st.Obs == nil {
		st.Obs = o.Obs
	}
	s := &Server{
		opts:   o,
		study:  st,
		obs:    o.Obs,
		lim:    newLimiter(o.RatePerSec, o.Burst, now),
		now:    now,
		shards: make([]chan *jobRec, o.Shards),
		stopc:  make(chan struct{}),
		jobs:   map[string]*jobRec{},
		cache:  map[string]*cacheEntry{},
	}
	for i := range s.shards {
		s.shards[i] = make(chan *jobRec, o.QueueDepth)
	}
	if o.BeforeRun != nil {
		hook := o.BeforeRun
		s.testBeforeRun = func(rec *jobRec) { hook(rec.id) }
	}
	s.buildMux()
	if o.StateFile != "" {
		if err := s.loadState(); err != nil {
			return nil, err
		}
	}
	for i := range s.shards {
		s.dispatchers.Add(1)
		go s.dispatch(s.shards[i])
	}
	return s, nil
}

// Study exposes the shared pass scheduler (the figures endpoint and
// tests use it).
func (s *Server) Study() *study.Study { return s.study }

// Draining reports whether Shutdown has begun.
func (s *Server) Draining() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.draining
}

// shardOf maps a cache key to its queue shard, so identical submissions
// always contend on the same FIFO.
func (s *Server) shardOf(key string) chan *jobRec {
	h := fnv.New32a()
	h.Write([]byte(key)) //nolint:errcheck // hash.Hash never errors
	return s.shards[int(h.Sum32())%len(s.shards)]
}

// ErrDraining and ErrQueueFull classify submission rejections for the
// HTTP layer and for cluster routers deciding how to degrade.
var (
	ErrDraining  = errors.New("server: draining, not accepting submissions")
	ErrQueueFull = errors.New("server: shard queue full")
)

// submit admits one submission: validate the clone, consult the cache,
// and either finalize immediately (hit on a settled entry), attach to
// an in-flight identical pass, or enqueue a new pass. It returns the
// job record and whether the submission was served from cache.
func (s *Server) submit(client, name string, blob []byte, cfg fpspy.Config) (*jobRec, error) {
	// Drain check first: a draining daemon answers 503 regardless of
	// what the submission contains. Re-checked under the lock below.
	if s.Draining() {
		if sv := s.obs.ServerMetricsOrNil(); sv != nil {
			sv.Shed.Inc()
		}
		return nil, ErrDraining
	}
	j, err := jobs.Decode(blob)
	if err != nil {
		return nil, err
	}
	if name == "" {
		name = j.Name
	}
	key := CacheKey(j, cfg)

	s.mu.Lock()
	defer s.mu.Unlock()
	if s.draining {
		if sv := s.obs.ServerMetricsOrNil(); sv != nil {
			sv.Shed.Inc()
		}
		return nil, ErrDraining
	}
	s.seq++
	rec := &jobRec{
		id:        fmt.Sprintf("job-%06d", s.seq),
		name:      name,
		client:    client,
		key:       key,
		blob:      blob,
		cfg:       cfg,
		job:       j,
		submitted: s.now(),
		state:     StateQueued,
	}
	sv := s.obs.ServerMetricsOrNil()
	if e, ok := s.cache[key]; ok {
		// Cache hit: the pass is settled, in flight, or queued. Either
		// way this submission never runs.
		rec.cacheHit = true
		rec.entry = e
		if sv != nil {
			sv.Submissions.Inc()
			sv.CacheHits.Inc()
		}
		if e.settled {
			finalizeLocked(rec, e, sv)
		} else {
			e.waiters = append(e.waiters, rec)
		}
		s.jobs[rec.id] = rec
		return rec, nil
	}

	e := &cacheEntry{key: key, done: make(chan struct{}), primary: rec}
	rec.entry = e
	select {
	case s.shardOf(key) <- rec:
		s.cache[key] = e
		s.jobs[rec.id] = rec
		if sv != nil {
			sv.Submissions.Inc()
			sv.CacheMisses.Inc()
			sv.QueueDepth.Add(1)
		}
		return rec, nil
	default:
		if sv != nil {
			sv.Shed.Inc()
		}
		return nil, ErrQueueFull
	}
}

// dispatch is one shard's dispatcher: it pulls jobs in FIFO order and
// runs each to completion before taking the next, so Shutdown's
// dispatchers.Wait() doubles as the in-flight drain. The leading
// non-blocking stop check makes drains deterministic: once stopc is
// closed, no further queued job is started even if the queue is ready.
func (s *Server) dispatch(q chan *jobRec) {
	defer s.dispatchers.Done()
	for {
		select {
		case <-s.stopc:
			return
		default:
		}
		select {
		case <-s.stopc:
			return
		case rec := <-q:
			if sv := s.obs.ServerMetricsOrNil(); sv != nil {
				sv.QueueDepth.Add(-1)
			}
			s.runJob(rec)
		}
	}
}

// runJob executes one primary submission's pass on the shared worker
// pool and settles its cache entry. A primary whose entry already
// settled while it waited in the queue (a peer-computed outcome arrived
// via InstallOutcome) is skipped: the settle finalized it.
func (s *Server) runJob(rec *jobRec) {
	s.mu.Lock()
	if rec.entry.settled {
		s.mu.Unlock()
		return
	}
	rec.state = StateRunning
	rec.entry.started = true
	hook := s.testBeforeRun
	s.mu.Unlock()
	if hook != nil {
		hook(rec)
	}
	var out *Outcome
	var err error
	s.study.Exec(func() {
		out, err = executePass(rec.job, rec.cfg, s.obs)
	})
	s.settle(rec.entry, out, err)
}

// executePass replays one clone under the given configuration and
// reduces the result to its cacheable outcome. It applies the same vet
// the study scheduler applies: a pass whose trace flushes failed is an
// error, not a truncated success.
func executePass(j *jobs.Job, cfg fpspy.Config, m *obs.Metrics) (*Outcome, error) {
	res, err := j.ReplayObs(cfg, m)
	if err != nil {
		return nil, err
	}
	if res.TraceErr != nil {
		return nil, fmt.Errorf("trace flush: %w", res.TraceErr)
	}
	recs, err := res.Records()
	if err != nil {
		return nil, fmt.Errorf("record decode: %w", err)
	}
	out := &Outcome{
		Events:     res.Store.MonitorEvents(),
		Steps:      res.Steps,
		WallCycles: res.WallCycles,
		ExitCode:   res.ExitCode,
		EventSet:   uint64(res.EventSet()),
		Records:    len(recs),
		Aggregates: len(res.Aggregates()),
	}
	if strings.HasPrefix(j.Name, "probe") {
		if tree, err := analysis.RecoverProbeTree(recs); err == nil {
			out.AccumFingerprint = tree.Fingerprint()
		}
	}
	if cfg.ShadowPrec > 0 {
		out.RootCause = analysis.BuildRootCause(cfg.ShadowPrec, res.Store.ShadowSites())
	}
	return out, nil
}

// settle publishes a pass outcome: the entry's primary and every waiter
// finalize together, then done is closed so result streams unblock.
// Settling is first-writer-wins — a local pass racing a peer-installed
// outcome (stolen job returned late, hedge resolved twice) leaves the
// first result in place and discards the second.
func (s *Server) settle(e *cacheEntry, out *Outcome, err error) {
	s.mu.Lock()
	if e.settled {
		s.mu.Unlock()
		return
	}
	e.out, e.err = out, err
	e.settled = true
	sv := s.obs.ServerMetricsOrNil()
	finalizeLocked(e.primary, e, sv)
	for _, w := range e.waiters {
		finalizeLocked(w, e, sv)
	}
	e.waiters = nil
	s.mu.Unlock()
	close(e.done)
}

// finalizeLocked moves rec to its terminal state from a settled entry.
// Caller holds s.mu. A nil rec is an entry with no local primary — a
// peer-installed outcome that no local submission attached to yet.
func finalizeLocked(rec *jobRec, e *cacheEntry, sv *obs.ServerMetrics) {
	if rec == nil {
		return
	}
	if e.err != nil {
		rec.state = StateFailed
		rec.errs = e.err.Error()
		if sv != nil {
			sv.JobsFailed.Inc()
		}
		return
	}
	rec.state = StateDone
	if sv != nil {
		sv.JobsCompleted.Inc()
	}
}

// Shutdown drains the daemon: new submissions are rejected 503 with
// Retry-After, dispatchers stop pulling work, every in-flight pass runs
// to completion, and queued-but-unstarted jobs (primaries still in
// shard queues plus waiters attached to them) are persisted to
// Options.StateFile via their encoded clones. It returns the number of
// jobs persisted.
func (s *Server) Shutdown() (int, error) {
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		return 0, errors.New("server: already shut down")
	}
	s.draining = true
	s.mu.Unlock()

	close(s.stopc)
	// Dispatchers run jobs synchronously: once they have all returned,
	// every started pass has settled.
	s.dispatchers.Wait()

	s.mu.Lock()
	var pend []*jobRec
	drained := 0
	for _, q := range s.shards {
	drain:
		for {
			select {
			case rec := <-q:
				pend = append(pend, rec)
				drained++
			default:
				break drain
			}
		}
	}
	// Waiters attached to a never-started entry are queued-but-unstarted
	// submissions too; their entry is removed so a restarted daemon
	// re-creates it. A stolen primary is not in any shard queue, so it
	// is captured here as well — the stealer's late outcome has nowhere
	// to land after shutdown, and the job must not be lost.
	for key, e := range s.cache {
		if !e.started && !e.settled {
			if e.stolen && e.primary != nil {
				pend = append(pend, e.primary)
			}
			pend = append(pend, e.waiters...)
			e.waiters = nil
			delete(s.cache, key)
		}
	}
	if sv := s.obs.ServerMetricsOrNil(); sv != nil && drained > 0 {
		sv.QueueDepth.Add(int64(-drained))
	}
	s.mu.Unlock()

	if s.opts.StateFile == "" {
		return len(pend), nil
	}
	return len(pend), s.saveState(pend)
}
