package server

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"os"
	"path/filepath"

	fpspy "repro"
	"repro/internal/jobs"
)

// persistedJob is the on-disk form of one queued-but-unstarted
// submission: the clone bytes exactly as submitted (jobs.Encode
// output), plus the daemon-side identity needed to resume it under the
// same job ID.
type persistedJob struct {
	ID     string
	Name   string
	Client string
	Blob   []byte
	Config fpspy.Config
}

// saveState writes the pending queue to Options.StateFile crash-safely:
// the temp file is fully written and fsynced before the rename, and the
// containing directory is fsynced after it, so a crash at any point
// leaves either the old queue or the new one — never a torn file, and
// never a rename whose directory entry evaporates with the page cache.
// An empty queue still writes a file: a later restart must not
// resurrect an older, staler queue.
func (s *Server) saveState(pend []*jobRec) error {
	list := make([]persistedJob, 0, len(pend))
	for _, rec := range pend {
		list = append(list, persistedJob{
			ID: rec.id, Name: rec.name, Client: rec.client,
			Blob: rec.blob, Config: rec.cfg,
		})
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(list); err != nil {
		return fmt.Errorf("server: encode queue state: %w", err)
	}
	tmp := s.opts.StateFile + ".tmp"
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("server: write queue state: %w", err)
	}
	if _, err := f.Write(buf.Bytes()); err != nil {
		f.Close()      //nolint:errcheck // write error already reported
		os.Remove(tmp) //nolint:errcheck // best-effort cleanup
		return fmt.Errorf("server: write queue state: %w", err)
	}
	// The data must be durable before the rename makes it reachable: a
	// rename committed ahead of its content is exactly the torn write
	// the temp file exists to prevent.
	if err := f.Sync(); err != nil {
		f.Close()      //nolint:errcheck // sync error already reported
		os.Remove(tmp) //nolint:errcheck // best-effort cleanup
		return fmt.Errorf("server: sync queue state: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("server: close queue state: %w", err)
	}
	if err := os.Rename(tmp, s.opts.StateFile); err != nil {
		return fmt.Errorf("server: commit queue state: %w", err)
	}
	// Sync the directory so the rename itself survives a crash.
	dir, err := os.Open(filepath.Dir(s.opts.StateFile))
	if err != nil {
		return fmt.Errorf("server: open state dir: %w", err)
	}
	defer dir.Close()
	if err := dir.Sync(); err != nil {
		return fmt.Errorf("server: sync state dir: %w", err)
	}
	return nil
}

// loadState re-admits a persisted queue during New. Each clone passes
// through jobs.Decode (so a corrupted state file cannot smuggle an
// invalid program past validation), keeps its original job ID, and is
// re-enqueued through the normal cache/singleflight path. The state
// file is consumed: it is removed once its jobs are re-admitted.
func (s *Server) loadState() error {
	// A leftover temp file is a torn write from a crashed save: it is
	// never loaded, only swept, so a partial state can't masquerade as
	// the committed queue.
	os.Remove(s.opts.StateFile + ".tmp") //nolint:errcheck // best-effort sweep
	data, err := os.ReadFile(s.opts.StateFile)
	if os.IsNotExist(err) {
		return nil
	}
	if err != nil {
		return fmt.Errorf("server: read queue state: %w", err)
	}
	var list []persistedJob
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&list); err != nil {
		return fmt.Errorf("server: decode queue state %s: %w", filepath.Base(s.opts.StateFile), err)
	}
	for _, p := range list {
		j, err := jobs.Decode(p.Blob)
		if err != nil {
			return fmt.Errorf("server: persisted job %s: %w", p.ID, err)
		}
		rec := &jobRec{
			id: p.ID, name: p.Name, client: p.Client, key: CacheKey(j, p.Config),
			blob: p.Blob, cfg: p.Config, job: j, submitted: s.now(), state: StateQueued,
		}
		var seq int
		if n, _ := fmt.Sscanf(p.ID, "job-%06d", &seq); n == 1 && seq > s.seq {
			s.seq = seq
		}
		if e, ok := s.cache[rec.key]; ok {
			rec.cacheHit = true
			rec.entry = e
			e.waiters = append(e.waiters, rec)
			s.jobs[rec.id] = rec
			continue
		}
		e := &cacheEntry{key: rec.key, done: make(chan struct{}), primary: rec}
		rec.entry = e
		select {
		case s.shardOf(rec.key) <- rec:
			s.cache[rec.key] = e
			s.jobs[rec.id] = rec
			if sv := s.obs.ServerMetricsOrNil(); sv != nil {
				sv.QueueDepth.Add(1)
			}
		default:
			return fmt.Errorf("server: queue depth %d too small for persisted state (%d jobs)",
				s.opts.QueueDepth, len(list))
		}
	}
	return os.Remove(s.opts.StateFile)
}
