package server

import (
	"math"
	"sync"
	"time"
)

// limiter is the per-client admission control: each client identity
// owns a token bucket holding up to burst tokens, refilled continuously
// at rate tokens per second. A submission that finds the bucket empty
// is rejected with the delay until the next whole token — the value the
// HTTP layer surfaces as Retry-After.
type limiter struct {
	rate  float64 // tokens per second
	burst float64 // bucket capacity
	now   func() time.Time

	mu      sync.Mutex
	buckets map[string]*bucket
}

type bucket struct {
	tokens float64
	last   time.Time
}

// newLimiter builds a limiter, or returns nil (admit everything) when
// rate is non-positive.
func newLimiter(rate float64, burst int, now func() time.Time) *limiter {
	if rate <= 0 {
		return nil
	}
	if burst < 1 {
		burst = 1
	}
	return &limiter{rate: rate, burst: float64(burst), now: now, buckets: map[string]*bucket{}}
}

// allow consumes one token for client, or reports how long the client
// must wait for one. A nil limiter admits everything.
func (l *limiter) allow(client string) (bool, time.Duration) {
	if l == nil {
		return true, 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	now := l.now()
	b, ok := l.buckets[client]
	if !ok {
		b = &bucket{tokens: l.burst, last: now}
		l.buckets[client] = b
	}
	b.tokens = math.Min(l.burst, b.tokens+now.Sub(b.last).Seconds()*l.rate)
	b.last = now
	if b.tokens >= 1 {
		b.tokens--
		return true, 0
	}
	return false, time.Duration((1 - b.tokens) / l.rate * float64(time.Second))
}
