package shadow

import (
	"math"
	"math/big"
	"testing"
)

const (
	pzero64  = uint64(0)
	nzero64  = sign64
	minDen64 = uint64(1)                  // smallest positive denormal
	maxFin64 = uint64(0x7FEFFFFFFFFFFFFF) // largest finite
	posInf64 = uint64(0x7FF0000000000000)
	qnan64   = uint64(0x7FF8000000000000)
)

func TestDist64ZeroCollapse(t *testing.T) {
	// +0 and −0 are the same point on the ordinal line.
	if d, ok := Dist64(pzero64, nzero64); !ok || d != 0 {
		t.Errorf("dist(+0,-0) = %d,%v, want 0,true", d, ok)
	}
	// Either zero is one step from the smallest denormal of either sign.
	for _, z := range []uint64{pzero64, nzero64} {
		if d, _ := Dist64(z, minDen64); d != 1 {
			t.Errorf("dist(%#x, minDen) = %d, want 1", z, d)
		}
		if d, _ := Dist64(z, sign64|minDen64); d != 1 {
			t.Errorf("dist(%#x, -minDen) = %d, want 1", z, d)
		}
	}
	// Crossing zero: the two smallest denormals are two apart.
	if d, _ := Dist64(minDen64, sign64|minDen64); d != 2 {
		t.Errorf("dist(minDen, -minDen) = %d, want 2", d)
	}
}

func TestDist64DenormalAdjacency(t *testing.T) {
	// The denormal range is ordinary territory: adjacent patterns are
	// distance 1, including across the denormal/normal boundary.
	minNorm := uint64(0x0010000000000000)
	if d, _ := Dist64(minNorm-1, minNorm); d != 1 {
		t.Errorf("dist(maxDen, minNorm) = %d, want 1", d)
	}
	for _, f := range []float64{1.0, 0.1, 1e-300, 5e-324, 1e300} {
		b := math.Float64bits(f)
		n := math.Float64bits(math.Nextafter(f, math.Inf(1)))
		if d, ok := Dist64(b, n); !ok || d != 1 {
			t.Errorf("dist(%g, nextafter) = %d,%v, want 1,true", f, d, ok)
		}
	}
}

func TestDist64Infinities(t *testing.T) {
	// Inf sits one past MaxFinite, so Inf-vs-finite divergence is huge
	// but finite and comparable.
	if d, ok := Dist64(maxFin64, posInf64); !ok || d != 1 {
		t.Errorf("dist(maxFinite, +Inf) = %d,%v, want 1,true", d, ok)
	}
	// Inf−Inf: the full span of the line, not a crash or a zero.
	d, ok := Dist64(posInf64, sign64|posInf64)
	if !ok || d != 2*posInf64 {
		t.Errorf("dist(+Inf,-Inf) = %d,%v, want %d,true", d, ok, 2*posInf64)
	}
}

func TestDist64NaNPolicy(t *testing.T) {
	// Exactly one NaN: incomparable.
	if _, ok := Dist64(qnan64, math.Float64bits(1.0)); ok {
		t.Error("one-NaN comparison reported comparable")
	}
	if _, ok := Dist64(math.Float64bits(1.0), qnan64); ok {
		t.Error("one-NaN comparison reported comparable (swapped)")
	}
	// Two NaNs agree the result is undefined: distance 0, regardless of
	// payload or sign.
	if d, ok := Dist64(qnan64, sign64|qnan64|0x1234); !ok || d != 0 {
		t.Errorf("dist(NaN,NaN) = %d,%v, want 0,true", d, ok)
	}
}

func TestDist32Boundaries(t *testing.T) {
	pinf := uint32(0x7F800000)
	if d, ok := Dist32(0, sign32); !ok || d != 0 {
		t.Errorf("dist32(+0,-0) = %d,%v", d, ok)
	}
	if d, _ := Dist32(0, 1); d != 1 {
		t.Errorf("dist32(+0,minDen) = %d, want 1", d)
	}
	if d, _ := Dist32(1, sign32|1); d != 2 {
		t.Errorf("dist32(minDen,-minDen) = %d, want 2", d)
	}
	if d, _ := Dist32(0x7F7FFFFF, pinf); d != 1 {
		t.Errorf("dist32(maxFinite,+Inf) = %d, want 1", d)
	}
	if d, ok := Dist32(pinf, sign32|pinf); !ok || d != uint64(2*pinf) {
		t.Errorf("dist32(+Inf,-Inf) = %d,%v, want %d", d, ok, 2*pinf)
	}
	if _, ok := Dist32(0x7FC00000, 0); ok {
		t.Error("one-NaN comparison reported comparable")
	}
	if d, ok := Dist32(0x7FC00000, 0xFFC00001); !ok || d != 0 {
		t.Errorf("dist32(NaN,NaN) = %d,%v, want 0,true", d, ok)
	}
}

func TestFracUlps64(t *testing.T) {
	wide := widePrec(53)
	diffOf := func(exact, native float64) *big.Float {
		a := new(big.Float).SetPrec(wide).SetFloat64(exact)
		return a.Sub(a, new(big.Float).SetFloat64(native))
	}
	// Zero difference is exactly zero error.
	if got := fracUlps64(diffOf(1.0, 1.0), math.Float64bits(1.0)); got != 0 {
		t.Errorf("zero diff = %v", got)
	}
	// ulp(1.0) = 2^-52: a half-ulp difference is exactly 0.5.
	half := new(big.Float).SetMantExp(big.NewFloat(1), -53)
	if got := fracUlps64(half, math.Float64bits(1.0)); got != 0.5 {
		t.Errorf("half-ulp at 1.0 = %v, want 0.5", got)
	}
	// In the denormal range the quantum is 2^-1074, for zeros too.
	den := new(big.Float).SetMantExp(big.NewFloat(1), -1075)
	if got := fracUlps64(den, minDen64); got != 0.5 {
		t.Errorf("half-quantum at minDen = %v, want 0.5", got)
	}
	if got := fracUlps64(den, pzero64); got != 0.5 {
		t.Errorf("half-quantum at +0 = %v, want 0.5", got)
	}
	// A pathological divergence saturates at the cap instead of Inf.
	huge := new(big.Float).SetFloat64(1e300)
	if got := fracUlps64(huge, minDen64); got != fracUlpCap {
		t.Errorf("capped sample = %v, want %v", got, fracUlpCap)
	}
}

func TestFracUlps32(t *testing.T) {
	one := math.Float32bits(1.0)
	// ulp(1.0f) = 2^-23.
	half := new(big.Float).SetMantExp(big.NewFloat(1), -24)
	if got := fracUlps32(half, one); got != 0.5 {
		t.Errorf("half-ulp at 1.0f = %v, want 0.5", got)
	}
	den := new(big.Float).SetMantExp(big.NewFloat(1), -150)
	if got := fracUlps32(den, 1); got != 0.5 {
		t.Errorf("half-quantum at minDen32 = %v, want 0.5", got)
	}
	if got := fracUlps32(new(big.Float).SetFloat64(1e30), 1); got != fracUlpCap {
		t.Errorf("capped sample = %v, want %v", got, fracUlpCap)
	}
}

func TestWidePrec(t *testing.T) {
	// Small precisions use the safe base; large ones keep the 3p+8
	// margin the FMA tail addition needs.
	if got := widePrec(53); got != 256 {
		t.Errorf("widePrec(53) = %d, want 256", got)
	}
	if got := widePrec(113); got != 347 {
		t.Errorf("widePrec(113) = %d, want 347", got)
	}
	if got := widePrec(1024); got != 3080 {
		t.Errorf("widePrec(1024) = %d, want 3080", got)
	}
}
