// Package shadow implements the shadow-precision value channel behind
// the root-cause attribution study (ROADMAP item 1, the paper's Section
// 6/7 mitigation direction): every retired floating point instruction
// carries its native (softfloat) result alongside a math/big.Float
// result computed at a configurable higher precision, and the
// divergence between the two is attributed to the instruction site that
// introduced it, Herbgrind-style.
//
// The channel is a pure observer. It registers as the machine's
// ShadowSink and reads architectural state before execution (PreStep)
// and after retirement (Retired), but never writes registers, memory,
// MXCSR, or control flow — so a run with the channel attached is
// bit-identical to one without it, by construction. What it produces is
// accounting: per-site local error (what this instruction's own
// rounding introduced, measured by recomputing the op from the *native*
// inputs at high precision and comparing with the native output),
// propagated error (divergence inherited through the shadow operands,
// total minus local), and an integer-ULP divergence lattice for the
// native-vs-shadow comparison.
//
// Error metrics. The softfloat FPU is correctly rounded, so the integer
// ULP distance between a native result and the correctly-rounded
// high-precision result of the same inputs is identically zero — it can
// never rank sites. Local error is therefore *fractional*: |exact −
// native| / ulp(native), in [0, 0.5] for a correctly rounded op and
// exactly 0 for an exact one. Summed over a site's dynamic executions
// this is the total rounding the site injected, which is what the
// RootCauseReport ranks. The integer ULP distance (Dist64/Dist32) is
// used where whole-result divergence is the question: the max-ULP
// per-site statistic, the observability histogram, and the mitigation
// executor's headline metric.
//
// Environment policy. Shadow arithmetic is round-to-nearest-even with
// an unbounded exponent (except at prec 53/24, where results are
// rounded through float64/float32 and reproduce the native formats
// bit-exactly, subnormals and overflow included). Instructions
// executing under a non-default environment — directed rounding, FTZ,
// or DAZ — are not shadow-executed; their destinations reset to the
// native value and the site is skipped. Likewise NaN or Inf operands
// and results: big.Float has no NaN, so non-finite lanes invalidate
// their destination shadow and count as NonFinite rather than
// accumulate.
package shadow

import "repro/internal/isa"

// Supported reports whether the channel shadow-executes an instruction
// form: all binary64 arithmetic and FMA forms (scalar, packed, AVX512
// z-forms including the K-masked variants — masked-off lanes never
// shadow-execute), plus scalar binary32 arithmetic and FMA. Packed
// binary32, conversion, compare, round, and dot forms reset their
// destinations to the native value instead. Static analysis
// (internal/binscan) uses this predicate to mark which discovered sites
// the Section 6 mitigation could patch.
func Supported(op isa.Opcode) bool {
	info := op.Info()
	switch info.Class {
	case isa.ClassFPArith, isa.ClassFMA:
		return info.Prec == isa.F64 || info.Lanes == 1
	}
	return false
}

// SampleClass classifies one shadow-executed lane comparison.
type SampleClass uint8

const (
	// SampleExact: the native op was exact (no local rounding) and the
	// shadow result rounds to the native bits.
	SampleExact SampleClass = iota
	// SampleRounded: the native op rounded (nonzero local error) but
	// the shadow result still rounds to the native bits — no
	// accumulated drift yet.
	SampleRounded
	// SampleDiverged: the shadow result rounds to different native-format
	// bits than the hardware produced (accumulated drift ≥ 1 ULP).
	SampleDiverged
	// SampleNonFinite: a NaN/Inf operand or result (or an op with no
	// finite shadow semantics, like 0/0); the lane is not accumulated
	// and its destination shadow resets to native.
	SampleNonFinite
)

// String names a sample class for logs and reports.
func (c SampleClass) String() string {
	switch c {
	case SampleExact:
		return "exact"
	case SampleRounded:
		return "rounded"
	case SampleDiverged:
		return "diverged"
	case SampleNonFinite:
		return "nonfinite"
	}
	return "unknown"
}
