package shadow

import (
	"math"
	"testing"

	"repro/internal/analysis"
	"repro/internal/isa"
	"repro/internal/machine"
	"repro/internal/mxcsr"
	"repro/internal/obs"
	"repro/internal/softfloat"
)

// drive steps the machine to a halt with the channel attached, failing
// the test on any event that is not transparent to shadowing.
func drive(t *testing.T, m *machine.Machine) {
	t.Helper()
	for i := 0; i < 1_000_000; i++ {
		ev := m.Step()
		if ev == nil {
			continue
		}
		switch ev.(type) {
		case *machine.CallCEvent, *machine.TrapEvent:
		case *machine.HaltEvent:
			return
		default:
			t.Fatalf("run ended with %T", ev)
		}
	}
	t.Fatal("no halt in 1M steps")
}

// TestNegativeControlRanksBadSite is the acceptance criterion's error
// injection: a guest whose loop runs exact operations plus exactly one
// rounding site must attribute all its error to that site, rank 1.
func TestNegativeControlRanksBadSite(t *testing.T) {
	b := isa.NewBuilder("negctl")
	b.Movi(isa.R6, int64(math.Float64bits(1.0)))
	b.Movqx(isa.X1, isa.R6)
	b.Movi(isa.R6, int64(math.Float64bits(3.0)))
	b.Movqx(isa.X2, isa.R6)
	b.Movi(isa.R6, 0)
	b.Movqx(isa.X0, isa.R6)
	b.Movi(isa.R8, 0)
	b.Movi(isa.R9, 200)
	top := b.Label("top")
	b.Bind(top)
	b.FP2(isa.OpADDSD, isa.X0, isa.X0, isa.X1) // exact: small-integer sum
	b.FP2(isa.OpMULSD, isa.X4, isa.X0, isa.X1) // exact: ×1.0
	b.FP2(isa.OpDIVSD, isa.X5, isa.X0, isa.X2) // inexact: n/3 — the bad site
	b.Addi(isa.R8, isa.R8, 1)
	b.Blt(isa.R8, isa.R9, top)
	b.Hlt()
	m := machine.New(b.Build(), 4096)
	ch := Attach(m, 113, nil)
	drive(t, m)

	rep := analysis.BuildRootCause(113, ch.Sites())
	top1, ok := rep.TopSite()
	if !ok {
		t.Fatal("no attributed sites")
	}
	if top1.Op != "divsd" {
		t.Fatalf("rank-1 site is %s at %#x, want the injected divsd", top1.Op, top1.Addr)
	}
	if top1.LocalUlps <= 0 {
		t.Errorf("bad site charged %v local ulps, want > 0", top1.LocalUlps)
	}
	// All of the error lives at the one bad site.
	if rep.Sites99 != 1 {
		t.Errorf("Sites99 = %d, want 1 (all error at the injected site)", rep.Sites99)
	}
	for i := range rep.Sites {
		if s := &rep.Sites[i]; s.Op != "divsd" && s.LocalUlps != 0 {
			t.Errorf("exact site %s at %#x charged %v local ulps", s.Op, s.Addr, s.LocalUlps)
		}
	}
}

// maskedProgram runs one write-masked 512-bit add over distinguishable
// lane values.
func maskedProgram(mask int64) *isa.Program {
	b := isa.NewBuilder("masked")
	a8 := b.Float64s(0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8)
	c8 := b.Float64s(1, 2, 3, 4, 5, 6, 7, 8)
	b.Movi(isa.R4, int64(a8))
	b.Fldvz(isa.X0, isa.R4, 0)
	b.Movi(isa.R4, int64(c8))
	b.Fldvz(isa.X1, isa.R4, 0)
	b.Movi(isa.R5, mask)
	b.Kmovq(isa.K1, isa.R5)
	b.FP2Masked(isa.OpVADDPDKZ, isa.X2, isa.X0, isa.X1, isa.K1)
	b.Hlt()
	return b.Build()
}

// TestMaskedLanesDoNotShadowExecute: a K-masked z-form shadow-executes
// exactly its live lanes; masked-off lanes are neither computed nor
// attributed.
func TestMaskedLanesDoNotShadowExecute(t *testing.T) {
	for _, tc := range []struct {
		mask int64
		want uint64
	}{
		{0b11111111, 8},
		{0b01010001, 3},
		{0b00000000, 0},
	} {
		m := machine.New(maskedProgram(tc.mask), 1<<21)
		ch := Attach(m, 113, nil)
		drive(t, m)
		if got := ch.Stats().Ops; got != tc.want {
			t.Errorf("mask %#b: shadow-executed %d lanes, want %d", tc.mask, got, tc.want)
		}
		sites := ch.Sites()
		if tc.want == 0 {
			if len(sites) != 0 {
				t.Errorf("mask 0: attributed %d sites, want none", len(sites))
			}
			continue
		}
		if len(sites) != 1 || sites[0].Op != "vaddpdzk" || sites[0].Count != tc.want {
			t.Errorf("mask %#b: sites = %+v, want one vaddpdzk row with count %d", tc.mask, sites, tc.want)
		}
	}
}

// TestPackedLanesAllAttributed: an unmasked z-form charges all 8 lanes
// to one site.
func TestPackedLanesAllAttributed(t *testing.T) {
	b := isa.NewBuilder("packed")
	a8 := b.Float64s(0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8)
	c8 := b.Float64s(1, 2, 3, 4, 5, 6, 7, 8)
	b.Movi(isa.R4, int64(a8))
	b.Fldvz(isa.X0, isa.R4, 0)
	b.Movi(isa.R4, int64(c8))
	b.Fldvz(isa.X1, isa.R4, 0)
	b.FP2(isa.OpVADDPDZ, isa.X2, isa.X0, isa.X1)
	b.FP2(isa.OpADDPD, isa.X3, isa.X0, isa.X1) // SSE width: 2 lanes
	b.Hlt()
	m := machine.New(b.Build(), 1<<21)
	ch := Attach(m, 113, nil)
	drive(t, m)
	if got := ch.Stats().Ops; got != 10 {
		t.Errorf("ops = %d, want 8 z-lanes + 2 pd lanes", got)
	}
}

// TestScalar32ShadowExecutes: scalar binary32 arithmetic is supported
// and measured in binary32 ulps.
func TestScalar32ShadowExecutes(t *testing.T) {
	b := isa.NewBuilder("scalar32")
	s4 := b.Float32s(0.1, 0.3, 0, 0)
	b.Movi(isa.R4, int64(s4))
	b.Flds(isa.X0, isa.R4, 0)
	b.Flds(isa.X1, isa.R4, 4)
	b.FP2(isa.OpADDSS, isa.X2, isa.X0, isa.X1) // 0.1f+0.3f rounds
	b.Hlt()
	m := machine.New(b.Build(), 1<<21)
	ch := Attach(m, 113, nil)
	drive(t, m)
	st := ch.Stats()
	if st.Ops != 1 {
		t.Fatalf("ops = %d, want 1", st.Ops)
	}
	if st.LocalUlps <= 0 || st.LocalUlps > 0.5 {
		t.Errorf("local error = %v, want (0, 0.5] for one correctly rounded op", st.LocalUlps)
	}
}

// TestDirtyEnvironmentSkipsShadowing: directed rounding disables
// shadow execution (results would diverge for non-rounding reasons).
func TestDirtyEnvironmentSkipsShadowing(t *testing.T) {
	ru := mxcsr.Default
	ru.SetRC(softfloat.RoundUp)
	b := isa.NewBuilder("dirtyenv")
	scratch := b.Words(uint64(ru))
	b.Movi(isa.R4, int64(scratch))
	b.Ldmxcsr(isa.R4, 0)
	b.Movi(isa.R6, int64(math.Float64bits(0.1)))
	b.Movqx(isa.X0, isa.R6)
	b.FP2(isa.OpADDSD, isa.X1, isa.X0, isa.X0)
	b.Hlt()
	m := machine.New(b.Build(), 1<<21)
	ch := Attach(m, 113, nil)
	drive(t, m)
	if got := ch.Stats().Ops; got != 0 {
		t.Errorf("ops = %d under round-up, want 0", got)
	}
	if len(ch.Sites()) != 0 {
		t.Errorf("sites attributed under a dirty environment: %+v", ch.Sites())
	}
}

// TestObsMetricsWired: the channel feeds the observability registry
// when one is attached, and tolerates nil.
func TestObsMetricsWired(t *testing.T) {
	om := obs.New(obs.Options{})
	m := machine.New(maskedProgram(0b1111), 1<<21)
	Attach(m, 113, &om.Shadow)
	drive(t, m)
	if got := om.Shadow.Channels.Load(); got != 1 {
		t.Errorf("shadow.channels = %d, want 1", got)
	}
	if got := om.Shadow.Ops.Load(); got != 4 {
		t.Errorf("shadow.ops = %d, want 4", got)
	}
	if got := om.Shadow.Sites.Load(); got != 1 {
		t.Errorf("shadow.sites = %d, want 1", got)
	}
}

// TestMemoryShadowThreading: a stored high-precision shadow survives a
// round trip through memory and keeps accumulating drift.
func TestMemoryShadowThreading(t *testing.T) {
	b := isa.NewBuilder("memthread")
	b.Movi(isa.R6, int64(math.Float64bits(0.1)))
	b.Movqx(isa.X1, isa.R6)
	b.Movi(isa.R6, 0)
	b.Movqx(isa.X0, isa.R6)
	b.Movi(isa.R10, 512)
	b.Movi(isa.R8, 0)
	b.Movi(isa.R9, 1000)
	top := b.Label("top")
	b.Bind(top)
	b.FP2(isa.OpADDSD, isa.X0, isa.X0, isa.X1)
	b.Fst(isa.R10, 0, isa.X0) // spill
	b.Fld(isa.X0, isa.R10, 0) // reload: shadow must follow
	b.Addi(isa.R8, isa.R8, 1)
	b.Blt(isa.R8, isa.R9, top)
	b.Hlt()
	m := machine.New(b.Build(), 4096)
	ch := Attach(m, 113, nil)
	drive(t, m)
	st := ch.Stats()
	if st.Ops < 1000 {
		t.Fatalf("ops = %d, want 1000", st.Ops)
	}
	// If the shadow were dropped at each spill, every add would restart
	// from the native value and no drift could accumulate past 1 ulp.
	if st.MaxUlps < 2 {
		t.Errorf("maxUlps = %d, want accumulated drift ≥ 2 (memory shadow lost?)", st.MaxUlps)
	}
}

// TestSiteTableBounded: the per-site map stops growing at maxSites and
// counts the overflow instead of accumulating unboundedly.
func TestSiteTableBounded(t *testing.T) {
	ch := &Channel{prec: 53, wide: widePrec(53)}
	for i := 0; i < maxSites+100; i++ {
		ch.site(uint64(i)*8, "addsd")
	}
	if len(ch.sites) != maxSites {
		t.Errorf("site table grew to %d, want cap %d", len(ch.sites), maxSites)
	}
	if ch.siteOverflow != 100 {
		t.Errorf("overflow count = %d, want 100", ch.siteOverflow)
	}
}
