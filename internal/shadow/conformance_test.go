package shadow

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/isa"
	"repro/internal/softfloat"
)

// The conformance property behind the prec-53/24 shadow modes: for every
// supported operation, evaluating at wide precision from the native
// inputs and rounding once through float64/float32 reproduces the
// softfloat FPU bit-exactly, signed zeros included. Lanes the policy
// skips (non-finite operands or results) are exactly the lanes softfloat
// resolves with NaN/Inf special cases, so everything that shadow-executes
// must agree to the last bit.

var rnEnv = softfloat.Env{RM: softfloat.RoundNearestEven}

// corpus64 mixes the boundary patterns (zeros, denormals, powers of two,
// overflow fringe, non-finites to be skipped) with seeded random bit
// patterns and random mid-range values.
func corpus64() []uint64 {
	c := []uint64{
		pzero64, nzero64,
		minDen64, sign64 | minDen64,
		0x000FFFFFFFFFFFFF,          // largest denormal
		0x0010000000000000,          // smallest normal
		maxFin64, sign64 | maxFin64, // overflow fringe
		posInf64, sign64 | posInf64,
		qnan64,
		math.Float64bits(1.0), math.Float64bits(-1.0),
		math.Float64bits(0.1), math.Float64bits(0.5),
		math.Float64bits(1.5), math.Float64bits(2.0),
		math.Float64bits(math.Pi), math.Float64bits(1e300),
		math.Float64bits(1e-300), math.Float64bits(3.0),
	}
	r := rand.New(rand.NewSource(42))
	for i := 0; i < 40; i++ {
		c = append(c, r.Uint64())
	}
	for i := 0; i < 20; i++ {
		c = append(c, math.Float64bits((r.Float64()-0.5)*math.Ldexp(1, r.Intn(120)-60)))
	}
	return c
}

func corpus32() []uint32 {
	c := []uint32{
		0, sign32,
		1, sign32 | 1,
		0x007FFFFF, 0x00800000,
		0x7F7FFFFF, sign32 | 0x7F7FFFFF,
		0x7F800000, 0xFF800000,
		0x7FC00000,
		math.Float32bits(1.0), math.Float32bits(-1.0),
		math.Float32bits(0.1), math.Float32bits(0.5),
		math.Float32bits(1.5), math.Float32bits(3.0),
		math.Float32bits(1e30), math.Float32bits(1e-30),
	}
	r := rand.New(rand.NewSource(43))
	for i := 0; i < 40; i++ {
		c = append(c, r.Uint32())
	}
	for i := 0; i < 20; i++ {
		c = append(c, math.Float32bits(float32((r.Float64()-0.5)*math.Ldexp(1, r.Intn(60)-30))))
	}
	return c
}

func TestConformance64Arith(t *testing.T) {
	ops := []struct {
		fp   isa.FPOp
		name string
		soft func(a, b uint64) uint64
	}{
		{isa.FPAdd, "add", func(a, b uint64) uint64 { r, _ := softfloat.Add64(a, b, rnEnv); return r }},
		{isa.FPSub, "sub", func(a, b uint64) uint64 { r, _ := softfloat.Sub64(a, b, rnEnv); return r }},
		{isa.FPMul, "mul", func(a, b uint64) uint64 { r, _ := softfloat.Mul64(a, b, rnEnv); return r }},
		{isa.FPDiv, "div", func(a, b uint64) uint64 { r, _ := softfloat.Div64(a, b, rnEnv); return r }},
		{isa.FPMin, "min", func(a, b uint64) uint64 { r, _ := softfloat.Min64(a, b, rnEnv); return r }},
		{isa.FPMax, "max", func(a, b uint64) uint64 { r, _ := softfloat.Max64(a, b, rnEnv); return r }},
	}
	corpus := corpus64()
	wide := widePrec(53)
	compared := 0
	for _, op := range ops {
		for _, a := range corpus {
			for _, b := range corpus {
				want := op.soft(a, b)
				if !finite64(a) || !finite64(b) || !finite64(want) {
					continue // policy: skipped, never shadow-executed
				}
				r, ok := evalArith(op.fp, bigOf64(a), bigOf64(b), wide)
				if !ok {
					t.Fatalf("%s(%#x,%#x): eval refused a finite-result op", op.name, a, b)
				}
				got := nativeBits64(roundShadow64(r, 53))
				if got != want {
					t.Fatalf("%s(%#x,%#x) = %#x, softfloat %#x", op.name, a, b, got, want)
				}
				compared++
			}
		}
	}
	if compared < 10000 {
		t.Fatalf("only %d comparisons ran; corpus too thin", compared)
	}
}

func TestConformance64Sqrt(t *testing.T) {
	wide := widePrec(53)
	zero := bigOf64(0)
	compared := 0
	for _, a := range corpus64() {
		want, _ := softfloat.Sqrt64(a, rnEnv)
		if !finite64(a) || !finite64(want) {
			continue
		}
		r, ok := evalArith(isa.FPSqrt, bigOf64(a), zero, wide)
		if !ok {
			t.Fatalf("sqrt(%#x): eval refused a finite-result op", a)
		}
		if got := nativeBits64(roundShadow64(r, 53)); got != want {
			t.Fatalf("sqrt(%#x) = %#x, softfloat %#x", a, got, want)
		}
		compared++
	}
	if compared < 30 {
		t.Fatalf("only %d comparisons ran", compared)
	}
}

func TestConformance64FMA(t *testing.T) {
	variants := []struct {
		v    isa.FMAVariant
		name string
		soft func(a, b, c uint64) uint64
	}{
		{isa.FMAdd, "fmadd", func(a, b, c uint64) uint64 { r, _ := softfloat.FMA64(a, b, c, rnEnv); return r }},
		{isa.FMSub, "fmsub", func(a, b, c uint64) uint64 {
			r, _ := softfloat.FMA64(a, b, c^sign64, rnEnv)
			return r
		}},
	}
	// A reduced corpus keeps the triple loop tractable.
	corpus := corpus64()[:32]
	wide := widePrec(53)
	compared := 0
	for _, v := range variants {
		for _, a := range corpus {
			for _, b := range corpus {
				for _, c := range corpus {
					want := v.soft(a, b, c)
					if !finite64(a) || !finite64(b) || !finite64(c) || !finite64(want) {
						continue
					}
					r, ok := evalFMA(v.v, bigOf64(a), bigOf64(b), bigOf64(c), wide)
					if !ok {
						t.Fatalf("%s(%#x,%#x,%#x): eval refused", v.name, a, b, c)
					}
					got := nativeBits64(roundShadow64(r, 53))
					if got != want {
						t.Fatalf("%s(%#x,%#x,%#x) = %#x, softfloat %#x", v.name, a, b, c, got, want)
					}
					compared++
				}
			}
		}
	}
	if compared < 10000 {
		t.Fatalf("only %d comparisons ran; corpus too thin", compared)
	}
}

func TestConformance32Arith(t *testing.T) {
	ops := []struct {
		fp   isa.FPOp
		name string
		soft func(a, b uint32) uint32
	}{
		{isa.FPAdd, "add", func(a, b uint32) uint32 { r, _ := softfloat.Add32(a, b, rnEnv); return r }},
		{isa.FPSub, "sub", func(a, b uint32) uint32 { r, _ := softfloat.Sub32(a, b, rnEnv); return r }},
		{isa.FPMul, "mul", func(a, b uint32) uint32 { r, _ := softfloat.Mul32(a, b, rnEnv); return r }},
		{isa.FPDiv, "div", func(a, b uint32) uint32 { r, _ := softfloat.Div32(a, b, rnEnv); return r }},
		{isa.FPMin, "min", func(a, b uint32) uint32 { r, _ := softfloat.Min32(a, b, rnEnv); return r }},
		{isa.FPMax, "max", func(a, b uint32) uint32 { r, _ := softfloat.Max32(a, b, rnEnv); return r }},
	}
	corpus := corpus32()
	wide := widePrec(24)
	compared := 0
	for _, op := range ops {
		for _, a := range corpus {
			for _, b := range corpus {
				want := op.soft(a, b)
				if !finite32(a) || !finite32(b) || !finite32(want) {
					continue
				}
				r, ok := evalArith(op.fp, bigOf32(a), bigOf32(b), wide)
				if !ok {
					t.Fatalf("%s(%#x,%#x): eval refused a finite-result op", op.name, a, b)
				}
				got := nativeBits32(roundShadow32(r, 24))
				if got != want {
					t.Fatalf("%s(%#x,%#x) = %#x, softfloat %#x", op.name, a, b, got, want)
				}
				compared++
			}
		}
	}
	if compared < 10000 {
		t.Fatalf("only %d comparisons ran; corpus too thin", compared)
	}
}

func TestConformance32FMA(t *testing.T) {
	corpus := corpus32()[:32]
	wide := widePrec(24)
	compared := 0
	for _, a := range corpus {
		for _, b := range corpus {
			for _, c := range corpus {
				want, _ := softfloat.FMA32(a, b, c, rnEnv)
				if !finite32(a) || !finite32(b) || !finite32(c) || !finite32(want) {
					continue
				}
				r, ok := evalFMA(isa.FMAdd, bigOf32(a), bigOf32(b), bigOf32(c), wide)
				if !ok {
					t.Fatalf("fmadd(%#x,%#x,%#x): eval refused", a, b, c)
				}
				got := nativeBits32(roundShadow32(r, 24))
				if got != want {
					t.Fatalf("fmadd(%#x,%#x,%#x) = %#x, softfloat %#x", a, b, c, got, want)
				}
				compared++
			}
		}
	}
	if compared < 5000 {
		t.Fatalf("only %d comparisons ran; corpus too thin", compared)
	}
}

func TestSupportedForms(t *testing.T) {
	// The predicate the whole channel hangs off: binary64 arith/FMA at
	// any width, scalar binary32, nothing else.
	yes := []isa.Opcode{
		isa.OpADDSD, isa.OpDIVSD, isa.OpSQRTSD, isa.OpMINSD,
		isa.OpADDPD, isa.OpVADDPDZ, isa.OpVADDPDKZ, isa.OpVSQRTPDKZ,
		isa.OpVFMADDSD, isa.OpVFMADDPDZ,
		isa.OpADDSS, isa.OpMULSS, isa.OpVFMADDSS,
	}
	no := []isa.Opcode{
		isa.OpVADDPSZ, isa.OpVADDPSKZ, // packed binary32
		isa.OpCVTSD2SS, isa.OpCMPSD, isa.OpUCOMISD,
		isa.OpROUNDSD, isa.OpVDPPS, isa.OpMOVSD, isa.OpFLD,
	}
	for _, op := range yes {
		if !Supported(op) {
			t.Errorf("Supported(%s) = false, want true", op.Info().Name)
		}
	}
	for _, op := range no {
		if Supported(op) {
			t.Errorf("Supported(%s) = true, want false", op.Info().Name)
		}
	}
}
