package shadow

import (
	"math"
	"math/big"
)

// ULP distance on the monotone integer lattice of floating point bit
// patterns. Policy (the fix for mitigate's old MaxRelError, which was
// undefined at 0.0 and non-finite values):
//
//   - Finite values, including denormals, sit on an ordinal line where
//     adjacent representable values are distance 1 apart. The line is
//     magnitude-symmetric: negative values are the mirrored ordinals.
//   - +0 and −0 are the *same* point (distance 0, and distance 1 to the
//     smallest denormal of either sign).
//   - ±Inf sit on the line one step beyond ±MaxFinite, so Inf−Inf style
//     divergences are huge but finite and comparable.
//   - Two NaNs are distance 0 (both sides agree the result is
//     undefined); exactly one NaN is incomparable — the distance is
//     meaningless, and callers count rather than accumulate it.

const (
	sign64 = uint64(1) << 63
	sign32 = uint32(1) << 31
)

func isNaN64(b uint64) bool {
	return b&^sign64 > 0x7FF0000000000000
}

func isNaN32(b uint32) bool {
	return b&^sign32 > 0x7F800000
}

func finite64(b uint64) bool { return b&^sign64 < 0x7FF0000000000000 }

func finite32(b uint32) bool { return b&^sign32 < 0x7F800000 }

// ord64 maps a non-NaN binary64 pattern onto the ordinal line,
// collapsing the two zeros onto one point.
func ord64(b uint64) uint64 {
	mag := b &^ sign64
	if b&sign64 != 0 {
		return sign64 - mag
	}
	return sign64 + mag
}

func ord32(b uint32) uint32 {
	mag := b &^ sign32
	if b&sign32 != 0 {
		return sign32 - mag
	}
	return sign32 + mag
}

// Dist64 returns the integer ULP distance between two binary64 bit
// patterns under the policy above. ok is false when exactly one side is
// NaN (incomparable); both-NaN is (0, true).
func Dist64(a, b uint64) (uint64, bool) {
	an, bn := isNaN64(a), isNaN64(b)
	if an || bn {
		return 0, an == bn
	}
	oa, ob := ord64(a), ord64(b)
	if oa < ob {
		return ob - oa, true
	}
	return oa - ob, true
}

// Dist32 is Dist64 for binary32 patterns.
func Dist32(a, b uint32) (uint64, bool) {
	an, bn := isNaN32(a), isNaN32(b)
	if an || bn {
		return 0, an == bn
	}
	oa, ob := ord32(a), ord32(b)
	if oa < ob {
		return uint64(ob - oa), true
	}
	return uint64(oa - ob), true
}

// ulpExp64 returns e such that ulp(x) = 2^e for the finite binary64
// pattern b: the quantum of the denormal range for zeros and denormals,
// the regular spacing otherwise.
func ulpExp64(b uint64) int {
	e := int(b >> 52 & 0x7FF)
	if e == 0 {
		return -1074
	}
	return e - 1075
}

func ulpExp32(b uint32) int {
	e := int(b >> 23 & 0xFF)
	if e == 0 {
		return -149
	}
	return e - 150
}

// fracUlpCap bounds a single fractional-ULP sample so a pathological
// divergence (denormal native vs astronomically drifted shadow) cannot
// poison a site's running sums with Inf.
const fracUlpCap = 1e18

// fracUlps64 measures |diff| in units of ulp(out), where out is the
// finite native result the difference is taken against. The result is
// exact 0 for a zero difference and ≤ 0.5 for any single correctly
// rounded operation.
func fracUlps64(diff *big.Float, out uint64) float64 {
	if diff.Sign() == 0 {
		return 0
	}
	scaled := new(big.Float).SetMantExp(diff, -ulpExp64(out))
	f, _ := scaled.Float64()
	f = math.Abs(f)
	if f > fracUlpCap {
		return fracUlpCap
	}
	return f
}

func fracUlps32(diff *big.Float, out uint32) float64 {
	if diff.Sign() == 0 {
		return 0
	}
	scaled := new(big.Float).SetMantExp(diff, -ulpExp32(out))
	f, _ := scaled.Float64()
	f = math.Abs(f)
	if f > fracUlpCap {
		return fracUlpCap
	}
	return f
}

// relErr returns |exact−native| / |exact| as a float64, 0 when the
// exact result is zero (the native result of an exactly-zero real is
// ±0, so there is no error to normalize).
func relErr(diff, exact *big.Float) float64 {
	if exact.Sign() == 0 || diff.Sign() == 0 {
		return 0
	}
	q := new(big.Float).Quo(diff, exact)
	f, _ := q.Float64()
	f = math.Abs(f)
	if f > fracUlpCap {
		return fracUlpCap
	}
	return f
}
