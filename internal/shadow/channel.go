package shadow

import (
	"math/big"
	"sort"

	"repro/internal/analysis"
	"repro/internal/isa"
	"repro/internal/machine"
	"repro/internal/obs"
	"repro/internal/softfloat"
)

// Bounds on the channel's tracking maps. A guest that touches more
// distinct FP sites or shadowed memory words than this degrades
// gracefully: overflowing sites stop accumulating (counted), and
// overflowing memory shadows are dropped (the destination falls back to
// reset-to-native on the next load). Neither bound ever affects guest
// execution.
const (
	maxSites      = 1 << 14
	maxMemShadows = 1 << 16
)

// memShadow is the shadow of one stored float: v at the channel
// precision, single marking a 4-byte (binary32) slot. A load only
// consumes a shadow whose width matches.
type memShadow struct {
	v      *big.Float
	single bool
}

// siteAgg accumulates one instruction site's attribution statistics.
type siteAgg struct {
	op        string
	count     uint64
	diverged  uint64
	nonFinite uint64
	localUlps float64
	localRel  float64
	propUlps  float64
	totalUlps float64
	maxUlps   uint64
}

// pend is the capture of the instruction currently flowing through
// Step: identity always, plus pre-execution operand state when the op
// is shadow-executable (the destination may alias a source, so inputs
// must be read before the machine writes back).
type pend struct {
	inst  *isa.Inst
	info  *isa.OpInfo
	addr  uint64
	arith bool   // supported arith/FMA with a clean FP environment
	mask  uint64 // live lanes (K-masked forms: masked-off lanes are dead)

	natA, natB, natC [isa.VecWords]uint64
	shA, shB, shC    [isa.VecWords]*big.Float
}

// Channel is the shadow-value channel for one machine. It implements
// machine.ShadowSink; Attach wires it in. All state is per-thread (the
// kernel simulation drives each machine single-threadedly), so the
// channel needs no locking.
type Channel struct {
	m    *machine.Machine
	prec uint
	wide uint
	om   *obs.ShadowMetrics

	// regs shadows each 64-bit vector word; regs32 shadows the low
	// binary32 lane of word 0 (scalar-F32 ops write only that half).
	// nil means "equal to the native value": shadows materialize
	// lazily from the architectural bits and invalidation is simply a
	// reset to nil. The two tracks are mutually exclusive per word 0 —
	// every 64-bit write clears the 32-bit shadow and vice versa.
	regs   [isa.NumVecRegs][isa.VecWords]*big.Float
	regs32 [isa.NumVecRegs]*big.Float
	mem    map[uint64]memShadow

	sites        map[uint64]*siteAgg
	siteOverflow uint64
	memDrops     uint64

	stats Stats
	pend  pend
}

// Stats is the channel's scalar accounting, for the mitigation
// executor and benchmarks.
type Stats struct {
	// Ops counts shadow-executed lane operations (comparison points).
	Ops uint64
	// Diverged counts lanes whose shadow rounded to different
	// native-format bits than the hardware produced.
	Diverged uint64
	// NonFinite counts lanes skipped under the NaN/Inf policy.
	NonFinite uint64
	// Invalidations counts destination shadows reset to native by
	// unsupported or non-finite operations.
	Invalidations uint64
	// MaxUlps is the largest integer ULP divergence observed.
	MaxUlps uint64
	// LocalUlps is the total fractional-ULP local error accumulated
	// across all sites.
	LocalUlps float64
}

// Attach builds a channel at the given shadow precision and registers
// it as m's shadow sink. om may be nil (zero-overhead contract).
func Attach(m *machine.Machine, prec uint, om *obs.ShadowMetrics) *Channel {
	ch := &Channel{
		m:    m,
		prec: prec,
		wide: widePrec(prec),
		om:   om,
		mem:  make(map[uint64]memShadow),
	}
	m.Shadow = ch
	if om != nil {
		om.Channels.Inc()
	}
	return ch
}

// Prec returns the shadow mantissa precision in bits.
func (ch *Channel) Prec() uint { return ch.prec }

// Stats returns the channel's scalar accounting so far.
func (ch *Channel) Stats() Stats { return ch.stats }

// SiteCount returns the number of distinct attributed sites.
func (ch *Channel) SiteCount() int { return len(ch.sites) }

// Sites converts the per-site aggregation into attribution rows,
// ordered by address. Ranking is the aggregator's job
// (analysis.BuildRootCause).
func (ch *Channel) Sites() []analysis.RootCauseSite {
	out := make([]analysis.RootCauseSite, 0, len(ch.sites))
	for addr, agg := range ch.sites {
		out = append(out, analysis.RootCauseSite{
			Addr:      addr,
			Op:        agg.op,
			Count:     agg.count,
			Diverged:  agg.diverged,
			NonFinite: agg.nonFinite,
			LocalUlps: agg.localUlps,
			LocalRel:  agg.localRel,
			PropUlps:  agg.propUlps,
			TotalUlps: agg.totalUlps,
			MaxUlps:   agg.maxUlps,
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Addr < out[j].Addr })
	return out
}

// envClean reports whether the FP environment matches the shadow
// semantics: round-to-nearest-even, no FTZ, no DAZ. Ops retired under
// any other environment are not shadow-executed (their results would
// diverge for reasons that are not rounding error).
func (ch *Channel) envClean() bool {
	e := ch.m.CPU.MXCSR.Env()
	return e.RM == softfloat.RoundNearestEven && !e.FTZ && !e.DAZ
}

// PreStep implements machine.ShadowSink: capture the instruction and,
// for shadow-executable ops, its pre-execution operands.
func (ch *Channel) PreStep(addr uint64, inst *isa.Inst, info *isa.OpInfo) {
	p := &ch.pend
	p.inst, p.info, p.addr = inst, info, addr
	p.arith = false
	switch info.Class {
	case isa.ClassFPArith, isa.ClassFMA:
		if !Supported(inst.Op) || !ch.envClean() {
			return
		}
		p.arith = true
		p.mask = uint64(1)<<uint(info.Lanes) - 1
		if info.Masked {
			p.mask &= ch.m.CPU.K[inst.Rs3%isa.NumMaskRegs]
		}
		ch.capture(p, inst, info)
	}
}

// capture records native input bits and shadow operands per live lane.
// Scalar binary32 ops live in the low half of word 0.
func (ch *Channel) capture(p *pend, inst *isa.Inst, info *isa.OpInfo) {
	c := &ch.m.CPU
	fma := info.Class == isa.ClassFMA
	if info.Prec == isa.F32 {
		p.natA[0] = c.X[inst.Rs1][0] & 0xFFFFFFFF
		p.natB[0] = c.X[inst.Rs2][0] & 0xFFFFFFFF
		p.shA[0] = ch.regs32[inst.Rs1]
		p.shB[0] = ch.regs32[inst.Rs2]
		if fma {
			p.natC[0] = c.X[inst.Rs3][0] & 0xFFFFFFFF
			p.shC[0] = ch.regs32[inst.Rs3]
		}
		return
	}
	for l := 0; l < info.Lanes; l++ {
		if p.mask>>uint(l)&1 == 0 {
			continue
		}
		p.natA[l] = c.X[inst.Rs1][l]
		p.natB[l] = c.X[inst.Rs2][l]
		p.shA[l] = ch.regs[inst.Rs1][l]
		p.shB[l] = ch.regs[inst.Rs2][l]
		if fma {
			p.natC[l] = c.X[inst.Rs3][l]
			p.shC[l] = ch.regs[inst.Rs3][l]
		}
	}
}

// Retired implements machine.ShadowSink: fold the retired instruction
// into the shadow state. Instructions that fault or trap before
// retirement never reach here — their pend capture goes stale and is
// overwritten by the next PreStep.
func (ch *Channel) Retired() {
	p := &ch.pend
	if p.inst == nil {
		return
	}
	inst, info := p.inst, p.info
	p.inst = nil
	switch info.Class {
	case isa.ClassFPArith, isa.ClassFMA:
		if !p.arith {
			ch.invalidateReg(inst.Rd)
			return
		}
		ch.applyArith(p, inst, info)
	case isa.ClassFPConvert:
		ch.applyConvert(inst, info)
	case isa.ClassFPCompare:
		// cmpsd/cmpss write an all-ones/zeros predicate into the
		// destination lane; comi/ucomi write an integer register.
		switch inst.Op {
		case isa.OpCMPSD, isa.OpCMPSS:
			ch.invalidateWord(inst.Rd, 0)
		}
	case isa.ClassFPRound, isa.ClassFPDot:
		ch.invalidateReg(inst.Rd)
	case isa.ClassFPMove:
		ch.applyMove(inst)
	case isa.ClassMem:
		ch.applyMem(inst)
	case isa.ClassInt, isa.ClassBranch, isa.ClassMask, isa.ClassSys:
		// No floating point state written.
	}
}

// setWord installs (or resets) the shadow of a 64-bit vector word.
// Word 0 writes clear the binary32 shadow track.
func (ch *Channel) setWord(r uint8, l int, v *big.Float) {
	ch.regs[r][l] = v
	if l == 0 {
		ch.regs32[r] = nil
	}
}

// set32 installs the shadow of the low binary32 lane; the 64-bit word
// containing it is no longer coherently shadowed.
func (ch *Channel) set32(r uint8, v *big.Float) {
	ch.regs32[r] = v
	ch.regs[r][0] = nil
}

func (ch *Channel) invalidateWord(r uint8, l int) {
	if ch.regs[r][l] != nil || (l == 0 && ch.regs32[r] != nil) {
		ch.bumpInvalidation()
	}
	ch.setWord(r, l, nil)
}

func (ch *Channel) invalidateReg(r uint8) {
	for l := range ch.regs[r] {
		if ch.regs[r][l] != nil {
			ch.bumpInvalidation()
		}
		ch.regs[r][l] = nil
	}
	if ch.regs32[r] != nil {
		ch.bumpInvalidation()
		ch.regs32[r] = nil
	}
}

func (ch *Channel) bumpInvalidation() {
	ch.stats.Invalidations++
	if ch.om != nil {
		ch.om.Invalidations.Inc()
	}
}

// laneResult is one shadow-executed lane comparison.
type laneResult struct {
	class SampleClass
	sh    *big.Float
	local float64
	rel   float64
	total float64
	dist  uint64
}

// applyArith folds a supported arithmetic/FMA retirement into the
// shadow state and the site's attribution row. Masked-off lanes are
// untouched: they neither compute nor shadow-execute, and keep their
// prior shadows (merge masking preserved the architectural lanes too).
func (ch *Channel) applyArith(p *pend, inst *isa.Inst, info *isa.OpInfo) {
	if info.Prec != isa.F32 && p.mask == 0 {
		// Fully masked-off: nothing computed, nothing to attribute, and
		// merge masking preserved the destination (shadows included).
		return
	}
	agg := ch.site(p.addr, info.Name)
	if info.Prec == isa.F32 {
		natOut := uint32(ch.m.CPU.X[inst.Rd][0])
		r := ch.evalLane32(p, info, natOut)
		if r.class == SampleNonFinite {
			ch.invalidateWord(inst.Rd, 0)
		} else {
			ch.set32(inst.Rd, r.sh)
		}
		ch.account(agg, r)
		return
	}
	for l := 0; l < info.Lanes; l++ {
		if p.mask>>uint(l)&1 == 0 {
			continue
		}
		natOut := ch.m.CPU.X[inst.Rd][l]
		r := ch.evalLane64(p, info, l, natOut)
		if r.class == SampleNonFinite {
			ch.invalidateWord(inst.Rd, l)
		} else {
			ch.setWord(inst.Rd, l, r.sh)
		}
		ch.account(agg, r)
	}
}

// account folds one lane comparison into a site row (nil when the site
// table overflowed) and the channel stats.
func (ch *Channel) account(agg *siteAgg, r laneResult) {
	switch r.class {
	case SampleNonFinite:
		ch.stats.NonFinite++
		if agg != nil {
			agg.nonFinite++
		}
		if ch.om != nil {
			ch.om.NonFinite.Inc()
		}
		return
	case SampleExact, SampleRounded, SampleDiverged:
	}
	ch.stats.Ops++
	if r.class == SampleDiverged {
		ch.stats.Diverged++
	}
	if r.dist > ch.stats.MaxUlps {
		ch.stats.MaxUlps = r.dist
	}
	ch.stats.LocalUlps += r.local
	if ch.om != nil {
		ch.om.Ops.Inc()
		ch.om.Divergence.Observe(r.dist)
	}
	if agg == nil {
		return
	}
	agg.count++
	if r.class == SampleDiverged {
		agg.diverged++
	}
	agg.localUlps += r.local
	agg.localRel += r.rel
	agg.totalUlps += r.total
	if prop := r.total - r.local; prop > 0 {
		agg.propUlps += prop
	}
	if r.dist > agg.maxUlps {
		agg.maxUlps = r.dist
	}
}

// evalLane64 runs the local and shadow evaluations for one binary64
// lane. Local error recomputes the op from the *native* inputs at wide
// precision against the native output; the shadow result reuses that
// evaluation unless a shadow operand has drifted from native.
func (ch *Channel) evalLane64(p *pend, info *isa.OpInfo, l int, natOut uint64) laneResult {
	natA, natB, natC := p.natA[l], p.natB[l], p.natC[l]
	fma := info.Class == isa.ClassFMA
	if !finite64(natA) || !finite64(natB) || (fma && !finite64(natC)) || !finite64(natOut) {
		return laneResult{class: SampleNonFinite}
	}
	aN, bN := bigOf64(natA), bigOf64(natB)
	var cN *big.Float
	var rLocal *big.Float
	var ok bool
	if fma {
		cN = bigOf64(natC)
		rLocal, ok = evalFMA(info.FMA, aN, bN, cN, ch.wide)
	} else {
		rLocal, ok = evalArith(info.FP, aN, bN, ch.wide)
	}
	if !ok {
		return laneResult{class: SampleNonFinite}
	}
	outB := bigOf64(natOut)
	diff := new(big.Float).SetPrec(ch.wide).Sub(rLocal, outB)
	local := fracUlps64(diff, natOut)
	rel := relErr(diff, rLocal)

	rShadow := rLocal
	if p.shA[l] != nil || p.shB[l] != nil || (fma && p.shC[l] != nil) {
		a, b := coalesce(p.shA[l], aN), coalesce(p.shB[l], bN)
		if fma {
			rShadow, ok = evalFMA(info.FMA, a, b, coalesce(p.shC[l], cN), ch.wide)
		} else {
			rShadow, ok = evalArith(info.FP, a, b, ch.wide)
		}
		if !ok {
			return laneResult{class: SampleNonFinite}
		}
	}
	sh := roundShadow64(rShadow, ch.prec)
	if sh.IsInf() {
		return laneResult{class: SampleNonFinite}
	}
	total := fracUlps64(new(big.Float).SetPrec(ch.wide).Sub(sh, outB), natOut)
	dist, _ := Dist64(natOut, nativeBits64(sh))
	class := SampleExact
	if dist > 0 {
		class = SampleDiverged
	} else if local > 0 {
		class = SampleRounded
	}
	return laneResult{class: class, sh: sh, local: local, rel: rel, total: total, dist: dist}
}

// evalLane32 is evalLane64 for the scalar binary32 lane.
func (ch *Channel) evalLane32(p *pend, info *isa.OpInfo, natOut uint32) laneResult {
	natA, natB, natC := uint32(p.natA[0]), uint32(p.natB[0]), uint32(p.natC[0])
	fma := info.Class == isa.ClassFMA
	if !finite32(natA) || !finite32(natB) || (fma && !finite32(natC)) || !finite32(natOut) {
		return laneResult{class: SampleNonFinite}
	}
	aN, bN := bigOf32(natA), bigOf32(natB)
	var cN *big.Float
	var rLocal *big.Float
	var ok bool
	if fma {
		cN = bigOf32(natC)
		rLocal, ok = evalFMA(info.FMA, aN, bN, cN, ch.wide)
	} else {
		rLocal, ok = evalArith(info.FP, aN, bN, ch.wide)
	}
	if !ok {
		return laneResult{class: SampleNonFinite}
	}
	outB := bigOf32(natOut)
	diff := new(big.Float).SetPrec(ch.wide).Sub(rLocal, outB)
	local := fracUlps32(diff, natOut)
	rel := relErr(diff, rLocal)

	rShadow := rLocal
	if p.shA[0] != nil || p.shB[0] != nil || (fma && p.shC[0] != nil) {
		a, b := coalesce(p.shA[0], aN), coalesce(p.shB[0], bN)
		if fma {
			rShadow, ok = evalFMA(info.FMA, a, b, coalesce(p.shC[0], cN), ch.wide)
		} else {
			rShadow, ok = evalArith(info.FP, a, b, ch.wide)
		}
		if !ok {
			return laneResult{class: SampleNonFinite}
		}
	}
	sh := roundShadow32(rShadow, ch.prec)
	if sh.IsInf() {
		return laneResult{class: SampleNonFinite}
	}
	total := fracUlps32(new(big.Float).SetPrec(ch.wide).Sub(sh, outB), natOut)
	dist, _ := Dist32(natOut, nativeBits32(sh))
	class := SampleExact
	if dist > 0 {
		class = SampleDiverged
	} else if local > 0 {
		class = SampleRounded
	}
	return laneResult{class: class, sh: sh, local: local, rel: rel, total: total, dist: dist}
}

func coalesce(sh, nat *big.Float) *big.Float {
	if sh != nil {
		return sh
	}
	return nat
}

// site returns the aggregation row for an instruction address, nil when
// the table is at capacity and the address is new.
func (ch *Channel) site(addr uint64, op string) *siteAgg {
	if agg, ok := ch.sites[addr]; ok {
		return agg
	}
	if ch.sites == nil {
		ch.sites = make(map[uint64]*siteAgg)
	}
	if len(ch.sites) >= maxSites {
		ch.siteOverflow++
		if ch.om != nil {
			ch.om.SiteOverflow.Inc()
		}
		return nil
	}
	agg := &siteAgg{op: op}
	ch.sites[addr] = agg
	if ch.om != nil && int64(len(ch.sites)) > ch.om.Sites.Load() {
		ch.om.Sites.Set(int64(len(ch.sites)))
	}
	return agg
}

// applyMove tracks register-to-register copies. movsd/movapd copy whole
// 64-bit words (shadows travel along); movss copies only the low half
// of word 0; movq from an integer register resets the word.
func (ch *Channel) applyMove(inst *isa.Inst) {
	switch inst.Op {
	case isa.OpMOVSD:
		ch.regs[inst.Rd][0] = ch.regs[inst.Rs1][0]
		ch.regs32[inst.Rd] = ch.regs32[inst.Rs1]
	case isa.OpMOVAPD:
		ch.regs[inst.Rd] = ch.regs[inst.Rs1]
		ch.regs32[inst.Rd] = ch.regs32[inst.Rs1]
	case isa.OpMOVSS:
		ch.regs[inst.Rd][0] = nil
		ch.regs32[inst.Rd] = ch.regs32[inst.Rs1]
	case isa.OpMOVQX:
		ch.invalidateWord(inst.Rd, 0)
	case isa.OpMOVXQ:
		// Vector to integer register; no shadow state involved.
	}
}

// applyConvert invalidates what a conversion wrote: word 0 for the
// scalar forms, the whole register for packed ps2dq. Conversions to an
// integer register leave vector shadows alone.
func (ch *Channel) applyConvert(inst *isa.Inst, info *isa.OpInfo) {
	switch info.Cvt {
	case isa.CvtSD2SS, isa.CvtSS2SD, isa.CvtSI2SD, isa.CvtSI2SDQ,
		isa.CvtSI2SS, isa.CvtSI2SSQ:
		ch.invalidateWord(inst.Rd, 0)
	case isa.CvtPS2DQ:
		ch.invalidateReg(inst.Rd)
	case isa.CvtSD2SI, isa.CvtTSD2SI, isa.CvtTSD2SIQ, isa.CvtSS2SI,
		isa.CvtTSS2SI:
		// Integer destination.
	}
}

// applyMem threads shadows through loads and stores. Every store first
// clobbers overlapping shadow entries (any byte overlap kills an
// entry); loads consume width-matched entries or reset to native.
func (ch *Channel) applyMem(inst *isa.Inst) {
	c := &ch.m.CPU
	var ea uint64
	if inst.Rs1 != 0 {
		ea = c.R[inst.Rs1]
	}
	ea += uint64(inst.Imm)
	switch inst.Op {
	case isa.OpFLD:
		ch.regs32[inst.Rd] = nil
		if ms, ok := ch.mem[ea]; ok && !ms.single {
			ch.regs[inst.Rd][0] = ms.v
		} else {
			ch.regs[inst.Rd][0] = nil
		}
	case isa.OpFST:
		ch.clobberMem(ea, 8)
		if sv := ch.regs[inst.Rs2][0]; sv != nil {
			ch.putMem(ea, sv, false)
		}
	case isa.OpFLDS:
		// Word 0 is replaced wholesale (upper half zeroed).
		ch.regs[inst.Rd][0] = nil
		if ms, ok := ch.mem[ea]; ok && ms.single {
			ch.regs32[inst.Rd] = ms.v
		} else {
			ch.regs32[inst.Rd] = nil
		}
	case isa.OpFSTS:
		ch.clobberMem(ea, 4)
		if sv := ch.regs32[inst.Rs2]; sv != nil {
			ch.putMem(ea, sv, true)
		}
	case isa.OpFLDV:
		ch.loadVec(inst.Rd, ea, 4)
	case isa.OpFSTV:
		ch.storeVec(inst.Rs2, ea, 4)
	case isa.OpFLDVZ:
		ch.loadVec(inst.Rd, ea, isa.VecWords)
	case isa.OpFSTVZ:
		ch.storeVec(inst.Rs2, ea, isa.VecWords)
	case isa.OpST:
		ch.clobberMem(ea, 8)
	case isa.OpSTMXCSR:
		ch.clobberMem(ea, 4)
	case isa.OpLD, isa.OpLDMXCSR:
		// Loads of non-float state.
	}
}

func (ch *Channel) loadVec(rd uint8, ea uint64, lanes int) {
	ch.regs32[rd] = nil
	for l := 0; l < lanes; l++ {
		if ms, ok := ch.mem[ea+uint64(8*l)]; ok && !ms.single {
			ch.regs[rd][l] = ms.v
		} else {
			ch.regs[rd][l] = nil
		}
	}
}

func (ch *Channel) storeVec(rs uint8, ea uint64, lanes int) {
	ch.clobberMem(ea, uint64(8*lanes))
	for l := 0; l < lanes; l++ {
		if sv := ch.regs[rs][l]; sv != nil {
			ch.putMem(ea+uint64(8*l), sv, false)
		}
	}
}

// clobberMem removes every shadow entry overlapping [ea, ea+size): a
// store of any width or kind invalidates what it partially overwrites.
func (ch *Channel) clobberMem(ea, size uint64) {
	if len(ch.mem) == 0 {
		return
	}
	start := ea - 7
	if ea < 7 {
		start = 0
	}
	for a := start; a < ea+size; a++ {
		ms, ok := ch.mem[a]
		if !ok {
			continue
		}
		w := uint64(8)
		if ms.single {
			w = 4
		}
		if a+w > ea {
			delete(ch.mem, a)
		}
	}
}

func (ch *Channel) putMem(ea uint64, v *big.Float, single bool) {
	if _, ok := ch.mem[ea]; !ok && len(ch.mem) >= maxMemShadows {
		ch.memDrops++
		if ch.om != nil {
			ch.om.MemDrops.Inc()
		}
		return
	}
	ch.mem[ea] = memShadow{v: v, single: single}
	if ch.om != nil && int64(len(ch.mem)) > ch.om.MemShadows.Load() {
		ch.om.MemShadows.Set(int64(len(ch.mem)))
	}
}
