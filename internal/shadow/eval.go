package shadow

import (
	"math"
	"math/big"

	"repro/internal/isa"
)

// baseWidePrec is the minimum working precision for the near-exact
// evaluation that local error is measured against. 256 ≥ 2·53+2, so the
// double rounding of wide-then-float64 is innocuous (Figueroa's
// theorem) and the prec-53 shadow path reproduces binary64 bit-exactly;
// the same margin holds for float32 at prec 24.
const baseWidePrec = 256

// widePrec returns the working precision for a shadow precision of prec
// bits: wide enough that rounding the wide result down to prec is
// equivalent to a single correctly rounded operation at prec. The 3p
// margin covers the worst case, the FMA tail addition, whose left
// operand (the exact product) carries up to 2·prec+2 significant bits.
func widePrec(prec uint) uint {
	if w := 3*prec + 8; w > baseWidePrec {
		return w
	}
	return baseWidePrec
}

// evalArith evaluates a scalar arithmetic op over big.Float operands at
// the given precision. ok=false means the op has no finite shadow
// semantics for these operands (0/0, sqrt of a negative, or a stray
// non-finite operand); callers invalidate the destination lane instead.
//
// Min and Max reproduce the SSE forwarding rule the softfloat FPU
// implements: the second operand wins unless the first is strictly
// ordered before (after) it — which covers the equal-magnitude and
// min(+0,−0) cases, since big.Float Cmp treats the zeros as equal.
func evalArith(fp isa.FPOp, a, b *big.Float, prec uint) (*big.Float, bool) {
	if a.IsInf() || b.IsInf() {
		return nil, false
	}
	z := new(big.Float).SetPrec(prec)
	switch fp {
	case isa.FPAdd:
		z.Add(a, b)
	case isa.FPSub:
		z.Sub(a, b)
	case isa.FPMul:
		z.Mul(a, b)
	case isa.FPDiv:
		if b.Sign() == 0 {
			// x/0 is ±Inf (comparable, handled by the caller's finite
			// check); 0/0 is NaN, which big.Float cannot represent.
			if a.Sign() == 0 {
				return nil, false
			}
		}
		z.Quo(a, b)
	case isa.FPSqrt:
		if a.Signbit() && a.Sign() != 0 {
			return nil, false
		}
		z.Sqrt(a)
	case isa.FPMin:
		if a.Cmp(b) < 0 {
			z.Set(a)
		} else {
			z.Set(b)
		}
	case isa.FPMax:
		if a.Cmp(b) > 0 {
			z.Set(a)
		} else {
			z.Set(b)
		}
	default:
		return nil, false
	}
	return z, true
}

// evalFMA evaluates a fused multiply-add variant with a single rounding
// at prec: the product is formed exactly (the scratch precision covers
// the full double-width product of prec-bit operands), then the addend
// is applied with a round-to-odd tail addition. Round-to-nearest here
// would be the classic double-rounding trap: a tiny addend whose only
// job is to break a tie at the product gets absorbed by the
// intermediate rounding, and the final rounding then resolves the tie
// the wrong way. Round-to-odd keeps that sticky information — the odd
// result is never a rounding boundary of any format ≥ 2 bits narrower,
// so the downstream nearest-rounding lands exactly where the infinitely
// precise sum would.
func evalFMA(v isa.FMAVariant, a, b, c *big.Float, prec uint) (*big.Float, bool) {
	if a.IsInf() || b.IsInf() || c.IsInf() {
		return nil, false
	}
	pp := a.Prec() + b.Prec() + 2
	if pp < prec {
		pp = prec
	}
	p := new(big.Float).SetPrec(pp).Mul(a, b)
	switch v {
	case isa.FMAdd, isa.FMSub:
	case isa.FNMAdd, isa.FNMSub:
		p.Neg(p)
	default:
		return nil, false
	}
	neg := v == isa.FMSub || v == isa.FNMSub
	z := new(big.Float).SetPrec(prec).SetMode(big.ToZero)
	if neg {
		z.Sub(p, c)
	} else {
		z.Add(p, c)
	}
	if z.Acc() != big.Exact && z.MinPrec() < prec {
		// Truncated with a last bit of 0: force it odd. The one-ulp
		// nudge toward the discarded tail is exact at prec bits.
		u := new(big.Float).SetMantExp(big.NewFloat(1), z.MantExp(nil)-int(prec))
		if z.Signbit() {
			u.Neg(u)
		}
		z.SetMode(big.ToNearestEven).Add(z, u)
	}
	z.SetMode(big.ToNearestEven)
	return z, true
}

// roundShadow64 rounds a wide result into the shadow number system for
// a binary64-format op: exact binary64 semantics (bounded exponent,
// gradual underflow, overflow to Inf) at prec 53, round-to-nearest at
// prec bits with an unbounded exponent otherwise.
func roundShadow64(r *big.Float, prec uint) *big.Float {
	if prec == 53 {
		f, _ := r.Float64()
		return new(big.Float).SetFloat64(f)
	}
	return new(big.Float).SetPrec(prec).Set(r)
}

// roundShadow32 is roundShadow64 for binary32-format ops: exact
// binary32 semantics at prec 24.
func roundShadow32(r *big.Float, prec uint) *big.Float {
	if prec == 24 {
		f, _ := r.Float32()
		return new(big.Float).SetFloat64(float64(f))
	}
	return new(big.Float).SetPrec(prec).Set(r)
}

// nativeBits64 rounds a shadow value to binary64 bits for the integer
// ULP comparison against the hardware result.
func nativeBits64(v *big.Float) uint64 {
	f, _ := v.Float64()
	return math.Float64bits(f)
}

func nativeBits32(v *big.Float) uint32 {
	f, _ := v.Float32()
	return math.Float32bits(f)
}

func bigOf64(bits uint64) *big.Float {
	return new(big.Float).SetFloat64(math.Float64frombits(bits))
}

func bigOf32(bits uint32) *big.Float {
	return new(big.Float).SetFloat64(float64(math.Float32frombits(bits)))
}
