package machine

import (
	"math"
	"testing"

	"repro/internal/isa"
	"repro/internal/softfloat"
)

// TestBoundsCheckOverflow is the regression test for the wrapped bounds
// comparison: a guest access near 2^64 made addr+8 overflow, pass the
// check, and panic the host on the slice expression. It must instead
// surface as a clean FaultEvent.
func TestBoundsCheckOverflow(t *testing.T) {
	for _, addr := range []uint64{
		0xFFFFFFFFFFFFFFFC, // addr+8 and addr+4 both wrap
		0xFFFFFFFFFFFFFFFF, // maximal address
		^uint64(0) - 6,     // addr+8 wraps, addr+4 does not
	} {
		b := isa.NewBuilder("wrap")
		b.Movi(isa.R1, int64(addr))
		b.Ld(isa.R2, isa.R1, 0)
		b.Hlt()
		m := New(b.Build(), 4096)
		var fault *FaultEvent
		for i := 0; i < 10 && fault == nil; i++ {
			if fe, ok := m.Step().(*FaultEvent); ok {
				fault = fe
			}
		}
		if fault == nil {
			t.Fatalf("load at %#x did not fault", addr)
		}
	}
	// The primitive accessors themselves must reject wrapping addresses.
	m := New(isa.NewBuilder("prim").Build(), 64)
	for _, addr := range []uint64{^uint64(0), ^uint64(0) - 3, ^uint64(0) - 7} {
		if _, ok := m.load64(addr); ok {
			t.Errorf("load64(%#x) passed bounds check", addr)
		}
		if m.store64(addr, 1) {
			t.Errorf("store64(%#x) passed bounds check", addr)
		}
		if _, ok := m.load32(addr); ok {
			t.Errorf("load32(%#x) passed bounds check", addr)
		}
		if m.store32(addr, 1) {
			t.Errorf("store32(%#x) passed bounds check", addr)
		}
	}
}

// eventFPProgram emits a program mixing straight-line arithmetic, loops,
// calls, and FP operations that raise (maskable) exceptions.
func eventFPProgram() *isa.Program {
	b := isa.NewBuilder("equiv")
	fn := b.Label("fn")
	b.Movi(isa.R1, int64(math.Float64bits(1)))
	b.Movqx(isa.X0, isa.R1)
	b.Movi(isa.R1, int64(math.Float64bits(3)))
	b.Movqx(isa.X1, isa.R1)
	b.Movi(isa.R2, 0)
	b.Movi(isa.R3, 40)
	top := b.Label("top")
	b.Bind(top)
	b.FP2(isa.OpDIVSD, isa.X2, isa.X0, isa.X1) // inexact every iteration
	b.Call(fn)
	b.Addi(isa.R2, isa.R2, 1)
	b.Blt(isa.R2, isa.R3, top)
	b.Hlt()
	b.Bind(fn)
	b.FP2(isa.OpADDSD, isa.X3, isa.X2, isa.X0)
	b.Ret()
	return b.Build()
}

// TestRunStraightMatchesStep drives the same program through the precise
// per-instruction path and the batched fast path (with the FPSpy-style
// mask-then-single-step handler applied to both) and requires identical
// architectural outcomes: registers, RIP, retirement count, sticky
// flags, and the event sequence.
func TestRunStraightMatchesStep(t *testing.T) {
	type obs struct {
		kind string
		addr uint64
	}
	observe := func(ev Event) obs {
		switch e := ev.(type) {
		case *FPEvent:
			return obs{"fp", e.Addr}
		case *TrapEvent:
			return obs{"trap", e.Addr}
		case *HaltEvent:
			return obs{"halt", 0}
		case *FaultEvent:
			return obs{"fault", e.Addr}
		default:
			return obs{"?", 0}
		}
	}
	// handler reacts like FPSpy: on FP fault, mask + TF; on trap, unmask
	// + clear TF. Returns true on halt.
	handler := func(m *Machine, ev Event) bool {
		switch ev.(type) {
		case *FPEvent:
			m.CPU.MXCSR.Mask(softfloat.FlagInexact)
			m.CPU.TF = true
		case *TrapEvent:
			m.CPU.MXCSR.ClearFlags()
			m.CPU.MXCSR.Unmask(softfloat.FlagInexact)
			m.CPU.TF = false
		case *HaltEvent:
			return true
		}
		return false
	}

	precise := New(eventFPProgram(), 4096)
	precise.CPU.R[isa.SP] = 4096
	precise.CPU.MXCSR.Unmask(softfloat.FlagInexact)
	var preciseEvents []obs
	for i := 0; i < 100000; i++ {
		ev := precise.Step()
		if ev == nil {
			continue
		}
		preciseEvents = append(preciseEvents, observe(ev))
		if handler(precise, ev) {
			break
		}
	}

	fast := New(eventFPProgram(), 4096)
	fast.CPU.R[isa.SP] = 4096
	fast.CPU.MXCSR.Unmask(softfloat.FlagInexact)
	var fastEvents []obs
	for i := 0; i < 100000; i++ {
		var ev Event
		if fast.CPU.TF {
			ev = fast.Step()
		} else if _, ev = fast.RunStraight(7); ev == nil {
			continue
		}
		fastEvents = append(fastEvents, observe(ev))
		if handler(fast, ev) {
			break
		}
	}

	if precise.Retired != fast.Retired {
		t.Errorf("retired: precise %d, fast %d", precise.Retired, fast.Retired)
	}
	if precise.CPU != fast.CPU {
		t.Errorf("CPU state diverged:\n precise %+v\n fast    %+v", precise.CPU, fast.CPU)
	}
	if len(preciseEvents) != len(fastEvents) {
		t.Fatalf("event counts: precise %d, fast %d", len(preciseEvents), len(fastEvents))
	}
	for i := range preciseEvents {
		if preciseEvents[i] != fastEvents[i] {
			t.Errorf("event %d: precise %+v, fast %+v", i, preciseEvents[i], fastEvents[i])
		}
	}
}

// TestRunStraightTFStepsOnce pins the TF-mode bailout: with TF set the
// fast path must execute exactly one stepped instruction and return its
// trap event, crediting the same retirement (and thus the same
// virtual-timer progress) the precise path would — not silently return
// (0, nil) and leave the caller to re-drive the instruction.
func TestRunStraightTFStepsOnce(t *testing.T) {
	b := isa.NewBuilder("tf")
	b.Movi(isa.R1, 1)
	b.Hlt()
	m := New(b.Build(), 64)
	m.CPU.TF = true
	n, ev := m.RunStraight(10)
	if n != 0 {
		t.Fatalf("RunStraight under TF credited %d clean retires, want 0", n)
	}
	tr, ok := ev.(*TrapEvent)
	if !ok {
		t.Fatalf("RunStraight under TF returned %T, want *TrapEvent", ev)
	}
	if tr.Addr != m.Prog.AddrOf(0) || tr.Next != m.Prog.AddrOf(1) {
		t.Errorf("trap addr=%#x next=%#x, want %#x/%#x",
			tr.Addr, tr.Next, m.Prog.AddrOf(0), m.Prog.AddrOf(1))
	}
	if m.Retired != 1 {
		t.Fatalf("Retired = %d after TF fast path, want 1 (timer parity with Step)", m.Retired)
	}
	if m.CPU.R[isa.R1] != 1 {
		t.Error("the TF-stepped instruction did not execute")
	}

	// The stepped path on an identical machine must land in the same state.
	ref := New(b.Build(), 64)
	ref.CPU.TF = true
	rev := ref.Step()
	if rev == nil {
		t.Fatal("reference Step under TF produced no event")
	}
	if ref.Retired != m.Retired || ref.CPU.RIP != m.CPU.RIP {
		t.Errorf("TF fast path diverged from stepping: retired %d/%d rip %#x/%#x",
			m.Retired, ref.Retired, m.CPU.RIP, ref.CPU.RIP)
	}
}

// TestCachedIndexSurvivesExternalRIPWrite exercises the index cache's
// validation: a handler-style rewrite of RIP (as signal delivery and
// sigreturn do) must not make Step execute the wrong instruction.
func TestCachedIndexSurvivesExternalRIPWrite(t *testing.T) {
	b := isa.NewBuilder("riprewrite")
	b.Movi(isa.R1, 10) // index 0
	b.Movi(isa.R2, 20) // index 1
	b.Movi(isa.R3, 30) // index 2
	b.Movi(isa.R4, 40) // index 3
	b.Hlt()
	m := New(b.Build(), 64)
	stepClean(t, m) // cache now expects index 1
	m.CPU.RIP = m.Prog.AddrOf(3)
	stepClean(t, m)
	if m.CPU.R[isa.R4] != 40 {
		t.Errorf("R4 = %d: cached index executed the wrong instruction", m.CPU.R[isa.R4])
	}
	if m.CPU.R[isa.R2] != 0 || m.CPU.R[isa.R3] != 0 {
		t.Error("skipped instructions executed")
	}
	// A rewrite to a bogus address must fault, not execute the cached slot.
	m2 := New(b.Build(), 64)
	stepClean(t, m2)
	m2.CPU.RIP = 0xDEAD
	if _, ok := m2.Step().(*FaultEvent); !ok {
		t.Error("bad RIP after external write did not fault")
	}
}
