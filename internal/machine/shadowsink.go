package machine

import "repro/internal/isa"

// ShadowSink observes instruction flow for the shadow-precision value
// channel (internal/shadow implements it). The machine calls PreStep
// once per Step after resolving the instruction, while every source
// operand still holds its pre-execution value, and Retired exactly when
// that instruction retires (faulting or trapping instructions never
// reach Retired — the sink must treat an unretired PreStep as stale).
//
// A sink must never mutate machine state; the contract is pure
// observation, which is what makes shadow-on runs bit-identical to
// shadow-off runs.
type ShadowSink interface {
	PreStep(addr uint64, inst *isa.Inst, info *isa.OpInfo)
	Retired()
}
