package machine

import (
	"repro/internal/isa"
	"repro/internal/softfloat"
)

// fpStage stages the writeback of a floating point instruction so faults
// can be delivered before any architectural state changes.
type fpStage struct {
	vec    [4]uint64 // staged vector destination
	vecSet bool
	intVal uint64 // staged integer destination
	intSet bool
	raised softfloat.Flags
}

// execFP executes a floating point instruction. It returns a non-nil
// FPEvent when an unmasked exception fires (no writeback), and nil when
// the instruction can retire (writeback done).
func (m *Machine) execFP(inst *isa.Inst, info *isa.OpInfo, idx int, addr uint64) Event {
	c := &m.CPU
	env := c.MXCSR.Env()
	var st fpStage
	st.vec = c.X[inst.Rd]

	switch info.Class {
	case isa.ClassFPArith:
		m.execArith(inst, info, env, &st)
	case isa.ClassFMA:
		m.execFMA(inst, info, env, &st)
	case isa.ClassFPConvert:
		m.execConvert(inst, info, env, &st)
	case isa.ClassFPCompare:
		m.execCompare(inst, info, env, &st)
	case isa.ClassFPRound:
		m.execRound(inst, info, env, &st)
	case isa.ClassFPDot:
		m.execDot(inst, info, env, &st)
	}

	// Sticky flags are updated whether or not the exception is masked.
	unmasked := c.MXCSR.Unmasked(st.raised)
	c.MXCSR.SetFlags(st.raised)
	if unmasked != 0 {
		return m.fpEventAt(addr, idx, st.raised, unmasked)
	}
	if st.vecSet {
		c.X[inst.Rd] = st.vec
	}
	if st.intSet {
		c.setReg(inst.Rd, st.intVal)
	}
	return nil
}

// lane32 of a staged vector.
func stLane32(v *[4]uint64, i int) uint32 {
	return uint32(v[i/2] >> (32 * uint(i%2)))
}

func stSetLane32(v *[4]uint64, i int, x uint32) {
	shift := 32 * uint(i%2)
	v[i/2] = v[i/2]&^(uint64(0xFFFFFFFF)<<shift) | uint64(x)<<shift
}

func (m *Machine) execArith(inst *isa.Inst, info *isa.OpInfo, env softfloat.Env, st *fpStage) {
	c := &m.CPU
	st.vecSet = true
	if info.Prec == isa.F64 {
		for l := 0; l < info.Lanes; l++ {
			a := c.X[inst.Rs1][l]
			b := c.X[inst.Rs2][l]
			var z uint64
			var fl softfloat.Flags
			switch info.FP {
			case isa.FPAdd:
				z, fl = softfloat.Add64(a, b, env)
			case isa.FPSub:
				z, fl = softfloat.Sub64(a, b, env)
			case isa.FPMul:
				z, fl = softfloat.Mul64(a, b, env)
			case isa.FPDiv:
				z, fl = softfloat.Div64(a, b, env)
			case isa.FPSqrt:
				z, fl = softfloat.Sqrt64(a, env)
			case isa.FPMin:
				z, fl = softfloat.Min64(a, b, env)
			case isa.FPMax:
				z, fl = softfloat.Max64(a, b, env)
			}
			st.vec[l] = z
			st.raised |= fl
		}
		return
	}
	for l := 0; l < info.Lanes; l++ {
		a := c.lane32(inst.Rs1, l)
		b := c.lane32(inst.Rs2, l)
		var z uint32
		var fl softfloat.Flags
		switch info.FP {
		case isa.FPAdd:
			z, fl = softfloat.Add32(a, b, env)
		case isa.FPSub:
			z, fl = softfloat.Sub32(a, b, env)
		case isa.FPMul:
			z, fl = softfloat.Mul32(a, b, env)
		case isa.FPDiv:
			z, fl = softfloat.Div32(a, b, env)
		case isa.FPSqrt:
			z, fl = softfloat.Sqrt32(a, env)
		case isa.FPMin:
			z, fl = softfloat.Min32(a, b, env)
		case isa.FPMax:
			z, fl = softfloat.Max32(a, b, env)
		}
		stSetLane32(&st.vec, l, z)
		st.raised |= fl
	}
}

// negSign64 flips the sign bit (exact, no flags), used for FMA variants.
func negSign64(x uint64) uint64 { return x ^ 1<<63 }

func negSign32(x uint32) uint32 { return x ^ 1<<31 }

func (m *Machine) execFMA(inst *isa.Inst, info *isa.OpInfo, env softfloat.Env, st *fpStage) {
	c := &m.CPU
	st.vecSet = true
	negProd := info.FMA == isa.FNMAdd || info.FMA == isa.FNMSub
	negAdd := info.FMA == isa.FMSub || info.FMA == isa.FNMSub
	if info.Prec == isa.F64 {
		for l := 0; l < info.Lanes; l++ {
			a := c.X[inst.Rs1][l]
			b := c.X[inst.Rs2][l]
			d := c.X[inst.Rs3][l]
			if negProd {
				a = negSign64(a)
			}
			if negAdd {
				d = negSign64(d)
			}
			z, fl := softfloat.FMA64(a, b, d, env)
			st.vec[l] = z
			st.raised |= fl
		}
		return
	}
	for l := 0; l < info.Lanes; l++ {
		a := c.lane32(inst.Rs1, l)
		b := c.lane32(inst.Rs2, l)
		d := c.lane32(inst.Rs3, l)
		if negProd {
			a = negSign32(a)
		}
		if negAdd {
			d = negSign32(d)
		}
		z, fl := softfloat.FMA32(a, b, d, env)
		stSetLane32(&st.vec, l, z)
		st.raised |= fl
	}
}

func (m *Machine) execConvert(inst *isa.Inst, info *isa.OpInfo, env softfloat.Env, st *fpStage) {
	c := &m.CPU
	switch info.Cvt {
	case isa.CvtSD2SS:
		z, fl := softfloat.F64ToF32(c.X[inst.Rs1][0], env)
		st.vecSet = true
		stSetLane32(&st.vec, 0, z)
		st.raised = fl
	case isa.CvtSS2SD:
		z, fl := softfloat.F32ToF64(c.lane32(inst.Rs1, 0), env)
		st.vecSet = true
		st.vec[0] = z
		st.raised = fl
	case isa.CvtSI2SD:
		st.vecSet = true
		st.vec[0] = softfloat.I32ToF64(int32(c.reg(inst.Rs1)))
	case isa.CvtSI2SDQ:
		z, fl := softfloat.I64ToF64(int64(c.reg(inst.Rs1)), env)
		st.vecSet = true
		st.vec[0] = z
		st.raised = fl
	case isa.CvtSI2SS:
		z, fl := softfloat.I32ToF32(int32(c.reg(inst.Rs1)), env)
		st.vecSet = true
		stSetLane32(&st.vec, 0, z)
		st.raised = fl
	case isa.CvtSI2SSQ:
		z, fl := softfloat.I64ToF32(int64(c.reg(inst.Rs1)), env)
		st.vecSet = true
		stSetLane32(&st.vec, 0, z)
		st.raised = fl
	case isa.CvtSD2SI:
		z, fl := softfloat.F64ToI32(c.X[inst.Rs1][0], env)
		st.intSet = true
		st.intVal = uint64(int64(z))
		st.raised = fl
	case isa.CvtTSD2SI:
		z, fl := softfloat.F64ToI32Trunc(c.X[inst.Rs1][0], env)
		st.intSet = true
		st.intVal = uint64(int64(z))
		st.raised = fl
	case isa.CvtTSD2SIQ:
		z, fl := softfloat.F64ToI64Trunc(c.X[inst.Rs1][0], env)
		st.intSet = true
		st.intVal = uint64(z)
		st.raised = fl
	case isa.CvtSS2SI:
		z, fl := softfloat.F32ToI32(c.lane32(inst.Rs1, 0), env)
		st.intSet = true
		st.intVal = uint64(int64(z))
		st.raised = fl
	case isa.CvtTSS2SI:
		z, fl := softfloat.F32ToI32Trunc(c.lane32(inst.Rs1, 0), env)
		st.intSet = true
		st.intVal = uint64(int64(z))
		st.raised = fl
	case isa.CvtPS2DQ:
		st.vecSet = true
		for l := 0; l < info.Lanes; l++ {
			z, fl := softfloat.F32ToI32(c.lane32(inst.Rs1, l), env)
			stSetLane32(&st.vec, l, uint32(z))
			st.raised |= fl
		}
	}
}

func (m *Machine) execCompare(inst *isa.Inst, info *isa.OpInfo, env softfloat.Env, st *fpStage) {
	c := &m.CPU
	switch inst.Op {
	case isa.OpCMPSD:
		z, fl := softfloat.Cmp64(c.X[inst.Rs1][0], c.X[inst.Rs2][0], softfloat.CmpPredicate(inst.Imm), env)
		st.vecSet = true
		st.vec[0] = z
		st.raised = fl
	case isa.OpCMPSS:
		z, fl := softfloat.Cmp32(c.lane32(inst.Rs1, 0), c.lane32(inst.Rs2, 0), softfloat.CmpPredicate(inst.Imm), env)
		st.vecSet = true
		stSetLane32(&st.vec, 0, z)
		st.raised = fl
	default:
		var r softfloat.CmpResult
		var fl softfloat.Flags
		if info.Prec == isa.F64 {
			if info.Signaling {
				r, fl = softfloat.Comi64(c.X[inst.Rs1][0], c.X[inst.Rs2][0], env)
			} else {
				r, fl = softfloat.Ucomi64(c.X[inst.Rs1][0], c.X[inst.Rs2][0], env)
			}
		} else {
			if info.Signaling {
				r, fl = softfloat.Comi32(c.lane32(inst.Rs1, 0), c.lane32(inst.Rs2, 0), env)
			} else {
				r, fl = softfloat.Ucomi32(c.lane32(inst.Rs1, 0), c.lane32(inst.Rs2, 0), env)
			}
		}
		st.intSet = true
		st.intVal = uint64(int64(r))
		st.raised = fl
	}
}

func (m *Machine) execRound(inst *isa.Inst, info *isa.OpInfo, env softfloat.Env, st *fpStage) {
	c := &m.CPU
	imm := isa.RoundImm(inst.Imm)
	rm := softfloat.RoundingMode(imm & 3)
	if imm&isa.RoundImmMXCSR != 0 {
		rm = env.RM
	}
	suppress := imm&isa.RoundImmNoInexact != 0
	st.vecSet = true
	if info.Prec == isa.F64 {
		for l := 0; l < info.Lanes; l++ {
			z, fl := softfloat.RoundToInt64(c.X[inst.Rs1][l], rm, suppress, env)
			st.vec[l] = z
			st.raised |= fl
		}
		return
	}
	for l := 0; l < info.Lanes; l++ {
		z, fl := softfloat.RoundToInt32(c.lane32(inst.Rs1, l), rm, suppress, env)
		stSetLane32(&st.vec, l, z)
		st.raised |= fl
	}
}

// execDot implements dpps/vdpps with an implied 0xFF mask: within each
// 128-bit group, four products are summed pairwise and the sum is
// broadcast to the group's lanes.
func (m *Machine) execDot(inst *isa.Inst, info *isa.OpInfo, env softfloat.Env, st *fpStage) {
	c := &m.CPU
	st.vecSet = true
	groups := info.Lanes / 4
	for g := 0; g < groups; g++ {
		var p [4]uint32
		for i := 0; i < 4; i++ {
			l := g*4 + i
			z, fl := softfloat.Mul32(c.lane32(inst.Rs1, l), c.lane32(inst.Rs2, l), env)
			p[i] = z
			st.raised |= fl
		}
		s01, fl := softfloat.Add32(p[0], p[1], env)
		st.raised |= fl
		s23, fl2 := softfloat.Add32(p[2], p[3], env)
		st.raised |= fl2
		sum, fl3 := softfloat.Add32(s01, s23, env)
		st.raised |= fl3
		for i := 0; i < 4; i++ {
			stSetLane32(&st.vec, g*4+i, sum)
		}
	}
}
