package machine

import (
	"math/bits"

	"repro/internal/isa"
	"repro/internal/softfloat"
)

// fpStage stages the writeback of a floating point instruction so faults
// can be delivered before any architectural state changes.
type fpStage struct {
	vec    [isa.VecWords]uint64 // staged vector destination
	vecSet bool
	intVal uint64 // staged integer destination
	intSet bool
	raised softfloat.Flags
}

// execFP executes a floating point instruction. It returns a non-nil
// FPEvent when an unmasked exception fires (no writeback), and nil when
// the instruction can retire (writeback done).
func (m *Machine) execFP(inst *isa.Inst, info *isa.OpInfo, idx int, addr uint64) Event {
	c := &m.CPU
	env := c.MXCSR.Env()
	var st fpStage
	st.vec = c.X[inst.Rd]

	switch info.Class {
	case isa.ClassFPArith:
		m.execArith(inst, info, env, &st)
	case isa.ClassFMA:
		m.execFMA(inst, info, env, &st)
	case isa.ClassFPConvert:
		m.execConvert(inst, info, env, &st)
	case isa.ClassFPCompare:
		m.execCompare(inst, info, env, &st)
	case isa.ClassFPRound:
		m.execRound(inst, info, env, &st)
	case isa.ClassFPDot:
		m.execDot(inst, info, env, &st)
	}

	// Sticky flags are updated whether or not the exception is masked.
	unmasked := c.MXCSR.Unmasked(st.raised)
	c.MXCSR.SetFlags(st.raised)
	if unmasked != 0 {
		return m.fpEventAt(addr, idx, st.raised, unmasked)
	}
	if st.vecSet {
		c.X[inst.Rd] = st.vec
	}
	if st.intSet {
		c.setReg(inst.Rd, st.intVal)
	}
	if m.Flops != nil {
		m.countFlops(inst, info)
	}
	return nil
}

func stSetLane32(v *[isa.VecWords]uint64, i int, x uint32) {
	shift := 32 * uint(i%2)
	v[i/2] = v[i/2]&^(uint64(0xFFFFFFFF)<<shift) | uint64(x)<<shift
}

// execMask executes mask-register moves; like FP moves they never raise
// flags and never read MXCSR.
func (m *Machine) execMask(inst *isa.Inst) {
	c := &m.CPU
	switch inst.Op {
	case isa.OpKMOVQ:
		c.K[inst.Rd%isa.NumMaskRegs] = c.reg(inst.Rs1)
	case isa.OpKMOVRQ:
		c.setReg(inst.Rd, c.K[inst.Rs1%isa.NumMaskRegs])
	}
}

// laneMask returns the live write mask of a masked instruction,
// truncated to its lane count.
func (m *Machine) laneMask(inst *isa.Inst, info *isa.OpInfo) uint64 {
	return m.CPU.K[inst.Rs3%isa.NumMaskRegs] & (1<<uint(info.Lanes) - 1)
}

// cvtSingle reports whether a conversion form is accounted under single
// precision: the forms whose floating point side is binary32. Mixed
// forms (ss2sd, sd2ss) count under their binary32 end, following SDE's
// element-precision attribution.
func cvtSingle(kind isa.ConvertKind) bool {
	switch kind {
	case isa.CvtSD2SS, isa.CvtSS2SD, isa.CvtSI2SS, isa.CvtSI2SSQ,
		isa.CvtSS2SI, isa.CvtTSS2SI, isa.CvtPS2DQ:
		return true
	}
	return false
}

// countFlops credits the SDE-style FLOP accounting group for one retired
// floating point instruction. It must only run at retirement (a faulted
// instruction performed no architectural work), and it is shared by
// every execution engine — interpreted, quiet, and superblock — so the
// counters are engine-invariant. Callers check m.Flops != nil.
func (m *Machine) countFlops(inst *isa.Inst, info *isa.OpInfo) {
	f := m.Flops
	p := int(info.Prec)
	lanes := uint64(info.Lanes)
	if info.Masked {
		active := uint64(bits.OnesCount64(m.laneMask(inst, info)))
		f.MaskedSkipped.Add(lanes - active)
		lanes = active
	}
	switch info.Class {
	case isa.ClassFPArith:
		switch info.FP {
		case isa.FPAdd:
			f.Add[p].Add(lanes)
		case isa.FPSub:
			f.Sub[p].Add(lanes)
		case isa.FPMul:
			f.Mul[p].Add(lanes)
		case isa.FPDiv:
			f.Div[p].Add(lanes)
		case isa.FPSqrt:
			f.Sqrt[p].Add(lanes)
		case isa.FPMin:
			f.Min[p].Add(lanes)
		case isa.FPMax:
			f.Max[p].Add(lanes)
		}
	case isa.ClassFMA:
		// One fused multiply-add is two FLOPs per lane, SDE's convention.
		f.FMA[p].Add(2 * lanes)
	case isa.ClassFPConvert:
		if cvtSingle(info.Cvt) {
			p = int(isa.F32)
		} else {
			p = int(isa.F64)
		}
		f.Convert[p].Add(lanes)
	case isa.ClassFPCompare:
		f.Compare[p].Add(lanes)
	case isa.ClassFPRound:
		f.Round[p].Add(lanes)
	case isa.ClassFPDot:
		// dpps decomposes to 4 multiplies and 3 adds per 128-bit group.
		groups := uint64(info.Lanes / 4)
		f.Mul[p].Add(4 * groups)
		f.Add[p].Add(3 * groups)
	}
}

func (m *Machine) execArith(inst *isa.Inst, info *isa.OpInfo, env softfloat.Env, st *fpStage) {
	if info.Masked {
		m.execArithMasked(inst, info, env, st)
		return
	}
	c := &m.CPU
	st.vecSet = true
	if info.Prec == isa.F64 {
		// Lane-sliced dispatch: one opcode switch retires the whole
		// vector. dst is the staging copy, so it never aliases a/b even
		// when Rd is also a source.
		a := c.X[inst.Rs1][:info.Lanes]
		b := c.X[inst.Rs2][:info.Lanes]
		dst := st.vec[:info.Lanes]
		switch info.FP {
		case isa.FPAdd:
			st.raised |= softfloat.AddLanes64(dst, a, b, env)
		case isa.FPSub:
			st.raised |= softfloat.SubLanes64(dst, a, b, env)
		case isa.FPMul:
			st.raised |= softfloat.MulLanes64(dst, a, b, env)
		case isa.FPDiv:
			st.raised |= softfloat.DivLanes64(dst, a, b, env)
		case isa.FPSqrt:
			st.raised |= softfloat.SqrtLanes64(dst, a, env)
		case isa.FPMin:
			st.raised |= softfloat.MinLanes64(dst, a, b, env)
		case isa.FPMax:
			st.raised |= softfloat.MaxLanes64(dst, a, b, env)
		}
		return
	}
	// f32 lanes are packed two per 64-bit word: gather into flat scratch,
	// dispatch once over the slice, scatter back into the staging vector.
	var ab, bb, db [2 * isa.VecWords]uint32
	for l := 0; l < info.Lanes; l++ {
		ab[l] = c.lane32(inst.Rs1, l)
		bb[l] = c.lane32(inst.Rs2, l)
	}
	a, b, dst := ab[:info.Lanes], bb[:info.Lanes], db[:info.Lanes]
	switch info.FP {
	case isa.FPAdd:
		st.raised |= softfloat.AddLanes32(dst, a, b, env)
	case isa.FPSub:
		st.raised |= softfloat.SubLanes32(dst, a, b, env)
	case isa.FPMul:
		st.raised |= softfloat.MulLanes32(dst, a, b, env)
	case isa.FPDiv:
		st.raised |= softfloat.DivLanes32(dst, a, b, env)
	case isa.FPSqrt:
		st.raised |= softfloat.SqrtLanes32(dst, a, env)
	case isa.FPMin:
		st.raised |= softfloat.MinLanes32(dst, a, b, env)
	case isa.FPMax:
		st.raised |= softfloat.MaxLanes32(dst, a, b, env)
	}
	for l := 0; l < info.Lanes; l++ {
		stSetLane32(&st.vec, l, db[l])
	}
}

// execArithMasked executes a write-masked arithmetic form: only lanes
// whose mask bit is set compute (and may raise); masked-off lanes keep
// the destination's prior contents, which the staging preload already
// provides (merge masking).
func (m *Machine) execArithMasked(inst *isa.Inst, info *isa.OpInfo, env softfloat.Env, st *fpStage) {
	c := &m.CPU
	st.vecSet = true
	mask := m.laneMask(inst, info)
	if info.Prec == isa.F64 {
		for l := 0; l < info.Lanes; l++ {
			if mask>>uint(l)&1 == 0 {
				continue
			}
			a := c.X[inst.Rs1][l]
			b := c.X[inst.Rs2][l]
			var z uint64
			var fl softfloat.Flags
			switch info.FP {
			case isa.FPAdd:
				z, fl = softfloat.Add64(a, b, env)
			case isa.FPSub:
				z, fl = softfloat.Sub64(a, b, env)
			case isa.FPMul:
				z, fl = softfloat.Mul64(a, b, env)
			case isa.FPDiv:
				z, fl = softfloat.Div64(a, b, env)
			case isa.FPSqrt:
				z, fl = softfloat.Sqrt64(a, env)
			case isa.FPMin:
				z, fl = softfloat.Min64(a, b, env)
			case isa.FPMax:
				z, fl = softfloat.Max64(a, b, env)
			}
			st.vec[l] = z
			st.raised |= fl
		}
		return
	}
	for l := 0; l < info.Lanes; l++ {
		if mask>>uint(l)&1 == 0 {
			continue
		}
		a := c.lane32(inst.Rs1, l)
		b := c.lane32(inst.Rs2, l)
		var z uint32
		var fl softfloat.Flags
		switch info.FP {
		case isa.FPAdd:
			z, fl = softfloat.Add32(a, b, env)
		case isa.FPSub:
			z, fl = softfloat.Sub32(a, b, env)
		case isa.FPMul:
			z, fl = softfloat.Mul32(a, b, env)
		case isa.FPDiv:
			z, fl = softfloat.Div32(a, b, env)
		case isa.FPSqrt:
			z, fl = softfloat.Sqrt32(a, env)
		case isa.FPMin:
			z, fl = softfloat.Min32(a, b, env)
		case isa.FPMax:
			z, fl = softfloat.Max32(a, b, env)
		}
		stSetLane32(&st.vec, l, z)
		st.raised |= fl
	}
}

// negSign64 flips the sign bit (exact, no flags), used for FMA variants.
func negSign64(x uint64) uint64 { return x ^ 1<<63 }

func negSign32(x uint32) uint32 { return x ^ 1<<31 }

func (m *Machine) execFMA(inst *isa.Inst, info *isa.OpInfo, env softfloat.Env, st *fpStage) {
	c := &m.CPU
	st.vecSet = true
	negProd := info.FMA == isa.FNMAdd || info.FMA == isa.FNMSub
	negAdd := info.FMA == isa.FMSub || info.FMA == isa.FNMSub
	if info.Prec == isa.F64 {
		a := c.X[inst.Rs1][:info.Lanes]
		b := c.X[inst.Rs2][:info.Lanes]
		d := c.X[inst.Rs3][:info.Lanes]
		// Sign variants flip operands into scratch so the plain fused
		// kernel serves all four forms; the common vfmadd forms pass the
		// register slices straight through.
		var as, ds [isa.VecWords]uint64
		if negProd {
			for l, v := range a {
				as[l] = negSign64(v)
			}
			a = as[:info.Lanes]
		}
		if negAdd {
			for l, v := range d {
				ds[l] = negSign64(v)
			}
			d = ds[:info.Lanes]
		}
		st.raised |= softfloat.FMALanes64(st.vec[:info.Lanes], a, b, d, env)
		return
	}
	var ab, bb, db, zb [2 * isa.VecWords]uint32
	for l := 0; l < info.Lanes; l++ {
		a := c.lane32(inst.Rs1, l)
		d := c.lane32(inst.Rs3, l)
		if negProd {
			a = negSign32(a)
		}
		if negAdd {
			d = negSign32(d)
		}
		ab[l], bb[l], db[l] = a, c.lane32(inst.Rs2, l), d
	}
	st.raised |= softfloat.FMALanes32(zb[:info.Lanes], ab[:info.Lanes], bb[:info.Lanes], db[:info.Lanes], env)
	for l := 0; l < info.Lanes; l++ {
		stSetLane32(&st.vec, l, zb[l])
	}
}

func (m *Machine) execConvert(inst *isa.Inst, info *isa.OpInfo, env softfloat.Env, st *fpStage) {
	c := &m.CPU
	switch info.Cvt {
	case isa.CvtSD2SS:
		z, fl := softfloat.F64ToF32(c.X[inst.Rs1][0], env)
		st.vecSet = true
		stSetLane32(&st.vec, 0, z)
		st.raised = fl
	case isa.CvtSS2SD:
		z, fl := softfloat.F32ToF64(c.lane32(inst.Rs1, 0), env)
		st.vecSet = true
		st.vec[0] = z
		st.raised = fl
	case isa.CvtSI2SD:
		st.vecSet = true
		st.vec[0] = softfloat.I32ToF64(int32(c.reg(inst.Rs1)))
	case isa.CvtSI2SDQ:
		z, fl := softfloat.I64ToF64(int64(c.reg(inst.Rs1)), env)
		st.vecSet = true
		st.vec[0] = z
		st.raised = fl
	case isa.CvtSI2SS:
		z, fl := softfloat.I32ToF32(int32(c.reg(inst.Rs1)), env)
		st.vecSet = true
		stSetLane32(&st.vec, 0, z)
		st.raised = fl
	case isa.CvtSI2SSQ:
		z, fl := softfloat.I64ToF32(int64(c.reg(inst.Rs1)), env)
		st.vecSet = true
		stSetLane32(&st.vec, 0, z)
		st.raised = fl
	case isa.CvtSD2SI:
		z, fl := softfloat.F64ToI32(c.X[inst.Rs1][0], env)
		st.intSet = true
		st.intVal = uint64(int64(z))
		st.raised = fl
	case isa.CvtTSD2SI:
		z, fl := softfloat.F64ToI32Trunc(c.X[inst.Rs1][0], env)
		st.intSet = true
		st.intVal = uint64(int64(z))
		st.raised = fl
	case isa.CvtTSD2SIQ:
		z, fl := softfloat.F64ToI64Trunc(c.X[inst.Rs1][0], env)
		st.intSet = true
		st.intVal = uint64(z)
		st.raised = fl
	case isa.CvtSS2SI:
		z, fl := softfloat.F32ToI32(c.lane32(inst.Rs1, 0), env)
		st.intSet = true
		st.intVal = uint64(int64(z))
		st.raised = fl
	case isa.CvtTSS2SI:
		z, fl := softfloat.F32ToI32Trunc(c.lane32(inst.Rs1, 0), env)
		st.intSet = true
		st.intVal = uint64(int64(z))
		st.raised = fl
	case isa.CvtPS2DQ:
		st.vecSet = true
		for l := 0; l < info.Lanes; l++ {
			z, fl := softfloat.F32ToI32(c.lane32(inst.Rs1, l), env)
			stSetLane32(&st.vec, l, uint32(z))
			st.raised |= fl
		}
	}
}

func (m *Machine) execCompare(inst *isa.Inst, info *isa.OpInfo, env softfloat.Env, st *fpStage) {
	c := &m.CPU
	switch inst.Op {
	case isa.OpCMPSD:
		z, fl := softfloat.Cmp64(c.X[inst.Rs1][0], c.X[inst.Rs2][0], softfloat.CmpPredicate(inst.Imm), env)
		st.vecSet = true
		st.vec[0] = z
		st.raised = fl
	case isa.OpCMPSS:
		z, fl := softfloat.Cmp32(c.lane32(inst.Rs1, 0), c.lane32(inst.Rs2, 0), softfloat.CmpPredicate(inst.Imm), env)
		st.vecSet = true
		stSetLane32(&st.vec, 0, z)
		st.raised = fl
	default:
		var r softfloat.CmpResult
		var fl softfloat.Flags
		if info.Prec == isa.F64 {
			if info.Signaling {
				r, fl = softfloat.Comi64(c.X[inst.Rs1][0], c.X[inst.Rs2][0], env)
			} else {
				r, fl = softfloat.Ucomi64(c.X[inst.Rs1][0], c.X[inst.Rs2][0], env)
			}
		} else {
			if info.Signaling {
				r, fl = softfloat.Comi32(c.lane32(inst.Rs1, 0), c.lane32(inst.Rs2, 0), env)
			} else {
				r, fl = softfloat.Ucomi32(c.lane32(inst.Rs1, 0), c.lane32(inst.Rs2, 0), env)
			}
		}
		st.intSet = true
		st.intVal = uint64(int64(r))
		st.raised = fl
	}
}

func (m *Machine) execRound(inst *isa.Inst, info *isa.OpInfo, env softfloat.Env, st *fpStage) {
	c := &m.CPU
	imm := isa.RoundImm(inst.Imm)
	rm := softfloat.RoundingMode(imm & 3)
	if imm&isa.RoundImmMXCSR != 0 {
		rm = env.RM
	}
	suppress := imm&isa.RoundImmNoInexact != 0
	st.vecSet = true
	if info.Prec == isa.F64 {
		for l := 0; l < info.Lanes; l++ {
			z, fl := softfloat.RoundToInt64(c.X[inst.Rs1][l], rm, suppress, env)
			st.vec[l] = z
			st.raised |= fl
		}
		return
	}
	for l := 0; l < info.Lanes; l++ {
		z, fl := softfloat.RoundToInt32(c.lane32(inst.Rs1, l), rm, suppress, env)
		stSetLane32(&st.vec, l, z)
		st.raised |= fl
	}
}

// execDot implements dpps/vdpps with an implied 0xFF mask: within each
// 128-bit group, four products are summed pairwise and the sum is
// broadcast to the group's lanes.
func (m *Machine) execDot(inst *isa.Inst, info *isa.OpInfo, env softfloat.Env, st *fpStage) {
	c := &m.CPU
	st.vecSet = true
	groups := info.Lanes / 4
	for g := 0; g < groups; g++ {
		var p [4]uint32
		for i := 0; i < 4; i++ {
			l := g*4 + i
			z, fl := softfloat.Mul32(c.lane32(inst.Rs1, l), c.lane32(inst.Rs2, l), env)
			p[i] = z
			st.raised |= fl
		}
		s01, fl := softfloat.Add32(p[0], p[1], env)
		st.raised |= fl
		s23, fl2 := softfloat.Add32(p[2], p[3], env)
		st.raised |= fl2
		sum, fl3 := softfloat.Add32(s01, s23, env)
		st.raised |= fl3
		for i := 0; i < 4; i++ {
			stSetLane32(&st.vec, g*4+i, sum)
		}
	}
}
