// Package machine implements the simulated guest CPU: an x64-subset
// register machine whose floating point unit is internal/softfloat and
// whose control/status register is internal/mxcsr.
//
// The two properties FPSpy depends on are reproduced faithfully:
//
//   - Precise floating point exceptions: when an operation raises a
//     condition whose MXCSR mask is clear, the instruction faults before
//     writeback — the sticky flags are updated, but no result is written
//     and the instruction pointer does not advance, exactly as a real SSE
//     unit delivers #XM.
//
//   - Hardware single-stepping: when the TF flag is set, a trap event is
//     raised after each instruction retires, mirroring x64 #DB delivery.
package machine

import (
	"fmt"

	"repro/internal/isa"
	"repro/internal/mxcsr"
	"repro/internal/obs"
	"repro/internal/softfloat"
)

// CPU is the architectural register state of one hardware thread. It is
// the state a signal handler sees (and may rewrite) through mcontext.
type CPU struct {
	// R is the integer register file; R[0] reads as zero and ignores
	// writes. R[15] is the stack pointer by convention.
	R [isa.NumIntRegs]uint64
	// X is the 512-bit vector register file, isa.VecWords lanes of 64
	// bits each. Narrower instruction forms touch only their low lanes.
	X [isa.NumVecRegs][isa.VecWords]uint64
	// K is the write-mask register file (AVX512-style k0..k7).
	K [isa.NumMaskRegs]uint64
	// RIP is the address of the next instruction.
	RIP uint64
	// TF is the single-step trap flag (RFLAGS.TF).
	TF bool
	// MXCSR is the floating point control/status register.
	MXCSR mxcsr.Reg
}

// Event is the reason Step stopped short of (or beyond) a plain retire.
//
// Events returned by Step and RunStraight point into per-machine scratch
// storage: they are valid only until the machine's next Step or
// RunStraight call. Callers that need to retain an event across steps
// must copy the pointed-to struct. (This keeps the trap hot path — one
// event per traced instruction — free of heap allocation.)
type Event interface{ isEvent() }

// FPEvent reports an unmasked floating point exception. The faulting
// instruction did not retire: flags were set sticky, but no result was
// written and RIP still addresses the instruction.
type FPEvent struct {
	// Addr is the address of the faulting instruction.
	Addr uint64
	// Index is its instruction index.
	Index int
	// Raised is the full set of conditions the operation produced.
	Raised softfloat.Flags
	// Unmasked is the subset that caused the fault.
	Unmasked softfloat.Flags
}

func (*FPEvent) isEvent() {}

// TrapEvent reports a single-step trap: the instruction at Addr retired
// with TF set, and RIP now addresses Next.
type TrapEvent struct {
	// Addr is the instruction that just retired.
	Addr uint64
	// Next is the new RIP.
	Next uint64
}

func (*TrapEvent) isEvent() {}

// HaltEvent reports that the program executed hlt (normal termination of
// the thread).
type HaltEvent struct{}

func (*HaltEvent) isEvent() {}

// BreakpointEvent reports that fetch hit a software breakpoint (the
// "stub the next instruction with an invalid opcode" mechanism of the
// paper's Section 3.8). The instruction at Addr has NOT executed.
type BreakpointEvent struct {
	// Addr is the stubbed instruction's address.
	Addr uint64
}

func (*BreakpointEvent) isEvent() {}

// CallCEvent reports that the program called a libc symbol; the kernel
// routes it through the dynamic linker's interposition chain. The call
// instruction has retired.
type CallCEvent struct {
	// Sym is the symbol name.
	Sym string
}

func (*CallCEvent) isEvent() {}

// FaultEvent reports a fatal machine fault (bad memory access, bad RIP,
// integer division by zero).
type FaultEvent struct {
	// Reason describes the fault.
	Reason string
	// Addr is the faulting instruction address.
	Addr uint64
}

func (*FaultEvent) isEvent() {}

// Machine couples CPU state with a program and flat data memory.
type Machine struct {
	// CPU is the architectural state.
	CPU CPU
	// Prog is the executing program.
	Prog *isa.Program
	// Mem is flat little-endian data memory.
	Mem []byte
	// Retired counts retired instructions (the virtual clock).
	Retired uint64
	// Breakpoints marks instruction addresses stubbed with an invalid
	// opcode (a per-hardware-thread view, like debug registers): fetch
	// faults before execution. This is the Section 3.8 alternative to
	// TF single-stepping.
	Breakpoints map[uint64]bool
	// Obs, when non-nil, receives machine-level observability counts
	// (guest MXCSR traffic, breakpoint arming). Nil means no
	// instrumentation; the execution paths are unchanged either way.
	Obs *obs.MachineMetrics
	// QuietFP, when non-nil, marks instruction indices statically proven
	// to never raise any FP exception condition (see
	// internal/binscan/absint). Marked arithmetic sites retire on native
	// hardware floating point instead of the softfloat interpreter —
	// bit-identical results, no flag updates, no trap checks. Nil (the
	// default) disables pruning entirely. Mutate through SetQuietFP so
	// cached superblock metadata observes the change.
	QuietFP []bool
	// Flops, when non-nil, receives SDE-style FLOP accounting: per-op,
	// per-precision counts of retired floating point lane operations
	// (FMA counts 2 per lane, masked-off lanes count as skipped). Nil
	// means no accounting, same contract as Obs.
	Flops *obs.FlopMetrics
	// NoSuperblock disables the superblock region cache: RunStraight
	// falls back to per-instruction Step dispatch. This is the
	// FPE_NOSUPERBLOCK ablation knob; results are bit-identical either
	// way.
	NoSuperblock bool
	// Shadow, when non-nil, observes instruction flow for the
	// shadow-precision channel (internal/shadow): PreStep fires after
	// instruction resolution with pre-execution state still readable,
	// and Retired fires iff that instruction retires. The sink never
	// mutates machine state, so execution is bit-identical with or
	// without it. RunStraight falls back to the per-instruction path
	// while a sink is attached so superblock batching never skips a
	// notification.
	Shadow ShadowSink

	// codeVersion tags cached superblock regions; anything that changes
	// how an instruction executes in place (breakpoint stubbing, prune
	// table swaps) bumps it, invalidating every cached region at once.
	codeVersion uint64
	// sbCache holds decoded straight-line regions by start instruction
	// index, allocated lazily on the first superblock dispatch.
	sbCache []sbRegion

	// nextIdx caches the instruction index of CPU.RIP, or -1 when
	// unknown. It is always validated against RIP before use (AddrOf of
	// the cached index must equal RIP), so external RIP writes — signal
	// delivery, handler context edits, sigreturn — are safe without any
	// invalidation protocol: a stale value simply misses and Step falls
	// back to Program.IndexOf.
	nextIdx int

	// Scratch event storage. Step fills one of these and returns its
	// address instead of heap-allocating a new event per trap; see the
	// Event type's validity rule.
	evFP    FPEvent
	evTrap  TrapEvent
	evBP    BreakpointEvent
	evCallC CallCEvent
	evFault FaultEvent
	evHalt  HaltEvent
}

// SetBreakpoint stubs the instruction at addr.
func (m *Machine) SetBreakpoint(addr uint64) {
	if m.Breakpoints == nil {
		m.Breakpoints = make(map[uint64]bool)
	}
	m.Breakpoints[addr] = true
	m.codeVersion++
	if m.Obs != nil {
		m.Obs.BreakpointsArmed.Inc()
	}
}

// ClearBreakpoint restores the instruction at addr.
func (m *Machine) ClearBreakpoint(addr uint64) {
	delete(m.Breakpoints, addr)
	m.codeVersion++
}

// SetQuietFP installs (or removes, with nil) the statically-proven-quiet
// site table, invalidating cached superblock regions whose metadata
// bakes in the old prune verdicts.
func (m *Machine) SetQuietFP(table []bool) {
	m.QuietFP = table
	m.codeVersion++
}

// New creates a machine for prog with memSize bytes of zeroed memory,
// the data segment loaded, RIP at the program entry, and MXCSR at its
// power-on default.
func New(prog *isa.Program, memSize int) *Machine {
	m := &Machine{Prog: prog, Mem: make([]byte, memSize)}
	if len(prog.Data) > 0 {
		if prog.DataBase+uint64(len(prog.Data)) > uint64(memSize) {
			panic(fmt.Sprintf("machine: data segment (%d bytes at %#x) exceeds memory (%d bytes)",
				len(prog.Data), prog.DataBase, memSize))
		}
		copy(m.Mem[prog.DataBase:], prog.Data)
	}
	m.CPU.RIP = prog.Base
	m.CPU.MXCSR = mxcsr.Default
	return m
}

// fpEventAt stages an FP fault event in scratch storage.
func (m *Machine) fpEventAt(addr uint64, idx int, raised, unmasked softfloat.Flags) Event {
	m.evFP = FPEvent{Addr: addr, Index: idx, Raised: raised, Unmasked: unmasked}
	return &m.evFP
}

func (m *Machine) faultEvent(reason string, addr uint64) Event {
	m.evFault = FaultEvent{Reason: reason, Addr: addr}
	return &m.evFault
}

// CloneMemory deep-copies machine memory (used by fork).
func (m *Machine) CloneMemory() []byte {
	dup := make([]byte, len(m.Mem))
	copy(dup, m.Mem)
	return dup
}

// inBounds reports whether [addr, addr+n) lies inside memory. The
// comparison is overflow-safe: addr+n can wrap for addresses near 2^64,
// so the check subtracts from the memory size instead of adding to the
// address.
func (m *Machine) inBounds(addr, n uint64) bool {
	size := uint64(len(m.Mem))
	return addr <= size && size-addr >= n
}

func (m *Machine) load64(addr uint64) (uint64, bool) {
	if !m.inBounds(addr, 8) {
		return 0, false
	}
	b := m.Mem[addr:]
	return uint64(b[0]) | uint64(b[1])<<8 | uint64(b[2])<<16 | uint64(b[3])<<24 |
		uint64(b[4])<<32 | uint64(b[5])<<40 | uint64(b[6])<<48 | uint64(b[7])<<56, true
}

func (m *Machine) store64(addr, v uint64) bool {
	if !m.inBounds(addr, 8) {
		return false
	}
	b := m.Mem[addr:]
	b[0], b[1], b[2], b[3] = byte(v), byte(v>>8), byte(v>>16), byte(v>>24)
	b[4], b[5], b[6], b[7] = byte(v>>32), byte(v>>40), byte(v>>48), byte(v>>56)
	return true
}

func (m *Machine) load32(addr uint64) (uint32, bool) {
	if !m.inBounds(addr, 4) {
		return 0, false
	}
	b := m.Mem[addr:]
	return uint32(b[0]) | uint32(b[1])<<8 | uint32(b[2])<<16 | uint32(b[3])<<24, true
}

func (m *Machine) store32(addr uint64, v uint32) bool {
	if !m.inBounds(addr, 4) {
		return false
	}
	b := m.Mem[addr:]
	b[0], b[1], b[2], b[3] = byte(v), byte(v>>8), byte(v>>16), byte(v>>24)
	return true
}

// reg reads an integer register (R0 is hardwired zero).
func (c *CPU) reg(r uint8) uint64 {
	if r == 0 {
		return 0
	}
	return c.R[r]
}

// setReg writes an integer register (writes to R0 are discarded).
func (c *CPU) setReg(r uint8, v uint64) {
	if r != 0 {
		c.R[r] = v
	}
}

// lane32 reads 32-bit lane i of vector register x.
func (c *CPU) lane32(x uint8, i int) uint32 {
	return uint32(c.X[x][i/2] >> (32 * uint(i%2)))
}

// setLane32 writes 32-bit lane i of vector register x.
func (c *CPU) setLane32(x uint8, i int, v uint32) {
	shift := 32 * uint(i%2)
	c.X[x][i/2] = c.X[x][i/2]&^(uint64(0xFFFFFFFF)<<shift) | uint64(v)<<shift
}

// Step executes one instruction. A nil event means the instruction
// retired normally (and TF was clear). A non-nil event is valid only
// until the next Step or RunStraight call (see Event).
func (m *Machine) Step() Event {
	if m.Breakpoints != nil && m.Breakpoints[m.CPU.RIP] {
		m.evBP = BreakpointEvent{Addr: m.CPU.RIP}
		return &m.evBP
	}
	// Resolve the instruction index through the cache: straight-line code
	// and direct branches never pay for IndexOf. The cached value is
	// trusted only if it maps back to the current RIP.
	idx := m.nextIdx
	if idx < 0 || idx >= len(m.Prog.Insts) || m.Prog.Base+uint64(idx)*isa.InstBytes != m.CPU.RIP {
		idx = m.Prog.IndexOf(m.CPU.RIP)
		if idx < 0 {
			return m.faultEvent(fmt.Sprintf("bad rip %#x", m.CPU.RIP), m.CPU.RIP)
		}
		m.nextIdx = idx
	}
	inst := &m.Prog.Insts[idx]
	info := inst.Op.Info()
	addr := m.CPU.RIP
	next := addr + isa.InstBytes
	if m.Shadow != nil {
		m.Shadow.PreStep(addr, inst, info)
	}
	c := &m.CPU

	switch info.Class {
	case isa.ClassSys:
		switch inst.Op {
		case isa.OpNOP:
		case isa.OpHLT:
			return &m.evHalt
		case isa.OpCALLC:
			m.retire(next, idx+1)
			m.evCallC = CallCEvent{Sym: inst.Sym}
			return &m.evCallC
		}

	case isa.ClassInt:
		if ev := m.execInt(inst, addr); ev != nil {
			return ev
		}

	case isa.ClassBranch:
		a := int64(c.reg(inst.Rs1))
		b := int64(c.reg(inst.Rs2))
		taken := false
		switch inst.Op {
		case isa.OpJMP:
			taken = true
		case isa.OpBEQ:
			taken = a == b
		case isa.OpBNE:
			taken = a != b
		case isa.OpBLT:
			taken = a < b
		case isa.OpBGE:
			taken = a >= b
		case isa.OpBLE:
			taken = a <= b
		case isa.OpBGT:
			taken = a > b
		case isa.OpCALL:
			// Push the return address on the stack.
			sp := c.reg(isa.SP) - 8
			if !m.store64(sp, next) {
				return m.faultEvent(fmt.Sprintf("stack overflow at %#x", sp), addr)
			}
			c.setReg(isa.SP, sp)
			taken = true
		case isa.OpRET:
			sp := c.reg(isa.SP)
			ra, ok := m.load64(sp)
			if !ok {
				return m.faultEvent(fmt.Sprintf("stack underflow at %#x", sp), addr)
			}
			c.setReg(isa.SP, sp+8)
			// Indirect target: the next index is unknown until fetch.
			return m.retireTo(addr, ra, -1)
		}
		if taken {
			// Direct branches carry their target as an instruction index,
			// so the next fetch needs no IndexOf either.
			ti := int(inst.Imm)
			return m.retireTo(addr, m.Prog.AddrOf(ti), ti)
		}

	case isa.ClassMem:
		if ev := m.execMem(inst, addr); ev != nil {
			return ev
		}

	case isa.ClassFPMove:
		m.execMove(inst)

	case isa.ClassMask:
		m.execMask(inst)

	default:
		// Floating point execute path: statically-proven-quiet sites
		// retire natively; everything else computes results into a
		// staging buffer, then either faults (unmasked) or writes back.
		if m.quietStep(idx, inst, info) {
			break
		}
		if ev := m.execFP(inst, info, idx, addr); ev != nil {
			return ev
		}
	}

	return m.retireTo(addr, next, idx+1)
}

// execInt executes an integer ALU instruction. A non-nil event (divide
// fault) means the instruction did not retire.
func (m *Machine) execInt(inst *isa.Inst, addr uint64) Event {
	c := &m.CPU
	a := c.reg(inst.Rs1)
	b := c.reg(inst.Rs2)
	var v uint64
	switch inst.Op {
	case isa.OpMOVI:
		v = uint64(inst.Imm)
	case isa.OpMOV:
		v = a
	case isa.OpADD:
		v = a + b
	case isa.OpADDI:
		v = a + uint64(inst.Imm)
	case isa.OpSUB:
		v = a - b
	case isa.OpMULQ:
		v = uint64(int64(a) * int64(b))
	case isa.OpDIVQ, isa.OpREMQ:
		if b == 0 {
			return m.faultEvent("integer divide by zero", addr)
		}
		if inst.Op == isa.OpDIVQ {
			v = uint64(int64(a) / int64(b))
		} else {
			v = uint64(int64(a) % int64(b))
		}
	case isa.OpAND:
		v = a & b
	case isa.OpOR:
		v = a | b
	case isa.OpXOR:
		v = a ^ b
	case isa.OpSHLI:
		v = a << uint(inst.Imm)
	case isa.OpSHRI:
		v = a >> uint(inst.Imm)
	}
	c.setReg(inst.Rd, v)
	return nil
}

// execMem executes a load/store/MXCSR-access instruction. A non-nil
// event (memory fault) means the instruction did not retire; partial
// vector stores before a fault match the stepped path by construction
// since both run this code.
func (m *Machine) execMem(inst *isa.Inst, addr uint64) Event {
	c := &m.CPU
	ea := c.reg(inst.Rs1) + uint64(inst.Imm)
	switch inst.Op {
	case isa.OpLD:
		v, ok := m.load64(ea)
		if !ok {
			return m.memFault(addr, ea)
		}
		c.setReg(inst.Rd, v)
	case isa.OpST:
		if !m.store64(ea, c.reg(inst.Rs2)) {
			return m.memFault(addr, ea)
		}
	case isa.OpFLD:
		v, ok := m.load64(ea)
		if !ok {
			return m.memFault(addr, ea)
		}
		c.X[inst.Rd][0] = v
	case isa.OpFST:
		if !m.store64(ea, c.X[inst.Rs2][0]) {
			return m.memFault(addr, ea)
		}
	case isa.OpFLDS:
		v, ok := m.load32(ea)
		if !ok {
			return m.memFault(addr, ea)
		}
		c.X[inst.Rd][0] = uint64(v) // upper bits zeroed, movss load semantics
	case isa.OpFSTS:
		if !m.store32(ea, uint32(c.X[inst.Rs2][0])) {
			return m.memFault(addr, ea)
		}
	case isa.OpFLDV:
		for l := 0; l < 4; l++ {
			v, ok := m.load64(ea + uint64(l)*8)
			if !ok {
				return m.memFault(addr, ea)
			}
			c.X[inst.Rd][l] = v
		}
	case isa.OpFSTV:
		for l := 0; l < 4; l++ {
			if !m.store64(ea+uint64(l)*8, c.X[inst.Rs2][l]) {
				return m.memFault(addr, ea)
			}
		}
	case isa.OpFLDVZ:
		for l := 0; l < isa.VecWords; l++ {
			v, ok := m.load64(ea + uint64(l)*8)
			if !ok {
				return m.memFault(addr, ea)
			}
			c.X[inst.Rd][l] = v
		}
	case isa.OpFSTVZ:
		for l := 0; l < isa.VecWords; l++ {
			if !m.store64(ea+uint64(l)*8, c.X[inst.Rs2][l]) {
				return m.memFault(addr, ea)
			}
		}
	case isa.OpLDMXCSR:
		v, ok := m.load32(ea)
		if !ok {
			return m.memFault(addr, ea)
		}
		c.MXCSR = mxcsr.Reg(v)
		if m.Obs != nil {
			m.Obs.GuestMXCSRWrites.Inc()
		}
	case isa.OpSTMXCSR:
		if !m.store32(ea, uint32(c.MXCSR)) {
			return m.memFault(addr, ea)
		}
		if m.Obs != nil {
			m.Obs.GuestMXCSRReads.Inc()
		}
	}
	return nil
}

// execMove executes a flagless vector register move.
func (m *Machine) execMove(inst *isa.Inst) {
	c := &m.CPU
	switch inst.Op {
	case isa.OpMOVSD:
		c.X[inst.Rd][0] = c.X[inst.Rs1][0]
	case isa.OpMOVSS:
		c.setLane32(inst.Rd, 0, c.lane32(inst.Rs1, 0))
	case isa.OpMOVAPD:
		c.X[inst.Rd] = c.X[inst.Rs1]
	case isa.OpMOVQX:
		c.X[inst.Rd][0] = c.reg(inst.Rs1)
	case isa.OpMOVXQ:
		c.setReg(inst.Rd, c.X[inst.Rs1][0])
	}
}

// retire advances RIP and the retirement counter without checking TF
// (used before events that must fire with the instruction completed).
// idx is the instruction index of the new RIP, or -1 when unknown.
func (m *Machine) retire(next uint64, idx int) {
	m.CPU.RIP = next
	m.nextIdx = idx
	m.Retired++
	if m.Shadow != nil {
		m.Shadow.Retired()
	}
}

// retireTo completes an instruction and delivers a single-step trap when
// TF is set. idx caches the instruction index of next (-1 when unknown).
func (m *Machine) retireTo(addr, next uint64, idx int) Event {
	m.retire(next, idx)
	if m.CPU.TF {
		m.evTrap = TrapEvent{Addr: addr, Next: next}
		return &m.evTrap
	}
	return nil
}

func (m *Machine) memFault(addr, ea uint64) Event {
	return m.faultEvent(fmt.Sprintf("bad memory access %#x", ea), addr)
}
