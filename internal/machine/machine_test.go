package machine

import (
	"math"
	"testing"

	"repro/internal/isa"
	"repro/internal/mxcsr"
	"repro/internal/softfloat"
)

// run steps the machine until a halt, fault, or step limit, returning
// all FP events observed.
func run(t *testing.T, m *Machine, limit int) []*FPEvent {
	t.Helper()
	var evs []*FPEvent
	for i := 0; i < limit; i++ {
		switch ev := m.Step().(type) {
		case nil:
		case *HaltEvent:
			return evs
		case *FPEvent:
			// Events alias per-machine scratch storage; copy to retain.
			dup := *ev
			evs = append(evs, &dup)
			// Mask everything to make forward progress, like a handler
			// would.
			m.CPU.MXCSR.Mask(ev.Raised)
		case *FaultEvent:
			t.Fatalf("machine fault: %s at %#x", ev.Reason, ev.Addr)
		default:
			t.Fatalf("unexpected event %T", ev)
		}
	}
	t.Fatalf("step limit exceeded")
	return nil
}

func TestBasicLoopAndArith(t *testing.T) {
	// Sum 1..10 in integer regs; compute float 1/3 and store it.
	b := isa.NewBuilder("basic")
	b.Movi(isa.R1, 0)  // sum
	b.Movi(isa.R2, 1)  // i
	b.Movi(isa.R3, 11) // bound
	loop := b.Label("loop")
	b.Bind(loop)
	b.Add(isa.R1, isa.R1, isa.R2)
	b.Addi(isa.R2, isa.R2, 1)
	b.Blt(isa.R2, isa.R3, loop)
	// Float: x0 = 1.0, x1 = 3.0, x0 /= x1, store at 0.
	b.Movi(isa.R4, int64(math.Float64bits(1)))
	b.Movqx(isa.X0, isa.R4)
	b.Movi(isa.R4, int64(math.Float64bits(3)))
	b.Movqx(isa.X1, isa.R4)
	b.FP2(isa.OpDIVSD, isa.X0, isa.X0, isa.X1)
	b.Movi(isa.R5, 0)
	b.Fst(isa.R5, 0, isa.X0)
	b.Hlt()
	m := New(b.Build(), 4096)
	m.CPU.R[isa.SP] = 4096
	run(t, m, 1000)
	if got := m.CPU.R[isa.R1]; got != 55 {
		t.Errorf("sum = %d, want 55", got)
	}
	v, _ := m.load64(0)
	if f := math.Float64frombits(v); f != 1.0/3.0 {
		t.Errorf("stored %v, want 1/3", f)
	}
	// Inexact must be sticky in MXCSR.
	if m.CPU.MXCSR.Flags()&softfloat.FlagInexact == 0 {
		t.Error("PE flag not sticky after 1/3")
	}
}

func TestUnmaskedExceptionFaultsBeforeWriteback(t *testing.T) {
	b := isa.NewBuilder("fault")
	b.Movi(isa.R1, int64(math.Float64bits(1)))
	b.Movqx(isa.X0, isa.R1)
	b.Movqx(isa.X1, isa.R0) // +0
	b.FP2(isa.OpDIVSD, isa.X0, isa.X0, isa.X1)
	b.Hlt()
	m := New(b.Build(), 256)
	m.CPU.MXCSR.Unmask(softfloat.FlagDivideByZero)
	var fault *FPEvent
	for i := 0; i < 10; i++ {
		ev := m.Step()
		if fe, ok := ev.(*FPEvent); ok {
			fault = fe
			break
		}
	}
	if fault == nil {
		t.Fatal("no FP fault delivered")
	}
	if fault.Unmasked != softfloat.FlagDivideByZero {
		t.Errorf("unmasked = %v, want ZE", fault.Unmasked)
	}
	// No writeback: X0 still holds 1.0, and RIP still points at divsd.
	if m.CPU.X[isa.X0][0] != math.Float64bits(1) {
		t.Errorf("X0 = %#x, writeback happened before fault", m.CPU.X[isa.X0][0])
	}
	if m.CPU.RIP != fault.Addr {
		t.Errorf("RIP advanced past the faulting instruction")
	}
	// Sticky flag set even though unmasked.
	if m.CPU.MXCSR.Flags()&softfloat.FlagDivideByZero == 0 {
		t.Error("ZE flag not set on unmasked fault")
	}
	// Mask it and restart: instruction completes with inf.
	m.CPU.MXCSR = mxcsr.Default
	if ev := m.Step(); ev != nil {
		t.Fatalf("restart produced %T", ev)
	}
	if !softfloat.IsInf64(m.CPU.X[isa.X0][0]) {
		t.Errorf("X0 = %#x after restart, want inf", m.CPU.X[isa.X0][0])
	}
}

func TestSingleStepTrap(t *testing.T) {
	b := isa.NewBuilder("step")
	b.Movi(isa.R1, 7)
	b.Movi(isa.R2, 8)
	b.Hlt()
	m := New(b.Build(), 64)
	m.CPU.TF = true
	ev := m.Step()
	tr, ok := ev.(*TrapEvent)
	if !ok {
		t.Fatalf("got %T, want TrapEvent", ev)
	}
	if tr.Addr != m.Prog.AddrOf(0) || tr.Next != m.Prog.AddrOf(1) {
		t.Errorf("trap addr=%#x next=%#x", tr.Addr, tr.Next)
	}
	if m.CPU.R[isa.R1] != 7 {
		t.Error("trapped instruction did not retire")
	}
	// Clear TF: no more traps.
	m.CPU.TF = false
	if ev := m.Step(); ev != nil {
		t.Fatalf("got %T after clearing TF", ev)
	}
}

func TestFPExceptionThenSingleStepProtocol(t *testing.T) {
	// The FPSpy individual-mode protocol: unmask, run to fault, mask +
	// set TF, restart, take the trap, unmask again.
	b := isa.NewBuilder("protocol")
	b.Movi(isa.R1, int64(math.Float64bits(1)))
	b.Movqx(isa.X0, isa.R1)
	b.Movi(isa.R2, int64(math.Float64bits(3)))
	b.Movqx(isa.X1, isa.R2)
	b.FP2(isa.OpDIVSD, isa.X2, isa.X0, isa.X1) // inexact
	b.FP2(isa.OpADDSD, isa.X3, isa.X2, isa.X0) // inexact
	b.Hlt()
	m := New(b.Build(), 64)
	m.CPU.MXCSR.Unmask(softfloat.FlagInexact)

	faults, traps := 0, 0
	for i := 0; i < 50; i++ {
		switch ev := m.Step().(type) {
		case nil:
		case *HaltEvent:
			if faults != 2 || traps != 2 {
				t.Fatalf("faults=%d traps=%d, want 2 and 2", faults, traps)
			}
			return
		case *FPEvent:
			faults++
			// Handler: clear flags, mask exceptions, set TF.
			m.CPU.MXCSR.ClearFlags()
			m.CPU.MXCSR.Mask(softfloat.FlagInexact)
			m.CPU.TF = true
		case *TrapEvent:
			traps++
			// Handler: clear flags, unmask, clear TF.
			m.CPU.MXCSR.ClearFlags()
			m.CPU.MXCSR.Unmask(softfloat.FlagInexact)
			m.CPU.TF = false
		default:
			t.Fatalf("unexpected event %T", ev)
		}
	}
	t.Fatal("did not reach halt")
}

func TestPackedLanesORFlags(t *testing.T) {
	// addpd with one lane inexact and one exact: flags are the OR.
	b := isa.NewBuilder("packed")
	b.Hlt()
	m := New(b.Build(), 64)
	m.CPU.X[isa.X0] = [isa.VecWords]uint64{math.Float64bits(1), math.Float64bits(0.1), 0, 0}
	m.CPU.X[isa.X1] = [isa.VecWords]uint64{math.Float64bits(2), math.Float64bits(0.2), 0, 0}
	inst := &isa.Inst{Op: isa.OpADDPD, Rd: isa.X2, Rs1: isa.X0, Rs2: isa.X1}
	m.Prog.Insts = append([]isa.Inst{*inst}, m.Prog.Insts...)
	m.CPU.RIP = m.Prog.Base
	if ev := m.Step(); ev != nil {
		t.Fatalf("event %T", ev)
	}
	if m.CPU.X[isa.X2][0] != math.Float64bits(3) {
		t.Errorf("lane0 = %v", math.Float64frombits(m.CPU.X[isa.X2][0]))
	}
	pointOne, pointTwo := 0.1, 0.2
	if m.CPU.X[isa.X2][1] != math.Float64bits(pointOne+pointTwo) {
		t.Errorf("lane1 = %v", math.Float64frombits(m.CPU.X[isa.X2][1]))
	}
	if m.CPU.MXCSR.Flags()&softfloat.FlagInexact == 0 {
		t.Error("packed op did not OR lane flags")
	}
}

func TestCallAndRet(t *testing.T) {
	b := isa.NewBuilder("callret")
	fn := b.Label("fn")
	b.Movi(isa.R1, 1)
	b.Call(fn)
	b.Movi(isa.R3, 3)
	b.Hlt()
	b.Bind(fn)
	b.Movi(isa.R2, 2)
	b.Ret()
	m := New(b.Build(), 1024)
	m.CPU.R[isa.SP] = 1024
	run(t, m, 100)
	if m.CPU.R[isa.R1] != 1 || m.CPU.R[isa.R2] != 2 || m.CPU.R[isa.R3] != 3 {
		t.Errorf("regs = %d %d %d", m.CPU.R[isa.R1], m.CPU.R[isa.R2], m.CPU.R[isa.R3])
	}
}

func TestCallCEvent(t *testing.T) {
	b := isa.NewBuilder("callc")
	b.CallC("getpid")
	b.Hlt()
	m := New(b.Build(), 64)
	ev := m.Step()
	cc, ok := ev.(*CallCEvent)
	if !ok {
		t.Fatalf("got %T", ev)
	}
	if cc.Sym != "getpid" {
		t.Errorf("sym = %q", cc.Sym)
	}
	// The call instruction retired; next step halts.
	if _, ok := m.Step().(*HaltEvent); !ok {
		t.Error("halt not reached after callc")
	}
}

func TestUcomiWritesResult(t *testing.T) {
	b := isa.NewBuilder("ucomi")
	b.Movi(isa.R1, int64(math.Float64bits(1)))
	b.Movqx(isa.X0, isa.R1)
	b.Movi(isa.R2, int64(math.Float64bits(2)))
	b.Movqx(isa.X1, isa.R2)
	b.Ucomi(isa.OpUCOMISD, isa.R3, isa.X0, isa.X1)
	b.Hlt()
	m := New(b.Build(), 64)
	run(t, m, 100)
	if int64(m.CPU.R[isa.R3]) != int64(softfloat.CmpLess) {
		t.Errorf("ucomi result = %d, want less", int64(m.CPU.R[isa.R3]))
	}
}

func TestR0Hardwired(t *testing.T) {
	b := isa.NewBuilder("r0")
	b.Movi(isa.R0, 42)
	b.Add(isa.R1, isa.R0, isa.R0)
	b.Hlt()
	m := New(b.Build(), 64)
	run(t, m, 10)
	if m.CPU.R[isa.R1] != 0 {
		t.Errorf("R0 writable: R1 = %d", m.CPU.R[isa.R1])
	}
}
