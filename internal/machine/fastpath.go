package machine

// RunStraight retires up to max instructions on the fast path: a tight
// loop over Step with no per-instruction event dispatch on the caller's
// side. It returns the number of cleanly retired instructions n <= max
// and, when non-nil, the event raised by one additional Step call beyond
// those n (so the total number of Step executions is n when ev is nil
// and n+1 otherwise — the caller accounts the eventful step separately,
// exactly as it would a lone Step).
//
// The fast path refuses to run when TF is set: with single-stepping
// armed every instruction traps, so there is no straight run to retire
// and the caller must use the precise path. Nothing inside a straight
// run can set TF, arm a breakpoint, or deliver a signal — those happen
// only in kernel event handling, which by construction is outside this
// loop — so checking once at entry is sound. Everything else that needs
// precise handling (unmasked FP exceptions, faults, halts, breakpoints
// armed before entry, libc calls) surfaces as the returned event, with
// semantics bit-identical to single-stepping: sticky flags update before
// an FP fault, a faulting instruction does not retire, and RIP is left
// exactly where Step would leave it.
func (m *Machine) RunStraight(max uint64) (uint64, Event) {
	if m.CPU.TF {
		return 0, nil
	}
	var n uint64
	for n < max {
		if ev := m.Step(); ev != nil {
			return n, ev
		}
		n++
	}
	return n, nil
}
