package machine

// RunStraight retires up to max instructions on the fast path. It
// returns the number of cleanly retired instructions n <= max and, when
// non-nil, the event raised by one additional step beyond those n (so
// the total number of instruction executions is n when ev is nil and
// n+1 otherwise — the caller accounts the eventful step separately,
// exactly as it would a lone Step).
//
// With TF set every instruction traps, so there is no straight run to
// retire; RunStraight executes exactly one stepped instruction and
// returns its event, which credits the same virtual-timer progress the
// precise path would (a TF retire always produces an event, a trap at
// minimum). Nothing inside a straight run can set TF, arm a breakpoint,
// or deliver a signal — those happen only in kernel event handling,
// which by construction is outside this loop — so checking once at
// entry is sound. Everything else that needs precise handling (unmasked
// FP exceptions, faults, halts, breakpoints armed before entry, libc
// calls) surfaces as the returned event, with semantics bit-identical
// to single-stepping: sticky flags update before an FP fault, a
// faulting instruction does not retire, and RIP is left exactly where
// Step would leave it.
//
// The default engine dispatches cached superblock regions (see
// superblock.go); NoSuperblock (the FPE_NOSUPERBLOCK ablation) falls
// back to a tight per-instruction Step loop. Results are bit-identical
// either way.
func (m *Machine) RunStraight(max uint64) (uint64, Event) {
	if m.CPU.TF {
		return 0, m.Step()
	}
	if m.NoSuperblock || m.Shadow != nil {
		// A shadow sink needs the per-instruction PreStep/Retired pair;
		// the superblock engine retires whole regions at once, so it
		// cannot drive one. Falling back reuses the ablation path whose
		// bit-identity to the superblock engine is proven elsewhere.
		var n uint64
		for n < max {
			if ev := m.Step(); ev != nil {
				return n, ev
			}
			n++
		}
		return n, nil
	}
	return m.runSuperblock(max)
}
