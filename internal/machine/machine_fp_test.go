package machine

import (
	"math"
	"testing"

	"repro/internal/isa"
	"repro/internal/softfloat"
)

// stepClean steps once expecting no event.
func stepClean(t *testing.T, m *Machine) {
	t.Helper()
	if ev := m.Step(); ev != nil {
		t.Fatalf("unexpected event %T at %#x", ev, m.CPU.RIP)
	}
}

// runProgram builds, runs to halt, returns the machine.
func runProgram(t *testing.T, build func(b *isa.Builder)) *Machine {
	t.Helper()
	b := isa.NewBuilder("t")
	build(b)
	b.Hlt()
	m := New(b.Build(), 1<<21)
	for i := 0; i < 100000; i++ {
		switch ev := m.Step().(type) {
		case nil:
		case *HaltEvent:
			return m
		default:
			t.Fatalf("event %T", ev)
		}
	}
	t.Fatal("no halt")
	return nil
}

func TestConvertRoundTripThroughMachine(t *testing.T) {
	m := runProgram(t, func(b *isa.Builder) {
		b.Movi(isa.R1, 7)
		b.Cvt(isa.OpCVTSI2SD, isa.X0, isa.R1)  // 7.0
		b.Cvt(isa.OpCVTSD2SS, isa.X1, isa.X0)  // 7.0f
		b.Cvt(isa.OpCVTSS2SD, isa.X2, isa.X1)  // 7.0
		b.Cvt(isa.OpCVTTSD2SI, isa.R2, isa.X2) // 7
	})
	if m.CPU.X[isa.X0][0] != math.Float64bits(7) {
		t.Errorf("cvtsi2sd = %#x", m.CPU.X[isa.X0][0])
	}
	if uint32(m.CPU.X[isa.X1][0]) != math.Float32bits(7) {
		t.Errorf("cvtsd2ss = %#x", m.CPU.X[isa.X1][0])
	}
	if m.CPU.R[isa.R2] != 7 {
		t.Errorf("cvttsd2si = %d", m.CPU.R[isa.R2])
	}
}

func TestRoundImmediates(t *testing.T) {
	m := runProgram(t, func(b *isa.Builder) {
		b.Movi(isa.R1, int64(math.Float64bits(2.5)))
		b.Movqx(isa.X0, isa.R1)
		b.Round(isa.OpROUNDSD, isa.X1, isa.X0, isa.RoundImmNearest)
		b.Round(isa.OpROUNDSD, isa.X2, isa.X0, isa.RoundImmDown)
		b.Round(isa.OpROUNDSD, isa.X3, isa.X0, isa.RoundImmUp)
		b.Round(isa.OpROUNDSD, isa.X4, isa.X0, isa.RoundImmTrunc)
		// Suppress-inexact variant must not set PE; clear flags first
		// via an exact op... flags are sticky, so check via a fresh run
		// below instead.
	})
	want := []float64{2, 2, 3, 2}
	for i, w := range want {
		if got := math.Float64frombits(m.CPU.X[isa.X1+i][0]); got != w {
			t.Errorf("round[%d] = %v, want %v", i, got, w)
		}
	}
	if m.CPU.MXCSR.Flags()&softfloat.FlagInexact == 0 {
		t.Error("rounding 2.5 did not set PE")
	}
	// Suppressed inexact.
	m2 := runProgram(t, func(b *isa.Builder) {
		b.Movi(isa.R1, int64(math.Float64bits(2.5)))
		b.Movqx(isa.X0, isa.R1)
		b.Round(isa.OpROUNDSD, isa.X1, isa.X0, isa.RoundImmNearest|isa.RoundImmNoInexact)
	})
	if m2.CPU.MXCSR.Flags()&softfloat.FlagInexact != 0 {
		t.Error("suppressed round set PE")
	}
}

func TestRoundUsesMXCSRWhenRequested(t *testing.T) {
	// RC=RU in MXCSR, imm selects the MXCSR mode.
	b := isa.NewBuilder("rc")
	b.Movi(isa.R1, int64(math.Float64bits(2.25)))
	b.Movqx(isa.X0, isa.R1)
	b.Round(isa.OpROUNDSD, isa.X1, isa.X0, isa.RoundImmMXCSR)
	b.Hlt()
	mm := New(b.Build(), 1<<16)
	mm.CPU.MXCSR.SetRC(softfloat.RoundUp)
	for {
		ev := mm.Step()
		if _, ok := ev.(*HaltEvent); ok {
			break
		}
		if ev != nil {
			t.Fatalf("event %T", ev)
		}
	}
	if got := math.Float64frombits(mm.CPU.X[isa.X1][0]); got != 3 {
		t.Errorf("roundsd via MXCSR RU = %v, want 3", got)
	}
}

func TestDotProductBroadcast(t *testing.T) {
	b := isa.NewBuilder("dp")
	va := b.Float32s(1, 2, 3, 4, 5, 6, 7, 8)
	vb := b.Float32s(8, 7, 6, 5, 4, 3, 2, 1)
	b.Movi(isa.R1, int64(va))
	b.Fldv(isa.X0, isa.R1, 0)
	b.Movi(isa.R1, int64(vb))
	b.Fldv(isa.X1, isa.R1, 0)
	b.Dp(isa.OpVDPPS, isa.X2, isa.X0, isa.X1)
	b.Hlt()
	m := New(b.Build(), 1<<21)
	for {
		ev := m.Step()
		if _, ok := ev.(*HaltEvent); ok {
			break
		}
		if ev != nil {
			t.Fatalf("event %T", ev)
		}
	}
	// Group 0: 1*8+2*7+3*6+4*5 = 60, broadcast to lanes 0-3.
	// Group 1: 5*4+6*3+7*2+8*1 = 60, broadcast to lanes 4-7.
	for l := 0; l < 8; l++ {
		lane := uint32(m.CPU.X[isa.X2][l/2] >> (32 * uint(l%2)))
		if math.Float32frombits(lane) != 60 {
			t.Errorf("lane %d = %v, want 60", l, math.Float32frombits(lane))
		}
	}
}

func TestFTZThroughMXCSR(t *testing.T) {
	b := isa.NewBuilder("ftz")
	tiny := b.Float64s(1e-310, 0.1)
	b.Movi(isa.R1, int64(tiny))
	b.Fld(isa.X0, isa.R1, 0)
	b.Fld(isa.X1, isa.R1, 8)
	b.FP2(isa.OpMULSD, isa.X2, isa.X0, isa.X1)
	b.Hlt()
	m := New(b.Build(), 1<<21)
	m.CPU.MXCSR.SetFTZ(true)
	m.CPU.MXCSR.SetDAZ(true) // denormal operand treated as zero
	for {
		ev := m.Step()
		if _, ok := ev.(*HaltEvent); ok {
			break
		}
		if ev != nil {
			t.Fatalf("event %T", ev)
		}
	}
	// DAZ turned 1e-310 into 0, so the product is exactly +0 (no DE).
	if m.CPU.X[isa.X2][0] != 0 {
		t.Errorf("DAZ product = %#x", m.CPU.X[isa.X2][0])
	}
	if m.CPU.MXCSR.Flags()&softfloat.FlagDenormal != 0 {
		t.Error("DAZ did not suppress DE")
	}
}

func TestMachineDeterminism(t *testing.T) {
	// Two runs of the same program end in bit-identical architectural
	// state — the property resume/replay and the study depend on.
	build := func() *Machine {
		b := isa.NewBuilder("det")
		b.Movi(isa.R9, 12345)
		data := b.Zeros(256)
		b.Movi(isa.R10, int64(data))
		for i := 0; i < 30; i++ {
			b.Movi(isa.R6, 6364136223846793005)
			b.Mulq(isa.R9, isa.R9, isa.R6)
			b.Shri(isa.R7, isa.R9, 12)
			b.Cvt(isa.OpCVTSI2SDQ, isa.X0, isa.R7)
			b.FP1(isa.OpSQRTSD, isa.X1, isa.X0)
			b.Fst(isa.R10, int64(i%32)*8, isa.X1)
		}
		b.Hlt()
		m := New(b.Build(), 1<<21)
		for {
			ev := m.Step()
			if _, ok := ev.(*HaltEvent); ok {
				return m
			}
			if ev != nil {
				t.Fatalf("event %T", ev)
			}
		}
	}
	m1 := build()
	m2 := build()
	if m1.CPU != m2.CPU {
		t.Error("CPU state diverged between identical runs")
	}
	for i := range m1.Mem {
		if m1.Mem[i] != m2.Mem[i] {
			t.Fatalf("memory diverged at %#x", i)
		}
	}
	if m1.Retired != m2.Retired {
		t.Error("retirement counts diverged")
	}
}

func TestScalarOpsPreserveUpperLanes(t *testing.T) {
	// SSE scalar semantics: lanes 1-3 of the destination are preserved.
	b := isa.NewBuilder("upper")
	b.Hlt()
	m := New(b.Build(), 1<<16)
	m.CPU.X[isa.X0] = [isa.VecWords]uint64{math.Float64bits(1), 111, 222, 333}
	m.CPU.X[isa.X1] = [isa.VecWords]uint64{math.Float64bits(2), 444, 555, 666}
	m.Prog.Insts = append([]isa.Inst{{Op: isa.OpADDSD, Rd: isa.X0, Rs1: isa.X0, Rs2: isa.X1}}, m.Prog.Insts...)
	m.CPU.RIP = m.Prog.Base
	if ev := m.Step(); ev != nil {
		t.Fatalf("event %T", ev)
	}
	if m.CPU.X[isa.X0][0] != math.Float64bits(3) {
		t.Errorf("lane0 = %#x", m.CPU.X[isa.X0][0])
	}
	if m.CPU.X[isa.X0][1] != 111 || m.CPU.X[isa.X0][3] != 333 {
		t.Error("upper lanes clobbered by scalar op")
	}
}

func TestCmpPredicateThroughMachine(t *testing.T) {
	m := runProgram(t, func(b *isa.Builder) {
		b.Movi(isa.R1, int64(math.Float64bits(1)))
		b.Movqx(isa.X0, isa.R1)
		b.Movi(isa.R1, int64(math.Float64bits(2)))
		b.Movqx(isa.X1, isa.R1)
		b.CmpPred(isa.OpCMPSD, isa.X2, isa.X0, isa.X1, isa.CmpImm(softfloat.CmpLT))
		b.CmpPred(isa.OpCMPSD, isa.X3, isa.X1, isa.X0, isa.CmpImm(softfloat.CmpLT))
	})
	if m.CPU.X[isa.X2][0] != ^uint64(0) {
		t.Errorf("1<2 mask = %#x", m.CPU.X[isa.X2][0])
	}
	if m.CPU.X[isa.X3][0] != 0 {
		t.Errorf("2<1 mask = %#x", m.CPU.X[isa.X3][0])
	}
}

func TestMovssSemantics(t *testing.T) {
	b := isa.NewBuilder("movss")
	b.Hlt()
	m := New(b.Build(), 1<<16)
	m.CPU.X[isa.X0] = [isa.VecWords]uint64{0xAAAA_BBBB_CCCC_DDDD, 7, 8, 9}
	m.CPU.X[isa.X1] = [isa.VecWords]uint64{0x1111_2222_3333_4444, 1, 2, 3}
	m.Prog.Insts = append([]isa.Inst{{Op: isa.OpMOVSS, Rd: isa.X0, Rs1: isa.X1}}, m.Prog.Insts...)
	m.CPU.RIP = m.Prog.Base
	if ev := m.Step(); ev != nil {
		t.Fatalf("event %T", ev)
	}
	// Only the low 32 bits of lane 0 move; everything else is preserved.
	if m.CPU.X[isa.X0][0] != 0xAAAA_BBBB_3333_4444 {
		t.Errorf("movss lane0 = %#x", m.CPU.X[isa.X0][0])
	}
	if m.CPU.X[isa.X0][1] != 7 {
		t.Error("movss clobbered upper lanes")
	}
}

func TestCloneMemoryIsDeep(t *testing.T) {
	b := isa.NewBuilder("clone")
	b.Hlt()
	m := New(b.Build(), 256)
	m.Mem[10] = 42
	dup := m.CloneMemory()
	dup[10] = 7
	if m.Mem[10] != 42 {
		t.Error("CloneMemory aliases the original")
	}
}

func TestBadRIPFaults(t *testing.T) {
	b := isa.NewBuilder("bad")
	b.Hlt()
	m := New(b.Build(), 256)
	m.CPU.RIP = 0x12345
	ev := m.Step()
	if _, ok := ev.(*FaultEvent); !ok {
		t.Fatalf("got %T", ev)
	}
}

func TestMemoryFaults(t *testing.T) {
	b := isa.NewBuilder("oob")
	b.Movi(isa.R1, 1<<40)
	b.Ld(isa.R2, isa.R1, 0)
	b.Hlt()
	m := New(b.Build(), 256)
	var fault *FaultEvent
	for i := 0; i < 10; i++ {
		if fe, ok := m.Step().(*FaultEvent); ok {
			fault = fe
			break
		}
	}
	if fault == nil {
		t.Fatal("no fault for out-of-bounds load")
	}
}

func TestIntegerDivideByZeroFaults(t *testing.T) {
	b := isa.NewBuilder("idiv0")
	b.Movi(isa.R1, 5)
	b.Divq(isa.R2, isa.R1, isa.R0)
	b.Hlt()
	m := New(b.Build(), 256)
	var fault *FaultEvent
	for i := 0; i < 10; i++ {
		if fe, ok := m.Step().(*FaultEvent); ok {
			fault = fe
			break
		}
	}
	if fault == nil {
		t.Fatal("no fault for integer divide by zero")
	}
}
