package machine

import (
	"math"

	"repro/internal/isa"
	"repro/internal/softfloat"
)

// Trap-site pruning: QuietFP marks instruction indices the static
// verifier (internal/binscan/absint) proved can never raise any
// exception condition under the default environment. Those sites can
// retire on native hardware arithmetic instead of the softfloat
// interpreter — same bits, no flags, no trap checks.
//
// The proof only covers the power-on environment (round-to-nearest, FTZ
// and DAZ off), which is also exactly the environment in which Go's own
// float64/float32 operations are IEEE 754 evaluated, so the native
// result is bit-identical to the softfloat result. quietStep re-checks
// the live environment before trusting the table: if anything — a guest
// ldmxcsr the analysis missed, a fault injector, a handler editing the
// saved context — has moved RC/FTZ/DAZ off the default, the site falls
// back to the interpreter. Exception *masks* and sticky *flags* are
// deliberately not part of the check: masks gate trap delivery, not
// arithmetic, and a proven-quiet site raises nothing to deliver.

// quietStep executes inst natively when the prune table covers it.
// It reports whether the instruction was retired here; false means the
// caller must take the ordinary interpreted path.
func (m *Machine) quietStep(idx int, inst *isa.Inst, info *isa.OpInfo) bool {
	if m.QuietFP == nil || idx >= len(m.QuietFP) || !m.QuietFP[idx] {
		return false
	}
	if info.Class != isa.ClassFPArith || info.Masked {
		// The native path implements only plain unmasked arithmetic; the
		// analysis never marks other classes or masked forms, so this is
		// a defensive mismatch guard rather than a reachable branch.
		return false
	}
	if m.CPU.MXCSR.Env() != (softfloat.Env{}) {
		return false
	}
	m.execFPQuiet(inst, info)
	if m.Obs != nil {
		m.Obs.QuietSteps.Inc()
	}
	if m.Flops != nil {
		m.countFlops(inst, info)
	}
	return true
}

// execFPQuiet retires a proven-quiet arithmetic instruction on native
// hardware floating point. The operand-forwarding rules of min/max
// mirror softfloat.Min64/Max64 for NaN-free operands: strict inequality
// selects the first operand, everything else (including +0 vs -0, which
// compare equal) forwards the second.
func (m *Machine) execFPQuiet(inst *isa.Inst, info *isa.OpInfo) {
	c := &m.CPU
	if info.Prec == isa.F64 {
		for l := 0; l < info.Lanes; l++ {
			a := c.X[inst.Rs1][l]
			b := c.X[inst.Rs2][l]
			fa, fb := math.Float64frombits(a), math.Float64frombits(b)
			var z uint64
			switch info.FP {
			case isa.FPAdd:
				z = math.Float64bits(fa + fb)
			case isa.FPSub:
				z = math.Float64bits(fa - fb)
			case isa.FPMul:
				z = math.Float64bits(fa * fb)
			case isa.FPDiv:
				z = math.Float64bits(fa / fb)
			case isa.FPSqrt:
				z = math.Float64bits(math.Sqrt(fa))
			case isa.FPMin:
				if fa < fb {
					z = a
				} else {
					z = b
				}
			case isa.FPMax:
				if fa > fb {
					z = a
				} else {
					z = b
				}
			}
			c.X[inst.Rd][l] = z
		}
		return
	}
	for l := 0; l < info.Lanes; l++ {
		a := c.lane32(inst.Rs1, l)
		b := c.lane32(inst.Rs2, l)
		fa, fb := math.Float32frombits(a), math.Float32frombits(b)
		var z uint32
		switch info.FP {
		case isa.FPAdd:
			z = math.Float32bits(fa + fb)
		case isa.FPSub:
			z = math.Float32bits(fa - fb)
		case isa.FPMul:
			z = math.Float32bits(fa * fb)
		case isa.FPDiv:
			z = math.Float32bits(fa / fb)
		case isa.FPSqrt:
			// A single square root of a correctly rounded float32 input
			// computed in float64 and rounded once to float32 is the
			// correctly rounded float32 square root (the double rounding
			// is benign for sqrt), so this matches softfloat.Sqrt32.
			z = math.Float32bits(float32(math.Sqrt(float64(fa))))
		case isa.FPMin:
			if fa < fb {
				z = a
			} else {
				z = b
			}
		case isa.FPMax:
			if fa > fb {
				z = a
			} else {
				z = b
			}
		}
		c.setLane32(inst.Rd, l, z)
	}
}
