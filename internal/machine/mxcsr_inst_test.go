package machine

import (
	"testing"

	"repro/internal/isa"
	"repro/internal/mxcsr"
	"repro/internal/softfloat"
)

// run executes prog to the first non-nil event and returns it.
func runToEvent(t *testing.T, prog *isa.Program) (*Machine, Event) {
	t.Helper()
	m := New(prog, 1<<21)
	for i := 0; i < 10000; i++ {
		if ev := m.Step(); ev != nil {
			return m, ev
		}
	}
	t.Fatal("no event within 10000 steps")
	return nil, nil
}

func TestStmxcsrLdmxcsrRoundTrip(t *testing.T) {
	b := isa.NewBuilder("mxcsr-roundtrip")
	b.Movi(isa.R1, 0x8000)
	b.Stmxcsr(isa.R1, 0) // save power-on value
	b.Movi(isa.R2, 0x9000)
	b.Movi(isa.R3, int64(0x1F80&^(uint32(softfloat.FlagDivideByZero)<<7))) // unmask ZE
	b.St(isa.R2, 0, isa.R3)
	b.Ldmxcsr(isa.R2, 0)
	b.Stmxcsr(isa.R1, 8) // save stomped value
	b.Hlt()
	m, ev := runToEvent(t, b.Build())
	if _, ok := ev.(*HaltEvent); !ok {
		t.Fatalf("event = %T (%v)", ev, ev)
	}
	saved, _ := m.load32(0x8000)
	if mxcsr.Reg(saved) != mxcsr.Default {
		t.Errorf("stmxcsr saved %#x, want power-on %#x", saved, uint32(mxcsr.Default))
	}
	stomped, _ := m.load32(0x8008)
	if got := mxcsr.Reg(stomped).Masks(); got&softfloat.FlagDivideByZero != 0 {
		t.Errorf("ldmxcsr did not unmask ZE: masks=%v", got)
	}
	if m.CPU.MXCSR != mxcsr.Reg(stomped) {
		t.Errorf("live MXCSR %#x != stored %#x", uint32(m.CPU.MXCSR), stomped)
	}
}

func TestLdmxcsrUnmaskCausesFault(t *testing.T) {
	// The guest unmasks ZE via ldmxcsr, then divides by zero: the machine
	// must deliver a precise FP fault exactly as if libc feenableexcept
	// had been used.
	b := isa.NewBuilder("mxcsr-unmask-fault")
	val := b.Words(uint64(0x1F80 &^ (uint32(softfloat.FlagDivideByZero) << 7)))
	b.Movi(isa.R1, int64(val))
	b.Ldmxcsr(isa.R1, 0)
	one := b.Float64s(1)
	b.Movi(isa.R2, int64(one))
	b.Fld(isa.X0, isa.R2, 0)
	b.Movqx(isa.X1, isa.R0) // +0.0
	b.FP2(isa.OpDIVSD, isa.X2, isa.X0, isa.X1)
	b.Hlt()
	m, ev := runToEvent(t, b.Build())
	fp, ok := ev.(*FPEvent)
	if !ok {
		t.Fatalf("event = %T (%v), want FPEvent", ev, ev)
	}
	if fp.Unmasked&softfloat.FlagDivideByZero == 0 {
		t.Errorf("unmasked = %v, want ZE", fp.Unmasked)
	}
	// Precise fault: RIP still addresses the divsd.
	if m.CPU.RIP != fp.Addr {
		t.Errorf("rip advanced past faulting instruction")
	}
}

func TestMxcsrInstBadAddressFaults(t *testing.T) {
	for name, emit := range map[string]func(b *isa.Builder){
		"ldmxcsr": func(b *isa.Builder) { b.Ldmxcsr(isa.R1, 0) },
		"stmxcsr": func(b *isa.Builder) { b.Stmxcsr(isa.R1, 0) },
	} {
		b := isa.NewBuilder(name + "-oob")
		b.Movi(isa.R1, 1<<40)
		emit(b)
		b.Hlt()
		_, ev := runToEvent(t, b.Build())
		if _, ok := ev.(*FaultEvent); !ok {
			t.Errorf("%s: event = %T, want FaultEvent", name, ev)
		}
	}
}

func TestMxcsrInstDisassembly(t *testing.T) {
	ld := isa.Inst{Op: isa.OpLDMXCSR, Rs1: 2, Imm: 16}
	if got := ld.String(); got != "ldmxcsr [r2+16]" {
		t.Errorf("ldmxcsr disasm = %q", got)
	}
	st := isa.Inst{Op: isa.OpSTMXCSR, Rs1: 3, Imm: -8}
	if got := st.String(); got != "stmxcsr [r3-8]" {
		t.Errorf("stmxcsr disasm = %q", got)
	}
}
