package machine

import (
	"fmt"

	"repro/internal/isa"
	"repro/internal/softfloat"
)

// Superblock execution engine: RunStraight dispatches whole decoded
// straight-line regions from a per-machine cache instead of re-resolving
// RIP, re-checking breakpoints, and re-branching on the opcode class for
// every Step. A region is the maximal run of straight-line instructions
// from a start index — it ends at the first control transfer (branch,
// hlt, callc) or stubbed breakpoint address — and its metadata bakes in
// everything that is static per instruction: the decoded Inst and
// OpInfo pointers, the retirement kind, and the prune verdict from the
// absint table. Regions are keyed by (start index, code version); the
// version bumps whenever in-place execution behavior changes
// (SetBreakpoint/ClearBreakpoint, SetQuietFP), invalidating every
// cached region at once.
//
// Inside a region, RIP, nextIdx, and Retired are not updated per
// instruction: the dispatch loop tracks progress locally and flushes
// once per region (or at the first event), leaving the architectural
// state bit-identical to what per-instruction Step would produce —
// including on mid-region faults, where the flush credits exactly the
// cleanly retired prefix and leaves RIP on the faulting instruction.
// Nothing inside a straight run can set TF, arm a breakpoint, or
// deliver a signal (those happen in kernel event handling, outside
// RunStraight), so the entry checks hold for the whole run.

// SBKind is the precomputed retirement kind of one instruction inside a
// superblock region. It collapses the per-Step class switch and the
// quiet/masked/scalar sub-dispatch into one enum resolved at region
// build time.
type SBKind uint8

const (
	// SBNop retires with no architectural effect.
	SBNop SBKind = iota
	// SBInt is an integer ALU instruction (may fault on divide by zero).
	SBInt
	// SBMem is a load/store/MXCSR access (may fault on a bad address).
	SBMem
	// SBFPMove is a flagless vector register move.
	SBFPMove
	// SBMask is a mask-register move (kmov forms).
	SBMask
	// SBFPQuiet is arithmetic statically proven to never raise: it
	// retires on native hardware floats when the live environment is
	// still the power-on default, else falls back to the interpreter.
	SBFPQuiet
	// SBFPScalar64 is unmasked scalar binary64 arithmetic — the hottest
	// FP shape — retired through an inline fast lane that skips the
	// full-width staging buffer.
	SBFPScalar64
	// SBFP is any other floating point form, retired through the same
	// execFP path Step uses.
	SBFP
)

// sbMeta is the cached per-instruction metadata of a region entry. For
// the SBFPScalar64 hot lane the operand registers and FP kind are
// flattened into the entry itself, so the dispatch loop touches only
// the sequential meta slice instead of chasing the Inst and OpInfo
// pointers per instruction.
type sbMeta struct {
	kind         SBKind
	fp           isa.FPOp
	rd, rs1, rs2 uint8
	inst         *isa.Inst
	info         *isa.OpInfo
}

// sbRegion is one cached straight-line region. meta is empty when the
// start instruction is itself a terminator (branch, hlt, callc, or a
// stubbed address); dispatch then falls back to Step for it.
type sbRegion struct {
	version uint64
	built   bool
	meta    []sbMeta
}

// regionFor returns the cached region starting at instruction idx,
// (re)building it when absent or staled by a code-version bump.
func (m *Machine) regionFor(idx int) *sbRegion {
	if m.sbCache == nil {
		m.sbCache = make([]sbRegion, len(m.Prog.Insts))
	}
	r := &m.sbCache[idx]
	if !r.built || r.version != m.codeVersion {
		m.buildRegion(r, idx)
	}
	return r
}

// buildRegion decodes the maximal straight-line region from idx.
func (m *Machine) buildRegion(r *sbRegion, idx int) {
	r.version = m.codeVersion
	r.built = true
	r.meta = r.meta[:0]
	for j := idx; j < len(m.Prog.Insts); j++ {
		if m.Breakpoints != nil && m.Breakpoints[m.Prog.AddrOf(j)] {
			return // the stub faults at fetch; Step delivers it
		}
		inst := &m.Prog.Insts[j]
		info := inst.Op.Info()
		var kind SBKind
		switch info.Class {
		case isa.ClassSys:
			if inst.Op != isa.OpNOP {
				return // hlt and callc terminate the region
			}
			kind = SBNop
		case isa.ClassBranch:
			return
		case isa.ClassInt:
			kind = SBInt
		case isa.ClassMem:
			kind = SBMem
		case isa.ClassFPMove:
			kind = SBFPMove
		case isa.ClassMask:
			kind = SBMask
		default:
			kind = SBFP
			if info.Class == isa.ClassFPArith && !info.Masked {
				switch {
				case m.QuietFP != nil && j < len(m.QuietFP) && m.QuietFP[j]:
					kind = SBFPQuiet
				case info.Prec == isa.F64 && info.Lanes == 1:
					kind = SBFPScalar64
				}
			}
		}
		r.meta = append(r.meta, sbMeta{
			kind: kind, fp: info.FP,
			rd: inst.Rd, rs1: inst.Rs1, rs2: inst.Rs2,
			inst: inst, info: info,
		})
	}
}

// runSuperblock is RunStraight's cached dispatch loop (TF clear,
// NoSuperblock off).
func (m *Machine) runSuperblock(max uint64) (uint64, Event) {
	var n uint64
	for n < max {
		// Resolve the start index exactly as Step does.
		idx := m.nextIdx
		if idx < 0 || idx >= len(m.Prog.Insts) || m.Prog.Base+uint64(idx)*isa.InstBytes != m.CPU.RIP {
			idx = m.Prog.IndexOf(m.CPU.RIP)
			if idx < 0 {
				return n, m.faultEvent(fmt.Sprintf("bad rip %#x", m.CPU.RIP), m.CPU.RIP)
			}
			m.nextIdx = idx
		}
		r := m.regionFor(idx)
		meta := r.meta
		if len(meta) == 0 {
			// The region starts at a terminator: one stepped instruction
			// handles the branch/hlt/callc/breakpoint precisely.
			ev := m.Step()
			if ev != nil {
				return n, ev
			}
			n++
			continue
		}
		limit := len(meta)
		if rem := max - n; uint64(limit) > rem {
			limit = int(rem)
		}
		startAddr := m.CPU.RIP
		// The softfloat environment is derived from MXCSR control bits,
		// which nothing inside a region mutates except a memory-class
		// instruction (ldmxcsr): derive it once and refresh after each
		// SBMem retire instead of re-deriving per FP instruction.
		env := m.CPU.MXCSR.Env()
		c := &m.CPU
		var ev Event
		k := 0
		for k < limit {
			mt := &meta[k]
			if mt.kind == SBFPScalar64 {
				// Inline hot lane: unmasked scalar binary64 arithmetic,
				// dispatched on the flattened meta fields. Mirrors
				// execFPScalar64 exactly; duplicated here because the
				// call (and the execMeta switch in front of it) costs as
				// much as the arithmetic for the cheap ops.
				a := c.X[mt.rs1][0]
				b := c.X[mt.rs2][0]
				var z uint64
				var fl softfloat.Flags
				switch mt.fp {
				case isa.FPAdd:
					z, fl = softfloat.Add64(a, b, env)
				case isa.FPSub:
					z, fl = softfloat.Sub64(a, b, env)
				case isa.FPMul:
					z, fl = softfloat.Mul64(a, b, env)
				case isa.FPDiv:
					z, fl = softfloat.Div64(a, b, env)
				case isa.FPSqrt:
					z, fl = softfloat.Sqrt64(a, env)
				case isa.FPMin:
					z, fl = softfloat.Min64(a, b, env)
				case isa.FPMax:
					z, fl = softfloat.Max64(a, b, env)
				}
				unmasked := c.MXCSR.Unmasked(fl)
				c.MXCSR.SetFlags(fl)
				if unmasked != 0 {
					ev = m.fpEventAt(startAddr+uint64(k)*isa.InstBytes, idx+k, fl, unmasked)
					break
				}
				c.X[mt.rd][0] = z
				if m.Flops != nil {
					m.countFlops(mt.inst, mt.info)
				}
				k++
				continue
			}
			ev = m.execMeta(mt, idx+k, startAddr+uint64(k)*isa.InstBytes, env)
			if ev != nil {
				break
			}
			if mt.kind == SBMem {
				env = m.CPU.MXCSR.Env()
			}
			k++
		}
		// Flush the batched retirement state: k instructions retired
		// cleanly, and on an event RIP must address the eventful
		// instruction with the prefix credited — the same state
		// per-instruction stepping leaves behind.
		m.CPU.RIP = startAddr + uint64(k)*isa.InstBytes
		m.nextIdx = idx + k
		m.Retired += uint64(k)
		n += uint64(k)
		if ev != nil {
			return n, ev
		}
		if k == len(meta) && n < max {
			// The region's terminator.
			ev := m.Step()
			if ev != nil {
				return n, ev
			}
			n++
		}
	}
	return n, nil
}

// execMeta retires one region entry. It must not touch RIP, nextIdx, or
// Retired — the dispatch loop batches those — and a non-nil event means
// the instruction did not retire (except events Step-paths also deliver
// post-retire, which cannot occur here: those are branch/sys kinds,
// never cached in meta). env is the caller's hoisted copy of
// m.CPU.MXCSR.Env(), valid because the dispatch loop refreshes it after
// every instruction that can rewrite MXCSR control bits.
func (m *Machine) execMeta(mt *sbMeta, idx int, addr uint64, env softfloat.Env) Event {
	switch mt.kind {
	case SBNop:
	case SBInt:
		return m.execInt(mt.inst, addr)
	case SBMem:
		return m.execMem(mt.inst, addr)
	case SBFPMove:
		m.execMove(mt.inst)
	case SBMask:
		m.execMask(mt.inst)
	case SBFPQuiet:
		if env == (softfloat.Env{}) {
			m.execFPQuiet(mt.inst, mt.info)
			if m.Obs != nil {
				m.Obs.QuietSteps.Inc()
			}
			if m.Flops != nil {
				m.countFlops(mt.inst, mt.info)
			}
			return nil
		}
		// Environment moved off the default: the static proof does not
		// apply, take the interpreted path like quietStep's fallback.
		return m.execFP(mt.inst, mt.info, idx, addr)
	case SBFPScalar64:
		return m.execFPScalar64(mt.inst, mt.info, idx, addr, env)
	case SBFP:
		return m.execFP(mt.inst, mt.info, idx, addr)
	}
	return nil
}

// execFPScalar64 retires unmasked scalar binary64 arithmetic without
// staging a full vector: lane 0 is computed, flags settle, and on a
// clean retire the single lane writes back directly.
func (m *Machine) execFPScalar64(inst *isa.Inst, info *isa.OpInfo, idx int, addr uint64, env softfloat.Env) Event {
	c := &m.CPU
	a := c.X[inst.Rs1][0]
	b := c.X[inst.Rs2][0]
	var z uint64
	var fl softfloat.Flags
	switch info.FP {
	case isa.FPAdd:
		z, fl = softfloat.Add64(a, b, env)
	case isa.FPSub:
		z, fl = softfloat.Sub64(a, b, env)
	case isa.FPMul:
		z, fl = softfloat.Mul64(a, b, env)
	case isa.FPDiv:
		z, fl = softfloat.Div64(a, b, env)
	case isa.FPSqrt:
		z, fl = softfloat.Sqrt64(a, env)
	case isa.FPMin:
		z, fl = softfloat.Min64(a, b, env)
	case isa.FPMax:
		z, fl = softfloat.Max64(a, b, env)
	}
	unmasked := c.MXCSR.Unmasked(fl)
	c.MXCSR.SetFlags(fl)
	if unmasked != 0 {
		return m.fpEventAt(addr, idx, fl, unmasked)
	}
	c.X[inst.Rd][0] = z
	if m.Flops != nil {
		m.countFlops(inst, info)
	}
	return nil
}
