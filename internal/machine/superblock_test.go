package machine

import (
	"math"
	"testing"

	"repro/internal/isa"
	"repro/internal/obs"
	"repro/internal/softfloat"
)

// wideFPProgram emits a program exercising the forms the superblock
// engine special-cases: 512-bit packed arithmetic, write-masked forms,
// mask-register moves, full-width loads/stores, FMA, sqrt, and scalar
// binary64 — in a loop with calls so regions rebuild and re-dispatch.
func wideFPProgram() *isa.Program {
	b := isa.NewBuilder("wide")
	a8 := b.Float64s(1, 2, 3, 4, 5, 6, 7, 8)
	c8 := b.Float64s(0.5, 1.5, 2.5, 3.5, 4.5, 5.5, 6.5, 7.5)
	out := b.Zeros(8 * 8)
	fn := b.Label("fn")
	b.Movi(isa.R4, int64(a8))
	b.Fldvz(isa.X0, isa.R4, 0)
	b.Movi(isa.R4, int64(c8))
	b.Fldvz(isa.X1, isa.R4, 0)
	b.Movi(isa.R5, 0b10110101) // write mask
	b.Kmovq(isa.K1, isa.R5)
	b.Movi(isa.R2, 0)
	b.Movi(isa.R3, 30)
	top := b.Label("top")
	b.Bind(top)
	b.FP2(isa.OpVADDPDZ, isa.X2, isa.X0, isa.X1)
	b.FP2Masked(isa.OpVMULPDKZ, isa.X2, isa.X0, isa.X1, isa.K1)
	b.FP1Masked(isa.OpVSQRTPDKZ, isa.X3, isa.X2, isa.K1)
	b.FMA(isa.OpVFMADDPDZ, isa.X4, isa.X0, isa.X1, isa.X2)
	b.FP2(isa.OpDIVSD, isa.X5, isa.X0, isa.X1) // inexact each iteration
	b.Call(fn)
	b.Movi(isa.R4, int64(out))
	b.Fstvz(isa.R4, 0, isa.X4)
	b.Kmovrq(isa.R6, isa.K1)
	b.Addi(isa.R2, isa.R2, 1)
	b.Blt(isa.R2, isa.R3, top)
	b.Hlt()
	b.Bind(fn)
	b.FP2(isa.OpVSUBPSZ, isa.X6, isa.X1, isa.X0)
	b.Ret()
	return b.Build()
}

// driveFast drives m with the FPSpy-style mask-then-single-step handler
// through RunStraight, returning the observed event sequence.
func driveFast(t *testing.T, m *Machine) []string {
	t.Helper()
	m.CPU.R[isa.SP] = uint64(len(m.Mem))
	m.CPU.MXCSR.Unmask(softfloat.FlagInexact)
	var events []string
	for i := 0; i < 100000; i++ {
		var ev Event
		if m.CPU.TF {
			ev = m.Step()
		} else if _, ev = m.RunStraight(13); ev == nil {
			continue
		}
		switch e := ev.(type) {
		case *FPEvent:
			events = append(events, "fp")
			_ = e
			m.CPU.MXCSR.Mask(softfloat.FlagInexact)
			m.CPU.TF = true
		case *TrapEvent:
			events = append(events, "trap")
			m.CPU.MXCSR.ClearFlags()
			m.CPU.MXCSR.Unmask(softfloat.FlagInexact)
			m.CPU.TF = false
		case *HaltEvent:
			return append(events, "halt")
		default:
			t.Fatalf("unexpected event %T", ev)
		}
	}
	t.Fatal("program did not halt")
	return nil
}

// TestSuperblockMatchesNoSuperblock is the engine ablation differential:
// the cached superblock dispatch and the per-instruction fast path must
// produce bit-identical architectural outcomes — registers, mask
// registers, memory, retirement counts, and the event sequence — on a
// program covering every SBKind.
func TestSuperblockMatchesNoSuperblock(t *testing.T) {
	for _, prog := range []func() *isa.Program{wideFPProgram, eventFPProgram} {
		cached := New(prog(), 1<<21)
		evA := driveFast(t, cached)
		plain := New(prog(), 1<<21)
		plain.NoSuperblock = true
		evB := driveFast(t, plain)

		if cached.CPU != plain.CPU {
			t.Errorf("CPU state diverged:\n cached %+v\n plain  %+v", cached.CPU, plain.CPU)
		}
		if cached.Retired != plain.Retired {
			t.Errorf("retired: cached %d, plain %d", cached.Retired, plain.Retired)
		}
		for i := range cached.Mem {
			if cached.Mem[i] != plain.Mem[i] {
				t.Fatalf("memory diverged at %#x", i)
			}
		}
		if len(evA) != len(evB) {
			t.Fatalf("event counts: cached %d, plain %d", len(evA), len(evB))
		}
		for i := range evA {
			if evA[i] != evB[i] {
				t.Errorf("event %d: cached %s, plain %s", i, evA[i], evB[i])
			}
		}
	}
}

// TestSuperblockBreakpointInvalidation pins the cache-coherence
// contract: arming a breakpoint after regions were built and cached
// must still deliver the BreakpointEvent at the stub — a stale region
// would run straight through it.
func TestSuperblockBreakpointInvalidation(t *testing.T) {
	b := isa.NewBuilder("bp")
	b.Movi(isa.R1, 1) // idx 0
	b.Movi(isa.R2, 2) // idx 1
	b.Movi(isa.R3, 3) // idx 2
	b.Movi(isa.R4, 4) // idx 3
	b.Hlt()
	m := New(b.Build(), 64)

	// Warm the cache across the whole straight line.
	n, ev := m.RunStraight(2)
	if n != 2 || ev != nil {
		t.Fatalf("warmup ran %d, ev %T", n, ev)
	}
	// Arm a breakpoint on an address inside the already-cached region.
	bpAddr := m.Prog.AddrOf(3)
	m.SetBreakpoint(bpAddr)
	m.CPU.RIP = m.Prog.Base // restart
	m.nextIdx = 0
	n, ev = m.RunStraight(100)
	bp, ok := ev.(*BreakpointEvent)
	if !ok {
		t.Fatalf("after arming: ran %d, event %T, want *BreakpointEvent", n, ev)
	}
	if bp.Addr != bpAddr {
		t.Errorf("breakpoint at %#x, want %#x", bp.Addr, bpAddr)
	}
	if n != 3 {
		t.Errorf("credited %d clean retires before breakpoint, want 3", n)
	}
	// Clearing it must also invalidate: the run now reaches halt.
	m.ClearBreakpoint(bpAddr)
	m.CPU.RIP = m.Prog.Base
	m.nextIdx = 0
	_, ev = m.RunStraight(100)
	if _, ok := ev.(*HaltEvent); !ok {
		t.Fatalf("after clearing: event %T, want *HaltEvent", ev)
	}
	if m.CPU.R[isa.R4] != 4 {
		t.Error("instruction after cleared breakpoint did not execute")
	}
}

// TestSuperblockQuietFPInvalidation verifies SetQuietFP bumps the code
// version: regions cached before the prune table arrives must rebuild
// so proven-quiet sites take the native path (visible as QuietSteps).
func TestSuperblockQuietFPInvalidation(t *testing.T) {
	b := isa.NewBuilder("quiet")
	b.Movi(isa.R1, int64(math.Float64bits(1)))
	b.Movqx(isa.X0, isa.R1)
	b.Movi(isa.R1, int64(math.Float64bits(2)))
	b.Movqx(isa.X1, isa.R1)
	b.FP2(isa.OpADDSD, isa.X2, isa.X0, isa.X1) // 1+2: exact, provably quiet
	b.Hlt()
	m := New(b.Build(), 64)
	om := obs.New(obs.Options{})
	m.Obs = &om.Machine

	// Warm the cache with no quiet table: the add retires interpreted.
	if n, ev := m.RunStraight(5); ev != nil || n != 5 {
		t.Fatalf("warmup: n=%d ev=%T (want 5 clean retires)", n, ev)
	}
	if got := om.Machine.QuietSteps.Load(); got != 0 {
		t.Fatalf("QuietSteps = %d before any prune table", got)
	}

	table := make([]bool, 6)
	table[4] = true // the ADDSD site
	m.SetQuietFP(table)
	m.CPU.RIP = m.Prog.Base
	m.nextIdx = 0
	if _, ev := m.RunStraight(100); ev == nil {
		t.Fatal("no halt on second run")
	}
	if got := om.Machine.QuietSteps.Load(); got != 1 {
		t.Errorf("QuietSteps = %d after SetQuietFP, want 1 (stale region not rebuilt?)", got)
	}
	if m.CPU.X[isa.X2][0] != math.Float64bits(3) {
		t.Errorf("quiet add result %#x", m.CPU.X[isa.X2][0])
	}
}

// TestMaskedLanesNeitherComputeNorRaise pins the merge-masking model: a
// masked-off lane keeps the destination's prior contents and suppresses
// the exception its computation would have raised.
func TestMaskedLanesNeitherComputeNorRaise(t *testing.T) {
	b := isa.NewBuilder("mask")
	b.Hlt()
	m := New(b.Build(), 64)
	one := math.Float64bits(1)
	for l := 0; l < isa.VecWords; l++ {
		m.CPU.X[isa.X0][l] = one
		m.CPU.X[isa.X1][l] = 0 // 1/0 would raise divide-by-zero
		m.CPU.X[isa.X2][l] = uint64(100 + l)
	}
	m.CPU.K[isa.K1] = 0b00000010 // only lane 1 active
	m.CPU.MXCSR.Unmask(softfloat.FlagDivideByZero)
	m.Prog.Insts = append([]isa.Inst{
		{Op: isa.OpVDIVPDKZ, Rd: isa.X2, Rs1: isa.X0, Rs2: isa.X1, Rs3: isa.K1},
	}, m.Prog.Insts...)
	m.CPU.RIP = m.Prog.Base

	// The single active lane divides by zero: the event fires, the
	// instruction does not retire, and no destination lane changes.
	ev := m.Step()
	fp, ok := ev.(*FPEvent)
	if !ok {
		t.Fatalf("active faulting lane: event %T, want *FPEvent", ev)
	}
	if fp.Raised&softfloat.FlagDivideByZero == 0 {
		t.Errorf("raised %v, want divide-by-zero", fp.Raised)
	}
	for l := 0; l < isa.VecWords; l++ {
		if m.CPU.X[isa.X2][l] != uint64(100+l) {
			t.Fatalf("lane %d clobbered by faulting masked op", l)
		}
	}

	// Mask off every lane: nothing computes, nothing raises.
	m.CPU.MXCSR.ClearFlags()
	m.CPU.K[isa.K1] = 0
	if ev := m.Step(); ev != nil {
		t.Fatalf("all-lanes-masked op raised %T", ev)
	}
	for l := 0; l < isa.VecWords; l++ {
		if m.CPU.X[isa.X2][l] != uint64(100+l) {
			t.Fatalf("lane %d written by fully masked op", l)
		}
	}
	if fl := m.CPU.MXCSR.Flags(); fl != 0 {
		t.Errorf("fully masked op set sticky flags %v", fl)
	}
}

// TestZFormFullWidth pins 512-bit semantics end to end: fldvz loads all
// eight words, vaddpdz computes every lane, fstvz stores them back.
func TestZFormFullWidth(t *testing.T) {
	b := isa.NewBuilder("zform")
	src := b.Float64s(1, 2, 3, 4, 5, 6, 7, 8)
	dst := b.Zeros(64)
	b.Movi(isa.R1, int64(src))
	b.Fldvz(isa.X0, isa.R1, 0)
	b.FP2(isa.OpVADDPDZ, isa.X1, isa.X0, isa.X0)
	b.Movi(isa.R2, int64(dst))
	b.Fstvz(isa.R2, 0, isa.X1)
	b.Hlt()
	m := New(b.Build(), 1<<21)
	for i := 0; i < 6; i++ {
		if ev := m.Step(); ev != nil {
			if _, ok := ev.(*HaltEvent); ok {
				break
			}
			t.Fatalf("step %d: event %T", i, ev)
		}
	}
	for l := 0; l < isa.VecWords; l++ {
		want := math.Float64bits(float64(l+1) * 2)
		if got := m.CPU.X[isa.X1][l]; got != want {
			t.Errorf("lane %d = %#x, want %#x", l, got, want)
		}
		gotMem, _ := m.load64(dst + uint64(l)*8)
		if gotMem != want {
			t.Errorf("stored lane %d = %#x, want %#x", l, gotMem, want)
		}
	}
}
