package mxcsr

import (
	"testing"
	"testing/quick"

	"repro/internal/softfloat"
)

func TestDefaultState(t *testing.T) {
	r := Default
	if r.Flags() != 0 {
		t.Error("default has flags set")
	}
	if r.Masks() != 0x3F {
		t.Errorf("default masks = %#x", uint32(r.Masks()))
	}
	if r.RC() != softfloat.RoundNearestEven {
		t.Errorf("default RC = %v", r.RC())
	}
	if r.FTZ() || r.DAZ() {
		t.Error("default FTZ/DAZ set")
	}
}

func TestStickyFlags(t *testing.T) {
	var r Reg = Default
	r.SetFlags(softfloat.FlagInexact)
	r.SetFlags(softfloat.FlagInvalid)
	if r.Flags() != softfloat.FlagInexact|softfloat.FlagInvalid {
		t.Errorf("flags = %v", r.Flags())
	}
	// Setting again does not clear.
	r.SetFlags(softfloat.FlagInexact)
	if r.Flags()&softfloat.FlagInvalid == 0 {
		t.Error("sticky flag lost")
	}
	r.ClearFlags()
	if r.Flags() != 0 {
		t.Error("clear failed")
	}
}

func TestMaskingAndUnmasked(t *testing.T) {
	var r Reg = Default
	r.Unmask(softfloat.FlagDivideByZero | softfloat.FlagInvalid)
	if got := r.Unmasked(softfloat.FlagDivideByZero | softfloat.FlagInexact); got != softfloat.FlagDivideByZero {
		t.Errorf("unmasked = %v", got)
	}
	r.Mask(softfloat.FlagDivideByZero)
	if got := r.Unmasked(softfloat.FlagDivideByZero); got != 0 {
		t.Errorf("remask failed: %v", got)
	}
	if got := r.Unmasked(softfloat.FlagInvalid); got != softfloat.FlagInvalid {
		t.Errorf("invalid lost its unmask: %v", got)
	}
}

func TestRoundingControlField(t *testing.T) {
	var r Reg = Default
	for _, m := range []softfloat.RoundingMode{
		softfloat.RoundNearestEven, softfloat.RoundDown,
		softfloat.RoundUp, softfloat.RoundToZero,
	} {
		r.SetRC(m)
		if r.RC() != m {
			t.Errorf("RC = %v after SetRC(%v)", r.RC(), m)
		}
		// RC changes must not disturb masks or flags.
		if r.Masks() != 0x3F {
			t.Errorf("masks perturbed: %#x", uint32(r.Masks()))
		}
	}
}

func TestFTZDAZBits(t *testing.T) {
	var r Reg = Default
	r.SetFTZ(true)
	r.SetDAZ(true)
	env := r.Env()
	if !env.FTZ || !env.DAZ {
		t.Errorf("env = %+v", env)
	}
	r.SetFTZ(false)
	if r.Env().FTZ {
		t.Error("FTZ clear failed")
	}
	if !r.DAZ() {
		t.Error("DAZ lost")
	}
}

func TestFieldIndependenceQuick(t *testing.T) {
	// Property: writing any one field never disturbs the others.
	f := func(raw uint32, flags, masks uint8, rc uint8) bool {
		r := Reg(raw)
		before := r
		r.SetRC(softfloat.RoundingMode(rc % 4))
		if r&^(3<<RCShift) != before&^(3<<RCShift) {
			return false
		}
		r = before
		r.SetFlags(softfloat.Flags(flags) & 0x3F)
		if r&^FlagBits != before&^FlagBits {
			return false
		}
		r = before
		r.SetMasks(softfloat.Flags(masks) & 0x3F)
		return r&^MaskBits == before&^MaskBits
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10000}); err != nil {
		t.Fatal(err)
	}
}

func TestPriorityEncoding(t *testing.T) {
	cases := []struct {
		raised, want softfloat.Flags
	}{
		{softfloat.FlagInvalid | softfloat.FlagInexact, softfloat.FlagInvalid},
		{softfloat.FlagDenormal | softfloat.FlagUnderflow, softfloat.FlagDenormal},
		{softfloat.FlagDivideByZero | softfloat.FlagInexact, softfloat.FlagDivideByZero},
		{softfloat.FlagOverflow | softfloat.FlagInexact, softfloat.FlagOverflow},
		{softfloat.FlagUnderflow | softfloat.FlagInexact, softfloat.FlagUnderflow},
		{softfloat.FlagInexact, softfloat.FlagInexact},
		{0, 0},
	}
	for _, c := range cases {
		if got := Priority(c.raised); got != c.want {
			t.Errorf("Priority(%v) = %v, want %v", c.raised, got, c.want)
		}
	}
}
