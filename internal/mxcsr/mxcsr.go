// Package mxcsr models the x64 %mxcsr floating point control/status
// register: the six sticky exception flags, the six exception masks, the
// rounding control field, and the FTZ and DAZ bits. This register is the
// heart of the FPSpy reproduction — aggregate mode reads its sticky flags,
// and individual mode unmasks exceptions through it.
package mxcsr

import "repro/internal/softfloat"

// Reg is the 32-bit %mxcsr register value. The layout matches hardware:
//
//	bit  0: IE   invalid operation flag
//	bit  1: DE   denormal flag
//	bit  2: ZE   divide-by-zero flag
//	bit  3: OE   overflow flag
//	bit  4: UE   underflow flag
//	bit  5: PE   precision (inexact) flag
//	bit  6: DAZ  denormals are zero
//	bit  7: IM   invalid operation mask
//	bit  8: DM   denormal mask
//	bit  9: ZM   divide-by-zero mask
//	bit 10: OM   overflow mask
//	bit 11: UM   underflow mask
//	bit 12: PM   precision mask
//	bits 13-14: RC rounding control
//	bit 15: FTZ  flush to zero
type Reg uint32

const (
	// FlagShift is the bit position of the sticky flag field.
	FlagShift = 0
	// DAZBit is the denormals-are-zero control bit.
	DAZBit Reg = 1 << 6
	// MaskShift is the bit position of the exception mask field.
	MaskShift = 7
	// RCShift is the bit position of the rounding control field.
	RCShift = 13
	// FTZBit is the flush-to-zero control bit.
	FTZBit Reg = 1 << 15

	// FlagBits covers the six sticky exception flags.
	FlagBits Reg = 0x3F
	// MaskBits covers the six exception masks.
	MaskBits Reg = 0x3F << MaskShift

	// Default is the power-on value: all exceptions masked, flags clear,
	// round to nearest, FTZ and DAZ off.
	Default Reg = 0x1F80
)

// Flags returns the sticky exception flags.
func (r Reg) Flags() softfloat.Flags {
	return softfloat.Flags(r & FlagBits)
}

// SetFlags ORs exception flags into the sticky flag field.
func (r *Reg) SetFlags(f softfloat.Flags) {
	*r |= Reg(f) & FlagBits
}

// ClearFlags clears all six sticky flags.
func (r *Reg) ClearFlags() {
	*r &^= FlagBits
}

// Masks returns the exception mask field, aligned to flag bit positions:
// a set bit means the corresponding exception is masked (suppressed).
func (r Reg) Masks() softfloat.Flags {
	return softfloat.Flags((r & MaskBits) >> MaskShift)
}

// SetMasks replaces the exception mask field, with masks given in flag
// bit positions.
func (r *Reg) SetMasks(m softfloat.Flags) {
	*r = (*r &^ MaskBits) | (Reg(m)<<MaskShift)&MaskBits
}

// Unmask clears the masks for the given exceptions so they will raise
// faults, leaving other masks untouched.
func (r *Reg) Unmask(f softfloat.Flags) {
	*r &^= (Reg(f) << MaskShift) & MaskBits
}

// Mask sets the masks for the given exceptions so they are suppressed.
func (r *Reg) Mask(f softfloat.Flags) {
	*r |= (Reg(f) << MaskShift) & MaskBits
}

// Unmasked returns the subset of raised that would cause a fault under
// the current masks.
func (r Reg) Unmasked(raised softfloat.Flags) softfloat.Flags {
	return raised &^ r.Masks()
}

// RC returns the rounding control field.
func (r Reg) RC() softfloat.RoundingMode {
	return softfloat.RoundingMode((r >> RCShift) & 3)
}

// SetRC sets the rounding control field.
func (r *Reg) SetRC(m softfloat.RoundingMode) {
	*r = (*r &^ (3 << RCShift)) | Reg(m&3)<<RCShift
}

// FTZ reports whether flush-to-zero is enabled.
func (r Reg) FTZ() bool { return r&FTZBit != 0 }

// SetFTZ sets or clears flush-to-zero.
func (r *Reg) SetFTZ(on bool) {
	if on {
		*r |= FTZBit
	} else {
		*r &^= FTZBit
	}
}

// DAZ reports whether denormals-are-zero is enabled.
func (r Reg) DAZ() bool { return r&DAZBit != 0 }

// SetDAZ sets or clears denormals-are-zero.
func (r *Reg) SetDAZ(on bool) {
	if on {
		*r |= DAZBit
	} else {
		*r &^= DAZBit
	}
}

// Env derives the softfloat evaluation environment from the control bits.
func (r Reg) Env() softfloat.Env {
	return softfloat.Env{RM: r.RC(), FTZ: r.FTZ(), DAZ: r.DAZ()}
}

// Priority returns the highest-priority exception among raised, following
// the x64 priority encoding: Invalid and Denormal (pre-computation) first,
// then DivideByZero, then Overflow, Underflow, and Precision.
func Priority(raised softfloat.Flags) softfloat.Flags {
	order := [...]softfloat.Flags{
		softfloat.FlagInvalid,
		softfloat.FlagDenormal,
		softfloat.FlagDivideByZero,
		softfloat.FlagOverflow,
		softfloat.FlagUnderflow,
		softfloat.FlagInexact,
	}
	for _, f := range order {
		if raised&f != 0 {
			return f
		}
	}
	return 0
}
