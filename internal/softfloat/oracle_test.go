package softfloat

import (
	"math"
	"math/big"
	"math/rand"
	"testing"
)

// The directed-rounding oracle: compute each operation exactly with
// math/big.Float (at a precision exceeding the worst-case exponent
// spread, so sums are exact), round to 53 bits in the target mode, and
// compare against the soft-float engine. big.Float has no exponent
// bounds or subnormals, so the comparison is restricted to results that
// are comfortably normal in binary64; dedicated tests below cover the
// overflow and subnormal edges the oracle cannot.

func bigMode(rm RoundingMode) big.RoundingMode {
	switch rm {
	case RoundNearestEven:
		return big.ToNearestEven
	case RoundDown:
		return big.ToNegativeInf
	case RoundUp:
		return big.ToPositiveInf
	default:
		return big.ToZero
	}
}

// oracleSafe reports whether the pattern is a finite value in the range
// where the big.Float oracle and binary64 agree exactly.
func oracleSafe(x uint64) bool {
	f := math.Float64frombits(x)
	if math.IsNaN(f) || math.IsInf(f, 0) {
		return false
	}
	if f == 0 {
		return true
	}
	a := math.Abs(f)
	return a > 0x1p-1000 && a < 0x1p1000
}

// normalPattern64 generates finite patterns within the oracle-safe
// exponent range.
func normalPattern64(r *rand.Rand) uint64 {
	exp := uint64(1023 + r.Intn(400) - 200)
	return r.Uint64()&(f64SignMask|f64FracMask) | exp<<52
}

func oracleBinary(t *testing.T, name string, soft func(a, b uint64, env Env) (uint64, Flags), exact func(z, a, b *big.Float)) {
	t.Helper()
	r := rand.New(rand.NewSource(int64(len(name)) * 1009))
	modes := []RoundingMode{RoundNearestEven, RoundDown, RoundUp, RoundToZero}
	for i := 0; i < 40000; i++ {
		a := normalPattern64(r)
		b := normalPattern64(r)
		fa := new(big.Float).SetPrec(600).SetFloat64(math.Float64frombits(a))
		fb := new(big.Float).SetPrec(600).SetFloat64(math.Float64frombits(b))
		z := new(big.Float).SetPrec(600)
		exact(z, fa, fb)
		for _, rm := range modes {
			got, _ := soft(a, b, Env{RM: rm})
			if !oracleSafe(got) {
				continue
			}
			want := new(big.Float).Copy(z).SetMode(bigMode(rm)).SetPrec(53)
			wf, _ := want.Float64()
			if math.Float64bits(wf) != got {
				t.Fatalf("%s(%#016x, %#016x) %v = %#016x, oracle %#016x",
					name, a, b, rm, got, math.Float64bits(wf))
			}
		}
	}
}

func TestOracleAdd64AllModes(t *testing.T) {
	oracleBinary(t, "Add64", Add64, func(z, a, b *big.Float) { z.Add(a, b) })
}

func TestOracleSub64AllModes(t *testing.T) {
	oracleBinary(t, "Sub64", Sub64, func(z, a, b *big.Float) { z.Sub(a, b) })
}

func TestOracleMul64AllModes(t *testing.T) {
	oracleBinary(t, "Mul64", Mul64, func(z, a, b *big.Float) { z.Mul(a, b) })
}

func TestOracleDiv64AllModes(t *testing.T) {
	oracleBinary(t, "Div64", Div64, func(z, a, b *big.Float) {
		if b.Sign() != 0 {
			z.Quo(a, b)
		}
	})
}

func TestOracleSqrt64AllModes(t *testing.T) {
	r := rand.New(rand.NewSource(77))
	modes := []RoundingMode{RoundNearestEven, RoundDown, RoundUp, RoundToZero}
	for i := 0; i < 40000; i++ {
		a := normalPattern64(r) &^ f64SignMask // non-negative
		fa := new(big.Float).SetPrec(600).SetFloat64(math.Float64frombits(a))
		z := new(big.Float).SetPrec(600).Sqrt(fa)
		for _, rm := range modes {
			got, _ := Sqrt64(a, Env{RM: rm})
			if !oracleSafe(got) {
				continue
			}
			want := new(big.Float).Copy(z).SetMode(bigMode(rm)).SetPrec(53)
			wf, _ := want.Float64()
			if math.Float64bits(wf) != got {
				t.Fatalf("Sqrt64(%#016x) %v = %#016x, oracle %#016x",
					a, rm, got, math.Float64bits(wf))
			}
		}
	}
}

func TestOracleFMA64AllModes(t *testing.T) {
	r := rand.New(rand.NewSource(78))
	modes := []RoundingMode{RoundNearestEven, RoundDown, RoundUp, RoundToZero}
	for i := 0; i < 40000; i++ {
		a, b, c := normalPattern64(r), normalPattern64(r), normalPattern64(r)
		fa := new(big.Float).SetPrec(900).SetFloat64(math.Float64frombits(a))
		fb := new(big.Float).SetPrec(900).SetFloat64(math.Float64frombits(b))
		fc := new(big.Float).SetPrec(900).SetFloat64(math.Float64frombits(c))
		z := new(big.Float).SetPrec(900).Mul(fa, fb)
		z.Add(z, fc)
		for _, rm := range modes {
			got, _ := FMA64(a, b, c, Env{RM: rm})
			if !oracleSafe(got) {
				continue
			}
			if z.Sign() == 0 {
				continue // signed-zero conventions differ from big.Float
			}
			want := new(big.Float).Copy(z).SetMode(bigMode(rm)).SetPrec(53)
			wf, _ := want.Float64()
			if math.Float64bits(wf) != got {
				t.Fatalf("FMA64(%#016x, %#016x, %#016x) %v = %#016x, oracle %#016x",
					a, b, c, rm, got, math.Float64bits(wf))
			}
		}
	}
}

func TestOracleF32AllModes(t *testing.T) {
	r := rand.New(rand.NewSource(79))
	modes := []RoundingMode{RoundNearestEven, RoundDown, RoundUp, RoundToZero}
	type op struct {
		name  string
		soft  func(a, b uint32, env Env) (uint32, Flags)
		exact func(z, a, b *big.Float)
	}
	ops := []op{
		{"Add32", Add32, func(z, a, b *big.Float) { z.Add(a, b) }},
		{"Sub32", Sub32, func(z, a, b *big.Float) { z.Sub(a, b) }},
		{"Mul32", Mul32, func(z, a, b *big.Float) { z.Mul(a, b) }},
		{"Div32", Div32, func(z, a, b *big.Float) {
			if b.Sign() != 0 {
				z.Quo(a, b)
			}
		}},
	}
	normal32 := func() uint32 {
		exp := uint32(127 + r.Intn(80) - 40)
		return r.Uint32()&(f32SignMask|f32FracMask) | exp<<23
	}
	safe32 := func(x uint32) bool {
		f := math.Float32frombits(x)
		if IsNaN32(x) || IsInf32(x) {
			return false
		}
		if f == 0 {
			return true
		}
		a := math.Abs(float64(f))
		return a > 0x1p-100 && a < 0x1p100
	}
	for i := 0; i < 30000; i++ {
		a, b := normal32(), normal32()
		for _, o := range ops {
			fa := new(big.Float).SetPrec(300).SetFloat64(float64(math.Float32frombits(a)))
			fb := new(big.Float).SetPrec(300).SetFloat64(float64(math.Float32frombits(b)))
			z := new(big.Float).SetPrec(300)
			o.exact(z, fa, fb)
			for _, rm := range modes {
				got, _ := o.soft(a, b, Env{RM: rm})
				if !safe32(got) {
					continue
				}
				want := new(big.Float).Copy(z).SetMode(bigMode(rm)).SetPrec(24)
				wf, _ := want.Float32()
				if math.Float32bits(wf) != got {
					t.Fatalf("%s(%#08x, %#08x) %v = %#08x, oracle %#08x",
						o.name, a, b, rm, got, math.Float32bits(wf))
				}
			}
		}
	}
}

// TestOverflowDirectedRounding: directed modes that round toward zero
// relative to the overflow produce the largest finite value, not
// infinity — the x64 behavior.
func TestOverflowDirectedRounding(t *testing.T) {
	huge := math.Float64bits(math.MaxFloat64)
	two := math.Float64bits(2)
	cases := []struct {
		rm      RoundingMode
		sign    bool
		wantInf bool
	}{
		{RoundNearestEven, false, true},
		{RoundUp, false, true},
		{RoundDown, false, false}, // +overflow rounds down to max finite
		{RoundToZero, false, false},
		{RoundNearestEven, true, true},
		{RoundUp, true, false}, // -overflow rounds up to -max finite
		{RoundDown, true, true},
		{RoundToZero, true, false},
	}
	for _, c := range cases {
		a := huge
		if c.sign {
			a |= f64SignMask
		}
		z, fl := Mul64(a, two, Env{RM: c.rm})
		if fl&FlagOverflow == 0 {
			t.Errorf("%v sign=%v: no OE", c.rm, c.sign)
		}
		if IsInf64(z) != c.wantInf {
			t.Errorf("%v sign=%v: inf=%v, want %v (z=%#x)", c.rm, c.sign, IsInf64(z), c.wantInf, z)
		}
		if !c.wantInf && z&^f64SignMask != f64MaxFinite {
			t.Errorf("%v sign=%v: z=%#x, want max finite", c.rm, c.sign, z)
		}
	}
}

// TestSubnormalDirectedRounding spot-checks rounding in the denormal
// range, which the big.Float oracle cannot cover.
func TestSubnormalDirectedRounding(t *testing.T) {
	// smallest normal / 2 = 2^-1023: exactly representable as denormal.
	minNormal := uint64(0x0010000000000000)
	half := math.Float64bits(0.5)
	for _, rm := range []RoundingMode{RoundNearestEven, RoundDown, RoundUp, RoundToZero} {
		z, fl := Mul64(minNormal, half, Env{RM: rm})
		if z != minNormal>>1 || fl != 0 {
			t.Errorf("%v: 2^-1023 = %#x flags %v, want exact denormal", rm, z, fl)
		}
	}
	// smallest denormal / 2: rounds to 0 (RZ, RD) or denormal min (RU);
	// RN ties to even 0.
	one := uint64(1)
	if z, _ := Mul64(one, half, Env{RM: RoundToZero}); z != 0 {
		t.Errorf("RZ: %#x", z)
	}
	if z, _ := Mul64(one, half, Env{RM: RoundUp}); z != 1 {
		t.Errorf("RU: %#x, want smallest denormal", z)
	}
	if z, _ := Mul64(one, half, Env{RM: RoundDown}); z != 0 {
		t.Errorf("RD: %#x", z)
	}
	if z, _ := Mul64(one, half, Env{RM: RoundNearestEven}); z != 0 {
		t.Errorf("RN: %#x (tie to even)", z)
	}
	// 3 * smallest denormal / 2 = 1.5 denormals: RN rounds to 2 (even).
	three := uint64(3)
	if z, _ := Mul64(three, half, Env{RM: RoundNearestEven}); z != 2 {
		t.Errorf("RN 1.5ulp: %#x, want 2", z)
	}
}
