package softfloat

import (
	"math"
	"math/bits"
)

// frac64 extracts the 52-bit fraction field.
func frac64(x uint64) uint64 { return x & f64FracMask }

// exp64 extracts the 11-bit biased exponent field.
func exp64(x uint64) int32 { return int32((x >> 52) & 0x7FF) }

// sign64 extracts the sign bit.
func sign64(x uint64) bool { return x>>63 != 0 }

// pack64 assembles a binary64 value. sig may include the hidden bit at
// position 52, in which case it carries into the exponent field; this is
// relied upon throughout the rounding paths.
func pack64(sign bool, exp int32, sig uint64) uint64 {
	s := uint64(0)
	if sign {
		s = f64SignMask
	}
	return s + uint64(exp)<<52 + sig
}

// packZero64 returns a signed zero.
func packZero64(sign bool) uint64 {
	if sign {
		return f64SignMask
	}
	return 0
}

// packInf64 returns a signed infinity.
func packInf64(sign bool) uint64 {
	if sign {
		return f64SignMask | f64PosInf
	}
	return f64PosInf
}

// normSubnormal64 normalizes a denormal fraction, returning the exponent
// and significand with the leading bit at position 52.
func normSubnormal64(frac uint64) (exp int32, sig uint64) {
	shift := int32(bits.LeadingZeros64(frac)) - 11
	return 1 - shift, frac << uint(shift)
}

// roundPack64 rounds and packs a binary64 result. sig holds the
// significand with its leading (hidden) bit at position 62 and ten
// guard/sticky bits in positions 9..0; the represented value is
// (sig / 2^62) * 2^(exp+1-bias). Overflow, underflow (tininess after
// rounding, masked semantics), inexactness and FTZ flushing are detected
// here.
func roundPack64(sign bool, exp int32, sig uint64, env Env, fl *Flags) uint64 {
	var inc uint64
	switch env.RM {
	case RoundNearestEven:
		inc = 0x200
	case RoundToZero:
		inc = 0
	case RoundDown:
		if sign {
			inc = 0x3FF
		}
	case RoundUp:
		if !sign {
			inc = 0x3FF
		}
	}
	roundBits := sig & 0x3FF
	if exp >= 0x7FD {
		if exp > 0x7FD || (exp == 0x7FD && int64(sig+inc) < 0) {
			*fl |= FlagOverflow | FlagInexact
			if inc == 0 {
				return pack64(sign, 0x7FE, f64FracMask)
			}
			return packInf64(sign)
		}
	}
	if exp < 0 {
		if env.FTZ {
			// Flush-to-zero: tiny results become signed zero with
			// underflow and inexact raised, matching masked-FTZ SSE.
			*fl |= FlagUnderflow | FlagInexact
			return packZero64(sign)
		}
		isTiny := exp < -1 || sig+inc < f64SignMask
		sig = shiftRightJam64(sig, uint(-exp))
		exp = 0
		roundBits = sig & 0x3FF
		if isTiny && roundBits != 0 {
			*fl |= FlagUnderflow
		}
	}
	if roundBits != 0 {
		*fl |= FlagInexact
	}
	sig = (sig + inc) >> 10
	if roundBits == 0x200 && env.RM == RoundNearestEven {
		sig &^= 1
	}
	if sig == 0 {
		exp = 0
	}
	return pack64(sign, exp, sig)
}

// normRoundPack64 left-normalizes sig (leading bit anywhere) to position
// 62 and then rounds and packs.
func normRoundPack64(sign bool, exp int32, sig uint64, env Env, fl *Flags) uint64 {
	shift := int32(bits.LeadingZeros64(sig)) - 1
	return roundPack64(sign, exp-shift, sig<<uint(shift), env, fl)
}

// daz64 applies denormals-are-zero to an operand, or raises the Denormal
// flag when DAZ is off and the operand is denormal. It returns the
// possibly substituted operand.
func daz64(x uint64, env Env, fl *Flags) uint64 {
	if IsDenormal64(x) {
		if env.DAZ {
			return x & f64SignMask
		}
		*fl |= FlagDenormal
	}
	return x
}

// addSigs64 adds the magnitudes of a and b (same effective sign zSign).
func addSigs64(a, b uint64, zSign bool, env Env, fl *Flags) uint64 {
	aSig, bSig := frac64(a), frac64(b)
	aExp, bExp := exp64(a), exp64(b)
	expDiff := aExp - bExp
	aSig <<= 9
	bSig <<= 9
	var zExp int32
	var zSig uint64
	switch {
	case expDiff > 0:
		if aExp == 0x7FF {
			if aSig != 0 {
				return propagateNaN64(a, b, fl)
			}
			return a
		}
		if bExp == 0 {
			expDiff--
		} else {
			bSig |= uint64(1) << 61
		}
		bSig = shiftRightJam64(bSig, uint(expDiff))
		zExp = aExp
	case expDiff < 0:
		if bExp == 0x7FF {
			if bSig != 0 {
				return propagateNaN64(a, b, fl)
			}
			return packInf64(zSign)
		}
		if aExp == 0 {
			expDiff++
		} else {
			aSig |= uint64(1) << 61
		}
		aSig = shiftRightJam64(aSig, uint(-expDiff))
		zExp = bExp
	default:
		if aExp == 0x7FF {
			if aSig|bSig != 0 {
				return propagateNaN64(a, b, fl)
			}
			return a
		}
		if aExp == 0 {
			// Both denormal (or zero): the sum cannot round and may
			// carry naturally into the smallest normal exponent.
			return pack64(zSign, 0, (aSig+bSig)>>9)
		}
		zSig = uint64(1)<<62 + aSig + bSig
		return roundPack64(zSign, aExp, zSig, env, fl)
	}
	aSig |= uint64(1) << 61
	zSig = (aSig + bSig) << 1
	zExp--
	if int64(zSig) < 0 {
		zSig = aSig + bSig
		zExp++
	}
	return roundPack64(zSign, zExp, zSig, env, fl)
}

// subSigs64 subtracts the magnitude of b from a (result sign zSign when
// |a| > |b|, flipped when |b| > |a|).
func subSigs64(a, b uint64, zSign bool, env Env, fl *Flags) uint64 {
	aSig, bSig := frac64(a), frac64(b)
	aExp, bExp := exp64(a), exp64(b)
	expDiff := aExp - bExp
	aSig <<= 10
	bSig <<= 10
	var zExp int32
	var zSig uint64
	switch {
	case expDiff > 0:
		if aExp == 0x7FF {
			if aSig != 0 {
				return propagateNaN64(a, b, fl)
			}
			return a
		}
		if bExp == 0 {
			expDiff--
		} else {
			bSig |= uint64(1) << 62
		}
		bSig = shiftRightJam64(bSig, uint(expDiff))
		aSig |= uint64(1) << 62
		zSig = aSig - bSig
		zExp = aExp
	case expDiff < 0:
		if bExp == 0x7FF {
			if bSig != 0 {
				return propagateNaN64(a, b, fl)
			}
			return packInf64(!zSign)
		}
		if aExp == 0 {
			expDiff++
		} else {
			aSig |= uint64(1) << 62
		}
		aSig = shiftRightJam64(aSig, uint(-expDiff))
		bSig |= uint64(1) << 62
		zSig = bSig - aSig
		zExp = bExp
		zSign = !zSign
	default:
		if aExp == 0x7FF {
			if aSig|bSig != 0 {
				return propagateNaN64(a, b, fl)
			}
			// inf - inf
			*fl |= FlagInvalid
			return f64DefaultNaN
		}
		if aExp == 0 {
			aExp = 1
			bExp = 1
		}
		switch {
		case bSig < aSig:
			zSig = aSig - bSig
			zExp = aExp
		case aSig < bSig:
			zSig = bSig - aSig
			zExp = aExp
			zSign = !zSign
		default:
			// Exact zero result: sign is negative only under RD.
			return packZero64(env.RM == RoundDown)
		}
	}
	return normRoundPack64(zSign, zExp-1, zSig, env, fl)
}

// Add64 computes a + b on binary64 bit patterns with SSE addsd semantics,
// returning the result pattern and raised flags.
func Add64(a, b uint64, env Env) (uint64, Flags) {
	var fl Flags
	a = daz64(a, env, &fl)
	b = daz64(b, env, &fl)
	var z uint64
	if sign64(a) == sign64(b) {
		z = addSigs64(a, b, sign64(a), env, &fl)
	} else {
		z = subSigs64(a, b, sign64(a), env, &fl)
	}
	return z, fl
}

// Sub64 computes a - b with SSE subsd semantics.
func Sub64(a, b uint64, env Env) (uint64, Flags) {
	var fl Flags
	a = daz64(a, env, &fl)
	b = daz64(b, env, &fl)
	var z uint64
	if sign64(a) == sign64(b) {
		z = subSigs64(a, b, sign64(a), env, &fl)
	} else {
		z = addSigs64(a, b, sign64(a), env, &fl)
	}
	return z, fl
}

// Mul64 computes a * b with SSE mulsd semantics.
func Mul64(a, b uint64, env Env) (uint64, Flags) {
	var fl Flags
	a = daz64(a, env, &fl)
	b = daz64(b, env, &fl)
	aSig, bSig := frac64(a), frac64(b)
	aExp, bExp := exp64(a), exp64(b)
	zSign := sign64(a) != sign64(b)
	if aExp == 0x7FF {
		if aSig != 0 || (bExp == 0x7FF && bSig != 0) {
			return propagateNaN64(a, b, &fl), fl
		}
		if bExp|int32(bSig) == 0 {
			fl |= FlagInvalid
			return f64DefaultNaN, fl
		}
		return packInf64(zSign), fl
	}
	if bExp == 0x7FF {
		if bSig != 0 {
			return propagateNaN64(a, b, &fl), fl
		}
		if aExp|int32(aSig) == 0 {
			fl |= FlagInvalid
			return f64DefaultNaN, fl
		}
		return packInf64(zSign), fl
	}
	if aExp == 0 {
		if aSig == 0 {
			return packZero64(zSign), fl
		}
		aExp, aSig = normSubnormal64(aSig)
	}
	if bExp == 0 {
		if bSig == 0 {
			return packZero64(zSign), fl
		}
		bExp, bSig = normSubnormal64(bSig)
	}
	zExp := aExp + bExp - 0x3FF
	aSig = (aSig | uint64(1)<<52) << 10
	bSig = (bSig | uint64(1)<<52) << 11
	zSig, zSigLo := bits.Mul64(aSig, bSig)
	if zSigLo != 0 {
		zSig |= 1
	}
	if int64(zSig<<1) >= 0 {
		zSig <<= 1
		zExp--
	}
	return roundPack64(zSign, zExp, zSig, env, &fl), fl
}

// Div64 computes a / b with SSE divsd semantics.
func Div64(a, b uint64, env Env) (uint64, Flags) {
	var fl Flags
	a = daz64(a, env, &fl)
	b = daz64(b, env, &fl)
	aSig, bSig := frac64(a), frac64(b)
	aExp, bExp := exp64(a), exp64(b)
	zSign := sign64(a) != sign64(b)
	if aExp == 0x7FF {
		if aSig != 0 {
			return propagateNaN64(a, b, &fl), fl
		}
		if bExp == 0x7FF {
			if bSig != 0 {
				return propagateNaN64(a, b, &fl), fl
			}
			fl |= FlagInvalid // inf / inf
			return f64DefaultNaN, fl
		}
		return packInf64(zSign), fl
	}
	if bExp == 0x7FF {
		if bSig != 0 {
			return propagateNaN64(a, b, &fl), fl
		}
		return packZero64(zSign), fl
	}
	if bExp == 0 {
		if bSig == 0 {
			if aExp|int32(aSig) == 0 {
				fl |= FlagInvalid // 0 / 0
				return f64DefaultNaN, fl
			}
			fl |= FlagDivideByZero
			return packInf64(zSign), fl
		}
		bExp, bSig = normSubnormal64(bSig)
	}
	if aExp == 0 {
		if aSig == 0 {
			return packZero64(zSign), fl
		}
		aExp, aSig = normSubnormal64(aSig)
	}
	zExp := aExp - bExp + 0x3FD
	aSig = (aSig | uint64(1)<<52) << 10
	bSig = (bSig | uint64(1)<<52) << 11
	if bSig <= aSig+aSig {
		aSig >>= 1
		zExp++
	}
	// aSig < bSig here, so the 128-by-64 division is well defined and
	// yields the exact floor quotient of (aSig * 2^64) / bSig, which lands
	// in [2^62, 2^63) — the hidden-bit position roundPack64 expects.
	zSig, rem := bits.Div64(aSig, 0, bSig)
	if rem != 0 {
		zSig |= 1
	}
	return roundPack64(zSign, zExp, zSig, env, &fl), fl
}

// Sqrt64 computes sqrt(a) with SSE sqrtsd semantics.
func Sqrt64(a uint64, env Env) (uint64, Flags) {
	var fl Flags
	a = daz64(a, env, &fl)
	aSig := frac64(a)
	aExp := exp64(a)
	aSign := sign64(a)
	if aExp == 0x7FF {
		if aSig != 0 {
			return propagateNaN64(a, a, &fl), fl
		}
		if !aSign {
			return a, fl // +inf
		}
		fl |= FlagInvalid
		return f64DefaultNaN, fl
	}
	if aSign {
		if aExp|int32(aSig) == 0 {
			return a, fl // -0
		}
		fl |= FlagInvalid
		return f64DefaultNaN, fl
	}
	if aExp == 0 {
		if aSig == 0 {
			return a, fl // +0
		}
		aExp, aSig = normSubnormal64(aSig)
	}
	// Scale so the radicand R = m << 72 spans [2^124, 2^126) with an even
	// shift of the exponent, giving floor(sqrt(R)) in [2^62, 2^63).
	e := aExp - 0x3FF
	m := aSig | uint64(1)<<52
	if e&1 != 0 {
		m <<= 1
		e--
	}
	rHi, rLo := shl128(m, 72)
	q, exact := isqrt128(rHi, rLo)
	if !exact {
		q |= 1
	}
	zExp := e/2 + 0x3FE
	return roundPack64(false, zExp, q, env, &fl), fl
}

// shl128 shifts a 64-bit value left by count (0..127) into a 128-bit value.
func shl128(v uint64, count uint) (hi, lo uint64) {
	if count >= 64 {
		return v << (count - 64), 0
	}
	if count == 0 {
		return 0, v
	}
	return v >> (64 - count), v << count
}

// isqrt128 returns floor(sqrt(hi:lo)) and whether the root is exact. The
// radicand must be below 2^126 so the root fits in 63 bits.
func isqrt128(hi, lo uint64) (root uint64, exact bool) {
	// Seed with a hardware estimate, refine with one exact integer Newton
	// step, then settle the last ULP with exact integer arithmetic. The
	// float64 seed carries ~2^-52 relative error — up to ~2^11 absolute
	// for a 63-bit root — so stepping by ±1 from the raw seed can walk
	// thousands of iterations; the Newton step collapses that to at most
	// a couple.
	approx := math.Sqrt(float64(hi)*0x1p64 + float64(lo))
	q := uint64(approx)
	// Guard against NaN/overflow artifacts of the seed, and establish
	// bits.Div64's hi < divisor precondition (for radicands in the sqrt
	// paths' normalized ranges the seed already satisfies it: the true
	// root exceeds hi whenever hi < 2^62).
	if q <= hi {
		q = hi + 1
	}
	// Newton: q <- floor((q + floor(R/q)) / 2), with an overflow-free
	// average since q and the quotient may straddle 2^63.
	quo, _ := bits.Div64(hi, lo, q)
	q = q/2 + quo/2 + q&quo&1
	for {
		sqHi, sqLo := bits.Mul64(q, q)
		if lt128(hi, lo, sqHi, sqLo) {
			q--
			continue
		}
		// q^2 <= R; check (q+1)^2 > R.
		q1 := q + 1
		sq1Hi, sq1Lo := bits.Mul64(q1, q1)
		if !lt128(hi, lo, sq1Hi, sq1Lo) {
			q = q1
			continue
		}
		return q, sqHi == hi && sqLo == lo
	}
}
