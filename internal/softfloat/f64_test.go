package softfloat

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// hwEquiv64 reports whether a softfloat result pattern matches the
// hardware result, treating all NaN patterns produced for invalid
// operations as equivalent when both are NaN.
func hwEquiv64(soft uint64, hard float64) bool {
	h := math.Float64bits(hard)
	if IsNaN64(soft) && IsNaN64(h) {
		return true
	}
	return soft == h
}

// interesting64 is a pool of hand-picked hard cases mixed into random
// testing: zeros, denormals, infinities, NaNs, and rounding boundaries.
var interesting64 = []uint64{
	0x0000000000000000, // +0
	0x8000000000000000, // -0
	0x0000000000000001, // smallest denormal
	0x8000000000000001,
	0x000FFFFFFFFFFFFF, // largest denormal
	0x0010000000000000, // smallest normal
	0x7FEFFFFFFFFFFFFF, // largest normal
	0xFFEFFFFFFFFFFFFF,
	0x7FF0000000000000, // +inf
	0xFFF0000000000000, // -inf
	0x7FF8000000000000, // QNaN
	0x7FF0000000000001, // SNaN
	0x3FF0000000000000, // 1.0
	0xBFF0000000000000, // -1.0
	0x3FF0000000000001, // nextafter(1)
	0x3FEFFFFFFFFFFFFF, // prevbefore(1)
	0x4000000000000000, // 2.0
	0x3FE0000000000000, // 0.5
	0x4340000000000000, // 2^53
	0x4330000000000001,
	0xC340000000000000,
	0x43E0000000000000, // 2^63
	0x41DFFFFFFFC00000, // INT32_MAX as f64
	0xC1E0000000000000, // INT32_MIN as f64
}

// randPattern64 generates bit patterns that exercise all exponent ranges
// far more often than uniform uint64s would.
func randPattern64(r *rand.Rand) uint64 {
	switch r.Intn(5) {
	case 0:
		return interesting64[r.Intn(len(interesting64))]
	case 1:
		// Uniform random bits.
		return r.Uint64()
	case 2:
		// Small exponent spread around 1.0 so operations interact.
		exp := uint64(1023 + r.Intn(40) - 20)
		return r.Uint64()&(f64SignMask|f64FracMask) | exp<<52
	case 3:
		// Denormal.
		return r.Uint64() & (f64SignMask | f64FracMask)
	default:
		// Wide exponent range, finite.
		exp := uint64(r.Intn(0x7FF))
		return r.Uint64()&(f64SignMask|f64FracMask) | exp<<52
	}
}

func testBinaryOp64(t *testing.T, name string, soft func(a, b uint64, env Env) (uint64, Flags), hard func(a, b float64) float64) {
	t.Helper()
	r := rand.New(rand.NewSource(42))
	env := Env{RM: RoundNearestEven}
	for i := 0; i < 200000; i++ {
		a, b := randPattern64(r), randPattern64(r)
		got, _ := soft(a, b, env)
		want := hard(math.Float64frombits(a), math.Float64frombits(b))
		if !hwEquiv64(got, want) {
			t.Fatalf("%s(%#016x, %#016x) = %#016x, hardware %#016x",
				name, a, b, got, math.Float64bits(want))
		}
	}
}

func TestAdd64MatchesHardware(t *testing.T) {
	testBinaryOp64(t, "Add64", Add64, func(a, b float64) float64 { return a + b })
}

func TestSub64MatchesHardware(t *testing.T) {
	testBinaryOp64(t, "Sub64", Sub64, func(a, b float64) float64 { return a - b })
}

func TestMul64MatchesHardware(t *testing.T) {
	testBinaryOp64(t, "Mul64", Mul64, func(a, b float64) float64 { return a * b })
}

func TestDiv64MatchesHardware(t *testing.T) {
	testBinaryOp64(t, "Div64", Div64, func(a, b float64) float64 { return a / b })
}

func TestSqrt64MatchesHardware(t *testing.T) {
	r := rand.New(rand.NewSource(43))
	env := Env{RM: RoundNearestEven}
	for i := 0; i < 200000; i++ {
		a := randPattern64(r)
		got, _ := Sqrt64(a, env)
		want := math.Sqrt(math.Float64frombits(a))
		if !hwEquiv64(got, want) {
			t.Fatalf("Sqrt64(%#016x) = %#016x, hardware %#016x",
				a, got, math.Float64bits(want))
		}
	}
}

func TestFMA64MatchesHardware(t *testing.T) {
	r := rand.New(rand.NewSource(44))
	env := Env{RM: RoundNearestEven}
	for i := 0; i < 200000; i++ {
		a, b, c := randPattern64(r), randPattern64(r), randPattern64(r)
		got, _ := FMA64(a, b, c, env)
		want := math.FMA(math.Float64frombits(a), math.Float64frombits(b), math.Float64frombits(c))
		if !hwEquiv64(got, want) {
			t.Fatalf("FMA64(%#016x, %#016x, %#016x) = %#016x, hardware %#016x",
				a, b, c, got, math.Float64bits(want))
		}
	}
}

func TestAdd64Quick(t *testing.T) {
	env := Env{RM: RoundNearestEven}
	f := func(a, b uint64) bool {
		got, _ := Add64(a, b, env)
		return hwEquiv64(got, math.Float64frombits(a)+math.Float64frombits(b))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20000}); err != nil {
		t.Fatal(err)
	}
}

func TestMul64Quick(t *testing.T) {
	env := Env{RM: RoundNearestEven}
	f := func(a, b uint64) bool {
		got, _ := Mul64(a, b, env)
		return hwEquiv64(got, math.Float64frombits(a)*math.Float64frombits(b))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20000}); err != nil {
		t.Fatal(err)
	}
}

func TestDirectedRounding64(t *testing.T) {
	// 1/3 in the four rounding modes: RD/RZ truncate, RU bumps the last
	// bit relative to the truncated value.
	one := math.Float64bits(1)
	three := math.Float64bits(3)
	rn, _ := Div64(one, three, Env{RM: RoundNearestEven})
	rd, _ := Div64(one, three, Env{RM: RoundDown})
	ru, _ := Div64(one, three, Env{RM: RoundUp})
	rz, _ := Div64(one, three, Env{RM: RoundToZero})
	if rd != rz {
		t.Errorf("1/3: RD %#x != RZ %#x for a positive value", rd, rz)
	}
	if ru != rd+1 {
		t.Errorf("1/3: RU %#x should be one ulp above RD %#x", ru, rd)
	}
	if rn != rd && rn != ru {
		t.Errorf("1/3: RN %#x outside [RD, RU]", rn)
	}
	// Negative value: RU truncates, RD goes away from zero.
	negOne := math.Float64bits(-1)
	nrd, _ := Div64(negOne, three, Env{RM: RoundDown})
	nru, _ := Div64(negOne, three, Env{RM: RoundUp})
	nrz, _ := Div64(negOne, three, Env{RM: RoundToZero})
	if nru != nrz {
		t.Errorf("-1/3: RU %#x != RZ %#x for a negative value", nru, nrz)
	}
	if nrd != nru+1 {
		t.Errorf("-1/3: RD %#x should be one ulp beyond RU %#x", nrd, nru)
	}
}

func TestDirectedRoundingBracket64(t *testing.T) {
	// Property: for any finite inputs, RD <= RN <= RU as real values, and
	// RZ has the smallest magnitude.
	r := rand.New(rand.NewSource(45))
	for i := 0; i < 50000; i++ {
		a, b := randPattern64(r), randPattern64(r)
		rn, _ := Add64(a, b, Env{RM: RoundNearestEven})
		rd, _ := Add64(a, b, Env{RM: RoundDown})
		ru, _ := Add64(a, b, Env{RM: RoundUp})
		fn, fd, fu := math.Float64frombits(rn), math.Float64frombits(rd), math.Float64frombits(ru)
		if math.IsNaN(fn) || math.IsNaN(fd) || math.IsNaN(fu) {
			continue
		}
		if !(fd <= fn && fn <= fu) {
			t.Fatalf("Add64(%#x, %#x): RD %v, RN %v, RU %v not ordered", a, b, fd, fn, fu)
		}
	}
}

func TestFlagsBasics64(t *testing.T) {
	env := Env{RM: RoundNearestEven}
	one := math.Float64bits(1)
	three := math.Float64bits(3)
	zero := uint64(0)
	huge := math.Float64bits(math.MaxFloat64)
	tiny := uint64(1) // smallest denormal

	if _, fl := Div64(one, three, env); fl != FlagInexact {
		t.Errorf("1/3 flags = %v, want PE", fl)
	}
	if _, fl := Add64(one, one, env); fl != 0 {
		t.Errorf("1+1 flags = %v, want none", fl)
	}
	if z, fl := Div64(one, zero, env); fl != FlagDivideByZero || !IsInf64(z) {
		t.Errorf("1/0 = %#x flags %v, want inf ZE", z, fl)
	}
	if z, fl := Div64(zero, zero, env); fl != FlagInvalid || !IsNaN64(z) {
		t.Errorf("0/0 = %#x flags %v, want NaN IE", z, fl)
	}
	if _, fl := Mul64(huge, huge, env); fl != FlagOverflow|FlagInexact {
		t.Errorf("overflow flags = %v, want OE|PE", fl)
	}
	if _, fl := Mul64(tiny, math.Float64bits(0.5), env); fl&FlagUnderflow == 0 || fl&FlagDenormal == 0 {
		t.Errorf("denormal*0.5 flags = %v, want UE and DE", fl)
	}
	if z, fl := Sqrt64(math.Float64bits(-2), env); fl != FlagInvalid || !IsNaN64(z) {
		t.Errorf("sqrt(-2) = %#x flags %v, want NaN IE", z, fl)
	}
	inf := f64PosInf
	if z, fl := Sub64(inf, inf, env); fl != FlagInvalid || !IsNaN64(z) {
		t.Errorf("inf-inf = %#x flags %v, want NaN IE", z, fl)
	}
	if z, fl := Mul64(zero, inf, env); fl != FlagInvalid || !IsNaN64(z) {
		t.Errorf("0*inf = %#x flags %v, want NaN IE", z, fl)
	}
}

func TestSNaNSignals64(t *testing.T) {
	env := Env{RM: RoundNearestEven}
	snan := uint64(0x7FF0000000000001)
	qnan := uint64(0x7FF8000000000001)
	one := math.Float64bits(1)
	if z, fl := Add64(snan, one, env); fl&FlagInvalid == 0 || !IsNaN64(z) || IsSNaN64(z) {
		t.Errorf("SNaN+1 = %#x flags %v, want quiet NaN with IE", z, fl)
	}
	if z, fl := Add64(qnan, one, env); fl&FlagInvalid != 0 || z != qnan {
		t.Errorf("QNaN+1 = %#x flags %v, want same QNaN, no IE", z, fl)
	}
	// NaN payload propagation prefers the first operand.
	qnan2 := uint64(0x7FF8000000000002)
	if z, _ := Add64(qnan, qnan2, env); z != qnan {
		t.Errorf("QNaN1+QNaN2 = %#x, want first operand %#x", z, qnan)
	}
}

func TestFTZDAZ64(t *testing.T) {
	tiny := uint64(1)
	half := math.Float64bits(0.5)
	// FTZ: tiny result flushes to zero with UE|PE.
	z, fl := Mul64(math.Float64bits(5e-324*4), half, Env{RM: RoundNearestEven, FTZ: true})
	if !IsZero64(z) || fl&(FlagUnderflow|FlagInexact) != FlagUnderflow|FlagInexact {
		t.Errorf("FTZ flush = %#x flags %v, want +0 with UE|PE", z, fl)
	}
	// DAZ: denormal operand treated as zero, no DE.
	z, fl = Add64(tiny, 0, Env{RM: RoundNearestEven, DAZ: true})
	if !IsZero64(z) || fl != 0 {
		t.Errorf("DAZ add = %#x flags %v, want +0 no flags", z, fl)
	}
	// Without DAZ the same operand raises DE.
	_, fl = Add64(tiny, 0, Env{RM: RoundNearestEven})
	if fl&FlagDenormal == 0 {
		t.Errorf("denormal operand flags = %v, want DE", fl)
	}
}

func TestExactZeroSignRD64(t *testing.T) {
	one := math.Float64bits(1)
	if z, _ := Sub64(one, one, Env{RM: RoundDown}); z != f64SignMask {
		t.Errorf("1-1 under RD = %#x, want -0", z)
	}
	if z, _ := Sub64(one, one, Env{RM: RoundNearestEven}); z != 0 {
		t.Errorf("1-1 under RN = %#x, want +0", z)
	}
}

func TestUnderflowExactDenormalNoUE(t *testing.T) {
	// A result that is denormal but exact must not raise UE (masked
	// semantics require tiny AND inexact).
	d := uint64(4) // denormal 4 * 2^-1074
	half := math.Float64bits(0.5)
	z, fl := Mul64(d, half, Env{RM: RoundNearestEven})
	if z != 2 {
		t.Fatalf("denormal*0.5 = %#x, want %#x", z, uint64(2))
	}
	if fl&FlagUnderflow != 0 || fl&FlagInexact != 0 {
		t.Errorf("exact denormal result flags = %v, want no UE/PE", fl)
	}
}
