package softfloat

// RoundToInt64 implements the roundsd round-to-integral operation: the
// result is the floating point value of a rounded to an integer with the
// given mode. Inexact is raised when the value changed unless
// suppressInexact is set (the imm8 precision-suppress bit).
func RoundToInt64(a uint64, rm RoundingMode, suppressInexact bool, env Env) (uint64, Flags) {
	var fl Flags
	a = daz64(a, env, &fl)
	sign := sign64(a)
	aExp := exp64(a)
	if aExp == 0x7FF {
		if frac64(a) != 0 {
			if IsSNaN64(a) {
				fl |= FlagInvalid
			}
			return quiet64(a), fl
		}
		return a, fl
	}
	e := aExp - 1023
	if e >= 52 {
		return a, fl // already integral
	}
	var z uint64
	if e < 0 {
		// Magnitude below 1: result is a signed zero or ±1.
		if IsZero64(a) {
			return a, fl
		}
		half := e == -1
		switch rm {
		case RoundNearestEven:
			if half && frac64(a) != 0 {
				z = pack64(sign, 1023, 0) // above 0.5 rounds to 1
			} else {
				z = packZero64(sign) // at or below 0.5 ties to even 0
			}
		case RoundDown:
			if sign {
				z = pack64(true, 1023, 0)
			} else {
				z = packZero64(false)
			}
		case RoundUp:
			if sign {
				z = packZero64(true)
			} else {
				z = pack64(false, 1023, 0)
			}
		case RoundToZero:
			z = packZero64(sign)
		}
	} else {
		mask := (uint64(1) << uint(52-e)) - 1
		if a&mask == 0 {
			return a, fl
		}
		z = a &^ mask
		switch rm {
		case RoundNearestEven:
			rem := a & mask
			halfBit := uint64(1) << uint(52-e-1)
			if rem > halfBit || (rem == halfBit && z&(mask+1) != 0) {
				z += mask + 1
			}
		case RoundDown:
			if sign {
				z += mask + 1
			}
		case RoundUp:
			if !sign {
				z += mask + 1
			}
		case RoundToZero:
		}
	}
	if z != a && !suppressInexact {
		fl |= FlagInexact
	}
	return z, fl
}

// RoundToInt32 implements roundss.
func RoundToInt32(a uint32, rm RoundingMode, suppressInexact bool, env Env) (uint32, Flags) {
	var fl Flags
	a = daz32(a, env, &fl)
	sign := sign32(a)
	aExp := exp32(a)
	if aExp == 0xFF {
		if frac32(a) != 0 {
			if IsSNaN32(a) {
				fl |= FlagInvalid
			}
			return quiet32(a), fl
		}
		return a, fl
	}
	e := aExp - 127
	if e >= 23 {
		return a, fl
	}
	var z uint32
	if e < 0 {
		if IsZero32(a) {
			return a, fl
		}
		half := e == -1
		switch rm {
		case RoundNearestEven:
			if half && frac32(a) != 0 {
				z = pack32(sign, 127, 0)
			} else {
				z = packZero32(sign)
			}
		case RoundDown:
			if sign {
				z = pack32(true, 127, 0)
			} else {
				z = packZero32(false)
			}
		case RoundUp:
			if sign {
				z = packZero32(true)
			} else {
				z = pack32(false, 127, 0)
			}
		case RoundToZero:
			z = packZero32(sign)
		}
	} else {
		mask := (uint32(1) << uint(23-e)) - 1
		if a&mask == 0 {
			return a, fl
		}
		z = a &^ mask
		switch rm {
		case RoundNearestEven:
			rem := a & mask
			halfBit := uint32(1) << uint(23-e-1)
			if rem > halfBit || (rem == halfBit && z&(mask+1) != 0) {
				z += mask + 1
			}
		case RoundDown:
			if sign {
				z += mask + 1
			}
		case RoundUp:
			if !sign {
				z += mask + 1
			}
		case RoundToZero:
		}
	}
	if z != a && !suppressInexact {
		fl |= FlagInexact
	}
	return z, fl
}
