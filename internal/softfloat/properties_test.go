package softfloat

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// IEEE 754 algebraic invariants, property-tested across the full pattern
// space (including NaNs, infinities, denormals).

func TestPropertyAddCommutes(t *testing.T) {
	env := Env{RM: RoundNearestEven}
	f := func(a, b uint64) bool {
		x, fx := Add64(a, b, env)
		y, fy := Add64(b, a, env)
		if fx != fy {
			return false
		}
		if IsNaN64(x) && IsNaN64(y) {
			return true // payloads may differ by propagation preference
		}
		return x == y
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30000}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyMulCommutes(t *testing.T) {
	env := Env{RM: RoundNearestEven}
	f := func(a, b uint64) bool {
		x, fx := Mul64(a, b, env)
		y, fy := Mul64(b, a, env)
		if fx != fy {
			return false
		}
		if IsNaN64(x) && IsNaN64(y) {
			return true
		}
		return x == y
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30000}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyAddZeroIdentity(t *testing.T) {
	// x + (+0) == x for every x except -0 (where the sum is +0 under RN)
	// and NaN quieting.
	env := Env{RM: RoundNearestEven}
	f := func(a uint64) bool {
		z, fl := Add64(a, 0, env)
		switch {
		case IsSNaN64(a):
			return IsNaN64(z) && fl == FlagInvalid
		case IsNaN64(a):
			return z == a && fl == 0
		case a == f64SignMask: // -0 + +0 = +0
			return z == 0 && fl == 0
		case IsDenormal64(a):
			return z == a && fl == FlagDenormal
		default:
			return z == a && fl == 0
		}
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30000}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyMulOneIdentity(t *testing.T) {
	env := Env{RM: RoundNearestEven}
	one := math.Float64bits(1)
	f := func(a uint64) bool {
		z, fl := Mul64(a, one, env)
		switch {
		case IsSNaN64(a):
			return IsNaN64(z) && fl == FlagInvalid
		case IsNaN64(a):
			return z == a && fl == 0
		case IsDenormal64(a):
			return z == a && fl == FlagDenormal
		default:
			return z == a && fl == 0
		}
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30000}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertySubSelfIsZero(t *testing.T) {
	// x - x == +0 (RN) for finite x; NaN for infinities and NaNs.
	env := Env{RM: RoundNearestEven}
	f := func(a uint64) bool {
		z, _ := Sub64(a, a, env)
		switch {
		case IsNaN64(a) || IsInf64(a):
			return IsNaN64(z)
		default:
			return z == 0
		}
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30000}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyDivSelfIsOne(t *testing.T) {
	env := Env{RM: RoundNearestEven}
	one := math.Float64bits(1)
	f := func(a uint64) bool {
		z, _ := Div64(a, a, env)
		switch {
		case IsNaN64(a) || IsInf64(a) || IsZero64(a):
			return IsNaN64(z)
		default:
			return z == one
		}
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30000}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertySqrtRange(t *testing.T) {
	// sqrt of a non-negative finite is non-negative finite; squaring it
	// lands within one rounding step of the operand.
	r := rand.New(rand.NewSource(99))
	env := Env{RM: RoundNearestEven}
	for i := 0; i < 30000; i++ {
		a := randPattern64(r) &^ f64SignMask
		if IsNaN64(a) || IsInf64(a) {
			continue
		}
		s, _ := Sqrt64(a, env)
		if sign64(s) && !IsZero64(s) {
			t.Fatalf("sqrt(%#x) = %#x negative", a, s)
		}
		fs := math.Float64frombits(s)
		fa := math.Float64frombits(a)
		if fa > 0 && !IsDenormal64(a) {
			rel := math.Abs(fs*fs-fa) / fa
			if rel > 1e-15 {
				t.Fatalf("sqrt(%v)^2 = %v, rel err %v", fa, fs*fs, rel)
			}
		}
	}
}

func TestPropertyFMADegeneratesToMul(t *testing.T) {
	// fma(a, b, 0) == a*b when the product is nonzero (signed-zero
	// conventions differ when the product is exactly zero).
	env := Env{RM: RoundNearestEven}
	f := func(a, b uint64) bool {
		p, _ := Mul64(a, b, env)
		z, _ := FMA64(a, b, 0, env)
		if IsNaN64(p) && IsNaN64(z) {
			return true
		}
		if IsZero64(p) {
			return IsZero64(z)
		}
		return p == z
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30000}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyDirectedModesBracketRN(t *testing.T) {
	// For any finite result: RD(x op y) <= RN(x op y) <= RU(x op y), and
	// RZ equals whichever of RD/RU is toward zero.
	r := rand.New(rand.NewSource(100))
	ops := []func(a, b uint64, env Env) (uint64, Flags){Add64, Sub64, Mul64, Div64}
	for i := 0; i < 20000; i++ {
		a, b := randPattern64(r), randPattern64(r)
		op := ops[i%len(ops)]
		rn, _ := op(a, b, Env{RM: RoundNearestEven})
		rd, _ := op(a, b, Env{RM: RoundDown})
		ru, _ := op(a, b, Env{RM: RoundUp})
		rz, _ := op(a, b, Env{RM: RoundToZero})
		fn, fd, fu, fz := math.Float64frombits(rn), math.Float64frombits(rd), math.Float64frombits(ru), math.Float64frombits(rz)
		if math.IsNaN(fn) {
			continue
		}
		if !(fd <= fn && fn <= fu) {
			t.Fatalf("op%d(%#x,%#x): RD %v RN %v RU %v", i%4, a, b, fd, fn, fu)
		}
		// Toward-zero is RD for positive results, RU for negative ones;
		// decide by the bracket endpoints so -0 results resolve right
		// (Go's -0 >= 0 would mislead a sign test on the value itself).
		var toward float64
		switch {
		case fu <= 0:
			toward = fu
		case fd >= 0:
			toward = fd
		default:
			toward = 0
		}
		// Numeric comparison treats -0 == +0, which is the right
		// equivalence here.
		if fz != toward {
			t.Fatalf("op%d(%#x,%#x): RZ %v, toward-zero %v", i%4, a, b, fz, toward)
		}
	}
}

func TestPropertyCompareConsistentWithSub(t *testing.T) {
	// ucomi ordering agrees with the sign of the exact subtraction for
	// finite values.
	r := rand.New(rand.NewSource(101))
	env := Env{RM: RoundNearestEven}
	for i := 0; i < 20000; i++ {
		a, b := randPattern64(r), randPattern64(r)
		if IsNaN64(a) || IsNaN64(b) {
			continue
		}
		cmp, _ := Ucomi64(a, b, env)
		fa, fb := math.Float64frombits(a), math.Float64frombits(b)
		switch {
		case fa < fb:
			if cmp != CmpLess {
				t.Fatalf("ucomi(%v,%v) = %v", fa, fb, cmp)
			}
		case fa > fb:
			if cmp != CmpGreater {
				t.Fatalf("ucomi(%v,%v) = %v", fa, fb, cmp)
			}
		default:
			if cmp != CmpEqual {
				t.Fatalf("ucomi(%v,%v) = %v", fa, fb, cmp)
			}
		}
	}
}

func TestPropertyFlagsMonotoneInMasking(t *testing.T) {
	// The arithmetic result never depends on FTZ/DAZ being off: with
	// both disabled, soft results must match the hardware for RN.
	f := func(a, b uint64) bool {
		z, _ := Add64(a, b, Env{RM: RoundNearestEven})
		return hwEquiv64(z, math.Float64frombits(a)+math.Float64frombits(b))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20000}); err != nil {
		t.Fatal(err)
	}
}
