package softfloat

import "math/bits"

// frac32 extracts the 23-bit fraction field.
func frac32(x uint32) uint32 { return x & f32FracMask }

// exp32 extracts the 8-bit biased exponent field.
func exp32(x uint32) int32 { return int32((x >> 23) & 0xFF) }

// sign32 extracts the sign bit.
func sign32(x uint32) bool { return x>>31 != 0 }

// pack32 assembles a binary32 value; a hidden bit in sig carries into the
// exponent field, as in pack64.
func pack32(sign bool, exp int32, sig uint32) uint32 {
	s := uint32(0)
	if sign {
		s = f32SignMask
	}
	return s + uint32(exp)<<23 + sig
}

// packZero32 returns a signed zero.
func packZero32(sign bool) uint32 {
	if sign {
		return f32SignMask
	}
	return 0
}

// packInf32 returns a signed infinity.
func packInf32(sign bool) uint32 {
	if sign {
		return f32SignMask | f32PosInf
	}
	return f32PosInf
}

// normSubnormal32 normalizes a denormal fraction to hidden-bit position 23.
func normSubnormal32(frac uint32) (exp int32, sig uint32) {
	shift := int32(bits.LeadingZeros32(frac)) - 8
	return 1 - shift, frac << uint(shift)
}

// roundPack32 rounds and packs a binary32 result. sig holds the
// significand with its leading bit at position 30 and seven guard/sticky
// bits; the represented value is (sig / 2^30) * 2^(exp+1-bias).
func roundPack32(sign bool, exp int32, sig uint32, env Env, fl *Flags) uint32 {
	var inc uint32
	switch env.RM {
	case RoundNearestEven:
		inc = 0x40
	case RoundToZero:
		inc = 0
	case RoundDown:
		if sign {
			inc = 0x7F
		}
	case RoundUp:
		if !sign {
			inc = 0x7F
		}
	}
	roundBits := sig & 0x7F
	if exp >= 0xFD {
		if exp > 0xFD || (exp == 0xFD && int32(sig+inc) < 0) {
			*fl |= FlagOverflow | FlagInexact
			if inc == 0 {
				return pack32(sign, 0xFE, f32FracMask)
			}
			return packInf32(sign)
		}
	}
	if exp < 0 {
		if env.FTZ {
			*fl |= FlagUnderflow | FlagInexact
			return packZero32(sign)
		}
		isTiny := exp < -1 || sig+inc < f32SignMask
		sig = shiftRightJam32(sig, uint(-exp))
		exp = 0
		roundBits = sig & 0x7F
		if isTiny && roundBits != 0 {
			*fl |= FlagUnderflow
		}
	}
	if roundBits != 0 {
		*fl |= FlagInexact
	}
	sig = (sig + inc) >> 7
	if roundBits == 0x40 && env.RM == RoundNearestEven {
		sig &^= 1
	}
	if sig == 0 {
		exp = 0
	}
	return pack32(sign, exp, sig)
}

// normRoundPack32 left-normalizes sig to position 30 and rounds and packs.
func normRoundPack32(sign bool, exp int32, sig uint32, env Env, fl *Flags) uint32 {
	shift := int32(bits.LeadingZeros32(sig)) - 1
	return roundPack32(sign, exp-shift, sig<<uint(shift), env, fl)
}

// daz32 applies denormals-are-zero or raises the Denormal flag.
func daz32(x uint32, env Env, fl *Flags) uint32 {
	if IsDenormal32(x) {
		if env.DAZ {
			return x & f32SignMask
		}
		*fl |= FlagDenormal
	}
	return x
}

// addSigs32 adds the magnitudes of a and b (same effective sign zSign).
func addSigs32(a, b uint32, zSign bool, env Env, fl *Flags) uint32 {
	aSig, bSig := frac32(a), frac32(b)
	aExp, bExp := exp32(a), exp32(b)
	expDiff := aExp - bExp
	aSig <<= 6
	bSig <<= 6
	var zExp int32
	var zSig uint32
	switch {
	case expDiff > 0:
		if aExp == 0xFF {
			if aSig != 0 {
				return propagateNaN32(a, b, fl)
			}
			return a
		}
		if bExp == 0 {
			expDiff--
		} else {
			bSig |= uint32(1) << 29
		}
		bSig = shiftRightJam32(bSig, uint(expDiff))
		zExp = aExp
	case expDiff < 0:
		if bExp == 0xFF {
			if bSig != 0 {
				return propagateNaN32(a, b, fl)
			}
			return packInf32(zSign)
		}
		if aExp == 0 {
			expDiff++
		} else {
			aSig |= uint32(1) << 29
		}
		aSig = shiftRightJam32(aSig, uint(-expDiff))
		zExp = bExp
	default:
		if aExp == 0xFF {
			if aSig|bSig != 0 {
				return propagateNaN32(a, b, fl)
			}
			return a
		}
		if aExp == 0 {
			return pack32(zSign, 0, (aSig+bSig)>>6)
		}
		zSig = uint32(1)<<30 + aSig + bSig
		return roundPack32(zSign, aExp, zSig, env, fl)
	}
	aSig |= uint32(1) << 29
	zSig = (aSig + bSig) << 1
	zExp--
	if int32(zSig) < 0 {
		zSig = aSig + bSig
		zExp++
	}
	return roundPack32(zSign, zExp, zSig, env, fl)
}

// subSigs32 subtracts the magnitude of b from a.
func subSigs32(a, b uint32, zSign bool, env Env, fl *Flags) uint32 {
	aSig, bSig := frac32(a), frac32(b)
	aExp, bExp := exp32(a), exp32(b)
	expDiff := aExp - bExp
	aSig <<= 7
	bSig <<= 7
	var zExp int32
	var zSig uint32
	switch {
	case expDiff > 0:
		if aExp == 0xFF {
			if aSig != 0 {
				return propagateNaN32(a, b, fl)
			}
			return a
		}
		if bExp == 0 {
			expDiff--
		} else {
			bSig |= uint32(1) << 30
		}
		bSig = shiftRightJam32(bSig, uint(expDiff))
		aSig |= uint32(1) << 30
		zSig = aSig - bSig
		zExp = aExp
	case expDiff < 0:
		if bExp == 0xFF {
			if bSig != 0 {
				return propagateNaN32(a, b, fl)
			}
			return packInf32(!zSign)
		}
		if aExp == 0 {
			expDiff++
		} else {
			aSig |= uint32(1) << 30
		}
		aSig = shiftRightJam32(aSig, uint(-expDiff))
		bSig |= uint32(1) << 30
		zSig = bSig - aSig
		zExp = bExp
		zSign = !zSign
	default:
		if aExp == 0xFF {
			if aSig|bSig != 0 {
				return propagateNaN32(a, b, fl)
			}
			*fl |= FlagInvalid
			return f32DefaultNaN
		}
		if aExp == 0 {
			aExp = 1
			bExp = 1
		}
		switch {
		case bSig < aSig:
			zSig = aSig - bSig
			zExp = aExp
		case aSig < bSig:
			zSig = bSig - aSig
			zExp = aExp
			zSign = !zSign
		default:
			return packZero32(env.RM == RoundDown)
		}
	}
	return normRoundPack32(zSign, zExp-1, zSig, env, fl)
}

// Add32 computes a + b on binary32 bit patterns with SSE addss semantics.
func Add32(a, b uint32, env Env) (uint32, Flags) {
	var fl Flags
	a = daz32(a, env, &fl)
	b = daz32(b, env, &fl)
	var z uint32
	if sign32(a) == sign32(b) {
		z = addSigs32(a, b, sign32(a), env, &fl)
	} else {
		z = subSigs32(a, b, sign32(a), env, &fl)
	}
	return z, fl
}

// Sub32 computes a - b with SSE subss semantics.
func Sub32(a, b uint32, env Env) (uint32, Flags) {
	var fl Flags
	a = daz32(a, env, &fl)
	b = daz32(b, env, &fl)
	var z uint32
	if sign32(a) == sign32(b) {
		z = subSigs32(a, b, sign32(a), env, &fl)
	} else {
		z = addSigs32(a, b, sign32(a), env, &fl)
	}
	return z, fl
}

// Mul32 computes a * b with SSE mulss semantics.
func Mul32(a, b uint32, env Env) (uint32, Flags) {
	var fl Flags
	a = daz32(a, env, &fl)
	b = daz32(b, env, &fl)
	aSig, bSig := frac32(a), frac32(b)
	aExp, bExp := exp32(a), exp32(b)
	zSign := sign32(a) != sign32(b)
	if aExp == 0xFF {
		if aSig != 0 || (bExp == 0xFF && bSig != 0) {
			return propagateNaN32(a, b, &fl), fl
		}
		if bExp|int32(bSig) == 0 {
			fl |= FlagInvalid
			return f32DefaultNaN, fl
		}
		return packInf32(zSign), fl
	}
	if bExp == 0xFF {
		if bSig != 0 {
			return propagateNaN32(a, b, &fl), fl
		}
		if aExp|int32(aSig) == 0 {
			fl |= FlagInvalid
			return f32DefaultNaN, fl
		}
		return packInf32(zSign), fl
	}
	if aExp == 0 {
		if aSig == 0 {
			return packZero32(zSign), fl
		}
		aExp, aSig = normSubnormal32(aSig)
	}
	if bExp == 0 {
		if bSig == 0 {
			return packZero32(zSign), fl
		}
		bExp, bSig = normSubnormal32(bSig)
	}
	zExp := aExp + bExp - 0x7F
	a64 := uint64(aSig|uint32(1)<<23) << 7
	b64 := uint64(bSig|uint32(1)<<23) << 8
	prod := a64 * b64 // at most 62 bits
	zSig := uint32(prod >> 32)
	if uint32(prod) != 0 {
		zSig |= 1
	}
	if int32(zSig<<1) >= 0 {
		zSig <<= 1
		zExp--
	}
	return roundPack32(zSign, zExp, zSig, env, &fl), fl
}

// Div32 computes a / b with SSE divss semantics.
func Div32(a, b uint32, env Env) (uint32, Flags) {
	var fl Flags
	a = daz32(a, env, &fl)
	b = daz32(b, env, &fl)
	aSig, bSig := frac32(a), frac32(b)
	aExp, bExp := exp32(a), exp32(b)
	zSign := sign32(a) != sign32(b)
	if aExp == 0xFF {
		if aSig != 0 {
			return propagateNaN32(a, b, &fl), fl
		}
		if bExp == 0xFF {
			if bSig != 0 {
				return propagateNaN32(a, b, &fl), fl
			}
			fl |= FlagInvalid
			return f32DefaultNaN, fl
		}
		return packInf32(zSign), fl
	}
	if bExp == 0xFF {
		if bSig != 0 {
			return propagateNaN32(a, b, &fl), fl
		}
		return packZero32(zSign), fl
	}
	if bExp == 0 {
		if bSig == 0 {
			if aExp|int32(aSig) == 0 {
				fl |= FlagInvalid
				return f32DefaultNaN, fl
			}
			fl |= FlagDivideByZero
			return packInf32(zSign), fl
		}
		bExp, bSig = normSubnormal32(bSig)
	}
	if aExp == 0 {
		if aSig == 0 {
			return packZero32(zSign), fl
		}
		aExp, aSig = normSubnormal32(aSig)
	}
	zExp := aExp - bExp + 0x7D
	aS := uint64(aSig|uint32(1)<<23) << 7 // bit 30
	bS := uint64(bSig|uint32(1)<<23) << 8 // bit 31
	if bS <= aS+aS {
		aS >>= 1
		zExp++
	}
	// Exact quotient of (aS * 2^32) / bS lands in [2^30, 2^31).
	num := aS << 32
	q := num / bS
	rem := num % bS
	zSig := uint32(q)
	if rem != 0 {
		zSig |= 1
	}
	return roundPack32(zSign, zExp, zSig, env, &fl), fl
}

// Sqrt32 computes sqrt(a) with SSE sqrtss semantics.
func Sqrt32(a uint32, env Env) (uint32, Flags) {
	var fl Flags
	a = daz32(a, env, &fl)
	aSig := frac32(a)
	aExp := exp32(a)
	aSign := sign32(a)
	if aExp == 0xFF {
		if aSig != 0 {
			return propagateNaN32(a, a, &fl), fl
		}
		if !aSign {
			return a, fl
		}
		fl |= FlagInvalid
		return f32DefaultNaN, fl
	}
	if aSign {
		if aExp|int32(aSig) == 0 {
			return a, fl
		}
		fl |= FlagInvalid
		return f32DefaultNaN, fl
	}
	if aExp == 0 {
		if aSig == 0 {
			return a, fl
		}
		aExp, aSig = normSubnormal32(aSig)
	}
	e := aExp - 0x7F
	m := uint64(aSig | uint32(1)<<23)
	if e&1 != 0 {
		m <<= 1
		e--
	}
	// Radicand R = m << 37 spans [2^60, 2^62); floor(sqrt(R)) lands in
	// [2^30, 2^31), the hidden-bit position roundPack32 expects.
	r := m << 37
	q, exact := isqrt64(r)
	zSig := uint32(q)
	if !exact {
		zSig |= 1
	}
	zExp := e/2 + 0x7E
	return roundPack32(false, zExp, zSig, env, &fl), fl
}

// isqrt64 returns floor(sqrt(r)) and whether the root is exact.
func isqrt64(r uint64) (uint64, bool) {
	q, exact := isqrt128(0, r)
	return q, exact
}
