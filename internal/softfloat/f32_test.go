package softfloat

import (
	"math"
	"math/rand"
	"testing"
)

func hwEquiv32(soft uint32, hard float32) bool {
	h := math.Float32bits(hard)
	if IsNaN32(soft) && IsNaN32(h) {
		return true
	}
	return soft == h
}

var interesting32 = []uint32{
	0x00000000, 0x80000000, // zeros
	0x00000001, 0x80000001, // smallest denormals
	0x007FFFFF,             // largest denormal
	0x00800000,             // smallest normal
	0x7F7FFFFF, 0xFF7FFFFF, // largest normals
	0x7F800000, 0xFF800000, // infinities
	0x7FC00000,             // QNaN
	0x7F800001,             // SNaN
	0x3F800000, 0xBF800000, // +-1
	0x3F800001, 0x3F7FFFFF,
	0x40000000, 0x3F000000, // 2, 0.5
	0x4B800000, // 2^24
	0x5F000000, // 2^63
	0x4F000000, // 2^31
}

func randPattern32(r *rand.Rand) uint32 {
	switch r.Intn(5) {
	case 0:
		return interesting32[r.Intn(len(interesting32))]
	case 1:
		return r.Uint32()
	case 2:
		exp := uint32(127 + r.Intn(30) - 15)
		return r.Uint32()&(f32SignMask|f32FracMask) | exp<<23
	case 3:
		return r.Uint32() & (f32SignMask | f32FracMask)
	default:
		exp := uint32(r.Intn(0xFF))
		return r.Uint32()&(f32SignMask|f32FracMask) | exp<<23
	}
}

func testBinaryOp32(t *testing.T, name string, soft func(a, b uint32, env Env) (uint32, Flags), hard func(a, b float32) float32) {
	t.Helper()
	r := rand.New(rand.NewSource(52))
	env := Env{RM: RoundNearestEven}
	for i := 0; i < 200000; i++ {
		a, b := randPattern32(r), randPattern32(r)
		got, _ := soft(a, b, env)
		want := hard(math.Float32frombits(a), math.Float32frombits(b))
		if !hwEquiv32(got, want) {
			t.Fatalf("%s(%#08x, %#08x) = %#08x, hardware %#08x",
				name, a, b, got, math.Float32bits(want))
		}
	}
}

func TestAdd32MatchesHardware(t *testing.T) {
	testBinaryOp32(t, "Add32", Add32, func(a, b float32) float32 { return a + b })
}

func TestSub32MatchesHardware(t *testing.T) {
	testBinaryOp32(t, "Sub32", Sub32, func(a, b float32) float32 { return a - b })
}

func TestMul32MatchesHardware(t *testing.T) {
	testBinaryOp32(t, "Mul32", Mul32, func(a, b float32) float32 { return a * b })
}

func TestDiv32MatchesHardware(t *testing.T) {
	testBinaryOp32(t, "Div32", Div32, func(a, b float32) float32 { return a / b })
}

func TestSqrt32MatchesHardware(t *testing.T) {
	r := rand.New(rand.NewSource(53))
	env := Env{RM: RoundNearestEven}
	for i := 0; i < 200000; i++ {
		a := randPattern32(r)
		got, _ := Sqrt32(a, env)
		want := float32(math.Sqrt(float64(math.Float32frombits(a))))
		if !hwEquiv32(got, want) {
			t.Fatalf("Sqrt32(%#08x) = %#08x, hardware %#08x",
				a, got, math.Float32bits(want))
		}
	}
}

func TestFMA32MatchesReference(t *testing.T) {
	// Reference: exact double-precision FMA narrowed to float32. A
	// float64 FMA of float32 inputs is correctly rounded to 53 bits and
	// narrowing to 24 bits is innocuous (53 >= 2*24+2), except that the
	// doubly-rounded narrow can disagree on subnormal boundary cases, so
	// denormal-result cases are cross-checked structurally instead.
	r := rand.New(rand.NewSource(54))
	env := Env{RM: RoundNearestEven}
	for i := 0; i < 200000; i++ {
		a, b, c := randPattern32(r), randPattern32(r), randPattern32(r)
		fa := float64(math.Float32frombits(a))
		fb := float64(math.Float32frombits(b))
		fc := float64(math.Float32frombits(c))
		ref := math.FMA(fa, fb, fc)
		got, _ := FMA32(a, b, c, env)
		if math.Abs(ref) < float64(math.SmallestNonzeroFloat32)*0x1p24 && ref != 0 {
			// Potential double-rounding hazard near the subnormal range;
			// just require the result to be within one ulp of the
			// reference narrowing.
			want := math.Float32bits(float32(ref))
			diff := int64(got&^f32SignMask) - int64(want&^f32SignMask)
			if diff < -1 || diff > 1 {
				t.Fatalf("FMA32(%#08x, %#08x, %#08x) = %#08x, reference %#08x (subnormal zone)",
					a, b, c, got, want)
			}
			continue
		}
		if !hwEquiv32(got, float32(ref)) {
			t.Fatalf("FMA32(%#08x, %#08x, %#08x) = %#08x, reference %#08x",
				a, b, c, got, math.Float32bits(float32(ref)))
		}
	}
}

func TestFlagsBasics32(t *testing.T) {
	env := Env{RM: RoundNearestEven}
	one := math.Float32bits(1)
	three := math.Float32bits(3)
	if _, fl := Div32(one, three, env); fl != FlagInexact {
		t.Errorf("1/3 flags = %v, want PE", fl)
	}
	if z, fl := Div32(one, 0, env); fl != FlagDivideByZero || !IsInf32(z) {
		t.Errorf("1/0 = %#x flags %v, want inf ZE", z, fl)
	}
	huge := math.Float32bits(math.MaxFloat32)
	if _, fl := Mul32(huge, huge, env); fl != FlagOverflow|FlagInexact {
		t.Errorf("overflow flags = %v, want OE|PE", fl)
	}
	if z, fl := Sqrt32(math.Float32bits(-2), env); fl != FlagInvalid || !IsNaN32(z) {
		t.Errorf("sqrt(-2) = %#x flags %v, want NaN IE", z, fl)
	}
}

func TestConvertF64F32MatchesHardware(t *testing.T) {
	r := rand.New(rand.NewSource(55))
	env := Env{RM: RoundNearestEven}
	for i := 0; i < 200000; i++ {
		a := randPattern64(r)
		got, _ := F64ToF32(a, env)
		want := float32(math.Float64frombits(a))
		if !hwEquiv32(got, want) {
			t.Fatalf("F64ToF32(%#016x) = %#08x, hardware %#08x",
				a, got, math.Float32bits(want))
		}
	}
	for i := 0; i < 200000; i++ {
		a := randPattern32(r)
		got, _ := F32ToF64(a, env)
		want := float64(math.Float32frombits(a))
		if !hwEquiv64(got, want) {
			t.Fatalf("F32ToF64(%#08x) = %#016x, hardware %#016x",
				a, got, math.Float64bits(want))
		}
	}
}

func TestConvertIntToFloatMatchesHardware(t *testing.T) {
	r := rand.New(rand.NewSource(56))
	env := Env{RM: RoundNearestEven}
	for i := 0; i < 200000; i++ {
		v := int64(r.Uint64())
		if r.Intn(2) == 0 {
			v = int64(int32(v))
		}
		got, _ := I64ToF64(v, env)
		if want := float64(v); !hwEquiv64(got, want) {
			t.Fatalf("I64ToF64(%d) = %#016x, hardware %#016x", v, got, math.Float64bits(want))
		}
		got32, _ := I64ToF32(v, env)
		if want := float32(v); !hwEquiv32(got32, want) {
			t.Fatalf("I64ToF32(%d) = %#08x, hardware %#08x", v, got32, math.Float32bits(want))
		}
	}
	if got := I32ToF64(-7); got != math.Float64bits(-7) {
		t.Errorf("I32ToF64(-7) = %#x", got)
	}
}

func TestConvertFloatToIntMatchesHardware(t *testing.T) {
	r := rand.New(rand.NewSource(57))
	env := Env{RM: RoundNearestEven}
	for i := 0; i < 200000; i++ {
		a := randPattern64(r)
		f := math.Float64frombits(a)
		got, fl := F64ToI64Trunc(a, env)
		if math.IsNaN(f) || f >= 0x1p63 || f < -0x1p63 {
			if got != intIndefinite64 || fl&FlagInvalid == 0 {
				t.Fatalf("F64ToI64Trunc(%v) = %d flags %v, want indefinite IE", f, got, fl)
			}
		} else if want := int64(f); got != want {
			t.Fatalf("F64ToI64Trunc(%#016x = %v) = %d, want %d", a, f, got, want)
		}
		got32, fl := F64ToI32Trunc(a, env)
		if math.IsNaN(f) || f >= 0x1p31 || f < -0x1p31-0 {
			if f < 0x1p31 && f >= -0x1p31 {
				// in-range: fall through handled below
			} else if got32 != int32(intIndefinite32) || fl&FlagInvalid == 0 {
				t.Fatalf("F64ToI32Trunc(%v) = %d flags %v, want indefinite IE", f, got32, fl)
			}
		} else if want := int32(f); got32 != want {
			t.Fatalf("F64ToI32Trunc(%v) = %d, want %d", f, got32, want)
		}
	}
}

func TestF64ToIntRounding(t *testing.T) {
	env := Env{RM: RoundNearestEven}
	cases := []struct {
		in   float64
		want int64
		fl   Flags
	}{
		{2.5, 2, FlagInexact},
		{3.5, 4, FlagInexact},
		{-2.5, -2, FlagInexact},
		{2.25, 2, FlagInexact},
		{2.75, 3, FlagInexact},
		{2, 2, 0},
		{0.5, 0, FlagInexact},
		{-0.5, 0, FlagInexact},
		{0, 0, 0},
	}
	for _, c := range cases {
		got, fl := F64ToI64(math.Float64bits(c.in), env)
		if got != c.want || fl != c.fl {
			t.Errorf("F64ToI64(%v) = %d flags %v, want %d flags %v", c.in, got, fl, c.want, c.fl)
		}
	}
	// Directed modes.
	if got, _ := F64ToI64(math.Float64bits(2.1), Env{RM: RoundUp}); got != 3 {
		t.Errorf("RU(2.1) = %d, want 3", got)
	}
	if got, _ := F64ToI64(math.Float64bits(-2.1), Env{RM: RoundDown}); got != -3 {
		t.Errorf("RD(-2.1) = %d, want -3", got)
	}
}

func TestRoundToInt64MatchesHardware(t *testing.T) {
	r := rand.New(rand.NewSource(58))
	for i := 0; i < 100000; i++ {
		a := randPattern64(r)
		f := math.Float64frombits(a)
		got, _ := RoundToInt64(a, RoundNearestEven, false, Env{})
		if want := math.RoundToEven(f); !hwEquiv64(got, want) {
			t.Fatalf("RoundToInt64 RN(%v) = %#016x, want %#016x", f, got, math.Float64bits(want))
		}
		got, _ = RoundToInt64(a, RoundDown, false, Env{})
		if want := math.Floor(f); !hwEquiv64(got, want) {
			t.Fatalf("RoundToInt64 RD(%v) = %#016x, want %#016x", f, got, math.Float64bits(want))
		}
		got, _ = RoundToInt64(a, RoundUp, false, Env{})
		if want := math.Ceil(f); !hwEquiv64(got, want) {
			t.Fatalf("RoundToInt64 RU(%v) = %#016x, want %#016x", f, got, math.Float64bits(want))
		}
		got, _ = RoundToInt64(a, RoundToZero, false, Env{})
		if want := math.Trunc(f); !hwEquiv64(got, want) {
			t.Fatalf("RoundToInt64 RZ(%v) = %#016x, want %#016x", f, got, math.Float64bits(want))
		}
	}
}

func TestCompareSemantics(t *testing.T) {
	env := Env{RM: RoundNearestEven}
	one := math.Float64bits(1)
	two := math.Float64bits(2)
	qnan := uint64(0x7FF8000000000000)
	snan := uint64(0x7FF0000000000001)
	if r, fl := Ucomi64(one, two, env); r != CmpLess || fl != 0 {
		t.Errorf("ucomi(1,2) = %v flags %v", r, fl)
	}
	if r, fl := Ucomi64(one, qnan, env); r != CmpUnordered || fl != 0 {
		t.Errorf("ucomi(1,QNaN) = %v flags %v, want unordered no IE", r, fl)
	}
	if r, fl := Ucomi64(one, snan, env); r != CmpUnordered || fl&FlagInvalid == 0 {
		t.Errorf("ucomi(1,SNaN) = %v flags %v, want unordered IE", r, fl)
	}
	if r, fl := Comi64(one, qnan, env); r != CmpUnordered || fl&FlagInvalid == 0 {
		t.Errorf("comi(1,QNaN) = %v flags %v, want unordered IE", r, fl)
	}
	// -0 == +0
	if r, _ := Ucomi64(f64SignMask, 0, env); r != CmpEqual {
		t.Errorf("ucomi(-0,+0) = %v, want equal", r)
	}
	// cmp predicates
	if m, _ := Cmp64(one, two, CmpLT, env); m != ^uint64(0) {
		t.Errorf("cmplt(1,2) = %#x, want all ones", m)
	}
	if m, fl := Cmp64(one, qnan, CmpLT, env); m != 0 || fl&FlagInvalid == 0 {
		t.Errorf("cmplt(1,QNaN) = %#x flags %v, want 0 with IE", m, fl)
	}
	if m, fl := Cmp64(one, qnan, CmpNEQ, env); m != ^uint64(0) || fl&FlagInvalid != 0 {
		t.Errorf("cmpneq(1,QNaN) = %#x flags %v, want all ones no IE", m, fl)
	}
	// min/max forwarding rules
	if z, _ := Min64(f64SignMask, 0, env); z != 0 {
		t.Errorf("min(-0,+0) = %#x, want +0 (second operand)", z)
	}
	if z, fl := Min64(qnan, one, env); z != one || fl&FlagInvalid == 0 {
		t.Errorf("min(QNaN,1) = %#x flags %v, want second operand with IE", z, fl)
	}
}
