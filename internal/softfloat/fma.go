package softfloat

import "math/bits"

// FMA64 computes a*b + c with a single rounding (vfmadd213sd semantics).
// NaN propagation prefers a, then b, then c; a 0*inf product raises
// Invalid even when c is a quiet NaN, matching x64 FMA behavior.
func FMA64(a, b, c uint64, env Env) (uint64, Flags) {
	var fl Flags
	a = daz64(a, env, &fl)
	b = daz64(b, env, &fl)
	c = daz64(c, env, &fl)
	pSign := sign64(a) != sign64(b)
	zeroTimesInf := (IsZero64(a) && IsInf64(b)) || (IsInf64(a) && IsZero64(b))
	if IsNaN64(a) || IsNaN64(b) || IsNaN64(c) {
		if IsSNaN64(a) || IsSNaN64(b) || IsSNaN64(c) || zeroTimesInf {
			fl |= FlagInvalid
		}
		switch {
		case IsNaN64(a):
			return quiet64(a), fl
		case IsNaN64(b):
			return quiet64(b), fl
		default:
			return quiet64(c), fl
		}
	}
	if zeroTimesInf {
		fl |= FlagInvalid
		return f64DefaultNaN, fl
	}
	if IsInf64(a) || IsInf64(b) {
		if IsInf64(c) && sign64(c) != pSign {
			fl |= FlagInvalid
			return f64DefaultNaN, fl
		}
		return packInf64(pSign), fl
	}
	if IsInf64(c) {
		return c, fl
	}
	if IsZero64(a) || IsZero64(b) {
		// The product is an exact signed zero; only zero+zero sign rules
		// can apply.
		if IsZero64(c) {
			if sign64(c) == pSign {
				return packZero64(pSign), fl
			}
			return packZero64(env.RM == RoundDown), fl
		}
		return c, fl
	}
	aSig, aExp := frac64(a), exp64(a)
	bSig, bExp := frac64(b), exp64(b)
	if aExp == 0 {
		aExp, aSig = normSubnormal64(aSig)
	} else {
		aSig |= uint64(1) << 52
	}
	if bExp == 0 {
		bExp, bSig = normSubnormal64(bSig)
	} else {
		bSig |= uint64(1) << 52
	}
	// Product significand as a 128-bit value with its leading bit at
	// position 126 or 125; the represented value is
	// (P / 2^126) * 2^(pExp+1-bias).
	pExp := aExp + bExp - 0x3FF
	pHi, pLo := bits.Mul64(aSig<<10, bSig<<11)
	if IsZero64(c) {
		// No addend: collapse and round like Mul64.
		zSig := pHi
		if pLo != 0 {
			zSig |= 1
		}
		if int64(zSig<<1) >= 0 {
			zSig <<= 1
			pExp--
		}
		return roundPack64(pSign, pExp, zSig, env, &fl), fl
	}
	cSig, cExp := frac64(c), exp64(c)
	cSign := sign64(c)
	if cExp == 0 {
		cExp, cSig = normSubnormal64(cSig)
	} else {
		cSig |= uint64(1) << 52
	}
	// Scale c to the same 128-bit fixed-point convention: leading bit at
	// position 126 with effective exponent cExp-1.
	cHi, cLo := shl128(cSig, 74)
	cAdjExp := cExp - 1
	zExp := pExp
	expDiff := pExp - cAdjExp
	switch {
	case expDiff > 0:
		cHi, cLo = shiftRightJam128(cHi, cLo, uint(expDiff))
	case expDiff < 0:
		pHi, pLo = shiftRightJam128(pHi, pLo, uint(-expDiff))
		zExp = cAdjExp
	}
	var zSign bool
	var zHi, zLo uint64
	if pSign == cSign {
		zSign = pSign
		zHi, zLo = add128(pHi, pLo, cHi, cLo)
	} else {
		switch {
		case lt128(cHi, cLo, pHi, pLo):
			zSign = pSign
			zHi, zLo = sub128(pHi, pLo, cHi, cLo)
		case lt128(pHi, pLo, cHi, cLo):
			zSign = cSign
			zHi, zLo = sub128(cHi, cLo, pHi, pLo)
		default:
			return packZero64(env.RM == RoundDown), fl
		}
	}
	// Normalize the leading bit to position 126 (bit 62 of zHi). Sticky
	// bits introduced by alignment jamming always stay below bit 64, so
	// the final collapse preserves them.
	if zHi == 0 {
		zHi, zLo = zLo, 0
		zExp -= 64
	}
	lz := bits.LeadingZeros64(zHi)
	if lz == 0 {
		zHi, zLo = shiftRightJam128(zHi, zLo, 1)
		zExp++
	} else if lz > 1 {
		zHi, zLo = shortShiftLeft128(zHi, zLo, uint(lz-1))
		zExp -= int32(lz - 1)
	}
	zSig := zHi
	if zLo != 0 {
		zSig |= 1
	}
	return roundPack64(zSign, zExp, zSig, env, &fl), fl
}

// FMA32 computes a*b + c with a single rounding (vfmadd213ss semantics).
func FMA32(a, b, c uint32, env Env) (uint32, Flags) {
	var fl Flags
	a = daz32(a, env, &fl)
	b = daz32(b, env, &fl)
	c = daz32(c, env, &fl)
	pSign := sign32(a) != sign32(b)
	zeroTimesInf := (IsZero32(a) && IsInf32(b)) || (IsInf32(a) && IsZero32(b))
	if IsNaN32(a) || IsNaN32(b) || IsNaN32(c) {
		if IsSNaN32(a) || IsSNaN32(b) || IsSNaN32(c) || zeroTimesInf {
			fl |= FlagInvalid
		}
		switch {
		case IsNaN32(a):
			return quiet32(a), fl
		case IsNaN32(b):
			return quiet32(b), fl
		default:
			return quiet32(c), fl
		}
	}
	if zeroTimesInf {
		fl |= FlagInvalid
		return f32DefaultNaN, fl
	}
	if IsInf32(a) || IsInf32(b) {
		if IsInf32(c) && sign32(c) != pSign {
			fl |= FlagInvalid
			return f32DefaultNaN, fl
		}
		return packInf32(pSign), fl
	}
	if IsInf32(c) {
		return c, fl
	}
	if IsZero32(a) || IsZero32(b) {
		if IsZero32(c) {
			if sign32(c) == pSign {
				return packZero32(pSign), fl
			}
			return packZero32(env.RM == RoundDown), fl
		}
		return c, fl
	}
	aSig, aExp := frac32(a), exp32(a)
	bSig, bExp := frac32(b), exp32(b)
	if aExp == 0 {
		aExp, aSig = normSubnormal32(aSig)
	} else {
		aSig |= uint32(1) << 23
	}
	if bExp == 0 {
		bExp, bSig = normSubnormal32(bSig)
	} else {
		bSig |= uint32(1) << 23
	}
	// 64-bit fixed-point product with leading bit at position 62 or 61;
	// the represented value is (P / 2^62) * 2^(pExp+1-bias).
	pExp := aExp + bExp - 0x7F
	p := (uint64(aSig) << 7) * (uint64(bSig) << 8)
	if IsZero32(c) {
		zSig := uint32(shiftRightJam64(p, 32))
		if int32(zSig<<1) >= 0 {
			zSig <<= 1
			pExp--
		}
		return roundPack32(pSign, pExp, zSig, env, &fl), fl
	}
	cSig, cExp := frac32(c), exp32(c)
	cSign := sign32(c)
	if cExp == 0 {
		cExp, cSig = normSubnormal32(cSig)
	} else {
		cSig |= uint32(1) << 23
	}
	cFix := uint64(cSig) << 39 // leading bit at position 62
	cAdjExp := cExp - 1
	zExp := pExp
	expDiff := pExp - cAdjExp
	switch {
	case expDiff > 0:
		cFix = shiftRightJam64(cFix, uint(expDiff))
	case expDiff < 0:
		p = shiftRightJam64(p, uint(-expDiff))
		zExp = cAdjExp
	}
	var zSign bool
	var z uint64
	if pSign == cSign {
		zSign = pSign
		z = p + cFix
	} else {
		switch {
		case cFix < p:
			zSign = pSign
			z = p - cFix
		case p < cFix:
			zSign = cSign
			z = cFix - p
		default:
			return packZero32(env.RM == RoundDown), fl
		}
	}
	// Normalize the leading bit to position 62.
	lz := bits.LeadingZeros64(z)
	if lz == 0 {
		z = shiftRightJam64(z, 1)
		zExp++
	} else if lz > 1 {
		z <<= uint(lz - 1)
		zExp -= int32(lz - 1)
	}
	zSig := uint32(shiftRightJam64(z, 32))
	return roundPack32(zSign, zExp, zSig, env, &fl), fl
}
