package softfloat

// Lane-sliced kernels: one call retires every lane of a packed vector
// with a single dispatch, accumulating raised flags across lanes exactly
// as the per-lane scalar calls would (SSE packed forms OR each lane's
// conditions into one MXCSR update). The superblock engine and the
// machine's packed-arithmetic path lean on these so the per-instruction
// opcode switch runs once per vector, not once per lane.
//
// dst, a, and b must have equal lengths; dst may alias a or b since each
// lane is read before it is written.

// AddLanes64 computes dst[i] = a[i] + b[i] over binary64 lanes.
func AddLanes64(dst, a, b []uint64, env Env) Flags {
	var fl Flags
	for i := range dst {
		z, f := Add64(a[i], b[i], env)
		dst[i] = z
		fl |= f
	}
	return fl
}

// SubLanes64 computes dst[i] = a[i] - b[i] over binary64 lanes.
func SubLanes64(dst, a, b []uint64, env Env) Flags {
	var fl Flags
	for i := range dst {
		z, f := Sub64(a[i], b[i], env)
		dst[i] = z
		fl |= f
	}
	return fl
}

// MulLanes64 computes dst[i] = a[i] * b[i] over binary64 lanes.
func MulLanes64(dst, a, b []uint64, env Env) Flags {
	var fl Flags
	for i := range dst {
		z, f := Mul64(a[i], b[i], env)
		dst[i] = z
		fl |= f
	}
	return fl
}

// DivLanes64 computes dst[i] = a[i] / b[i] over binary64 lanes.
func DivLanes64(dst, a, b []uint64, env Env) Flags {
	var fl Flags
	for i := range dst {
		z, f := Div64(a[i], b[i], env)
		dst[i] = z
		fl |= f
	}
	return fl
}

// MinLanes64 computes dst[i] = min(a[i], b[i]) with SSE minpd semantics.
func MinLanes64(dst, a, b []uint64, env Env) Flags {
	var fl Flags
	for i := range dst {
		z, f := Min64(a[i], b[i], env)
		dst[i] = z
		fl |= f
	}
	return fl
}

// MaxLanes64 computes dst[i] = max(a[i], b[i]) with SSE maxpd semantics.
func MaxLanes64(dst, a, b []uint64, env Env) Flags {
	var fl Flags
	for i := range dst {
		z, f := Max64(a[i], b[i], env)
		dst[i] = z
		fl |= f
	}
	return fl
}

// SqrtLanes64 computes dst[i] = sqrt(a[i]) over binary64 lanes.
func SqrtLanes64(dst, a []uint64, env Env) Flags {
	var fl Flags
	for i := range dst {
		z, f := Sqrt64(a[i], env)
		dst[i] = z
		fl |= f
	}
	return fl
}

// FMALanes64 computes dst[i] = a[i]*b[i] + c[i] fused over binary64
// lanes.
func FMALanes64(dst, a, b, c []uint64, env Env) Flags {
	var fl Flags
	for i := range dst {
		z, f := FMA64(a[i], b[i], c[i], env)
		dst[i] = z
		fl |= f
	}
	return fl
}

// AddLanes32 computes dst[i] = a[i] + b[i] over binary32 lanes.
func AddLanes32(dst, a, b []uint32, env Env) Flags {
	var fl Flags
	for i := range dst {
		z, f := Add32(a[i], b[i], env)
		dst[i] = z
		fl |= f
	}
	return fl
}

// SubLanes32 computes dst[i] = a[i] - b[i] over binary32 lanes.
func SubLanes32(dst, a, b []uint32, env Env) Flags {
	var fl Flags
	for i := range dst {
		z, f := Sub32(a[i], b[i], env)
		dst[i] = z
		fl |= f
	}
	return fl
}

// MulLanes32 computes dst[i] = a[i] * b[i] over binary32 lanes.
func MulLanes32(dst, a, b []uint32, env Env) Flags {
	var fl Flags
	for i := range dst {
		z, f := Mul32(a[i], b[i], env)
		dst[i] = z
		fl |= f
	}
	return fl
}

// DivLanes32 computes dst[i] = a[i] / b[i] over binary32 lanes.
func DivLanes32(dst, a, b []uint32, env Env) Flags {
	var fl Flags
	for i := range dst {
		z, f := Div32(a[i], b[i], env)
		dst[i] = z
		fl |= f
	}
	return fl
}

// MinLanes32 computes dst[i] = min(a[i], b[i]) with SSE minps semantics.
func MinLanes32(dst, a, b []uint32, env Env) Flags {
	var fl Flags
	for i := range dst {
		z, f := Min32(a[i], b[i], env)
		dst[i] = z
		fl |= f
	}
	return fl
}

// MaxLanes32 computes dst[i] = max(a[i], b[i]) with SSE maxps semantics.
func MaxLanes32(dst, a, b []uint32, env Env) Flags {
	var fl Flags
	for i := range dst {
		z, f := Max32(a[i], b[i], env)
		dst[i] = z
		fl |= f
	}
	return fl
}

// SqrtLanes32 computes dst[i] = sqrt(a[i]) over binary32 lanes.
func SqrtLanes32(dst, a []uint32, env Env) Flags {
	var fl Flags
	for i := range dst {
		z, f := Sqrt32(a[i], env)
		dst[i] = z
		fl |= f
	}
	return fl
}

// FMALanes32 computes dst[i] = a[i]*b[i] + c[i] fused over binary32
// lanes.
func FMALanes32(dst, a, b, c []uint32, env Env) Flags {
	var fl Flags
	for i := range dst {
		z, f := FMA32(a[i], b[i], c[i], env)
		dst[i] = z
		fl |= f
	}
	return fl
}
