package softfloat

// Differential conformance suite: binary64 add/sub/mul/div/sqrt are
// compared against Go's native hardware floats, which on every supported
// Go platform are IEEE 754 binary64 with round-to-nearest-even. The
// hardware provides the value oracle; the flag oracle is reconstructed
// from operand classification (invalid combinations, divide-by-zero,
// denormal operands) plus an exactness test against an arbitrary-
// precision shadow computation, with tininess detected after rounding
// exactly as the SSE units do.
//
// Result bits must match the hardware exactly for every non-NaN result.
// NaN results are compared by class only (both NaN, and the soft result
// quiet), because NaN payload propagation is architecture-specific and
// the engine pins the x64 SSE rule regardless of the host.
//
// Three corpora drive the comparison: a cross product of boundary
// patterns (zeros, subnormal extremes, normal extremes, infinities,
// quiet and signaling NaNs), directed bit patterns walking ulp
// neighborhoods around every boundary, and seeded random patterns in
// three shapes (raw 64-bit, exponent-shaped finite, and near-total
// cancellation pairs).

import (
	"math"
	"math/big"
	"math/rand"
	"testing"
)

const (
	cfMinNormal = uint64(0x0010000000000000)
	// addPrec holds an exact binary64 sum or product: significands are 53
	// bits and exponents span [-1074, 1023], so 2200 bits always suffice.
	addPrec = 2200
	// quoPrec is used only to classify tininess of a quotient. 4600 bits
	// separate any nonzero |a - q*b| from zero (see tinyQuotient).
	quoPrec = 4600
)

var cfBigMinNormal = new(big.Float).SetFloat64(math.Float64frombits(cfMinNormal))

// cfBoundary is the boundary corpus: every special value class of
// binary64, both signs where the sign matters.
var cfBoundary = []uint64{
	0x0000000000000000, // +0
	0x8000000000000000, // -0
	0x0000000000000001, // smallest subnormal
	0x8000000000000001,
	0x0000000000000100, // mid subnormal
	0x000FFFFFFFFFFFFF, // largest subnormal
	0x800FFFFFFFFFFFFF,
	0x0010000000000000, // smallest normal
	0x8010000000000000,
	0x0010000000000001,
	0x001FFFFFFFFFFFFF,
	0x0020000000000000,
	0x3CA0000000000000, // 2^-53
	0x3CB0000000000000, // 2^-52
	0x3FE0000000000000, // 0.5
	0x3FF0000000000000, // 1.0
	0xBFF0000000000000,
	0x3FF0000000000001, // 1 + ulp
	0x4000000000000000, // 2.0
	0x4008000000000000, // 3.0
	0x4330000000000001, // 2^52 + 1
	0x4340000000000000, // 2^53
	0x1FF0000000000000, // 2^-512
	0x5FF0000000000000, // 2^512
	0x7FE0000000000000, // 2^1023
	0x7FEFFFFFFFFFFFFF, // largest finite
	0xFFEFFFFFFFFFFFFF,
	0x7FF0000000000000, // +inf
	0xFFF0000000000000, // -inf
	0x7FF8000000000000, // quiet NaN
	0xFFF8000000000000, // x64 default NaN
	0x7FF8000000000001, // quiet NaN with payload
	0x7FF0000000000001, // signaling NaN
	0xFFF0000000000FFF, // -signaling NaN with payload
}

// cfDirected expands the boundary corpus with ulp-step neighbors, so the
// suite walks across every exponent and classification boundary (a step
// off the largest finite lands on infinity, a step off the smallest
// normal lands on the largest subnormal, and so on).
func cfDirected() []uint64 {
	seen := map[uint64]bool{}
	var out []uint64
	add := func(x uint64) {
		if !seen[x] {
			seen[x] = true
			out = append(out, x)
		}
	}
	for _, p := range cfBoundary {
		add(p)
		for d := uint64(1); d <= 2; d++ {
			add(p + d)
			add(p - d)
		}
	}
	return out
}

type cfBinKind int

const (
	cfAdd cfBinKind = iota
	cfSub
	cfMul
	cfDiv
)

type cfBinOp struct {
	name string
	kind cfBinKind
	soft func(a, b uint64, env Env) (uint64, Flags)
	hard func(x, y float64) float64
}

var cfBinOps = []cfBinOp{
	{"Add64", cfAdd, Add64, func(x, y float64) float64 { return x + y }},
	{"Sub64", cfSub, Sub64, func(x, y float64) float64 { return x - y }},
	{"Mul64", cfMul, Mul64, func(x, y float64) float64 { return x * y }},
	{"Div64", cfDiv, Div64, func(x, y float64) float64 { return x / y }},
}

func cfBig(x uint64) *big.Float {
	return new(big.Float).SetPrec(addPrec).SetFloat64(math.Float64frombits(x))
}

// tinyExact reports tininess after rounding: the exact result, rounded
// to 53 bits as though the exponent range were unbounded, is strictly
// below the smallest normal in magnitude.
func tinyExact(exact *big.Float) bool {
	r := new(big.Float).SetPrec(53).Set(exact)
	return r.Abs(r).Cmp(cfBigMinNormal) < 0
}

// cfInvalidCombo reports whether finite-or-infinite operands a and b form
// an invalid combination for the operation (inf-inf, 0*inf, 0/0, inf/inf).
func cfInvalidCombo(kind cfBinKind, a, b uint64) bool {
	switch kind {
	case cfAdd:
		return IsInf64(a) && IsInf64(b) && sign64(a) != sign64(b)
	case cfSub:
		return IsInf64(a) && IsInf64(b) && sign64(a) == sign64(b)
	case cfMul:
		return (IsInf64(a) && IsZero64(b)) || (IsZero64(a) && IsInf64(b))
	case cfDiv:
		return (IsInf64(a) && IsInf64(b)) || (IsZero64(a) && IsZero64(b))
	}
	return false
}

// cfExpectBinFlags reconstructs the flag set the SSE semantics require
// for op(a, b) producing the hardware result hw, under RN with FTZ and
// DAZ off.
func cfExpectBinFlags(kind cfBinKind, a, b, hw uint64) Flags {
	var want Flags
	if IsDenormal64(a) || IsDenormal64(b) {
		want |= FlagDenormal
	}
	if IsNaN64(a) || IsNaN64(b) {
		if IsSNaN64(a) || IsSNaN64(b) {
			want |= FlagInvalid
		}
		return want
	}
	if cfInvalidCombo(kind, a, b) {
		return want | FlagInvalid
	}
	if kind == cfDiv && IsZero64(b) {
		if !IsInf64(a) {
			want |= FlagDivideByZero
		}
		return want
	}
	if IsInf64(a) || IsInf64(b) {
		return want // exact infinity or zero: no rounding took place
	}

	// Both operands finite (and for division b is nonzero): decide
	// inexact with an exact shadow computation, overflow from the
	// hardware result, underflow from tininess after rounding.
	inexact, tiny := false, false
	switch kind {
	case cfAdd, cfSub, cfMul:
		exact := new(big.Float).SetPrec(addPrec)
		switch kind {
		case cfAdd:
			exact.Add(cfBig(a), cfBig(b))
		case cfSub:
			exact.Sub(cfBig(a), cfBig(b))
		case cfMul:
			exact.Mul(cfBig(a), cfBig(b))
		}
		inexact = exact.Cmp(cfBig(hw)) != 0
		if inexact && hw&^f64SignMask <= cfMinNormal {
			tiny = tinyExact(exact)
		}
	case cfDiv:
		// a/b is exact iff hw*b == a exactly; the product needs only 106
		// bits, so no high-precision quotient is required to test it.
		prod := new(big.Float).SetPrec(addPrec).Mul(cfBig(hw), cfBig(b))
		inexact = prod.Cmp(cfBig(a)) != 0
		if inexact && hw&^f64SignMask <= cfMinNormal {
			tiny = tinyQuotient(a, b)
		}
	}
	if inexact {
		want |= FlagInexact
		if IsInf64(hw) {
			want |= FlagOverflow
		}
		if tiny {
			want |= FlagUnderflow
		}
	}
	return want
}

// tinyQuotient reports tininess after rounding for a/b. The quotient is
// approximated to quoPrec bits; a nonzero |a - q*b| for any 53-bit q is
// bounded below by ~2^-2200 relative to the quotient, so the
// approximation rounds to 53 bits exactly as the true quotient does.
func tinyQuotient(a, b uint64) bool {
	q := new(big.Float).SetPrec(quoPrec).Quo(cfBig(a), cfBig(b))
	return tinyExact(q)
}

// cfCheckBin runs one (op, a, b) case: hardware value oracle plus the
// reconstructed flag oracle.
func cfCheckBin(t *testing.T, op cfBinOp, a, b uint64) {
	t.Helper()
	got, fl := op.soft(a, b, Env{})
	hw := math.Float64bits(op.hard(math.Float64frombits(a), math.Float64frombits(b)))
	if IsNaN64(hw) {
		if !IsNaN64(got) {
			t.Fatalf("%s(%#016x, %#016x) = %#016x, hardware produced a NaN", op.name, a, b, got)
		}
		if IsSNaN64(got) {
			t.Fatalf("%s(%#016x, %#016x) = %#016x: signaling NaN result", op.name, a, b, got)
		}
	} else if got != hw {
		t.Fatalf("%s(%#016x, %#016x) = %#016x, hardware %#016x", op.name, a, b, got, hw)
	}
	if want := cfExpectBinFlags(op.kind, a, b, hw); fl != want {
		t.Fatalf("%s(%#016x, %#016x) flags = %v, want %v (result %#016x)",
			op.name, a, b, fl, want, got)
	}
}

func cfCheckSqrt(t *testing.T, a uint64) {
	t.Helper()
	got, fl := Sqrt64(a, Env{})
	hw := math.Float64bits(math.Sqrt(math.Float64frombits(a)))
	if IsNaN64(hw) {
		if !IsNaN64(got) {
			t.Fatalf("Sqrt64(%#016x) = %#016x, hardware produced a NaN", a, got)
		}
		if IsSNaN64(got) {
			t.Fatalf("Sqrt64(%#016x) = %#016x: signaling NaN result", a, got)
		}
	} else if got != hw {
		t.Fatalf("Sqrt64(%#016x) = %#016x, hardware %#016x", a, got, hw)
	}

	var want Flags
	if IsDenormal64(a) {
		want |= FlagDenormal
	}
	switch {
	case IsNaN64(a):
		if IsSNaN64(a) {
			want |= FlagInvalid
		}
	case sign64(a) && !IsZero64(a):
		want |= FlagInvalid // sqrt of a negative number (but sqrt(-0) = -0)
	case IsInf64(a) || IsZero64(a):
		// exact, no flags
	default:
		// sqrt never overflows or underflows: the result of a positive
		// finite operand lies in [2^-537, 2^512). Exact iff hw*hw == a.
		sq := new(big.Float).SetPrec(addPrec).Mul(cfBig(hw), cfBig(hw))
		if sq.Cmp(cfBig(a)) != 0 {
			want |= FlagInexact
		}
	}
	if fl != want {
		t.Fatalf("Sqrt64(%#016x) flags = %v, want %v (result %#016x)", a, fl, want, got)
	}
}

// TestConformanceBoundary crosses every boundary pattern with every other
// for each binary operation, and runs each through Sqrt64.
func TestConformanceBoundary(t *testing.T) {
	for _, op := range cfBinOps {
		t.Run(op.name, func(t *testing.T) {
			for _, a := range cfBoundary {
				for _, b := range cfBoundary {
					cfCheckBin(t, op, a, b)
				}
			}
		})
	}
	t.Run("Sqrt64", func(t *testing.T) {
		for _, a := range cfBoundary {
			cfCheckSqrt(t, a)
		}
	})
}

// TestConformanceDirected pairs ulp-neighborhoods of every boundary
// pattern against the boundary corpus, in both operand orders.
func TestConformanceDirected(t *testing.T) {
	directed := cfDirected()
	for _, op := range cfBinOps {
		t.Run(op.name, func(t *testing.T) {
			for _, a := range directed {
				for _, b := range cfBoundary {
					cfCheckBin(t, op, a, b)
					cfCheckBin(t, op, b, a)
				}
			}
		})
	}
	t.Run("Sqrt64", func(t *testing.T) {
		for _, a := range directed {
			cfCheckSqrt(t, a)
		}
	})
}

// cfRandomPattern draws one pattern in one of three shapes: raw 64-bit
// (any class, including NaNs and infinities), exponent-shaped finite
// (uniform over the exponent range, so products and quotients regularly
// overflow and underflow), and near-cancellation (handled by the caller).
func cfRandomPattern(r *rand.Rand) uint64 {
	if r.Intn(3) == 0 {
		return r.Uint64()
	}
	exp := uint64(r.Intn(2047)) // 0..2046: everything but inf/NaN
	return uint64(r.Intn(2))<<63 | exp<<52 | r.Uint64()&f64FracMask
}

// TestConformanceRandom drives seeded random corpora through every
// operation, including near-total cancellation pairs for add/sub.
func TestConformanceRandom(t *testing.T) {
	iters := 20000
	if testing.Short() {
		iters = 2000
	}
	for _, op := range cfBinOps {
		t.Run(op.name, func(t *testing.T) {
			r := rand.New(rand.NewSource(int64(op.kind)*7919 + 17))
			for i := 0; i < iters; i++ {
				a := cfRandomPattern(r)
				var b uint64
				if i%4 == 3 {
					// Near-cancellation: same magnitude, opposite sign, a
					// few low bits perturbed. Exercises full-width
					// significand alignment and massive cancellation.
					b = a ^ f64SignMask ^ uint64(r.Intn(8))
				} else {
					b = cfRandomPattern(r)
				}
				cfCheckBin(t, op, a, b)
			}
		})
	}
	t.Run("Sqrt64", func(t *testing.T) {
		r := rand.New(rand.NewSource(9551))
		for i := 0; i < iters; i++ {
			cfCheckSqrt(t, cfRandomPattern(r))
		}
	})
}
