package softfloat

// CmpResult is the outcome of a floating point comparison.
type CmpResult int8

const (
	// CmpLess means a < b.
	CmpLess CmpResult = -1
	// CmpEqual means a == b (including -0 == +0).
	CmpEqual CmpResult = 0
	// CmpGreater means a > b.
	CmpGreater CmpResult = 1
	// CmpUnordered means at least one operand is a NaN.
	CmpUnordered CmpResult = 2
)

// String renders the comparison outcome.
func (c CmpResult) String() string {
	switch c {
	case CmpLess:
		return "lt"
	case CmpEqual:
		return "eq"
	case CmpGreater:
		return "gt"
	default:
		return "unord"
	}
}

// order64 compares two non-NaN binary64 patterns.
func order64(a, b uint64) CmpResult {
	if IsZero64(a) && IsZero64(b) {
		return CmpEqual
	}
	if a == b {
		return CmpEqual
	}
	aSign, bSign := sign64(a), sign64(b)
	if aSign != bSign {
		if aSign {
			return CmpLess
		}
		return CmpGreater
	}
	// Same sign: magnitude order on the bit pattern, inverted for
	// negatives.
	less := a < b
	if aSign {
		less = !less
	}
	if less {
		return CmpLess
	}
	return CmpGreater
}

// order32 compares two non-NaN binary32 patterns.
func order32(a, b uint32) CmpResult {
	if IsZero32(a) && IsZero32(b) {
		return CmpEqual
	}
	if a == b {
		return CmpEqual
	}
	aSign, bSign := sign32(a), sign32(b)
	if aSign != bSign {
		if aSign {
			return CmpLess
		}
		return CmpGreater
	}
	less := a < b
	if aSign {
		less = !less
	}
	if less {
		return CmpLess
	}
	return CmpGreater
}

// Ucomi64 implements ucomisd: an unordered compare that raises Invalid
// only for signaling NaN operands.
func Ucomi64(a, b uint64, env Env) (CmpResult, Flags) {
	var fl Flags
	a = daz64(a, env, &fl)
	b = daz64(b, env, &fl)
	if IsNaN64(a) || IsNaN64(b) {
		if IsSNaN64(a) || IsSNaN64(b) {
			fl |= FlagInvalid
		}
		return CmpUnordered, fl
	}
	return order64(a, b), fl
}

// Comi64 implements comisd: an ordered compare that raises Invalid for
// any NaN operand.
func Comi64(a, b uint64, env Env) (CmpResult, Flags) {
	var fl Flags
	a = daz64(a, env, &fl)
	b = daz64(b, env, &fl)
	if IsNaN64(a) || IsNaN64(b) {
		fl |= FlagInvalid
		return CmpUnordered, fl
	}
	return order64(a, b), fl
}

// Ucomi32 implements ucomiss.
func Ucomi32(a, b uint32, env Env) (CmpResult, Flags) {
	var fl Flags
	a = daz32(a, env, &fl)
	b = daz32(b, env, &fl)
	if IsNaN32(a) || IsNaN32(b) {
		if IsSNaN32(a) || IsSNaN32(b) {
			fl |= FlagInvalid
		}
		return CmpUnordered, fl
	}
	return order32(a, b), fl
}

// Comi32 implements comiss.
func Comi32(a, b uint32, env Env) (CmpResult, Flags) {
	var fl Flags
	a = daz32(a, env, &fl)
	b = daz32(b, env, &fl)
	if IsNaN32(a) || IsNaN32(b) {
		fl |= FlagInvalid
		return CmpUnordered, fl
	}
	return order32(a, b), fl
}

// Min64 implements minsd: if either operand is a NaN or both are zeros,
// the second operand is returned. Invalid is raised for NaN operands
// (compare-style semantics).
func Min64(a, b uint64, env Env) (uint64, Flags) {
	var fl Flags
	a = daz64(a, env, &fl)
	b = daz64(b, env, &fl)
	if IsNaN64(a) || IsNaN64(b) {
		fl |= FlagInvalid
		return b, fl
	}
	if order64(a, b) == CmpLess {
		return a, fl
	}
	return b, fl
}

// Max64 implements maxsd with the same operand-forwarding rules as Min64.
func Max64(a, b uint64, env Env) (uint64, Flags) {
	var fl Flags
	a = daz64(a, env, &fl)
	b = daz64(b, env, &fl)
	if IsNaN64(a) || IsNaN64(b) {
		fl |= FlagInvalid
		return b, fl
	}
	if order64(a, b) == CmpGreater {
		return a, fl
	}
	return b, fl
}

// Min32 implements minss.
func Min32(a, b uint32, env Env) (uint32, Flags) {
	var fl Flags
	a = daz32(a, env, &fl)
	b = daz32(b, env, &fl)
	if IsNaN32(a) || IsNaN32(b) {
		fl |= FlagInvalid
		return b, fl
	}
	if order32(a, b) == CmpLess {
		return a, fl
	}
	return b, fl
}

// Max32 implements maxss.
func Max32(a, b uint32, env Env) (uint32, Flags) {
	var fl Flags
	a = daz32(a, env, &fl)
	b = daz32(b, env, &fl)
	if IsNaN32(a) || IsNaN32(b) {
		fl |= FlagInvalid
		return b, fl
	}
	if order32(a, b) == CmpGreater {
		return a, fl
	}
	return b, fl
}

// CmpPredicate selects the comparison a cmpsd/cmpps instruction performs,
// with the SSE imm8 encoding.
type CmpPredicate uint8

const (
	// CmpEQ tests a == b (quiet: Invalid only on SNaN).
	CmpEQ CmpPredicate = 0
	// CmpLT tests a < b (signaling: Invalid on any NaN).
	CmpLT CmpPredicate = 1
	// CmpLE tests a <= b (signaling).
	CmpLE CmpPredicate = 2
	// CmpUnord tests for unordered operands (quiet).
	CmpUnord CmpPredicate = 3
	// CmpNEQ tests a != b or unordered (quiet).
	CmpNEQ CmpPredicate = 4
	// CmpNLT tests !(a < b) (signaling).
	CmpNLT CmpPredicate = 5
	// CmpNLE tests !(a <= b) (signaling).
	CmpNLE CmpPredicate = 6
	// CmpOrd tests for ordered operands (quiet).
	CmpOrd CmpPredicate = 7
)

// signaling reports whether the predicate raises Invalid on quiet NaNs.
func (p CmpPredicate) signaling() bool {
	switch p {
	case CmpLT, CmpLE, CmpNLT, CmpNLE:
		return true
	}
	return false
}

// evalPredicate maps a comparison outcome through the predicate.
func (p CmpPredicate) eval(r CmpResult) bool {
	unord := r == CmpUnordered
	switch p {
	case CmpEQ:
		return r == CmpEqual
	case CmpLT:
		return r == CmpLess
	case CmpLE:
		return r == CmpLess || r == CmpEqual
	case CmpUnord:
		return unord
	case CmpNEQ:
		return r != CmpEqual
	case CmpNLT:
		return unord || r == CmpEqual || r == CmpGreater
	case CmpNLE:
		return unord || r == CmpGreater
	case CmpOrd:
		return !unord
	}
	return false
}

// Cmp64 implements cmpsd: it evaluates the predicate and returns an
// all-ones or all-zeros mask.
func Cmp64(a, b uint64, p CmpPredicate, env Env) (uint64, Flags) {
	var fl Flags
	a = daz64(a, env, &fl)
	b = daz64(b, env, &fl)
	var r CmpResult
	if IsNaN64(a) || IsNaN64(b) {
		if IsSNaN64(a) || IsSNaN64(b) || p.signaling() {
			fl |= FlagInvalid
		}
		r = CmpUnordered
	} else {
		r = order64(a, b)
	}
	if p.eval(r) {
		return ^uint64(0), fl
	}
	return 0, fl
}

// Cmp32 implements cmpss.
func Cmp32(a, b uint32, p CmpPredicate, env Env) (uint32, Flags) {
	var fl Flags
	a = daz32(a, env, &fl)
	b = daz32(b, env, &fl)
	var r CmpResult
	if IsNaN32(a) || IsNaN32(b) {
		if IsSNaN32(a) || IsSNaN32(b) || p.signaling() {
			fl |= FlagInvalid
		}
		r = CmpUnordered
	} else {
		r = order32(a, b)
	}
	if p.eval(r) {
		return ^uint32(0), fl
	}
	return 0, fl
}
